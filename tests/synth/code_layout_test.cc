#include <gtest/gtest.h>

#include "synth/code_layout.h"

namespace jasim {
namespace {

TEST(CodeLayoutTest, SegmentsContiguousAndDisjoint)
{
    CodeLayout layout("t", 0x1000000, 1024 * 1024, 500, 800, 1.0, 1);
    Addr cursor = 0x1000000;
    for (std::size_t i = 0; i < layout.count(); ++i) {
        const CodeSegment &seg = layout.segment(i);
        EXPECT_EQ(seg.entry, cursor);
        EXPECT_GE(seg.bytes, 64u);
        cursor = seg.end();
    }
    EXPECT_EQ(layout.footprintBytes(), cursor - 0x1000000);
}

TEST(CodeLayoutTest, FitsRegionEvenWhenOversubscribed)
{
    // 2000 methods of mean 1 KB do not fit 512 KB; sizes rescale.
    CodeLayout layout("t", 0, 512 * 1024, 2000, 1024, 1.0, 2);
    EXPECT_LE(layout.footprintBytes(), 512u * 1024);
    EXPECT_EQ(layout.count(), 2000u);
}

TEST(CodeLayoutTest, DeterministicForSeed)
{
    CodeLayout a("t", 0, 1024 * 1024, 100, 500, 1.0, 7);
    CodeLayout b("t", 0, 1024 * 1024, 100, 500, 1.0, 7);
    for (std::size_t i = 0; i < a.count(); ++i)
        EXPECT_EQ(a.segment(i).bytes, b.segment(i).bytes);
}

TEST(CodeLayoutTest, HotnessDecreasesWithRank)
{
    CodeLayout layout("t", 0, 1024 * 1024, 1000, 500, 1.0, 3);
    EXPECT_GT(layout.hotProbability(0), layout.hotProbability(100));
    EXPECT_GT(layout.hotProbability(100), layout.hotProbability(900));
}

TEST(CodeLayoutTest, SampleHotFavorsLowRanks)
{
    CodeLayout layout("t", 0, 1024 * 1024, 1000, 500, 1.2, 4);
    Rng rng(5);
    std::uint64_t low = 0;
    for (int i = 0; i < 10000; ++i)
        low += layout.sampleHot(rng) < 100;
    EXPECT_GT(low, 4000u);
}

TEST(CodeLayoutTest, FlatProfileCalibration)
{
    // The jas2004 calibration: shifted Zipf over 8500 methods with the
    // hottest method under ~1.5% and a couple hundred covering half.
    CodeLayout layout("jit", 0, 4 * 1024 * 1024, 8500, 460, 1.03, 6,
                      30.0);
    EXPECT_LT(layout.hotProbability(0), 0.015);
    double head = 0.0;
    std::size_t needed = 0;
    while (head < 0.5 && needed < 8500)
        head += layout.hotProbability(needed++);
    EXPECT_GT(needed, 60u);
    EXPECT_LT(needed, 600u);
}

TEST(CodeLayoutTest, HotnessSampleAtDeterministic)
{
    CodeLayout layout("t", 0, 1024 * 1024, 100, 500, 1.0, 8);
    EXPECT_EQ(layout.hotnessSampleAt(0.3), layout.hotnessSampleAt(0.3));
    EXPECT_EQ(layout.hotnessSampleAt(0.0), 0u);
}

} // namespace
} // namespace jasim
