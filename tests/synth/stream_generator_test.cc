#include <gtest/gtest.h>

#include <map>

#include "synth/stream_generator.h"

namespace jasim {
namespace {

class StreamGeneratorTest : public ::testing::Test
{
  protected:
    StreamGeneratorTest()
        : layout_("code", 0x1000000, 1024 * 1024, 400, 500, 1.0, 1,
                  10.0)
    {
    }

    std::unique_ptr<StreamGenerator>
    makeGenerator(StreamMix mix = StreamMix{}, std::uint64_t seed = 7)
    {
        mix.lock_region_base = 0x9000000;
        mix.lock_count = 64;
        return std::make_unique<StreamGenerator>(
            "test", mix, &layout_,
            std::make_unique<SequentialScanModel>(0x4000000,
                                                  1024 * 1024, 64),
            std::make_unique<SequentialScanModel>(0x5000000,
                                                  1024 * 1024, 64),
            seed);
    }

    CodeLayout layout_;
};

TEST_F(StreamGeneratorTest, KindIsStaticPerPc)
{
    auto gen = makeGenerator();
    for (Addr pc = 0x1000000; pc < 0x1000400; pc += 4)
        EXPECT_EQ(gen->kindAt(pc), gen->kindAt(pc));
}

TEST_F(StreamGeneratorTest, MixFrequenciesRoughlyMatch)
{
    auto gen = makeGenerator();
    std::map<InstKind, std::uint64_t> counts;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        ++counts[gen->next().kind];
    const StreamMix mix;
    EXPECT_NEAR(counts[InstKind::Load] / double(n), mix.p_load, 0.06);
    EXPECT_NEAR(counts[InstKind::Store] / double(n), mix.p_store, 0.06);
    EXPECT_GT(counts[InstKind::BranchCond], 0u);
    EXPECT_GT(counts[InstKind::Call] + counts[InstKind::VirtualCall],
              0u);
    EXPECT_GT(counts[InstKind::Return], 0u);
    EXPECT_GT(counts[InstKind::Larx], 0u);
}

TEST_F(StreamGeneratorTest, PcsStayInsideLayout)
{
    auto gen = makeGenerator();
    for (int i = 0; i < 100000; ++i) {
        const Instr inst = gen->next();
        ASSERT_GE(inst.pc, 0x1000000u);
        ASSERT_LT(inst.pc, 0x1000000u + 1024 * 1024);
    }
}

TEST_F(StreamGeneratorTest, MemoryOpsHaveAddresses)
{
    auto gen = makeGenerator();
    for (int i = 0; i < 50000; ++i) {
        const Instr inst = gen->next();
        if (inst.kind == InstKind::Load || inst.kind == InstKind::Store)
            ASSERT_NE(inst.ea, 0u);
    }
}

TEST_F(StreamGeneratorTest, LarxStcxShareLockWord)
{
    StreamMix mix;
    mix.p_larx = 0.05; // frequent, to exercise pairing quickly
    auto gen = makeGenerator(mix);
    Addr last_larx = 0;
    int paired = 0, stcx_seen = 0;
    for (int i = 0; i < 200000 && stcx_seen < 50; ++i) {
        const Instr inst = gen->next();
        if (inst.kind == InstKind::Larx)
            last_larx = inst.ea;
        if (inst.kind == InstKind::Stcx && last_larx != 0) {
            ++stcx_seen;
            paired += inst.ea == last_larx;
        }
    }
    ASSERT_GT(stcx_seen, 10);
    EXPECT_GT(paired, stcx_seen / 2);
}

TEST_F(StreamGeneratorTest, BranchTargetsWithinMethod)
{
    auto gen = makeGenerator();
    for (int i = 0; i < 100000; ++i) {
        const Instr inst = gen->next();
        if (inst.kind == InstKind::BranchCond ||
            inst.kind == InstKind::BranchDirect ||
            inst.kind == InstKind::BranchIndirect) {
            ASSERT_GE(inst.target, 0x1000000u);
            ASSERT_LT(inst.target, 0x1000000u + 1024 * 1024);
        }
    }
}

TEST_F(StreamGeneratorTest, ProfileNotTrappedInFewMethods)
{
    auto gen = makeGenerator();
    for (int i = 0; i < 400000; ++i)
        gen->next();
    const auto &samples = gen->segmentSamples();
    std::uint64_t total = 0, top = 0;
    std::size_t touched = 0;
    for (const auto s : samples) {
        total += s;
        top = std::max(top, s);
        touched += s > 0;
    }
    EXPECT_GT(touched, samples.size() / 3); // broad coverage
    EXPECT_LT(top / double(total), 0.30);   // no absorbing method
}

TEST_F(StreamGeneratorTest, DeterministicForSeed)
{
    auto a = makeGenerator(StreamMix{}, 99);
    auto b = makeGenerator(StreamMix{}, 99);
    for (int i = 0; i < 10000; ++i) {
        const Instr x = a->next();
        const Instr y = b->next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
        ASSERT_EQ(x.ea, y.ea);
    }
}

TEST_F(StreamGeneratorTest, DevirtualizationRemovesVirtualCalls)
{
    StreamMix mix;
    mix.p_virtual_call = 0.05; // plenty of virtual sites
    auto plain = makeGenerator(mix, 3);
    auto devirt = makeGenerator(mix, 3);
    devirt->setDevirtualizedFraction(1.0);
    std::uint64_t plain_virtual = 0, devirt_virtual = 0;
    std::uint64_t devirt_calls = 0;
    for (int i = 0; i < 100000; ++i) {
        plain_virtual += plain->next().kind == InstKind::VirtualCall;
        const Instr inst = devirt->next();
        devirt_virtual += inst.kind == InstKind::VirtualCall;
        devirt_calls += inst.kind == InstKind::Call;
    }
    EXPECT_GT(plain_virtual, 1000u);
    EXPECT_EQ(devirt_virtual, 0u); // every site converted
    EXPECT_GT(devirt_calls, 1000u);
}

TEST_F(StreamGeneratorTest, EpisodesResampleMethods)
{
    StreamMix with, without;
    with.dispatch_episode_insts = 500;
    without.dispatch_episode_insts = 0;
    auto a = makeGenerator(with, 5);
    auto b = makeGenerator(without, 5);
    for (int i = 0; i < 100000; ++i) {
        a->next();
        b->next();
    }
    std::size_t touched_a = 0, touched_b = 0;
    for (const auto s : a->segmentSamples())
        touched_a += s > 0;
    for (const auto s : b->segmentSamples())
        touched_b += s > 0;
    EXPECT_GE(touched_a, touched_b);
}

} // namespace
} // namespace jasim
