#include <gtest/gtest.h>

#include <set>

#include "synth/component_profiles.h"

namespace jasim {
namespace {

TEST(ComponentProfilesTest, LayoutsMatchPaperFootprints)
{
    WorkloadProfiles profiles(1);
    EXPECT_EQ(profiles.layout(Component::WasJit).count(), 8500u);
    // Multi-megabyte JIT code footprint (paper Section 4.1.2).
    EXPECT_GT(profiles.layout(Component::WasJit).footprintBytes(),
              3u * 1024 * 1024);
    EXPECT_LT(profiles.layout(Component::GcMark).footprintBytes(),
              64u * 1024); // GC code is tiny
}

TEST(ComponentProfilesTest, GeneratorsForEveryComponentAndCore)
{
    WorkloadProfiles profiles(2);
    for (const Component c : allComponents) {
        for (std::size_t core = 0; core < WorkloadProfiles::maxCores;
             ++core) {
            auto gen = profiles.makeGenerator(c, core, 17);
            ASSERT_NE(gen, nullptr);
            for (int i = 0; i < 2000; ++i)
                gen->next();
        }
    }
}

TEST(ComponentProfilesTest, KernelIsSyncHeavy)
{
    WorkloadProfiles profiles(3);
    auto kernel = profiles.makeGenerator(Component::Kernel, 0, 1);
    auto app = profiles.makeGenerator(Component::WasJit, 0, 1);
    EXPECT_GT(kernel->mix().p_sync, 5.0 * app->mix().p_sync);
}

TEST(ComponentProfilesTest, GcHasPredictableBranches)
{
    WorkloadProfiles profiles(4);
    auto gc = profiles.makeGenerator(Component::GcMark, 0, 1);
    auto app = profiles.makeGenerator(Component::WasJit, 0, 1);
    EXPECT_LT(gc->mix().cond_noise, app->mix().cond_noise);
    EXPECT_GT(gc->mix().p_cond, app->mix().p_cond); // more branches
}

TEST(ComponentProfilesTest, AddressSpacePageSizes)
{
    WorkloadProfiles profiles(5);
    const AddressSpace space = profiles.makeAddressSpace(true, false);
    EXPECT_EQ(space.pageOf(memmap::javaHeap + 123456).bytes,
              largePageBytes);
    EXPECT_EQ(space.pageOf(memmap::jitCode + 100).bytes,
              smallPageBytes);

    const AddressSpace code_large = profiles.makeAddressSpace(true, true);
    EXPECT_EQ(code_large.pageOf(memmap::jitCode + 100).bytes,
              largePageBytes);

    const AddressSpace no_large =
        profiles.makeAddressSpace(false, false);
    EXPECT_EQ(no_large.pageOf(memmap::javaHeap + 123456).bytes,
              smallPageBytes);
}

TEST(ComponentProfilesTest, SetGcLiveBytesReachesChaseModel)
{
    WorkloadProfiles profiles(6);
    auto mark = profiles.makeGenerator(Component::GcMark, 0, 1);
    // Must not crash, and must widen the chase range.
    setGcLiveBytes(*mark, 400ull * 1024 * 1024);
    Rng probe_rng(1);
    Addr max_seen = 0;
    for (int i = 0; i < 200000; ++i) {
        const Instr inst = mark->next();
        if (inst.kind == InstKind::Load &&
            inst.ea >= memmap::javaHeap &&
            inst.ea < memmap::javaHeap + memmap::javaHeapSize)
            max_seen = std::max(max_seen, inst.ea);
    }
    EXPECT_GT(max_seen, memmap::javaHeap + 200ull * 1024 * 1024);
    // No-op on non-chase components.
    auto app = profiles.makeGenerator(Component::WasJit, 0, 1);
    setGcLiveBytes(*app, 1);
}

TEST(ComponentProfilesTest, ComponentNamesUnique)
{
    std::set<std::string> names;
    for (const Component c : allComponents)
        names.insert(componentName(c));
    EXPECT_EQ(names.size(), componentCount);
}

} // namespace
} // namespace jasim
