#include <gtest/gtest.h>

#include <set>

#include "synth/data_model.h"

namespace jasim {
namespace {

WorkingSetParams
params()
{
    WorkingSetParams p;
    p.base = 0x1000000;
    p.size = 64 * 1024 * 1024;
    p.hot_bytes = 64 * 1024;
    p.hot_fraction = 0.9;
    p.warm_bytes = 1024 * 1024;
    p.sequential_fraction = 0.05;
    return p;
}

TEST(WorkingSetModelTest, AddressesStayInRegion)
{
    WorkingSetModel model(params());
    Rng rng(1);
    for (int i = 0; i < 50000; ++i) {
        const Addr a = model.next(rng);
        ASSERT_GE(a, 0x1000000u);
        ASSERT_LT(a, 0x1000000u + 64 * 1024 * 1024);
    }
}

TEST(WorkingSetModelTest, HotSetDominatesAccesses)
{
    WorkingSetModel model(params());
    Rng rng(2);
    int hot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hot += model.next(rng) < 0x1000000 + 64 * 1024;
    EXPECT_GT(hot / double(n), 0.55);
}

TEST(WorkingSetModelTest, SequentialRunsAdvanceByStride)
{
    WorkingSetParams p = params();
    p.sequential_fraction = 1.0; // always in runs
    WorkingSetModel model(p);
    Rng rng(3);
    model.next(rng); // run start
    const Addr a = model.next(rng);
    const Addr b = model.next(rng);
    EXPECT_EQ(b - a, p.stride);
}

TEST(WorkingSetModelTest, ColdTailTouchesWholeRegion)
{
    WorkingSetParams p = params();
    p.hot_fraction = 0.0;
    p.warm_fraction = 0.0;
    p.sequential_fraction = 0.0;
    WorkingSetModel model(p);
    Rng rng(4);
    Addr max_seen = 0;
    for (int i = 0; i < 20000; ++i)
        max_seen = std::max(max_seen, model.next(rng));
    EXPECT_GT(max_seen, 0x1000000u + 32 * 1024 * 1024);
}

TEST(AllocationFrontierTest, AdvancesLinearlyAndWraps)
{
    AllocationFrontierModel model(0x1000, 64, 16);
    Rng rng(5);
    EXPECT_EQ(model.next(rng), 0x1000u);
    EXPECT_EQ(model.next(rng), 0x1010u);
    EXPECT_EQ(model.next(rng), 0x1020u);
    EXPECT_EQ(model.next(rng), 0x1030u);
    EXPECT_EQ(model.next(rng), 0x1000u); // wrapped
}

TEST(AllocationFrontierTest, ResetMovesFrontier)
{
    AllocationFrontierModel model(0x1000, 1024, 16);
    Rng rng(6);
    model.next(rng);
    model.resetTo(512);
    EXPECT_EQ(model.next(rng), 0x1200u);
}

TEST(PointerChaseTest, StaysWithinLiveBytes)
{
    PointerChaseModel model(0x2000000, 1024 * 1024);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Addr a = model.next(rng);
        ASSERT_GE(a, 0x2000000u);
        ASSERT_LT(a, 0x2000000u + 1024 * 1024 + 128);
    }
}

TEST(PointerChaseTest, LiveBytesUpdateWidensRange)
{
    PointerChaseModel model(0x2000000, 4096, 0.0, 1024);
    Rng rng(8);
    Addr max_seen = 0;
    for (int i = 0; i < 2000; ++i)
        max_seen = std::max(max_seen, model.next(rng));
    EXPECT_LT(max_seen, 0x2000000u + 8192);
    model.setLiveBytes(64 * 1024 * 1024);
    for (int i = 0; i < 2000; ++i)
        max_seen = std::max(max_seen, model.next(rng));
    EXPECT_GT(max_seen, 0x2000000u + 1024 * 1024);
}

TEST(SequentialScanTest, StridesAndWraps)
{
    SequentialScanModel model(0x100, 256, 128);
    Rng rng(9);
    EXPECT_EQ(model.next(rng), 0x100u);
    EXPECT_EQ(model.next(rng), 0x180u);
    EXPECT_EQ(model.next(rng), 0x100u);
}

TEST(StackModelTest, FootprintBoundedToActiveDepth)
{
    StackModel model(0x3000000, 16 * 1024 * 1024);
    Rng rng(10);
    Addr max_seen = 0;
    for (int i = 0; i < 100000; ++i)
        max_seen = std::max(max_seen, model.next(rng));
    // Depth capped at ~24 frames of 192 B.
    EXPECT_LT(max_seen, 0x3000000u + 32 * 192);
}

TEST(SharedModelTest, WrapsSameState)
{
    auto scan =
        std::make_shared<SequentialScanModel>(0x100, 1024, 128);
    SharedModel a(scan), b(scan);
    Rng rng(11);
    EXPECT_EQ(a.next(rng), 0x100u);
    EXPECT_EQ(b.next(rng), 0x180u); // continues the same stream
}

TEST(MixtureModelTest, RespectsWeightsAndRanges)
{
    std::vector<std::unique_ptr<DataAccessModel>> models;
    models.push_back(
        std::make_unique<SequentialScanModel>(0x1000, 256, 64));
    models.push_back(
        std::make_unique<SequentialScanModel>(0x100000, 256, 64));
    MixtureModel mixture(std::move(models), {0.8, 0.2});
    Rng rng(12);
    int first = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        first += mixture.next(rng) < 0x100000;
    EXPECT_NEAR(first / double(n), 0.8, 0.02);
}

} // namespace
} // namespace jasim
