#include <gtest/gtest.h>

#include "tprof/profiler.h"

namespace jasim {
namespace {

class ProfilerTest : public ::testing::Test
{
  protected:
    ProfilerTest()
        : registry_(std::make_shared<const MethodRegistry>(100, 1)),
          profiler_(registry_)
    {
    }

    std::shared_ptr<const MethodRegistry> registry_;
    Profiler profiler_;
};

TEST_F(ProfilerTest, ComponentSharesNormalize)
{
    profiler_.addComponentTime(Component::WasJit, 300);
    profiler_.addComponentTime(Component::Db2, 100);
    const auto shares = profiler_.componentShares();
    EXPECT_NEAR(shares[static_cast<std::size_t>(Component::WasJit)],
                0.75, 1e-12);
    EXPECT_NEAR(shares[static_cast<std::size_t>(Component::Db2)], 0.25,
                1e-12);
}

TEST_F(ProfilerTest, IdleShareSeparate)
{
    profiler_.addComponentTime(Component::WasJit, 300);
    profiler_.addIdleTime(100);
    EXPECT_NEAR(profiler_.idleShare(), 0.25, 1e-12);
    const auto of_total = profiler_.componentSharesOfTotal();
    EXPECT_NEAR(of_total[static_cast<std::size_t>(Component::WasJit)],
                0.75, 1e-12);
    // Busy-only shares exclude idle.
    const auto busy = profiler_.componentShares();
    EXPECT_NEAR(busy[static_cast<std::size_t>(Component::WasJit)], 1.0,
                1e-12);
}

TEST_F(ProfilerTest, FlatProfileStatistics)
{
    std::vector<std::uint64_t> samples(100, 0);
    samples[0] = 50;
    samples[1] = 30;
    for (std::size_t i = 2; i < 22; ++i)
        samples[i] = 1;
    profiler_.addMethodSamples(samples);
    const FlatProfileStats stats = profiler_.flatProfile();
    EXPECT_EQ(stats.total_ticks, 100u);
    EXPECT_NEAR(stats.hottest_share, 0.5, 1e-12);
    EXPECT_EQ(stats.methods_for_half, 1u);
    EXPECT_EQ(stats.methods_sampled, 22u);
}

TEST_F(ProfilerTest, CategorySharesSumToOne)
{
    std::vector<std::uint64_t> samples(100, 1);
    profiler_.addMethodSamples(samples);
    const FlatProfileStats stats = profiler_.flatProfile();
    double sum = 0.0;
    for (const double share : stats.category_share)
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(ProfilerTest, TopMethodsSortedDescending)
{
    std::vector<std::uint64_t> samples(100, 0);
    samples[10] = 5;
    samples[20] = 50;
    samples[30] = 20;
    profiler_.addMethodSamples(samples);
    const auto top = profiler_.topMethods(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].method, 20u);
    EXPECT_EQ(top[1].method, 30u);
}

TEST_F(ProfilerTest, SamplesAccumulateAcrossCalls)
{
    std::vector<std::uint64_t> samples(100, 1);
    profiler_.addMethodSamples(samples);
    profiler_.addMethodSamples(samples);
    EXPECT_EQ(profiler_.flatProfile().total_ticks, 200u);
}

TEST_F(ProfilerTest, EmptyProfileSafe)
{
    const FlatProfileStats stats = profiler_.flatProfile();
    EXPECT_EQ(stats.total_ticks, 0u);
    EXPECT_DOUBLE_EQ(stats.hottest_share, 0.0);
    EXPECT_TRUE(profiler_.topMethods(5).empty());
}

} // namespace
} // namespace jasim
