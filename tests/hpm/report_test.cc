#include <gtest/gtest.h>

#include <sstream>

#include "hpm/events.h"
#include "hpm/report.h"

namespace jasim {
namespace {

TEST(HpmReportTest, GroupReportShowsCountersAndRates)
{
    HpmFacility facility(power4Groups());
    std::map<std::string, std::uint64_t> delta{
        {event::cycles, 300000},
        {event::instCompleted, 100000},
        {event::deratMiss, 1000},
        {event::dtlbMiss, 50},
    };
    const auto group = facility.groupOf(event::deratMiss);
    ASSERT_TRUE(group.has_value());
    std::ostringstream os;
    printGroupReport(os, facility, *group, delta);
    const std::string out = os.str();
    EXPECT_NE(out.find("PM_DERAT_MISS"), std::string::npos);
    EXPECT_NE(out.find("CPI=3.000"), std::string::npos);
    EXPECT_NE(out.find("1.000e-02/inst"), std::string::npos);
}

TEST(HpmReportTest, RunReportListsSampledEvents)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    for (int w = 0; w < 21; ++w) {
        std::map<std::string, std::uint64_t> delta{
            {event::cycles, 3000},
            {event::instCompleted, 1000},
            {event::deratMiss, 10},
            {event::l1dLoadMiss, 20},
        };
        hpm.recordWindow(static_cast<SimTime>(w), delta);
    }
    std::ostringstream os;
    printRunReport(os, hpm);
    const std::string out = os.str();
    EXPECT_NE(out.find("PM_DERAT_MISS"), std::string::npos);
    EXPECT_NE(out.find("PM_LD_MISS_L1"), std::string::npos);
    EXPECT_NE(out.find("r(CPI)"), std::string::npos);
}

} // namespace
} // namespace jasim
