#include <gtest/gtest.h>

#include "hpm/events.h"
#include "hpm/hpmstat.h"

namespace jasim {
namespace {

std::map<std::string, std::uint64_t>
window(std::uint64_t cycles, std::uint64_t insts,
       std::uint64_t derat_misses, std::uint64_t cond_misses)
{
    return {{event::cycles, cycles},
            {event::instCompleted, insts},
            {event::deratMiss, derat_misses},
            {event::condMispredict, cond_misses}};
}

TEST(HpmStatTest, GroupRotation)
{
    HpmStat hpm(HpmFacility(power4Groups()), 3);
    EXPECT_EQ(hpm.activeGroup(0), 0u);
    EXPECT_EQ(hpm.activeGroup(2), 0u);
    EXPECT_EQ(hpm.activeGroup(3), 1u);
    EXPECT_EQ(hpm.activeGroup(3 * 7), 0u); // wraps over all groups
}

TEST(HpmStatTest, OnlyActiveGroupSampled)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    // Window 0 -> group 0 ("basic"); deratMiss is in group "xlat".
    hpm.recordWindow(100, window(1000, 500, 7, 3));
    EXPECT_EQ(hpm.samples(event::deratMiss).count.size(), 0u);
    EXPECT_GT(hpm.samples(event::l1dLoadMiss).cycles.size(), 0u);
}

TEST(HpmStatTest, EventSamplesAlignedWithCyclesAndInsts)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    for (int w = 0; w < 21; ++w)
        hpm.recordWindow(static_cast<SimTime>(w),
                         window(3000, 1000, 10, 5));
    const EventSamples &s = hpm.samples(event::deratMiss);
    ASSERT_EQ(s.count.size(), 3u); // group "xlat" active 3 of 21
    EXPECT_DOUBLE_EQ(s.cpi().value(0), 3.0);
    EXPECT_DOUBLE_EQ(s.ratePerInst().value(0), 0.01);
}

TEST(HpmStatTest, CpiCorrelationDetectsRelationship)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    // Make derat rate proportional to CPI across its group's windows.
    // Vary by w/7 so the signal is not aliased with group rotation.
    for (int w = 0; w < 140; ++w) {
        const std::uint64_t phase = (w / 7) % 5;
        const std::uint64_t insts = 1000;
        const std::uint64_t cycles = 2000 + phase * 500;
        const std::uint64_t derat = 5 + phase * 10;
        hpm.recordWindow(static_cast<SimTime>(w),
                         window(cycles, insts, derat, 3));
    }
    EXPECT_GT(hpm.cpiCorrelation(event::deratMiss), 0.95);
}

TEST(HpmStatTest, PerWindowBasisUsesRawCounts)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    for (int w = 0; w < 140; ++w) {
        // Constant per-inst rate; inst volume inversely follows CPI.
        const std::uint64_t cycles = 10000;
        const std::uint64_t insts = 1000 + ((w / 7) % 5) * 500;
        std::map<std::string, std::uint64_t> delta{
            {event::cycles, cycles},
            {event::instCompleted, insts},
            {event::cyclesWithCompletion, insts / 2}};
        hpm.recordWindow(static_cast<SimTime>(w), delta);
    }
    // Per-inst basis: flat -> ~0. Per-window: tracks volume -> anti-CPI.
    EXPECT_NEAR(hpm.cpiCorrelation(event::cyclesWithCompletion,
                                   HpmStat::Basis::PerInst),
                0.0, 0.1);
    EXPECT_LT(hpm.cpiCorrelation(event::cyclesWithCompletion,
                                 HpmStat::Basis::PerWindow),
              -0.9);
}

TEST(HpmStatTest, CrossCorrelationRequiresSameGroup)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    for (int w = 0; w < 140; ++w)
        hpm.recordWindow(static_cast<SimTime>(w),
                         window(2000, 1000, 5, 3));
    EXPECT_FALSE(
        hpm.crossCorrelation(event::deratMiss, event::condMispredict)
            .has_value());
    EXPECT_TRUE(
        hpm.crossCorrelation(event::condBranches, event::condMispredict)
            .has_value());
}

TEST(HpmStatTest, TooFewSamplesGiveZero)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    hpm.recordWindow(0, window(1000, 500, 5, 2));
    EXPECT_DOUBLE_EQ(hpm.cpiCorrelation(event::l1dLoadMiss), 0.0);
}

} // namespace
} // namespace jasim
