#include <gtest/gtest.h>

#include <map>

#include "hpm/counter_group.h"
#include "hpm/events.h"

namespace jasim {
namespace {

TEST(CounterGroupTest, GroupsRespectCounterBudget)
{
    for (const auto &group : power4Groups())
        EXPECT_LE(group.events.size(), 6u) << group.name;
}

TEST(CounterGroupTest, AllModelledEventsCovered)
{
    HpmFacility facility(power4Groups());
    for (const char *event :
         {event::l1dLoadMiss, event::dataFromL2, event::instFetchL1,
          event::deratMiss, event::condMispredict, event::streamAlloc,
          event::srqSyncCycles})
        EXPECT_TRUE(facility.groupOf(event).has_value()) << event;
}

TEST(CounterGroupTest, CyclesAndInstsImplicitNotGrouped)
{
    HpmFacility facility(power4Groups());
    EXPECT_FALSE(facility.groupOf(event::cycles).has_value());
    EXPECT_FALSE(facility.groupOf(event::instCompleted).has_value());
}

TEST(CounterGroupTest, SameGroupSemantics)
{
    HpmFacility facility(power4Groups());
    // The paper's three prose correlations need their pairs co-grouped.
    EXPECT_TRUE(
        facility.sameGroup(event::branches, event::targetMispredict));
    EXPECT_TRUE(
        facility.sameGroup(event::condMispredict, event::branches));
    EXPECT_TRUE(
        facility.sameGroup(event::instDispatched, event::l1dLoadMiss));
    // Cross-group pairs cannot be correlated, as on real hardware.
    EXPECT_FALSE(
        facility.sameGroup(event::deratMiss, event::condMispredict));
}

TEST(CounterGroupTest, EventInOnlyOneGroup)
{
    const auto groups = power4Groups();
    std::map<std::string, int> seen;
    for (const auto &g : groups)
        for (const auto &e : g.events)
            ++seen[e];
    for (const auto &[name, count] : seen)
        EXPECT_EQ(count, 1) << name;
}

} // namespace
} // namespace jasim
