#include <gtest/gtest.h>

#include <set>

#include "sim/rng.h"

namespace jasim {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsIndependent)
{
    Rng parent(23);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitMix64KnownProgression)
{
    std::uint64_t s1 = 0, s2 = 0;
    const auto a = splitMix64(s1);
    const auto b = splitMix64(s2);
    EXPECT_EQ(a, b);      // same state, same value
    EXPECT_NE(splitMix64(s1), a); // state advanced
}

} // namespace
} // namespace jasim
