#include <gtest/gtest.h>

#include "sim/config.h"

namespace jasim {
namespace {

TEST(ConfigTest, ParsesKeyValueArgs)
{
    const char *argv[] = {"prog", "ir=40", "seed=7", "disk=ramdisk"};
    Config config =
        Config::fromArgs(4, const_cast<char **>(argv));
    EXPECT_EQ(config.getInt("ir", 0), 40);
    EXPECT_EQ(config.getInt("seed", 0), 7);
    EXPECT_EQ(config.getString("disk", ""), "ramdisk");
}

TEST(ConfigTest, ParsesGnuStyleFlags)
{
    const char *argv[] = {"prog", "--seed", "7", "--nodes=4",
                          "--micro", "ir=40"};
    Config config = Config::fromArgs(6, const_cast<char **>(argv));
    EXPECT_EQ(config.getInt("seed", 0), 7);
    EXPECT_EQ(config.getInt("nodes", 0), 4);
    EXPECT_TRUE(config.getBool("micro", false));
    EXPECT_EQ(config.getInt("ir", 0), 40);
}

TEST(ConfigTest, BareTrailingFlagIsBoolean)
{
    const char *argv[] = {"prog", "--verbose"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_TRUE(config.getBool("verbose", false));
}

TEST(ConfigTest, FlagFollowedByFlagIsBoolean)
{
    const char *argv[] = {"prog", "--micro", "--seed", "9"};
    Config config = Config::fromArgs(4, const_cast<char **>(argv));
    EXPECT_TRUE(config.getBool("micro", false));
    EXPECT_EQ(config.getInt("seed", 0), 9);
}

TEST(ConfigTest, IgnoresMalformedArgs)
{
    const char *argv[] = {"prog", "noequals", "=value", "ok=1"};
    Config config =
        Config::fromArgs(4, const_cast<char **>(argv));
    EXPECT_FALSE(config.has("noequals"));
    EXPECT_TRUE(config.has("ok"));
}

TEST(ConfigTest, FallbacksWhenAbsent)
{
    Config config;
    EXPECT_EQ(config.getInt("x", 123), 123);
    EXPECT_DOUBLE_EQ(config.getDouble("y", 4.5), 4.5);
    EXPECT_EQ(config.getString("z", "dflt"), "dflt");
    EXPECT_TRUE(config.getBool("b", true));
}

TEST(ConfigTest, BoolParsing)
{
    Config config;
    config.set("a", "1");
    config.set("b", "true");
    config.set("c", "off");
    config.set("d", "yes");
    EXPECT_TRUE(config.getBool("a", false));
    EXPECT_TRUE(config.getBool("b", false));
    EXPECT_FALSE(config.getBool("c", true));
    EXPECT_TRUE(config.getBool("d", false));
}

TEST(ConfigTest, DoubleAndHexInts)
{
    Config config;
    config.set("f", "2.75");
    config.set("h", "0x10");
    EXPECT_DOUBLE_EQ(config.getDouble("f", 0.0), 2.75);
    EXPECT_EQ(config.getInt("h", 0), 16);
}

TEST(ConfigTest, JobsDefaultsToSerial)
{
    const char *argv[] = {"prog", "ir=40"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_EQ(config.jobs(), 1u);
}

TEST(ConfigTest, JobsParsesGnuStyleFlag)
{
    const char *argv[] = {"prog", "--jobs", "4"};
    Config config = Config::fromArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(config.jobs(), 4u);

    const char *argv2[] = {"prog", "--jobs=7"};
    Config config2 = Config::fromArgs(2, const_cast<char **>(argv2));
    EXPECT_EQ(config2.jobs(), 7u);

    const char *argv3[] = {"prog", "jobs=2"};
    Config config3 = Config::fromArgs(2, const_cast<char **>(argv3));
    EXPECT_EQ(config3.jobs(), 2u);
}

TEST(ConfigTest, JobsRejectsNegativeAndGarbage)
{
    Config config;
    config.set("jobs", "-3");
    EXPECT_EQ(config.jobs(), 1u);
    config.set("jobs", "many");
    EXPECT_EQ(config.jobs(), 1u);
}

TEST(ConfigTest, JobsZeroMeansHardwareConcurrency)
{
    Config config;
    config.set("jobs", "0");
    EXPECT_GE(config.jobs(), 1u); // at least one worker, always
}

TEST(ConfigTest, JobsClampedToSaneCeiling)
{
    Config config;
    config.set("jobs", "100000");
    EXPECT_EQ(config.jobs(), 256u);
}

TEST(ConfigTest, FastpathDefaultsOn)
{
    const char *argv[] = {"prog", "ir=40"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_TRUE(config.fastpath());
}

TEST(ConfigTest, FastpathParsesGnuStyleFlag)
{
    const char *argv[] = {"prog", "--fastpath"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_TRUE(config.fastpath());

    const char *argv2[] = {"prog", "--fastpath=0"};
    Config config2 = Config::fromArgs(2, const_cast<char **>(argv2));
    EXPECT_FALSE(config2.fastpath());

    const char *argv3[] = {"prog", "fastpath=off"};
    Config config3 = Config::fromArgs(2, const_cast<char **>(argv3));
    EXPECT_FALSE(config3.fastpath());
}

TEST(ConfigTest, FastpathAcceptsWordySpellings)
{
    Config config;
    config.set("fastpath", "yes");
    EXPECT_TRUE(config.fastpath());
    config.set("fastpath", "false");
    EXPECT_FALSE(config.fastpath());
}

TEST(ConfigTest, FaultsDefaultsEmpty)
{
    const char *argv[] = {"prog", "ir=40"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_EQ(config.faults(), "");
}

TEST(ConfigTest, FaultsSpecSurvivesEveryFlagSpelling)
{
    const char *spec = "crash@60:node=0,restart=30;dbslow@120:mult=8";
    const std::string flag_eq = std::string("--faults=") + spec;
    const char *argv[] = {"prog", flag_eq.c_str()};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_EQ(config.faults(), spec);

    // Space-separated form: the spec contains '=' but is clearly not
    // a positional key=value ('@' precedes the first '='), so the
    // flag must consume it.
    const char *argv2[] = {"prog", "--faults", spec, "ir=40"};
    Config config2 = Config::fromArgs(4, const_cast<char **>(argv2));
    EXPECT_EQ(config2.faults(), spec);
    EXPECT_EQ(config2.getDouble("ir", 0.0), 40.0);

    const std::string positional = std::string("faults=") + spec;
    const char *argv3[] = {"prog", positional.c_str()};
    Config config3 = Config::fromArgs(2, const_cast<char **>(argv3));
    EXPECT_EQ(config3.faults(), spec);
}

TEST(ConfigTest, FlagStillBooleanBeforePositionalKeyValue)
{
    const char *argv[] = {"prog", "--fastpath", "heap_mb=512"};
    Config config = Config::fromArgs(3, const_cast<char **>(argv));
    EXPECT_TRUE(config.fastpath());
    EXPECT_EQ(config.getInt("heap_mb", 0), 512);
}

TEST(ConfigTest, ReplicationAxesDefaultToLegacySingleBox)
{
    const char *argv[] = {"prog", "ir=40"};
    Config config = Config::fromArgs(2, const_cast<char **>(argv));
    EXPECT_EQ(config.shards(), 1u);
    EXPECT_EQ(config.replicas(), 0u);
    EXPECT_EQ(config.syncMode(), "async");
    EXPECT_FALSE(config.syncReplication());
}

TEST(ConfigTest, ReplicationAxesParseEveryFlagSpelling)
{
    const char *argv[] = {"prog", "--shards", "4", "--replicas=2",
                          "sync-mode=sync"};
    Config config = Config::fromArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(config.shards(), 4u);
    EXPECT_EQ(config.replicas(), 2u);
    EXPECT_EQ(config.syncMode(), "sync");
    EXPECT_TRUE(config.syncReplication());
}

TEST(ConfigTest, ShardsValidatesAndClamps)
{
    Config config;
    config.set("shards", "0");
    EXPECT_EQ(config.shards(), 1u); // zero means the single box
    config.set("shards", "-3");
    EXPECT_EQ(config.shards(), 1u);
    config.set("shards", "lots");
    EXPECT_EQ(config.shards(), 1u);
    config.set("shards", "100000");
    EXPECT_EQ(config.shards(), 64u); // sane ceiling
}

TEST(ConfigTest, ReplicasValidatesAndClamps)
{
    Config config;
    config.set("replicas", "-1");
    EXPECT_EQ(config.replicas(), 0u); // negative: unreplicated
    config.set("replicas", "junk");
    EXPECT_EQ(config.replicas(), 0u);
    config.set("replicas", "999");
    EXPECT_EQ(config.replicas(), 8u); // sane ceiling
}

TEST(ConfigTest, SyncModeOnlyRecognisesSync)
{
    // Anything that is not exactly "sync" falls back to async: the
    // safe default never silently strengthens the ack guarantee.
    Config config;
    config.set("sync-mode", "SYNC");
    EXPECT_EQ(config.syncMode(), "async");
    config.set("sync-mode", "semisync");
    EXPECT_EQ(config.syncMode(), "async");
    config.set("sync-mode", "sync");
    EXPECT_TRUE(config.syncReplication());
}

TEST(ConfigTest, SetOverwrites)
{
    Config config;
    config.set("k", "1");
    config.set("k", "2");
    EXPECT_EQ(config.getInt("k", 0), 2);
    EXPECT_EQ(config.entries().size(), 1u);
}

} // namespace
} // namespace jasim
