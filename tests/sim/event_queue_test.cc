#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.h"

namespace jasim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(300, [&] { order.push_back(3); });
    queue.scheduleAt(100, [&] { order.push_back(1); });
    queue.scheduleAt(200, [&] { order.push_back(2); });
    queue.runUntil(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.scheduleAt(50, [&order, i] { order.push_back(i); });
    queue.runUntil(100);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, HorizonIsInclusive)
{
    EventQueue queue;
    bool ran = false;
    queue.scheduleAt(100, [&] { ran = true; });
    queue.runUntil(100);
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, EventsBeyondHorizonStayPending)
{
    EventQueue queue;
    bool ran = false;
    queue.scheduleAt(101, [&] { ran = true; });
    queue.runUntil(100);
    EXPECT_FALSE(ran);
    EXPECT_EQ(queue.pending(), 1u);
    EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueueTest, NowAdvancesToEventTime)
{
    EventQueue queue;
    SimTime seen = 0;
    queue.scheduleAt(77, [&] { seen = queue.now(); });
    queue.runUntil(200);
    EXPECT_EQ(seen, 77u);
    EXPECT_EQ(queue.now(), 200u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            queue.scheduleAfter(10, chain);
    };
    queue.scheduleAt(0, chain);
    queue.runUntil(1000);
    EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    SimTime when = 0;
    queue.scheduleAt(40, [&] {
        queue.scheduleAfter(5, [&] { when = queue.now(); });
    });
    queue.runUntil(100);
    EXPECT_EQ(when, 45u);
}

TEST(EventQueueTest, StepRunsOneEvent)
{
    EventQueue queue;
    int count = 0;
    queue.scheduleAt(1, [&] { ++count; });
    queue.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, ClearDropsPending)
{
    EventQueue queue;
    int count = 0;
    queue.scheduleAt(10, [&] { ++count; });
    queue.clear();
    queue.runUntil(100);
    EXPECT_EQ(count, 0);
}

TEST(EventQueueTest, RunUntilCountsExecutedEvents)
{
    EventQueue queue;
    for (int i = 0; i < 7; ++i)
        queue.scheduleAt(static_cast<SimTime>(i), [] {});
    EXPECT_EQ(queue.runUntil(100), 7u);
}

TEST(EventQueueTest, ExecutedAccumulatesAcrossRunsAndSteps)
{
    EventQueue queue;
    for (int i = 0; i < 5; ++i)
        queue.scheduleAt(static_cast<SimTime>(i * 10), [] {});
    EXPECT_EQ(queue.executed(), 0u);
    queue.runUntil(20); // events at 0, 10, 20
    EXPECT_EQ(queue.executed(), 3u);
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(queue.executed(), 4u);
    queue.runUntil(1000);
    EXPECT_EQ(queue.executed(), 5u);
}

TEST(EventQueueTest, NextEventTimeReportsHeapFront)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextEventTime(), EventQueue::kNoEvent);
    queue.scheduleAt(200, [] {});
    queue.scheduleAt(50, [] {});
    EXPECT_EQ(queue.nextEventTime(), 50u);
    queue.runUntil(100);
    EXPECT_EQ(queue.nextEventTime(), 200u);
    queue.runUntil(300);
    EXPECT_EQ(queue.nextEventTime(), EventQueue::kNoEvent);
}

TEST(EventQueueTest, MoveOnlyActionsSupported)
{
    // std::function rejects move-only closures; the kernel's
    // InlineFunction must not.
    EventQueue queue;
    int seen = 0;
    auto owned = std::make_unique<int>(41);
    queue.scheduleAt(10, [p = std::move(owned), &seen] {
        seen = *p + 1;
    });
    queue.runUntil(100);
    EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, LargeCapturesRunViaHeapPath)
{
    EventQueue queue;
    std::array<std::uint64_t, 32> big{}; // 256 bytes: beyond inline
    big[0] = 7;
    std::uint64_t seen = 0;
    auto action = [big, &seen] { seen = big[0]; };
    static_assert(
        !EventQueue::Action::fitsInline<decltype(action)>());
    queue.scheduleAt(5, std::move(action));
    queue.runUntil(10);
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueTest, FifoTiesHoldAcrossInlineAndHeapActions)
{
    // Alternate small (inline) and large (heap) captures at one
    // timestamp: insertion order must still win the tie-break.
    EventQueue queue;
    std::vector<int> order;
    std::array<char, 100> pad{};
    for (int i = 0; i < 8; ++i) {
        if (i % 2 == 0)
            queue.scheduleAt(50, [&order, i] { order.push_back(i); });
        else
            queue.scheduleAt(50, [&order, i, pad] {
                order.push_back(i + pad[0]);
            });
    }
    queue.runUntil(100);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ClearDestroysPendingActions)
{
    EventQueue queue;
    auto held = std::make_shared<int>(1);
    std::weak_ptr<int> watch = held;
    queue.scheduleAt(10, [h = std::move(held)] { (void)*h; });
    queue.clear();
    EXPECT_TRUE(watch.expired());
}

} // namespace
} // namespace jasim
