#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace jasim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(300, [&] { order.push_back(3); });
    queue.scheduleAt(100, [&] { order.push_back(1); });
    queue.scheduleAt(200, [&] { order.push_back(2); });
    queue.runUntil(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.scheduleAt(50, [&order, i] { order.push_back(i); });
    queue.runUntil(100);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, HorizonIsInclusive)
{
    EventQueue queue;
    bool ran = false;
    queue.scheduleAt(100, [&] { ran = true; });
    queue.runUntil(100);
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, EventsBeyondHorizonStayPending)
{
    EventQueue queue;
    bool ran = false;
    queue.scheduleAt(101, [&] { ran = true; });
    queue.runUntil(100);
    EXPECT_FALSE(ran);
    EXPECT_EQ(queue.pending(), 1u);
    EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueueTest, NowAdvancesToEventTime)
{
    EventQueue queue;
    SimTime seen = 0;
    queue.scheduleAt(77, [&] { seen = queue.now(); });
    queue.runUntil(200);
    EXPECT_EQ(seen, 77u);
    EXPECT_EQ(queue.now(), 200u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            queue.scheduleAfter(10, chain);
    };
    queue.scheduleAt(0, chain);
    queue.runUntil(1000);
    EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    SimTime when = 0;
    queue.scheduleAt(40, [&] {
        queue.scheduleAfter(5, [&] { when = queue.now(); });
    });
    queue.runUntil(100);
    EXPECT_EQ(when, 45u);
}

TEST(EventQueueTest, StepRunsOneEvent)
{
    EventQueue queue;
    int count = 0;
    queue.scheduleAt(1, [&] { ++count; });
    queue.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, ClearDropsPending)
{
    EventQueue queue;
    int count = 0;
    queue.scheduleAt(10, [&] { ++count; });
    queue.clear();
    queue.runUntil(100);
    EXPECT_EQ(count, 0);
}

TEST(EventQueueTest, RunUntilCountsExecutedEvents)
{
    EventQueue queue;
    for (int i = 0; i < 7; ++i)
        queue.scheduleAt(static_cast<SimTime>(i), [] {});
    EXPECT_EQ(queue.runUntil(100), 7u);
}

} // namespace
} // namespace jasim
