#include <gtest/gtest.h>

#include <cmath>

#include "sim/distributions.h"

namespace jasim {
namespace {

TEST(DistributionsTest, ExponentialMeanMatchesRate)
{
    Rng rng(1);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += drawExponential(rng, rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(DistributionsTest, ExponentialNonNegative)
{
    Rng rng(2);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(drawExponential(rng, 0.5), 0.0);
}

TEST(DistributionsTest, PoissonSmallMean)
{
    Rng rng(3);
    const double mean = 3.5;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(drawPoisson(rng, mean));
    EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(DistributionsTest, PoissonLargeMeanUsesApproximation)
{
    Rng rng(4);
    const double mean = 200.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(drawPoisson(rng, mean));
    EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(DistributionsTest, PoissonZeroMean)
{
    Rng rng(5);
    EXPECT_EQ(drawPoisson(rng, 0.0), 0u);
}

TEST(DistributionsTest, NormalMoments)
{
    Rng rng(6);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = drawNormal(rng, 10.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.03);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(DistributionsTest, LogNormalPositive)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GT(drawLogNormal(rng, 0.0, 1.0), 0.0);
}

TEST(ZipfSamplerTest, RankZeroMostProbable)
{
    ZipfSampler zipf(100, 1.0);
    EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
    EXPECT_GT(zipf.pmf(1), zipf.pmf(50));
}

TEST(ZipfSamplerTest, PmfSumsToOne)
{
    ZipfSampler zipf(500, 0.8);
    double total = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i)
        total += zipf.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ShiftFlattensHead)
{
    ZipfSampler sharp(1000, 1.0, 0.0);
    ZipfSampler flat(1000, 1.0, 20.0);
    EXPECT_GT(sharp.pmf(0), flat.pmf(0));
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf)
{
    Rng rng(8);
    ZipfSampler zipf(50, 1.2);
    std::vector<int> counts(50, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    EXPECT_NEAR(counts[0] / double(n), zipf.pmf(0), 0.01);
    EXPECT_NEAR(counts[5] / double(n), zipf.pmf(5), 0.01);
}

TEST(ZipfSamplerTest, SampleAtIsMonotone)
{
    ZipfSampler zipf(100, 1.0);
    EXPECT_EQ(zipf.sampleAt(0.0), 0u);
    EXPECT_LE(zipf.sampleAt(0.2), zipf.sampleAt(0.8));
    EXPECT_LT(zipf.sampleAt(0.999999), 100u);
}

TEST(DiscreteSamplerTest, RespectsWeights)
{
    Rng rng(9);
    DiscreteSampler sampler({1.0, 0.0, 3.0});
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[sampler(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.25, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.75, 0.01);
}

TEST(DiscreteSamplerTest, ProbabilityAccessor)
{
    DiscreteSampler sampler({2.0, 6.0});
    EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
    EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

/** Property sweep: zipf concentration increases with the exponent. */
class ZipfExponentTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfExponentTest, HeadShareGrowsWithExponent)
{
    const double s = GetParam();
    ZipfSampler a(1000, s);
    ZipfSampler b(1000, s + 0.3);
    double head_a = 0.0, head_b = 0.0;
    for (std::size_t i = 0; i < 10; ++i) {
        head_a += a.pmf(i);
        head_b += b.pmf(i);
    }
    EXPECT_LT(head_a, head_b);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5));

} // namespace
} // namespace jasim
