#include <gtest/gtest.h>

#include "sim/types.h"

namespace jasim {
namespace {

TEST(TypesTest, SecondConversionsRoundTrip)
{
    EXPECT_EQ(secs(1.0), 1000000u);
    EXPECT_EQ(secs(0.5), 500000u);
    EXPECT_DOUBLE_EQ(toSeconds(secs(42.0)), 42.0);
}

TEST(TypesTest, MillisecondConversion)
{
    EXPECT_EQ(millis(1.0), 1000u);
    EXPECT_EQ(millis(350.0), 350000u);
    EXPECT_EQ(secs(1.0), millis(1000.0));
}

TEST(TypesTest, FractionalMicrosecondsTruncate)
{
    EXPECT_EQ(millis(0.0005), 0u); // below 1 us resolution
}

} // namespace
} // namespace jasim
