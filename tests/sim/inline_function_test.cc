#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/inline_function.h"

namespace jasim {
namespace {

TEST(InlineFunctionTest, DefaultIsEmpty)
{
    InlineFunction fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.isInline());
}

TEST(InlineFunctionTest, InvokesStoredLambda)
{
    int hits = 0;
    InlineFunction fn([&] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, SmallCaptureIsStoredInline)
{
    int target = 0;
    int *p = &target;
    std::uint64_t a = 1, b = 2, c = 3;
    InlineFunction fn([p, a, b, c] {
        *p = static_cast<int>(a + b + c);
    });
    EXPECT_TRUE(fn.isInline());
    fn();
    EXPECT_EQ(target, 6);
}

TEST(InlineFunctionTest, LargeCaptureFallsBackToHeap)
{
    std::array<char, 200> big{};
    big[0] = 7;
    int seen = 0;
    InlineFunction fn([big, &seen] { seen = big[0]; });
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.isInline());
    fn();
    EXPECT_EQ(seen, 7);
}

TEST(InlineFunctionTest, OverAlignedCaptureFallsBackToHeap)
{
    struct alignas(64) Wide
    {
        double v = 1.5;
    };
    Wide w;
    double seen = 0.0;
    InlineFunction fn([w, &seen] { seen = w.v; });
    EXPECT_FALSE(fn.isInline());
    fn();
    EXPECT_DOUBLE_EQ(seen, 1.5);
}

TEST(InlineFunctionTest, MoveOnlyCaptureInline)
{
    auto owned = std::make_unique<int>(41);
    int seen = 0;
    InlineFunction fn(
        [p = std::move(owned), &seen] { seen = *p + 1; });
    EXPECT_TRUE(fn.isInline());
    fn();
    EXPECT_EQ(seen, 42);
}

TEST(InlineFunctionTest, MoveOnlyCaptureOnHeap)
{
    auto owned = std::make_unique<int>(9);
    std::array<char, 100> pad{};
    int seen = 0;
    InlineFunction fn([p = std::move(owned), pad, &seen] {
        seen = *p + pad[0];
    });
    EXPECT_FALSE(fn.isInline());
    fn();
    EXPECT_EQ(seen, 9);
}

TEST(InlineFunctionTest, MoveTransfersCallableAndEmptiesSource)
{
    int hits = 0;
    InlineFunction a([&] { ++hits; });
    InlineFunction b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineFunction c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, MovePreservesHeapStorage)
{
    std::array<char, 128> big{};
    big[1] = 3;
    int seen = 0;
    InlineFunction a([big, &seen] { seen = big[1]; });
    InlineFunction b(std::move(a));
    EXPECT_FALSE(b.isInline());
    b();
    EXPECT_EQ(seen, 3);
}

TEST(InlineFunctionTest, DestructionReleasesCapturedState)
{
    auto tracked = std::make_shared<int>(5);
    std::weak_ptr<int> watch = tracked;
    {
        InlineFunction fn([held = std::move(tracked)] { (void)*held; });
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, HeapDestructionReleasesCapturedState)
{
    auto tracked = std::make_shared<int>(5);
    std::weak_ptr<int> watch = tracked;
    {
        std::array<char, 150> pad{};
        InlineFunction fn([held = std::move(tracked), pad] {
            (void)*held;
            (void)pad;
        });
        EXPECT_FALSE(fn.isInline());
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, AssignmentDestroysPreviousCallable)
{
    auto first = std::make_shared<int>(1);
    std::weak_ptr<int> watch = first;
    InlineFunction fn([held = std::move(first)] { (void)*held; });
    EXPECT_FALSE(watch.expired());
    fn = InlineFunction([] {});
    EXPECT_TRUE(watch.expired());
    fn();
}

TEST(InlineFunctionTest, ResetEmptiesAndReleases)
{
    auto held = std::make_shared<int>(2);
    std::weak_ptr<int> watch = held;
    InlineFunction fn([h = std::move(held)] { (void)*h; });
    fn.reset();
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, FitsInlineMatchesStorageDecision)
{
    // Compile-time predicate agrees with the runtime flag.
    auto small = [] {};
    EXPECT_TRUE(InlineFunction::fitsInline<decltype(small)>());

    std::array<char, 64> big{};
    auto large = [big] { (void)big; };
    EXPECT_FALSE(InlineFunction::fitsInline<decltype(large)>());
}

} // namespace
} // namespace jasim
