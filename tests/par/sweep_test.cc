#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/sweep.h"

namespace jasim::par {
namespace {

TEST(SweepTest, ResultsComeBackInSubmissionOrder)
{
    const auto results = runSweep(16, 4, [](std::size_t i) {
        // Stagger completion so out-of-order finishes are likely.
        std::this_thread::sleep_for(
            std::chrono::milliseconds((16 - i) % 5));
        return i * i;
    });
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepTest, EveryIndexRunsExactlyOnce)
{
    std::vector<std::atomic<int>> hits(32);
    WorkerPool pool(4);
    pool.parallelFor(32, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, ConcurrencyNeverExceedsJobs)
{
    std::atomic<int> active{0};
    std::atomic<int> peak{0};
    WorkerPool pool(3);
    pool.parallelFor(24, [&](std::size_t) {
        const int now = ++active;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        --active;
    });
    EXPECT_LE(peak.load(), 3);
    EXPECT_GE(peak.load(), 1);
}

TEST(SweepTest, SerialModeRunsOnCallingThreadInOrder)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    WorkerPool pool(1);
    pool.parallelFor(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepTest, ZeroJobsMeansSerial)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.jobs(), 1u);
}

TEST(SweepTest, EmptySweepReturnsEmpty)
{
    const auto results =
        runSweep(0, 4, [](std::size_t i) { return i; });
    EXPECT_TRUE(results.empty());
}

TEST(SweepTest, MoreJobsThanPointsStillCoversAll)
{
    const auto results =
        runSweep(3, 16, [](std::size_t i) { return i + 10; });
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(results[i], i + 10);
}

TEST(SweepTest, FirstExceptionPropagates)
{
    EXPECT_THROW(
        runSweep(8, 4,
                 [](std::size_t i) {
                     if (i == 5)
                         throw std::runtime_error("point failed");
                     return i;
                 }),
        std::runtime_error);
}

TEST(SweepTest, ParallelForCountZeroIsANoOp)
{
    WorkerPool pool(4);
    pool.parallelFor(0, [](std::size_t) {
        FAIL() << "work ran for count=0";
    });
}

TEST(SweepTest, ParallelForCountBelowJobsCoversAll)
{
    std::vector<std::atomic<int>> hits(2);
    WorkerPool pool(8); // more workers than work items
    pool.parallelFor(2, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, ParallelForRethrowsFirstExceptionAndDrains)
{
    WorkerPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(
                     16,
                     [&](std::size_t i) {
                         ++ran;
                         if (i % 2 == 1)
                             throw std::runtime_error("odd point");
                     }),
                 std::runtime_error);
    // Every index was still visited (failures don't strand work),
    // and the pool remains usable afterwards.
    EXPECT_EQ(ran.load(), 16);
    std::atomic<int> after{0};
    pool.parallelFor(4, [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 4);
}

TEST(SweepTest, SerialExceptionPropagatesToo)
{
    WorkerPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     4,
                     [](std::size_t i) {
                         if (i == 2)
                             throw std::logic_error("bad point");
                     }),
                 std::logic_error);
}

} // namespace
} // namespace jasim::par
