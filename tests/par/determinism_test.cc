/**
 * Pins the jasim::par contract: a sweep run on 4 workers produces
 * bit-identical aggregate statistics to the same sweep run serially.
 * The two sweeps below are scaled-down replicas of the converted
 * benches' core loops (abl_l2size and abl_heapsize).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/experiment.h"
#include "core/figures.h"
#include "par/sweep.h"

namespace jasim {
namespace {

ExperimentConfig
quickBase()
{
    ExperimentConfig config;
    config.sut.injection_rate = 6.0;
    config.sut.driver.ramp_up_s = 4.0;
    config.ramp_up_s = 8.0;
    config.steady_s = 20.0;
    config.ramp_down_s = 2.0;
    config.window_s = 1.0;
    config.window.sample_insts = 15000;
    config.windows_per_group = 2;
    config.seed = 1234;
    return config;
}

/** FNV-1a over the raw bits of a double — exact, not approximate. */
std::uint64_t
mix(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return mix(h, static_cast<double>(v));
}

/** Digest of everything the l2-size bench table consumes. */
std::uint64_t
l2Digest(const ExperimentResult &r)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, windowMean(r.windows, WindowMetric::Cpi));
    const auto shares = loadSourceShares(r.total);
    for (const double s : shares)
        h = mix(h, s);
    h = mix(h, r.jops);
    h = mix(h, r.total.completed);
    h = mix(h, r.events_executed);
    return h;
}

/** Digest of everything the heap-size bench table consumes. */
std::uint64_t
gcDigest(const ExperimentResult &r)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, r.gc.mean_interval_s);
    h = mix(h, r.gc.mean_pause_ms);
    h = mix(h, r.gc.gc_time_fraction);
    h = mix(h, static_cast<std::uint64_t>(r.gc.collections));
    h = mix(h, r.jops);
    h = mix(h, r.events_executed);
    return h;
}

std::vector<std::uint64_t>
l2Sweep(std::size_t jobs)
{
    const ExperimentConfig base = quickBase();
    const std::vector<std::uint64_t> l2_kb{768, 1536, 3072};
    const auto runs =
        par::runSweep(l2_kb.size(), jobs, [&](std::size_t i) {
            ExperimentConfig config = base;
            config.window.hierarchy.l2 =
                CacheGeometry{l2_kb[i] * 1024, 128, 12};
            Experiment experiment(config);
            return l2Digest(experiment.run());
        });
    return runs;
}

std::vector<std::uint64_t>
heapSweep(std::size_t jobs)
{
    const ExperimentConfig base = quickBase();
    const std::vector<std::uint64_t> heap_mb{320, 512, 1024, 2048};
    const auto runs =
        par::runSweep(heap_mb.size(), jobs, [&](std::size_t i) {
            ExperimentConfig config = base;
            config.micro_enabled = false;
            config.sut.gc.heap.size_bytes = heap_mb[i] << 20;
            Experiment experiment(config);
            return gcDigest(experiment.run());
        });
    return runs;
}

TEST(SweepDeterminismTest, L2SizeSweepBitIdenticalAcrossJobs)
{
    const auto serial = l2Sweep(1);
    const auto parallel = l2Sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
}

TEST(SweepDeterminismTest, HeapSizeSweepBitIdenticalAcrossJobs)
{
    const auto serial = heapSweep(1);
    const auto parallel = heapSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
}

TEST(SweepDeterminismTest, RepeatedParallelRunsAgree)
{
    // Not just serial==parallel: parallel runs must agree with each
    // other across executions (no dependence on scheduling order).
    const auto a = heapSweep(4);
    const auto b = heapSweep(4);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace jasim
