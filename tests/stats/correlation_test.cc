#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/correlation.h"

namespace jasim {
namespace {

TEST(CorrelationTest, PerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateInputsReturnZero)
{
    EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({5, 5, 5}, {1, 2, 3}), 0.0);
    EXPECT_DOUBLE_EQ(pearson(std::vector<double>{},
                             std::vector<double>{}),
                     0.0);
}

TEST(CorrelationTest, IndependentNearZero)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.02);
}

TEST(CorrelationTest, ScaleAndShiftInvariant)
{
    std::vector<double> x{1, 3, 2, 5, 4};
    std::vector<double> y{2, 6, 5, 9, 7};
    std::vector<double> y2;
    for (double v : y)
        y2.push_back(100.0 + 7.0 * v);
    EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-12);
}

TEST(CorrelationTest, Symmetric)
{
    std::vector<double> x{1, 4, 2, 8, 5};
    std::vector<double> y{3, 1, 4, 1, 5};
    EXPECT_NEAR(pearson(x, y), pearson(y, x), 1e-12);
}

/** Property: r always lies in [-1, 1], for many random vectors. */
class CorrelationBoundsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CorrelationBoundsTest, AlwaysWithinBounds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(rng.uniform(-10, 10));
        y.push_back(rng.uniform(-10, 10) + 0.3 * x.back());
    }
    const double r = pearson(x, y);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationBoundsTest,
                         ::testing::Range(1, 21));

TEST(LinearFitTest, RecoversLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(i);
        y.push_back(3.0 * i + 7.0);
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
    EXPECT_NEAR(fit.r, 1.0, 1e-9);
}

double
drawNormalish(Rng &rng)
{
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += rng.uniform();
    return sum - 6.0;
}

TEST(LinearFitTest, NoisyLineStillClose)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.uniform(0, 100));
        y.push_back(2.0 * x.back() + drawNormalish(rng));
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
}

} // namespace
} // namespace jasim
