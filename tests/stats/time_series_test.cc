#include <gtest/gtest.h>

#include "stats/time_series.h"

namespace jasim {
namespace {

TimeSeries
makeSeries(std::initializer_list<double> values)
{
    TimeSeries s("test");
    SimTime t = 0;
    for (double v : values)
        s.append(t += 100, v);
    return s;
}

TEST(TimeSeriesTest, AppendAndAccess)
{
    TimeSeries s = makeSeries({1.0, 2.0, 3.0});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.value(1), 2.0);
    EXPECT_EQ(s.time(2), 300u);
}

TEST(TimeSeriesTest, MeanAndStddev)
{
    TimeSeries s = makeSeries({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(TimeSeriesTest, EmptySeriesSafeStats)
{
    TimeSeries s("empty");
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(TimeSeriesTest, MinMax)
{
    TimeSeries s = makeSeries({3.0, -1.0, 7.0});
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(TimeSeriesTest, SliceKeepsHalfOpenRange)
{
    TimeSeries s = makeSeries({1, 2, 3, 4, 5});
    const TimeSeries sliced = s.slice(200, 400);
    ASSERT_EQ(sliced.size(), 2u);
    EXPECT_DOUBLE_EQ(sliced.value(0), 2.0);
    EXPECT_DOUBLE_EQ(sliced.value(1), 3.0);
}

TEST(TimeSeriesTest, RatioElementwise)
{
    TimeSeries a = makeSeries({10, 20, 0});
    TimeSeries b = makeSeries({2, 4, 0});
    const TimeSeries r = a.ratio(b, "r");
    EXPECT_DOUBLE_EQ(r.value(0), 5.0);
    EXPECT_DOUBLE_EQ(r.value(1), 5.0);
    EXPECT_DOUBLE_EQ(r.value(2), 0.0); // 0/0 -> 0
}

} // namespace
} // namespace jasim
