#include <gtest/gtest.h>

#include "stats/counter.h"

namespace jasim {
namespace {

TEST(CounterTest, IncrementAccumulates)
{
    Counter c("x");
    c.increment();
    c.increment(10);
    EXPECT_EQ(c.value(), 11u);
    EXPECT_EQ(c.name(), "x");
}

TEST(CounterTest, DeltaSinceSnapshot)
{
    Counter c("x");
    c.increment(5);
    const auto snap = c.value();
    c.increment(7);
    EXPECT_EQ(c.deltaSince(snap), 7u);
}

TEST(CounterSetTest, GetCreatesOnFirstUse)
{
    CounterSet set;
    EXPECT_EQ(set.value("missing"), 0u);
    set.get("a").increment(3);
    EXPECT_EQ(set.value("a"), 3u);
}

TEST(CounterSetTest, AddConvenience)
{
    CounterSet set;
    set.add("hits", 2);
    set.add("hits", 3);
    EXPECT_EQ(set.value("hits"), 5u);
}

TEST(CounterSetTest, SnapshotAndDelta)
{
    CounterSet set;
    set.add("a", 10);
    set.add("b", 20);
    const auto snap = set.snapshot();
    set.add("a", 1);
    set.add("c", 5);
    const auto delta = set.deltaSince(snap);
    EXPECT_EQ(delta.at("a"), 1u);
    EXPECT_EQ(delta.at("b"), 0u);
    EXPECT_EQ(delta.at("c"), 5u);
}

TEST(CounterSetTest, ResetZeroesEverything)
{
    CounterSet set;
    set.add("a", 4);
    set.reset();
    EXPECT_EQ(set.value("a"), 0u);
}

TEST(CounterSetTest, DeterministicIterationOrder)
{
    CounterSet set;
    set.add("zebra", 1);
    set.add("alpha", 1);
    auto it = set.all().begin();
    EXPECT_EQ(it->first, "alpha");
}

} // namespace
} // namespace jasim
