#include <gtest/gtest.h>

#include <sstream>

#include "stats/render.h"

namespace jasim {
namespace {

TEST(TextTableTest, AlignsColumnsAndFormats)
{
    TextTable table({"name", "value"});
    table.addRow({"cpi", TextTable::num(2.95, 2)});
    table.addRow({"util", TextTable::pct(89.5)});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cpi"), std::string::npos);
    EXPECT_NE(out.find("2.95"), std::string::npos);
    EXPECT_NE(out.find("89.5%"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded)
{
    TextTable table({"a", "b", "c"});
    table.addRow({"only"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(RenderChartTest, ProducesGridAndLegend)
{
    TimeSeries s("throughput");
    for (int i = 0; i < 100; ++i)
        s.append(static_cast<SimTime>(i), 10.0 + (i % 7));
    std::ostringstream os;
    renderChart(os, {s});
    const std::string out = os.str();
    EXPECT_NE(out.find("throughput"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), out.find("throughput")); // legend glyph
}

TEST(RenderChartTest, EmptySeriesHandled)
{
    std::ostringstream os;
    renderChart(os, {TimeSeries("empty")});
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(RenderChartTest, MultipleSeriesDistinctGlyphs)
{
    TimeSeries a("a"), b("b");
    for (int i = 0; i < 50; ++i) {
        a.append(static_cast<SimTime>(i), 1.0);
        b.append(static_cast<SimTime>(i), 2.0);
    }
    std::ostringstream os;
    renderChart(os, {a, b});
    const std::string out = os.str();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(WriteCsvTest, HeaderAndRows)
{
    TimeSeries a("cpi"), b("spec");
    a.append(secs(1), 3.0);
    a.append(secs(2), 3.5);
    b.append(secs(1), 2.2);
    b.append(secs(2), 2.4);
    std::ostringstream os;
    writeCsv(os, {a, b});
    const std::string out = os.str();
    EXPECT_NE(out.find("time_s,cpi,spec"), std::string::npos);
    EXPECT_NE(out.find("1,3,2.2"), std::string::npos);
    EXPECT_NE(out.find("2,3.5,2.4"), std::string::npos);
}

TEST(RenderBarChartTest, ZeroLineAndValues)
{
    std::ostringstream os;
    renderBarChart(os, {{"pos", 0.8}, {"neg", -0.5}});
    const std::string out = os.str();
    EXPECT_NE(out.find("pos"), std::string::npos);
    EXPECT_NE(out.find("+0.80"), std::string::npos);
    EXPECT_NE(out.find("-0.50"), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

} // namespace
} // namespace jasim
