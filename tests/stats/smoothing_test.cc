#include <gtest/gtest.h>

#include <cmath>

#include "stats/smoothing.h"

namespace jasim {
namespace {

TEST(MovingAverageTest, FlatSeriesUnchanged)
{
    const std::vector<double> flat(10, 3.0);
    const auto out = movingAverage(flat, 5);
    for (double v : out)
        EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MovingAverageTest, WindowOneIsIdentity)
{
    const std::vector<double> in{1, 5, 2, 8};
    EXPECT_EQ(movingAverage(in, 1), in);
}

TEST(MovingAverageTest, SmoothsSpike)
{
    std::vector<double> in(11, 0.0);
    in[5] = 10.0;
    const auto out = movingAverage(in, 5);
    EXPECT_NEAR(out[5], 2.0, 1e-12);
    EXPECT_NEAR(out[3], 2.0, 1e-12); // spike within window
    EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(BezierSmoothTest, EndpointsPreserved)
{
    const std::vector<double> in{1.0, 9.0, 3.0, 7.0, 5.0};
    const auto out = bezierSmooth(in, 50);
    EXPECT_NEAR(out.front(), 1.0, 1e-9);
    EXPECT_NEAR(out.back(), 5.0, 1e-9);
}

TEST(BezierSmoothTest, OutputWithinInputHull)
{
    const std::vector<double> in{2.0, 8.0, 4.0, 6.0, 3.0, 9.0};
    const auto out = bezierSmooth(in, 100);
    for (double v : out) {
        EXPECT_GE(v, 2.0 - 1e-9);
        EXPECT_LE(v, 9.0 + 1e-9);
    }
}

TEST(BezierSmoothTest, FlattensShortSpikes)
{
    // A short-lived spike (one GC window among many) should smooth to
    // a small bump, as the paper notes about its Figure 7.
    std::vector<double> in(60, 1.0);
    in[30] = 100.0;
    const auto out = bezierSmooth(in, 60);
    double peak = 0.0;
    for (double v : out)
        peak = std::max(peak, v);
    EXPECT_LT(peak, 25.0);
    EXPECT_GT(peak, 1.0);
}

TEST(BezierSmoothTest, LargeInputStaysFinite)
{
    std::vector<double> in(3000, 1.0);
    in[1500] = 5.0;
    const auto out = bezierSmooth(in, 100);
    for (double v : out)
        ASSERT_TRUE(std::isfinite(v));
}

TEST(BezierSmoothTest, TinyInputsPassThrough)
{
    const std::vector<double> two{1.0, 2.0};
    EXPECT_EQ(bezierSmooth(two, 10), two);
}

TEST(BezierSmoothTest, SeriesOverloadKeepsTimeRange)
{
    TimeSeries s("x");
    s.append(100, 1.0);
    s.append(200, 5.0);
    s.append(300, 2.0);
    s.append(400, 4.0);
    const TimeSeries out = bezierSmooth(s, 20);
    ASSERT_EQ(out.size(), 20u);
    EXPECT_EQ(out.time(0), 100u);
    EXPECT_EQ(out.time(19), 400u);
}

} // namespace
} // namespace jasim
