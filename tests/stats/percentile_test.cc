#include <gtest/gtest.h>

#include "stats/percentile.h"

namespace jasim {
namespace {

TEST(PercentileTest, NearestRankSemantics)
{
    PercentileTracker t;
    for (int i = 1; i <= 10; ++i)
        t.add(i);
    EXPECT_DOUBLE_EQ(t.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(t.percentile(90), 9.0);
    EXPECT_DOUBLE_EQ(t.percentile(100), 10.0);
    EXPECT_DOUBLE_EQ(t.percentile(10), 1.0);
}

TEST(PercentileTest, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_DOUBLE_EQ(t.percentile(90), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.max(), 0.0);
}

TEST(PercentileTest, AddAfterQueryResorts)
{
    PercentileTracker t;
    t.add(5.0);
    EXPECT_DOUBLE_EQ(t.percentile(50), 5.0);
    t.add(1.0);
    EXPECT_DOUBLE_EQ(t.percentile(50), 1.0);
}

TEST(PercentileTest, MeanAndMax)
{
    PercentileTracker t;
    t.add(1.0);
    t.add(2.0);
    t.add(6.0);
    EXPECT_DOUBLE_EQ(t.mean(), 3.0);
    EXPECT_DOUBLE_EQ(t.max(), 6.0);
}

TEST(HistogramTest, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-5.0);  // clamped to bin 0
    h.add(100.0); // clamped to bin 4
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BinBounds)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 12.5);
    EXPECT_DOUBLE_EQ(h.binLow(3), 17.5);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 20.0);
}

} // namespace
} // namespace jasim
