/**
 * @file
 * Golden-digest equivalence test for `--fastpath`.
 *
 * Runs the same short experiment -- the exact loop the fig/tab benches
 * drive -- once with the memory fast path on and once off, folds every
 * steady-state window's counters and the end-of-run memory counters
 * into a digest, and requires the two digests to be bit-identical.
 * This is the test that licenses shipping the fast path enabled by
 * default.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/experiment.h"
#include "stats/digest.h"

namespace jasim {
namespace {

ExperimentConfig
digestConfig(bool fastpath)
{
    ExperimentConfig config;
    config.sut.injection_rate = 6.0;
    config.sut.driver.ramp_up_s = 5.0;
    config.ramp_up_s = 8.0;
    config.steady_s = 20.0;
    config.ramp_down_s = 2.0;
    config.window_s = 1.0;
    config.window.sample_insts = 20000;
    config.windows_per_group = 2;
    config.seed = 11;
    config.window.fastpath = fastpath;
    return config;
}

void
mixDouble(Digest &digest, double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    digest.mix(bits);
}

void
mixStats(Digest &digest, const ExecStats &stats)
{
    mixDouble(digest, stats.cycles);
    mixDouble(digest, stats.dispatched);
    digest.mix(stats.completed);
    mixDouble(digest, stats.completion_cycles);
    digest.mix(stats.loads);
    digest.mix(stats.stores);
    digest.mix(stats.l1d_load_miss);
    digest.mix(stats.l1d_store_miss);
    for (const std::uint64_t v : stats.loads_from)
        digest.mix(v);
    digest.mix(stats.l1i_miss);
    for (const std::uint64_t v : stats.ifetch_from)
        digest.mix(v);
    digest.mix(stats.ierat_miss);
    digest.mix(stats.derat_miss);
    digest.mix(stats.itlb_miss);
    digest.mix(stats.dtlb_miss);
    digest.mix(stats.branches);
    digest.mix(stats.cond_branches);
    digest.mix(stats.cond_mispredict);
    digest.mix(stats.indirect_branches);
    digest.mix(stats.returns);
    digest.mix(stats.return_mispredict);
    digest.mix(stats.target_mispredict);
    digest.mix(stats.btb_miss);
    digest.mix(stats.larx);
    digest.mix(stats.stcx);
    digest.mix(stats.stcx_fail);
    digest.mix(stats.syncs);
    mixDouble(digest, stats.srq_sync_cycles);
    digest.mix(stats.kernel_sleeps);
    digest.mix(stats.l1d_prefetch);
    digest.mix(stats.l2_prefetch);
    digest.mix(stats.stream_alloc);
}

std::uint64_t
goldenDigest(const ExperimentResult &result)
{
    Digest digest;
    digest.mix(result.windows.size());
    for (const WindowRecord &window : result.windows) {
        digest.mix(static_cast<std::uint64_t>(window.end));
        mixStats(digest, window.stats);
        mixDouble(digest, window.mix.busy_us);
        mixDouble(digest, window.mix.idle_fraction);
        digest.mix(static_cast<std::uint64_t>(window.mix.gc_active));
        for (const double f : window.mix.fraction)
            mixDouble(digest, f);
    }
    mixStats(digest, result.total);
    digest.mix(result.mem_hot.snapshot());
    mixDouble(digest, result.jops);
    mixDouble(digest, result.cpu_utilization);
    return digest.value();
}

TEST(FastpathGoldenDigestTest, ExperimentBitIdenticalOnVsOff)
{
    Experiment fast(digestConfig(true));
    const ExperimentResult on = fast.run();
    Experiment slow(digestConfig(false));
    const ExperimentResult off = slow.run();

    EXPECT_EQ(goldenDigest(on), goldenDigest(off));

    // Window-by-window counter snapshots match exactly, not just in
    // aggregate.
    ASSERT_EQ(on.windows.size(), off.windows.size());
    for (std::size_t i = 0; i < on.windows.size(); ++i) {
        Digest a, b;
        mixStats(a, on.windows[i].stats);
        mixStats(b, off.windows[i].stats);
        ASSERT_EQ(a.value(), b.value()) << "window " << i;
    }

    // The fast path engaged: its telemetry is nonzero with the flag on
    // and exactly zero with it off.
    EXPECT_GT(on.mru_data_hits + on.mru_inst_hits, 0u);
    EXPECT_EQ(off.mru_data_hits, 0u);
    EXPECT_EQ(off.mru_inst_hits, 0u);
    EXPECT_EQ(off.snoop_filter_skips, 0u);
}

} // namespace
} // namespace jasim
