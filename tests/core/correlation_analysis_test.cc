#include <gtest/gtest.h>

#include "core/correlation_analysis.h"
#include "hpm/events.h"

namespace jasim {
namespace {

TEST(CorrelationAnalysisTest, Figure10ListCoversPaperEvents)
{
    const auto entries = figure10Events();
    EXPECT_GE(entries.size(), 14u);
    HpmFacility facility(power4Groups());
    for (const auto &entry : entries) {
        EXPECT_TRUE(facility.groupOf(entry.event).has_value() ||
                    entry.event == event::instDispatched ||
                    entry.event == event::cyclesWithCompletion)
            << entry.event;
    }
}

TEST(CorrelationAnalysisTest, ThroughputEventsUsePerWindowBasis)
{
    for (const auto &entry : figure10Events()) {
        if (entry.event == event::cyclesWithCompletion ||
            entry.event == event::instFetchL1) {
            EXPECT_EQ(entry.basis, HpmStat::Basis::PerWindow)
                << entry.label;
        }
    }
}

TEST(CorrelationAnalysisTest, BarsWithinBounds)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    // Synthesize enough windows for every group.
    for (int w = 0; w < 200; ++w) {
        std::map<std::string, std::uint64_t> delta{
            {event::cycles, 2000u + (w % 9) * 300u},
            {event::instCompleted, 1000},
            {event::l1dLoadMiss, 20u + (w % 9) * 5u},
            {event::deratMiss, 10u + (w % 9) * 3u},
            {event::condMispredict, 5u + (w % 9)},
            {event::branches, 200},
            {event::instDispatched, 2300},
        };
        hpm.recordWindow(static_cast<SimTime>(w), delta);
    }
    const auto bars = computeCpiCorrelations(hpm, figure10Events());
    EXPECT_EQ(bars.size(), figure10Events().size());
    for (const auto &bar : bars) {
        EXPECT_GE(bar.r, -1.0) << bar.label;
        EXPECT_LE(bar.r, 1.0) << bar.label;
    }
}

TEST(CorrelationAnalysisTest, AuxCorrelationsComputable)
{
    HpmStat hpm(HpmFacility(power4Groups()), 1);
    for (int w = 0; w < 200; ++w) {
        std::map<std::string, std::uint64_t> delta{
            {event::cycles, 3000},
            {event::instCompleted, 1000u + (w % 5) * 100u},
            {event::branches, 200u + (w % 7) * 10u},
            {event::targetMispredict, 5u + (w % 3)},
            {event::condMispredict, 10u + (w % 7) * 2u},
            {event::instDispatched, 2300},
            {event::l1dLoadMiss, 25},
        };
        hpm.recordWindow(static_cast<SimTime>(w), delta);
    }
    const AuxCorrelations aux = computeAuxCorrelations(hpm);
    EXPECT_GE(aux.branches_vs_target_mispredict, -1.0);
    EXPECT_LE(aux.branches_vs_target_mispredict, 1.0);
    // cond mispredicts co-vary with branches in this synthetic data.
    EXPECT_GT(aux.cond_mispredict_vs_branches, 0.5);
}

} // namespace
} // namespace jasim
