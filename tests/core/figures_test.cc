#include <gtest/gtest.h>

#include "core/figures.h"

namespace jasim {
namespace {

WindowRecord
makeWindow(SimTime end, double cycles, std::uint64_t insts,
           std::uint64_t loads, std::uint64_t load_miss,
           bool gc = false)
{
    WindowRecord w;
    w.end = end;
    w.stats.cycles = cycles;
    w.stats.completed = insts;
    w.stats.dispatched = 2.0 * static_cast<double>(insts);
    w.stats.loads = loads;
    w.stats.l1d_load_miss = load_miss;
    w.mix.gc_active = gc;
    if (gc)
        w.mix.fraction[static_cast<std::size_t>(Component::GcMark)] =
            0.3;
    return w;
}

TEST(FiguresTest, WindowSeriesExtractsMetric)
{
    std::vector<WindowRecord> windows{
        makeWindow(secs(1), 3000, 1000, 300, 30),
        makeWindow(secs(2), 4000, 1000, 300, 60),
    };
    const TimeSeries cpi = windowSeries(windows, WindowMetric::Cpi,
                                        "CPI");
    ASSERT_EQ(cpi.size(), 2u);
    EXPECT_DOUBLE_EQ(cpi.value(0), 3.0);
    EXPECT_DOUBLE_EQ(cpi.value(1), 4.0);
    const TimeSeries miss = windowSeries(
        windows, WindowMetric::L1LoadMissRate, "miss");
    EXPECT_DOUBLE_EQ(miss.value(0), 0.1);
    EXPECT_DOUBLE_EQ(miss.value(1), 0.2);
}

TEST(FiguresTest, WindowMeanAndConditionalMean)
{
    std::vector<WindowRecord> windows{
        makeWindow(secs(1), 3000, 1000, 300, 30, false),
        makeWindow(secs(2), 5000, 1000, 300, 30, true),
    };
    EXPECT_DOUBLE_EQ(windowMean(windows, WindowMetric::Cpi), 4.0);
    EXPECT_DOUBLE_EQ(windowMeanIf(windows, WindowMetric::Cpi, true),
                     5.0);
    EXPECT_DOUBLE_EQ(windowMeanIf(windows, WindowMetric::Cpi, false),
                     3.0);
    EXPECT_DOUBLE_EQ(
        windowMeanIf({}, WindowMetric::Cpi, true), 0.0);
}

TEST(FiguresTest, GcFractionMetric)
{
    std::vector<WindowRecord> windows{
        makeWindow(secs(1), 3000, 1000, 300, 30, true)};
    EXPECT_NEAR(windowMean(windows, WindowMetric::GcFraction), 0.3,
                1e-12);
}

TEST(FiguresTest, ZeroDenominatorsSafe)
{
    std::vector<WindowRecord> windows{
        makeWindow(secs(1), 0, 0, 0, 0)};
    for (const auto metric :
         {WindowMetric::Cpi, WindowMetric::L1LoadMissRate,
          WindowMetric::CondMispredictRate,
          WindowMetric::TargetMispredictRate,
          WindowMetric::SrqSyncFraction}) {
        EXPECT_DOUBLE_EQ(windowMean(windows, metric), 0.0);
    }
}

TEST(FiguresTest, LoadSourceSharesExcludeL1)
{
    ExecStats total;
    total.loads_from[static_cast<std::size_t>(DataSource::L2)] = 75;
    total.loads_from[static_cast<std::size_t>(DataSource::L3)] = 20;
    total.loads_from[static_cast<std::size_t>(DataSource::Memory)] = 5;
    const auto shares = loadSourceShares(total);
    EXPECT_DOUBLE_EQ(
        shares[static_cast<std::size_t>(DataSource::L2)], 0.75);
    EXPECT_DOUBLE_EQ(
        shares[static_cast<std::size_t>(DataSource::Memory)], 0.05);
    EXPECT_DOUBLE_EQ(
        shares[static_cast<std::size_t>(DataSource::L1)], 0.0);
}

TEST(FiguresTest, EmptySourcesSafe)
{
    const auto shares = loadSourceShares(ExecStats{});
    for (const double s : shares)
        EXPECT_DOUBLE_EQ(s, 0.0);
}

} // namespace
} // namespace jasim
