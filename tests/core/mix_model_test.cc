#include <gtest/gtest.h>

#include "core/mix_model.h"

namespace jasim {
namespace {

TEST(MixModelTest, FractionsFromDeltas)
{
    std::array<SimTime, componentCount> prev{};
    std::array<SimTime, componentCount> cur{};
    cur[static_cast<std::size_t>(Component::WasJit)] = 300;
    cur[static_cast<std::size_t>(Component::Db2)] = 100;
    const WindowMix mix = computeMix(prev, cur, 1000, 4);
    EXPECT_NEAR(mix.fraction[static_cast<std::size_t>(
                    Component::WasJit)],
                0.75, 1e-12);
    EXPECT_DOUBLE_EQ(mix.busy_us, 400.0);
    EXPECT_NEAR(mix.idle_fraction, 0.9, 1e-12);
    EXPECT_FALSE(mix.gc_active);
}

TEST(MixModelTest, GcActivityDetected)
{
    std::array<SimTime, componentCount> prev{};
    std::array<SimTime, componentCount> cur{};
    cur[static_cast<std::size_t>(Component::GcMark)] = 10;
    const WindowMix mix = computeMix(prev, cur, 1000, 4);
    EXPECT_TRUE(mix.gc_active);
}

TEST(MixModelTest, IdleWindowSafe)
{
    std::array<SimTime, componentCount> same{};
    const WindowMix mix = computeMix(same, same, 1000, 4);
    EXPECT_DOUBLE_EQ(mix.busy_us, 0.0);
    EXPECT_DOUBLE_EQ(mix.idle_fraction, 1.0);
}

TEST(MixModelTest, FractionsSumToOneWhenBusy)
{
    std::array<SimTime, componentCount> prev{};
    std::array<SimTime, componentCount> cur{};
    for (std::size_t c = 0; c < componentCount; ++c)
        cur[c] = 10 * (c + 1);
    const WindowMix mix = computeMix(prev, cur, 1000, 4);
    double sum = 0.0;
    for (const double f : mix.fraction)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MixModelTest, OversubscribedClampsIdleAtZero)
{
    std::array<SimTime, componentCount> prev{};
    std::array<SimTime, componentCount> cur{};
    cur[0] = 10000; // more busy than window capacity
    const WindowMix mix = computeMix(prev, cur, 1000, 4);
    EXPECT_DOUBLE_EQ(mix.idle_fraction, 0.0);
}

} // namespace
} // namespace jasim
