#include <gtest/gtest.h>

#include "core/sut.h"

namespace jasim {
namespace {

std::unique_ptr<SystemUnderTest>
makeSut(SutConfig config = SutConfig{}, std::uint64_t seed = 11)
{
    auto profiles = std::make_shared<const WorkloadProfiles>(seed);
    auto registry = std::make_shared<const MethodRegistry>(
        profiles->layout(Component::WasJit).count(), seed);
    return std::make_unique<SystemUnderTest>(config, profiles,
                                             registry, seed);
}

TEST(SutTest, ProcessesRequestsEndToEnd)
{
    SutConfig config;
    config.injection_rate = 5.0;
    config.driver.ramp_up_s = 1.0;
    auto sut = makeSut(config);
    sut->start(secs(30));
    sut->advanceTo(secs(30));
    EXPECT_GT(sut->tracker().totalCompleted(), 50u);
    EXPECT_GT(sut->scheduler().totalBusy(), 0u);
}

TEST(SutTest, CompletionsTrackArrivalsWhenUnderloaded)
{
    SutConfig config;
    config.injection_rate = 5.0;
    config.driver.ramp_up_s = 1.0;
    auto sut = makeSut(config);
    sut->start(secs(60));
    sut->advanceTo(secs(70)); // drain
    // ~8 ops/s x 60 s = 480 expected completions.
    EXPECT_NEAR(static_cast<double>(sut->tracker().totalCompleted()),
                480.0, 100.0);
}

TEST(SutTest, AllComponentsAccrueBusyTime)
{
    SutConfig config;
    config.injection_rate = 5.0;
    config.driver.ramp_up_s = 1.0;
    auto sut = makeSut(config);
    sut->start(secs(30));
    sut->advanceTo(secs(30));
    for (const Component c :
         {Component::WasJit, Component::WasOther, Component::Web,
          Component::Db2, Component::Kernel})
        EXPECT_GT(sut->scheduler().busyBy(c), 0u) << componentName(c);
}

TEST(SutTest, GcTriggersUnderSustainedLoad)
{
    SutConfig config;
    config.injection_rate = 5.0;
    config.driver.ramp_up_s = 1.0;
    config.gc.heap.size_bytes = 96ull * 1024 * 1024;
    config.gc.baseline_bytes = 24ull * 1024 * 1024;
    auto sut = makeSut(config);
    sut->start(secs(60));
    sut->advanceTo(secs(60));
    EXPECT_GE(sut->collector().log().events().size(), 1u);
    EXPECT_GT(sut->scheduler().busyBy(Component::GcMark), 0u);
}

TEST(SutTest, JitWarmsUpUnderLoad)
{
    SutConfig config;
    config.injection_rate = 5.0;
    config.driver.ramp_up_s = 1.0;
    auto sut = makeSut(config);
    sut->start(secs(30));
    sut->advanceTo(secs(30));
    EXPECT_GT(sut->jit().methodsAtOrAbove(CompileTier::Warm), 10u);
    EXPECT_GT(sut->jit().totalCompileUs(), 0.0);
}

TEST(SutTest, VmstatRowsAddUp)
{
    SutConfig config;
    config.injection_rate = 5.0;
    auto sut = makeSut(config);
    sut->start(secs(10));
    auto prev = sut->scheduler().busySnapshot();
    sut->advanceTo(secs(10));
    auto cur = sut->scheduler().busySnapshot();
    std::array<SimTime, componentCount> delta{};
    for (std::size_t c = 0; c < componentCount; ++c)
        delta[c] = cur[c] - prev[c];
    const VmStatRow row =
        sut->recordVmstatWindow(0, secs(10), delta, 0);
    EXPECT_NEAR(row.user_pct + row.system_pct + row.idle_pct +
                    row.iowait_pct,
                100.0, 1e-6);
    EXPECT_GT(row.user_pct, row.system_pct); // mostly user-level code
}

TEST(SutTest, AllocScaleSpeedsUpGcCycle)
{
    SutConfig slow, fast;
    slow.injection_rate = fast.injection_rate = 5.0;
    slow.driver.ramp_up_s = fast.driver.ramp_up_s = 1.0;
    slow.gc.heap.size_bytes = fast.gc.heap.size_bytes = 96ull << 20;
    slow.gc.baseline_bytes = fast.gc.baseline_bytes = 24ull << 20;
    fast.alloc_scale = 3.0;
    auto slow_sut = makeSut(slow);
    auto fast_sut = makeSut(fast);
    slow_sut->start(secs(60));
    fast_sut->start(secs(60));
    slow_sut->advanceTo(secs(60));
    fast_sut->advanceTo(secs(60));
    EXPECT_GT(fast_sut->collector().log().events().size(),
              slow_sut->collector().log().events().size());
}

TEST(SutTest, SpinningDisksCauseIoWait)
{
    SutConfig config;
    config.injection_rate = 8.0;
    config.driver.ramp_up_s = 1.0;
    config.disk.kind = DiskConfig::Kind::Spinning;
    config.disk.spindles = 2;
    auto sut = makeSut(config);
    sut->start(secs(30));
    sut->advanceTo(secs(30));
    EXPECT_GT(sut->diskBlockedUs(), 0u);
    EXPECT_GT(sut->disk().requestCount(), 0u);
}

TEST(SutTest, RamDiskKeepsBlockingNegligible)
{
    SutConfig ram, spin;
    ram.injection_rate = spin.injection_rate = 8.0;
    ram.driver.ramp_up_s = spin.driver.ramp_up_s = 1.0;
    spin.disk.kind = DiskConfig::Kind::Spinning;
    spin.disk.spindles = 2;
    auto ram_sut = makeSut(ram);
    auto spin_sut = makeSut(spin);
    ram_sut->start(secs(30));
    spin_sut->start(secs(30));
    ram_sut->advanceTo(secs(30));
    spin_sut->advanceTo(secs(30));
    EXPECT_LT(ram_sut->diskBlockedUs() * 10, spin_sut->diskBlockedUs());
}

} // namespace
} // namespace jasim
