#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

SutConfig
lightNode(double per_node_ir)
{
    SutConfig config;
    config.injection_rate = per_node_ir;
    config.driver.ramp_up_s = 1.0;
    return config;
}

/** Cluster whose fabric, pool and balancer add no cost at all. */
ClusterConfig
zeroCostCluster(std::size_t nodes, double per_node_ir)
{
    ClusterConfig config;
    config.nodes = nodes;
    config.node = lightNode(per_node_ir);
    config.fabric = FabricConfig::zeroCost();
    config.db_pool.max_connections = 64;
    config.db_pool.connect_us = 0.0;
    config.lb.forward_us = 0.0;
    return config;
}

TEST(ClusterTest, OneNodeZeroCostFabricMatchesSingleSutJops)
{
    const std::uint64_t seed = 11;
    const double ir = 10.0;
    const SimTime end = secs(120);
    Shared shared(seed);

    SystemUnderTest sut(lightNode(ir), shared.profiles,
                        shared.registry, seed);
    sut.start(end);
    sut.advanceTo(end + secs(10));

    ClusterUnderTest cluster(zeroCostCluster(1, ir), shared.profiles,
                             shared.registry, seed);
    cluster.start(end);
    cluster.advanceTo(end + secs(10));

    // Identical seed => identical arrival stream; a free fabric must
    // not perturb throughput. Acceptance bound is 5%.
    const double sut_jops = sut.tracker().jops(secs(10), end);
    const double cluster_jops = cluster.jops(secs(10), end);
    EXPECT_GT(sut_jops, 0.0);
    EXPECT_NEAR(cluster_jops, sut_jops, sut_jops * 0.05);
    EXPECT_NEAR(
        static_cast<double>(cluster.tracker().totalCompleted()),
        static_cast<double>(sut.tracker().totalCompleted()),
        static_cast<double>(sut.tracker().totalCompleted()) * 0.05);
}

TEST(ClusterTest, RunsAreDeterministicUnderPinnedSeed)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(2, 5.0);
    config.fabric = FabricConfig{}; // real LAN links, jittered
    config.fabric.node_db.jitter_sigma = 0.2;

    ClusterUnderTest a(config, shared.profiles, shared.registry, 99);
    ClusterUnderTest b(config, shared.profiles, shared.registry, 99);
    a.start(secs(40));
    b.start(secs(40));
    a.advanceTo(secs(50));
    b.advanceTo(secs(50));

    EXPECT_GT(a.tracker().totalCompleted(), 100u);
    EXPECT_EQ(a.tracker().totalCompleted(),
              b.tracker().totalCompleted());
    EXPECT_DOUBLE_EQ(a.jops(secs(5), secs(40)),
                     b.jops(secs(5), secs(40)));
    EXPECT_EQ(a.fabric().totalBytes(), b.fabric().totalBytes());
}

TEST(ClusterTest, PerNodeCompletionsSumToTotal)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(3, 4.0);
    config.lb.policy = LbPolicy::RoundRobin;
    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 7);
    cluster.start(secs(40));
    cluster.advanceTo(secs(50));

    const std::uint64_t total = cluster.tracker().totalCompleted();
    EXPECT_GT(total, 100u);
    std::uint64_t sum = 0;
    for (std::uint32_t n = 0; n < 3; ++n) {
        const std::uint64_t on_node =
            cluster.tracker().completedOnNode(n);
        EXPECT_GT(on_node, 0u);
        sum += on_node;
    }
    EXPECT_EQ(sum, total);
    // Round-robin: no node serves more than a slight majority.
    for (std::uint32_t n = 0; n < 3; ++n)
        EXPECT_LT(cluster.tracker().completedOnNode(n),
                  total / 2);
}

TEST(ClusterTest, EveryNodeStackRunsItsOwnJvmAndScheduler)
{
    Shared shared;
    ClusterUnderTest cluster(zeroCostCluster(2, 5.0), shared.profiles,
                             shared.registry, 7);
    cluster.start(secs(30));
    cluster.advanceTo(secs(30));
    for (std::size_t n = 0; n < 2; ++n) {
        EXPECT_GT(cluster.node(n).scheduler().totalBusy(), 0u);
        EXPECT_GT(cluster.node(n).jit().totalCompileUs(), 0.0);
        // DB CPU runs on the DB node, not on app-server nodes.
        EXPECT_EQ(cluster.node(n).scheduler().busyBy(Component::Db2),
                  0u);
    }
    EXPECT_GT(cluster.dbScheduler().busyBy(Component::Db2), 0u);
    EXPECT_GT(cluster.dbApplication().rowsLoaded(), 0u);
}

TEST(ClusterTest, TinyDbPoolQueuesButLosesNothing)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(1, 8.0);
    config.db_pool.max_connections = 1;
    config.fabric.node_db = LinkConfig::lan(); // real RTTs to the DB
    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 13);
    cluster.start(secs(40));
    cluster.advanceTo(secs(60)); // drain

    const ConnectionPoolStats &stats = cluster.dbPool(0).stats();
    EXPECT_GT(stats.waits, 0u);
    EXPECT_EQ(cluster.dbPool(0).waiting(), 0u);
    // Every injected DB transaction eventually ran.
    EXPECT_GT(cluster.tracker().totalCompleted(), 200u);
    EXPECT_NEAR(
        static_cast<double>(cluster.tracker().totalCompleted()),
        8.0 * 1.6 * 39.0, // IR x jops/IR x injected seconds
        8.0 * 1.6 * 39.0 * 0.2);
}

TEST(ClusterTest, TwoNodesCarryTwiceTheLoadOfOne)
{
    Shared shared;
    ClusterUnderTest one(zeroCostCluster(1, 5.0), shared.profiles,
                         shared.registry, 3);
    ClusterUnderTest two(zeroCostCluster(2, 5.0), shared.profiles,
                         shared.registry, 3);
    one.start(secs(60));
    two.start(secs(60));
    one.advanceTo(secs(70));
    two.advanceTo(secs(70));
    const double jops_one = one.jops(secs(10), secs(60));
    const double jops_two = two.jops(secs(10), secs(60));
    EXPECT_NEAR(jops_two, 2.0 * jops_one, 0.15 * jops_two);
}

} // namespace
} // namespace jasim
