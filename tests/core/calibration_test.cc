/**
 * @file
 * End-to-end calibration bands: one steady-state run must land inside
 * loose bands around the paper's headline observations. These are the
 * "shape" assertions of the reproduction; EXPERIMENTS.md records the
 * exact paper-vs-measured numbers.
 */

#include <gtest/gtest.h>

#include "core/correlation_analysis.h"
#include "core/experiment.h"
#include "core/figures.h"
#include "hpm/events.h"

namespace jasim {
namespace {

class CalibrationTest : public ::testing::Test
{
  protected:
    static const ExperimentResult &result()
    {
        static const ExperimentResult cached = [] {
            ExperimentConfig config;
            config.sut.injection_rate = 40.0;
            config.ramp_up_s = 60.0;
            config.steady_s = 240.0;
            config.ramp_down_s = 10.0;
            config.window_s = 1.0;
            config.window.sample_insts = 120000;
            config.windows_per_group = 8;
            config.seed = 42;
            Experiment experiment(config);
            return experiment.run();
        }();
        return cached;
    }
};

TEST_F(CalibrationTest, HighUtilizationMostlyUser)
{
    // Paper Section 4.1: ~90% load at IR40; 80% user / 20% system.
    EXPECT_GT(result().cpu_utilization, 0.75);
    EXPECT_GT(result().vm_mean.user_pct,
              3.0 * result().vm_mean.system_pct);
    EXPECT_LT(result().vm_mean.iowait_pct, 1.0); // RAM disk
}

TEST_F(CalibrationTest, JopsPerIrNearPaperConstant)
{
    // Paper: ~1.6 JOPS per unit of IR on a tuned system.
    EXPECT_GT(result().jops_per_ir, 1.2);
    EXPECT_LT(result().jops_per_ir, 1.8);
}

TEST_F(CalibrationTest, ResponseTimeSlaPasses)
{
    EXPECT_TRUE(result().sla_pass);
}

TEST_F(CalibrationTest, GcMatchesFigure3)
{
    const GcSummary &gc = result().gc;
    ASSERT_GE(gc.collections, 4u);
    // Every 25-28 s; pauses 300-400 ms; mark ~80% / sweep ~20%;
    // well under 2% of runtime; no compaction.
    EXPECT_GT(gc.mean_interval_s, 18.0);
    EXPECT_LT(gc.mean_interval_s, 38.0);
    EXPECT_GT(gc.mean_pause_ms, 250.0);
    EXPECT_LT(gc.mean_pause_ms, 550.0);
    EXPECT_GT(gc.mark_fraction, 0.70);
    EXPECT_LT(gc.mark_fraction, 0.92);
    EXPECT_LT(gc.gc_time_fraction, 0.02);
    EXPECT_EQ(gc.compactions, 0u);
}

TEST_F(CalibrationTest, LiveHeapBoundedWellBelowHeap)
{
    // Paper: <200 MB of the 1 GB heap live at the end of the run.
    ASSERT_FALSE(result().gc_events.empty());
    const auto &last = result().gc_events.back();
    EXPECT_LT(last.live_bytes, 400ull << 20);
    EXPECT_GT(last.live_bytes, 100ull << 20);
}

TEST_F(CalibrationTest, MemoryIntensityMatchesSection423)
{
    // ~1 memory reference per 2 instructions; more loads than stores.
    const double loads =
        windowMean(result().windows, WindowMetric::LoadsPerInst);
    const double stores =
        windowMean(result().windows, WindowMetric::StoresPerInst);
    EXPECT_GT(loads + stores, 0.33);
    EXPECT_LT(loads + stores, 0.65);
    EXPECT_GT(loads, stores);
}

TEST_F(CalibrationTest, CpiHighAndSpeculationNearPaper)
{
    // Loaded CPI well above the idle 0.7; dispatched/completed ~2.3.
    const double cpi = windowMean(result().windows, WindowMetric::Cpi);
    EXPECT_GT(cpi, 2.0);
    EXPECT_LT(cpi, 10.0);
    const double spec =
        windowMean(result().windows, WindowMetric::SpeculationRate);
    EXPECT_GT(spec, 1.9);
    EXPECT_LT(spec, 3.2);
}

TEST_F(CalibrationTest, BranchPredictionNearFigure6)
{
    const double cond = windowMean(result().windows,
                                   WindowMetric::CondMispredictRate);
    EXPECT_GT(cond, 0.03);
    EXPECT_LT(cond, 0.14);
    const double target = windowMean(
        result().windows, WindowMetric::TargetMispredictRate);
    EXPECT_GT(target, 0.02);
    EXPECT_LT(target, 0.20);
}

TEST_F(CalibrationTest, GcWindowsHaveBetterPrediction)
{
    // Figure 6: during GC, more branches and fewer mispredictions.
    const double gc_mispredict = windowMeanIf(
        result().windows, WindowMetric::CondMispredictRate, true);
    const double app_mispredict = windowMeanIf(
        result().windows, WindowMetric::CondMispredictRate, false);
    if (gc_mispredict > 0.0)
        EXPECT_LT(gc_mispredict, app_mispredict * 1.05);
}

TEST_F(CalibrationTest, TranslationOrderingMatchesFigure7)
{
    // DERAT is the most frequent translation miss; ERAT >> TLB for
    // the heap because large pages relieve the TLB but not the ERAT.
    const auto &w = result().windows;
    const double derat =
        windowMean(w, WindowMetric::DeratMissPerInst);
    const double dtlb = windowMean(w, WindowMetric::DtlbMissPerInst);
    const double itlb = windowMean(w, WindowMetric::ItlbMissPerInst);
    EXPECT_GT(derat, 2.0 * dtlb);
    EXPECT_GT(derat, 2.0 * itlb);
    // TLB satisfies the majority of DERAT misses (paper: ~75%).
    EXPECT_LT(dtlb / derat, 0.55);
}

TEST_F(CalibrationTest, L1DCacheNearFigure8)
{
    const double load_miss =
        windowMean(result().windows, WindowMetric::L1LoadMissRate);
    const double store_miss =
        windowMean(result().windows, WindowMetric::L1StoreMissRate);
    // Paper: ~1/12 loads, ~1/5 stores. Stores miss more than loads
    // (write-through, no allocate on store miss).
    EXPECT_GT(load_miss, 0.04);
    EXPECT_LT(load_miss, 0.30);
    EXPECT_GT(store_miss, load_miss);
    EXPECT_LT(store_miss, 0.45);
}

TEST_F(CalibrationTest, LoadSourcesShapeOfFigure9)
{
    const auto shares = loadSourceShares(result().total);
    auto share = [&](DataSource s) {
        return shares[static_cast<std::size_t>(s)];
    };
    // L2 satisfies the majority of L1 misses; modified cache-to-cache
    // transfers are negligible (the co-scheduling claim).
    EXPECT_GT(share(DataSource::L2), 0.35);
    EXPECT_GT(share(DataSource::L2) + share(DataSource::L3), 0.60);
    EXPECT_LT(share(DataSource::L2_75Modified), 0.03);
    EXPECT_GT(share(DataSource::L2_75Shared), 0.001);
    EXPECT_LT(share(DataSource::Memory), 0.30);
}

TEST_F(CalibrationTest, FlatProfileOfSection412)
{
    const FlatProfileStats profile =
        result().profiler->flatProfile();
    // No hot spots: hottest method under a few percent; tens-to-
    // hundreds of methods needed for half the JITed time; most of the
    // 8500 methods sampled.
    EXPECT_LT(profile.hottest_share, 0.10);
    EXPECT_GT(profile.methods_for_half, 20u);
    EXPECT_GT(profile.methods_sampled, 4000u);
    // jas2004's own code is a small slice of JITed time.
    EXPECT_LT(profile.category_share[static_cast<std::size_t>(
                  MethodCategory::Benchmark)],
              0.10);
}

TEST_F(CalibrationTest, ComponentBreakdownOfFigure4)
{
    const auto shares = result().profiler->componentShares();
    auto share = [&](Component c) {
        return shares[static_cast<std::size_t>(c)];
    };
    const double was = share(Component::WasJit) +
        share(Component::WasOther);
    const double web_db = share(Component::Web) + share(Component::Db2);
    // WAS consumes about twice the web server + DB2 combined.
    EXPECT_GT(was, 1.5 * web_db);
    EXPECT_LT(was, 5.0 * web_db);
    // Roughly half of WAS time is JIT-compiled code.
    EXPECT_GT(share(Component::WasJit) / was, 0.40);
    EXPECT_LT(share(Component::WasJit) / was, 0.75);
    // GC contributes very little (paper: ~1.3%).
    EXPECT_LT(share(Component::GcMark) + share(Component::GcSweep),
              0.04);
}

TEST_F(CalibrationTest, LockingOfSection424)
{
    const ExecStats &total = result().total;
    // LARX roughly once per several hundred instructions.
    const double larx_interval = static_cast<double>(total.completed) /
        static_cast<double>(total.larx);
    EXPECT_GT(larx_interval, 150.0);
    EXPECT_LT(larx_interval, 1500.0);
    // SYNC-in-SRQ under 1% of cycles for the (mostly user) mix.
    EXPECT_LT(total.srq_sync_cycles / total.cycles, 0.012);
    // Little contention: STCX failures are rare.
    EXPECT_LT(static_cast<double>(total.stcx_fail),
              0.2 * static_cast<double>(total.stcx));
}

TEST_F(CalibrationTest, Figure10KeyCorrelations)
{
    const HpmStat &hpm = *result().hpm;
    // Prefetch-burst events correlate positively with CPI.
    EXPECT_GT(hpm.cpiCorrelation(event::streamAlloc), 0.15);
    // Cycles-with-completion anti-correlates (throughput effect).
    EXPECT_LT(hpm.cpiCorrelation(event::cyclesWithCompletion,
                                 HpmStat::Basis::PerWindow),
              -0.3);
    const AuxCorrelations aux = computeAuxCorrelations(hpm);
    // Speculation vs L1D misses: weak (paper: 0.1).
    EXPECT_LT(std::abs(aux.spec_rate_vs_l1d_miss), 0.5);
    // Branch volume vs target mispredictions: near zero (paper: -0.07).
    EXPECT_LT(std::abs(aux.branches_vs_target_mispredict), 0.5);
}

} // namespace
} // namespace jasim
