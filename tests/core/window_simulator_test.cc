#include <gtest/gtest.h>

#include "core/window_simulator.h"

namespace jasim {
namespace {

WindowMix
uniformMix(double busy_us = 1e6)
{
    WindowMix mix;
    for (std::size_t c = 0; c < componentCount; ++c)
        mix.fraction[c] = 1.0 / componentCount;
    mix.busy_us = busy_us;
    mix.idle_fraction = 0.0;
    return mix;
}

class WindowSimulatorTest : public ::testing::Test
{
  protected:
    WindowSimulatorTest()
        : profiles_(std::make_shared<const WorkloadProfiles>(3))
    {
        config_.sample_insts = 30000;
    }

    std::shared_ptr<const WorkloadProfiles> profiles_;
    WindowSimConfig config_;
};

TEST_F(WindowSimulatorTest, BudgetApproximatelyHonored)
{
    WindowSimulator sim(config_, profiles_, 1);
    const ExecStats stats = sim.simulateWindow(uniformMix(), 200 << 20);
    EXPECT_NEAR(static_cast<double>(stats.completed),
                static_cast<double>(config_.sample_insts), 2000.0);
}

TEST_F(WindowSimulatorTest, IdleWindowProducesNothing)
{
    WindowSimulator sim(config_, profiles_, 1);
    WindowMix idle;
    const ExecStats stats = sim.simulateWindow(idle, 200 << 20);
    EXPECT_EQ(stats.completed, 0u);
}

TEST_F(WindowSimulatorTest, RatesInPlausibleBands)
{
    WindowSimulator sim(config_, profiles_, 1);
    ExecStats total;
    for (int w = 0; w < 6; ++w)
        total.merge(sim.simulateWindow(uniformMix(), 200 << 20));
    const double insts = static_cast<double>(total.completed);
    // Memory instructions: roughly one per two instructions (paper).
    const double mem_ops =
        static_cast<double>(total.loads + total.stores) / insts;
    EXPECT_GT(mem_ops, 0.30);
    EXPECT_LT(mem_ops, 0.65);
    EXPECT_GT(total.cpi(), 1.0);
    EXPECT_LT(total.cpi(), 30.0);
    EXPECT_GT(total.speculationRate(), 1.5);
    EXPECT_LT(total.speculationRate(), 4.0);
}

TEST_F(WindowSimulatorTest, ScaleBlowsUpToNominalCycles)
{
    WindowSimulator sim(config_, profiles_, 1);
    const ExecStats stats = sim.simulateWindow(uniformMix(2e6), 0);
    const double scale = sim.scaleFor(stats, 2e6);
    EXPECT_NEAR(scale * stats.cycles,
                2e6 * config_.freq_ghz * 1e3, 1.0);
}

TEST_F(WindowSimulatorTest, JitSamplesAccumulate)
{
    WindowSimulator sim(config_, profiles_, 1);
    sim.simulateWindow(uniformMix(), 200 << 20);
    const auto samples = sim.jitMethodSamples();
    EXPECT_EQ(samples.size(),
              profiles_->layout(Component::WasJit).count());
    std::uint64_t total = 0;
    for (const auto s : samples)
        total += s;
    EXPECT_GT(total, 0u);
}

TEST_F(WindowSimulatorTest, GcWindowsChangeCharacter)
{
    WindowSimulator sim(config_, profiles_, 1);
    // Warm with app-only windows.
    WindowMix app;
    app.fraction[static_cast<std::size_t>(Component::WasJit)] = 1.0;
    app.busy_us = 1e6;
    for (int w = 0; w < 4; ++w)
        sim.simulateWindow(app, 200 << 20);
    const ExecStats app_stats = sim.simulateWindow(app, 200 << 20);

    WindowMix gc;
    gc.fraction[static_cast<std::size_t>(Component::GcMark)] = 1.0;
    gc.busy_us = 1e6;
    gc.gc_active = true;
    for (int w = 0; w < 2; ++w)
        sim.simulateWindow(gc, 200 << 20);
    const ExecStats gc_stats = sim.simulateWindow(gc, 200 << 20);

    // Paper: during GC, 2-3 orders of magnitude fewer TLB misses
    // (compare against the 4 KB-paged DB2 component, which carries
    // the workload's DTLB pressure) and better-predicted branches.
    WindowMix db;
    db.fraction[static_cast<std::size_t>(Component::Db2)] = 1.0;
    db.busy_us = 1e6;
    for (int w = 0; w < 2; ++w)
        sim.simulateWindow(db, 200 << 20);
    const ExecStats db_stats = sim.simulateWindow(db, 200 << 20);
    const double db_dtlb = static_cast<double>(db_stats.dtlb_miss) /
        static_cast<double>(db_stats.completed);
    const double gc_dtlb = static_cast<double>(gc_stats.dtlb_miss) /
        static_cast<double>(gc_stats.completed);
    EXPECT_LT(gc_dtlb, db_dtlb / 5.0 + 1e-9);

    const double app_mispredict =
        static_cast<double>(app_stats.cond_mispredict) /
        static_cast<double>(app_stats.cond_branches);
    const double gc_mispredict =
        static_cast<double>(gc_stats.cond_mispredict) /
        static_cast<double>(gc_stats.cond_branches);
    EXPECT_LT(gc_mispredict, app_mispredict);
}

TEST_F(WindowSimulatorTest, DeterministicForSeed)
{
    WindowSimulator a(config_, profiles_, 9);
    WindowSimulator b(config_, profiles_, 9);
    const ExecStats sa = a.simulateWindow(uniformMix(), 100 << 20);
    const ExecStats sb = b.simulateWindow(uniformMix(), 100 << 20);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.l1d_load_miss, sb.l1d_load_miss);
    EXPECT_DOUBLE_EQ(sa.cycles, sb.cycles);
}

} // namespace
} // namespace jasim
