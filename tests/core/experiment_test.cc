#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/figures.h"

namespace jasim {
namespace {

ExperimentConfig
quickConfig()
{
    ExperimentConfig config;
    config.sut.injection_rate = 6.0;
    config.sut.driver.ramp_up_s = 5.0;
    config.ramp_up_s = 10.0;
    config.steady_s = 30.0;
    config.ramp_down_s = 2.0;
    config.window_s = 1.0;
    config.window.sample_insts = 20000;
    config.windows_per_group = 2;
    config.seed = 5;
    return config;
}

TEST(ExperimentTest, ProducesSteadyStateWindows)
{
    Experiment experiment(quickConfig());
    const ExperimentResult result = experiment.run();
    EXPECT_NEAR(static_cast<double>(result.windows.size()), 30.0, 2.0);
    for (const auto &w : result.windows) {
        EXPECT_GT(w.stats.completed, 0u);
        EXPECT_GT(w.end, result.steady_from);
        EXPECT_LE(w.end, result.steady_to);
    }
}

TEST(ExperimentTest, SummariesPopulated)
{
    Experiment experiment(quickConfig());
    const ExperimentResult result = experiment.run();
    EXPECT_GT(result.jops, 0.0);
    EXPECT_GT(result.cpu_utilization, 0.0);
    EXPECT_LE(result.cpu_utilization, 1.0);
    EXPECT_NE(result.hpm, nullptr);
    EXPECT_NE(result.profiler, nullptr);
    EXPECT_GT(result.total.completed, 0u);
    for (const auto &series : result.throughput)
        EXPECT_GT(series.size(), 0u);
}

TEST(ExperimentTest, MicroDisabledSkipsWindows)
{
    ExperimentConfig config = quickConfig();
    config.micro_enabled = false;
    Experiment experiment(config);
    const ExperimentResult result = experiment.run();
    EXPECT_TRUE(result.windows.empty());
    EXPECT_GT(result.jops, 0.0); // system level still runs
}

TEST(ExperimentTest, ProfilerSeesComponentsAndMethods)
{
    Experiment experiment(quickConfig());
    const ExperimentResult result = experiment.run();
    const auto shares = result.profiler->componentShares();
    EXPECT_GT(shares[static_cast<std::size_t>(Component::WasJit)],
              0.1);
    EXPECT_GT(result.profiler->flatProfile().total_ticks, 0u);
}

TEST(ExperimentTest, WindowSeriesExtraction)
{
    Experiment experiment(quickConfig());
    const ExperimentResult result = experiment.run();
    const TimeSeries cpi =
        windowSeries(result.windows, WindowMetric::Cpi, "CPI");
    EXPECT_EQ(cpi.size(), result.windows.size());
    EXPECT_GT(cpi.mean(), 0.5);
    const double loads =
        windowMean(result.windows, WindowMetric::LoadsPerInst);
    EXPECT_GT(loads, 0.1);
    EXPECT_LT(loads, 0.6);
}

TEST(ExperimentTest, DeterministicForSeed)
{
    Experiment a(quickConfig());
    Experiment b(quickConfig());
    const ExperimentResult ra = a.run();
    const ExperimentResult rb = b.run();
    EXPECT_EQ(ra.windows.size(), rb.windows.size());
    EXPECT_DOUBLE_EQ(ra.jops, rb.jops);
    EXPECT_EQ(ra.total.completed, rb.total.completed);
}

TEST(ExperimentTest, LoadSourceSharesSumToOne)
{
    Experiment experiment(quickConfig());
    const ExperimentResult result = experiment.run();
    const auto shares = loadSourceShares(result.total);
    double sum = 0.0;
    for (const double s : shares)
        sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // The study system has no second chip per MCM: no L2.5 traffic.
    EXPECT_DOUBLE_EQ(
        shares[static_cast<std::size_t>(DataSource::L2_5)], 0.0);
}

} // namespace
} // namespace jasim
