#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/cluster.h"
#include "driver/arrival.h"
#include "driver/driver.h"
#include "sim/event_queue.h"

namespace jasim {
namespace {

// ---- grammar ---------------------------------------------------------

TEST(ArrivalSpecTest, EmptyAndFixedParseToFixed)
{
    EXPECT_EQ(ArrivalSpec::parse("").mode, ArrivalMode::Fixed);
    EXPECT_EQ(ArrivalSpec::parse("fixed").mode, ArrivalMode::Fixed);
    EXPECT_EQ(ArrivalSpec::parse(" fixed ").mode, ArrivalMode::Fixed);
    EXPECT_FALSE(ArrivalSpec::parse("").enabled());
    EXPECT_DOUBLE_EQ(ArrivalSpec::parse("").maxMultiplier(), 1.0);
}

TEST(ArrivalSpecTest, MmppParsesKeysAndDefaults)
{
    const ArrivalSpec spec =
        ArrivalSpec::parse("mmpp:burst=5,base=2,on=3,off=9");
    EXPECT_EQ(spec.mode, ArrivalMode::Mmpp);
    EXPECT_DOUBLE_EQ(spec.burst_multiplier, 5.0);
    EXPECT_DOUBLE_EQ(spec.base_multiplier, 2.0);
    EXPECT_DOUBLE_EQ(spec.burst_mean_s, 3.0);
    EXPECT_DOUBLE_EQ(spec.baseline_mean_s, 9.0);
    EXPECT_DOUBLE_EQ(spec.maxMultiplier(), 5.0);

    const ArrivalSpec defaults = ArrivalSpec::parse("mmpp:");
    EXPECT_DOUBLE_EQ(defaults.base_multiplier, 1.0);
    EXPECT_DOUBLE_EQ(defaults.burst_multiplier, 4.0);
}

TEST(ArrivalSpecTest, CurveParsesSortedKnots)
{
    const ArrivalSpec spec =
        ArrivalSpec::parse("curve:0=1,60=4,120=0.5");
    EXPECT_EQ(spec.mode, ArrivalMode::Curve);
    ASSERT_EQ(spec.points.size(), 3u);
    EXPECT_EQ(spec.points[1].at, secs(60));
    EXPECT_DOUBLE_EQ(spec.points[1].multiplier, 4.0);
    EXPECT_DOUBLE_EQ(spec.maxMultiplier(), 4.0);
}

TEST(ArrivalSpecTest, MalformedSpecsThrowNamingTheToken)
{
    EXPECT_THROW(ArrivalSpec::parse("bogus:"), std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("mmpp:burst=nope"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("mmpp:burst=0"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("mmpp:wat=1"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("mmpp:burst=1,base=3"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("curve:0=1"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("curve:10=1,10=2"),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalSpec::parse("curve:0=0,50=0"),
                 std::invalid_argument);
    try {
        ArrivalSpec::parse("mmpp:on=-2");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("--arrival"), std::string::npos);
        EXPECT_NE(what.find("-2"), std::string::npos);
    }
}

// ---- modulator -------------------------------------------------------

TEST(RateModulatorTest, CurveInterpolatesAndClamps)
{
    RateModulator mod(ArrivalSpec::parse("curve:10=1,20=3,30=2"), 1);
    EXPECT_DOUBLE_EQ(mod.multiplier(0), 1.0);        // clamp before
    EXPECT_DOUBLE_EQ(mod.multiplier(secs(10)), 1.0); // knot
    EXPECT_DOUBLE_EQ(mod.multiplier(secs(15)), 2.0); // midpoint
    EXPECT_DOUBLE_EQ(mod.multiplier(secs(20)), 3.0);
    EXPECT_DOUBLE_EQ(mod.multiplier(secs(25)), 2.5);
    EXPECT_DOUBLE_EQ(mod.multiplier(secs(99)), 2.0); // clamp after
    EXPECT_EQ(mod.burstCount(), 0u);
}

TEST(RateModulatorTest, MmppFlipsBetweenExactlyTwoLevels)
{
    const ArrivalSpec spec =
        ArrivalSpec::parse("mmpp:base=1,burst=4,on=2,off=5");
    RateModulator mod(spec, 77);
    bool saw_base = false;
    bool saw_burst = false;
    for (SimTime at = 0; at < secs(200); at += secs(1) / 10) {
        const double m = mod.multiplier(at);
        if (m == 1.0)
            saw_base = true;
        else if (m == 4.0)
            saw_burst = true;
        else
            FAIL() << "unexpected multiplier " << m;
    }
    EXPECT_TRUE(saw_base);
    EXPECT_TRUE(saw_burst);
    EXPECT_GT(mod.burstCount(), 5u);
}

TEST(RateModulatorTest, SameSeedSameTimeline)
{
    const ArrivalSpec spec = ArrivalSpec::parse("mmpp:burst=6");
    RateModulator a(spec, 42);
    RateModulator b(spec, 42);
    RateModulator c(spec, 43);
    bool diverged = false;
    for (SimTime at = 0; at < secs(300); at += secs(1) / 4) {
        EXPECT_DOUBLE_EQ(a.multiplier(at), b.multiplier(at));
        diverged = diverged || a.multiplier(at) != c.multiplier(at);
    }
    EXPECT_TRUE(diverged) << "different seeds gave one timeline";
}

// ---- driver integration ---------------------------------------------

struct Arrivals
{
    std::vector<SimTime> times;
    std::vector<RequestType> types;
};

Arrivals
collect(const DriverConfig &config, std::uint64_t seed, SimTime end)
{
    Arrivals out;
    EventQueue queue;
    Driver driver(config, queue, seed, [&](const Request &request) {
        out.times.push_back(request.arrival);
        out.types.push_back(request.type);
    });
    driver.start(0, end);
    queue.runUntil(end);
    return out;
}

DriverConfig
fastDriver()
{
    DriverConfig config;
    config.injection_rate = 50.0;
    config.ramp_up_s = 0.0;
    return config;
}

TEST(DriverArrivalTest, FixedSpecIsByteIdenticalToDefault)
{
    // `--arrival fixed` must not even perturb the RNG stream.
    DriverConfig with_spec = fastDriver();
    with_spec.arrival = ArrivalSpec::parse("fixed");
    const Arrivals legacy = collect(fastDriver(), 9, secs(30));
    const Arrivals spelled = collect(with_spec, 9, secs(30));
    ASSERT_EQ(legacy.times.size(), spelled.times.size());
    EXPECT_EQ(legacy.times, spelled.times);
    EXPECT_EQ(legacy.types, spelled.types);
}

TEST(DriverArrivalTest, MmppAndCurveAreSameSeedDeterministic)
{
    for (const char *spec :
         {"mmpp:burst=5,on=2,off=4", "curve:0=1,10=6,20=1"}) {
        DriverConfig config = fastDriver();
        config.arrival = ArrivalSpec::parse(spec);
        const Arrivals a = collect(config, 31, secs(30));
        const Arrivals b = collect(config, 31, secs(30));
        const Arrivals other = collect(config, 32, secs(30));
        ASSERT_GT(a.times.size(), 100u) << spec;
        EXPECT_EQ(a.times, b.times) << spec;
        EXPECT_EQ(a.types, b.types) << spec;
        EXPECT_NE(a.times, other.times) << spec;
    }
}

TEST(DriverArrivalTest, CurveShapesTheRate)
{
    // 4x multiplier over [10, 20) vs 1x elsewhere: the busy window
    // must carry roughly four times the arrivals of the quiet one.
    DriverConfig config = fastDriver();
    config.arrival =
        ArrivalSpec::parse("curve:0=1,9.99=1,10=4,20=4,20.01=1");
    const Arrivals run = collect(config, 5, secs(30));
    std::size_t quiet = 0;
    std::size_t busy = 0;
    for (const SimTime at : run.times) {
        if (at >= secs(10) && at < secs(20))
            ++busy;
        else if (at < secs(10))
            ++quiet;
    }
    EXPECT_GT(busy, 2 * quiet);
    EXPECT_LT(busy, 8 * quiet);
}

TEST(DriverArrivalTest, MmppBurstsRaiseTheMeanRate)
{
    DriverConfig config = fastDriver();
    config.arrival = ArrivalSpec::parse("mmpp:burst=4,on=5,off=5");
    const Arrivals fixed = collect(fastDriver(), 5, secs(60));
    const Arrivals bursty = collect(config, 5, secs(60));
    // Expected mean multiplier (1+4)/2 = 2.5x; leave slack for the
    // seeded sojourn draws.
    EXPECT_GT(bursty.times.size(), fixed.times.size() * 3 / 2);
}

// ---- cluster-level same-seed bit identity (satellite) ----------------

struct ClusterDigest
{
    std::uint64_t completed;
    std::uint64_t errors;
    std::uint64_t shed;
    std::uint64_t injected;
    std::uint64_t executed;
    double jops;
    double p99;

    bool operator==(const ClusterDigest &other) const
    {
        return completed == other.completed &&
            errors == other.errors && shed == other.shed &&
            injected == other.injected &&
            executed == other.executed && jops == other.jops &&
            p99 == other.p99;
    }
};

ClusterDigest
runCluster(const char *arrival, const char *admission,
           std::uint64_t seed)
{
    std::shared_ptr<const WorkloadProfiles> profiles =
        std::make_shared<const WorkloadProfiles>(11);
    std::shared_ptr<const MethodRegistry> registry =
        std::make_shared<const MethodRegistry>(
            profiles->layout(Component::WasJit).count(), 11);
    ClusterConfig config;
    config.nodes = 2;
    config.node.injection_rate = 30.0;
    config.node.driver.ramp_up_s = 2.0;
    config.node.driver.arrival = ArrivalSpec::parse(arrival);
    config.node.admission = adm::AdmissionConfig::parse(admission);
    ClusterUnderTest cluster(config, profiles, registry, seed);
    cluster.start(secs(25));
    cluster.advanceTo(secs(30));

    ClusterDigest digest;
    digest.completed = cluster.tracker().totalCompleted();
    digest.errors = cluster.tracker().errorCount();
    digest.shed = cluster.tracker().shedCount();
    digest.injected = cluster.driver()->injectedCount();
    digest.executed = cluster.queue().executed();
    digest.jops = cluster.jops(secs(2), secs(25));
    digest.p99 =
        cluster.tracker().p99ResponseSeconds(RequestType::Browse);
    return digest;
}

TEST(DriverArrivalTest, ClusterRunsAreBitIdenticalUnderSameSeed)
{
    const struct
    {
        const char *arrival;
        const char *admission;
    } cases[] = {
        {"mmpp:burst=6,on=2,off=6", ""},
        {"curve:0=1,10=5,20=1", ""},
        {"mmpp:burst=6,on=2,off=6",
         "adaptive:cap=32,min=2,target=0.05,interval=0.25,"
         "queue=64,deadline=0.3"},
    };
    for (const auto &c : cases) {
        const ClusterDigest a = runCluster(c.arrival, c.admission, 3);
        const ClusterDigest b = runCluster(c.arrival, c.admission, 3);
        EXPECT_GT(a.completed, 100u) << c.arrival;
        EXPECT_TRUE(a == b) << c.arrival << " / " << c.admission;
    }
}

} // namespace
} // namespace jasim
