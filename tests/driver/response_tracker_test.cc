#include <gtest/gtest.h>

#include "driver/response_tracker.h"

namespace jasim {
namespace {

Request
makeRequest(std::uint64_t id, RequestType type, SimTime arrival)
{
    Request r;
    r.id = id;
    r.type = type;
    r.arrival = arrival;
    return r;
}

TEST(ResponseTrackerTest, CountsPerType)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(3, RequestType::Purchase, 0), secs(1));
    EXPECT_EQ(tracker.completedCount(RequestType::Browse), 2u);
    EXPECT_EQ(tracker.totalCompleted(), 3u);
}

TEST(ResponseTrackerTest, SlaPassAndFail)
{
    ResponseTracker tracker;
    // 10 browses: 9 fast, 1 slow -> p90 = fast => pass.
    for (int i = 0; i < 9; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            millis(500));
    tracker.complete(makeRequest(99, RequestType::Browse, 0), secs(30));
    const auto verdicts = tracker.verdicts();
    const auto &browse =
        verdicts[static_cast<std::size_t>(RequestType::Browse)];
    EXPECT_TRUE(browse.pass);
    EXPECT_NEAR(browse.p90_seconds, 0.5, 1e-9);

    ResponseTracker failing;
    for (int i = 0; i < 10; ++i)
        failing.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            secs(3));
    EXPECT_FALSE(failing.allPass());
}

TEST(ResponseTrackerTest, RmiGetsLooserBound)
{
    ResponseTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::CreateWorkOrder, 0),
            secs(4));
    EXPECT_TRUE(tracker.allPass()); // 4 s < 5 s RMI bound
}

TEST(ResponseTrackerTest, EmptyTypePasses)
{
    ResponseTracker tracker;
    EXPECT_TRUE(tracker.allPass());
}

TEST(ResponseTrackerTest, ThroughputSeriesBucketsCompletions)
{
    ResponseTracker tracker(10.0); // 10-second buckets
    for (int i = 0; i < 40; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            secs(5)); // all in bucket 0
    const TimeSeries series =
        tracker.throughputSeries(RequestType::Browse, secs(30));
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series.value(0), 4.0); // 40 / 10 s
    EXPECT_DOUBLE_EQ(series.value(1), 0.0);
}

TEST(ResponseTrackerTest, JopsOverWindow)
{
    ResponseTracker tracker;
    for (int i = 0; i < 100; ++i)
        tracker.complete(makeRequest(static_cast<std::uint64_t>(i),
                                     RequestType::Manage, 0),
                         secs(10) + i);
    EXPECT_NEAR(tracker.jops(secs(10), secs(11)), 100.0, 1.0);
    EXPECT_DOUBLE_EQ(tracker.jops(secs(20), secs(30)), 0.0);
}

TEST(ResponseTrackerTest, P99SitsAtTheTail)
{
    ResponseTracker tracker;
    // 99 fast completions and one 30 s straggler: p90 stays fast,
    // p99 (nearest-rank over 100 samples) still reads fast, and the
    // straggler only shows at p100-equivalent ranks.
    for (int i = 0; i < 99; ++i)
        tracker.complete(makeRequest(static_cast<std::uint64_t>(i),
                                     RequestType::Browse, 0),
                         millis(500));
    tracker.complete(makeRequest(99, RequestType::Browse, 0), secs(30));
    const auto verdicts = tracker.verdicts();
    const auto &browse =
        verdicts[static_cast<std::size_t>(RequestType::Browse)];
    EXPECT_NEAR(browse.p90_seconds, 0.5, 1e-9);
    EXPECT_NEAR(browse.p99_seconds, 0.5, 1e-9);
    EXPECT_GE(browse.p99_seconds, browse.p90_seconds);
    EXPECT_NEAR(tracker.p99ResponseSeconds(RequestType::Browse), 0.5,
                1e-9);
}

TEST(ResponseTrackerTest, NodeLabelsAttributeCompletions)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1),
                     0);
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(2),
                     1);
    tracker.complete(makeRequest(3, RequestType::Manage, 0), secs(2),
                     1);
    EXPECT_EQ(tracker.completedOnNode(0), 1u);
    EXPECT_EQ(tracker.completedOnNode(1), 2u);
    EXPECT_EQ(tracker.completedOnNode(2), 0u);
    EXPECT_NEAR(tracker.nodeJops(1, 0, secs(4)), 0.5, 1e-9);
    EXPECT_EQ(tracker.totalCompleted(), 3u);
}

TEST(ResponseTrackerTest, MeanResponse)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(3));
    EXPECT_DOUBLE_EQ(tracker.meanResponseSeconds(RequestType::Browse),
                     2.0);
}

} // namespace
} // namespace jasim
