#include <gtest/gtest.h>

#include "driver/response_tracker.h"

namespace jasim {
namespace {

Request
makeRequest(std::uint64_t id, RequestType type, SimTime arrival)
{
    Request r;
    r.id = id;
    r.type = type;
    r.arrival = arrival;
    return r;
}

TEST(ResponseTrackerTest, CountsPerType)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(3, RequestType::Purchase, 0), secs(1));
    EXPECT_EQ(tracker.completedCount(RequestType::Browse), 2u);
    EXPECT_EQ(tracker.totalCompleted(), 3u);
}

TEST(ResponseTrackerTest, SlaPassAndFail)
{
    ResponseTracker tracker;
    // 10 browses: 9 fast, 1 slow -> p90 = fast => pass.
    for (int i = 0; i < 9; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            millis(500));
    tracker.complete(makeRequest(99, RequestType::Browse, 0), secs(30));
    const auto verdicts = tracker.verdicts();
    const auto &browse =
        verdicts[static_cast<std::size_t>(RequestType::Browse)];
    EXPECT_TRUE(browse.pass);
    EXPECT_NEAR(browse.p90_seconds, 0.5, 1e-9);

    ResponseTracker failing;
    for (int i = 0; i < 10; ++i)
        failing.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            secs(3));
    EXPECT_FALSE(failing.allPass());
}

TEST(ResponseTrackerTest, RmiGetsLooserBound)
{
    ResponseTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::CreateWorkOrder, 0),
            secs(4));
    EXPECT_TRUE(tracker.allPass()); // 4 s < 5 s RMI bound
}

TEST(ResponseTrackerTest, EmptyTypePasses)
{
    ResponseTracker tracker;
    EXPECT_TRUE(tracker.allPass());
}

TEST(ResponseTrackerTest, ThroughputSeriesBucketsCompletions)
{
    ResponseTracker tracker(10.0); // 10-second buckets
    for (int i = 0; i < 40; ++i)
        tracker.complete(
            makeRequest(static_cast<std::uint64_t>(i),
                        RequestType::Browse, 0),
            secs(5)); // all in bucket 0
    const TimeSeries series =
        tracker.throughputSeries(RequestType::Browse, secs(30));
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series.value(0), 4.0); // 40 / 10 s
    EXPECT_DOUBLE_EQ(series.value(1), 0.0);
}

TEST(ResponseTrackerTest, JopsOverWindow)
{
    ResponseTracker tracker;
    for (int i = 0; i < 100; ++i)
        tracker.complete(makeRequest(static_cast<std::uint64_t>(i),
                                     RequestType::Manage, 0),
                         secs(10) + i);
    EXPECT_NEAR(tracker.jops(secs(10), secs(11)), 100.0, 1.0);
    EXPECT_DOUBLE_EQ(tracker.jops(secs(20), secs(30)), 0.0);
}

TEST(ResponseTrackerTest, P99SitsAtTheTail)
{
    ResponseTracker tracker;
    // 99 fast completions and one 30 s straggler: p90 stays fast,
    // p99 (nearest-rank over 100 samples) still reads fast, and the
    // straggler only shows at p100-equivalent ranks.
    for (int i = 0; i < 99; ++i)
        tracker.complete(makeRequest(static_cast<std::uint64_t>(i),
                                     RequestType::Browse, 0),
                         millis(500));
    tracker.complete(makeRequest(99, RequestType::Browse, 0), secs(30));
    const auto verdicts = tracker.verdicts();
    const auto &browse =
        verdicts[static_cast<std::size_t>(RequestType::Browse)];
    EXPECT_NEAR(browse.p90_seconds, 0.5, 1e-9);
    EXPECT_NEAR(browse.p99_seconds, 0.5, 1e-9);
    EXPECT_GE(browse.p99_seconds, browse.p90_seconds);
    EXPECT_NEAR(tracker.p99ResponseSeconds(RequestType::Browse), 0.5,
                1e-9);
}

TEST(ResponseTrackerTest, NodeLabelsAttributeCompletions)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1),
                     0);
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(2),
                     1);
    tracker.complete(makeRequest(3, RequestType::Manage, 0), secs(2),
                     1);
    EXPECT_EQ(tracker.completedOnNode(0), 1u);
    EXPECT_EQ(tracker.completedOnNode(1), 2u);
    EXPECT_EQ(tracker.completedOnNode(2), 0u);
    EXPECT_NEAR(tracker.nodeJops(1, 0, secs(4)), 0.5, 1e-9);
    EXPECT_EQ(tracker.totalCompleted(), 3u);
}

TEST(ResponseTrackerTest, MeanResponse)
{
    ResponseTracker tracker;
    tracker.complete(makeRequest(1, RequestType::Browse, 0), secs(1));
    tracker.complete(makeRequest(2, RequestType::Browse, 0), secs(3));
    EXPECT_DOUBLE_EQ(tracker.meanResponseSeconds(RequestType::Browse),
                     2.0);
}

TEST(ResponseTrackerTest, EmptyPercentilesReportSentinelNotZero)
{
    ResponseTracker tracker;
    EXPECT_DOUBLE_EQ(tracker.meanResponseSeconds(RequestType::Browse),
                     ResponseTracker::kNoSamples);
    EXPECT_DOUBLE_EQ(tracker.p99ResponseSeconds(RequestType::Browse),
                     ResponseTracker::kNoSamples);
    // One completion of another type must not unstick Browse.
    tracker.complete(makeRequest(1, RequestType::Manage, 0), secs(1));
    EXPECT_DOUBLE_EQ(tracker.p99ResponseSeconds(RequestType::Browse),
                     ResponseTracker::kNoSamples);
    EXPECT_GE(tracker.p99ResponseSeconds(RequestType::Manage), 0.0);
}

TEST(ResponseTrackerTest, ErrorsCountPerKindAndNode)
{
    ResponseTracker tracker;
    tracker.error(makeRequest(1, RequestType::Browse, 0), secs(1), 0,
                  ErrorKind::NodeDown);
    tracker.error(makeRequest(2, RequestType::Manage, 0), secs(2), 0,
                  ErrorKind::DbTimeout);
    tracker.error(makeRequest(3, RequestType::Browse, 0), secs(2),
                  ResponseTracker::kNoNode, ErrorKind::NoBackend);
    EXPECT_EQ(tracker.errorCount(), 3u);
    EXPECT_EQ(tracker.errorCount(ErrorKind::NodeDown), 1u);
    EXPECT_EQ(tracker.errorCount(ErrorKind::DbTimeout), 1u);
    EXPECT_EQ(tracker.errorCount(ErrorKind::PoolTimeout), 0u);
    EXPECT_EQ(tracker.errorsOnNode(0), 2u);
    EXPECT_EQ(tracker.errorsOnNode(ResponseTracker::kNoNode), 1u);
    EXPECT_EQ(tracker.errorsOnNode(5), 0u);
    // Errors stay out of completions and percentiles.
    EXPECT_EQ(tracker.totalCompleted(), 0u);
    EXPECT_DOUBLE_EQ(tracker.p99ResponseSeconds(RequestType::Browse),
                     ResponseTracker::kNoSamples);
}

TEST(ResponseTrackerTest, ErrorRateMixesErrorsAndCompletions)
{
    ResponseTracker tracker;
    EXPECT_DOUBLE_EQ(tracker.errorRate(), 0.0);
    for (int i = 0; i < 3; ++i)
        tracker.complete(makeRequest(static_cast<std::uint64_t>(i),
                                     RequestType::Browse, 0),
                         secs(1));
    tracker.error(makeRequest(9, RequestType::Browse, 0), secs(1), 0,
                  ErrorKind::NodeDown);
    EXPECT_DOUBLE_EQ(tracker.errorRate(), 0.25);
}

TEST(ResponseTrackerTest, RetriesCountPerCause)
{
    ResponseTracker tracker;
    tracker.recordRetry(ErrorKind::DbTimeout);
    tracker.recordRetry(ErrorKind::DbTimeout);
    tracker.recordRetry(ErrorKind::PoolTimeout);
    EXPECT_EQ(tracker.retryCount(), 3u);
    EXPECT_EQ(tracker.retryCount(ErrorKind::DbTimeout), 2u);
    EXPECT_EQ(tracker.retryCount(ErrorKind::PoolTimeout), 1u);
    EXPECT_EQ(tracker.retryCount(ErrorKind::DbCircuitOpen), 0u);
}

TEST(ResponseTrackerTest, AvailabilityClipsDownIntervals)
{
    ResponseTracker tracker;
    EXPECT_DOUBLE_EQ(tracker.availability(0, secs(100)), 1.0);
    tracker.noteNodeDown(0, secs(10));
    tracker.noteNodeUp(0, secs(30));
    EXPECT_DOUBLE_EQ(tracker.availability(0, secs(100)), 0.8);
    // A still-open outage counts up to the horizon.
    tracker.noteNodeDown(1, secs(90));
    EXPECT_DOUBLE_EQ(tracker.availability(1, secs(100)), 0.9);
    // Horizon before the outage started: fully up.
    EXPECT_DOUBLE_EQ(tracker.availability(1, secs(50)), 1.0);
}

TEST(ResponseTrackerTest, DegradedSummaryMergesOverlappingWindows)
{
    ResponseTracker tracker;
    EXPECT_EQ(tracker.degradedSummary(secs(100)).intervals, 0u);
    tracker.noteDegraded(secs(10), secs(30));
    tracker.noteDegraded(secs(20), secs(40)); // overlaps the first
    tracker.noteNodeDown(0, secs(70));
    tracker.noteNodeUp(0, secs(80));
    const DegradedSummary summary = tracker.degradedSummary(secs(100));
    EXPECT_EQ(summary.intervals, 2u); // [10,40) and [70,80)
    EXPECT_EQ(summary.degraded_us, secs(40));
    EXPECT_DOUBLE_EQ(summary.degraded_fraction, 0.4);
}

TEST(ResponseTrackerTest, FailoverBlackoutsCountPerShard)
{
    ResponseTracker tracker;
    EXPECT_EQ(tracker.failoverCount(), 0u);
    EXPECT_EQ(tracker.failoverBlackoutUs(), 0u);
    tracker.noteFailoverBlackout(0, secs(10), secs(12));
    tracker.noteFailoverBlackout(1, secs(40), secs(41));
    EXPECT_EQ(tracker.failoverCount(), 2u);
    EXPECT_EQ(tracker.failoverBlackoutUs(), secs(3));
    EXPECT_EQ(tracker.failoverBlackoutUs(0), secs(2));
    EXPECT_EQ(tracker.failoverBlackoutUs(1), secs(1));
    EXPECT_EQ(tracker.failoverBlackoutUs(7), 0u); // untouched shard
}

TEST(ResponseTrackerTest, ShardAvailabilityClipsBlackouts)
{
    ResponseTracker tracker;
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(0, secs(100)), 1.0);
    tracker.noteFailoverBlackout(0, secs(10), secs(30));
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(0, secs(100)), 0.8);
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(1, secs(100)), 1.0);
    // A still-open blackout (to == 0) counts up to the horizon.
    tracker.noteFailoverBlackout(1, secs(90), 0);
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(1, secs(100)), 0.9);
    // Horizon before the blackout started: fully up.
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(1, secs(50)), 1.0);
}

TEST(ResponseTrackerTest, DegradedSummaryMergesFailoverBlackouts)
{
    // Blackouts join the degraded union exactly like degraded
    // windows and node-down intervals: overlaps merge, gaps count.
    ResponseTracker tracker;
    tracker.noteDegraded(secs(10), secs(30));
    tracker.noteFailoverBlackout(0, secs(20), secs(40)); // overlaps
    tracker.noteFailoverBlackout(1, secs(70), secs(80)); // disjoint
    const DegradedSummary summary = tracker.degradedSummary(secs(100));
    EXPECT_EQ(summary.intervals, 2u); // [10,40) and [70,80)
    EXPECT_EQ(summary.degraded_us, secs(40));
    EXPECT_DOUBLE_EQ(summary.degraded_fraction, 0.4);
}

TEST(ResponseTrackerTest, AllBlackoutWindowStillReportsSentinel)
{
    // A window that is 100% blackout completes nothing: percentile
    // queries must report the explicit no-samples sentinel, never a
    // fake zero latency.
    ResponseTracker tracker;
    tracker.noteFailoverBlackout(0, 0, secs(100));
    EXPECT_DOUBLE_EQ(tracker.p99ResponseSeconds(RequestType::Purchase),
                     ResponseTracker::kNoSamples);
    EXPECT_DOUBLE_EQ(tracker.meanResponseSeconds(RequestType::Purchase),
                     ResponseTracker::kNoSamples);
    EXPECT_DOUBLE_EQ(tracker.jops(0, secs(100)), 0.0);
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(0, secs(100)), 0.0);
}

TEST(ResponseTrackerTest, FailoverWaitErrorsCountLikeAnyKind)
{
    ResponseTracker tracker;
    tracker.error(makeRequest(1, RequestType::Purchase, 0), secs(1), 0,
                  ErrorKind::FailoverWait);
    EXPECT_EQ(tracker.errorCount(ErrorKind::FailoverWait), 1u);
    EXPECT_EQ(tracker.errorCount(), 1u);
    EXPECT_STREQ(errorKindName(ErrorKind::FailoverWait),
                 "failover-wait");
}

TEST(ResponseTrackerTest, ErrorKindNamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::None), "none");
    EXPECT_STREQ(errorKindName(ErrorKind::NodeDown), "node-down");
    EXPECT_STREQ(errorKindName(ErrorKind::NoBackend), "no-backend");
    EXPECT_STREQ(errorKindName(ErrorKind::DbTimeout), "db-timeout");
    EXPECT_STREQ(errorKindName(ErrorKind::DbCircuitOpen),
                 "db-circuit-open");
    EXPECT_STREQ(errorKindName(ErrorKind::PoolTimeout),
                 "pool-timeout");
    EXPECT_STREQ(errorKindName(ErrorKind::DbRetriesExhausted),
                 "db-retries-exhausted");
    EXPECT_STREQ(errorKindName(ErrorKind::RecoveryWait),
                 "recovery-wait");
}

TEST(ResponseTrackerTest, RecoveryWaitErrorsCountLikeAnyKind)
{
    ResponseTracker tracker;
    tracker.error(makeRequest(1, RequestType::Purchase, 0), secs(1), 0,
                  ErrorKind::RecoveryWait);
    EXPECT_EQ(tracker.errorCount(ErrorKind::RecoveryWait), 1u);
    EXPECT_EQ(tracker.errorCount(), 1u);
}

TEST(ResponseTrackerTest, DbRecoveryIntervalsSummed)
{
    ResponseTracker tracker;
    EXPECT_EQ(tracker.dbRecoveryCount(), 0u);
    EXPECT_EQ(tracker.dbRecoveryUs(), 0u);
    tracker.noteDbRecovery(secs(10), secs(13));
    tracker.noteDbRecovery(secs(20), secs(22));
    EXPECT_EQ(tracker.dbRecoveryCount(), 2u);
    EXPECT_EQ(tracker.dbRecoveryUs(), secs(5));
}

TEST(ResponseTrackerTest, AvailabilityMergesOverlappingWindows)
{
    // A failover blackout overlapping a crash window must be billed
    // once: 10..20 and 15..30 cover 20 s, not 25.
    ResponseTracker tracker;
    tracker.noteNodeDown(3, secs(10));
    tracker.noteNodeUp(3, secs(20));
    tracker.noteNodeDown(3, secs(15)); // overlapping observation
    tracker.noteNodeUp(3, secs(30));
    tracker.noteNodeDown(3, secs(40));
    tracker.noteNodeUp(3, secs(45));
    // Windows: 10..20, 15..30, 40..45 → merged 20 + 5 = 25 s.
    EXPECT_DOUBLE_EQ(tracker.availability(3, secs(100)), 0.75);
}

TEST(ResponseTrackerTest, ShardAvailabilityMergesOverlaps)
{
    ResponseTracker tracker;
    tracker.noteFailoverBlackout(0, secs(10), secs(20));
    tracker.noteSwitchover(0, secs(15), secs(18)); // inside the first
    tracker.noteFailoverBlackout(0, secs(40), secs(50));
    // Merged downtime: 10 + 10 = 20 s of 100.
    EXPECT_DOUBLE_EQ(tracker.shardAvailability(0, secs(100)), 0.8);
    // Counted separately: one switchover among three windows.
    EXPECT_EQ(tracker.switchoverCount(), 1u);
    EXPECT_EQ(tracker.failoverCount(), 3u);
}

TEST(ResponseTrackerTest, PartitionWindowsTracked)
{
    ResponseTracker tracker;
    EXPECT_EQ(tracker.partitionCount(), 0u);
    EXPECT_EQ(tracker.partitionUs(secs(100)), 0u);
    tracker.notePartitionWindow(secs(10), secs(30));
    tracker.notePartitionWindow(secs(90), 0); // never healed
    EXPECT_EQ(tracker.partitionCount(), 2u);
    // Open window runs to the horizon; both clip at it.
    EXPECT_EQ(tracker.partitionUs(secs(100)), secs(30));
    EXPECT_EQ(tracker.partitionUs(secs(20)), secs(10));
}

TEST(ResponseTrackerTest, PartitionedErrorsCountLikeAnyKind)
{
    ResponseTracker tracker;
    tracker.error(makeRequest(1, RequestType::Purchase, 0), secs(1), 0,
                  ErrorKind::Partitioned);
    EXPECT_EQ(tracker.errorCount(ErrorKind::Partitioned), 1u);
    EXPECT_EQ(tracker.errorCount(), 1u);
    EXPECT_STREQ(errorKindName(ErrorKind::Partitioned), "partitioned");
}

} // namespace
} // namespace jasim
