#include <gtest/gtest.h>

#include <map>

#include "driver/driver.h"

namespace jasim {
namespace {

TEST(DriverTest, ArrivalRateMatchesInjectionRate)
{
    EventQueue queue;
    DriverConfig config;
    config.injection_rate = 10.0;
    config.ramp_up_s = 0.0;
    std::uint64_t count = 0;
    Driver driver(config, queue, 1,
                  [&](const Request &) { ++count; });
    driver.start(0, secs(100));
    queue.runUntil(secs(100));
    // Expected: (1.0 + 0.6) x 10 /s x 100 s = 1600 +- noise.
    EXPECT_NEAR(static_cast<double>(count), 1600.0, 150.0);
}

TEST(DriverTest, MixMatchesConfiguredShares)
{
    EventQueue queue;
    DriverConfig config;
    config.injection_rate = 50.0;
    config.ramp_up_s = 0.0;
    std::map<RequestType, std::uint64_t> counts;
    Driver driver(config, queue, 2,
                  [&](const Request &r) { ++counts[r.type]; });
    driver.start(0, secs(200));
    queue.runUntil(secs(200));
    const double dealer =
        static_cast<double>(counts[RequestType::Browse] +
                            counts[RequestType::Purchase] +
                            counts[RequestType::Manage]);
    EXPECT_NEAR(counts[RequestType::Browse] / dealer, 0.50, 0.03);
    EXPECT_NEAR(counts[RequestType::Purchase] / dealer, 0.25, 0.03);
    // RMI stream is 0.6x of the dealer stream.
    EXPECT_NEAR(counts[RequestType::CreateWorkOrder] / dealer, 0.6,
                0.05);
}

TEST(DriverTest, RampUpThinsEarlyArrivals)
{
    EventQueue queue;
    DriverConfig config;
    config.injection_rate = 50.0;
    config.ramp_up_s = 100.0;
    std::uint64_t early = 0, late = 0;
    Driver driver(config, queue, 3, [&](const Request &r) {
        (r.arrival < secs(50) ? early : late) += 1;
    });
    driver.start(0, secs(150));
    queue.runUntil(secs(150));
    // First 50 s run at < half rate; the 50 s after the ramp at full.
    EXPECT_LT(early * 2, late);
}

TEST(DriverTest, UniqueMonotonicIds)
{
    EventQueue queue;
    DriverConfig config;
    config.ramp_up_s = 0.0;
    std::uint64_t last = 0;
    Driver driver(config, queue, 4, [&](const Request &r) {
        EXPECT_GT(r.id, last);
        last = r.id;
    });
    driver.start(0, secs(10));
    queue.runUntil(secs(10));
    EXPECT_GT(last, 0u);
}

TEST(DriverTest, NoArrivalsBeyondEnd)
{
    EventQueue queue;
    DriverConfig config;
    config.ramp_up_s = 0.0;
    SimTime latest = 0;
    Driver driver(config, queue, 5, [&](const Request &r) {
        latest = std::max(latest, r.arrival);
    });
    driver.start(0, secs(5));
    queue.runUntil(secs(60));
    EXPECT_LT(latest, secs(5));
}

TEST(DriverTest, JopsPerIrConstant)
{
    const DriverConfig config;
    EXPECT_NEAR(config.jopsPerIr(), 1.6, 1e-12);
}

} // namespace
} // namespace jasim
