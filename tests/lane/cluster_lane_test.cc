#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

/** Small LAN cluster, short ramp: quick but exercises every tier. */
ClusterConfig
lanCluster(std::size_t nodes, std::size_t lanes)
{
    ClusterConfig config;
    config.nodes = nodes;
    config.node.injection_rate = 8.0;
    config.node.driver.ramp_up_s = 1.0;
    config.lanes = lanes;
    return config;
}

struct RunTotals
{
    std::uint64_t completed;
    std::uint64_t errors;
    std::uint64_t events;
    std::uint64_t bytes;
    double jops;
};

RunTotals
runCluster(const Shared &shared, const ClusterConfig &config,
           bool expect_lane_mode)
{
    ClusterUnderTest cluster(config, shared.profiles, shared.registry,
                             21);
    EXPECT_EQ(cluster.laneModeActive(), expect_lane_mode);
    cluster.start(secs(12));
    cluster.advanceTo(secs(14)); // drain
    if (const lane::LaneScheduler *sched = cluster.laneScheduler()) {
        EXPECT_TRUE(expect_lane_mode);
        EXPECT_GT(sched->windows(), 0u);
        EXPECT_GT(sched->merged(), 0u);
    } else {
        EXPECT_FALSE(expect_lane_mode);
        EXPECT_EQ(cluster.laneScheduler(), nullptr);
    }
    return RunTotals{cluster.tracker().totalCompleted(),
                     cluster.tracker().errorCount(),
                     cluster.queue().executed(),
                     cluster.fabric().totalBytes(),
                     cluster.jops(secs(2), secs(12))};
}

TEST(ClusterLaneTest, NodeLaneMappingReservesLaneZeroForTheFront)
{
    EXPECT_EQ(ClusterUnderTest::nodeLane(0), 1u);
    EXPECT_EQ(ClusterUnderTest::nodeLane(7), 8u);
}

TEST(ClusterLaneTest, DefaultLanesZeroKeepsSerialKernel)
{
    Shared shared;
    const RunTotals serial =
        runCluster(shared, lanCluster(2, 0), false);
    EXPECT_GT(serial.completed, 50u);
}

TEST(ClusterLaneTest, LaneCountsAgreeBitForBit)
{
    Shared shared;
    const RunTotals one = runCluster(shared, lanCluster(3, 1), true);
    EXPECT_GT(one.completed, 50u);
    for (std::size_t lanes : {2u, 4u, 8u}) {
        const RunTotals n =
            runCluster(shared, lanCluster(3, lanes), true);
        EXPECT_EQ(n.completed, one.completed) << "lanes=" << lanes;
        EXPECT_EQ(n.errors, one.errors) << "lanes=" << lanes;
        EXPECT_EQ(n.events, one.events) << "lanes=" << lanes;
        EXPECT_EQ(n.bytes, one.bytes) << "lanes=" << lanes;
        EXPECT_DOUBLE_EQ(n.jops, one.jops) << "lanes=" << lanes;
    }
}

TEST(ClusterLaneTest, JitteredLinksStayBitIdenticalAcrossLaneCounts)
{
    Shared shared;
    ClusterConfig config = lanCluster(2, 1);
    config.fabric.node_db.jitter_sigma = 0.3;
    config.fabric.lb_node.jitter_sigma = 0.3;
    const RunTotals one = runCluster(shared, config, true);
    config.lanes = 4;
    const RunTotals four = runCluster(shared, config, true);
    EXPECT_GT(one.completed, 50u);
    EXPECT_EQ(four.completed, one.completed);
    EXPECT_EQ(four.events, one.events);
    EXPECT_EQ(four.bytes, one.bytes);
    EXPECT_DOUBLE_EQ(four.jops, one.jops);
}

TEST(ClusterLaneTest, ZeroCostFabricFallsBackToSerial)
{
    Shared shared;
    ClusterConfig config = lanCluster(2, 4);
    config.fabric = FabricConfig::zeroCost();
    // No lookahead (a message may cross a hop instantly): lane mode
    // silently stands down and the run completes serially.
    const RunTotals totals = runCluster(shared, config, false);
    EXPECT_GT(totals.completed, 50u);
}

TEST(ClusterLaneTest, FaultScheduleFallsBackToSerial)
{
    Shared shared;
    ClusterConfig config = lanCluster(2, 4);
    config.faults = FaultSchedule::parse("crash@5:node=0,restart=2");
    ClusterUnderTest cluster(config, shared.profiles, shared.registry,
                             21);
    EXPECT_FALSE(cluster.laneModeActive());
    EXPECT_TRUE(cluster.resilienceEnabled());
    cluster.start(secs(12));
    cluster.advanceTo(secs(14));
    EXPECT_GT(cluster.tracker().totalCompleted(), 50u);
}

TEST(ClusterLaneTest, ReplicationFallsBackToSerial)
{
    Shared shared;
    ClusterConfig config = lanCluster(2, 4);
    config.repl.shards = 2;
    ClusterUnderTest cluster(config, shared.profiles, shared.registry,
                             21);
    EXPECT_FALSE(cluster.laneModeActive());
    EXPECT_TRUE(cluster.replicationEnabled());
    cluster.start(secs(12));
    cluster.advanceTo(secs(14));
    EXPECT_GT(cluster.tracker().totalCompleted(), 50u);
}

} // namespace
} // namespace jasim
