#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "lane/worker_team.h"

namespace jasim::lane {
namespace {

TEST(WorkerTeamTest, WidthOneRunsInline)
{
    WorkerTeam team(1);
    EXPECT_EQ(team.width(), 1u);
    std::vector<int> hits(8, 0);
    team.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(WorkerTeamTest, EveryIndexRunsExactlyOnce)
{
    WorkerTeam team(4);
    EXPECT_EQ(team.width(), 4u);
    std::vector<std::atomic<int>> hits(100);
    team.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerTeamTest, CountZeroIsANoOp)
{
    WorkerTeam team(3);
    team.run(0, [](std::size_t) { FAIL() << "job ran for count=0"; });
}

TEST(WorkerTeamTest, CountBelowWidthStillCoversAll)
{
    WorkerTeam team(8);
    std::vector<std::atomic<int>> hits(3);
    team.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerTeamTest, TeamIsReusableAcrossManyRounds)
{
    WorkerTeam team(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 200; ++round)
        team.run(16, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 200 * 16);
}

TEST(WorkerTeamTest, JobExceptionIsRethrownToCaller)
{
    WorkerTeam team(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(team.run(32,
                          [&](std::size_t i) {
                              ran++;
                              if (i == 7)
                                  throw std::runtime_error("lane boom");
                          }),
                 std::runtime_error);
    EXPECT_GT(ran.load(), 0);
    // The team survives a throwing round.
    std::atomic<int> after{0};
    team.run(8, [&](std::size_t) { after++; });
    EXPECT_EQ(after.load(), 8);
}

} // namespace
} // namespace jasim::lane
