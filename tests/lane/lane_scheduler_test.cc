#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lane/lane_scheduler.h"
#include "sim/event_queue.h"

namespace jasim::lane {
namespace {

/** Per-lane execution log: (time, tag). Lane-confined, so safe to
 *  append from concurrently executing windows without locks. */
using LaneLog = std::vector<std::pair<SimTime, int>>;

TEST(LaneSchedulerTest, ConstructorValidatesArguments)
{
    EventQueue q;
    EXPECT_THROW(LaneScheduler(q, 0, 10, 1), std::invalid_argument);
    EXPECT_THROW(LaneScheduler(q, 2, 0, 1), std::invalid_argument);
}

TEST(LaneSchedulerTest, ThreadsClampToLaneCount)
{
    EventQueue q;
    LaneScheduler sched(q, 2, 10, 16);
    EXPECT_EQ(sched.laneCount(), 2u);
    EXPECT_LE(sched.threads(), 2u);
}

TEST(LaneSchedulerTest, InstallsAndUninstallsOnFacade)
{
    EventQueue q;
    {
        LaneScheduler sched(q, 2, 10, 1);
        EXPECT_EQ(q.laneRouter(), &sched);
    }
    EXPECT_EQ(q.laneRouter(), nullptr);
    // The facade is an ordinary serial queue again.
    int ran = 0;
    q.scheduleAt(5, [&] { ran++; });
    q.runUntil(10);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.now(), 10u);
}

TEST(LaneSchedulerTest, UntaggedRootSchedulesLandOnLaneZero)
{
    EventQueue q;
    LaneScheduler sched(q, 3, 10, 1);
    std::size_t seen = 99;
    q.scheduleAt(1, [&] { seen = LaneScheduler::currentLane(); });
    q.runUntil(5);
    EXPECT_EQ(seen, 0u);
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_EQ(q.now(), 5u);
}

TEST(LaneSchedulerTest, ToLaneRoutesAndNestsAndRestores)
{
    EventQueue q;
    LaneScheduler sched(q, 3, 10, 1);
    EXPECT_EQ(ToLane::current(), kInherit);
    std::size_t outer_seen = 99, inner_seen = 99;
    {
        ToLane outer(1);
        EXPECT_EQ(ToLane::current(), 1u);
        q.scheduleAt(1,
                     [&] { outer_seen = LaneScheduler::currentLane(); });
        {
            ToLane inner(2);
            EXPECT_EQ(ToLane::current(), 2u);
            q.scheduleAt(1, [&] {
                inner_seen = LaneScheduler::currentLane();
            });
        }
        EXPECT_EQ(ToLane::current(), 1u);
    }
    EXPECT_EQ(ToLane::current(), kInherit);
    q.runUntil(5);
    EXPECT_EQ(outer_seen, 1u);
    EXPECT_EQ(inner_seen, 2u);
}

TEST(LaneSchedulerTest, SameLaneSchedulingInsideWindowIsImmediate)
{
    EventQueue q;
    LaneScheduler sched(q, 2, 100, 1);
    // A chain that stays on lane 0 with 1 us steps: every hop lands
    // inside the same 100 us window, no outbox round-trips needed.
    std::vector<SimTime> times;
    std::function<void()> step = [&] {
        times.push_back(q.now());
        if (times.size() < 10)
            q.scheduleAfter(1, [&] { step(); });
    };
    q.scheduleAt(1, [&] { step(); });
    q.runUntil(50);
    ASSERT_EQ(times.size(), 10u);
    for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_EQ(times[i], 1 + i);
    // One window covered the whole chain.
    EXPECT_EQ(sched.windows(), 1u);
    EXPECT_EQ(sched.merged(), 0u);
}

TEST(LaneSchedulerTest, CrossLaneInsideWindowThrowsLookaheadViolation)
{
    EventQueue q;
    LaneScheduler sched(q, 2, 50, 1);
    q.scheduleAt(10, [&] {
        ToLane to_other(1);
        q.scheduleAfter(5, [] {}); // 15 < window end 60: violation
    });
    EXPECT_THROW(q.runUntil(100), std::logic_error);
}

TEST(LaneSchedulerTest, CrossLaneAtLookaheadDistanceIsDelivered)
{
    EventQueue q;
    LaneScheduler sched(q, 2, 10, 1);
    std::size_t seen = 99;
    SimTime when = 0;
    q.scheduleAt(5, [&] {
        ToLane to_other(1);
        q.scheduleAfter(10, [&] {
            seen = LaneScheduler::currentLane();
            when = q.now();
        });
    });
    q.runUntil(30);
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(when, 15u);
    EXPECT_EQ(sched.merged(), 1u);
}

/**
 * The determinism property the whole subsystem exists for: a scripted
 * multi-lane simulation — cross-lane ping-pong plus same-lane chains,
 * all hops >= the lookahead — produces identical per-lane logs,
 * window counts, and merge counts for every thread count.
 */
LaneLog
pingPongRun(std::size_t threads, std::uint64_t *windows,
            std::uint64_t *merged, std::uint64_t *executed)
{
    constexpr SimTime kLookahead = 10;
    constexpr std::size_t kLanes = 4;
    EventQueue q;
    LaneScheduler sched(q, kLanes, kLookahead, threads);

    std::vector<LaneLog> logs(kLanes);
    // Each chain hops lane -> lane+1 -> ... with +lookahead steps.
    // (Calling the shared std::function from concurrent lanes is
    // fine: operator() does not mutate it.)
    std::function<void()> hop = [&] {
        const std::size_t lane = LaneScheduler::currentLane();
        logs[lane].push_back({q.now(), static_cast<int>(lane)});
        if (q.now() >= 500)
            return;
        ToLane next((lane + 1) % kLanes);
        q.scheduleAfter(kLookahead, [&] { hop(); });
    };
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        ToLane to(lane);
        q.scheduleAt(1 + lane, [&] { hop(); });
    }
    q.runUntil(600);
    *windows = sched.windows();
    *merged = sched.merged();
    *executed = q.executed();

    LaneLog flat;
    for (const LaneLog &log : logs)
        flat.insert(flat.end(), log.begin(), log.end());
    return flat;
}

TEST(LaneSchedulerTest, ThreadCountNeverChangesTheSchedule)
{
    std::uint64_t w1 = 0, m1 = 0, e1 = 0;
    const LaneLog serial = pingPongRun(1, &w1, &m1, &e1);
    EXPECT_GT(e1, 100u);
    EXPECT_GT(m1, 50u);
    for (std::size_t threads : {2u, 4u, 8u}) {
        std::uint64_t w = 0, m = 0, e = 0;
        const LaneLog parallel = pingPongRun(threads, &w, &m, &e);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
        EXPECT_EQ(w, w1) << "threads=" << threads;
        EXPECT_EQ(m, m1) << "threads=" << threads;
        EXPECT_EQ(e, e1) << "threads=" << threads;
    }
}

TEST(LaneSchedulerTest, MergeOrderIsCanonicalAcrossOrigins)
{
    // Two lanes emit to lane 0 at the same target time; the canonical
    // order (emit time, origin lane, emit seq) must decide, not host
    // scheduling. Origin 1 emits later in sim time than origin 2, so
    // origin 2's event runs first despite the higher lane number.
    for (std::size_t threads : {1u, 3u}) {
        EventQueue q;
        LaneScheduler sched(q, 3, 10, threads);
        std::vector<int> order; // only lane 0 appends: race-free
        {
            ToLane to(1);
            q.scheduleAt(5, [&] {
                ToLane to_front(0);
                q.scheduleAt(20, [&] { order.push_back(1); });
            });
        }
        {
            ToLane to(2);
            q.scheduleAt(3, [&] {
                ToLane to_front(0);
                q.scheduleAt(20, [&] { order.push_back(2); });
            });
        }
        q.runUntil(30);
        ASSERT_EQ(order.size(), 2u) << "threads=" << threads;
        EXPECT_EQ(order[0], 2) << "threads=" << threads;
        EXPECT_EQ(order[1], 1) << "threads=" << threads;
    }
}

TEST(LaneSchedulerTest, FacadeCountersAggregateAcrossLanes)
{
    EventQueue q;
    LaneScheduler sched(q, 3, 10, 1);
    for (std::size_t lane = 0; lane < 3; ++lane) {
        ToLane to(lane);
        q.scheduleAt(2, [] {});
        q.scheduleAt(4, [] {});
    }
    EXPECT_EQ(q.pending(), 6u);
    EXPECT_EQ(q.executed(), 0u);
    q.runUntil(10);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 6u);
    EXPECT_EQ(q.now(), 10u);
}

TEST(LaneSchedulerTest, RunUntilAdvancesIdleLanesToHorizon)
{
    EventQueue q;
    LaneScheduler sched(q, 2, 10, 1);
    q.runUntil(50); // no events at all
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.executed(), 0u);
    // Scheduling after an idle advance still works.
    int ran = 0;
    q.scheduleAt(60, [&] { ran++; });
    q.runUntil(70);
    EXPECT_EQ(ran, 1);
}

} // namespace
} // namespace jasim::lane
