#include <gtest/gtest.h>

#include <sstream>

#include "jvm/verbose_gc_format.h"

namespace jasim {
namespace {

GcEvent
sampleEvent()
{
    GcEvent e;
    e.start = secs(26);
    e.mark_ms = 320.0;
    e.sweep_ms = 64.0;
    e.used_before = 900ull << 20;
    e.used_after = 216ull << 20;
    e.live_bytes = 215ull << 20;
    e.dark_bytes = 1ull << 20;
    e.freed_bytes = 684ull << 20;
    e.live_cells = 60000;
    e.reclaimed_cells = 180000;
    return e;
}

TEST(VerboseGcFormatTest, EventRecordFields)
{
    std::ostringstream os;
    printVerboseGcEvent(os, sampleEvent(), 3, 1024ull << 20);
    const std::string out = os.str();
    EXPECT_NE(out.find("id=\"3\""), std::string::npos);
    EXPECT_NE(out.find("<mark ms=\"320.0\"/>"), std::string::npos);
    EXPECT_NE(out.find("<sweep ms=\"64.0\"/>"), std::string::npos);
    EXPECT_NE(out.find("used=\"216.0MB\""), std::string::npos);
    EXPECT_NE(out.find("free=\"808.0MB\""), std::string::npos);
    EXPECT_NE(out.find("reclaimed cells=\"180000\""),
              std::string::npos);
    EXPECT_EQ(out.find("<compact"), std::string::npos);
}

TEST(VerboseGcFormatTest, CompactionShownWhenPresent)
{
    GcEvent e = sampleEvent();
    e.compacted = true;
    e.compact_ms = 512.0;
    std::ostringstream os;
    printVerboseGcEvent(os, e, 0, 1024ull << 20);
    EXPECT_NE(os.str().find("<compact ms=\"512.0\"/>"),
              std::string::npos);
}

TEST(VerboseGcFormatTest, LogIncludesSummary)
{
    VerboseGcLog log;
    GcEvent a = sampleEvent();
    GcEvent b = sampleEvent();
    b.start = secs(52);
    log.record(a);
    log.record(b);
    std::ostringstream os;
    printVerboseGcLog(os, log, 1024ull << 20, secs(60));
    const std::string out = os.str();
    EXPECT_NE(out.find("<summary collections=\"2\""),
              std::string::npos);
    EXPECT_NE(out.find("interval=\"26.00s\""), std::string::npos);
    EXPECT_NE(out.find("pause=\"384ms\""), std::string::npos);
}

} // namespace
} // namespace jasim
