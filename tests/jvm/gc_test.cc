#include <gtest/gtest.h>

#include "jvm/gc.h"

namespace jasim {
namespace {

GcConfig
smallConfig()
{
    GcConfig config;
    config.heap.size_bytes = 64ull * 1024 * 1024;
    config.baseline_bytes = 8ull * 1024 * 1024;
    return config;
}

TEST(GcTest, BaselineAllocatedAtStartup)
{
    GarbageCollector gc(smallConfig(), 1);
    EXPECT_GE(gc.heap().usedBytes(), smallConfig().baseline_bytes);
    EXPECT_GT(gc.graph().cellCount(), 0u);
}

TEST(GcTest, AllocationFailsWhenHeapFull)
{
    GarbageCollector gc(smallConfig(), 2);
    SimTime now = 0;
    bool failed = false;
    for (int i = 0; i < 10000; ++i) {
        now += millis(1);
        if (!gc.allocate(64 * 1024, now)) {
            failed = true;
            break;
        }
    }
    EXPECT_TRUE(failed);
}

TEST(GcTest, CollectReclaimsDeadTransients)
{
    GarbageCollector gc(smallConfig(), 3);
    SimTime now = 0;
    while (gc.allocate(64 * 1024, now))
        now += millis(2);
    const auto used_before = gc.heap().usedBytes();
    const GcEvent event = gc.collect(now + secs(30));
    EXPECT_GT(event.freed_bytes, 0u);
    EXPECT_LT(gc.heap().usedBytes(), used_before);
    EXPECT_EQ(event.used_before, used_before);
    // Baseline survives: live never drops below the startup set.
    EXPECT_GE(event.live_bytes, smallConfig().baseline_bytes / 2);
    EXPECT_TRUE(gc.heap().accountingConsistent());
}

TEST(GcTest, MarkDominatesPause)
{
    GarbageCollector gc(smallConfig(), 4);
    SimTime now = 0;
    while (gc.allocate(64 * 1024, now))
        now += millis(2);
    const GcEvent event = gc.collect(now + secs(30));
    EXPECT_GT(event.mark_ms, event.sweep_ms);
    EXPECT_GT(event.pauseMs(), 0.0);
    EXPECT_FALSE(event.compacted); // low fragmentation early on
}

TEST(GcTest, AllocationSucceedsAfterCollect)
{
    GarbageCollector gc(smallConfig(), 5);
    SimTime now = 0;
    while (gc.allocate(64 * 1024, now))
        now += millis(2);
    gc.collect(now + secs(30));
    EXPECT_TRUE(gc.allocate(64 * 1024, now + secs(30)));
}

TEST(GcTest, SteadyStateCycle)
{
    // Allocate at a fixed rate and let GCs trigger naturally; the
    // interval between collections should be roughly constant and the
    // live set bounded (paper Figure 3's character).
    GcConfig config = smallConfig();
    GarbageCollector gc(config, 6);
    SimTime now = 0;
    std::vector<SimTime> gc_times;
    for (int step = 0; step < 40000 && gc_times.size() < 6; ++step) {
        now += millis(1);
        if (!gc.allocate(16 * 1024, now)) { // ~16 MB/s
            gc.collect(now);
            gc_times.push_back(now);
            ASSERT_TRUE(gc.allocate(16 * 1024, now));
        }
    }
    ASSERT_GE(gc_times.size(), 4u);
    std::vector<double> gaps;
    for (std::size_t i = 2; i < gc_times.size(); ++i)
        gaps.push_back(toSeconds(gc_times[i] - gc_times[i - 1]));
    const double first = gaps.front();
    for (const double g : gaps) {
        EXPECT_GT(g, first * 0.6);
        EXPECT_LT(g, first * 1.7);
    }
    // Live set bounded well below the heap.
    EXPECT_LT(gc.lastLiveBytes(), config.heap.size_bytes * 3 / 4);
    EXPECT_EQ(gc.log().events().size(), gc_times.size());
}

TEST(GcTest, CompactionTriggersOnHighFragmentation)
{
    GcConfig config = smallConfig();
    config.compact_dark_fraction = 0.0000001; // force compaction
    GarbageCollector gc(config, 7);
    SimTime now = 0;
    while (gc.allocate(64 * 1024, now))
        now += millis(2);
    // Dark matter needs at least one sliver; churn a little first.
    const GcEvent event = gc.collect(now + secs(30));
    if (event.dark_bytes == 0 && !event.compacted) {
        // Extremely clean heap; force another cycle.
        while (gc.allocate(32 * 1024, now + secs(31))) {
        }
        const GcEvent second = gc.collect(now + secs(60));
        EXPECT_TRUE(second.compacted || second.dark_bytes == 0);
    } else {
        EXPECT_TRUE(event.compacted);
        EXPECT_EQ(event.dark_bytes, 0u);
        EXPECT_GT(event.compact_ms, 0.0);
    }
    EXPECT_TRUE(gc.heap().accountingConsistent());
}

} // namespace
} // namespace jasim
