#include <gtest/gtest.h>

#include "jvm/jit.h"

namespace jasim {
namespace {

class JitTest : public ::testing::Test
{
  protected:
    JitTest() : registry_(100, 1), jit_(JitConfig{}, registry_) {}

    MethodRegistry registry_;
    JitCompiler jit_;
};

TEST_F(JitTest, StartsInterpreted)
{
    EXPECT_EQ(jit_.tier(0), CompileTier::Interpreted);
    EXPECT_DOUBLE_EQ(jit_.speedup(0), 1.0);
}

TEST_F(JitTest, WarmThresholdTriggersCompile)
{
    const double cost = jit_.recordInvocations(0, 1000, secs(1));
    EXPECT_GT(cost, 0.0);
    EXPECT_EQ(jit_.tier(0), CompileTier::Warm);
    EXPECT_GT(jit_.codeCacheBytes(), 0u);
}

TEST_F(JitTest, TiersEscalateWithInvocations)
{
    jit_.recordInvocations(1, 1000, secs(1));
    EXPECT_EQ(jit_.tier(1), CompileTier::Warm);
    jit_.recordInvocations(1, 49000, secs(2));
    EXPECT_EQ(jit_.tier(1), CompileTier::Hot);
    jit_.recordInvocations(1, 950000, secs(100));
    EXPECT_EQ(jit_.tier(1), CompileTier::Scorching);
    EXPECT_DOUBLE_EQ(jit_.speedup(1), JitConfig{}.scorching_speedup);
}

TEST_F(JitTest, BigJumpCrossesMultipleTiers)
{
    const double cost = jit_.recordInvocations(2, 10'000'000, secs(1));
    EXPECT_EQ(jit_.tier(2), CompileTier::Scorching);
    // All three compilations charged at once.
    EXPECT_EQ(jit_.compileLog().size(), 3u);
    EXPECT_GT(cost, 0.0);
}

TEST_F(JitTest, HigherTiersCostMore)
{
    jit_.recordInvocations(3, 1000, secs(1));
    const double warm_cost = jit_.compileLog().back().compile_us;
    jit_.recordInvocations(3, 100000, secs(2));
    const double hot_cost = jit_.compileLog().back().compile_us;
    EXPECT_GT(hot_cost, warm_cost);
}

TEST_F(JitTest, ColdMethodsStayInterpreted)
{
    jit_.recordInvocations(4, 10, secs(1));
    EXPECT_EQ(jit_.tier(4), CompileTier::Interpreted);
    EXPECT_EQ(jit_.methodsAtOrAbove(CompileTier::Warm), 0u);
}

TEST_F(JitTest, MethodsAtOrAboveCounts)
{
    jit_.recordInvocations(0, 2000, secs(1));
    jit_.recordInvocations(1, 100000, secs(1));
    EXPECT_EQ(jit_.methodsAtOrAbove(CompileTier::Warm), 2u);
    EXPECT_EQ(jit_.methodsAtOrAbove(CompileTier::Hot), 1u);
}

TEST_F(JitTest, TotalCompileTimeAccumulates)
{
    jit_.recordInvocations(0, 2000, secs(1));
    jit_.recordInvocations(1, 2000, secs(1));
    double sum = 0.0;
    for (const auto &record : jit_.compileLog())
        sum += record.compile_us;
    EXPECT_DOUBLE_EQ(jit_.totalCompileUs(), sum);
}

TEST_F(JitTest, TierNames)
{
    EXPECT_STREQ(compileTierName(CompileTier::Interpreted),
                 "interpreted");
    EXPECT_STREQ(compileTierName(CompileTier::Scorching), "scorching");
}

} // namespace
} // namespace jasim
