#include <gtest/gtest.h>

#include "jvm/heap.h"
#include "sim/rng.h"

namespace jasim {
namespace {

HeapConfig
smallHeap()
{
    HeapConfig config;
    config.size_bytes = 1024 * 1024;
    return config;
}

TEST(HeapTest, AllocateAndAccounting)
{
    Heap heap(smallHeap());
    const auto offset = heap.allocate(4096);
    ASSERT_TRUE(offset.has_value());
    EXPECT_EQ(heap.usedBytes(), 4096u);
    EXPECT_EQ(heap.freeBytes(), 1024u * 1024 - 4096);
    EXPECT_TRUE(heap.accountingConsistent());
}

TEST(HeapTest, ExhaustionReturnsNullopt)
{
    Heap heap(smallHeap());
    EXPECT_TRUE(heap.allocate(1024 * 1024).has_value());
    EXPECT_FALSE(heap.allocate(1).has_value());
}

TEST(HeapTest, FreeCoalescesNeighbours)
{
    Heap heap(smallHeap());
    const auto a = *heap.allocate(4096);
    const auto b = *heap.allocate(4096);
    const auto c = *heap.allocate(4096);
    heap.free(a, 4096);
    heap.free(c, 4096);
    heap.free(b, 4096); // merges all three + trailing space
    EXPECT_EQ(heap.freeChunkCount(), 1u);
    EXPECT_EQ(heap.freeBytes(), 1024u * 1024);
    EXPECT_TRUE(heap.accountingConsistent());
}

TEST(HeapTest, SmallRemaindersBecomeDarkMatter)
{
    HeapConfig config = smallHeap();
    config.dark_threshold = 1024;
    Heap heap(config);
    // Carve the heap so a 512-byte sliver remains between two blocks.
    const auto a = *heap.allocate(4096);
    (void)a;
    const auto sliver = *heap.allocate(512);
    const auto b = *heap.allocate(4096);
    (void)b;
    heap.free(sliver, 512);
    EXPECT_EQ(heap.darkBytes(), 512u);
    // Dark chunks cannot satisfy allocations, even tiny ones.
    // (Allocate until only dark is left.)
    while (heap.allocate(64 * 1024).has_value()) {
    }
    while (heap.allocate(512).has_value()) {
    }
    EXPECT_GE(heap.darkBytes(), 512u);
    EXPECT_TRUE(heap.accountingConsistent());
}

TEST(HeapTest, NeighbourFreeResurrectsDarkMatter)
{
    HeapConfig config = smallHeap();
    config.dark_threshold = 1024;
    Heap heap(config);
    const auto a = *heap.allocate(4096);
    const auto sliver = *heap.allocate(512);
    const auto guard = *heap.allocate(4096); // isolates the sliver
    (void)guard;
    heap.free(sliver, 512);
    EXPECT_EQ(heap.darkBytes(), 512u);
    heap.free(a, 4096); // coalesces with the sliver -> usable again
    EXPECT_EQ(heap.darkBytes(), 0u);
}

TEST(HeapTest, CompactRecoversDarkMatter)
{
    HeapConfig config = smallHeap();
    config.dark_threshold = 1024;
    Heap heap(config);
    std::vector<std::uint64_t> offsets;
    for (int i = 0; i < 100; ++i)
        offsets.push_back(*heap.allocate(700));
    // Free every other block: 700 < threshold, all dark.
    std::uint64_t live = 0;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (i % 2 == 0)
            heap.free(offsets[i], 700);
        else
            live += 700;
    }
    EXPECT_GT(heap.darkBytes(), 0u);
    const auto recovered = heap.compact(live);
    EXPECT_GT(recovered, 0u);
    EXPECT_EQ(heap.darkBytes(), 0u);
    EXPECT_EQ(heap.usedBytes(), live);
    EXPECT_TRUE(heap.accountingConsistent());
}

TEST(HeapTest, BestFitPrefersTightChunk)
{
    Heap heap(smallHeap());
    const auto a = *heap.allocate(8192);
    const auto b = *heap.allocate(65536);
    const auto c = *heap.allocate(2048);
    (void)c;
    heap.free(a, 8192);  // 8 KB hole
    heap.free(b, 65536); // 64 KB hole
    // A 6 KB request should take the 8 KB hole, not the 64 KB one.
    const auto d = *heap.allocate(6 * 1024);
    EXPECT_EQ(d, a);
}

TEST(HeapTest, RandomizedChurnKeepsInvariants)
{
    Heap heap(smallHeap());
    Rng rng(11);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const std::uint64_t bytes = 64 + rng.below(4000);
            const auto offset = heap.allocate(bytes);
            if (offset)
                live.emplace_back(*offset, bytes);
        } else {
            const std::size_t pick = rng.below(live.size());
            heap.free(live[pick].first, live[pick].second);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        }
        if (i % 2000 == 0)
            ASSERT_TRUE(heap.accountingConsistent()) << "iter " << i;
    }
    EXPECT_TRUE(heap.accountingConsistent());
}

} // namespace
} // namespace jasim
