#include <gtest/gtest.h>

#include "jvm/object_graph.h"

namespace jasim {
namespace {

TEST(ObjectGraphTest, RootedCellsAreLive)
{
    ObjectGraph graph(1);
    graph.addCell(0, 100, secs(10), 0.0);
    graph.addCell(100, 200, secs(10), 0.0);
    const MarkResult mark = graph.mark();
    EXPECT_EQ(mark.live_cells, 2u);
    EXPECT_EQ(mark.live_bytes, 300u);
}

TEST(ObjectGraphTest, ExpiredRootsDie)
{
    ObjectGraph graph(2);
    graph.addCell(0, 100, secs(1), 0.0);
    graph.addCell(100, 200, secs(10), 0.0);
    graph.expireRoots(secs(5));
    const MarkResult mark = graph.mark();
    EXPECT_EQ(mark.live_cells, 1u);
    EXPECT_EQ(mark.live_bytes, 200u);
}

TEST(ObjectGraphTest, SweepReclaimsExactlyUnmarked)
{
    ObjectGraph graph(3);
    graph.addCell(0, 100, secs(1), 0.0);
    graph.addCell(100, 200, secs(10), 0.0);
    graph.expireRoots(secs(5));
    graph.mark();
    std::uint64_t reclaimed_bytes = 0;
    const auto reclaimed = graph.sweep(
        [&](std::uint64_t, std::uint64_t bytes) {
            reclaimed_bytes += bytes;
        });
    EXPECT_EQ(reclaimed, 1u);
    EXPECT_EQ(reclaimed_bytes, 100u);
    EXPECT_EQ(graph.cellCount(), 1u);
}

TEST(ObjectGraphTest, EdgesKeepUnrootedCellsAlive)
{
    ObjectGraph graph(4);
    // Force an edge from the first cell to the second by using an
    // edge probability of 1 and a single recent cell.
    graph.addCell(0, 100, secs(100), 0.0);   // long-lived holder
    graph.addCell(100, 50, secs(1), 1.0);    // referenced by holder
    graph.expireRoots(secs(5)); // second cell's root expires
    const MarkResult mark = graph.mark();
    EXPECT_EQ(mark.live_cells, 2u); // edge keeps it reachable
    EXPECT_GE(mark.visited_edges, 1u);
}

TEST(ObjectGraphTest, MarkClearsAfterSweep)
{
    ObjectGraph graph(5);
    graph.addCell(0, 100, secs(100), 0.0);
    graph.mark();
    graph.sweep([](std::uint64_t, std::uint64_t) {});
    // Survivors must be re-markable (marks cleared).
    const MarkResult again = graph.mark();
    EXPECT_EQ(again.live_cells, 1u);
}

TEST(ObjectGraphTest, TotalBytesTracksCells)
{
    ObjectGraph graph(6);
    graph.addCell(0, 128, secs(1), 0.0);
    graph.addCell(128, 256, secs(1), 0.0);
    EXPECT_EQ(graph.totalBytes(), 384u);
}

TEST(ObjectGraphTest, ChainedReachability)
{
    // Build a chain: each new cell referenced by the previous one.
    ObjectGraph graph(7);
    graph.addCell(0, 8, secs(100), 0.0); // the only rooted cell
    for (int i = 1; i < 50; ++i)
        graph.addCell(static_cast<std::uint64_t>(i) * 8, 8, secs(1),
                      1.0);
    graph.expireRoots(secs(5));
    const MarkResult mark = graph.mark();
    // Everything still reachable through the edge chain from the root
    // (edge fanout caps may trim the tail, but far more than 1 lives).
    EXPECT_GT(mark.live_cells, 10u);
}

} // namespace
} // namespace jasim
