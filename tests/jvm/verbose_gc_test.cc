#include <gtest/gtest.h>

#include "jvm/verbose_gc.h"

namespace jasim {
namespace {

GcEvent
makeEvent(SimTime start, double mark_ms, double sweep_ms,
          std::uint64_t used_after)
{
    GcEvent e;
    e.start = start;
    e.mark_ms = mark_ms;
    e.sweep_ms = sweep_ms;
    e.used_after = used_after;
    e.live_bytes = used_after;
    return e;
}

TEST(VerboseGcTest, EmptyLogSafe)
{
    VerboseGcLog log;
    const GcSummary summary = log.summarize(secs(60));
    EXPECT_EQ(summary.collections, 0u);
    EXPECT_DOUBLE_EQ(summary.gc_time_fraction, 0.0);
}

TEST(VerboseGcTest, IntervalStatistics)
{
    VerboseGcLog log;
    for (int i = 0; i < 10; ++i)
        log.record(makeEvent(secs(26.0 * i), 300, 60, 200 << 20));
    const GcSummary summary = log.summarize(secs(260));
    EXPECT_EQ(summary.collections, 10u);
    EXPECT_NEAR(summary.mean_interval_s, 26.0, 0.01);
    EXPECT_NEAR(summary.min_interval_s, 26.0, 0.01);
    EXPECT_NEAR(summary.max_interval_s, 26.0, 0.01);
}

TEST(VerboseGcTest, PauseAndPhaseShares)
{
    VerboseGcLog log;
    log.record(makeEvent(secs(0), 320, 80, 100));
    log.record(makeEvent(secs(26), 280, 120, 100));
    const GcSummary summary = log.summarize(secs(52));
    EXPECT_NEAR(summary.mean_pause_ms, 400.0, 1e-9);
    EXPECT_NEAR(summary.mark_fraction, 600.0 / 800.0, 1e-9);
    EXPECT_NEAR(summary.sweep_fraction, 200.0 / 800.0, 1e-9);
}

TEST(VerboseGcTest, GcTimeFraction)
{
    VerboseGcLog log;
    // 10 GCs x 400 ms over 300 s => ~1.33%.
    for (int i = 0; i < 10; ++i)
        log.record(makeEvent(secs(30.0 * i), 340, 60, 100));
    const GcSummary summary = log.summarize(secs(300));
    EXPECT_NEAR(summary.gc_time_fraction, 4.0 / 300.0, 1e-6);
}

TEST(VerboseGcTest, LiveGrowthSlope)
{
    VerboseGcLog log;
    // used-after grows 1 MB per minute.
    for (int i = 0; i < 20; ++i) {
        log.record(makeEvent(
            secs(60.0 * i), 300, 60,
            (200ull << 20) + static_cast<std::uint64_t>(i) * (1 << 20)));
    }
    const GcSummary summary = log.summarize(secs(1200));
    EXPECT_NEAR(summary.live_growth_bytes_per_min, 1 << 20,
                (1 << 20) / 100.0);
}

TEST(VerboseGcTest, CompactionsCounted)
{
    VerboseGcLog log;
    GcEvent e = makeEvent(secs(0), 300, 60, 100);
    e.compacted = true;
    e.compact_ms = 500;
    log.record(e);
    log.record(makeEvent(secs(26), 300, 60, 100));
    const GcSummary summary = log.summarize(secs(60));
    EXPECT_EQ(summary.compactions, 1u);
    EXPECT_NEAR(summary.max_pause_ms, 860.0, 1e-9);
}

} // namespace
} // namespace jasim
