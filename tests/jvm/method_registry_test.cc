#include <gtest/gtest.h>

#include <set>

#include "jvm/method_registry.h"

namespace jasim {
namespace {

TEST(MethodRegistryTest, CountAndNames)
{
    MethodRegistry registry(8500, 1);
    EXPECT_EQ(registry.size(), 8500u);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FALSE(registry.method(i).name.empty());
        EXPECT_GE(registry.method(i).bytecode_bytes, 16u);
    }
}

TEST(MethodRegistryTest, DeterministicForSeed)
{
    MethodRegistry a(500, 9), b(500, 9);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.method(i).name, b.method(i).name);
        EXPECT_EQ(a.method(i).category, b.method(i).category);
    }
}

TEST(MethodRegistryTest, AllCategoriesPresent)
{
    MethodRegistry registry(8500, 2);
    for (std::size_t c = 0; c < methodCategoryCount; ++c) {
        EXPECT_GT(registry.categoryCount(
                      static_cast<MethodCategory>(c)),
                  0u);
    }
}

TEST(MethodRegistryTest, BenchmarkCodeRareAmongHotRanks)
{
    // jas2004's own methods sit in the lukewarm tail, which is how the
    // paper's "2% of cycles in benchmark code" comes about.
    MethodRegistry registry(8500, 3);
    std::size_t hot_benchmark = 0;
    for (std::size_t i = 0; i < 250; ++i) {
        if (registry.method(i).category == MethodCategory::Benchmark)
            ++hot_benchmark;
    }
    EXPECT_LT(hot_benchmark, 20u);
    std::size_t tail_benchmark = 0;
    for (std::size_t i = 4000; i < 8500; ++i) {
        if (registry.method(i).category == MethodCategory::Benchmark)
            ++tail_benchmark;
    }
    EXPECT_GT(tail_benchmark, 200u);
}

TEST(MethodRegistryTest, PackagesMatchCategories)
{
    MethodRegistry registry(2000, 4);
    for (std::size_t i = 0; i < registry.size(); ++i) {
        const auto &m = registry.method(i);
        if (m.category == MethodCategory::WebSphere)
            EXPECT_EQ(m.name.rfind("com.ibm.ws", 0), 0u);
        if (m.category == MethodCategory::Benchmark)
            EXPECT_EQ(m.name.rfind("org.spec.jappserver", 0), 0u);
    }
}

TEST(MethodRegistryTest, CategoryNamesDistinct)
{
    std::set<std::string> names;
    for (std::size_t c = 0; c < methodCategoryCount; ++c)
        names.insert(
            methodCategoryName(static_cast<MethodCategory>(c)));
    EXPECT_EQ(names.size(), methodCategoryCount);
}

} // namespace
} // namespace jasim
