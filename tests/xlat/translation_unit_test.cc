#include <gtest/gtest.h>

#include "xlat/translation_unit.h"

namespace jasim {
namespace {

class TranslationUnitTest : public ::testing::Test
{
  protected:
    TranslationUnitTest()
    {
        space_.addRegion("heap", 0x40000000, 256ull * 1024 * 1024,
                         largePageBytes);
        space_.addRegion("data", 0x10000000, 64ull * 1024 * 1024,
                         smallPageBytes);
        unit_ = std::make_unique<TranslationUnit>(XlatConfig{}, space_);
    }

    AddressSpace space_;
    std::unique_ptr<TranslationUnit> unit_;
};

TEST_F(TranslationUnitTest, EratHitHasNoPenalty)
{
    unit_->translateData(0x10000000);
    const XlatOutcome outcome = unit_->translateData(0x10000000);
    EXPECT_TRUE(outcome.erat_hit);
    EXPECT_EQ(outcome.penalty, 0u);
    EXPECT_EQ(outcome.redispatches, 0u);
}

TEST_F(TranslationUnitTest, EratMissTlbHitCosts14Cycles)
{
    unit_->translateData(0x10000000); // fills TLB page + granule
    // A different granule of the SAME small page would share the page;
    // use a different page to populate the TLB, then flush only via a
    // fresh granule of a now-resident page:
    const XlatOutcome first = unit_->translateData(0x10000000 + 4096);
    EXPECT_FALSE(first.erat_hit);
    // The data region uses 4 KB pages, so a new granule is a new page.
    EXPECT_FALSE(first.tlb_hit);

    // Large-page region: one TLB entry serves all granules, so the
    // second granule is an ERAT miss satisfied by the TLB at ~14 cyc.
    unit_->translateData(0x40000000);
    const XlatOutcome second = unit_->translateData(0x40000000 + 4096);
    EXPECT_FALSE(second.erat_hit);
    EXPECT_TRUE(second.tlb_hit);
    EXPECT_EQ(second.penalty, XlatConfig{}.lat_tlb_read);
}

TEST_F(TranslationUnitTest, TlbMissCostsTableWalk)
{
    const XlatOutcome outcome = unit_->translateData(0x10500000);
    EXPECT_FALSE(outcome.erat_hit);
    EXPECT_FALSE(outcome.tlb_hit);
    EXPECT_GE(outcome.penalty, XlatConfig{}.lat_table_walk);
}

TEST_F(TranslationUnitTest, LoadsRedispatchWhileWaiting)
{
    const XlatOutcome outcome = unit_->translateData(0x10600000);
    // Retried every 7 cycles until translation resolves.
    EXPECT_EQ(outcome.redispatches,
              outcome.penalty / XlatConfig{}.retry_interval);
    EXPECT_GT(outcome.redispatches, 0u);
}

TEST_F(TranslationUnitTest, InstSideSeparateFromDataSide)
{
    unit_->translateData(0x10000000);
    const XlatOutcome inst = unit_->translateInst(0x10000000);
    EXPECT_FALSE(inst.erat_hit); // IERAT does not share DERAT entries
    EXPECT_TRUE(inst.tlb_hit);   // but the unified TLB is shared
    EXPECT_EQ(inst.redispatches, 0u); // fetches are not load retries
}

TEST_F(TranslationUnitTest, FlushForcesFullWalk)
{
    unit_->translateData(0x10000000);
    unit_->flush();
    const XlatOutcome outcome = unit_->translateData(0x10000000);
    EXPECT_FALSE(outcome.erat_hit);
    EXPECT_FALSE(outcome.tlb_hit);
}

TEST_F(TranslationUnitTest, LargePagesReduceTlbMisses)
{
    // Walk 64 MB of the large-page heap vs 64 MB of 4 KB data pages.
    std::uint64_t heap_tlb_misses = 0, data_tlb_misses = 0;
    for (Addr offset = 0; offset < 64ull * 1024 * 1024;
         offset += 4096) {
        const auto heap = unit_->translateData(0x40000000 + offset);
        if (!heap.erat_hit && !heap.tlb_hit)
            ++heap_tlb_misses;
        const auto data = unit_->translateData(0x10000000 + offset);
        if (!data.erat_hit && !data.tlb_hit)
            ++data_tlb_misses;
    }
    EXPECT_LT(heap_tlb_misses, 16u); // 4 large pages + noise
    EXPECT_GT(data_tlb_misses, 10000u);
}

} // namespace
} // namespace jasim
