#include <gtest/gtest.h>

#include "xlat/translation_unit.h"

namespace jasim {
namespace {

class TranslationUnitTest : public ::testing::Test
{
  protected:
    TranslationUnitTest()
    {
        space_.addRegion("heap", 0x40000000, 256ull * 1024 * 1024,
                         largePageBytes);
        space_.addRegion("data", 0x10000000, 64ull * 1024 * 1024,
                         smallPageBytes);
        unit_ = std::make_unique<TranslationUnit>(XlatConfig{}, space_);
    }

    AddressSpace space_;
    std::unique_ptr<TranslationUnit> unit_;
};

TEST_F(TranslationUnitTest, EratHitHasNoPenalty)
{
    unit_->translateData(0x10000000);
    const XlatOutcome outcome = unit_->translateData(0x10000000);
    EXPECT_TRUE(outcome.erat_hit);
    EXPECT_EQ(outcome.penalty, 0u);
    EXPECT_EQ(outcome.redispatches, 0u);
}

TEST_F(TranslationUnitTest, EratMissTlbHitCosts14Cycles)
{
    unit_->translateData(0x10000000); // fills TLB page + granule
    // A different granule of the SAME small page would share the page;
    // use a different page to populate the TLB, then flush only via a
    // fresh granule of a now-resident page:
    const XlatOutcome first = unit_->translateData(0x10000000 + 4096);
    EXPECT_FALSE(first.erat_hit);
    // The data region uses 4 KB pages, so a new granule is a new page.
    EXPECT_FALSE(first.tlb_hit);

    // Large-page region: one TLB entry serves all granules, so the
    // second granule is an ERAT miss satisfied by the TLB at ~14 cyc.
    unit_->translateData(0x40000000);
    const XlatOutcome second = unit_->translateData(0x40000000 + 4096);
    EXPECT_FALSE(second.erat_hit);
    EXPECT_TRUE(second.tlb_hit);
    EXPECT_EQ(second.penalty, XlatConfig{}.lat_tlb_read);
}

TEST_F(TranslationUnitTest, TlbMissCostsTableWalk)
{
    const XlatOutcome outcome = unit_->translateData(0x10500000);
    EXPECT_FALSE(outcome.erat_hit);
    EXPECT_FALSE(outcome.tlb_hit);
    EXPECT_GE(outcome.penalty, XlatConfig{}.lat_table_walk);
}

TEST_F(TranslationUnitTest, LoadsRedispatchWhileWaiting)
{
    const XlatOutcome outcome = unit_->translateData(0x10600000);
    // Retried every 7 cycles until translation resolves.
    EXPECT_EQ(outcome.redispatches,
              outcome.penalty / XlatConfig{}.retry_interval);
    EXPECT_GT(outcome.redispatches, 0u);
}

TEST_F(TranslationUnitTest, InstSideSeparateFromDataSide)
{
    unit_->translateData(0x10000000);
    const XlatOutcome inst = unit_->translateInst(0x10000000);
    EXPECT_FALSE(inst.erat_hit); // IERAT does not share DERAT entries
    EXPECT_TRUE(inst.tlb_hit);   // but the unified TLB is shared
    EXPECT_EQ(inst.redispatches, 0u); // fetches are not load retries
}

TEST_F(TranslationUnitTest, FlushForcesFullWalk)
{
    unit_->translateData(0x10000000);
    unit_->flush();
    const XlatOutcome outcome = unit_->translateData(0x10000000);
    EXPECT_FALSE(outcome.erat_hit);
    EXPECT_FALSE(outcome.tlb_hit);
}

TEST_F(TranslationUnitTest, LargePagesReduceTlbMisses)
{
    // Walk 64 MB of the large-page heap vs 64 MB of 4 KB data pages.
    std::uint64_t heap_tlb_misses = 0, data_tlb_misses = 0;
    for (Addr offset = 0; offset < 64ull * 1024 * 1024;
         offset += 4096) {
        const auto heap = unit_->translateData(0x40000000 + offset);
        if (!heap.erat_hit && !heap.tlb_hit)
            ++heap_tlb_misses;
        const auto data = unit_->translateData(0x10000000 + offset);
        if (!data.erat_hit && !data.tlb_hit)
            ++data_tlb_misses;
    }
    EXPECT_LT(heap_tlb_misses, 16u); // 4 large pages + noise
    EXPECT_GT(data_tlb_misses, 10000u);
}

// ---------------------------------------------------------------------
// Fast-path memo exactness (`--fastpath`): translations must be
// bit-identical with the memo on or off.

class XlatFastpathTest : public ::testing::Test
{
  protected:
    XlatFastpathTest()
    {
        space_.addRegion("heap", 0x40000000, 256ull * 1024 * 1024,
                         largePageBytes);
        space_.addRegion("data", 0x10000000, 64ull * 1024 * 1024,
                         smallPageBytes);
        XlatConfig on;
        on.fastpath = true;
        XlatConfig off;
        off.fastpath = false;
        fast_ = std::make_unique<TranslationUnit>(on, space_);
        slow_ = std::make_unique<TranslationUnit>(off, space_);
    }

    void expectSame(Addr addr, bool is_load)
    {
        const XlatOutcome a = is_load ? fast_->translateData(addr)
                                      : fast_->translateInst(addr);
        const XlatOutcome b = is_load ? slow_->translateData(addr)
                                      : slow_->translateInst(addr);
        ASSERT_EQ(a.erat_hit, b.erat_hit) << std::hex << addr;
        ASSERT_EQ(a.tlb_hit, b.tlb_hit) << std::hex << addr;
        ASSERT_EQ(a.slb_hit, b.slb_hit) << std::hex << addr;
        ASSERT_EQ(a.penalty, b.penalty) << std::hex << addr;
        ASSERT_EQ(a.redispatches, b.redispatches) << std::hex << addr;
    }

    AddressSpace space_;
    std::unique_ptr<TranslationUnit> fast_;
    std::unique_ptr<TranslationUnit> slow_;
};

TEST_F(XlatFastpathTest, RepeatTranslationsUseMemoAndMatch)
{
    for (int i = 0; i < 8; ++i)
        expectSame(0x10000000 + i * 8, true); // same granule repeats
    EXPECT_GT(fast_->mruEratHits(), 0u);
    EXPECT_EQ(slow_->mruEratHits(), 0u);
}

TEST_F(XlatFastpathTest, MemoOnlyCoversConsecutiveRepeats)
{
    // Alternating granules: each access displaces the memo, so the
    // memo never fires -- and outcomes still match exactly (this is
    // the counterexample that forbids a longer-lived memo: skipping a
    // non-consecutive repeat would miss the interleaved LRU touches).
    for (int i = 0; i < 16; ++i)
        expectSame(0x10000000 + (i & 1) * 4096, true);
    EXPECT_EQ(fast_->mruEratHits(), 0u);
}

TEST_F(XlatFastpathTest, FlushCasualtyKillsMemo)
{
    expectSame(0x10000000, true);
    expectSame(0x10000000, true); // memo armed and hit
    const std::uint64_t hits = fast_->mruEratHits();
    EXPECT_GT(hits, 0u);
    fast_->flush();
    slow_->flush();
    // The post-flush repeat must be a cold walk in both units.
    expectSame(0x10000000, true);
    EXPECT_EQ(fast_->mruEratHits(), hits);
}

TEST_F(XlatFastpathTest, RandomStreamBitIdentical)
{
    std::uint64_t rng = 12345;
    for (int i = 0; i < 30000; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t r = rng >> 16;
        // Mix small-page data, large-page heap, instruction fetches,
        // bursts of repeats, and occasional flush casualties.
        const bool heap = (r & 1) != 0;
        const Addr base = heap ? 0x40000000 : 0x10000000;
        const Addr addr =
            base + ((r >> 1) & 0xffffff); // 16 MB span
        const bool is_load = ((r >> 25) & 3) != 0;
        const int repeats = 1 + ((r >> 27) & 3);
        for (int j = 0; j < repeats; ++j)
            expectSame(addr + j * 4, is_load);
        if ((r >> 30) % 997 == 0) {
            fast_->flush();
            slow_->flush();
        }
    }
    EXPECT_GT(fast_->mruEratHits(), 0u);
    EXPECT_GT(fast_->mruTlbHits(), 0u);
}

} // namespace
} // namespace jasim
