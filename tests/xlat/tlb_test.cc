#include <gtest/gtest.h>

#include "xlat/tlb.h"

namespace jasim {
namespace {

PageId
smallPage(Addr base)
{
    return PageId{base & ~(smallPageBytes - 1), smallPageBytes};
}

PageId
largePage(Addr base)
{
    return PageId{base & ~(largePageBytes - 1), largePageBytes};
}

TEST(TlbTest, MissThenHit)
{
    Tlb tlb(1024, 4);
    EXPECT_FALSE(tlb.access(smallPage(0x1000)));
    EXPECT_TRUE(tlb.access(smallPage(0x1000)));
}

TEST(TlbTest, OneEntryMapsWholeLargePage)
{
    Tlb tlb(1024, 4);
    tlb.access(largePage(0x40000000));
    EXPECT_TRUE(tlb.probe(largePage(0x40000000 + 8 * 1024 * 1024)));
}

TEST(TlbTest, LargePagesShrinkHeapFootprint)
{
    // A 1 GB heap: 262144 small pages (thrashes a 1024-entry TLB)
    // versus 64 large pages (fits trivially).
    Tlb small_tlb(1024, 4);
    Tlb large_tlb(1024, 4);
    const std::uint64_t heap = 1024ull * 1024 * 1024;

    for (Addr a = 0; a < heap; a += smallPageBytes)
        small_tlb.access(smallPage(a));
    for (Addr a = 0; a < heap; a += largePageBytes)
        large_tlb.access(largePage(a));

    std::size_t small_hits = 0, large_hits = 0;
    for (Addr a = 0; a < heap; a += largePageBytes) {
        small_hits += small_tlb.probe(smallPage(a));
        large_hits += large_tlb.probe(largePage(a));
    }
    EXPECT_EQ(large_hits, 64u);
    EXPECT_LT(small_hits, 20u);
}

TEST(TlbTest, CapacityRespected)
{
    Tlb tlb(64, 4);
    for (Addr a = 0; a < 256 * smallPageBytes; a += smallPageBytes)
        tlb.access(smallPage(a));
    std::size_t resident = 0;
    for (Addr a = 0; a < 256 * smallPageBytes; a += smallPageBytes)
        resident += tlb.probe(smallPage(a));
    EXPECT_LE(resident, 64u);
}

TEST(TlbTest, FlushClears)
{
    Tlb tlb(64, 4);
    tlb.access(smallPage(0x9000));
    tlb.flush();
    EXPECT_FALSE(tlb.probe(smallPage(0x9000)));
}

TEST(SlbTest, SegmentGranularity)
{
    Slb slb(4);
    EXPECT_FALSE(slb.access(0x0));
    EXPECT_TRUE(slb.access(Slb::segmentBytes - 1)); // same 256 MB seg
    EXPECT_FALSE(slb.access(Slb::segmentBytes));    // next segment
}

TEST(SlbTest, LruReplacement)
{
    Slb slb(2);
    slb.access(0 * Slb::segmentBytes);
    slb.access(1 * Slb::segmentBytes);
    slb.access(0 * Slb::segmentBytes); // refresh
    slb.access(2 * Slb::segmentBytes); // evicts segment 1
    EXPECT_TRUE(slb.access(0));
    EXPECT_FALSE(slb.access(1 * Slb::segmentBytes));
}

} // namespace
} // namespace jasim
