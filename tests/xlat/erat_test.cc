#include <gtest/gtest.h>

#include "xlat/erat.h"

namespace jasim {
namespace {

TEST(EratTest, MissThenHit)
{
    Erat erat(128, 4);
    EXPECT_FALSE(erat.access(0x1000));
    EXPECT_TRUE(erat.access(0x1000));
    EXPECT_TRUE(erat.access(0x1FFF)); // same 4 KB granule
    EXPECT_FALSE(erat.access(0x2000)); // next granule
}

TEST(EratTest, GranuleIs4KRegardlessOfPageSize)
{
    // The POWER4 detail: a large page still occupies many ERAT
    // entries, one per 4 KB granule.
    Erat erat(128, 4);
    erat.access(0x0000);
    EXPECT_FALSE(erat.access(0x1000));
    EXPECT_FALSE(erat.access(0x2000));
}

TEST(EratTest, WorkingSetWithinCapacityAllHits)
{
    Erat erat(128, 4);
    for (Addr a = 0; a < 128 * 4096; a += 4096)
        erat.access(a);
    for (Addr a = 0; a < 128 * 4096; a += 4096)
        EXPECT_TRUE(erat.access(a));
}

TEST(EratTest, OverCapacityEvicts)
{
    Erat erat(128, 4);
    for (Addr a = 0; a < 256 * 4096; a += 4096)
        erat.access(a);
    std::size_t hits = 0;
    for (Addr a = 0; a < 256 * 4096; a += 4096)
        hits += erat.probe(a);
    EXPECT_LE(hits, 128u);
}

TEST(EratTest, LruKeepsRecentlyUsed)
{
    Erat erat(8, 2); // 4 sets x 2 ways
    // Three granules mapping to set 0 (stride = 4 sets).
    erat.access(0 * 4096);
    erat.access(4 * 4096);
    erat.access(0 * 4096);  // refresh
    erat.access(8 * 4096);  // evicts granule 4
    EXPECT_TRUE(erat.probe(0));
    EXPECT_FALSE(erat.probe(4 * 4096));
}

TEST(EratTest, FlushInvalidatesAll)
{
    Erat erat(128, 4);
    erat.access(0x5000);
    erat.flush();
    EXPECT_FALSE(erat.probe(0x5000));
}

} // namespace
} // namespace jasim
