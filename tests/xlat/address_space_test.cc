#include <gtest/gtest.h>

#include "xlat/address_space.h"

namespace jasim {
namespace {

TEST(AddressSpaceTest, FindsRegionByAddress)
{
    AddressSpace space;
    space.addRegion("heap", 0x10000000, 64 * 1024 * 1024,
                    largePageBytes);
    const MemRegion *region = space.findRegion(0x10000000 + 12345);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->name, "heap");
    EXPECT_EQ(space.findRegion(0x0), nullptr);
}

TEST(AddressSpaceTest, PageOfRespectsRegionPageSize)
{
    AddressSpace space;
    space.addRegion("heap", 0x10000000, 64 * 1024 * 1024,
                    largePageBytes);
    space.addRegion("data", 0x20000000, 1024 * 1024, smallPageBytes);

    const PageId heap_page = space.pageOf(0x10000000 + 5 * 1024 * 1024);
    EXPECT_EQ(heap_page.bytes, largePageBytes);
    EXPECT_EQ(heap_page.base, 0x10000000u);

    const PageId data_page = space.pageOf(0x20000000 + 10000);
    EXPECT_EQ(data_page.bytes, smallPageBytes);
    EXPECT_EQ(data_page.base, 0x20000000u + 8192);
}

TEST(AddressSpaceTest, UnmappedAddressesAreSmallPaged)
{
    AddressSpace space;
    const PageId page = space.pageOf(0xDEAD0000);
    EXPECT_EQ(page.bytes, smallPageBytes);
    EXPECT_EQ(page.base, 0xDEAD0000u);
}

TEST(AddressSpaceTest, LargePageCovers4096SmallPages)
{
    AddressSpace space;
    space.addRegion("heap", 0x40000000, largePageBytes, largePageBytes);
    const PageId first = space.pageOf(0x40000000);
    const PageId last = space.pageOf(0x40000000 + largePageBytes - 1);
    EXPECT_EQ(first, last);
    EXPECT_EQ(largePageBytes / smallPageBytes, 4096u);
}

TEST(AddressSpaceTest, SetRegionPageSizeFlips)
{
    AddressSpace space;
    space.addRegion("heap", 0x40000000, largePageBytes, smallPageBytes);
    EXPECT_EQ(space.pageOf(0x40001000).bytes, smallPageBytes);
    space.setRegionPageSize("heap", largePageBytes);
    EXPECT_EQ(space.pageOf(0x40001000).bytes, largePageBytes);
}

TEST(AddressSpaceTest, PagesForComputesCount)
{
    MemRegion region{"r", 0, 10 * smallPageBytes + 1, smallPageBytes};
    EXPECT_EQ(AddressSpace::pagesFor(region), 11u);
}

} // namespace
} // namespace jasim
