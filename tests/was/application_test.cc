#include <gtest/gtest.h>

#include "was/application.h"

namespace jasim {
namespace {

class ApplicationTest : public ::testing::Test
{
  protected:
    ApplicationTest() : app_(DbConfig{1024, 32}, 2.0, 7) {}

    Jas2004Application app_;
};

TEST_F(ApplicationTest, PopulationScalesWithIr)
{
    Jas2004Application small(DbConfig{1024, 32}, 1.0, 7);
    Jas2004Application large(DbConfig{1024, 32}, 4.0, 7);
    EXPECT_GT(large.rowsLoaded(), 2 * small.rowsLoaded());
}

TEST_F(ApplicationTest, SchemaTablesExist)
{
    for (const char *name :
         {"customer", "vehicle", "inventory", "orders", "workorder"})
        EXPECT_TRUE(app_.database().tableId(name).has_value()) << name;
}

TEST_F(ApplicationTest, BrowseIsReadOnly)
{
    const auto before = app_.database().wal().recordCount();
    const TxnDbOutcome outcome =
        app_.runTransaction(RequestType::Browse);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GT(outcome.cost.rows, 0u);
    EXPECT_EQ(outcome.cost.log_bytes_forced, 0u);
    EXPECT_EQ(app_.database().wal().recordCount(), before);
}

TEST_F(ApplicationTest, PurchaseWritesAndForcesLog)
{
    const auto orders = *app_.database().tableId("orders");
    const auto before = app_.database().table(orders).rowCount();
    const TxnDbOutcome outcome =
        app_.runTransaction(RequestType::Purchase);
    EXPECT_GT(outcome.cost.log_bytes_forced, 0u);
    EXPECT_EQ(app_.database().table(orders).rowCount(), before + 1);
}

TEST_F(ApplicationTest, WorkOrderInsertsRow)
{
    const auto workorders = *app_.database().tableId("workorder");
    const auto before = app_.database().table(workorders).rowCount();
    app_.runTransaction(RequestType::CreateWorkOrder);
    EXPECT_EQ(app_.database().table(workorders).rowCount(),
              before + 1);
}

TEST_F(ApplicationTest, RepeatedPurchasesKeepUniqueOrderIds)
{
    for (int i = 0; i < 50; ++i) {
        const TxnDbOutcome outcome =
            app_.runTransaction(RequestType::Purchase);
        ASSERT_TRUE(outcome.ok);
    }
}

TEST_F(ApplicationTest, ProfilesMatchPaperStructure)
{
    const TxnProfile &browse = app_.profile(RequestType::Browse);
    const TxnProfile &purchase = app_.profile(RequestType::Purchase);
    const TxnProfile &workorder =
        app_.profile(RequestType::CreateWorkOrder);
    // Browse is the lightweight transaction; RMI work orders heaviest.
    EXPECT_LT(browse.was_jit_us, purchase.was_jit_us);
    EXPECT_LT(purchase.was_jit_us, workorder.was_jit_us);
    // RMI requests bypass the web container.
    EXPECT_DOUBLE_EQ(workorder.web_us, 0.0);
    EXPECT_GT(browse.web_us, 0.0);
    // Everything allocates hundreds of KB per transaction.
    for (const auto type :
         {RequestType::Browse, RequestType::Purchase,
          RequestType::Manage, RequestType::CreateWorkOrder})
        EXPECT_GE(app_.profile(type).alloc_bytes, 100u * 1024);
}

TEST_F(ApplicationTest, ManageTouchesOrders)
{
    app_.runTransaction(RequestType::Purchase); // ensure orders exist
    const TxnDbOutcome outcome =
        app_.runTransaction(RequestType::Manage);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GT(outcome.cost.rows, 0u);
}

} // namespace
} // namespace jasim
