#include <gtest/gtest.h>

#include "was/ejb_container.h"
#include "was/web_container.h"

namespace jasim {
namespace {

TEST(WebContainerTest, CostScalesWithPayload)
{
    WebContainer web{WebContainerConfig{}};
    const double small = web.handle(RequestType::Browse, 1.0);
    const double large = web.handle(RequestType::Browse, 100.0);
    EXPECT_GT(large, small);
    EXPECT_EQ(web.handledCount(), 2u);
    EXPECT_DOUBLE_EQ(web.totalUs(), small + large);
}

TEST(WebContainerTest, BaseCostWithoutPayload)
{
    WebContainerConfig config;
    WebContainer web(config);
    EXPECT_DOUBLE_EQ(web.handle(RequestType::Manage, 0.0),
                     config.parse_us + config.respond_us);
}

TEST(EjbContainerTest, CostComposesBeanCalls)
{
    EjbContainerConfig config;
    EjbContainer ejb(config);
    const double cost = ejb.invoke(BeanPlan{2, 3});
    EXPECT_DOUBLE_EQ(cost, config.txn_demarcation_us +
                               2 * config.session_call_us +
                               3 * config.entity_call_us);
}

TEST(EjbContainerTest, StatisticsAccumulate)
{
    EjbContainer ejb{EjbContainerConfig{}};
    ejb.invoke(BeanPlan{1, 2});
    ejb.invoke(BeanPlan{3, 4});
    EXPECT_EQ(ejb.sessionCalls(), 4u);
    EXPECT_EQ(ejb.entityCalls(), 6u);
    EXPECT_EQ(ejb.transactions(), 2u);
    EXPECT_GT(ejb.totalUs(), 0.0);
}

TEST(EjbContainerTest, EntityCallsCostMoreThanSession)
{
    const EjbContainerConfig config;
    EXPECT_GT(config.entity_call_us, config.session_call_us);
}

TEST(RequestTypeTest, WebVsRmiClassification)
{
    EXPECT_TRUE(isWebRequest(RequestType::Purchase));
    EXPECT_TRUE(isWebRequest(RequestType::Browse));
    EXPECT_FALSE(isWebRequest(RequestType::CreateWorkOrder));
    EXPECT_DOUBLE_EQ(slaSeconds(RequestType::Browse), 2.0);
    EXPECT_DOUBLE_EQ(slaSeconds(RequestType::CreateWorkOrder), 5.0);
}

} // namespace
} // namespace jasim
