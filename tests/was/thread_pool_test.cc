#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "was/thread_pool.h"

namespace jasim {
namespace {

TEST(ThreadPoolTest, RunsImmediatelyWhenFree)
{
    EventQueue queue;
    ThreadPool pool(queue, 2, "test");
    bool ran = false;
    pool.submit([&](SimTime start, ThreadPool::Done done) {
        ran = true;
        EXPECT_EQ(start, 0u);
        done();
    });
    EXPECT_TRUE(ran);
    EXPECT_EQ(pool.busy(), 0u);
}

TEST(ThreadPoolTest, QueuesBeyondCapacity)
{
    EventQueue queue;
    ThreadPool pool(queue, 1, "test");
    std::vector<ThreadPool::Done> pending;
    pool.submit([&](SimTime, ThreadPool::Done done) {
        pending.push_back(std::move(done));
    });
    bool second_ran = false;
    pool.submit([&](SimTime, ThreadPool::Done done) {
        second_ran = true;
        done();
    });
    EXPECT_FALSE(second_ran);
    EXPECT_EQ(pool.queued(), 1u);
    pending[0](); // release the thread
    EXPECT_TRUE(second_ran);
    EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPoolTest, AsyncCompletionViaEvents)
{
    EventQueue queue;
    ThreadPool pool(queue, 1, "test");
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
        pool.submit([&](SimTime, ThreadPool::Done done) {
            queue.scheduleAfter(100, [&completed, done] {
                ++completed;
                done();
            });
        });
    }
    queue.runUntil(secs(1));
    EXPECT_EQ(completed, 3);
    // Serial execution through one thread: 100, 200, 300.
    EXPECT_EQ(pool.dispatched(), 3u);
}

TEST(ThreadPoolTest, PeakQueueTracked)
{
    EventQueue queue;
    ThreadPool pool(queue, 1, "test");
    std::vector<ThreadPool::Done> holds;
    pool.submit([&](SimTime, ThreadPool::Done done) {
        holds.push_back(std::move(done));
    });
    for (int i = 0; i < 5; ++i)
        pool.submit([](SimTime, ThreadPool::Done done) { done(); });
    EXPECT_EQ(pool.peakQueue(), 5u);
    holds[0]();
    EXPECT_EQ(pool.queued(), 0u);
}

} // namespace
} // namespace jasim
