#include <gtest/gtest.h>

#include "os/scheduler.h"

namespace jasim {
namespace {

TEST(SchedulerTest, IdleCpuRunsImmediately)
{
    CpuScheduler sched(4);
    const BurstResult r = sched.run(100, 50.0, Component::WasJit);
    EXPECT_EQ(r.start, 100u);
    EXPECT_EQ(r.completion, 150u);
}

TEST(SchedulerTest, BurstsSpreadAcrossCpus)
{
    CpuScheduler sched(2);
    const auto a = sched.run(0, 100.0, Component::WasJit);
    const auto b = sched.run(0, 100.0, Component::WasJit);
    EXPECT_NE(a.cpu, b.cpu);
    EXPECT_EQ(b.start, 0u); // second CPU was free
}

TEST(SchedulerTest, QueueingWhenAllBusy)
{
    CpuScheduler sched(1);
    sched.run(0, 100.0, Component::WasJit);
    const auto b = sched.run(0, 100.0, Component::Db2);
    EXPECT_EQ(b.start, 100u);
    EXPECT_EQ(b.completion, 200u);
}

TEST(SchedulerTest, BusyAccountingPerComponent)
{
    CpuScheduler sched(4);
    sched.run(0, 100.0, Component::WasJit);
    sched.run(0, 50.0, Component::Db2);
    sched.run(0, 25.0, Component::Db2);
    EXPECT_EQ(sched.busyBy(Component::WasJit), 100u);
    EXPECT_EQ(sched.busyBy(Component::Db2), 75u);
    EXPECT_EQ(sched.totalBusy(), 175u);
}

TEST(SchedulerTest, UtilizationFractionOfCapacity)
{
    CpuScheduler sched(4);
    sched.run(0, 1000.0, Component::WasJit);
    EXPECT_NEAR(sched.utilization(1000), 0.25, 1e-9);
}

TEST(SchedulerTest, BlockAllReservesEveryCpu)
{
    CpuScheduler sched(2);
    sched.blockAll(100, 200, Component::GcMark);
    const auto r = sched.run(100, 10.0, Component::WasJit);
    EXPECT_EQ(r.start, 200u);
    EXPECT_EQ(sched.busyBy(Component::GcMark), 200u); // 100 us x 2 cpus
}

TEST(SchedulerTest, BlockAllAfterPartialBusy)
{
    CpuScheduler sched(2);
    sched.run(0, 150.0, Component::WasJit); // cpu0 busy until 150
    sched.blockAll(100, 200, Component::GcSweep);
    // GC charged from each CPU's availability to 200.
    EXPECT_EQ(sched.busyBy(Component::GcSweep), 50u + 100u);
    EXPECT_EQ(sched.earliestFree(), 200u);
}

TEST(SchedulerTest, SnapshotMatchesAccessors)
{
    CpuScheduler sched(4);
    sched.run(0, 42.0, Component::Kernel);
    const auto snap = sched.busySnapshot();
    EXPECT_EQ(snap[static_cast<std::size_t>(Component::Kernel)], 42u);
}

} // namespace
} // namespace jasim
