#include <gtest/gtest.h>

#include "os/vmstat.h"

namespace jasim {
namespace {

VmStatRow
row(SimTime t, double user, double system, double idle, double iowait)
{
    return VmStatRow{t, user, system, idle, iowait};
}

TEST(VmStatTest, MeanOverAllRows)
{
    VmStat vm;
    vm.record(row(secs(1), 80, 20, 0, 0));
    vm.record(row(secs(2), 60, 20, 20, 0));
    const VmStatRow mean = vm.mean();
    EXPECT_DOUBLE_EQ(mean.user_pct, 70.0);
    EXPECT_DOUBLE_EQ(mean.system_pct, 20.0);
    EXPECT_DOUBLE_EQ(mean.idle_pct, 10.0);
}

TEST(VmStatTest, WindowedMean)
{
    VmStat vm;
    vm.record(row(secs(1), 100, 0, 0, 0));
    vm.record(row(secs(10), 50, 0, 50, 0));
    vm.record(row(secs(20), 0, 0, 100, 0));
    const VmStatRow mean = vm.mean(secs(5), secs(15));
    EXPECT_DOUBLE_EQ(mean.user_pct, 50.0);
}

TEST(VmStatTest, EmptySafe)
{
    VmStat vm;
    const VmStatRow mean = vm.mean();
    EXPECT_DOUBLE_EQ(mean.user_pct, 0.0);
}

TEST(VmStatTest, KernelIsTheOnlySystemComponent)
{
    EXPECT_TRUE(isSystemComponent(Component::Kernel));
    EXPECT_FALSE(isSystemComponent(Component::WasJit));
    EXPECT_FALSE(isSystemComponent(Component::GcMark)); // JVM = user
    EXPECT_FALSE(isSystemComponent(Component::Db2));
}

} // namespace
} // namespace jasim
