#include <gtest/gtest.h>

#include "os/disk.h"

namespace jasim {
namespace {

TEST(DiskTest, RamDiskIsMicroseconds)
{
    DiskConfig config; // RAM disk default
    DiskModel disk(config);
    const IoResult io = disk.read(0, 4);
    EXPECT_LE(io.service, 20u);
    EXPECT_EQ(io.queued, 0u);
}

TEST(DiskTest, SpinningDiskIsMilliseconds)
{
    DiskConfig config;
    config.kind = DiskConfig::Kind::Spinning;
    DiskModel disk(config);
    const IoResult io = disk.read(0, 1);
    EXPECT_GE(io.service, millis(4));
}

TEST(DiskTest, QueueingWhenBusy)
{
    DiskConfig config;
    config.kind = DiskConfig::Kind::Spinning;
    config.spindles = 1;
    DiskModel disk(config);
    const IoResult first = disk.read(0, 1);
    const IoResult second = disk.read(0, 1);
    EXPECT_GT(second.queued, 0u);
    EXPECT_EQ(second.completion, first.completion + second.service);
}

TEST(DiskTest, MoreSpindlesReduceQueueing)
{
    DiskConfig one;
    one.kind = DiskConfig::Kind::Spinning;
    one.spindles = 1;
    DiskConfig four = one;
    four.spindles = 4;
    DiskModel d1(one), d4(four);
    SimTime q1 = 0, q4 = 0;
    for (int i = 0; i < 8; ++i) {
        q1 += d1.read(0, 1).queued;
        q4 += d4.read(0, 1).queued;
    }
    EXPECT_GT(q1, q4);
}

TEST(DiskTest, TransferTimeScalesWithBytes)
{
    DiskConfig config;
    config.kind = DiskConfig::Kind::Spinning;
    DiskModel disk(config);
    const IoResult small = disk.write(secs(10), 4096);
    const IoResult large = disk.write(secs(20), 4 * 1024 * 1024);
    EXPECT_GT(large.service, small.service);
}

TEST(DiskTest, UtilizationAccounting)
{
    DiskConfig config;
    config.kind = DiskConfig::Kind::Spinning;
    DiskModel disk(config);
    disk.read(0, 1);
    EXPECT_GT(disk.utilization(secs(1)), 0.0);
    EXPECT_LE(disk.utilization(secs(1)), 1.0);
    EXPECT_EQ(disk.requestCount(), 1u);
}

TEST(DiskTest, LaterArrivalsNoQueueWhenIdle)
{
    DiskConfig config;
    config.kind = DiskConfig::Kind::Spinning;
    DiskModel disk(config);
    disk.read(0, 1);
    const IoResult later = disk.read(secs(10), 1);
    EXPECT_EQ(later.queued, 0u);
}

} // namespace
} // namespace jasim
