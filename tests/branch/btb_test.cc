#include <gtest/gtest.h>

#include "branch/btb.h"

namespace jasim {
namespace {

TEST(BtbTest, ColdLookupReturnsZero)
{
    Btb btb(256, 4);
    EXPECT_EQ(btb.predict(0x1000), 0u);
}

TEST(BtbTest, StoresAndUpdatesTarget)
{
    Btb btb(256, 4);
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.predict(0x1000), 0x2000u);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(btb.predict(0x1000), 0x3000u);
}

TEST(BtbTest, CapacityEviction)
{
    Btb btb(16, 2); // 8 sets x 2 ways
    for (Addr pc = 0; pc < 64 * 4; pc += 4)
        btb.update(pc, pc + 0x100);
    std::size_t resident = 0;
    for (Addr pc = 0; pc < 64 * 4; pc += 4)
        resident += btb.predict(pc) != 0;
    EXPECT_LE(resident, 16u);
}

TEST(BtbTest, FlushClears)
{
    Btb btb(64, 4);
    btb.update(0x1000, 0x2000);
    btb.flush();
    EXPECT_EQ(btb.predict(0x1000), 0u);
}

TEST(ReturnStackTest, LifoOrder)
{
    ReturnStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(ReturnStackTest, EmptyPopReturnsZero)
{
    ReturnStack ras(8);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnStackTest, OverflowDropsOldest)
{
    ReturnStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Pops yield the four most recent pushes.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u);
}

} // namespace
} // namespace jasim
