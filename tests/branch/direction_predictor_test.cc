#include <gtest/gtest.h>

#include "branch/direction_predictor.h"
#include "sim/rng.h"

namespace jasim {
namespace {

TEST(SaturatingCounterTest, SaturatesBothEnds)
{
    SaturatingCounter c(0);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_TRUE(c.taken());
    EXPECT_EQ(c.raw(), 3);
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_FALSE(c.taken());
    EXPECT_EQ(c.raw(), 0);
}

TEST(SaturatingCounterTest, HysteresisNeedsTwoFlips)
{
    SaturatingCounter c(3);
    c.update(false);
    EXPECT_TRUE(c.taken()); // still predicts taken after one miss
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(BimodalTest, LearnsStronglyBiasedBranch)
{
    BimodalPredictor predictor(1024);
    const Addr pc = 0x4000;
    for (int i = 0; i < 10; ++i)
        predictor.update(pc, true);
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(GshareTest, LearnsAlternatingPattern)
{
    GsharePredictor predictor(4096, 8);
    const Addr pc = 0x4000;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        if (predictor.predict(pc) == actual && i >= 100)
            ++correct;
        predictor.update(pc, actual);
    }
    // History makes alternation almost perfectly predictable.
    EXPECT_GT(correct, 280);
}

TEST(GshareTest, HistoryAdvances)
{
    GsharePredictor predictor(1024, 6);
    const auto before = predictor.history();
    predictor.update(0x100, true);
    EXPECT_NE(predictor.history(), before);
}

TEST(TournamentTest, BeatsWorseComponentOnLoops)
{
    TournamentPredictor predictor(4096, 10);
    const Addr pc = 0x8000;
    // Loop with 8 trips: taken 7x, not-taken once, repeated.
    int mispredicts = 0, total = 0;
    for (int rep = 0; rep < 200; ++rep) {
        for (int t = 0; t < 8; ++t) {
            const bool taken = t != 7;
            if (rep >= 50) {
                ++total;
                if (predictor.predict(pc) != taken)
                    ++mispredicts;
            }
            predictor.predictAndUpdate(pc, taken);
        }
    }
    // gshare should learn the exit; much better than 1/8 bimodal.
    EXPECT_LT(static_cast<double>(mispredicts) / total, 0.06);
}

TEST(TournamentTest, RandomBranchNearFiftyPercent)
{
    TournamentPredictor predictor(4096, 10);
    Rng rng(11);
    const Addr pc = 0xC000;
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        correct += predictor.predictAndUpdate(pc, rng.chance(0.5));
    EXPECT_NEAR(correct / double(n), 0.5, 0.03);
}

TEST(TournamentTest, BiasedBranchAccuracyTracksBias)
{
    TournamentPredictor predictor(4096, 10);
    Rng rng(13);
    const Addr pc = 0xD000;
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        correct += predictor.predictAndUpdate(pc, rng.chance(0.9));
    EXPECT_GT(correct / double(n), 0.85);
}

} // namespace
} // namespace jasim
