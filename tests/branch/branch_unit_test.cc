#include <gtest/gtest.h>

#include "branch/branch_unit.h"

namespace jasim {
namespace {

TEST(BranchUnitTest, ConditionalTrainsToBias)
{
    BranchUnit unit{BranchConfig{}};
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const auto o = unit.conditional(0x1000, true, 0x1100);
        if (i >= 20 && !o.direction_correct)
            ++wrong;
    }
    EXPECT_EQ(wrong, 0);
}

TEST(BranchUnitTest, MispredictChargesPenalty)
{
    BranchConfig config;
    BranchUnit unit(config);
    for (int i = 0; i < 50; ++i)
        unit.conditional(0x1000, true, 0x1100);
    const auto o = unit.conditional(0x1000, false, 0x1100);
    EXPECT_FALSE(o.direction_correct);
    EXPECT_EQ(o.penalty, config.direction_mispredict_penalty);
}

TEST(BranchUnitTest, TakenBranchNeedsBtbTarget)
{
    BranchUnit unit{BranchConfig{}};
    // First taken occurrence: direction may be wrong; by the second
    // occurrence direction is right but the BTB has the target.
    unit.conditional(0x2000, true, 0x2200);
    unit.conditional(0x2000, true, 0x2200);
    const auto o = unit.conditional(0x2000, true, 0x2200);
    EXPECT_TRUE(o.direction_correct);
    EXPECT_TRUE(o.target_correct);
}

TEST(BranchUnitTest, DirectJumpWarmsUp)
{
    BranchUnit unit{BranchConfig{}};
    EXPECT_FALSE(unit.direct(0x3000, 0x3300).target_correct);
    EXPECT_TRUE(unit.direct(0x3000, 0x3300).target_correct);
}

TEST(BranchUnitTest, CallReturnPairPredicted)
{
    BranchUnit unit{BranchConfig{}};
    unit.call(0x4000, 0x8000, 0x4004);
    const auto ret = unit.ret(0x8100, 0x4004);
    EXPECT_TRUE(ret.target_correct);
}

TEST(BranchUnitTest, NestedCallsReturnInOrder)
{
    BranchUnit unit{BranchConfig{}};
    unit.call(0x4000, 0x8000, 0x4004);
    unit.call(0x8000, 0x9000, 0x8004);
    EXPECT_TRUE(unit.ret(0x9100, 0x8004).target_correct);
    EXPECT_TRUE(unit.ret(0x8100, 0x4004).target_correct);
}

TEST(BranchUnitTest, MismatchedReturnMispredicts)
{
    BranchConfig config;
    BranchUnit unit(config);
    unit.call(0x4000, 0x8000, 0x4004);
    const auto ret = unit.ret(0x8100, 0xDEAD);
    EXPECT_FALSE(ret.target_correct);
    EXPECT_EQ(ret.penalty, config.target_mispredict_penalty);
}

TEST(BranchUnitTest, VirtualCallStableTargetLearned)
{
    BranchUnit unit{BranchConfig{}};
    unit.virtualCall(0x5000, 0xA000, 0x5004);
    const auto o = unit.virtualCall(0x5000, 0xA000, 0x5004);
    EXPECT_TRUE(o.target_correct);
}

TEST(BranchUnitTest, IndirectTargetSwitchPenalized)
{
    BranchConfig config;
    BranchUnit unit(config);
    unit.indirect(0x6000, 0xA000);
    unit.indirect(0x6000, 0xA000);
    const auto o = unit.indirect(0x6000, 0xB000);
    EXPECT_FALSE(o.target_correct);
    EXPECT_EQ(o.penalty, config.target_mispredict_penalty);
}

} // namespace
} // namespace jasim
