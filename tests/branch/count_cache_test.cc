#include <gtest/gtest.h>

#include "branch/count_cache.h"

namespace jasim {
namespace {

TEST(CountCacheTest, ColdFirstResolveIsWrong)
{
    CountCache cc(256, 4);
    EXPECT_FALSE(cc.resolve(0x1000, 0x5000));
    EXPECT_TRUE(cc.resolve(0x1000, 0x5000));
}

TEST(CountCacheTest, MonomorphicSitePerfectAfterWarmup)
{
    CountCache cc(256, 4);
    cc.resolve(0x1000, 0x5000);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(cc.resolve(0x1000, 0x5000));
}

TEST(CountCacheTest, HysteresisKeepsTargetOnSingleDeviation)
{
    CountCache cc(256, 4);
    cc.resolve(0x1000, 0x5000);
    cc.resolve(0x1000, 0x5000);      // confident
    EXPECT_FALSE(cc.resolve(0x1000, 0x6000)); // one deviation
    // Target kept: the old target still predicts.
    EXPECT_EQ(cc.predict(0x1000), 0x5000u);
    EXPECT_TRUE(cc.resolve(0x1000, 0x5000));
}

TEST(CountCacheTest, TwoDeviationsReplaceTarget)
{
    CountCache cc(256, 4);
    cc.resolve(0x1000, 0x5000);
    cc.resolve(0x1000, 0x5000);
    cc.resolve(0x1000, 0x6000); // deviation 1: keep
    cc.resolve(0x1000, 0x6000); // deviation 2: replace
    EXPECT_EQ(cc.predict(0x1000), 0x6000u);
}

TEST(CountCacheTest, PolymorphicSiteMispredictsOnSwitch)
{
    CountCache cc(256, 4);
    int mispredicts = 0;
    // Site alternating between two targets every 10 calls.
    for (int i = 0; i < 200; ++i) {
        const Addr target = ((i / 10) % 2) ? 0xA000 : 0xB000;
        if (!cc.resolve(0x2000, target))
            ++mispredicts;
    }
    EXPECT_GT(mispredicts, 10);
    EXPECT_LT(mispredicts, 80);
}

TEST(CountCacheTest, CapacityBounded)
{
    CountCache cc(16, 2);
    for (Addr pc = 0; pc < 64 * 4; pc += 4)
        cc.resolve(pc, pc + 0x100);
    std::size_t resident = 0;
    for (Addr pc = 0; pc < 64 * 4; pc += 4)
        resident += cc.predict(pc) != 0;
    EXPECT_LE(resident, 16u);
}

TEST(CountCacheTest, FlushForgetsEverything)
{
    CountCache cc(64, 4);
    cc.resolve(0x3000, 0x9000);
    cc.flush();
    EXPECT_EQ(cc.predict(0x3000), 0u);
}

} // namespace
} // namespace jasim
