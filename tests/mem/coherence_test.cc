#include <gtest/gtest.h>

#include "mem/coherence.h"

namespace jasim {
namespace {

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest()
        : l2a_(geometry(), ReplacementPolicy::LRU),
          l2b_(geometry(), ReplacementPolicy::LRU),
          bus_({&l2a_, &l2b_})
    {
    }

    static CacheGeometry geometry() { return {4096, 64, 4}; }

    SetAssocCache l2a_;
    SetAssocCache l2b_;
    MesiBus bus_;
};

TEST_F(CoherenceTest, ReadSnoopFindsRemoteAndDowngrades)
{
    l2b_.fill(0x1000, MesiState::Exclusive);
    const SnoopResult snoop = bus_.snoopRead(0, 0x1000);
    EXPECT_TRUE(snoop.found);
    EXPECT_EQ(snoop.supplier, 1u);
    EXPECT_EQ(snoop.supplier_state, MesiState::Exclusive);
    EXPECT_EQ(l2b_.state(0x1000), MesiState::Shared);
}

TEST_F(CoherenceTest, ModifiedSupplierReportsModified)
{
    l2b_.fill(0x2000, MesiState::Modified);
    const SnoopResult snoop = bus_.snoopRead(0, 0x2000);
    EXPECT_TRUE(snoop.found);
    EXPECT_EQ(snoop.supplier_state, MesiState::Modified);
    EXPECT_EQ(l2b_.state(0x2000), MesiState::Shared); // implied WB
}

TEST_F(CoherenceTest, ReadMissNowhereFound)
{
    const SnoopResult snoop = bus_.snoopRead(0, 0x3000);
    EXPECT_FALSE(snoop.found);
    EXPECT_EQ(MesiBus::fillStateAfterRead(snoop), MesiState::Exclusive);
}

TEST_F(CoherenceTest, FillStateSharedWhenRemoteCopyExists)
{
    l2b_.fill(0x4000, MesiState::Shared);
    const SnoopResult snoop = bus_.snoopRead(0, 0x4000);
    EXPECT_EQ(MesiBus::fillStateAfterRead(snoop), MesiState::Shared);
    EXPECT_EQ(l2b_.state(0x4000), MesiState::Shared);
}

TEST_F(CoherenceTest, RfoInvalidatesRemoteCopies)
{
    l2b_.fill(0x5000, MesiState::Shared);
    const SnoopResult snoop = bus_.snoopReadForOwnership(0, 0x5000);
    EXPECT_TRUE(snoop.found);
    EXPECT_EQ(l2b_.state(0x5000), MesiState::Invalid);
}

TEST_F(CoherenceTest, RequesterOwnCopyNotSnooped)
{
    l2a_.fill(0x6000, MesiState::Exclusive);
    const SnoopResult snoop = bus_.snoopRead(0, 0x6000);
    EXPECT_FALSE(snoop.found);
    EXPECT_EQ(l2a_.state(0x6000), MesiState::Exclusive);
}

TEST_F(CoherenceTest, SingleWriterInvariantAfterRfo)
{
    // Both caches get the line shared, then cache 0 writes.
    l2a_.fill(0x7000, MesiState::Shared);
    l2b_.fill(0x7000, MesiState::Shared);
    bus_.snoopReadForOwnership(0, 0x7000);
    l2a_.setState(0x7000, MesiState::Modified);
    // Invariant: at most one Modified copy; no other valid copies.
    EXPECT_EQ(l2a_.state(0x7000), MesiState::Modified);
    EXPECT_EQ(l2b_.state(0x7000), MesiState::Invalid);
}

} // namespace
} // namespace jasim
