/**
 * @file
 * Exactness tests for the memory-path fast path (`--fastpath`).
 *
 * The fast path is only allowed to exist because it is provably
 * invisible: every counter, outcome and replacement decision must be
 * bit-identical with it on or off. These tests pin the mechanisms that
 * proof rests on -- epoch invalidation on every contents change, the
 * presence filter's exact negatives, and end-to-end outcome
 * equivalence over an adversarial access stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.h"
#include "mem/coherence.h"
#include "mem/hierarchy.h"
#include "mem/prefetcher.h"
#include "stats/counter.h"

namespace jasim {
namespace {

// ---------------------------------------------------------------------
// Epoch invalidation: every event that can change a future outcome
// must advance the epoch; plain hits must not.

TEST(CacheEpochTest, FillAdvancesEpoch)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    const std::uint64_t before = cache.epoch();
    cache.fill(0x1000, MesiState::Exclusive);
    EXPECT_GT(cache.epoch(), before);
}

TEST(CacheEpochTest, HitLeavesEpochUntouched)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.fill(0x1000, MesiState::Exclusive);
    const std::uint64_t armed = cache.epoch();
    cache.access(0x1000, true);
    cache.access(0x1040, true); // same line, different offset
    EXPECT_EQ(cache.epoch(), armed);
}

TEST(CacheEpochTest, RedundantFillLeavesEpochUntouched)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.fill(0x1000, MesiState::Shared);
    const std::uint64_t armed = cache.epoch();
    cache.fill(0x1000, MesiState::Shared); // same state, same kind
    EXPECT_EQ(cache.epoch(), armed);
}

TEST(CacheEpochTest, EvictionAdvancesEpoch)
{
    // 2 ways, 128 B lines, 4096 B => 16 sets; three lines mapping to
    // set 0 force an eviction on the third fill.
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.fill(0x0000, MesiState::Exclusive);
    cache.fill(0x0800, MesiState::Exclusive);
    const std::uint64_t armed = cache.epoch();
    const auto result = cache.fill(0x1000, MesiState::Exclusive);
    ASSERT_TRUE(result.victim.has_value());
    EXPECT_GT(cache.epoch(), armed);
}

TEST(CacheEpochTest, CoherenceDowngradeAdvancesEpoch)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.fill(0x1000, MesiState::Modified);
    const std::uint64_t armed = cache.epoch();
    cache.setState(0x1000, MesiState::Shared); // snoop downgrade
    EXPECT_GT(cache.epoch(), armed);
    // A no-op state write is not a contents change.
    const std::uint64_t again = cache.epoch();
    cache.setState(0x1000, MesiState::Shared);
    EXPECT_EQ(cache.epoch(), again);
}

TEST(CacheEpochTest, InvalidateAndFlushAdvanceEpoch)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.fill(0x1000, MesiState::Exclusive);
    std::uint64_t armed = cache.epoch();
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_GT(cache.epoch(), armed);
    // Invalidating an absent line changes nothing.
    armed = cache.epoch();
    EXPECT_FALSE(cache.invalidate(0x1000));
    EXPECT_EQ(cache.epoch(), armed);
    cache.fill(0x2000, MesiState::Exclusive);
    armed = cache.epoch();
    cache.flush();
    EXPECT_GT(cache.epoch(), armed);
}

// ---------------------------------------------------------------------
// Presence filter: exact negatives, no false negatives ever.

TEST(PresenceFilterTest, EmptyCacheMayContainNothing)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.enablePresenceFilter(64);
    EXPECT_FALSE(cache.mayContain(0x1000));
    EXPECT_FALSE(cache.mayContain(0xdeadbe00));
}

TEST(PresenceFilterTest, DisabledFilterAlwaysSaysMaybe)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    EXPECT_TRUE(cache.mayContain(0x1000));
}

TEST(PresenceFilterTest, NoFalseNegativesUnderChurn)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.enablePresenceFilter(16); // tiny: force bucket collisions
    // Fill far more lines than the cache holds so installs and
    // evictions churn the counters.
    std::vector<Addr> lines;
    for (Addr a = 0; a < 64; ++a)
        lines.push_back(a * 128);
    for (const Addr line : lines)
        cache.fill(line, MesiState::Exclusive);
    // Every line still resident must report "maybe present".
    for (const Addr line : lines) {
        if (cache.probe(line))
            EXPECT_TRUE(cache.mayContain(line)) << std::hex << line;
    }
}

TEST(PresenceFilterTest, CountReturnsToZeroAfterInvalidate)
{
    SetAssocCache cache({4096, 128, 2}, ReplacementPolicy::LRU);
    cache.enablePresenceFilter(64);
    cache.fill(0x1000, MesiState::Exclusive);
    EXPECT_TRUE(cache.mayContain(0x1000));
    cache.invalidate(0x1000);
    EXPECT_FALSE(cache.mayContain(0x1000));
    cache.fill(0x1000, MesiState::Exclusive);
    cache.setState(0x1000, MesiState::Invalid); // coherence removal
    EXPECT_FALSE(cache.mayContain(0x1000));
    cache.fill(0x1000, MesiState::Exclusive);
    cache.flush();
    EXPECT_FALSE(cache.mayContain(0x1000));
}

// ---------------------------------------------------------------------
// Snoop filter at the bus: skips are counted, and a filtered snoop
// returns exactly what an unfiltered one would.

TEST(SnoopFilterTest, SkipsEmptyRemoteAndFindsResidentLine)
{
    SetAssocCache l2a({4096, 128, 2}, ReplacementPolicy::LRU);
    SetAssocCache l2b({4096, 128, 2}, ReplacementPolicy::LRU);
    l2a.enablePresenceFilter(64);
    l2b.enablePresenceFilter(64);
    MesiBus bus({&l2a, &l2b});
    bus.setUseFilter(true);

    // Remote (l2b) holds nothing: the walk is skipped outright.
    SnoopResult miss = bus.snoopRead(0, 0x1000);
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(bus.filterSkips(), 1u);

    // Once the remote holds the line, the filter must let the snoop
    // through and the usual downgrade must happen.
    l2b.fill(0x1000, MesiState::Exclusive);
    SnoopResult hit = bus.snoopRead(0, 0x1000);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.supplier, 1u);
    EXPECT_EQ(bus.filterSkips(), 1u); // unchanged
    EXPECT_EQ(l2b.state(0x1000), MesiState::Shared);
}

// ---------------------------------------------------------------------
// Prefetcher repeat memo: decisions identical with the memo on/off.

TEST(PrefetcherFastpathTest, RepeatMemoMatchesSlowDecisions)
{
    StreamPrefetcher plain(128);
    StreamPrefetcher memo(128);
    memo.setFastpath(true);

    // Sequence with misses (stream detection), sequential advances,
    // and long same-line hit repeats (the memoized case).
    std::vector<std::pair<Addr, bool>> trace;
    for (Addr line = 0x1000; line < 0x3000; line += 128) {
        trace.push_back({line, true}); // advancing miss
        for (int r = 0; r < 4; ++r)
            trace.push_back({line + 16, false}); // same-line hits
    }
    for (const auto &[addr, was_miss] : trace) {
        const auto a = plain.observe(addr, was_miss);
        const auto b = memo.observe(addr, was_miss);
        ASSERT_EQ(a.stream_allocated, b.stream_allocated);
        ASSERT_EQ(a.l1_lines.size(), b.l1_lines.size());
        ASSERT_EQ(a.l2_lines.size(), b.l2_lines.size());
        for (std::size_t i = 0; i < a.l1_lines.size(); ++i)
            ASSERT_EQ(a.l1_lines[i], b.l1_lines[i]);
        for (std::size_t i = 0; i < a.l2_lines.size(); ++i)
            ASSERT_EQ(a.l2_lines[i], b.l2_lines[i]);
    }
    ASSERT_EQ(plain.activeStreams(), memo.activeStreams());
}

// ---------------------------------------------------------------------
// End-to-end: an adversarial stream produces identical outcomes and
// identical folded counters with the fast path on and off.

std::uint64_t
nextRand(std::uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
}

TEST(HierarchyFastpathTest, OutcomesBitIdenticalOnVsOff)
{
    HierarchyConfig on;
    on.fastpath = true;
    HierarchyConfig off;
    off.fastpath = false;
    MemoryHierarchy fast(on, /*seed=*/7);
    MemoryHierarchy slow(off, /*seed=*/7);

    // Tight working set with repeats (memo hits), cross-core sharing
    // (coherence invalidations behind the memos), stores (ownership
    // churn) and enough lines to force evictions.
    std::uint64_t rng = 99;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t r = nextRand(rng);
        const std::size_t core = r & 3;
        const Addr addr = ((r >> 2) & 0x3fff) * 64; // 1 MB, line-straddling
        const int kind = (r >> 20) % 10;
        MemAccessOutcome a, b;
        if (kind < 5) {
            a = fast.load(core, addr);
            b = slow.load(core, addr);
        } else if (kind < 8) {
            a = fast.fetch(core, addr);
            b = slow.fetch(core, addr);
        } else {
            a = fast.store(core, addr);
            b = slow.store(core, addr);
        }
        ASSERT_EQ(a.l1_hit, b.l1_hit) << "op " << i;
        ASSERT_EQ(a.source, b.source) << "op " << i;
        ASSERT_EQ(a.latency, b.latency) << "op " << i;
        ASSERT_EQ(a.stream_allocated, b.stream_allocated) << "op " << i;
        ASSERT_EQ(a.l1_prefetches, b.l1_prefetches) << "op " << i;
        ASSERT_EQ(a.l2_prefetches, b.l2_prefetches) << "op " << i;
    }

    // Folded DataSource counters are part of the equivalence contract.
    CounterSet fa, sa;
    fast.hotCounters().foldInto(fa);
    slow.hotCounters().foldInto(sa);
    EXPECT_EQ(fa.snapshot(), sa.snapshot());

    // The fast path actually engaged (otherwise this test proves
    // nothing) and the slow path never does.
    EXPECT_GT(fast.hotCounters().mruDataHits() +
                  fast.hotCounters().mruInstHits(),
              0u);
    EXPECT_EQ(slow.hotCounters().mruDataHits(), 0u);
    EXPECT_EQ(slow.snoopFilterSkips(), 0u);
}

TEST(HierarchyFastpathTest, FlushAllKillsMemos)
{
    HierarchyConfig config;
    config.fastpath = true;
    MemoryHierarchy mem(config);
    mem.load(0, 0x1000);
    mem.load(0, 0x1000); // memo hit
    const std::uint64_t hits = mem.hotCounters().mruDataHits();
    EXPECT_GT(hits, 0u);
    mem.flushAll();
    // After a flush the next access must take the slow path (cold).
    const auto outcome = mem.load(0, 0x1000);
    EXPECT_FALSE(outcome.l1_hit);
    EXPECT_EQ(mem.hotCounters().mruDataHits(), hits);
}

} // namespace
} // namespace jasim
