#include <gtest/gtest.h>

#include "mem/prefetcher.h"

namespace jasim {
namespace {

TEST(PrefetcherTest, SequentialMissesAllocateStream)
{
    StreamPrefetcher pf(128);
    EXPECT_FALSE(pf.observe(0x1000, true).stream_allocated);
    const auto second = pf.observe(0x1080, true); // next line
    EXPECT_TRUE(second.stream_allocated);
    EXPECT_EQ(pf.activeStreams(), 1u);
}

TEST(PrefetcherTest, DescendingStreamDetected)
{
    StreamPrefetcher pf(128);
    pf.observe(0x2000, true);
    const auto d = pf.observe(0x1F80, true);
    EXPECT_TRUE(d.stream_allocated);
    ASSERT_FALSE(d.l1_lines.empty());
    EXPECT_LT(d.l1_lines[0], 0x1F80u);
}

TEST(PrefetcherTest, StreamAdvanceIssuesPrefetches)
{
    StreamPrefetcher pf(128);
    pf.observe(0x1000, true);
    pf.observe(0x1080, true); // allocates; next expected 0x1100
    const auto advance = pf.observe(0x1100, false);
    EXPECT_FALSE(advance.stream_allocated);
    ASSERT_EQ(advance.l1_lines.size(), 1u);
    EXPECT_EQ(advance.l1_lines[0], 0x1180u);
    ASSERT_EQ(advance.l2_lines.size(), 1u);
    EXPECT_EQ(advance.l2_lines[0], 0x1200u);
}

TEST(PrefetcherTest, RandomMissesDoNotAllocate)
{
    StreamPrefetcher pf(128);
    pf.observe(0x10000, true);
    pf.observe(0x50000, true);
    pf.observe(0x90000, true);
    EXPECT_EQ(pf.activeStreams(), 0u);
}

TEST(PrefetcherTest, StreamCountBounded)
{
    StreamPrefetcher pf(128, 8);
    // Allocate 12 distinct streams; only 8 may remain.
    for (int s = 0; s < 12; ++s) {
        const Addr base = 0x100000ull * (s + 1);
        pf.observe(base, true);
        pf.observe(base + 128, true);
    }
    EXPECT_LE(pf.activeStreams(), 8u);
}

TEST(PrefetcherTest, HitsDoNotAllocateStreams)
{
    StreamPrefetcher pf(128);
    pf.observe(0x1000, false);
    pf.observe(0x1080, false);
    EXPECT_EQ(pf.activeStreams(), 0u);
}

TEST(PrefetcherTest, ResetClearsState)
{
    StreamPrefetcher pf(128);
    pf.observe(0x1000, true);
    pf.observe(0x1080, true);
    pf.reset();
    EXPECT_EQ(pf.activeStreams(), 0u);
    // Old candidate table gone: adjacent miss no longer pairs up.
    EXPECT_FALSE(pf.observe(0x1100, true).stream_allocated);
}

TEST(PrefetcherTest, LongSequentialRunFullyCovered)
{
    StreamPrefetcher pf(128);
    pf.observe(0x8000, true);
    pf.observe(0x8080, true);
    // From here, walking the expected line always returns prefetches.
    Addr next = 0x8100;
    for (int i = 0; i < 50; ++i) {
        const auto d = pf.observe(next, false);
        ASSERT_FALSE(d.l1_lines.empty()) << "step " << i;
        next += 128;
    }
}

} // namespace
} // namespace jasim
