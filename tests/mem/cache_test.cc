#include <gtest/gtest.h>

#include "mem/cache.h"

namespace jasim {
namespace {

CacheGeometry
smallGeometry()
{
    return CacheGeometry{1024, 64, 2}; // 8 sets x 2 ways
}

TEST(CacheTest, MissThenHit)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    EXPECT_FALSE(cache.access(0x1000, true).hit);
    EXPECT_TRUE(cache.access(0x1000, true).hit);
    EXPECT_TRUE(cache.access(0x1010, true).hit); // same line
}

TEST(CacheTest, NonAllocatingAccessDoesNotFill)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    EXPECT_FALSE(cache.access(0x2000, false).hit);
    EXPECT_FALSE(cache.probe(0x2000));
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    // Three lines mapping to the same set (stride = sets * line = 512).
    cache.access(0x0000, true);
    cache.access(0x0200, true);
    cache.access(0x0000, true); // refresh first line
    const auto result = cache.access(0x0400, true);
    ASSERT_TRUE(result.victim.has_value());
    EXPECT_EQ(*result.victim, 0x0200u);
    EXPECT_TRUE(cache.probe(0x0000));
}

TEST(CacheTest, FifoIgnoresHits)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::FIFO);
    cache.access(0x0000, true);
    cache.access(0x0200, true);
    cache.access(0x0000, true); // hit does not refresh under FIFO
    const auto result = cache.access(0x0400, true);
    ASSERT_TRUE(result.victim.has_value());
    EXPECT_EQ(*result.victim, 0x0000u); // oldest fill evicted
}

TEST(CacheTest, VictimCarriesState)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.access(0x0000, true, MesiState::Modified);
    cache.access(0x0200, true);
    const auto result = cache.access(0x0400, true);
    ASSERT_TRUE(result.victim.has_value());
    EXPECT_EQ(result.victim_state, MesiState::Modified);
}

TEST(CacheTest, StateManipulation)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.access(0x1000, true, MesiState::Exclusive);
    EXPECT_EQ(cache.state(0x1000), MesiState::Exclusive);
    EXPECT_TRUE(cache.setState(0x1000, MesiState::Shared));
    EXPECT_EQ(cache.state(0x1000), MesiState::Shared);
    EXPECT_FALSE(cache.setState(0x9999000, MesiState::Shared));
}

TEST(CacheTest, InvalidateRemovesLine)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.access(0x1000, true);
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000));
}

TEST(CacheTest, FillRefreshesExistingLine)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.fill(0x1000, MesiState::Shared);
    const auto again = cache.fill(0x1000, MesiState::Modified);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(cache.state(0x1000), MesiState::Modified);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST(CacheTest, FlushEmptiesCache)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    for (Addr a = 0; a < 1024; a += 64)
        cache.access(a, true);
    EXPECT_GT(cache.validLines(), 0u);
    cache.flush();
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(CacheTest, CapacityNeverExceeded)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::Random, 1);
    for (Addr a = 0; a < 64 * 1024; a += 64)
        cache.access(a, true);
    EXPECT_LE(cache.validLines(), 16u); // 8 sets x 2 ways
}

TEST(CacheTest, LineAddrMasksOffset)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    EXPECT_EQ(cache.lineAddr(0x1234), 0x1200u & ~Addr{63});
}

TEST(CacheTest, InstructionFriendlyProtectsInstructionLines)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.setInstructionFriendly(true);
    // Fill a set with one instruction line and one data line.
    cache.fill(0x0000, MesiState::Exclusive, LineKind::Instruction);
    cache.fill(0x0200, MesiState::Exclusive, LineKind::Data);
    // Next conflicting fill must evict the data line, not the
    // instruction line, regardless of LRU order.
    const auto result =
        cache.fill(0x0400, MesiState::Exclusive, LineKind::Data);
    ASSERT_TRUE(result.victim.has_value());
    EXPECT_EQ(*result.victim, 0x0200u);
    EXPECT_TRUE(cache.probe(0x0000));
}

TEST(CacheTest, InstructionFriendlyFallsBackWhenAllInstruction)
{
    SetAssocCache cache(smallGeometry(), ReplacementPolicy::LRU);
    cache.setInstructionFriendly(true);
    cache.fill(0x0000, MesiState::Exclusive, LineKind::Instruction);
    cache.fill(0x0200, MesiState::Exclusive, LineKind::Instruction);
    const auto result =
        cache.fill(0x0400, MesiState::Exclusive, LineKind::Instruction);
    EXPECT_TRUE(result.victim.has_value()); // LRU among instructions
}

/** Property sweep over geometries: full-set fills evict exactly once
 *  per way overflow and hits never report victims. */
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometrySweep, WorkingSetSmallerThanCacheAlwaysHits)
{
    const auto [ways, line] = GetParam();
    const CacheGeometry g{static_cast<std::uint64_t>(64 * ways * line),
                          static_cast<std::uint32_t>(line),
                          static_cast<std::uint32_t>(ways)};
    SetAssocCache cache(g, ReplacementPolicy::LRU);
    // Touch every line once, then everything must hit.
    for (Addr a = 0; a < g.size_bytes; a += g.line_bytes)
        cache.access(a, true);
    for (Addr a = 0; a < g.size_bytes; a += g.line_bytes)
        EXPECT_TRUE(cache.access(a, true).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(32, 64, 128)));

} // namespace
} // namespace jasim
