#include <gtest/gtest.h>

#include "mem/hierarchy.h"

namespace jasim {
namespace {

HierarchyConfig
testConfig()
{
    HierarchyConfig config;
    config.prefetch_enabled = false; // deterministic unless testing it
    return config;
}

TEST(HierarchyTest, TopologyOfStudySystem)
{
    MemoryHierarchy mem(testConfig());
    EXPECT_EQ(mem.config().chips(), 2u);
    EXPECT_EQ(mem.config().mcms(), 2u);
    EXPECT_EQ(mem.chipOf(0), 0u);
    EXPECT_EQ(mem.chipOf(1), 0u);
    EXPECT_EQ(mem.chipOf(2), 1u);
    EXPECT_EQ(mem.chipOf(3), 1u);
}

TEST(HierarchyTest, ColdLoadComesFromMemory)
{
    MemoryHierarchy mem(testConfig());
    const auto outcome = mem.load(0, 0x100000);
    EXPECT_FALSE(outcome.l1_hit);
    EXPECT_EQ(outcome.source, DataSource::Memory);
}

TEST(HierarchyTest, RepeatLoadHitsL1)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0x100000);
    const auto outcome = mem.load(0, 0x100000);
    EXPECT_TRUE(outcome.l1_hit);
    EXPECT_EQ(outcome.source, DataSource::L1);
}

TEST(HierarchyTest, SiblingCoreHitsSharedL2)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0x200000);       // core 0 fills chip 0's L2
    const auto outcome = mem.load(1, 0x200000); // sibling core
    EXPECT_FALSE(outcome.l1_hit);
    EXPECT_EQ(outcome.source, DataSource::L2);
}

TEST(HierarchyTest, CrossMcmSharedTransfer)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0x300000);       // chip 0 holds the line Exclusive
    const auto outcome = mem.load(2, 0x300000); // other MCM
    EXPECT_EQ(outcome.source, DataSource::L2_75Shared);
}

TEST(HierarchyTest, CrossMcmModifiedTransfer)
{
    MemoryHierarchy mem(testConfig());
    mem.store(0, 0x400000);      // chip 0 holds the line Modified
    const auto outcome = mem.load(2, 0x400000);
    EXPECT_EQ(outcome.source, DataSource::L2_75Modified);
}

TEST(HierarchyTest, L3HitAfterL2Eviction)
{
    HierarchyConfig config = testConfig();
    config.l2 = CacheGeometry{16 * 1024, 128, 2}; // tiny L2
    MemoryHierarchy mem(config);
    mem.load(0, 0x0);
    // Blow the tiny L2 with conflicting lines.
    for (Addr a = 0x100000; a < 0x140000; a += 128)
        mem.load(0, a);
    mem.l1d(0).flush();
    const auto outcome = mem.load(0, 0x0);
    EXPECT_EQ(outcome.source, DataSource::L3);
}

TEST(HierarchyTest, StoreMissDoesNotAllocateL1)
{
    MemoryHierarchy mem(testConfig());
    const auto first = mem.store(0, 0x500000);
    EXPECT_FALSE(first.l1_hit);
    // Line is in L2 now, but still not in L1 (write-through no-alloc).
    const auto second = mem.store(0, 0x500000);
    EXPECT_FALSE(second.l1_hit);
    const auto load = mem.load(0, 0x500000);
    EXPECT_FALSE(load.l1_hit);
    EXPECT_EQ(load.source, DataSource::L2);
}

TEST(HierarchyTest, StoreHitAfterLoadFillsL1)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0x600000);
    EXPECT_TRUE(mem.store(0, 0x600000).l1_hit);
}

TEST(HierarchyTest, StoreGainsOwnership)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0x700000);
    mem.load(2, 0x700000); // both chips Shared
    mem.store(0, 0x700000);
    EXPECT_EQ(mem.l2(0).state(mem.l2(0).lineAddr(0x700000)),
              MesiState::Modified);
    EXPECT_EQ(mem.l2(1).state(mem.l2(1).lineAddr(0x700000)),
              MesiState::Invalid);
}

TEST(HierarchyTest, InstructionFetchPath)
{
    MemoryHierarchy mem(testConfig());
    const auto first = mem.fetch(0, 0x800000);
    EXPECT_FALSE(first.l1_hit);
    const auto second = mem.fetch(0, 0x800000);
    EXPECT_TRUE(second.l1_hit);
    // Instructions and data share the unified L2.
    const auto data = mem.load(0, 0x800000);
    EXPECT_EQ(data.source, DataSource::L2);
}

TEST(HierarchyTest, L1InclusionMaintainedOnL2Eviction)
{
    HierarchyConfig config = testConfig();
    config.l2 = CacheGeometry{16 * 1024, 128, 2};
    MemoryHierarchy mem(config);
    mem.load(0, 0x0);
    ASSERT_TRUE(mem.l1d(0).probe(0x0));
    // Evict 0x0 from L2 via conflicting fills.
    for (Addr a = 0x100000; a < 0x180000; a += 128)
        mem.load(1, a);
    // Inclusion: if the L2 dropped the line, the L1 must have too.
    if (!mem.l2(0).probe(0x0))
        EXPECT_FALSE(mem.l1d(0).probe(0x0));
}

TEST(HierarchyTest, PrefetchCoversSequentialStream)
{
    HierarchyConfig config = testConfig();
    config.prefetch_enabled = true;
    MemoryHierarchy mem(config);
    std::uint32_t prefetches = 0;
    std::uint64_t misses = 0;
    for (Addr a = 0x900000; a < 0x930000; a += 128) {
        const auto o = mem.load(0, a);
        prefetches += o.l1_prefetches;
        misses += o.l1_hit ? 0 : 1;
    }
    EXPECT_GT(prefetches, 100u);
    // Prefetch hides most line transitions after the ramp.
    EXPECT_LT(misses, 20u);
}

TEST(HierarchyTest, LatenciesOrdered)
{
    const HierarchyConfig config;
    EXPECT_LT(config.lat_l1, config.lat_l2);
    EXPECT_LT(config.lat_l2, config.lat_l3);
    EXPECT_LT(config.lat_l3, config.lat_l2_75_shared);
    EXPECT_LT(config.lat_l2_75_shared, config.lat_memory);
}

TEST(HierarchyTest, FlushAllEmptiesEverything)
{
    MemoryHierarchy mem(testConfig());
    mem.load(0, 0xA00000);
    mem.flushAll();
    EXPECT_EQ(mem.l1d(0).validLines(), 0u);
    EXPECT_EQ(mem.l2(0).validLines(), 0u);
    EXPECT_EQ(mem.l3(0).validLines(), 0u);
}

} // namespace
} // namespace jasim
