#include <gtest/gtest.h>

#include "db/buffer_pool.h"

namespace jasim {
namespace {

TEST(BufferPoolTest, MissThenHit)
{
    BufferPool pool(4);
    EXPECT_FALSE(pool.pin({0, 1}).hit);
    EXPECT_TRUE(pool.pin({0, 1}).hit);
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, LruEviction)
{
    BufferPool pool(2);
    pool.pin({0, 1});
    pool.pin({0, 2});
    pool.pin({0, 1}); // refresh 1
    pool.pin({0, 3}); // evicts 2
    EXPECT_TRUE(pool.resident({0, 1}));
    EXPECT_FALSE(pool.resident({0, 2}));
    EXPECT_TRUE(pool.resident({0, 3}));
}

TEST(BufferPoolTest, DirtyEvictionCountsWriteback)
{
    BufferPool pool(1);
    pool.pin({0, 1}, true); // dirty
    const PinResult result = pool.pin({0, 2});
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(pool.writebacks(), 1u);
}

TEST(BufferPoolTest, CleanEvictionNoWriteback)
{
    BufferPool pool(1);
    pool.pin({0, 1}, false);
    EXPECT_FALSE(pool.pin({0, 2}).writeback);
}

TEST(BufferPoolTest, DirtyStickyUntilEvicted)
{
    BufferPool pool(2);
    pool.pin({0, 1}, true);
    pool.pin({0, 1}, false); // re-pin clean does not clear dirty
    pool.pin({0, 2});
    const PinResult evicting = pool.pin({0, 3});
    EXPECT_TRUE(evicting.writeback); // page 1 was still dirty
}

TEST(BufferPoolTest, TablesDistinguishedInKey)
{
    BufferPool pool(4);
    pool.pin({1, 7});
    EXPECT_FALSE(pool.pin({2, 7}).hit);
}

TEST(BufferPoolTest, HitRateAndCapacity)
{
    BufferPool pool(8);
    for (int round = 0; round < 10; ++round)
        for (std::uint32_t p = 0; p < 8; ++p)
            pool.pin({0, p});
    EXPECT_EQ(pool.residentPages(), 8u);
    EXPECT_NEAR(pool.hitRate(), 72.0 / 80.0, 1e-9);
}

TEST(BufferPoolTest, ClearEmptiesPool)
{
    BufferPool pool(4);
    pool.pin({0, 1});
    pool.clear();
    EXPECT_EQ(pool.residentPages(), 0u);
    EXPECT_FALSE(pool.resident({0, 1}));
}

TEST(BufferPoolTest, HealthyPinsKeepDirtyPageTableEmpty)
{
    BufferPool pool(4);
    pool.pin({0, 1}, true); // recovery LSN 0: not tracked
    EXPECT_TRUE(pool.dirtyPages().empty());
    EXPECT_EQ(pool.minRecoveryLsn(), 0u);
}

TEST(BufferPoolTest, DirtyPageTableFirstDirtierWins)
{
    BufferPool pool(4);
    pool.pin({0, 1}, true, 7);
    pool.pin({0, 1}, true, 3); // later dirtier must not lower it
    ASSERT_EQ(pool.dirtyPages().size(), 1u);
    EXPECT_EQ(pool.dirtyPages().at({0, 1}), 7u);
    pool.pin({0, 2}, true, 5);
    EXPECT_EQ(pool.minRecoveryLsn(), 5u);
}

TEST(BufferPoolTest, MarkCleanDropsDptEntry)
{
    BufferPool pool(4);
    pool.pin({0, 1}, true, 7);
    pool.markClean({0, 1});
    EXPECT_TRUE(pool.dirtyPages().empty());
    EXPECT_TRUE(pool.resident({0, 1})); // still cached, just clean
    // And re-dirtying after a flush records the new recovery LSN.
    pool.pin({0, 1}, true, 12);
    EXPECT_EQ(pool.dirtyPages().at({0, 1}), 12u);
}

TEST(BufferPoolTest, MarkAllCleanResetsEveryFrame)
{
    BufferPool pool(4);
    pool.pin({0, 1}, true, 7);
    pool.pin({0, 2}, true, 9);
    pool.markAllClean();
    EXPECT_TRUE(pool.dirtyPages().empty());
    pool.pin({0, 3});
    pool.pin({0, 4});
    // Frames were marked clean, so filling the pool evicts without
    // write-backs.
    pool.pin({0, 5});
    EXPECT_EQ(pool.writebacks(), 0u);
}

TEST(BufferPoolTest, EvictionRemovesVictimFromDpt)
{
    BufferPool pool(1);
    pool.pin({0, 1}, true, 7);
    const PinResult result = pool.pin({0, 2}, true, 9);
    EXPECT_TRUE(result.evicted);
    EXPECT_EQ(result.victim, (PageKey{0, 1}));
    EXPECT_TRUE(result.writeback);
    ASSERT_EQ(pool.dirtyPages().size(), 1u);
    EXPECT_EQ(pool.dirtyPages().count({0, 1}), 0u);
}

} // namespace
} // namespace jasim
