#include <gtest/gtest.h>

#include "db/wal.h"

namespace jasim {
namespace {

TEST(WalTest, LsnsMonotonic)
{
    Wal wal;
    const auto a = wal.append(1, WalRecordType::Begin, 0);
    const auto b = wal.append(1, WalRecordType::Insert, 100);
    EXPECT_LT(a, b);
    EXPECT_EQ(wal.recordCount(), 2u);
}

TEST(WalTest, ForceReturnsPendingBytesOnce)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 100);
    wal.append(1, WalRecordType::Commit, 0);
    const auto forced = wal.force();
    EXPECT_GT(forced, 100u); // payload + headers
    EXPECT_EQ(wal.force(), 0u); // nothing new
    EXPECT_EQ(wal.forceCount(), 1u);
}

TEST(WalTest, AppendAfterForceAccumulatesAgain)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 50);
    wal.force();
    wal.append(2, WalRecordType::Insert, 70);
    EXPECT_GT(wal.force(), 70u);
    EXPECT_EQ(wal.forceCount(), 2u);
}

TEST(WalTest, ForcedRecordsDroppedFromMemory)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 50);
    EXPECT_EQ(wal.pendingRecords(), 1u);
    wal.force();
    EXPECT_EQ(wal.pendingRecords(), 0u);
    EXPECT_EQ(wal.recordCount(), 1u); // lifetime count preserved
}

TEST(WalTest, BytesIncludeHeaders)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 0);
    EXPECT_GT(wal.appendedBytes(), 0u);
}

TEST(WalTest, TruncateDropsOldPending)
{
    Wal wal;
    const auto lsn1 = wal.append(1, WalRecordType::Insert, 10);
    wal.append(1, WalRecordType::Insert, 10);
    wal.truncate(lsn1);
    EXPECT_EQ(wal.pendingRecords(), 1u);
}

TEST(WalTest, ForceOnEmptyLogIsFree)
{
    Wal wal;
    EXPECT_EQ(wal.force(), 0u);
    EXPECT_EQ(wal.forceCount(), 0u);
    wal.append(1, WalRecordType::Insert, 10);
    wal.force();
    // Nothing new appended: the second force must not count either.
    EXPECT_EQ(wal.force(), 0u);
    EXPECT_EQ(wal.forceCount(), 1u);
}

TEST(WalTest, LegacyTruncateForgivesPendingBytes)
{
    // Truncating unforced legacy records must not leave phantom bytes
    // for the next force() to bill.
    Wal wal;
    wal.append(1, WalRecordType::Insert, 100);
    wal.truncate(wal.lastLsn());
    EXPECT_EQ(wal.pendingRecords(), 0u);
    EXPECT_EQ(wal.force(), 0u);
}

TEST(WalTest, RetentionKeepsRecordsAcrossForce)
{
    Wal wal;
    wal.setRetention(true);
    wal.appendLogical(1, WalRecordType::Insert, 40, 0, RowId{0, 0},
                      Row{std::int64_t{1}}, std::nullopt);
    wal.append(1, WalRecordType::Commit, 0);
    const auto forced = wal.force();
    EXPECT_GT(forced, 0u);
    EXPECT_EQ(wal.pendingRecords(), 0u);
    ASSERT_EQ(wal.records().size(), 2u); // survive for replay
    EXPECT_TRUE(wal.records()[0].redo.has_value());
    EXPECT_EQ(wal.issuedLsn(), wal.lastLsn());
    EXPECT_GT(wal.retainedBytes(), 0u);
}

TEST(WalTest, TruncatePastEndClampsAndKeepsLsnsStable)
{
    Wal wal;
    wal.setRetention(true);
    wal.append(1, WalRecordType::Insert, 10);
    wal.append(1, WalRecordType::Commit, 0);
    wal.force();
    const auto unforced = wal.append(2, WalRecordType::Insert, 10);
    wal.truncate(unforced + 100); // way past the end
    // Clamped to the forced prefix: the unforced record survives.
    ASSERT_EQ(wal.records().size(), 1u);
    EXPECT_EQ(wal.records()[0].lsn, unforced);
    EXPECT_EQ(wal.truncatedUpTo(), unforced - 1);
    // LSN assignment never moves backwards after a clamped truncate.
    EXPECT_EQ(wal.append(2, WalRecordType::Commit, 0), unforced + 1);
}

TEST(WalTest, ConfirmDurableClampsToIssued)
{
    Wal wal;
    wal.setRetention(true);
    wal.append(1, WalRecordType::Insert, 10);
    wal.confirmDurable(100); // nothing issued yet
    EXPECT_EQ(wal.durableLsn(), 0u);
    wal.force();
    wal.confirmDurable(100);
    EXPECT_EQ(wal.durableLsn(), wal.issuedLsn());
}

TEST(WalTest, PlainCrashDropsOnlyUnforcedTail)
{
    Wal wal;
    wal.setRetention(true);
    wal.append(1, WalRecordType::Insert, 10);
    wal.append(1, WalRecordType::Commit, 0);
    wal.force();
    wal.append(2, WalRecordType::Insert, 10); // never forced
    wal.append(2, WalRecordType::Insert, 10);
    const WalCrashLoss loss = wal.crashDiscard(false);
    EXPECT_EQ(loss.unforced_records, 2u);
    EXPECT_EQ(loss.torn_records, 0u);
    ASSERT_EQ(wal.records().size(), 2u);
    // Survivors are durable by definition.
    EXPECT_EQ(wal.durableLsn(), wal.records().back().lsn);
}

TEST(WalTest, TornCrashTearsTheInFlightWindow)
{
    Wal wal;
    wal.setRetention(true);
    for (int i = 0; i < 4; ++i)
        wal.append(1, WalRecordType::Insert, 10);
    wal.force(); // issued, but the force I/O never completed
    const WalCrashLoss loss = wal.crashDiscard(true);
    EXPECT_EQ(loss.unforced_records, 0u);
    EXPECT_EQ(loss.torn_records, 2u); // half the window torn off
    EXPECT_EQ(wal.records().size(), 2u);
}

TEST(WalTest, ProtectedRecordsCannotBeTorn)
{
    Wal wal;
    wal.setRetention(true);
    for (int i = 0; i < 4; ++i)
        wal.append(1, WalRecordType::Insert, 10);
    wal.force();
    // A stable page flush carried every effect: nothing can tear.
    wal.protect(wal.issuedLsn());
    const WalCrashLoss loss = wal.crashDiscard(true);
    EXPECT_EQ(loss.torn_records, 0u);
    EXPECT_EQ(wal.records().size(), 4u);
}

} // namespace
} // namespace jasim
