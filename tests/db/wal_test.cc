#include <gtest/gtest.h>

#include "db/wal.h"

namespace jasim {
namespace {

TEST(WalTest, LsnsMonotonic)
{
    Wal wal;
    const auto a = wal.append(1, WalRecordType::Begin, 0);
    const auto b = wal.append(1, WalRecordType::Insert, 100);
    EXPECT_LT(a, b);
    EXPECT_EQ(wal.recordCount(), 2u);
}

TEST(WalTest, ForceReturnsPendingBytesOnce)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 100);
    wal.append(1, WalRecordType::Commit, 0);
    const auto forced = wal.force();
    EXPECT_GT(forced, 100u); // payload + headers
    EXPECT_EQ(wal.force(), 0u); // nothing new
    EXPECT_EQ(wal.forceCount(), 1u);
}

TEST(WalTest, AppendAfterForceAccumulatesAgain)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 50);
    wal.force();
    wal.append(2, WalRecordType::Insert, 70);
    EXPECT_GT(wal.force(), 70u);
    EXPECT_EQ(wal.forceCount(), 2u);
}

TEST(WalTest, ForcedRecordsDroppedFromMemory)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 50);
    EXPECT_EQ(wal.pendingRecords(), 1u);
    wal.force();
    EXPECT_EQ(wal.pendingRecords(), 0u);
    EXPECT_EQ(wal.recordCount(), 1u); // lifetime count preserved
}

TEST(WalTest, BytesIncludeHeaders)
{
    Wal wal;
    wal.append(1, WalRecordType::Insert, 0);
    EXPECT_GT(wal.appendedBytes(), 0u);
}

TEST(WalTest, TruncateDropsOldPending)
{
    Wal wal;
    const auto lsn1 = wal.append(1, WalRecordType::Insert, 10);
    wal.append(1, WalRecordType::Insert, 10);
    wal.truncate(lsn1);
    EXPECT_EQ(wal.pendingRecords(), 1u);
}

} // namespace
} // namespace jasim
