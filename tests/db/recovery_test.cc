#include <gtest/gtest.h>

#include "db/database.h"
#include "db/durability_audit.h"

namespace jasim {
namespace {

/** A small armed database: recovery on, 3-column orders table. */
class RecoveryTest : public ::testing::Test
{
  protected:
    RecoveryTest() : db_(DbConfig{64, 4})
    {
        table_ = db_.createTable(
            Schema{"orders",
                   {{"id", ColumnType::Integer},
                    {"customer_id", ColumnType::Integer},
                    {"status", ColumnType::Integer}}});
        db_.enableRecovery();
    }

    Row order(std::int64_t id, std::int64_t customer,
              std::int64_t status = 0)
    {
        return Row{id, customer, status};
    }

    void commitOrder(std::int64_t id, std::int64_t customer)
    {
        const TxnId txn = db_.begin();
        db_.insert(txn, table_, order(id, customer));
        db_.commit(txn);
    }

    std::optional<Row> find(std::int64_t key)
    {
        DbCost cost;
        return db_.pointSelect(table_, key, cost);
    }

    Database db_;
    std::uint32_t table_ = 0;
};

TEST_F(RecoveryTest, DurableCommitSurvivesCrash)
{
    commitOrder(1, 10);
    db_.confirmWalDurable(db_.wal().issuedLsn());
    db_.crash(false);
    EXPECT_TRUE(db_.crashed());
    const RecoveryStats stats = db_.recover();
    EXPECT_FALSE(db_.crashed());
    EXPECT_GE(stats.winner_txns, 1u);
    ASSERT_TRUE(find(1).has_value());
    EXPECT_EQ(std::get<std::int64_t>((*find(1))[1]), 10);
}

TEST_F(RecoveryTest, InFlightLoserIsUndone)
{
    // Txn A mutates but never commits; txn B's commit forces the log,
    // carrying A's records to stable storage. A is a loser.
    const TxnId loser = db_.begin();
    db_.insert(loser, table_, order(1, 10));
    commitOrder(2, 20);
    db_.confirmWalDurable(db_.wal().issuedLsn());
    db_.crash(false);
    const RecoveryStats stats = db_.recover();
    EXPECT_EQ(stats.loser_txns, 1u);
    EXPECT_GT(stats.undo_records, 0u);
    EXPECT_FALSE(find(1).has_value()); // undone
    EXPECT_TRUE(find(2).has_value());  // winner kept
}

TEST_F(RecoveryTest, TornWriteLosesUnconfirmedCommit)
{
    // Commit forced but its force I/O never completed: a torn write
    // tears off the tail, so the transaction must roll back cleanly.
    commitOrder(1, 10);
    const CrashStats crash = db_.crash(true);
    EXPECT_GT(crash.torn_records, 0u);
    db_.recover();
    EXPECT_FALSE(find(1).has_value());
}

TEST_F(RecoveryTest, AbortedEffectsDoNotResurrect)
{
    commitOrder(1, 10);
    const TxnId txn = db_.begin();
    db_.updateByKey(txn, table_, 1, order(1, 10, 5));
    db_.abort(txn); // logs compensation records and a terminal Abort
    db_.confirmWalDurable(db_.wal().issuedLsn());
    db_.crash(false);
    const RecoveryStats stats = db_.recover();
    // The aborted txn is a winner: its log describes the rollback.
    EXPECT_EQ(stats.loser_txns, 0u);
    ASSERT_TRUE(find(1).has_value());
    EXPECT_EQ(std::get<std::int64_t>((*find(1))[2]), 0); // not 5
}

TEST_F(RecoveryTest, CheckpointTruncatesAndPreservesEffects)
{
    for (std::int64_t id = 1; id <= 20; ++id)
        commitOrder(id, id * 10);
    db_.confirmWalDurable(db_.wal().issuedLsn());
    const std::uint64_t before = db_.wal().retainedBytes();
    const CheckpointStats ckpt = db_.checkpoint();
    EXPECT_GT(ckpt.pages_flushed, 0u);
    EXPECT_GT(ckpt.truncated_records, 0u);
    EXPECT_LT(db_.wal().retainedBytes(), before);
    EXPECT_GT(db_.wal().truncatedUpTo(), 0u);

    // Truncated effects now live in stable pages, not the WAL: a
    // crash right after the checkpoint must still keep every row.
    db_.crash(false);
    const RecoveryStats stats = db_.recover();
    EXPECT_EQ(stats.redo_applied, 0u); // pageLSN guard skips them all
    for (std::int64_t id = 1; id <= 20; ++id)
        EXPECT_TRUE(find(id).has_value()) << "row " << id;
}

TEST_F(RecoveryTest, RepeatedCrashRecoverIsIdempotent)
{
    commitOrder(1, 10);
    db_.confirmWalDurable(db_.wal().issuedLsn());
    for (int round = 0; round < 3; ++round) {
        db_.crash(false);
        db_.recover();
        db_.confirmWalDurable(db_.wal().issuedLsn());
    }
    DbCost cost;
    // Exactly once: no duplicate redo materialized a second copy.
    EXPECT_EQ(db_.scanWhere(table_, 0, 1, cost).size(), 1u);
}

TEST_F(RecoveryTest, IndexesRebuiltAfterRecovery)
{
    db_.createSecondaryIndex(table_, "customer_id");
    commitOrder(1, 10);
    commitOrder(2, 10);
    db_.confirmWalDurable(db_.wal().issuedLsn());
    db_.crash(false);
    db_.recover();
    DbCost cost;
    EXPECT_EQ(db_.selectBySecondary(table_, "customer_id", 10, cost)
                  .size(),
              2u);
}

TEST(DurabilityAuditorTest, FlagsLostAckedCommit)
{
    Database db(DbConfig{64, 4});
    const std::uint32_t audit = db.createTable(
        Schema{"audit",
               {{"token", ColumnType::Integer},
                {"request_type", ColumnType::Integer}}});
    DurabilityAuditor auditor;
    // Token 1 was committed and acked, but the crash kept neither its
    // Commit record nor a truncated prefix covering it: data loss.
    auditor.noteCommitted(1, 5);
    auditor.noteAcked(1);
    auditor.noteCrash({}, 0);
    const AuditReport report = auditor.audit(db, audit);
    EXPECT_EQ(report.lost_acked, 1u);
    EXPECT_FALSE(report.pass());
}

TEST(DurabilityAuditorTest, FlagsResurrectedEffect)
{
    Database db(DbConfig{64, 4});
    const std::uint32_t audit = db.createTable(
        Schema{"audit",
               {{"token", ColumnType::Integer},
                {"request_type", ColumnType::Integer}}});
    // The table contains token 1 even though the crash wiped it.
    const TxnId txn = db.begin();
    db.insert(txn, audit, Row{std::int64_t{1}, std::int64_t{0}});
    db.commit(txn);
    DurabilityAuditor auditor;
    auditor.noteCommitted(1, 5);
    auditor.noteCrash({}, 0);
    const AuditReport report = auditor.audit(db, audit);
    EXPECT_EQ(report.resurrected, 1u);
    EXPECT_FALSE(report.pass());
}

TEST(DurabilityAuditorTest, PassesWhenHistoryIsConsistent)
{
    Database db(DbConfig{64, 4});
    const std::uint32_t audit = db.createTable(
        Schema{"audit",
               {{"token", ColumnType::Integer},
                {"request_type", ColumnType::Integer}}});
    const TxnId txn = db.begin();
    db.insert(txn, audit, Row{std::int64_t{1}, std::int64_t{0}});
    db.commit(txn);
    DurabilityAuditor auditor;
    auditor.noteCommitted(1, 5);
    auditor.noteAcked(1);
    // Commit LSN 5 is covered by the truncation watermark: durable.
    auditor.noteCrash({}, 7);
    const AuditReport report = auditor.audit(db, audit);
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.surviving, 1u);
    EXPECT_EQ(report.acked_total, 1u);
}

} // namespace
} // namespace jasim
