#include <gtest/gtest.h>

#include "db/database.h"

namespace jasim {
namespace {

class DatabaseTest : public ::testing::Test
{
  protected:
    DatabaseTest() : db_(DbConfig{64, 4})
    {
        table_ = db_.createTable(
            Schema{"orders",
                   {{"id", ColumnType::Integer},
                    {"customer_id", ColumnType::Integer},
                    {"status", ColumnType::Integer}}});
    }

    Row order(std::int64_t id, std::int64_t customer,
              std::int64_t status = 0)
    {
        return Row{id, customer, status};
    }

    Database db_;
    std::uint32_t table_ = 0;
};

TEST_F(DatabaseTest, InsertThenPointSelect)
{
    const TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 10));
    db_.commit(txn);
    DbCost cost;
    const auto row = db_.pointSelect(table_, 1, cost);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(std::get<std::int64_t>((*row)[1]), 10);
    EXPECT_GT(cost.cpu_us, 0.0);
}

TEST_F(DatabaseTest, MissingKeyReturnsNullopt)
{
    DbCost cost;
    EXPECT_FALSE(db_.pointSelect(table_, 999, cost).has_value());
}

TEST_F(DatabaseTest, CommitForcesLog)
{
    const TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 10));
    const DbCost cost = db_.commit(txn);
    EXPECT_GT(cost.log_bytes_forced, 0u);
    EXPECT_GT(db_.wal().forceCount(), 0u);
}

TEST_F(DatabaseTest, UpdateByKeyVisible)
{
    TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 10, 0));
    db_.commit(txn);
    txn = db_.begin();
    db_.updateByKey(txn, table_, 1, order(1, 10, 5));
    db_.commit(txn);
    DbCost cost;
    EXPECT_EQ(std::get<std::int64_t>(
                  (*db_.pointSelect(table_, 1, cost))[2]),
              5);
}

TEST_F(DatabaseTest, AbortUndoesInsert)
{
    const TxnId txn = db_.begin();
    db_.insert(txn, table_, order(2, 20));
    db_.abort(txn);
    DbCost cost;
    EXPECT_FALSE(db_.pointSelect(table_, 2, cost).has_value());
}

TEST_F(DatabaseTest, AbortUndoesUpdate)
{
    TxnId txn = db_.begin();
    db_.insert(txn, table_, order(3, 30, 1));
    db_.commit(txn);
    txn = db_.begin();
    db_.updateByKey(txn, table_, 3, order(3, 30, 9));
    db_.abort(txn);
    DbCost cost;
    EXPECT_EQ(std::get<std::int64_t>(
                  (*db_.pointSelect(table_, 3, cost))[2]),
              1);
}

TEST_F(DatabaseTest, AbortUndoesErase)
{
    TxnId txn = db_.begin();
    db_.insert(txn, table_, order(4, 40));
    db_.commit(txn);
    txn = db_.begin();
    db_.eraseByKey(txn, table_, 4);
    db_.abort(txn);
    DbCost cost;
    EXPECT_TRUE(db_.pointSelect(table_, 4, cost).has_value());
}

TEST_F(DatabaseTest, SecondaryIndexSelect)
{
    db_.createSecondaryIndex(table_, "customer_id");
    const TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 7));
    db_.insert(txn, table_, order(2, 7));
    db_.insert(txn, table_, order(3, 8));
    db_.commit(txn);
    DbCost cost;
    const auto rows = db_.selectBySecondary(table_, "customer_id", 7,
                                            cost);
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_EQ(cost.rows, 2u);
}

TEST_F(DatabaseTest, SecondaryIndexFollowsUpdates)
{
    db_.createSecondaryIndex(table_, "customer_id");
    TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 7));
    db_.commit(txn);
    txn = db_.begin();
    db_.updateByKey(txn, table_, 1, order(1, 9));
    db_.commit(txn);
    DbCost cost;
    EXPECT_TRUE(
        db_.selectBySecondary(table_, "customer_id", 7, cost).empty());
    EXPECT_EQ(
        db_.selectBySecondary(table_, "customer_id", 9, cost).size(),
        1u);
}

TEST_F(DatabaseTest, ScanWherePredicates)
{
    const TxnId txn = db_.begin();
    for (std::int64_t i = 0; i < 50; ++i)
        db_.insert(txn, table_, order(i, i % 5));
    db_.commit(txn);
    DbCost cost;
    const auto rows = db_.scanWhere(table_, 1, 3, cost);
    EXPECT_EQ(rows.size(), 10u);
    EXPECT_GT(cost.pages_hit + cost.pages_read, 0u);
}

TEST_F(DatabaseTest, BufferPoolHitsOnRepeatedAccess)
{
    const TxnId txn = db_.begin();
    db_.insert(txn, table_, order(1, 1));
    db_.commit(txn);
    DbCost first, second;
    db_.pointSelect(table_, 1, first);
    db_.pointSelect(table_, 1, second);
    EXPECT_EQ(second.pages_read, 0u);
    EXPECT_GT(second.pages_hit, 0u);
}

TEST_F(DatabaseTest, TableIdLookup)
{
    EXPECT_EQ(db_.tableId("orders"), 0u);
    EXPECT_FALSE(db_.tableId("missing").has_value());
}

TEST_F(DatabaseTest, CostsAccumulateAcrossOps)
{
    DbCost total;
    const TxnId txn = db_.begin();
    total.add(db_.insert(txn, table_, order(1, 1)));
    total.add(db_.insert(txn, table_, order(2, 2)));
    total.add(db_.commit(txn));
    EXPECT_EQ(total.rows, 2u);
    EXPECT_GT(total.cpu_us, 0.0);
    EXPECT_GT(total.log_bytes_forced, 0u);
}

} // namespace
} // namespace jasim
