#include <gtest/gtest.h>

#include "db/index.h"

namespace jasim {
namespace {

TEST(UniqueIndexTest, InsertFindErase)
{
    UniqueIndex index;
    EXPECT_TRUE(index.insert(5, RowId{1, 2}));
    const auto found = index.find(5);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->page, 1u);
    EXPECT_EQ(found->slot, 2u);
    EXPECT_TRUE(index.erase(5));
    EXPECT_FALSE(index.find(5).has_value());
    EXPECT_FALSE(index.erase(5));
}

TEST(UniqueIndexTest, DuplicateRejected)
{
    UniqueIndex index;
    EXPECT_TRUE(index.insert(1, RowId{0, 0}));
    EXPECT_FALSE(index.insert(1, RowId{0, 1}));
    EXPECT_EQ(index.size(), 1u);
}

TEST(MultiIndexTest, MultipleRowsPerKey)
{
    MultiIndex index;
    index.insert(7, RowId{0, 0});
    index.insert(7, RowId{0, 1});
    index.insert(8, RowId{1, 0});
    EXPECT_EQ(index.find(7).size(), 2u);
    EXPECT_EQ(index.find(8).size(), 1u);
    EXPECT_TRUE(index.find(9).empty());
    EXPECT_EQ(index.size(), 3u);
}

TEST(MultiIndexTest, EraseSpecificPairing)
{
    MultiIndex index;
    index.insert(7, RowId{0, 0});
    index.insert(7, RowId{0, 1});
    EXPECT_TRUE(index.erase(7, RowId{0, 0}));
    EXPECT_FALSE(index.erase(7, RowId{0, 0}));
    ASSERT_EQ(index.find(7).size(), 1u);
    EXPECT_EQ(index.find(7)[0].slot, 1u);
}

TEST(MultiIndexTest, KeyRemovedWhenEmpty)
{
    MultiIndex index;
    index.insert(7, RowId{0, 0});
    index.erase(7, RowId{0, 0});
    EXPECT_TRUE(index.find(7).empty());
    EXPECT_EQ(index.size(), 0u);
}

} // namespace
} // namespace jasim
