#include <gtest/gtest.h>

#include "db/table.h"

namespace jasim {
namespace {

Schema
customerSchema()
{
    return Schema{"customer",
                  {{"id", ColumnType::Integer},
                   {"name", ColumnType::Text}}};
}

TEST(TableTest, InsertAndFetch)
{
    Table table(customerSchema(), 4);
    const RowId id = table.insert({std::int64_t(1), std::string("a")});
    const auto row = table.fetch(id);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(std::get<std::int64_t>((*row)[0]), 1);
    EXPECT_EQ(std::get<std::string>((*row)[1]), "a");
}

TEST(TableTest, RowsPackIntoPages)
{
    Table table(customerSchema(), 4);
    for (std::int64_t i = 0; i < 10; ++i)
        table.insert({i, std::string("x")});
    EXPECT_EQ(table.pageCount(), 3u); // 4+4+2
    EXPECT_EQ(table.rowCount(), 10u);
}

TEST(TableTest, UpdateInPlace)
{
    Table table(customerSchema(), 4);
    const RowId id = table.insert({std::int64_t(1), std::string("a")});
    EXPECT_TRUE(table.update(id, {std::int64_t(1), std::string("b")}));
    EXPECT_EQ(std::get<std::string>((*table.fetch(id))[1]), "b");
}

TEST(TableTest, EraseTombstones)
{
    Table table(customerSchema(), 4);
    const RowId id = table.insert({std::int64_t(1), std::string("a")});
    EXPECT_TRUE(table.erase(id));
    EXPECT_FALSE(table.fetch(id).has_value());
    EXPECT_FALSE(table.erase(id));
    EXPECT_FALSE(table.update(id, {std::int64_t(1), std::string("b")}));
    EXPECT_EQ(table.rowCount(), 0u);
}

TEST(TableTest, InvalidRowIdSafe)
{
    Table table(customerSchema(), 4);
    EXPECT_FALSE(table.fetch(RowId{99, 0}).has_value());
    EXPECT_FALSE(table.erase(RowId{0, 7}));
}

TEST(TableTest, ScanVisitsLiveRowsInOrder)
{
    Table table(customerSchema(), 4);
    std::vector<RowId> ids;
    for (std::int64_t i = 0; i < 9; ++i)
        ids.push_back(table.insert({i, std::string("x")}));
    table.erase(ids[4]);
    std::vector<std::int64_t> seen;
    table.scan([&](RowId, const Row &row) {
        seen.push_back(std::get<std::int64_t>(row[0]));
        return true;
    });
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(seen.front(), 0);
    EXPECT_EQ(seen.back(), 8);
}

TEST(TableTest, ScanEarlyStop)
{
    Table table(customerSchema(), 4);
    for (std::int64_t i = 0; i < 9; ++i)
        table.insert({i, std::string("x")});
    int visits = 0;
    table.scan([&](RowId, const Row &) { return ++visits < 3; });
    EXPECT_EQ(visits, 3);
}

TEST(SchemaTest, ColumnIndexLookup)
{
    const Schema schema = customerSchema();
    EXPECT_EQ(schema.columnIndex("name"), 1u);
    EXPECT_FALSE(schema.columnIndex("missing").has_value());
}

} // namespace
} // namespace jasim
