#include <gtest/gtest.h>

#include "cpu/lock_model.h"

namespace jasim {
namespace {

TEST(LockModelTest, LarxCounted)
{
    LockModel model(LockConfig{}, 1);
    model.noteLarx();
    model.noteLarx();
    EXPECT_EQ(model.larxCount(), 2u);
}

TEST(LockModelTest, UncontendedStcxFreeAndSuccessful)
{
    LockConfig config;
    config.stcx_fail_probability = 0.0;
    LockModel model(config, 2);
    for (int i = 0; i < 100; ++i) {
        const auto o = model.resolveStcx();
        EXPECT_TRUE(o.success);
        EXPECT_EQ(o.retries, 0u);
        EXPECT_DOUBLE_EQ(o.stall_cycles, 0.0);
    }
}

TEST(LockModelTest, ContentionMatchesProbability)
{
    LockConfig config;
    config.stcx_fail_probability = 0.2;
    config.kernel_sleep_probability = 0.0;
    LockModel model(config, 3);
    std::uint64_t retries = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        retries += model.resolveStcx().retries;
    // Expected retries per acquisition ~ p / (1 - p) = 0.25.
    EXPECT_NEAR(retries / double(n), 0.25, 0.02);
}

TEST(LockModelTest, RetriesCostSpinCycles)
{
    LockConfig config;
    config.stcx_fail_probability = 0.9;
    config.kernel_sleep_probability = 0.0;
    LockModel model(config, 4);
    double total = 0.0;
    for (int i = 0; i < 100; ++i)
        total += model.resolveStcx().stall_cycles;
    EXPECT_GT(total, 100 * config.spin_cost);
}

TEST(LockModelTest, KernelSleepsRareAndExpensive)
{
    LockConfig config; // defaults: mostly uncontended
    LockModel model(config, 5);
    int sleeps = 0;
    double max_stall = 0.0;
    for (int i = 0; i < 200000; ++i) {
        const auto o = model.resolveStcx();
        if (o.kernel_sleep) {
            ++sleeps;
            max_stall = std::max(max_stall, o.stall_cycles);
        }
    }
    EXPECT_GT(sleeps, 0);
    EXPECT_LT(sleeps, 2000); // ~0.2% of acquisitions
    EXPECT_GE(max_stall, config.kernel_sleep_cost);
}

TEST(LockModelTest, SpinBounded)
{
    LockConfig config;
    config.stcx_fail_probability = 0.999;
    config.kernel_sleep_probability = 0.0;
    LockModel model(config, 6);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(model.resolveStcx().retries, 16u);
}

} // namespace
} // namespace jasim
