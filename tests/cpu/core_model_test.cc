#include <gtest/gtest.h>

#include "cpu/core_model.h"

namespace jasim {
namespace {

class CoreModelTest : public ::testing::Test
{
  protected:
    CoreModelTest()
    {
        space_.addRegion("code", 0x10000000, 16 * 1024 * 1024,
                         smallPageBytes);
        space_.addRegion("heap", 0x40000000, 256ull * 1024 * 1024,
                         largePageBytes);
        HierarchyConfig hc;
        hc.prefetch_enabled = false;
        mem_ = std::make_unique<MemoryHierarchy>(hc);
        core_ = std::make_unique<CoreModel>(0, CoreConfig{}, *mem_,
                                            space_, 7);
    }

    Instr alu(Addr pc)
    {
        Instr i;
        i.kind = InstKind::Alu;
        i.pc = pc;
        return i;
    }

    Instr load(Addr pc, Addr ea)
    {
        Instr i;
        i.kind = InstKind::Load;
        i.pc = pc;
        i.ea = ea;
        return i;
    }

    AddressSpace space_;
    std::unique_ptr<MemoryHierarchy> mem_;
    std::unique_ptr<CoreModel> core_;
};

TEST_F(CoreModelTest, EveryInstructionCompletes)
{
    ExecStats stats;
    for (int i = 0; i < 100; ++i)
        core_->execute(alu(0x10000000 + 4 * i), stats);
    EXPECT_EQ(stats.completed, 100u);
    EXPECT_GT(stats.cycles, 0.0);
}

TEST_F(CoreModelTest, SpeculationRateAtLeastBaseFactor)
{
    ExecStats stats;
    for (int i = 0; i < 1000; ++i)
        core_->execute(alu(0x10000000 + 4 * (i % 64)), stats);
    EXPECT_GE(stats.speculationRate(),
              CoreConfig{}.base_dispatch_factor - 1e-9);
}

TEST_F(CoreModelTest, LoadsCounted)
{
    ExecStats stats;
    core_->execute(load(0x10000000, 0x40000000), stats);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.l1d_load_miss, 1u); // cold
    core_->execute(load(0x10000004, 0x40000000), stats);
    EXPECT_EQ(stats.l1d_load_miss, 1u); // warm
}

TEST_F(CoreModelTest, LoadMissSourceRecorded)
{
    ExecStats stats;
    core_->execute(load(0x10000000, 0x40000000), stats);
    EXPECT_EQ(stats.loads_from[static_cast<std::size_t>(
                  DataSource::Memory)],
              1u);
}

TEST_F(CoreModelTest, DeratAndTlbCounted)
{
    ExecStats stats;
    core_->execute(load(0x10000000, 0x40000000), stats);
    EXPECT_EQ(stats.derat_miss, 1u);
    EXPECT_EQ(stats.dtlb_miss, 1u);
    // Same large page, new granule: DERAT miss but TLB hit.
    core_->execute(load(0x10000004, 0x40001000), stats);
    EXPECT_EQ(stats.derat_miss, 2u);
    EXPECT_EQ(stats.dtlb_miss, 1u);
}

TEST_F(CoreModelTest, BranchStatsAccumulate)
{
    ExecStats stats;
    Instr b;
    b.kind = InstKind::BranchCond;
    b.pc = 0x10000000;
    b.target = 0x10000100;
    b.taken = true;
    for (int i = 0; i < 50; ++i)
        core_->execute(b, stats);
    EXPECT_EQ(stats.cond_branches, 50u);
    EXPECT_LT(stats.cond_mispredict, 5u); // trains quickly
}

TEST_F(CoreModelTest, SyncAccountsSrqOccupancy)
{
    ExecStats stats;
    Instr s;
    s.kind = InstKind::Sync;
    s.pc = 0x10000000;
    core_->execute(s, stats);
    EXPECT_EQ(stats.syncs, 1u);
    EXPECT_GT(stats.srq_sync_cycles, 0.0);
}

TEST_F(CoreModelTest, LarxStcxCounted)
{
    ExecStats stats;
    Instr larx;
    larx.kind = InstKind::Larx;
    larx.pc = 0x10000000;
    larx.ea = 0x40000000;
    core_->execute(larx, stats);
    Instr stcx;
    stcx.kind = InstKind::Stcx;
    stcx.pc = 0x10000004;
    stcx.ea = 0x40000000;
    core_->execute(stcx, stats);
    EXPECT_EQ(stats.larx, 1u);
    EXPECT_EQ(stats.stcx, 1u);
    EXPECT_EQ(stats.stores, 1u); // stcx is a store reference
    EXPECT_EQ(stats.loads, 1u);  // larx is a load reference
}

TEST_F(CoreModelTest, MergeAddsFields)
{
    ExecStats a, b;
    core_->execute(load(0x10000000, 0x40000000), a);
    core_->execute(load(0x10000004, 0x50000000), b);
    const auto loads_a = a.loads;
    a.merge(b);
    EXPECT_EQ(a.loads, loads_a + b.loads);
    EXPECT_EQ(a.completed, 2u);
}

TEST_F(CoreModelTest, ExportProducesCanonicalCounters)
{
    ExecStats stats;
    core_->execute(load(0x10000000, 0x40000000), stats);
    CounterSet set;
    stats.exportTo(set);
    EXPECT_EQ(set.value("PM_LD_REF_L1"), 1u);
    EXPECT_EQ(set.value("PM_INST_CMPL"), 1u);
    EXPECT_GT(set.value("PM_CYC"), 0u);
}

TEST_F(CoreModelTest, ExportScalesCounts)
{
    ExecStats stats;
    core_->execute(load(0x10000000, 0x40000000), stats);
    CounterSet set;
    stats.exportTo(set, 1000.0);
    EXPECT_EQ(set.value("PM_LD_REF_L1"), 1000u);
}

} // namespace
} // namespace jasim
