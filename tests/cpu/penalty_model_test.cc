#include <gtest/gtest.h>

#include "cpu/penalty_model.h"

namespace jasim {
namespace {

MemAccessOutcome
missFrom(DataSource source, Cycles latency)
{
    MemAccessOutcome o;
    o.l1_hit = false;
    o.source = source;
    o.latency = latency;
    return o;
}

TEST(PenaltyModelTest, L1HitsAreFree)
{
    PenaltyModel model{PenaltyConfig{}};
    MemAccessOutcome hit;
    hit.l1_hit = true;
    EXPECT_DOUBLE_EQ(model.loadStall(hit, false), 0.0);
    EXPECT_DOUBLE_EQ(model.storeStall(hit), 0.0);
    EXPECT_DOUBLE_EQ(model.fetchStall(hit), 0.0);
}

TEST(PenaltyModelTest, L2MissesMostlyHidden)
{
    PenaltyConfig config;
    PenaltyModel model(config);
    const double stall =
        model.loadStall(missFrom(DataSource::L2, 12), false);
    EXPECT_NEAR(stall, 12.0 * config.load_l2_visible, 1e-12);
    EXPECT_LT(stall, 12.0);
}

TEST(PenaltyModelTest, DeeperSourcesCostMore)
{
    PenaltyModel model{PenaltyConfig{}};
    const double l2 = model.loadStall(missFrom(DataSource::L2, 12), false);
    const double l3 =
        model.loadStall(missFrom(DataSource::L3, 100), false);
    const double mem =
        model.loadStall(missFrom(DataSource::Memory, 350), false);
    EXPECT_LT(l2, l3);
    EXPECT_LT(l3, mem);
}

TEST(PenaltyModelTest, BurstsAmplifyLoadStalls)
{
    PenaltyConfig config;
    PenaltyModel model(config);
    const auto miss = missFrom(DataSource::L3, 100);
    EXPECT_NEAR(model.loadStall(miss, true),
                model.loadStall(miss, false) * config.burst_multiplier,
                1e-9);
}

TEST(PenaltyModelTest, StoresNearlyFree)
{
    PenaltyModel model{PenaltyConfig{}};
    const double store =
        model.storeStall(missFrom(DataSource::Memory, 350));
    const double load =
        model.loadStall(missFrom(DataSource::Memory, 350), false);
    EXPECT_LT(store, load / 5.0);
}

TEST(PenaltyModelTest, FetchStallsAreVisible)
{
    PenaltyConfig config;
    PenaltyModel model(config);
    const double fetch = model.fetchStall(missFrom(DataSource::L2, 12));
    EXPECT_NEAR(fetch, 12.0 * config.ifetch_visible, 1e-12);
}

TEST(PenaltyModelTest, XlatScaled)
{
    PenaltyConfig config;
    PenaltyModel model(config);
    EXPECT_NEAR(model.xlatStall(14), 14.0 * config.xlat_visible, 1e-12);
}

} // namespace
} // namespace jasim
