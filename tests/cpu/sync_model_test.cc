#include <gtest/gtest.h>

#include "cpu/sync_model.h"

namespace jasim {
namespace {

TEST(SyncModelTest, StoresAccumulateUntilDrained)
{
    SyncModel model{SyncConfig{}};
    for (int i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(model.noteStore(), 0.0);
    EXPECT_EQ(model.outstandingStores(), 5u);
}

TEST(SyncModelTest, FullSrqStallsStores)
{
    SyncConfig config;
    config.srq_entries = 4;
    SyncModel model(config);
    for (int i = 0; i < 4; ++i)
        model.noteStore();
    EXPECT_GT(model.noteStore(), 0.0);
}

TEST(SyncModelTest, DrainTickReducesOccupancy)
{
    SyncModel model{SyncConfig{}};
    for (int i = 0; i < 8; ++i)
        model.noteStore();
    for (int i = 0; i < 16; ++i)
        model.drainTick();
    EXPECT_EQ(model.outstandingStores(), 0u);
}

TEST(SyncModelTest, SyncCostGrowsWithOutstandingStores)
{
    SyncConfig config;
    SyncModel empty(config);
    const auto cheap = empty.issueSync(InstKind::Sync);

    SyncModel full(config);
    for (int i = 0; i < 20; ++i)
        full.noteStore();
    const auto costly = full.issueSync(InstKind::Sync);

    EXPECT_GT(costly.stall_cycles, cheap.stall_cycles);
    EXPECT_EQ(full.outstandingStores(), 0u); // sync drains the SRQ
}

TEST(SyncModelTest, SyncOccupiesSrq)
{
    SyncModel model{SyncConfig{}};
    const auto outcome = model.issueSync(InstKind::Sync);
    EXPECT_GT(outcome.srq_occupancy_cycles, 0.0);
}

TEST(SyncModelTest, LwsyncCheaperThanSync)
{
    SyncConfig config;
    SyncModel a(config), b(config);
    for (int i = 0; i < 10; ++i) {
        a.noteStore();
        b.noteStore();
    }
    EXPECT_LT(b.issueSync(InstKind::Lwsync).stall_cycles,
              a.issueSync(InstKind::Sync).stall_cycles);
}

TEST(SyncModelTest, IsyncSkipsSrq)
{
    SyncModel model{SyncConfig{}};
    const auto outcome = model.issueSync(InstKind::Isync);
    EXPECT_DOUBLE_EQ(outcome.srq_occupancy_cycles, 0.0);
    EXPECT_GT(outcome.stall_cycles, 0.0);
}

} // namespace
} // namespace jasim
