#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

SutConfig
lightNode(double per_node_ir)
{
    SutConfig config;
    config.injection_rate = per_node_ir;
    config.driver.ramp_up_s = 1.0;
    return config;
}

/** Cluster whose fabric, pool and balancer add no cost at all. */
ClusterConfig
zeroCostCluster(std::size_t nodes, double per_node_ir)
{
    ClusterConfig config;
    config.nodes = nodes;
    config.node = lightNode(per_node_ir);
    config.fabric = FabricConfig::zeroCost();
    config.db_pool.max_connections = 64;
    config.db_pool.connect_us = 0.0;
    config.lb.forward_us = 0.0;
    return config;
}

/** A burst train that pushes a light cluster well past saturation. */
ClusterConfig
burstyCluster(const char *admission)
{
    ClusterConfig config = zeroCostCluster(2, 40.0);
    config.node.driver.arrival =
        ArrivalSpec::parse("mmpp:burst=8,on=4,off=4");
    config.node.admission = adm::AdmissionConfig::parse(admission);
    return config;
}

TEST(ClusterOverloadTest, DefaultRunBuildsNoController)
{
    Shared shared;
    ClusterUnderTest cluster(zeroCostCluster(2, 5.0), shared.profiles,
                             shared.registry, 7);
    EXPECT_FALSE(cluster.admissionEnabled());
    EXPECT_EQ(cluster.node(0).admission(), nullptr);
    EXPECT_EQ(cluster.node(1).admission(), nullptr);
    EXPECT_EQ(cluster.loadBalancer().inFlightCap(), 0u);
    cluster.start(secs(20));
    cluster.advanceTo(secs(30));
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    EXPECT_EQ(cluster.tracker().shedCount(), 0u);
    EXPECT_EQ(cluster.node(0).webContainer().rejectedCount(), 0u);
}

TEST(ClusterOverloadTest, AdaptiveShedsAndBoundsTailUnderBurst)
{
    Shared shared;
    ClusterUnderTest none(burstyCluster(""), shared.profiles,
                          shared.registry, 13);
    ClusterUnderTest adaptive(
        burstyCluster("adaptive:cap=32,min=2,target=0.05,"
                      "interval=0.25,queue=64,deadline=0.3"),
        shared.profiles, shared.registry, 13);
    for (ClusterUnderTest *cluster : {&none, &adaptive}) {
        cluster->start(secs(25));
        cluster->advanceTo(secs(30));
    }

    // The unprotected run queues without bound and sheds nothing.
    EXPECT_EQ(none.tracker().shedCount(), 0u);
    // The protected run converts the overload into explicit sheds...
    EXPECT_TRUE(adaptive.admissionEnabled());
    const std::uint64_t rejected =
        adaptive.tracker().errorCount(ErrorKind::Rejected);
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(adaptive.tracker().shedCount(), rejected);
    EXPECT_EQ(adaptive.node(0).webContainer().rejectedCount() +
                  adaptive.node(1).webContainer().rejectedCount(),
              rejected);
    // ...and keeps the served tail far below the collapsed one.
    const double p99_none =
        none.tracker().p99ResponseSeconds(RequestType::Browse);
    const double p99_adaptive =
        adaptive.tracker().p99ResponseSeconds(RequestType::Browse);
    EXPECT_LT(p99_adaptive, 0.5 * p99_none);

    // Controller stats line up with what the tracker saw.
    std::uint64_t shed_stats = 0;
    for (std::size_t n = 0; n < 2; ++n) {
        const adm::AdmissionController *adm =
            adaptive.node(n).admission();
        ASSERT_NE(adm, nullptr);
        shed_stats += adm->stats().shed();
        EXPECT_GT(adm->stats().cap_cuts, 0u);
    }
    EXPECT_EQ(shed_stats, rejected);
}

TEST(ClusterOverloadTest, LbCapShedsAtTheBalancer)
{
    Shared shared;
    ClusterUnderTest cluster(burstyCluster("none:lb_cap=24"),
                             shared.profiles, shared.registry, 13);
    EXPECT_TRUE(cluster.admissionEnabled());
    EXPECT_EQ(cluster.node(0).admission(), nullptr);
    EXPECT_EQ(cluster.loadBalancer().inFlightCap(), 24u);
    cluster.start(secs(25));
    cluster.advanceTo(secs(30));

    const std::uint64_t shed_lb =
        cluster.tracker().errorCount(ErrorKind::ShedAtLB);
    EXPECT_GT(shed_lb, 0u);
    EXPECT_EQ(cluster.loadBalancer().sheds(), shed_lb);
    // Fast-reject: a shed request never reaches a node's web tier.
    EXPECT_EQ(cluster.node(0).webContainer().rejectedCount(), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
}

// Satellite: bounded pool acquire under shedding must not leak
// connections — after the burst drains, every pool is fully idle.
TEST(ClusterOverloadTest, PoolOccupancyReturnsToZeroAfterBurst)
{
    Shared shared;
    ClusterConfig config = burstyCluster(
        "static:cap=24,queue=48,deadline=0.25,lb_cap=64");
    config.db_pool.max_connections = 8; // force acquire waits
    config.resilience.pool_acquire_timeout_s = 0.2;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 29);
    cluster.start(secs(20));
    cluster.advanceTo(secs(40)); // long drain past the last arrival

    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    EXPECT_GT(cluster.tracker().shedCount(), 0u);
    for (std::size_t n = 0; n < config.nodes; ++n) {
        const ConnectionPool &pool = cluster.dbPool(n);
        EXPECT_EQ(pool.open(), pool.idle())
            << "node " << n << " leaked connections";
        EXPECT_EQ(pool.waiting(), 0u) << "node " << n;
        // Admission slots drained too: nothing still in service.
        const adm::AdmissionController *adm =
            cluster.node(n).admission();
        ASSERT_NE(adm, nullptr);
        EXPECT_EQ(adm->inService(), 0u) << "node " << n;
        EXPECT_EQ(adm->queueDepth(), 0u) << "node " << n;
    }
    EXPECT_EQ(cluster.loadBalancer().totalInFlight(), 0u);
}

TEST(ClusterOverloadTest, OverloadRunsAreDeterministicUnderPinnedSeed)
{
    Shared shared;
    const ClusterConfig config = burstyCluster(
        "adaptive:cap=32,min=2,target=0.05,interval=0.25,"
        "queue=64,deadline=0.3,lb_cap=96");

    ClusterUnderTest a(config, shared.profiles, shared.registry, 21);
    ClusterUnderTest b(config, shared.profiles, shared.registry, 21);
    a.start(secs(25));
    b.start(secs(25));
    a.advanceTo(secs(30));
    b.advanceTo(secs(30));

    EXPECT_GT(a.tracker().totalCompleted(), 100u);
    EXPECT_GT(a.tracker().shedCount(), 0u);
    EXPECT_EQ(a.tracker().totalCompleted(),
              b.tracker().totalCompleted());
    EXPECT_EQ(a.tracker().errorCount(), b.tracker().errorCount());
    EXPECT_EQ(a.tracker().shedCount(), b.tracker().shedCount());
    EXPECT_EQ(a.queue().executed(), b.queue().executed());
    EXPECT_DOUBLE_EQ(a.jops(secs(2), secs(25)),
                     b.jops(secs(2), secs(25)));
}

} // namespace
} // namespace jasim
