#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "adm/admission.h"
#include "sim/event_queue.h"

namespace jasim::adm {
namespace {

// ---- grammar ---------------------------------------------------------

TEST(AdmissionConfigTest, EmptyAndNoneStayDisabled)
{
    EXPECT_EQ(AdmissionConfig::parse("").policy, ShedPolicy::None);
    EXPECT_FALSE(AdmissionConfig::parse("").enabled());
    EXPECT_EQ(AdmissionConfig::parse("none").policy, ShedPolicy::None);
    EXPECT_FALSE(AdmissionConfig::parse("none").webEnabled());
}

TEST(AdmissionConfigTest, NoneWithLbCapArmsBalancerOnly)
{
    const AdmissionConfig config =
        AdmissionConfig::parse("none:lb_cap=32");
    EXPECT_FALSE(config.webEnabled());
    EXPECT_TRUE(config.enabled());
    EXPECT_EQ(config.lb_inflight_cap, 32u);
}

TEST(AdmissionConfigTest, StaticParsesKeys)
{
    const AdmissionConfig config =
        AdmissionConfig::parse("static:cap=12,queue=9,deadline=0.25");
    EXPECT_EQ(config.policy, ShedPolicy::Static);
    EXPECT_EQ(config.max_concurrent, 12u);
    EXPECT_EQ(config.queue_capacity, 9u);
    EXPECT_DOUBLE_EQ(config.queue_deadline_s, 0.25);
}

TEST(AdmissionConfigTest, AdaptiveParsesControllerKeys)
{
    const AdmissionConfig config = AdmissionConfig::parse(
        "adaptive:cap=64,min=2,target=0.05,interval=0.2,lb_cap=99");
    EXPECT_EQ(config.policy, ShedPolicy::Adaptive);
    EXPECT_EQ(config.max_concurrent, 64u);
    EXPECT_EQ(config.min_concurrent, 2u);
    EXPECT_DOUBLE_EQ(config.target_delay_s, 0.05);
    EXPECT_DOUBLE_EQ(config.adjust_interval_s, 0.2);
    EXPECT_EQ(config.lb_inflight_cap, 99u);
}

TEST(AdmissionConfigTest, MalformedSpecsThrow)
{
    EXPECT_THROW(AdmissionConfig::parse("bogus"),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionConfig::parse("static:cap=x"),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionConfig::parse("static:target=0.1"),
                 std::invalid_argument); // adaptive-only key
    EXPECT_THROW(AdmissionConfig::parse("adaptive:interval=0"),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionConfig::parse("adaptive:min=0"),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionConfig::parse("none:cap=4"),
                 std::invalid_argument); // web key without a policy
}

// ---- controller fixture ---------------------------------------------

/** Records every callback so tests can assert exactly-once firing. */
struct Probe
{
    std::vector<SimTime> admits;
    std::vector<ShedReason> sheds;

    AdmissionController::Admit admit()
    {
        return [this](SimTime at) { admits.push_back(at); };
    }
    AdmissionController::Shed shed()
    {
        return [this](SimTime, ShedReason reason) {
            sheds.push_back(reason);
        };
    }
};

AdmissionConfig
staticConfig(std::size_t cap, std::size_t queue, double deadline_s)
{
    AdmissionConfig config;
    config.policy = ShedPolicy::Static;
    config.max_concurrent = cap;
    config.queue_capacity = queue;
    config.queue_deadline_s = deadline_s;
    return config;
}

TEST(AdmissionControllerTest, AdmitsUpToCapThenQueuesThenSheds)
{
    EventQueue queue;
    AdmissionController adm(staticConfig(2, 1, 0.0), queue);
    Probe probe;
    for (int i = 0; i < 4; ++i)
        adm.offer(probe.admit(), probe.shed());

    // 2 in service, 1 queued, 1 shed QueueFull.
    EXPECT_EQ(probe.admits.size(), 2u);
    EXPECT_EQ(adm.inService(), 2u);
    EXPECT_EQ(adm.queueDepth(), 1u);
    ASSERT_EQ(probe.sheds.size(), 1u);
    EXPECT_EQ(probe.sheds[0], ShedReason::QueueFull);
    EXPECT_EQ(adm.stats().offered, 4u);
    EXPECT_EQ(adm.stats().admitted, 2u);
    EXPECT_EQ(adm.stats().shed_queue_full, 1u);
    EXPECT_EQ(adm.stats().peak_in_service, 2u);
    EXPECT_EQ(adm.stats().peak_queue, 1u);
}

TEST(AdmissionControllerTest, ReleaseAdmitsWaitersInFifoOrder)
{
    EventQueue queue;
    AdmissionController adm(staticConfig(1, 4, 0.0), queue);
    Probe probe;
    std::vector<int> order;
    adm.offer(probe.admit(), probe.shed());
    for (int i = 0; i < 3; ++i)
        adm.offer([&order, i](SimTime) { order.push_back(i); },
                  probe.shed());
    EXPECT_EQ(adm.queueDepth(), 3u);

    adm.release();
    adm.release();
    adm.release();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(adm.queueDepth(), 0u);
    EXPECT_EQ(adm.inService(), 1u); // third waiter still running
    EXPECT_TRUE(probe.sheds.empty());
    EXPECT_EQ(adm.stats().queued, 3u);
}

TEST(AdmissionControllerTest, DeadlineShedsExactlyOnce)
{
    EventQueue queue;
    AdmissionController adm(staticConfig(1, 4, 0.1), queue);
    Probe probe;
    adm.offer(probe.admit(), probe.shed()); // occupies the slot
    adm.offer(probe.admit(), probe.shed()); // waits past the deadline
    queue.runUntil(secs(1));

    EXPECT_EQ(probe.admits.size(), 1u);
    ASSERT_EQ(probe.sheds.size(), 1u);
    EXPECT_EQ(probe.sheds[0], ShedReason::QueueDeadline);
    EXPECT_EQ(adm.queueDepth(), 0u);
    EXPECT_EQ(adm.stats().shed_deadline, 1u);

    // Releasing later must not resurrect the shed waiter.
    adm.release();
    queue.runUntil(secs(2));
    EXPECT_EQ(probe.admits.size(), 1u);
    EXPECT_EQ(probe.sheds.size(), 1u);
}

TEST(AdmissionControllerTest, DeadlineEventIsNoOpOnceAdmitted)
{
    EventQueue queue;
    AdmissionController adm(staticConfig(1, 4, 0.5), queue);
    Probe probe;
    adm.offer(probe.admit(), probe.shed());
    adm.offer(probe.admit(), probe.shed());
    // Free the slot well before the waiter's deadline...
    queue.scheduleAt(secs(1) / 10, [&] { adm.release(); });
    // ...then run past the (now stale) deadline event.
    queue.runUntil(secs(2));
    EXPECT_EQ(probe.admits.size(), 2u);
    EXPECT_TRUE(probe.sheds.empty());
    EXPECT_GT(adm.stats().queue_wait_us, 0u);
}

AdmissionConfig
adaptiveConfig()
{
    AdmissionConfig config;
    config.policy = ShedPolicy::Adaptive;
    config.max_concurrent = 8;
    config.min_concurrent = 2;
    config.queue_capacity = 64;
    config.queue_deadline_s = 0.0;
    config.target_delay_s = 0.05;
    config.adjust_interval_s = 0.1;
    return config;
}

TEST(AdmissionControllerTest, AdaptiveCutsCapUnderStandingQueue)
{
    EventQueue queue;
    AdmissionController adm(adaptiveConfig(), queue);
    Probe probe;
    // Saturate the cap and build a standing queue no one drains.
    for (int i = 0; i < 20; ++i)
        adm.offer(probe.admit(), probe.shed());
    EXPECT_EQ(adm.cap(), 8u);
    queue.runUntil(secs(2));
    EXPECT_EQ(adm.cap(), adm.config().min_concurrent);
    EXPECT_GT(adm.stats().cap_cuts, 0u);
}

TEST(AdmissionControllerTest, AdaptiveRecoversCapWhenIdle)
{
    EventQueue queue;
    AdmissionController adm(adaptiveConfig(), queue);
    Probe probe;
    for (int i = 0; i < 20; ++i)
        adm.offer(probe.admit(), probe.shed());
    queue.runUntil(secs(2));
    ASSERT_EQ(adm.cap(), adm.config().min_concurrent);

    // Drain everything (each release may admit the next waiter);
    // with an empty queue the observed delay is zero, so the
    // controller must walk the cap back up additively.
    while (adm.inService() > 0)
        adm.release();
    EXPECT_EQ(adm.queueDepth(), 0u);
    queue.runUntil(secs(6));
    EXPECT_EQ(adm.cap(), 8u);
    EXPECT_GT(adm.stats().cap_raises, 0u);
}

} // namespace
} // namespace jasim::adm
