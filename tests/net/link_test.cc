#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"

namespace jasim {
namespace {

TEST(LinkTest, ZeroCostLinkIsFree)
{
    NetworkLink link(LinkConfig::zeroCost(), 1);
    EXPECT_EQ(link.deliver(0, 4096), 0u);
    EXPECT_EQ(link.deliver(1000, 1 << 20), 1000u);
    EXPECT_EQ(link.stats().messages, 2u);
    EXPECT_EQ(link.stats().tx_busy_us, 0u);
}

TEST(LinkTest, LatencyAndSerializationAdd)
{
    LinkConfig config;
    config.latency_us = 100.0;
    config.bytes_per_us = 125.0; // 1 Gb/s
    config.jitter_sigma = 0.0;
    NetworkLink link(config, 1);
    // 12500 bytes = 100 us on the wire + 100 us propagation.
    EXPECT_EQ(link.deliver(0, 12500), 200u);
}

TEST(LinkTest, BackToBackMessagesQueueFifo)
{
    LinkConfig config;
    config.latency_us = 10.0;
    config.bytes_per_us = 100.0;
    NetworkLink link(config, 1);
    const SimTime first = link.deliver(0, 1000);  // tx 10us
    const SimTime second = link.deliver(0, 1000); // queues behind
    EXPECT_EQ(first, 20u);
    EXPECT_EQ(second, 30u);
    EXPECT_EQ(link.stats().tx_queued_us, 10u);
}

TEST(LinkTest, DirectionsDoNotContend)
{
    LinkConfig config;
    config.latency_us = 10.0;
    config.bytes_per_us = 100.0;
    NetworkLink link(config, 1);
    const SimTime fwd = link.deliver(0, 1000);
    const SimTime rev =
        link.deliver(0, 1000, NetworkLink::Direction::Reverse);
    EXPECT_EQ(fwd, rev); // full duplex: no shared serializer
}

TEST(LinkTest, JitterIsDeterministicUnderPinnedSeed)
{
    LinkConfig config;
    config.latency_us = 200.0;
    config.jitter_sigma = 0.25;
    config.bytes_per_us = 0.0; // infinite bandwidth

    std::vector<SimTime> a, b;
    NetworkLink first(config, 42), second(config, 42);
    for (int i = 0; i < 64; ++i) {
        a.push_back(first.deliver(0, 100));
        b.push_back(second.deliver(0, 100));
    }
    EXPECT_EQ(a, b);

    // A different seed jitters differently somewhere in the stream.
    NetworkLink other(config, 43);
    bool any_differ = false;
    for (int i = 0; i < 64; ++i)
        any_differ |= other.deliver(0, 100) != a[i];
    EXPECT_TRUE(any_differ);
}

TEST(LinkTest, JitterStaysCenteredOnConfiguredLatency)
{
    LinkConfig config;
    config.latency_us = 200.0;
    config.jitter_sigma = 0.2;
    config.bytes_per_us = 0.0;
    NetworkLink link(config, 7);
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(link.deliver(0, 1));
    // Mean-1 multiplier: the sample mean sits near 200 us.
    EXPECT_NEAR(sum / n, 200.0, 10.0);
}

} // namespace
} // namespace jasim
