#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"

namespace jasim {
namespace {

TEST(LinkTest, ZeroCostLinkIsFree)
{
    NetworkLink link(LinkConfig::zeroCost(), 1);
    EXPECT_EQ(link.deliver(0, 4096), 0u);
    EXPECT_EQ(link.deliver(1000, 1 << 20), 1000u);
    EXPECT_EQ(link.stats().messages, 2u);
    EXPECT_EQ(link.stats().tx_busy_us, 0u);
}

TEST(LinkTest, LatencyAndSerializationAdd)
{
    LinkConfig config;
    config.latency_us = 100.0;
    config.bytes_per_us = 125.0; // 1 Gb/s
    config.jitter_sigma = 0.0;
    NetworkLink link(config, 1);
    // 12500 bytes = 100 us on the wire + 100 us propagation.
    EXPECT_EQ(link.deliver(0, 12500), 200u);
}

TEST(LinkTest, BackToBackMessagesQueueFifo)
{
    LinkConfig config;
    config.latency_us = 10.0;
    config.bytes_per_us = 100.0;
    NetworkLink link(config, 1);
    const SimTime first = link.deliver(0, 1000);  // tx 10us
    const SimTime second = link.deliver(0, 1000); // queues behind
    EXPECT_EQ(first, 20u);
    EXPECT_EQ(second, 30u);
    EXPECT_EQ(link.stats().tx_queued_us, 10u);
}

TEST(LinkTest, DirectionsDoNotContend)
{
    LinkConfig config;
    config.latency_us = 10.0;
    config.bytes_per_us = 100.0;
    NetworkLink link(config, 1);
    const SimTime fwd = link.deliver(0, 1000);
    const SimTime rev =
        link.deliver(0, 1000, NetworkLink::Direction::Reverse);
    EXPECT_EQ(fwd, rev); // full duplex: no shared serializer
}

TEST(LinkTest, JitterIsDeterministicUnderPinnedSeed)
{
    LinkConfig config;
    config.latency_us = 200.0;
    config.jitter_sigma = 0.25;
    config.bytes_per_us = 0.0; // infinite bandwidth

    std::vector<SimTime> a, b;
    NetworkLink first(config, 42), second(config, 42);
    for (int i = 0; i < 64; ++i) {
        a.push_back(first.deliver(0, 100));
        b.push_back(second.deliver(0, 100));
    }
    EXPECT_EQ(a, b);

    // A different seed jitters differently somewhere in the stream.
    NetworkLink other(config, 43);
    bool any_differ = false;
    for (int i = 0; i < 64; ++i)
        any_differ |= other.deliver(0, 100) != a[i];
    EXPECT_TRUE(any_differ);
}

TEST(LinkTest, JitteredDeliveryNeverBeatsTheDocumentedFloor)
{
    // The jitter multiplier is clamped at kJitterFloor, so no draw —
    // however extreme the sigma — can deliver faster than
    // floor x latency. jasim::lane derives its lookahead window from
    // this guarantee; a single early delivery would break it.
    LinkConfig config;
    config.latency_us = 200.0;
    config.jitter_sigma = 1.5; // heavy tail, many low draws
    config.bytes_per_us = 0.0; // isolate propagation
    NetworkLink link(config, 77);
    const auto floor_us =
        static_cast<SimTime>(200.0 * NetworkLink::kJitterFloor);
    EXPECT_EQ(link.minLatencyUs(), floor_us);
    for (int i = 0; i < 20000; ++i) {
        const SimTime sent = static_cast<SimTime>(i) * 1000;
        const auto dir = (i % 2 == 0)
                             ? NetworkLink::Direction::Forward
                             : NetworkLink::Direction::Reverse;
        const SimTime arrival = link.deliver(sent, 1, dir);
        EXPECT_GE(arrival - sent, floor_us) << "message " << i;
    }
}

TEST(LinkTest, MinLatencyReflectsJitterConfig)
{
    LinkConfig config;
    config.latency_us = 100.0;
    config.jitter_sigma = 0.0;
    EXPECT_EQ(NetworkLink(config, 1).minLatencyUs(), 100u);
    config.jitter_sigma = 0.15;
    EXPECT_EQ(NetworkLink(config, 1).minLatencyUs(), 50u);
    EXPECT_EQ(NetworkLink(LinkConfig::zeroCost(), 1).minLatencyUs(),
              0u);
}

TEST(LinkTest, PerDirectionStatsSumIntoTheAggregate)
{
    LinkConfig config;
    config.latency_us = 10.0;
    config.bytes_per_us = 100.0;
    NetworkLink link(config, 1);
    link.deliver(0, 1000);
    link.deliver(0, 500, NetworkLink::Direction::Reverse);
    link.deliver(0, 500, NetworkLink::Direction::Reverse);
    EXPECT_EQ(link.stats(NetworkLink::Direction::Forward).messages,
              1u);
    EXPECT_EQ(link.stats(NetworkLink::Direction::Reverse).messages,
              2u);
    EXPECT_EQ(link.stats().messages, 3u);
    EXPECT_EQ(link.stats().bytes, 2000u);
}

TEST(LinkTest, JitterStaysCenteredOnConfiguredLatency)
{
    LinkConfig config;
    config.latency_us = 200.0;
    config.jitter_sigma = 0.2;
    config.bytes_per_us = 0.0;
    NetworkLink link(config, 7);
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(link.deliver(0, 1));
    // Mean-1 multiplier: the sample mean sits near 200 us.
    EXPECT_NEAR(sum / n, 200.0, 10.0);
}

} // namespace
} // namespace jasim
