#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <stdexcept>

#include "net/load_balancer.h"

namespace jasim {
namespace {

TEST(LoadBalancerTest, RoundRobinIsExact)
{
    LbConfig config;
    config.policy = LbPolicy::RoundRobin;
    LoadBalancer lb(config, 3);
    for (int i = 0; i < 3 * 40; ++i)
        lb.complete(lb.route()); // immediate completion
    EXPECT_EQ(lb.routedTo(0), 40u);
    EXPECT_EQ(lb.routedTo(1), 40u);
    EXPECT_EQ(lb.routedTo(2), 40u);
    EXPECT_EQ(lb.totalRouted(), 120u);
}

TEST(LoadBalancerTest, RoundRobinRotatesInOrder)
{
    LbConfig config;
    config.policy = LbPolicy::RoundRobin;
    LoadBalancer lb(config, 4);
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(lb.route(), i % 4);
}

TEST(LoadBalancerTest, LeastConnectionsPrefersIdleNode)
{
    LbConfig config;
    config.policy = LbPolicy::LeastConnections;
    LoadBalancer lb(config, 3);
    // Nodes 0 and 1 each have a request in flight; 2 is idle.
    EXPECT_EQ(lb.route(), 0u);
    EXPECT_EQ(lb.route(), 1u);
    EXPECT_EQ(lb.route(), 2u);
    // All tied at 1 -> lowest index wins.
    EXPECT_EQ(lb.route(), 0u);
    // Node 1 finishes its request: it is now least loaded.
    lb.complete(1);
    EXPECT_EQ(lb.route(), 1u);
}

TEST(LoadBalancerTest, LeastConnectionsBalancesSkewedServiceTimes)
{
    // Node 0 is "slow" (8 rounds per request); nodes 1 and 2 are
    // fast (2 rounds). One arrival per round. Least-connections
    // should throttle the slow node to roughly its drain rate while
    // the fast nodes absorb the rest.
    LbConfig config;
    config.policy = LbPolicy::LeastConnections;
    LoadBalancer lb(config, 3);
    std::multimap<int, std::size_t> completions; // round -> node
    const int rounds = 400;
    for (int round = 0; round < rounds; ++round) {
        for (auto it = completions.begin();
             it != completions.end() && it->first <= round;
             it = completions.erase(it)) {
            lb.complete(it->second);
        }
        const std::size_t node = lb.route();
        completions.emplace(round + (node == 0 ? 8 : 2), node);
    }
    // The slow node serves ~1/8 of the rounds, the fast ones split
    // the remainder.
    EXPECT_LT(lb.routedTo(0), lb.routedTo(1));
    EXPECT_LT(lb.routedTo(0), lb.routedTo(2));
    EXPECT_LE(lb.routedTo(0), rounds / 8 + 16u);
    EXPECT_GT(lb.routedTo(0), 0u);
}

TEST(LoadBalancerTest, WeightedHonoursWeights)
{
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {3.0, 1.0};
    LoadBalancer lb(config, 2);
    for (int i = 0; i < 400; ++i)
        lb.complete(lb.route());
    EXPECT_EQ(lb.routedTo(0), 300u);
    EXPECT_EQ(lb.routedTo(1), 100u);
}

TEST(LoadBalancerTest, WeightedInterleavesRatherThanBursts)
{
    // Smooth WRR with {2,1} yields 0,1,0 repeating, not 0,0,1.
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {2.0, 1.0};
    LoadBalancer lb(config, 2);
    EXPECT_EQ(lb.route(), 0u);
    EXPECT_EQ(lb.route(), 1u);
    EXPECT_EQ(lb.route(), 0u);
    EXPECT_EQ(lb.route(), 0u);
    EXPECT_EQ(lb.route(), 1u);
    EXPECT_EQ(lb.route(), 0u);
}

TEST(LoadBalancerTest, MissingWeightsDefaultToOne)
{
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {2.0}; // second node unspecified
    LoadBalancer lb(config, 2);
    for (int i = 0; i < 300; ++i)
        lb.complete(lb.route());
    EXPECT_EQ(lb.routedTo(0), 200u);
    EXPECT_EQ(lb.routedTo(1), 100u);
}

TEST(LoadBalancerTest, RejectsInvalidWeights)
{
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {1.0, -2.0};
    EXPECT_THROW(LoadBalancer(config, 2), std::invalid_argument);
    config.weights = {1.0, std::numeric_limits<double>::quiet_NaN()};
    EXPECT_THROW(LoadBalancer(config, 2), std::invalid_argument);
    config.weights = {1.0, std::numeric_limits<double>::infinity()};
    EXPECT_THROW(LoadBalancer(config, 2), std::invalid_argument);
}

TEST(LoadBalancerTest, AllZeroWeightsFallBackToUniform)
{
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {0.0, 0.0};
    LoadBalancer lb(config, 2);
    for (int i = 0; i < 100; ++i)
        lb.complete(lb.route());
    EXPECT_EQ(lb.routedTo(0), 50u);
    EXPECT_EQ(lb.routedTo(1), 50u);
}

TEST(LoadBalancerTest, ZeroWeightNodeIsSkippedWhileOthersUp)
{
    LbConfig config;
    config.policy = LbPolicy::Weighted;
    config.weights = {1.0, 0.0};
    LoadBalancer lb(config, 2);
    for (int i = 0; i < 50; ++i)
        lb.complete(lb.route());
    EXPECT_EQ(lb.routedTo(0), 50u);
    EXPECT_EQ(lb.routedTo(1), 0u);
}

TEST(LoadBalancerTest, DownNodesReceiveNoTraffic)
{
    LbConfig config;
    config.policy = LbPolicy::RoundRobin;
    LoadBalancer lb(config, 3);
    lb.setNodeDown(1);
    EXPECT_FALSE(lb.nodeUp(1));
    EXPECT_EQ(lb.upCount(), 2u);
    for (int i = 0; i < 40; ++i)
        lb.complete(lb.route());
    EXPECT_EQ(lb.routedTo(1), 0u);
    EXPECT_EQ(lb.routedTo(0) + lb.routedTo(2), 40u);
    EXPECT_EQ(lb.ejections(), 1u);

    lb.setNodeUp(1);
    EXPECT_EQ(lb.upCount(), 3u);
    EXPECT_EQ(lb.readmissions(), 1u);
    bool routed_to_1 = false;
    for (int i = 0; i < 6 && !routed_to_1; ++i) {
        const std::size_t node = lb.route();
        routed_to_1 = node == 1;
        lb.complete(node);
    }
    EXPECT_TRUE(routed_to_1);
}

TEST(LoadBalancerTest, AllNodesDownRoutesToNoNode)
{
    LbConfig config;
    config.policy = LbPolicy::LeastConnections;
    LoadBalancer lb(config, 2);
    lb.setNodeDown(0);
    lb.setNodeDown(1);
    EXPECT_EQ(lb.route(), LoadBalancer::kNoNode);
    EXPECT_EQ(lb.route(), LoadBalancer::kNoNode);
    EXPECT_EQ(lb.unroutable(), 2u);
    EXPECT_EQ(lb.totalRouted(), 0u);
    // Redundant down/up calls are idempotent.
    lb.setNodeDown(0);
    EXPECT_EQ(lb.ejections(), 2u);
    lb.setNodeUp(0);
    EXPECT_NE(lb.route(), LoadBalancer::kNoNode);
}

TEST(LoadBalancerTest, TracksInFlightAndPeak)
{
    LbConfig config;
    config.policy = LbPolicy::RoundRobin;
    LoadBalancer lb(config, 2);
    lb.route();
    lb.route();
    lb.route();
    EXPECT_EQ(lb.inFlight(0), 2u);
    EXPECT_EQ(lb.inFlight(1), 1u);
    EXPECT_EQ(lb.peakInFlight(), 3u);
    lb.complete(0);
    EXPECT_EQ(lb.inFlight(0), 1u);
}

} // namespace
} // namespace jasim
