#include <gtest/gtest.h>

#include "net/fabric.h"

namespace jasim {
namespace {

TEST(FabricTest, BuildsStarTopology)
{
    NetworkFabric fabric(FabricConfig{}, 4, 9);
    EXPECT_EQ(fabric.nodeCount(), 4u);
    fabric.clientLb().deliver(0, 100);
    fabric.lbNode(3).deliver(0, 100);
    fabric.nodeDb(0).deliver(0, 100);
    EXPECT_EQ(fabric.totalBytes(), 300u);
}

TEST(FabricTest, ZeroCostFabricDeliversInstantly)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 2, 9);
    EXPECT_EQ(fabric.clientLb().deliver(123, 1 << 20), 123u);
    EXPECT_EQ(fabric.nodeDb(1).deliver(456, 1 << 20), 456u);
}

TEST(FabricTest, SameSeedSameDeliveries)
{
    FabricConfig config; // LAN links with jitter
    config.node_db.jitter_sigma = 0.3;
    NetworkFabric a(config, 3, 77), b(config, 3, 77);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.nodeDb(1).deliver(0, 1000),
                  b.nodeDb(1).deliver(0, 1000));
        EXPECT_EQ(a.lbNode(2).deliver(0, 1000),
                  b.lbNode(2).deliver(0, 1000));
    }
}

TEST(FabricTest, LinksJitterIndependently)
{
    FabricConfig config;
    config.node_db.jitter_sigma = 0.3;
    NetworkFabric fabric(FabricConfig(config), 2, 77);
    bool differ = false;
    for (int i = 0; i < 32; ++i) {
        differ |= fabric.nodeDb(0).deliver(0, 1) !=
            fabric.nodeDb(1).deliver(0, 1);
    }
    EXPECT_TRUE(differ);
}

} // namespace
} // namespace jasim
