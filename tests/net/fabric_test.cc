#include <gtest/gtest.h>

#include "net/fabric.h"

namespace jasim {
namespace {

TEST(FabricTest, BuildsStarTopology)
{
    NetworkFabric fabric(FabricConfig{}, 4, 9);
    EXPECT_EQ(fabric.nodeCount(), 4u);
    fabric.clientLb().deliver(0, 100);
    fabric.lbNode(3).deliver(0, 100);
    fabric.nodeDb(0).deliver(0, 100);
    EXPECT_EQ(fabric.totalBytes(), 300u);
}

TEST(FabricTest, ZeroCostFabricDeliversInstantly)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 2, 9);
    EXPECT_EQ(fabric.clientLb().deliver(123, 1 << 20), 123u);
    EXPECT_EQ(fabric.nodeDb(1).deliver(456, 1 << 20), 456u);
}

TEST(FabricTest, SameSeedSameDeliveries)
{
    FabricConfig config; // LAN links with jitter
    config.node_db.jitter_sigma = 0.3;
    NetworkFabric a(config, 3, 77), b(config, 3, 77);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.nodeDb(1).deliver(0, 1000),
                  b.nodeDb(1).deliver(0, 1000));
        EXPECT_EQ(a.lbNode(2).deliver(0, 1000),
                  b.lbNode(2).deliver(0, 1000));
    }
}

TEST(FabricTest, LinksJitterIndependently)
{
    FabricConfig config;
    config.node_db.jitter_sigma = 0.3;
    NetworkFabric fabric(FabricConfig(config), 2, 77);
    bool differ = false;
    for (int i = 0; i < 32; ++i) {
        differ |= fabric.nodeDb(0).deliver(0, 1) !=
            fabric.nodeDb(1).deliver(0, 1);
    }
    EXPECT_TRUE(differ);
}

// ---- partition map ----

TEST(FabricTest, UnpartitionedFabricReachesEverything)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 3, 1);
    EXPECT_FALSE(fabric.partitioned());
    EXPECT_TRUE(fabric.reachable(NetEndpoint::node(0),
                                 NetEndpoint::dbPrimary(1)));
    EXPECT_TRUE(fabric.reachable(NetEndpoint::dbReplica(0, 1),
                                 NetEndpoint::dbPrimary(0)));
}

TEST(FabricTest, PartitionSplitsCrossSideTrafficOnly)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 3, 1);
    fabric.setPartition({{NetEndpoint::node(0),
                          NetEndpoint::dbPrimary(0)},
                         {NetEndpoint::node(1),
                          NetEndpoint::dbReplica(0, 0)}});
    EXPECT_TRUE(fabric.partitioned());

    // Same side: reachable both ways.
    EXPECT_TRUE(fabric.reachable(NetEndpoint::node(0),
                                 NetEndpoint::dbPrimary(0)));
    EXPECT_TRUE(fabric.reachable(NetEndpoint::dbReplica(0, 0),
                                 NetEndpoint::node(1)));
    // Cross side: cut, symmetric.
    EXPECT_FALSE(fabric.reachable(NetEndpoint::node(0),
                                  NetEndpoint::dbReplica(0, 0)));
    EXPECT_FALSE(fabric.reachable(NetEndpoint::dbReplica(0, 0),
                                  NetEndpoint::node(0)));
    EXPECT_FALSE(fabric.reachable(NetEndpoint::dbPrimary(0),
                                  NetEndpoint::node(1)));
}

TEST(FabricTest, UnlistedEndpointsStayReachableFromEveryone)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 3, 1);
    fabric.setPartition(
        {{NetEndpoint::node(0)}, {NetEndpoint::node(1)}});
    // Node 2 and the whole DB tier are on no side.
    EXPECT_TRUE(fabric.reachable(NetEndpoint::node(0),
                                 NetEndpoint::node(2)));
    EXPECT_TRUE(fabric.reachable(NetEndpoint::node(1),
                                 NetEndpoint::dbPrimary(0)));
    EXPECT_TRUE(fabric.reachable(NetEndpoint::dbPrimary(0),
                                 NetEndpoint::dbReplica(0, 1)));
    // The listed pair is still cut.
    EXPECT_FALSE(fabric.reachable(NetEndpoint::node(0),
                                  NetEndpoint::node(1)));
}

TEST(FabricTest, ClearPartitionHealsTheFabric)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 2, 1);
    fabric.setPartition(
        {{NetEndpoint::node(0)}, {NetEndpoint::node(1)}});
    EXPECT_FALSE(fabric.reachable(NetEndpoint::node(0),
                                  NetEndpoint::node(1)));
    fabric.clearPartition();
    EXPECT_FALSE(fabric.partitioned());
    EXPECT_TRUE(fabric.reachable(NetEndpoint::node(0),
                                 NetEndpoint::node(1)));
}

TEST(FabricTest, CountsPartitionDrops)
{
    NetworkFabric fabric(FabricConfig::zeroCost(), 2, 1);
    EXPECT_EQ(fabric.partitionDrops(), 0u);
    fabric.notePartitionDrop();
    fabric.notePartitionDrop();
    EXPECT_EQ(fabric.partitionDrops(), 2u);
}

TEST(FabricTest, ParsesEndpointTokens)
{
    bool ok = false;
    EXPECT_EQ(parseNetEndpoint("3", ok), NetEndpoint::node(3));
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseNetEndpoint("db1", ok), NetEndpoint::dbPrimary(1));
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseNetEndpoint("db1.2", ok),
              NetEndpoint::dbReplica(1, 2));
    EXPECT_TRUE(ok);
    for (const char *bad : {"", "db", "x3", "3.1", "db1.", "db1.2.3"}) {
        parseNetEndpoint(bad, ok);
        EXPECT_FALSE(ok) << bad;
    }
    EXPECT_EQ(describeNetEndpoint(NetEndpoint::node(3)), "3");
    EXPECT_EQ(describeNetEndpoint(NetEndpoint::dbPrimary(1)), "db1");
    EXPECT_EQ(describeNetEndpoint(NetEndpoint::dbReplica(1, 2)),
              "db1.2");
}

} // namespace
} // namespace jasim
