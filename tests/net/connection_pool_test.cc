#include <gtest/gtest.h>

#include <vector>

#include "net/connection_pool.h"

namespace jasim {
namespace {

struct PoolFixture
{
    EventQueue queue;
    NetworkLink link;
    ConnectionPool pool;

    explicit PoolFixture(ConnectionPoolConfig config,
                         LinkConfig link_config = LinkConfig::lan())
        : link(link_config, 5), pool(config, queue, link)
    {
    }
};

ConnectionPoolConfig
smallPool(std::size_t max)
{
    ConnectionPoolConfig config;
    config.max_connections = max;
    config.handshake_rtts = 1.5;
    config.connect_us = 100.0;
    return config;
}

TEST(ConnectionPoolTest, FreshConnectPaysHandshake)
{
    PoolFixture f(smallPool(2));
    SimTime got = 0;
    f.pool.acquire([&](SimTime ready) { got = ready; });
    f.queue.runUntil(secs(1));
    // 1.5 RTTs x 200 us + 100 us CPU = 400 us.
    EXPECT_EQ(got, 400u);
    EXPECT_EQ(f.pool.stats().fresh_connects, 1u);
}

TEST(ConnectionPoolTest, KeepAliveReuseIsFree)
{
    PoolFixture f(smallPool(2));
    f.pool.acquire([&](SimTime) { f.pool.release(); });
    f.queue.runUntil(secs(1));

    SimTime got = 0;
    f.pool.acquire([&](SimTime ready) { got = ready; });
    const SimTime asked = f.queue.now();
    f.queue.runUntil(secs(2));
    EXPECT_EQ(got, asked);
    EXPECT_EQ(f.pool.stats().reuses, 1u);
    EXPECT_EQ(f.pool.stats().fresh_connects, 1u);
}

TEST(ConnectionPoolTest, ExhaustionQueuesRatherThanDrops)
{
    PoolFixture f(smallPool(2));
    std::vector<SimTime> ready_times;
    const int requested = 6;
    for (int i = 0; i < requested; ++i) {
        f.pool.acquire([&, i](SimTime ready) {
            ready_times.push_back(ready);
            // Hold each connection for 10 ms of simulated work.
            f.queue.scheduleAfter(millis(10),
                                  [&] { f.pool.release(); });
        });
    }
    EXPECT_EQ(f.pool.waiting(), 4u);
    EXPECT_EQ(f.pool.stats().peak_waiting, 4u);

    f.queue.runUntil(secs(5));
    // Every acquire was eventually served — nothing dropped.
    EXPECT_EQ(ready_times.size(),
              static_cast<std::size_t>(requested));
    EXPECT_EQ(f.pool.stats().waits, 4u);
    EXPECT_GT(f.pool.stats().total_wait_us, 0u);
    EXPECT_EQ(f.pool.waiting(), 0u);
    // FIFO: ready times are non-decreasing.
    for (std::size_t i = 1; i < ready_times.size(); ++i)
        EXPECT_GE(ready_times[i], ready_times[i - 1]);
}

TEST(ConnectionPoolTest, WaiterGetsHotConnectionWithoutHandshake)
{
    PoolFixture f(smallPool(1));
    f.pool.acquire([&](SimTime) {
        f.queue.scheduleAfter(millis(5), [&] { f.pool.release(); });
    });
    SimTime got = 0;
    f.pool.acquire([&](SimTime ready) { got = ready; });
    f.queue.runUntil(secs(1));
    // Served exactly when the holder released: no reconnect cost.
    EXPECT_EQ(got, 400u + millis(5));
    EXPECT_EQ(f.pool.stats().fresh_connects, 1u);
}

TEST(ConnectionPoolTest, IdleTimeoutForcesReconnect)
{
    ConnectionPoolConfig config = smallPool(2);
    config.idle_timeout_s = 1.0;
    PoolFixture f(config);
    f.pool.acquire([&](SimTime) { f.pool.release(); });
    f.queue.runUntil(secs(10)); // idle far beyond the timeout

    SimTime asked = f.queue.now();
    SimTime got = 0;
    f.pool.acquire([&](SimTime ready) { got = ready; });
    f.queue.runUntil(secs(20));
    EXPECT_EQ(f.pool.stats().expirations, 1u);
    EXPECT_EQ(f.pool.stats().fresh_connects, 2u);
    EXPECT_EQ(got, asked + 400u);
}

TEST(ConnectionPoolTest, AcquireTimeoutDropsStaleWaiters)
{
    ConnectionPoolConfig config = smallPool(1);
    config.acquire_timeout_us = millis(20);
    PoolFixture f(config);
    // Holder keeps the only connection for 100 ms.
    f.pool.acquire([&](SimTime) {
        f.queue.scheduleAfter(millis(100), [&] { f.pool.release(); });
    });
    bool acquired = false;
    SimTime timed_out_at = 0;
    f.pool.acquire([&](SimTime) { acquired = true; },
                   [&](SimTime at) { timed_out_at = at; });
    f.queue.runUntil(secs(1));
    EXPECT_FALSE(acquired);
    // Deadline runs from the acquire() call itself.
    EXPECT_EQ(timed_out_at, millis(20));
    EXPECT_EQ(f.pool.stats().timeouts, 1u);
    EXPECT_EQ(f.pool.waiting(), 0u);
}

TEST(ConnectionPoolTest, WaiterServedBeforeDeadlineNeverTimesOut)
{
    ConnectionPoolConfig config = smallPool(1);
    config.acquire_timeout_us = millis(50);
    PoolFixture f(config);
    f.pool.acquire([&](SimTime) {
        f.queue.scheduleAfter(millis(5), [&] { f.pool.release(); });
    });
    int acquired = 0;
    int timeouts = 0;
    f.pool.acquire([&](SimTime) { ++acquired; },
                   [&](SimTime) { ++timeouts; });
    f.queue.runUntil(secs(1));
    // Exactly one of the callbacks ran.
    EXPECT_EQ(acquired, 1);
    EXPECT_EQ(timeouts, 0);
    EXPECT_EQ(f.pool.stats().timeouts, 0u);
}

TEST(ConnectionPoolTest, NullTimeoutCallbackWaitsForever)
{
    ConnectionPoolConfig config = smallPool(1);
    config.acquire_timeout_us = millis(1);
    PoolFixture f(config);
    f.pool.acquire([&](SimTime) {
        f.queue.scheduleAfter(secs(2), [&] { f.pool.release(); });
    });
    bool acquired = false;
    f.pool.acquire([&](SimTime) { acquired = true; },
                   ConnectionPool::TimedOut{});
    f.queue.runUntil(secs(5));
    EXPECT_TRUE(acquired);
    EXPECT_EQ(f.pool.stats().timeouts, 0u);
}

TEST(ConnectionPoolTest, KillIdleForcesFreshHandshakes)
{
    PoolFixture f(smallPool(2));
    // Open two connections, release both back to the idle set.
    int held = 0;
    f.pool.acquire([&](SimTime) { ++held; });
    f.pool.acquire([&](SimTime) { ++held; });
    f.queue.runUntil(secs(1));
    ASSERT_EQ(held, 2);
    f.pool.release();
    f.pool.release();
    ASSERT_EQ(f.pool.idle(), 2u);

    EXPECT_EQ(f.pool.killIdle(), 2u);
    EXPECT_EQ(f.pool.idle(), 0u);
    EXPECT_EQ(f.pool.open(), 0u);
    EXPECT_EQ(f.pool.stats().killed, 2u);

    // The next acquire pays the full handshake again.
    const SimTime asked = f.queue.now();
    SimTime got = 0;
    f.pool.acquire([&](SimTime ready) { got = ready; });
    f.queue.runUntil(secs(2));
    EXPECT_EQ(got, asked + 400u);
    EXPECT_EQ(f.pool.stats().fresh_connects, 3u);
}

TEST(ConnectionPoolTest, KillIdleSparesCheckedOutConnections)
{
    PoolFixture f(smallPool(2));
    f.pool.acquire([](SimTime) {}); // held, never released
    f.queue.runUntil(secs(1));
    EXPECT_EQ(f.pool.killIdle(), 0u);
    EXPECT_EQ(f.pool.open(), 1u);
}

TEST(ConnectionPoolTest, NoKeepAliveClosesOnRelease)
{
    ConnectionPoolConfig config = smallPool(2);
    config.keep_alive = false;
    PoolFixture f(config);
    f.pool.acquire([&](SimTime) { f.pool.release(); });
    f.queue.runUntil(secs(1));
    EXPECT_EQ(f.pool.open(), 0u);
    EXPECT_EQ(f.pool.idle(), 0u);
}

} // namespace
} // namespace jasim
