#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

SutConfig
lightNode(double per_node_ir)
{
    SutConfig config;
    config.injection_rate = per_node_ir;
    config.driver.ramp_up_s = 1.0;
    return config;
}

/** Cluster whose fabric, pool and balancer add no cost at all. */
ClusterConfig
zeroCostCluster(std::size_t nodes, double per_node_ir)
{
    ClusterConfig config;
    config.nodes = nodes;
    config.node = lightNode(per_node_ir);
    config.fabric = FabricConfig::zeroCost();
    config.db_pool.max_connections = 64;
    config.db_pool.connect_us = 0.0;
    config.lb.forward_us = 0.0;
    return config;
}

TEST(ClusterFaultsTest, HealthyRunArmsNothing)
{
    Shared shared;
    ClusterUnderTest cluster(zeroCostCluster(2, 5.0), shared.profiles,
                             shared.registry, 7);
    EXPECT_FALSE(cluster.resilienceEnabled());
    EXPECT_EQ(cluster.injector(), nullptr);
    EXPECT_EQ(cluster.breaker(), nullptr);
    EXPECT_EQ(cluster.healthChecker(), nullptr);
    cluster.start(secs(20));
    cluster.advanceTo(secs(30));
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    EXPECT_EQ(cluster.tracker().errorCount(), 0u);
    EXPECT_EQ(cluster.tracker().retryCount(), 0u);
    EXPECT_DOUBLE_EQ(cluster.tracker().availability(0, secs(30)), 1.0);
}

TEST(ClusterFaultsTest, ChaosRunsAreDeterministicUnderPinnedSeed)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(2, 5.0);
    config.fabric = FabricConfig{}; // real LAN links, jittered
    config.faults = FaultSchedule::parse(
        "crash@10:node=0,restart=5;degrade@20:node=all,lat=3,"
        "drop=0.1,dur=8;poolkill@30:node=1");

    ClusterUnderTest a(config, shared.profiles, shared.registry, 21);
    ClusterUnderTest b(config, shared.profiles, shared.registry, 21);
    a.start(secs(40));
    b.start(secs(40));
    a.advanceTo(secs(55));
    b.advanceTo(secs(55));

    EXPECT_GT(a.tracker().totalCompleted(), 100u);
    EXPECT_EQ(a.tracker().totalCompleted(),
              b.tracker().totalCompleted());
    EXPECT_EQ(a.tracker().errorCount(), b.tracker().errorCount());
    EXPECT_EQ(a.tracker().retryCount(), b.tracker().retryCount());
    EXPECT_EQ(a.queue().executed(), b.queue().executed());
    EXPECT_DOUBLE_EQ(a.jops(secs(5), secs(40)),
                     b.jops(secs(5), secs(40)));
    EXPECT_EQ(a.injector()->fired(), 3u);
    EXPECT_EQ(b.injector()->fired(), 3u);
}

TEST(ClusterFaultsTest, CrashEjectsRestartReadmits)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(2, 5.0);
    config.faults =
        FaultSchedule::parse("crash@10:node=0,restart=5");

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 17);
    cluster.start(secs(30));
    cluster.advanceTo(secs(40));

    ASSERT_TRUE(cluster.resilienceEnabled());
    EXPECT_EQ(cluster.injector()->fired(), 1u);

    // Requests on / routed to the dead node fail as NodeDown.
    EXPECT_GT(cluster.tracker().errorCount(ErrorKind::NodeDown), 0u);
    EXPECT_GT(cluster.tracker().errorsOnNode(0), 0u);

    // Availability tracks the scripted 5 s outage of a 40 s horizon.
    const double avail0 = cluster.tracker().availability(0, secs(40));
    EXPECT_LT(avail0, 1.0);
    EXPECT_NEAR(avail0, 35.0 / 40.0, 0.02);
    EXPECT_DOUBLE_EQ(cluster.tracker().availability(1, secs(40)), 1.0);

    // The health checker saw it: ejection, then readmission.
    EXPECT_GE(cluster.healthChecker()->stats().ejections, 1u);
    EXPECT_GE(cluster.healthChecker()->stats().readmissions, 1u);
    EXPECT_FALSE(cluster.healthChecker()->ejected(0));
    EXPECT_GT(cluster.healthChecker()->stats().probes, 20u);

    // The cluster kept serving throughout (surviving node + recovery).
    EXPECT_GT(cluster.tracker().completedOnNode(0), 0u);
    EXPECT_GT(cluster.tracker().completedOnNode(1), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    const DegradedSummary degraded =
        cluster.tracker().degradedSummary(secs(40));
    EXPECT_GE(degraded.intervals, 1u);
    EXPECT_GT(degraded.degraded_fraction, 0.0);
}

TEST(ClusterFaultsTest, LossyLinksDriveRetriesNotHangs)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(2, 4.0);
    config.faults = FaultSchedule::parse(
        "degrade@5:node=all,drop=0.25,dur=15");
    config.resilience.db_timeout_s = 0.25; // reclaim lost attempts fast
    config.resilience.retry.base_backoff_us = 10000.0;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 29);
    cluster.start(secs(25));
    cluster.advanceTo(secs(40));

    // Dropped queries/responses surface as deadline-driven retries.
    EXPECT_GT(cluster.tracker().retryCount(), 0u);
    EXPECT_GT(cluster.tracker().retryCount(ErrorKind::DbTimeout), 0u);
    // Most work still completes; nothing hangs the drain.
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    const double rate = cluster.tracker().errorRate();
    EXPECT_LT(rate, 0.25);
}

TEST(ClusterFaultsTest, StarvedDbTripsBreakerAndFailsFast)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(1, 5.0);
    config.resilience.force_enabled = true;
    // A deadline no DB transaction can meet: every attempt times out.
    config.resilience.db_timeout_s = 1e-4;
    config.resilience.retry.base_backoff_us = 5000.0;
    config.resilience.breaker.failure_threshold = 5;
    config.resilience.breaker.open_s = 2.0;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 31);
    ASSERT_TRUE(cluster.resilienceEnabled());
    EXPECT_EQ(cluster.injector(), nullptr); // no scripted faults
    cluster.start(secs(20));
    cluster.advanceTo(secs(30));

    // Timeouts, then the breaker trips and rejects at the door.
    EXPECT_GT(cluster.tracker().retryCount(ErrorKind::DbTimeout), 0u);
    EXPECT_GE(cluster.breaker()->stats().opens, 1u);
    EXPECT_GT(cluster.breaker()->stats().rejected, 0u);
    EXPECT_GT(
        cluster.tracker().errorCount(ErrorKind::DbRetriesExhausted),
        0u);
    EXPECT_GT(cluster.tracker().errorRate(), 0.5);
    // Fast-failing kept the pool healthy: no permanently-held conns.
    EXPECT_EQ(cluster.dbPool(0).waiting(), 0u);
}

TEST(ClusterFaultsTest, PoolKillIsTransparentToCallers)
{
    Shared shared;
    ClusterConfig config = zeroCostCluster(2, 5.0);
    config.faults = FaultSchedule::parse("poolkill@10:node=0");

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 37);
    cluster.start(secs(20));
    cluster.advanceTo(secs(30));

    EXPECT_EQ(cluster.injector()->fired(), 1u);
    // Free reconnects (connect_us = 0): no user-visible failures.
    EXPECT_EQ(cluster.tracker().errorCount(), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
}

} // namespace
} // namespace jasim
