#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

ClusterConfig
lightCluster(double per_node_ir = 5.0)
{
    ClusterConfig config;
    config.nodes = 2;
    config.node.injection_rate = per_node_ir;
    config.node.driver.ramp_up_s = 1.0;
    config.fabric = FabricConfig::zeroCost();
    config.db_pool.max_connections = 64;
    config.db_pool.connect_us = 0.0;
    config.lb.forward_us = 0.0;
    return config;
}

TEST(ClusterRecoveryTest, HealthyRunArmsNoRecovery)
{
    Shared shared;
    ClusterUnderTest cluster(lightCluster(), shared.profiles,
                             shared.registry, 7);
    EXPECT_FALSE(cluster.dbRecoveryEnabled());
    EXPECT_FALSE(cluster.dbDown());
    cluster.start(secs(10));
    cluster.advanceTo(secs(15));
    EXPECT_EQ(cluster.dbCrashCount(), 0u);
    EXPECT_EQ(cluster.checkpointCount(), 0u);
    EXPECT_EQ(cluster.tracker().dbRecoveryCount(), 0u);
}

TEST(ClusterRecoveryTest, DbCrashRecoversAndKeepsServing)
{
    Shared shared;
    ClusterConfig config = lightCluster();
    config.faults = FaultSchedule::parse(
        "dbcrash@10:restart=1;tornwrite@20:restart=1");
    config.db_recovery.checkpoint_interval_s = 4.0;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 13);
    ASSERT_TRUE(cluster.dbRecoveryEnabled());
    cluster.start(secs(30));
    cluster.advanceTo(secs(40));

    EXPECT_EQ(cluster.dbCrashCount(), 2u);
    EXPECT_FALSE(cluster.dbDown()); // both recoveries completed
    EXPECT_EQ(cluster.tracker().dbRecoveryCount(), 2u);
    EXPECT_GT(cluster.tracker().dbRecoveryUs(), 0u);
    EXPECT_GT(cluster.dbReplayUs(), 0u);
    EXPECT_GT(cluster.checkpointCount(), 2u);
    EXPECT_GT(cluster.lastRecovery().replay_bytes, 0u);
    // Requests failed while the tier was gone, then service resumed.
    EXPECT_GT(cluster.tracker().errorCount(), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 100u);
    EXPECT_GT(cluster.jops(secs(25), secs(30)), 0.0);
}

TEST(ClusterRecoveryTest, RecoveryWaitCountedWhileReplaying)
{
    Shared shared;
    ClusterConfig config = lightCluster();
    // A spinning WAL device makes the replay long enough that
    // requests observably fail fast with RecoveryWait.
    config.db_disk.kind = DiskConfig::Kind::Spinning;
    config.db_disk.spindles = 2;
    config.faults = FaultSchedule::parse("dbcrash@10:restart=1");
    config.db_recovery.checkpoint_interval_s = 16.0;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 17);
    cluster.start(secs(25));
    cluster.advanceTo(secs(35));

    EXPECT_GT(cluster.tracker().errorCount(ErrorKind::RecoveryWait),
              0u);
    // Down-window failures surface too (retried into exhaustion).
    EXPECT_GT(cluster.tracker().errorCount(),
              cluster.tracker().errorCount(ErrorKind::RecoveryWait));
    EXPECT_FALSE(cluster.dbDown());
}

TEST(ClusterRecoveryTest, ReplayGrowsWithCheckpointInterval)
{
    Shared shared;
    std::uint64_t prev_replay_bytes = 0;
    SimTime prev_replay_us = 0;
    for (const double interval : {2.0, 8.0, 32.0}) {
        ClusterConfig config = lightCluster();
        config.faults =
            FaultSchedule::parse("dbcrash@20:restart=1");
        config.db_recovery.checkpoint_interval_s = interval;
        ClusterUnderTest cluster(config, shared.profiles,
                                 shared.registry, 19);
        cluster.start(secs(30));
        cluster.advanceTo(secs(40));
        ASSERT_EQ(cluster.dbCrashCount(), 1u);
        // More un-checkpointed WAL to scan, more redo work, more
        // simulated replay time.
        EXPECT_GE(cluster.lastRecovery().replay_bytes,
                  prev_replay_bytes)
            << "interval " << interval;
        EXPECT_GE(cluster.dbReplayUs(), prev_replay_us)
            << "interval " << interval;
        prev_replay_bytes = cluster.lastRecovery().replay_bytes;
        prev_replay_us = cluster.dbReplayUs();
    }
    EXPECT_GT(prev_replay_bytes, 0u);
}

TEST(ClusterRecoveryTest, RandomizedCrashesNeverLoseAckedCommits)
{
    Shared shared;
    // Randomized sweep: per-seed crash/torn times, both verbs, short
    // restart. The audit must hold every time -- zero lost acked
    // commits, zero resurrected aborted effects, zero duplicates.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const double t_crash =
            8.0 + static_cast<double>((seed * 7919) % 50) / 10.0;
        const double t_torn =
            t_crash + 6.0 + static_cast<double>((seed * 104729) % 40)
                / 10.0;
        std::ostringstream spec;
        spec << "dbcrash@" << t_crash
             << ":restart=1;tornwrite@" << t_torn << ":restart=1";
        ClusterConfig config = lightCluster();
        config.faults = FaultSchedule::parse(spec.str());
        config.db_recovery.checkpoint_interval_s =
            2.0 + static_cast<double>(seed % 3) * 3.0;

        ClusterUnderTest cluster(config, shared.profiles,
                                 shared.registry, seed);
        cluster.start(secs(28));
        cluster.advanceTo(secs(40));

        ASSERT_EQ(cluster.dbCrashCount(), 2u) << "seed " << seed;
        ASSERT_TRUE(cluster.audited()) << "seed " << seed;
        const AuditReport report = cluster.auditNow();
        EXPECT_EQ(report.lost_acked, 0u) << "seed " << seed;
        EXPECT_EQ(report.lost_durable, 0u) << "seed " << seed;
        EXPECT_EQ(report.resurrected, 0u) << "seed " << seed;
        EXPECT_EQ(report.duplicates, 0u) << "seed " << seed;
        EXPECT_TRUE(report.pass()) << "seed " << seed;
        EXPECT_GT(report.surviving, 0u) << "seed " << seed;
        EXPECT_TRUE(cluster.lastAudit().pass()) << "seed " << seed;
    }
}

TEST(ClusterRecoveryTest, ChaosRunsAreDeterministic)
{
    Shared shared;
    ClusterConfig config = lightCluster();
    config.fabric = FabricConfig{}; // real LAN links, jittered
    config.faults = FaultSchedule::parse(
        "dbcrash@8:restart=1;tornwrite@18:restart=1");
    config.db_recovery.checkpoint_interval_s = 4.0;

    ClusterUnderTest a(config, shared.profiles, shared.registry, 23);
    ClusterUnderTest b(config, shared.profiles, shared.registry, 23);
    a.start(secs(25));
    b.start(secs(25));
    a.advanceTo(secs(35));
    b.advanceTo(secs(35));

    EXPECT_EQ(a.queue().executed(), b.queue().executed());
    EXPECT_EQ(a.tracker().totalCompleted(),
              b.tracker().totalCompleted());
    EXPECT_EQ(a.tracker().errorCount(), b.tracker().errorCount());
    EXPECT_EQ(a.dbReplayUs(), b.dbReplayUs());
    EXPECT_EQ(a.checkpointCount(), b.checkpointCount());
    EXPECT_EQ(a.auditNow().surviving, b.auditNow().surviving);
}

TEST(ClusterRecoveryTest, ForceEnabledArmsWithoutFaults)
{
    Shared shared;
    ClusterConfig config = lightCluster();
    config.db_recovery.force_enabled = true;
    config.db_recovery.checkpoint_interval_s = 3.0;

    ClusterUnderTest cluster(config, shared.profiles,
                             shared.registry, 29);
    ASSERT_TRUE(cluster.dbRecoveryEnabled());
    cluster.start(secs(15));
    cluster.advanceTo(secs(20));

    EXPECT_EQ(cluster.dbCrashCount(), 0u);
    EXPECT_GT(cluster.checkpointCount(), 2u);
    EXPECT_GT(cluster.checkpointPagesFlushed(), 0u);
    EXPECT_EQ(cluster.tracker().errorCount(), 0u);
    // Healthy armed run: the audit must already hold.
    const AuditReport report = cluster.auditNow();
    EXPECT_TRUE(report.pass());
    EXPECT_GT(report.surviving, 0u);
}

} // namespace
} // namespace jasim
