#include <gtest/gtest.h>

#include <cmath>

#include "fault/retry.h"
#include "sim/rng.h"

namespace jasim {
namespace {

RetryConfig
noJitter()
{
    RetryConfig config;
    config.max_attempts = 4;
    config.base_backoff_us = 1000.0;
    config.multiplier = 2.0;
    config.max_backoff_us = 3000.0;
    config.jitter = 0.0;
    return config;
}

TEST(RetryPolicyTest, BudgetIsTotalAttempts)
{
    RetryPolicy policy(noJitter());
    EXPECT_TRUE(policy.shouldRetry(1));
    EXPECT_TRUE(policy.shouldRetry(3));
    EXPECT_FALSE(policy.shouldRetry(4));

    RetryConfig one = noJitter();
    one.max_attempts = 1;
    EXPECT_FALSE(RetryPolicy(one).shouldRetry(1));
}

TEST(RetryPolicyTest, GeometricBackoffClampedToCeiling)
{
    RetryPolicy policy(noJitter());
    Rng rng(1);
    EXPECT_EQ(policy.backoffUs(1, rng), 1000u);
    EXPECT_EQ(policy.backoffUs(2, rng), 2000u);
    EXPECT_EQ(policy.backoffUs(3, rng), 3000u); // 4000 clamped
    EXPECT_EQ(policy.backoffUs(7, rng), 3000u);
}

TEST(RetryPolicyTest, ZeroJitterDrawsNothingFromRng)
{
    RetryPolicy policy(noJitter());
    Rng a(99);
    Rng b(99);
    policy.backoffUs(1, a);
    policy.backoffUs(2, a);
    // `a` must be in the same state as the untouched `b`.
    EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RetryPolicyTest, JitterStaysWithinBoundsAndIsSeeded)
{
    RetryConfig config = noJitter();
    config.jitter = 0.25;
    config.max_backoff_us = 1.0e9; // no clamp in this test
    RetryPolicy policy(config);

    Rng a(7);
    Rng b(7);
    for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
        const SimTime us = policy.backoffUs(attempt, a);
        const double nominal = 1000.0 * std::pow(2.0, attempt - 1.0);
        EXPECT_GE(us, static_cast<SimTime>(0.75 * nominal) - 1);
        EXPECT_LE(us, static_cast<SimTime>(1.25 * nominal) + 1);
        // Same seed, same attempt -> same jittered backoff.
        EXPECT_EQ(us, policy.backoffUs(attempt, b));
    }
}

TEST(RetryPolicyTest, NoBudgetConfiguredMatchesShouldRetryExactly)
{
    // Legacy configs (budget <= 0) must behave bit-for-bit like the
    // plain attempt counter, with nothing counted or spent.
    RetryPolicy policy(noJitter());
    for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
        EXPECT_EQ(policy.allowRetry(attempt, secs(attempt)),
                  policy.shouldRetry(attempt));
    }
    EXPECT_EQ(policy.budgetDenied(), 0u);
}

TEST(RetryPolicyTest, BudgetCapsARetryStorm)
{
    RetryConfig config = noJitter();
    config.retry_budget_per_s = 2.0;
    config.retry_budget_burst = 3.0;
    RetryPolicy policy(config);

    // A same-instant storm: only the bucket's burst depth passes.
    std::size_t granted = 0;
    for (int i = 0; i < 20; ++i)
        granted += policy.allowRetry(1, secs(10)) ? 1 : 0;
    EXPECT_EQ(granted, 3u);
    EXPECT_EQ(policy.budgetDenied(), 17u);

    // One second later the refill rate grants exactly two more.
    granted = 0;
    for (int i = 0; i < 20; ++i)
        granted += policy.allowRetry(1, secs(11)) ? 1 : 0;
    EXPECT_EQ(granted, 2u);

    // Exhausted attempt budgets are refused for free: no token is
    // spent and no denial is counted against the bucket.
    const std::uint64_t denied = policy.budgetDenied();
    const double tokens = policy.tokens();
    EXPECT_FALSE(policy.allowRetry(config.max_attempts, secs(12)));
    EXPECT_EQ(policy.budgetDenied(), denied);
    EXPECT_GE(policy.tokens(), tokens);
}

TEST(RetryPolicyTest, HealthyTrafficNeverHitsTheBudget)
{
    RetryConfig config = noJitter();
    config.retry_budget_per_s = 5.0;
    config.retry_budget_burst = 10.0;
    RetryPolicy policy(config);

    // One retry per second against a 5/s refill: the bucket never
    // empties, so the budget never interferes with normal retries.
    for (std::size_t s = 1; s <= 100; ++s)
        EXPECT_TRUE(policy.allowRetry(1, secs(s)));
    EXPECT_EQ(policy.budgetDenied(), 0u);
    EXPECT_GT(policy.tokens(), 5.0);

    RetryPolicy unlimited(noJitter());
    for (std::size_t s = 1; s <= 100; ++s)
        EXPECT_TRUE(unlimited.allowRetry(1, secs(s)));
    EXPECT_EQ(unlimited.budgetDenied(), 0u);
}

TEST(RetryPolicyTest, BudgetRefillClampsAtBurstDepth)
{
    RetryConfig config = noJitter();
    config.retry_budget_per_s = 1.0;
    config.retry_budget_burst = 2.0;
    RetryPolicy policy(config);

    // A long quiet period must not bank more than the burst depth.
    EXPECT_TRUE(policy.allowRetry(1, secs(1000)));
    EXPECT_TRUE(policy.allowRetry(1, secs(1000)));
    EXPECT_FALSE(policy.allowRetry(1, secs(1000)));
    EXPECT_EQ(policy.budgetDenied(), 1u);
}

TEST(RetryPolicyTest, JitteredBackoffVariesAcrossDraws)
{
    RetryConfig config = noJitter();
    config.jitter = 0.5;
    RetryPolicy policy(config);
    Rng rng(11);
    bool varied = false;
    SimTime first = policy.backoffUs(1, rng);
    for (int i = 0; i < 16 && !varied; ++i)
        varied = policy.backoffUs(1, rng) != first;
    EXPECT_TRUE(varied);
}

} // namespace
} // namespace jasim
