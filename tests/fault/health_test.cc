#include <gtest/gtest.h>

#include "fault/health.h"

namespace jasim {
namespace {

HealthConfig
twoOfThree()
{
    HealthConfig config;
    config.fail_threshold = 3;
    config.readmit_threshold = 2;
    return config;
}

TEST(HealthCheckerTest, EjectsAfterConsecutiveFailures)
{
    HealthChecker checker(twoOfThree(), 2);
    EXPECT_EQ(checker.onProbeResult(0, false, 1),
              HealthChecker::Transition::None);
    EXPECT_EQ(checker.onProbeResult(0, false, 2),
              HealthChecker::Transition::None);
    EXPECT_EQ(checker.onProbeResult(0, false, 3),
              HealthChecker::Transition::Eject);
    EXPECT_TRUE(checker.ejected(0));
    EXPECT_FALSE(checker.ejected(1));
    EXPECT_EQ(checker.stats().ejections, 1u);
    EXPECT_EQ(checker.stats().probes, 3u);
    EXPECT_EQ(checker.stats().failed_probes, 3u);
}

TEST(HealthCheckerTest, SuccessResetsFailureStreak)
{
    HealthChecker checker(twoOfThree(), 1);
    checker.onProbeResult(0, false, 1);
    checker.onProbeResult(0, false, 2);
    checker.onProbeResult(0, true, 3);
    checker.onProbeResult(0, false, 4);
    EXPECT_EQ(checker.onProbeResult(0, false, 5),
              HealthChecker::Transition::None);
    EXPECT_FALSE(checker.ejected(0));
}

TEST(HealthCheckerTest, ReadmitsAfterConsecutiveSuccesses)
{
    HealthChecker checker(twoOfThree(), 1);
    for (int i = 0; i < 3; ++i)
        checker.onProbeResult(0, false, i);
    ASSERT_TRUE(checker.ejected(0));
    EXPECT_EQ(checker.onProbeResult(0, true, 4),
              HealthChecker::Transition::None);
    EXPECT_EQ(checker.onProbeResult(0, true, 5),
              HealthChecker::Transition::Readmit);
    EXPECT_FALSE(checker.ejected(0));
    EXPECT_EQ(checker.stats().readmissions, 1u);
}

TEST(HealthCheckerTest, FailureWhileEjectedResetsReadmitStreak)
{
    HealthChecker checker(twoOfThree(), 1);
    for (int i = 0; i < 3; ++i)
        checker.onProbeResult(0, false, i);
    checker.onProbeResult(0, true, 4);
    checker.onProbeResult(0, false, 5); // streak broken
    checker.onProbeResult(0, true, 6);
    EXPECT_EQ(checker.onProbeResult(0, true, 7),
              HealthChecker::Transition::Readmit);
}

TEST(HealthCheckerTest, EjectAndReadmitCycleRepeats)
{
    HealthChecker checker(twoOfThree(), 1);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            checker.onProbeResult(0, false, i);
        EXPECT_TRUE(checker.ejected(0));
        checker.onProbeResult(0, true, 10);
        checker.onProbeResult(0, true, 11);
        EXPECT_FALSE(checker.ejected(0));
    }
    EXPECT_EQ(checker.stats().ejections, 3u);
    EXPECT_EQ(checker.stats().readmissions, 3u);
}

TEST(HealthCheckerTest, NodesAreIndependent)
{
    HealthChecker checker(twoOfThree(), 3);
    for (int i = 0; i < 3; ++i) {
        checker.onProbeResult(1, false, i);
        checker.onProbeResult(2, true, i);
    }
    EXPECT_FALSE(checker.ejected(0));
    EXPECT_TRUE(checker.ejected(1));
    EXPECT_FALSE(checker.ejected(2));
    EXPECT_EQ(checker.nodeCount(), 3u);
}

} // namespace
} // namespace jasim
