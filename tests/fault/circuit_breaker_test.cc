#include <gtest/gtest.h>

#include "fault/circuit_breaker.h"

namespace jasim {
namespace {

CircuitBreakerConfig
smallBreaker()
{
    CircuitBreakerConfig config;
    config.failure_threshold = 3;
    config.open_s = 1.0;
    config.half_open_successes = 2;
    return config;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold)
{
    CircuitBreaker breaker(smallBreaker());
    EXPECT_TRUE(breaker.allowRequest(0));
    breaker.recordFailure(0);
    breaker.recordFailure(1);
    EXPECT_EQ(breaker.state(2), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(2));
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak)
{
    CircuitBreaker breaker(smallBreaker());
    breaker.recordFailure(0);
    breaker.recordFailure(1);
    breaker.recordSuccess(2);
    breaker.recordFailure(3);
    breaker.recordFailure(4);
    EXPECT_EQ(breaker.state(5), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures)
{
    CircuitBreaker breaker(smallBreaker());
    breaker.recordFailure(0);
    breaker.recordFailure(1);
    breaker.recordFailure(2);
    EXPECT_EQ(breaker.state(3), CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allowRequest(3));
    EXPECT_EQ(breaker.stats().opens, 1u);
    EXPECT_EQ(breaker.stats().rejected, 1u);
}

TEST(CircuitBreakerTest, HalfOpenAfterHoldoffAdmitsOneProbe)
{
    CircuitBreaker breaker(smallBreaker());
    for (int i = 0; i < 3; ++i)
        breaker.recordFailure(0);
    EXPECT_FALSE(breaker.allowRequest(secs(0.5)));
    EXPECT_EQ(breaker.state(secs(1.5)),
              CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(breaker.allowRequest(secs(1.5)));  // the probe
    EXPECT_FALSE(breaker.allowRequest(secs(1.6))); // probe in flight
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens)
{
    CircuitBreaker breaker(smallBreaker());
    for (int i = 0; i < 3; ++i)
        breaker.recordFailure(0);
    ASSERT_TRUE(breaker.allowRequest(secs(1.5)));
    breaker.recordFailure(secs(1.6));
    EXPECT_EQ(breaker.state(secs(1.7)), CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allowRequest(secs(2.0)));
    // The hold-off restarts from the re-trip.
    EXPECT_TRUE(breaker.allowRequest(secs(2.7)));
    EXPECT_EQ(breaker.stats().opens, 2u);
}

TEST(CircuitBreakerTest, HalfOpenSuccessStreakCloses)
{
    CircuitBreaker breaker(smallBreaker());
    for (int i = 0; i < 3; ++i)
        breaker.recordFailure(0);
    ASSERT_TRUE(breaker.allowRequest(secs(1.5)));
    breaker.recordSuccess(secs(1.6));
    EXPECT_EQ(breaker.state(secs(1.6)),
              CircuitBreaker::State::HalfOpen);
    ASSERT_TRUE(breaker.allowRequest(secs(1.7)));
    breaker.recordSuccess(secs(1.8));
    EXPECT_EQ(breaker.state(secs(1.8)), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(secs(1.9)));
    EXPECT_EQ(breaker.stats().closes, 1u);
    // Not-closed time covers trip (t=0) to close (t=1.8).
    EXPECT_EQ(breaker.stats().open_us, secs(1.8));
}

TEST(CircuitBreakerTest, ReTripDoesNotRestartOpenAccounting)
{
    CircuitBreaker breaker(smallBreaker());
    for (int i = 0; i < 3; ++i)
        breaker.recordFailure(secs(1.0));
    ASSERT_TRUE(breaker.allowRequest(secs(2.5)));
    breaker.recordFailure(secs(2.5)); // half-open probe fails
    ASSERT_TRUE(breaker.allowRequest(secs(4.0)));
    breaker.recordSuccess(secs(4.0));
    ASSERT_TRUE(breaker.allowRequest(secs(4.5)));
    breaker.recordSuccess(secs(4.5));
    // One continuous not-closed window: 1.0 .. 4.5.
    EXPECT_EQ(breaker.stats().open_us, secs(3.5));
    EXPECT_EQ(breaker.stats().opens, 2u);
    EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreakerTest, StateNamesAreStable)
{
    EXPECT_STREQ(circuitStateName(CircuitBreaker::State::Closed),
                 "closed");
    EXPECT_STREQ(circuitStateName(CircuitBreaker::State::Open),
                 "open");
    EXPECT_STREQ(circuitStateName(CircuitBreaker::State::HalfOpen),
                 "half-open");
}

} // namespace
} // namespace jasim
