#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/schedule.h"

namespace jasim {
namespace {

TEST(FaultScheduleTest, EmptySpecYieldsEmptySchedule)
{
    EXPECT_TRUE(FaultSchedule::parse("").empty());
    EXPECT_TRUE(FaultSchedule::parse("   \t ").empty());
    EXPECT_TRUE(FaultSchedule::parse(" ; ; ").empty());
}

TEST(FaultScheduleTest, ParsesCrashWithRestart)
{
    const FaultSchedule s =
        FaultSchedule::parse("crash@60:node=0,restart=30");
    ASSERT_EQ(s.size(), 1u);
    const FaultEvent &e = s.events()[0];
    EXPECT_EQ(e.kind, FaultKind::NodeCrash);
    EXPECT_EQ(e.at, secs(60.0));
    EXPECT_EQ(e.node, 0u);
    EXPECT_EQ(e.restart_after, secs(30.0));
}

TEST(FaultScheduleTest, CrashWithoutRestartStaysDown)
{
    const FaultSchedule s = FaultSchedule::parse("crash@5:node=2");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].restart_after, 0u);
}

TEST(FaultScheduleTest, ParsesDegradeWithAllFields)
{
    const FaultSchedule s = FaultSchedule::parse(
        "degrade@90:node=1,lat=4,drop=0.05,dur=20");
    ASSERT_EQ(s.size(), 1u);
    const FaultEvent &e = s.events()[0];
    EXPECT_EQ(e.kind, FaultKind::LinkDegrade);
    EXPECT_EQ(e.at, secs(90.0));
    EXPECT_EQ(e.node, 1u);
    EXPECT_DOUBLE_EQ(e.latency_mult, 4.0);
    EXPECT_DOUBLE_EQ(e.drop_probability, 0.05);
    EXPECT_EQ(e.duration, secs(20.0));
}

TEST(FaultScheduleTest, DegradeDefaultsToAllNodesAndForever)
{
    const FaultSchedule s = FaultSchedule::parse("degrade@1:lat=2");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].node, FaultEvent::kAllNodes);
    EXPECT_EQ(s.events()[0].duration, 0u);
    EXPECT_EQ(FaultSchedule::parse("degrade@1:node=all,lat=2")
                  .events()[0]
                  .node,
              FaultEvent::kAllNodes);
}

TEST(FaultScheduleTest, ParsesDbSlowAndPoolKill)
{
    const FaultSchedule s = FaultSchedule::parse(
        "dbslow@120:mult=8,dur=30;poolkill@150:node=0");
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::DbSlow);
    EXPECT_DOUBLE_EQ(s.events()[0].disk_mult, 8.0);
    EXPECT_EQ(s.events()[0].duration, secs(30.0));
    EXPECT_EQ(s.events()[1].kind, FaultKind::PoolKill);
    EXPECT_EQ(s.events()[1].node, 0u);
}

TEST(FaultScheduleTest, EventsSortByTimeStableOnTies)
{
    const FaultSchedule s = FaultSchedule::parse(
        "dbslow@30:mult=2;crash@10:node=0;poolkill@30:node=1");
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::NodeCrash);
    // Same-time events keep spec order: dbslow was written first.
    EXPECT_EQ(s.events()[1].kind, FaultKind::DbSlow);
    EXPECT_EQ(s.events()[2].kind, FaultKind::PoolKill);
}

TEST(FaultScheduleTest, FractionalTimesAndWhitespaceAccepted)
{
    const FaultSchedule s =
        FaultSchedule::parse(" crash@0.5 : node=1 , restart=0.25 ");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].at, secs(0.5));
    EXPECT_EQ(s.events()[0].restart_after, secs(0.25));
}

TEST(FaultScheduleTest, SummaryJoinsDescriptions)
{
    const FaultSchedule s = FaultSchedule::parse(
        "crash@60:node=0,restart=30;dbslow@120:mult=8");
    EXPECT_EQ(s.summary(),
              "crash@60s node=0 restart=30s; dbslow@120s mult=8x");
}

TEST(FaultScheduleTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultSchedule::parse("explode@10:node=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash:node=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash@abc:node=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash@-5:node=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash@10"), // missing node
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("poolkill@10"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash@10:node=0,bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("crash@10:node"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("degrade@10:lat=0.5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("degrade@10:drop=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbslow@10:mult=0.5"),
                 std::invalid_argument);
    // Keys are kind-scoped: restart only applies to crash.
    EXPECT_THROW(FaultSchedule::parse("dbslow@10:restart=5"),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, DescribeNamesEveryKind)
{
    EXPECT_STREQ(faultKindName(FaultKind::NodeCrash), "crash");
    EXPECT_STREQ(faultKindName(FaultKind::LinkDegrade), "degrade");
    EXPECT_STREQ(faultKindName(FaultKind::DbSlow), "dbslow");
    EXPECT_STREQ(faultKindName(FaultKind::PoolKill), "poolkill");
    EXPECT_STREQ(faultKindName(FaultKind::DbCrash), "dbcrash");
    EXPECT_STREQ(faultKindName(FaultKind::DbTornWrite), "tornwrite");
}

TEST(FaultScheduleTest, ParsesDbCrashAndTornWrite)
{
    const FaultSchedule s = FaultSchedule::parse(
        "dbcrash@60:restart=2;tornwrite@80:restart=1.5");
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::DbCrash);
    EXPECT_EQ(s.events()[0].at, secs(60.0));
    EXPECT_EQ(s.events()[0].restart_after, secs(2.0));
    EXPECT_EQ(s.events()[1].kind, FaultKind::DbTornWrite);
    EXPECT_EQ(s.events()[1].restart_after, secs(1.5));
    EXPECT_TRUE(s.hasDbFault());
}

TEST(FaultScheduleTest, DbVerbsNeedNoNode)
{
    // The DB tier is shared: the verbs take no node= key.
    const FaultSchedule s = FaultSchedule::parse("dbcrash@10");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].restart_after, 0u); // stays down
}

TEST(FaultScheduleTest, HasDbFaultFalseWithoutDbVerbs)
{
    EXPECT_FALSE(FaultSchedule::parse("").hasDbFault());
    EXPECT_FALSE(FaultSchedule::parse("crash@10:node=0,restart=5")
                     .hasDbFault());
    EXPECT_FALSE(
        FaultSchedule::parse("dbslow@10:mult=4").hasDbFault());
}

TEST(FaultScheduleTest, RejectsMalformedDbVerbs)
{
    EXPECT_THROW(FaultSchedule::parse("dbcrash@10:restart=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("tornwrite@10:restart="),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbcrash@abc:restart=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbcrash@-3"),
                 std::invalid_argument);
    // Keys are kind-scoped: dbcrash has no duration or node.
    EXPECT_THROW(FaultSchedule::parse("dbcrash@10:dur=5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("tornwrite@10:node=0"),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, ParsesShardScopedDbCrash)
{
    const FaultSchedule s =
        FaultSchedule::parse("dbcrash@60:shard=1,restart=2");
    ASSERT_EQ(s.size(), 1u);
    const FaultEvent &e = s.events()[0];
    EXPECT_EQ(e.kind, FaultKind::DbCrash);
    EXPECT_EQ(e.shard, 1u);
    EXPECT_EQ(e.replica, FaultEvent::kNoTarget); // primary by default
    EXPECT_EQ(e.restart_after, secs(2.0));
    EXPECT_TRUE(s.hasDbFault());
}

TEST(FaultScheduleTest, ShardDefaultsToUnspecified)
{
    // No shard key: the injector targets shard 0 (and the legacy
    // single-box tier ignores the scoping entirely).
    const FaultSchedule s = FaultSchedule::parse("dbcrash@60");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].shard, FaultEvent::kNoTarget);
    EXPECT_EQ(s.events()[0].replica, FaultEvent::kNoTarget);
}

TEST(FaultScheduleTest, ParsesReplicaScopedDbCrash)
{
    const FaultSchedule s = FaultSchedule::parse(
        "dbcrash@60:shard=1,replica=0,restart=5");
    ASSERT_EQ(s.size(), 1u);
    const FaultEvent &e = s.events()[0];
    EXPECT_EQ(e.shard, 1u);
    EXPECT_EQ(e.replica, 0u);
    EXPECT_EQ(e.restart_after, secs(5.0));
}

TEST(FaultScheduleTest, TornWriteTakesShardButNotReplica)
{
    // A torn write is a primary WAL-device event: shard= scopes it,
    // replica= is meaningless and rejected.
    const FaultSchedule s =
        FaultSchedule::parse("tornwrite@80:shard=2,restart=1");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].shard, 2u);
    EXPECT_THROW(FaultSchedule::parse("tornwrite@80:replica=0"),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, ShardAndReplicaKeysAreKindScoped)
{
    EXPECT_THROW(FaultSchedule::parse("crash@10:node=0,shard=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbslow@10:mult=2,shard=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("degrade@10:lat=2,replica=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("poolkill@10:node=0,shard=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbcrash@10:shard=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("dbcrash@10:replica="),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, DescribeCarriesShardAndReplicaScope)
{
    EXPECT_EQ(FaultSchedule::parse("dbcrash@60:shard=1,restart=2")
                  .summary(),
              "dbcrash@60s shard=1 restart=2s");
    EXPECT_EQ(
        FaultSchedule::parse("dbcrash@60:shard=1,replica=0,restart=5")
            .summary(),
        "dbcrash@60s shard=1 replica=0 restart=5s");
}

TEST(FaultScheduleTest, ReplicaCrashStillCountsAsDbFault)
{
    // hasDbFault() stays honest under scoping: a replica-only crash
    // is still a DB-tier event (the cluster arms audit/recovery).
    EXPECT_TRUE(FaultSchedule::parse("dbcrash@5:shard=0,replica=0")
                    .hasDbFault());
}

TEST(FaultScheduleTest, MixedVerbsSortStablyByTime)
{
    // Distinct shards: same-time DB verbs on one shard would trip the
    // already-down validation.
    const FaultSchedule s = FaultSchedule::parse(
        "tornwrite@30:restart=1;crash@10:node=0,restart=5;"
        "dbcrash@30:shard=1,restart=1");
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::NodeCrash);
    // Same-time events keep spec order: tornwrite was written first.
    EXPECT_EQ(s.events()[1].kind, FaultKind::DbTornWrite);
    EXPECT_EQ(s.events()[2].kind, FaultKind::DbCrash);
}

// ---- partition / switchover verbs ----

TEST(FaultScheduleTest, ParsesPartitionWithSides)
{
    const FaultSchedule s = FaultSchedule::parse(
        "partition@60:sides=0,1,db0|2,db0.0,dur=20");
    ASSERT_EQ(s.size(), 1u);
    const FaultEvent &e = s.events()[0];
    EXPECT_EQ(e.kind, FaultKind::Partition);
    EXPECT_EQ(e.at, secs(60.0));
    EXPECT_EQ(e.duration, secs(20.0));
    ASSERT_EQ(e.sides.size(), 2u);
    ASSERT_EQ(e.sides[0].size(), 3u);
    EXPECT_EQ(e.sides[0][0], NetEndpoint::node(0));
    EXPECT_EQ(e.sides[0][1], NetEndpoint::node(1));
    EXPECT_EQ(e.sides[0][2], NetEndpoint::dbPrimary(0));
    ASSERT_EQ(e.sides[1].size(), 2u);
    EXPECT_EQ(e.sides[1][0], NetEndpoint::node(2));
    EXPECT_EQ(e.sides[1][1], NetEndpoint::dbReplica(0, 0));
    EXPECT_TRUE(s.hasPartition());
    EXPECT_FALSE(s.hasSwitchover());
    EXPECT_FALSE(s.hasDbFault());
}

TEST(FaultScheduleTest, PartitionWithoutDurIsPermanent)
{
    const FaultSchedule s =
        FaultSchedule::parse("partition@10:sides=0|db0.0");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].duration, 0u);
}

TEST(FaultScheduleTest, ParsesSwitchover)
{
    const FaultSchedule s =
        FaultSchedule::parse("switchover@45:shard=1");
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::Switchover);
    EXPECT_EQ(s.events()[0].shard, 1u);
    EXPECT_TRUE(s.hasSwitchover());
    EXPECT_FALSE(s.hasPartition());

    // shard= may be omitted; the cluster defaults it to shard 0.
    const FaultSchedule d = FaultSchedule::parse("switchover@45");
    EXPECT_EQ(d.events()[0].shard, FaultEvent::kNoTarget);
}

TEST(FaultScheduleTest, RejectsMalformedPartitionSpecs)
{
    // sides= is mandatory.
    EXPECT_THROW(FaultSchedule::parse("partition@60:dur=5"),
                 std::invalid_argument);
    // At least two sides.
    EXPECT_THROW(FaultSchedule::parse("partition@60:sides=0,1"),
                 std::invalid_argument);
    // No empty side.
    EXPECT_THROW(FaultSchedule::parse("partition@60:sides=0|"),
                 std::invalid_argument);
    // Endpoint grammar: nodes take no suffix, db wants digits.
    EXPECT_THROW(FaultSchedule::parse("partition@60:sides=0.1|db0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("partition@60:sides=dbx|0"),
                 std::invalid_argument);
    // An endpoint cannot sit on both sides of a split.
    EXPECT_THROW(
        FaultSchedule::parse("partition@60:sides=0,db0|db0,1"),
        std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("partition@60:sides=0,0|1"),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, PartitionAndSwitchoverKeysAreKindScoped)
{
    // sides= belongs to partition alone.
    EXPECT_THROW(FaultSchedule::parse("crash@5:node=0,sides=0|1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("switchover@5:sides=0|1"),
                 std::invalid_argument);
    // switchover takes shard= but not node=, restart=, or replica=.
    EXPECT_THROW(FaultSchedule::parse("switchover@5:node=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("switchover@5:restart=2"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("switchover@5:replica=0"),
                 std::invalid_argument);
    // partition takes dur= but not shard= or restart=.
    EXPECT_THROW(
        FaultSchedule::parse("partition@5:sides=0|1,shard=0"),
        std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule::parse("partition@5:sides=0|1,restart=2"),
        std::invalid_argument);
}

TEST(FaultScheduleTest, DescribeCarriesSidesAndSwitchoverShard)
{
    const FaultSchedule s = FaultSchedule::parse(
        "partition@60:sides=0,db0|1,db0.1,dur=20;switchover@90:shard=2");
    EXPECT_EQ(s.events()[0].describe(),
              "partition@60s sides=0,db0|1,db0.1 dur=20s");
    EXPECT_EQ(s.events()[1].describe(), "switchover@90s shard=2");
    EXPECT_NE(s.summary().find("partition@60s"), std::string::npos);
}

// ---- whole-schedule validation ----

TEST(FaultScheduleTest, RejectsExactDuplicateEvents)
{
    EXPECT_THROW(FaultSchedule::parse(
                     "crash@10:node=2,restart=5;crash@10:node=2"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse(
                     "switchover@30:shard=1;switchover@30:shard=1"),
                 std::invalid_argument);
    // Same time, different target: fine.
    EXPECT_NO_THROW(FaultSchedule::parse(
        "crash@10:node=1,restart=5;crash@10:node=2,restart=5"));
}

TEST(FaultScheduleTest, RejectsVerbsAgainstDownNode)
{
    // Inside the [at, at+restart) window.
    EXPECT_THROW(FaultSchedule::parse(
                     "crash@10:node=0,restart=30;poolkill@20:node=0"),
                 std::invalid_argument);
    // A restart-less crash keeps the node down forever.
    EXPECT_THROW(FaultSchedule::parse(
                     "crash@10:node=0;crash@500:node=0"),
                 std::invalid_argument);
    // After the restart: fine.
    EXPECT_NO_THROW(FaultSchedule::parse(
        "crash@10:node=0,restart=5;poolkill@20:node=0"));
    // Different node: fine.
    EXPECT_NO_THROW(FaultSchedule::parse(
        "crash@10:node=0,restart=30;poolkill@20:node=1"));
}

TEST(FaultScheduleTest, RejectsVerbsAgainstDownShard)
{
    EXPECT_THROW(FaultSchedule::parse(
                     "dbcrash@10:shard=1,restart=30;"
                     "switchover@20:shard=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse(
                     "dbcrash@10:restart=30;tornwrite@20:restart=1"),
                 std::invalid_argument);
    // A downed replica does not block a primary-side verb.
    EXPECT_NO_THROW(FaultSchedule::parse(
        "dbcrash@10:shard=1,replica=0,restart=30;"
        "switchover@20:shard=1"));
    // But the same replica twice inside its window is rejected.
    EXPECT_THROW(FaultSchedule::parse(
                     "dbcrash@10:shard=1,replica=0,restart=30;"
                     "dbcrash@20:shard=1,replica=0"),
                 std::invalid_argument);
}

TEST(FaultScheduleTest, RejectsOverlappingPartitionWindows)
{
    EXPECT_THROW(FaultSchedule::parse(
                     "partition@10:sides=0|1,dur=30;"
                     "partition@20:sides=0|2,dur=5"),
                 std::invalid_argument);
    // A permanent partition blocks any later one.
    EXPECT_THROW(FaultSchedule::parse(
                     "partition@10:sides=0|1;"
                     "partition@900:sides=0|2,dur=5"),
                 std::invalid_argument);
    // Sequential windows are fine.
    EXPECT_NO_THROW(FaultSchedule::parse(
        "partition@10:sides=0|1,dur=5;partition@20:sides=0|2,dur=5"));
}

} // namespace
} // namespace jasim
