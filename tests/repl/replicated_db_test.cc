#include <gtest/gtest.h>

#include "repl/replicated_db.h"

namespace jasim::repl {
namespace {

/** A small shard group; replica count set per test. */
class ShardGroupTest : public ::testing::Test
{
  protected:
    ShardGroupConfig
    smallConfig(std::size_t replicas, bool sync = false)
    {
        ShardGroupConfig config;
        config.injection_rate = 1.0; // tiny population
        config.replicas = replicas;
        config.sync = sync;
        return config;
    }

    /**
     * Run one write txn, confirm its force durable, and ship the
     * window — the cluster's commit path, condensed.
     */
    TxnDbOutcome commitAndShip(ShardGroup &group)
    {
        const TxnDbOutcome outcome =
            group.application().runTransaction(RequestType::Purchase);
        EXPECT_GT(outcome.wal_issued_lsn, 0u);
        group.database().confirmWalDurable(outcome.wal_issued_lsn);
        group.shipForced(outcome.wal_issued_lsn,
                         outcome.cost.log_bytes_forced);
        return outcome;
    }

    void settle() { queue_.runUntil(queue_.now() + secs(10.0)); }

    EventQueue queue_;
};

TEST_F(ShardGroupTest, AuditAndRecoveryAlwaysArmed)
{
    ShardGroup group(queue_, smallConfig(0), 42);
    EXPECT_TRUE(group.application().auditEnabled());
    const TxnDbOutcome outcome =
        group.application().runTransaction(RequestType::Purchase);
    EXPECT_GT(outcome.audit_token, 0u);
}

TEST_F(ShardGroupTest, ShipFansOutToEveryReplica)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    ASSERT_EQ(group.replicaCount(), 2u);
    const TxnDbOutcome outcome = commitAndShip(group);
    settle();
    EXPECT_EQ(group.replica(0).durableLsn(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.replica(1).durableLsn(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.maxLiveReplicaDurable(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.minReplicaDurable(), outcome.wal_issued_lsn);
}

TEST_F(ShardGroupTest, AckImmediateWithoutReplicas)
{
    ShardGroup group(queue_, smallConfig(0), 42);
    bool acked = false;
    group.whenAckDurable(123, [&] { acked = true; });
    EXPECT_TRUE(acked); // nothing to wait for
}

TEST_F(ShardGroupTest, SyncAckWaitsForReplicaDurability)
{
    ShardGroup group(queue_, smallConfig(1, /*sync=*/true), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn, [&] { acked = true; });
    EXPECT_FALSE(acked); // window still crossing link + replica disk
    settle();
    EXPECT_TRUE(acked);
    EXPECT_GT(group.ackWaits(), 0u);
}

TEST_F(ShardGroupTest, BlackoutDropsPendingAckWaiters)
{
    ShardGroup group(queue_, smallConfig(1, /*sync=*/true), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn, [&] { acked = true; });
    const std::uint64_t generation = group.generation();
    group.beginBlackout();
    EXPECT_TRUE(group.down());
    EXPECT_GT(group.generation(), generation);
    settle();
    EXPECT_FALSE(acked); // waiter died with the blackout
    group.endBlackout();
    EXPECT_FALSE(group.down());
}

TEST_F(ShardGroupTest, MostCaughtUpReplicaWinsPromotion)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    const TxnDbOutcome first = commitAndShip(group);
    settle();
    // Crash replica 0, commit more: only replica 1 advances.
    group.replica(0).crash();
    const TxnDbOutcome later = commitAndShip(group);
    settle();
    EXPECT_TRUE(group.anyLiveReplica());
    EXPECT_EQ(group.mostCaughtUpReplica(), 1u);
    EXPECT_EQ(group.maxLiveReplicaDurable(), later.wal_issued_lsn);
    // The dead replica pins the truncation floor at its last durable
    // watermark until it restarts (a restart resets it and resilvers
    // from the stream), so the log it still needs is never truncated.
    EXPECT_EQ(group.minReplicaDurable(), first.wal_issued_lsn);
}

TEST_F(ShardGroupTest, TruncationFloorFollowsMinReplicaDurable)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    for (int i = 0; i < 30; ++i)
        commitAndShip(group);
    settle();
    const std::uint64_t durable = group.replica(0).durableLsn();
    EXPECT_GT(durable, 0u);
    // A checkpoint may truncate only what the standby already holds:
    // everything at or below the floor, nothing above it.
    group.database().checkpoint();
    EXPECT_LE(group.database().wal().truncatedUpTo(), durable);
}

TEST_F(ShardGroupTest, ResyncClampsEveryLiveStream)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    settle();
    const std::uint64_t watermark = outcome.wal_issued_lsn / 2;
    group.resyncReplicas(watermark);
    EXPECT_LE(group.replica(0).durableLsn(), watermark);
    EXPECT_LE(group.replica(1).durableLsn(), watermark);
}

} // namespace
} // namespace jasim::repl
