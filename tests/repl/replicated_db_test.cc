#include <gtest/gtest.h>

#include "repl/replicated_db.h"

namespace jasim::repl {
namespace {

/** A small shard group; replica count set per test. */
class ShardGroupTest : public ::testing::Test
{
  protected:
    ShardGroupConfig
    smallConfig(std::size_t replicas, bool sync = false)
    {
        ShardGroupConfig config;
        config.injection_rate = 1.0; // tiny population
        config.replicas = replicas;
        config.sync = sync;
        return config;
    }

    /**
     * Run one write txn, confirm its force durable, and ship the
     * window — the cluster's commit path, condensed.
     */
    TxnDbOutcome commitAndShip(ShardGroup &group)
    {
        const TxnDbOutcome outcome =
            group.application().runTransaction(RequestType::Purchase);
        EXPECT_GT(outcome.wal_issued_lsn, 0u);
        group.database().confirmWalDurable(outcome.wal_issued_lsn);
        group.shipForced(outcome.wal_issued_lsn,
                         outcome.cost.log_bytes_forced);
        return outcome;
    }

    void settle() { queue_.runUntil(queue_.now() + secs(10.0)); }

    EventQueue queue_;
};

TEST_F(ShardGroupTest, AuditAndRecoveryAlwaysArmed)
{
    ShardGroup group(queue_, smallConfig(0), 42);
    EXPECT_TRUE(group.application().auditEnabled());
    const TxnDbOutcome outcome =
        group.application().runTransaction(RequestType::Purchase);
    EXPECT_GT(outcome.audit_token, 0u);
}

TEST_F(ShardGroupTest, ShipFansOutToEveryReplica)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    ASSERT_EQ(group.replicaCount(), 2u);
    const TxnDbOutcome outcome = commitAndShip(group);
    settle();
    EXPECT_EQ(group.replica(0).durableLsn(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.replica(1).durableLsn(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.maxLiveReplicaDurable(), outcome.wal_issued_lsn);
    EXPECT_EQ(group.minReplicaDurable(), outcome.wal_issued_lsn);
}

TEST_F(ShardGroupTest, AckImmediateWithoutReplicas)
{
    ShardGroup group(queue_, smallConfig(0), 42);
    bool acked = false;
    group.whenAckDurable(123, [&] { acked = true; });
    EXPECT_TRUE(acked); // nothing to wait for
}

TEST_F(ShardGroupTest, SyncAckWaitsForReplicaDurability)
{
    ShardGroup group(queue_, smallConfig(1, /*sync=*/true), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn, [&] { acked = true; });
    EXPECT_FALSE(acked); // window still crossing link + replica disk
    settle();
    EXPECT_TRUE(acked);
    EXPECT_GT(group.ackWaits(), 0u);
}

TEST_F(ShardGroupTest, BlackoutDropsPendingAckWaiters)
{
    ShardGroup group(queue_, smallConfig(1, /*sync=*/true), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn, [&] { acked = true; });
    const std::uint64_t generation = group.generation();
    group.beginBlackout();
    EXPECT_TRUE(group.down());
    EXPECT_GT(group.generation(), generation);
    settle();
    EXPECT_FALSE(acked); // waiter died with the blackout
    group.endBlackout();
    EXPECT_FALSE(group.down());
}

TEST_F(ShardGroupTest, MostCaughtUpReplicaWinsPromotion)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    const TxnDbOutcome first = commitAndShip(group);
    settle();
    // Crash replica 0, commit more: only replica 1 advances.
    group.replica(0).crash();
    const TxnDbOutcome later = commitAndShip(group);
    settle();
    EXPECT_TRUE(group.anyLiveReplica());
    EXPECT_EQ(group.mostCaughtUpReplica(), 1u);
    EXPECT_EQ(group.maxLiveReplicaDurable(), later.wal_issued_lsn);
    // The dead replica pins the truncation floor at its last durable
    // watermark until it restarts (a restart resets it and resilvers
    // from the stream), so the log it still needs is never truncated.
    EXPECT_EQ(group.minReplicaDurable(), first.wal_issued_lsn);
}

TEST_F(ShardGroupTest, TruncationFloorFollowsMinReplicaDurable)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    for (int i = 0; i < 30; ++i)
        commitAndShip(group);
    settle();
    const std::uint64_t durable = group.replica(0).durableLsn();
    EXPECT_GT(durable, 0u);
    // A checkpoint may truncate only what the standby already holds:
    // everything at or below the floor, nothing above it.
    group.database().checkpoint();
    EXPECT_LE(group.database().wal().truncatedUpTo(), durable);
}

TEST_F(ShardGroupTest, ResyncClampsEveryLiveStream)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    const TxnDbOutcome outcome = commitAndShip(group);
    settle();
    const std::uint64_t watermark = outcome.wal_issued_lsn / 2;
    group.resyncReplicas(watermark);
    EXPECT_LE(group.replica(0).durableLsn(), watermark);
    EXPECT_LE(group.replica(1).durableLsn(), watermark);
}

// ---- lease / quorum acks ----

TEST_F(ShardGroupTest, UnleasedGroupAcksOnAnySingleReplica)
{
    ShardGroup group(queue_, smallConfig(3, /*sync=*/true), 42);
    group.replica(1).crash();
    group.replica(2).crash();
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn,
                         [&] { acked = true; });
    settle();
    EXPECT_TRUE(acked); // one surviving replica suffices
}

TEST_F(ShardGroupTest, LeasedSyncAcksNeedADurabilityQuorum)
{
    // R=3: members 4, majority 3, so a sync ack needs 2 replicas
    // durable — any promoted majority then intersects the ack set.
    ShardGroup group(queue_, smallConfig(3, /*sync=*/true), 42);
    group.armLease(LeaseConfig{}, [](std::size_t) { return true; });
    EXPECT_TRUE(group.leaseArmed());
    EXPECT_EQ(group.lease().quorumAcks(), 2u);

    group.replica(1).crash();
    group.replica(2).crash();
    const TxnDbOutcome outcome = commitAndShip(group);
    bool acked = false;
    group.whenAckDurable(outcome.wal_issued_lsn,
                         [&] { acked = true; });
    settle();
    EXPECT_FALSE(acked); // one durable replica is not a quorum
    EXPECT_EQ(group.ackWaits(), 1u);

    // A second replica resilvers and receives the window: quorum.
    group.replica(1).restart();
    group.shipForced(outcome.wal_issued_lsn,
                     outcome.cost.log_bytes_forced);
    settle();
    EXPECT_TRUE(acked);
}

TEST_F(ShardGroupTest, HeartbeatsRenewTheLeaseWhileReachable)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    auto reachable = std::make_shared<bool>(true);
    LeaseConfig lease;
    lease.lease_s = 2.0;
    lease.renew_s = 0.5;
    group.armLease(lease,
                   [reachable](std::size_t) { return *reachable; });
    group.startLease();
    EXPECT_TRUE(group.leaseValid());

    queue_.runUntil(secs(10.0));
    // Well past the initial grant: only renewals keep it alive.
    EXPECT_TRUE(group.leaseValid());
    EXPECT_GT(group.lease().renewals(), 2u);
    EXPECT_GT(group.heartbeatsSent(), 0u);
    EXPECT_EQ(group.lease().lapses(), 0u);
}

TEST_F(ShardGroupTest, LeaseLapsesWhenReplicasBecomeUnreachable)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    auto reachable = std::make_shared<bool>(true);
    LeaseConfig lease;
    lease.lease_s = 2.0;
    lease.renew_s = 0.5;
    group.armLease(lease,
                   [reachable](std::size_t) { return *reachable; });
    group.startLease();
    queue_.runUntil(secs(5.0));
    ASSERT_TRUE(group.leaseValid());

    *reachable = false; // the partition opens
    queue_.runUntil(secs(10.0));
    EXPECT_FALSE(group.leaseValid()); // no majority, no renewal
    EXPECT_GE(group.lease().lapses(), 1u);
    EXPECT_GT(group.heartbeatsBlocked(), 0u);

    *reachable = true; // heal: heartbeats resume, the lease returns
    queue_.runUntil(secs(15.0));
    EXPECT_TRUE(group.leaseValid());
}

TEST_F(ShardGroupTest, UnleasedGroupIsAlwaysLeaseValid)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    EXPECT_FALSE(group.leaseArmed());
    EXPECT_TRUE(group.leaseValid());
    queue_.runUntil(secs(60.0));
    EXPECT_TRUE(group.leaseValid());
    EXPECT_EQ(group.heartbeatsSent(), 0u); // no heartbeat traffic
}

// ---- drain ----

TEST_F(ShardGroupTest, DrainWaitsForEveryInflightTxn)
{
    ShardGroup group(queue_, smallConfig(1), 42);
    group.inflightBegin();
    group.inflightBegin();
    EXPECT_EQ(group.inflight(), 2u);

    bool drained = false;
    group.whenDrained([&] { drained = true; });
    EXPECT_FALSE(drained);
    group.inflightEnd();
    EXPECT_FALSE(drained); // one still in flight
    group.inflightEnd();
    EXPECT_TRUE(drained);
    EXPECT_EQ(group.inflight(), 0u);

    // An idle shard drains immediately.
    bool again = false;
    group.whenDrained([&] { again = true; });
    EXPECT_TRUE(again);
}

TEST_F(ShardGroupTest, FenceReplicasRaisesEveryStream)
{
    ShardGroup group(queue_, smallConfig(2), 42);
    group.fenceReplicas(7);
    EXPECT_EQ(group.replica(0).fenceToken(), 7u);
    EXPECT_EQ(group.replica(1).fenceToken(), 7u);
    EXPECT_EQ(group.fencedWindows(), 0u);
}

} // namespace
} // namespace jasim::repl
