#include <gtest/gtest.h>

#include "repl/shard_map.h"

namespace jasim::repl {
namespace {

TEST(ShardMapTest, SingleShardOwnsEverything)
{
    const ShardMap map(1);
    EXPECT_EQ(map.shardCount(), 1u);
    EXPECT_EQ(map.shardOf(0), 0u);
    EXPECT_EQ(map.shardOf(~0ull), 0u);
    EXPECT_EQ(map.rangeBegin(0), 0u);
    EXPECT_EQ(map.rangeEnd(0), 0u); // wrap sentinel: top of key space
}

TEST(ShardMapTest, ZeroClampsToOne)
{
    const ShardMap map(0);
    EXPECT_EQ(map.shardCount(), 1u);
}

TEST(ShardMapTest, RangesAreContiguousAndExhaustive)
{
    for (const std::size_t shards : {2u, 3u, 5u, 8u, 64u}) {
        const ShardMap map(shards);
        EXPECT_EQ(map.rangeBegin(0), 0u);
        for (std::size_t s = 0; s + 1 < shards; ++s)
            EXPECT_EQ(map.rangeEnd(s), map.rangeBegin(s + 1))
                << shards << " shards, boundary " << s;
        EXPECT_EQ(map.rangeEnd(shards - 1), 0u);
    }
}

TEST(ShardMapTest, ShardOfMatchesItsRange)
{
    const ShardMap map(5);
    for (std::size_t s = 0; s < 5; ++s) {
        const std::uint64_t begin = map.rangeBegin(s);
        EXPECT_EQ(map.shardOf(begin), s) << "range begin, shard " << s;
        const std::uint64_t end = map.rangeEnd(s);
        const std::uint64_t last = (end == 0 ? ~0ull : end - 1);
        EXPECT_EQ(map.shardOf(last), s) << "range last, shard " << s;
    }
}

TEST(ShardMapTest, KeysSpreadNearEvenly)
{
    // The multiplicative map preserves key order, so equidistant
    // probes land near-uniformly across the shard count.
    const ShardMap map(4);
    std::size_t counts[4] = {0, 0, 0, 0};
    const std::uint64_t step = ~0ull / 1000;
    for (std::uint64_t i = 0; i < 1000; ++i)
        ++counts[map.shardOf(i * step)];
    for (const std::size_t c : counts) {
        EXPECT_GT(c, 200u);
        EXPECT_LT(c, 300u);
    }
}

TEST(ShardMapTest, DescribeListsEveryShard)
{
    const ShardMap map(3);
    const std::string text = map.describe();
    EXPECT_NE(text.find("shard 0"), std::string::npos);
    EXPECT_NE(text.find("shard 2"), std::string::npos);
}

} // namespace
} // namespace jasim::repl
