#include <gtest/gtest.h>

#include "repl/failover.h"
#include "repl/replicated_db.h"

namespace jasim::repl {
namespace {

/** Group + controller; commits flow like the cluster's commit path. */
class FailoverTest : public ::testing::Test
{
  protected:
    std::unique_ptr<ShardGroup>
    makeGroup(std::size_t replicas, bool sync = false)
    {
        ShardGroupConfig config;
        config.injection_rate = 1.0;
        config.replicas = replicas;
        config.sync = sync;
        return std::make_unique<ShardGroup>(queue_, config, 42);
    }

    /** Commit one write txn; optionally ship its forced window. */
    TxnDbOutcome commit(ShardGroup &group, bool ship)
    {
        const TxnDbOutcome outcome =
            group.application().runTransaction(RequestType::Purchase);
        EXPECT_GT(outcome.wal_issued_lsn, 0u);
        group.database().confirmWalDurable(outcome.wal_issued_lsn);
        group.auditor().noteCommitted(outcome.audit_token,
                                      outcome.commit_lsn);
        if (ship)
            group.shipForced(outcome.wal_issued_lsn,
                             outcome.cost.log_bytes_forced);
        return outcome;
    }

    void settle() { queue_.runUntil(queue_.now() + secs(30.0)); }

    EventQueue queue_;
    FailoverConfig config_;
};

TEST_F(FailoverTest, RefusesWithoutALiveReplica)
{
    auto group = makeGroup(0);
    FailoverController controller(queue_, config_);
    EXPECT_FALSE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));

    auto replicated = makeGroup(1);
    replicated->replica(0).crash();
    EXPECT_FALSE(controller.primaryCrashed(
        0, *replicated, [](const FailoverOutcome &) {}));
    EXPECT_EQ(controller.failoverCount(), 0u);
}

TEST_F(FailoverTest, PromotesAtTheReplicaDurableWatermark)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);

    const TxnDbOutcome replicated = commit(*group, /*ship=*/true);
    settle();
    const std::uint64_t watermark = group->replica(0).durableLsn();
    ASSERT_EQ(watermark, replicated.wal_issued_lsn);

    // Two more commits the standby never receives.
    commit(*group, /*ship=*/false);
    commit(*group, /*ship=*/false);

    FailoverOutcome outcome;
    ASSERT_TRUE(controller.primaryCrashed(
        0, *group, [&](const FailoverOutcome &o) { outcome = o; }));
    EXPECT_TRUE(group->down()); // blackout until promotion completes
    settle();

    EXPECT_FALSE(group->down());
    EXPECT_EQ(controller.failoverCount(), 1u);
    EXPECT_EQ(outcome.watermark, watermark);
    EXPECT_GT(outcome.stats.discarded_records, 0u); // above-W tail
    // The blackout is nonzero (detection + promotion work) and ends
    // at promoted_at.
    EXPECT_GE(outcome.promoted_at - outcome.crash_at,
              secs(config_.detect_s));
}

TEST_F(FailoverTest, SecondCrashDuringBlackoutIsRefused)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);
    commit(*group, true);
    settle();
    ASSERT_TRUE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));
    EXPECT_FALSE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));
    settle();
    EXPECT_EQ(controller.failoverCount(), 1u);
}

TEST_F(FailoverTest, SyncAckedCommitsSurviveFailover)
{
    auto group = makeGroup(1, /*sync=*/true);
    FailoverController controller(queue_, config_);

    // Sync discipline: ack only after the standby holds the commit.
    for (int i = 0; i < 5; ++i) {
        const TxnDbOutcome outcome = commit(*group, true);
        group->whenAckDurable(outcome.wal_issued_lsn, [&, outcome] {
            group->auditor().noteAcked(outcome.audit_token);
        });
        settle();
    }
    // Unreplicated tail: committed, never shipped, never acked.
    commit(*group, false);

    ASSERT_TRUE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));
    settle();

    const AuditReport audit = group->auditNow();
    EXPECT_EQ(audit.acked_total, 5u);
    EXPECT_EQ(audit.lost_acked, 0u); // the sync guarantee
    EXPECT_EQ(audit.lost_durable, 0u);
    EXPECT_EQ(audit.resurrected, 0u);
    EXPECT_EQ(audit.duplicates, 0u);
}

TEST_F(FailoverTest, AsyncAcksAboveWatermarkAreReportedLost)
{
    auto group = makeGroup(1, /*sync=*/false);
    FailoverController controller(queue_, config_);

    const TxnDbOutcome safe = commit(*group, true);
    group->auditor().noteAcked(safe.audit_token);
    settle();
    // Async discipline acks at the primary's force, before shipping
    // settles: these two are acked but above the future watermark.
    const TxnDbOutcome lost1 = commit(*group, false);
    const TxnDbOutcome lost2 = commit(*group, false);
    group->auditor().noteAcked(lost1.audit_token);
    group->auditor().noteAcked(lost2.audit_token);

    ASSERT_TRUE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));
    settle();

    const AuditReport audit = group->auditNow();
    EXPECT_EQ(audit.lost_acked, 2u); // reported, not hidden
    EXPECT_EQ(audit.resurrected, 0u);
}

TEST_F(FailoverTest, ShardKeepsServingOnThePromotedTimeline)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);
    commit(*group, true);
    settle();
    commit(*group, false); // lost on failover
    ASSERT_TRUE(controller.primaryCrashed(
        0, *group, [](const FailoverOutcome &) {}));
    settle();

    // Post-promotion commits replicate and audit cleanly.
    const TxnDbOutcome after = commit(*group, true);
    settle();
    EXPECT_EQ(group->replica(0).durableLsn(), after.wal_issued_lsn);
    const AuditReport audit = group->auditNow();
    EXPECT_EQ(audit.lost_durable, 0u);
    EXPECT_EQ(audit.resurrected, 0u);
    EXPECT_EQ(audit.duplicates, 0u);
}

TEST_F(FailoverTest, DescribesEveryFailoverKind)
{
    EXPECT_STREQ(failoverKindName(FailoverKind::Crash), "crash");
    EXPECT_STREQ(failoverKindName(FailoverKind::Partition),
                 "partition");
    EXPECT_STREQ(failoverKindName(FailoverKind::Switchover),
                 "switchover");
}

// ---- planned switchover ----

TEST_F(FailoverTest, SwitchoverHandsOffAtTheFullWatermarkFast)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);
    const TxnDbOutcome last = commit(*group, true);
    settle(); // replica fully caught up

    ASSERT_TRUE(controller.plannedSwitchover(
        0, *group, [](const FailoverOutcome &) {}));
    settle();

    ASSERT_EQ(controller.failoverCount(), 1u);
    const FailoverOutcome &out = controller.history()[0];
    EXPECT_EQ(out.kind, FailoverKind::Switchover);
    // Handoff at the applied watermark: nothing is discarded.
    EXPECT_EQ(out.watermark, last.wal_issued_lsn);
    EXPECT_EQ(out.stats.discarded_records, 0u);
    // ~zero blackout: only the promotion bookkeeping, far below the
    // crash path's detection delay + catch-up replay.
    EXPECT_LT(out.promoted_at - out.blackout_begin, secs(1.0));
    EXPECT_FALSE(group->down());
    EXPECT_FALSE(group->draining());
    EXPECT_EQ(controller.switchoverAborts(), 0u);

    const AuditReport audit = group->auditNow();
    EXPECT_EQ(audit.lost_durable, 0u);
    EXPECT_EQ(audit.resurrected, 0u);
}

TEST_F(FailoverTest, SwitchoverDrainsInflightTxnsFirst)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);
    commit(*group, true);
    settle();

    group->inflightBegin();
    ASSERT_TRUE(controller.plannedSwitchover(
        0, *group, [](const FailoverOutcome &) {}));
    EXPECT_TRUE(group->draining()); // new attempts now fail fast
    queue_.runUntil(queue_.now() + secs(1.0));
    EXPECT_EQ(controller.failoverCount(), 0u); // still waiting

    group->inflightEnd(); // the last txn settles
    settle();
    EXPECT_EQ(controller.failoverCount(), 1u);
    EXPECT_FALSE(group->draining());
}

TEST_F(FailoverTest, SwitchoverAbortsWhenTheDrainWedges)
{
    auto group = makeGroup(1);
    FailoverController controller(queue_, config_);
    commit(*group, true);
    settle();

    group->inflightBegin(); // never ends: a wedged drain
    ASSERT_TRUE(controller.plannedSwitchover(
        0, *group, [](const FailoverOutcome &) {}));
    queue_.runUntil(queue_.now() +
                    secs(config_.switchover_timeout_s + 1.0));

    EXPECT_EQ(controller.switchoverAborts(), 1u);
    EXPECT_EQ(controller.failoverCount(), 0u);
    EXPECT_FALSE(group->draining()); // shard serves again
    EXPECT_FALSE(group->down());
}

TEST_F(FailoverTest, SwitchoverRefusedWhenUnpromotable)
{
    FailoverController controller(queue_, config_);
    // No live replica to hand off to.
    auto bare = makeGroup(0);
    EXPECT_FALSE(controller.plannedSwitchover(
        0, *bare, [](const FailoverOutcome &) {}));
    // Already draining.
    auto group = makeGroup(1);
    group->beginDrain();
    EXPECT_FALSE(controller.plannedSwitchover(
        0, *group, [](const FailoverOutcome &) {}));
    group->endDrain();
    // Mid-blackout.
    group->beginBlackout();
    EXPECT_FALSE(controller.plannedSwitchover(
        0, *group, [](const FailoverOutcome &) {}));
}

// ---- partition promotion ----

TEST_F(FailoverTest, PartitionPromoteFencesAndMovesServing)
{
    auto group = makeGroup(2);
    group->armLease(LeaseConfig{}, [](std::size_t) { return true; });
    group->startLease(); // heartbeats keep the lease renewed
    FailoverController controller(queue_, config_);
    const TxnDbOutcome replicated = commit(*group, true);
    settle();
    const std::uint64_t watermark = group->maxLiveReplicaDurable();
    ASSERT_EQ(watermark, replicated.wal_issued_lsn);

    ASSERT_TRUE(controller.partitionPromote(
        0, *group, /*candidate=*/1, watermark,
        [](const FailoverOutcome &) {}));
    settle();

    ASSERT_EQ(controller.failoverCount(), 1u);
    const FailoverOutcome &out = controller.history()[0];
    EXPECT_EQ(out.kind, FailoverKind::Partition);
    EXPECT_EQ(out.watermark, watermark);
    EXPECT_EQ(out.promoted_member, 1u);
    // The promotion issued token 1 and fenced every stream to it.
    EXPECT_EQ(out.fencing_token, 1u);
    EXPECT_EQ(group->replica(0).fenceToken(), 1u);
    EXPECT_EQ(group->replica(1).fenceToken(), 1u);
    // Serving moved to the candidate; the new primary holds a lease.
    EXPECT_EQ(group->servingMember(), 1u);
    EXPECT_TRUE(group->leaseValid());
    EXPECT_FALSE(group->down());
}

TEST_F(FailoverTest, FencingTokensStayMonotoneAcrossPromotions)
{
    auto group = makeGroup(2);
    group->armLease(LeaseConfig{}, [](std::size_t) { return true; });
    FailoverController controller(queue_, config_);
    commit(*group, true);
    settle();

    ASSERT_TRUE(controller.partitionPromote(
        0, *group, 1, group->maxLiveReplicaDurable(),
        [](const FailoverOutcome &) {}));
    // A second promotion while the first is mid-flight is refused.
    EXPECT_FALSE(controller.partitionPromote(
        0, *group, 0, 0, [](const FailoverOutcome &) {}));
    settle();

    ASSERT_TRUE(controller.partitionPromote(
        0, *group, 0, group->maxLiveReplicaDurable(),
        [](const FailoverOutcome &) {}));
    settle();

    ASSERT_EQ(controller.history().size(), 2u);
    EXPECT_EQ(controller.history()[0].fencing_token, 1u);
    EXPECT_EQ(controller.history()[1].fencing_token, 2u);
    EXPECT_EQ(group->servingMember(), 0u);
}

TEST_F(FailoverTest, StalePrimaryWindowsBounceOffTheFence)
{
    auto group = makeGroup(1);
    group->armLease(LeaseConfig{}, [](std::size_t) { return true; });
    FailoverController controller(queue_, config_);
    const TxnDbOutcome replicated = commit(*group, true);
    settle();

    ASSERT_TRUE(controller.partitionPromote(
        0, *group, 0, group->maxLiveReplicaDurable(),
        [](const FailoverOutcome &) {}));
    settle();

    // The deposed primary's post-partition write arrives on heal,
    // still stamped with its pre-promotion token (0 < fence 1).
    group->replica(0).ship(replicated.wal_issued_lsn + 100, 2048, 0);
    settle();
    EXPECT_EQ(group->fencedWindows(), 1u);
    EXPECT_LE(group->replica(0).durableLsn(),
              replicated.wal_issued_lsn);
}

} // namespace
} // namespace jasim::repl
