#include <gtest/gtest.h>

#include "repl/log_ship.h"

namespace jasim::repl {
namespace {

/** A stream on a LAN link and RAM-disk WAL device. */
class LogShipTest : public ::testing::Test
{
  protected:
    LogShipTest() : stream_(queue_, ReplicaConfig{}, 42) {}

    /** Ship and run the queue dry; returns the new durable LSN. */
    std::uint64_t shipAndSettle(std::uint64_t lsn, std::uint64_t bytes)
    {
        stream_.ship(lsn, bytes);
        queue_.runUntil(queue_.now() + secs(10.0));
        return stream_.durableLsn();
    }

    EventQueue queue_;
    LogShipStream stream_;
};

TEST_F(LogShipTest, DurableAdvancesAfterLinkAndDiskLatency)
{
    stream_.ship(100, 4096);
    // Nothing is durable at ship time: the window must cross the
    // link and the replica's force I/O must complete first.
    EXPECT_EQ(stream_.durableLsn(), 0u);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.shippedWindows(), 1u);
    EXPECT_EQ(stream_.shippedBytes(), 4096u);
}

TEST_F(LogShipTest, AppliedTrailsDurable)
{
    stream_.ship(100, 64 * 1024);
    SimTime durable_at = 0;
    stream_.setDurableHook([&](std::uint64_t) {
        durable_at = queue_.now();
    });
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.appliedLsn(), 100u);
    // Redo apply took nonzero simulated time after durability.
    EXPECT_GT(queue_.now(), 0u);
    EXPECT_GT(durable_at, 0u);
}

TEST_F(LogShipTest, UnappliedBytesAreThePromotionDebt)
{
    // At the instant durability advances, the window is durable but
    // not yet redo-applied: that gap is the promotion catch-up debt.
    std::uint64_t debt_at_durable = 0;
    stream_.setDurableHook([&](std::uint64_t) {
        debt_at_durable = stream_.unappliedBytes();
    });
    stream_.ship(100, 8192);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(debt_at_durable, 8192u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u); // applied caught up
}

TEST_F(LogShipTest, MonotoneDurableIgnoresStaleWindows)
{
    EXPECT_EQ(shipAndSettle(100, 1024), 100u);
    EXPECT_EQ(shipAndSettle(90, 512), 100u); // stale: no regress
    EXPECT_EQ(shipAndSettle(200, 1024), 200u);
}

TEST_F(LogShipTest, CrashDropsInFlightWindows)
{
    stream_.ship(100, 4096);
    stream_.crash();
    EXPECT_FALSE(stream_.alive());
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 0u); // in-flight window discarded
    stream_.ship(200, 4096); // shipping to a dead replica is a no-op
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 0u);
}

TEST_F(LogShipTest, RestartResilversFromNextWindow)
{
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.crash();
    stream_.restart();
    EXPECT_TRUE(stream_.alive());
    EXPECT_EQ(stream_.durableLsn(), 0u); // watermarks reset
    // The next shipped window carries the resync: durable jumps.
    EXPECT_EQ(shipAndSettle(250, 4096), 250u);
}

TEST_F(LogShipTest, ResyncClampsToPromotedTimeline)
{
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.ship(200, 4096); // in flight from the dead primary
    stream_.resyncTo(60);
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 60u); // clamped; in-flight dropped
    EXPECT_LE(stream_.appliedLsn(), 60u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u);
}

TEST_F(LogShipTest, DurableHookFiresOnEveryAdvance)
{
    std::vector<std::uint64_t> advances;
    stream_.setDurableHook([&](std::uint64_t lsn) {
        advances.push_back(lsn);
    });
    shipAndSettle(10, 256);
    shipAndSettle(20, 256);
    ASSERT_EQ(advances.size(), 2u);
    EXPECT_EQ(advances[0], 10u);
    EXPECT_EQ(advances[1], 20u);
}

TEST_F(LogShipTest, DeterministicForFixedSeed)
{
    EventQueue q1, q2;
    LogShipStream a(q1, ReplicaConfig{}, 7);
    LogShipStream b(q2, ReplicaConfig{}, 7);
    a.ship(100, 4096);
    b.ship(100, 4096);
    q1.runUntil(secs(10.0));
    q2.runUntil(secs(10.0));
    EXPECT_EQ(q1.executed(), q2.executed());
    EXPECT_EQ(a.durableLsn(), b.durableLsn());
}

} // namespace
} // namespace jasim::repl
