#include <gtest/gtest.h>

#include "repl/log_ship.h"

namespace jasim::repl {
namespace {

/** A stream on a LAN link and RAM-disk WAL device. */
class LogShipTest : public ::testing::Test
{
  protected:
    LogShipTest() : stream_(queue_, ReplicaConfig{}, 42) {}

    /** Ship and run the queue dry; returns the new durable LSN. */
    std::uint64_t shipAndSettle(std::uint64_t lsn, std::uint64_t bytes)
    {
        stream_.ship(lsn, bytes);
        queue_.runUntil(queue_.now() + secs(10.0));
        return stream_.durableLsn();
    }

    EventQueue queue_;
    LogShipStream stream_;
};

TEST_F(LogShipTest, DurableAdvancesAfterLinkAndDiskLatency)
{
    stream_.ship(100, 4096);
    // Nothing is durable at ship time: the window must cross the
    // link and the replica's force I/O must complete first.
    EXPECT_EQ(stream_.durableLsn(), 0u);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.shippedWindows(), 1u);
    EXPECT_EQ(stream_.shippedBytes(), 4096u);
}

TEST_F(LogShipTest, AppliedTrailsDurable)
{
    stream_.ship(100, 64 * 1024);
    SimTime durable_at = 0;
    stream_.setDurableHook([&](std::uint64_t) {
        durable_at = queue_.now();
    });
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.appliedLsn(), 100u);
    // Redo apply took nonzero simulated time after durability.
    EXPECT_GT(queue_.now(), 0u);
    EXPECT_GT(durable_at, 0u);
}

TEST_F(LogShipTest, UnappliedBytesAreThePromotionDebt)
{
    // At the instant durability advances, the window is durable but
    // not yet redo-applied: that gap is the promotion catch-up debt.
    std::uint64_t debt_at_durable = 0;
    stream_.setDurableHook([&](std::uint64_t) {
        debt_at_durable = stream_.unappliedBytes();
    });
    stream_.ship(100, 8192);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(debt_at_durable, 8192u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u); // applied caught up
}

TEST_F(LogShipTest, MonotoneDurableIgnoresStaleWindows)
{
    EXPECT_EQ(shipAndSettle(100, 1024), 100u);
    EXPECT_EQ(shipAndSettle(90, 512), 100u); // stale: no regress
    EXPECT_EQ(shipAndSettle(200, 1024), 200u);
}

TEST_F(LogShipTest, CrashDropsInFlightWindows)
{
    stream_.ship(100, 4096);
    stream_.crash();
    EXPECT_FALSE(stream_.alive());
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 0u); // in-flight window discarded
    stream_.ship(200, 4096); // shipping to a dead replica is a no-op
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 0u);
}

TEST_F(LogShipTest, RestartResilversFromNextWindow)
{
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.crash();
    stream_.restart();
    EXPECT_TRUE(stream_.alive());
    EXPECT_EQ(stream_.durableLsn(), 0u); // watermarks reset
    // The next shipped window carries the resync: durable jumps.
    EXPECT_EQ(shipAndSettle(250, 4096), 250u);
}

TEST_F(LogShipTest, ResyncClampsToPromotedTimeline)
{
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.ship(200, 4096); // in flight from the dead primary
    stream_.resyncTo(60);
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 60u); // clamped; in-flight dropped
    EXPECT_LE(stream_.appliedLsn(), 60u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u);
}

TEST_F(LogShipTest, DurableHookFiresOnEveryAdvance)
{
    std::vector<std::uint64_t> advances;
    stream_.setDurableHook([&](std::uint64_t lsn) {
        advances.push_back(lsn);
    });
    shipAndSettle(10, 256);
    shipAndSettle(20, 256);
    ASSERT_EQ(advances.size(), 2u);
    EXPECT_EQ(advances[0], 10u);
    EXPECT_EQ(advances[1], 20u);
}

// ---- fencing ----

TEST_F(LogShipTest, UnfencedStreamsNeverRefuseWindows)
{
    // Token 0 on both sides: legacy streams ship as before.
    stream_.ship(100, 4096, 0);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.fencedWindows(), 0u);
}

TEST_F(LogShipTest, StaleTokenIsRefusedBeforeDiskIo)
{
    stream_.setFenceToken(3);
    const std::uint64_t writes_before = stream_.disk().requestCount();
    stream_.ship(100, 4096, 2); // deposed primary's token
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 0u);
    EXPECT_EQ(stream_.fencedWindows(), 1u);
    // Refused at arrival: the replica paid no WAL-device write.
    EXPECT_EQ(stream_.disk().requestCount(), writes_before);

    // The current holder's windows still land.
    stream_.ship(100, 4096, 3);
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
}

TEST_F(LogShipTest, NewerTokenRaisesTheFence)
{
    stream_.ship(100, 1024, 5);
    queue_.runUntil(secs(10.0));
    EXPECT_EQ(stream_.fenceToken(), 5u);
    // An older shipper is now fenced out even without setFenceToken.
    stream_.ship(200, 1024, 4);
    queue_.runUntil(secs(20.0));
    EXPECT_EQ(stream_.durableLsn(), 100u);
    EXPECT_EQ(stream_.fencedWindows(), 1u);
}

TEST_F(LogShipTest, FenceNeverLowers)
{
    stream_.setFenceToken(7);
    stream_.setFenceToken(4);
    EXPECT_EQ(stream_.fenceToken(), 7u);
}

// ---- resilver races ----

TEST_F(LogShipTest, CrashDuringResyncDropsTheClampRace)
{
    // A promotion resync and a replica crash can interleave: the
    // resync's clamp must not resurrect state on the dead replica,
    // and windows in flight across both events must die with their
    // generation.
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.ship(200, 4096); // in flight from the old primary
    stream_.resyncTo(60);    // promotion clamps the timeline...
    stream_.crash();         // ...then the replica dies mid-resilver
    queue_.runUntil(queue_.now() + secs(10.0));
    EXPECT_EQ(stream_.durableLsn(), 60u); // clamp held, no advance
    EXPECT_FALSE(stream_.alive());

    // Restart resilvers from scratch on the promoted timeline.
    stream_.restart();
    EXPECT_EQ(stream_.durableLsn(), 0u);
    EXPECT_EQ(shipAndSettle(300, 4096), 300u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u);
}

TEST_F(LogShipTest, ResyncDuringCatchUpDropsInFlightWindows)
{
    // The inverse interleaving: the replica crashed, restarted, and a
    // catch-up window is mid-flight when a promotion resync lands
    // (the primary's WAL was truncated under the lagging reader).
    EXPECT_EQ(shipAndSettle(100, 4096), 100u);
    stream_.crash();
    stream_.restart();
    stream_.ship(400, 16384); // catch-up resync window, in flight
    stream_.resyncTo(250);    // promoted timeline is shorter
    queue_.runUntil(queue_.now() + secs(10.0));
    // The stale catch-up window died with its generation: durable
    // stays at the clamp (0 post-restart, already <= 250), and only
    // the promoted primary's next window advances it.
    EXPECT_EQ(stream_.durableLsn(), 0u);
    EXPECT_EQ(stream_.unappliedBytes(), 0u);
    EXPECT_EQ(shipAndSettle(260, 2048), 260u);
    EXPECT_LE(stream_.appliedLsn(), 260u);
}

TEST_F(LogShipTest, DeterministicForFixedSeed)
{
    EventQueue q1, q2;
    LogShipStream a(q1, ReplicaConfig{}, 7);
    LogShipStream b(q2, ReplicaConfig{}, 7);
    a.ship(100, 4096);
    b.ship(100, 4096);
    q1.runUntil(secs(10.0));
    q2.runUntil(secs(10.0));
    EXPECT_EQ(q1.executed(), q2.executed());
    EXPECT_EQ(a.durableLsn(), b.durableLsn());
}

} // namespace
} // namespace jasim::repl
