#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

ClusterConfig
replCluster(std::size_t shards, std::size_t replicas, bool sync,
            const std::string &faults)
{
    ClusterConfig config;
    config.nodes = 2;
    config.node.injection_rate = 10.0;
    config.node.driver.ramp_up_s = 1.0;
    config.db_pool.max_connections = 16;
    config.repl.shards = shards;
    config.repl.replicas = replicas;
    config.repl.sync = sync;
    config.db_recovery.checkpoint_interval_s = 5.0;
    if (!faults.empty())
        config.faults = FaultSchedule::parse(faults);
    return config;
}

TEST(ClusterReplTest, DefaultsLeaveReplicationDisabled)
{
    Shared shared;
    ClusterConfig config = replCluster(1, 0, false, "");
    ClusterUnderTest cluster(config, shared.profiles, shared.registry,
                             7);
    EXPECT_FALSE(cluster.replicationEnabled());
    EXPECT_EQ(cluster.shardCount(), 0u); // legacy single box
}

TEST(ClusterReplTest, HealthyShardedRunServesAndAuditsClean)
{
    Shared shared;
    ClusterUnderTest cluster(replCluster(2, 1, false, ""),
                             shared.profiles, shared.registry, 7);
    ASSERT_TRUE(cluster.replicationEnabled());
    ASSERT_EQ(cluster.shardCount(), 2u);
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    EXPECT_GT(cluster.tracker().totalCompleted(), 0u);
    const AuditReport audit = cluster.clusterAuditNow();
    EXPECT_GT(audit.acked_total, 0u);
    EXPECT_TRUE(audit.pass());
    // Both shards carried load and replicated it.
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_GT(cluster.shard(s).replica(0).durableLsn(), 0u)
            << "shard " << s;
    }
}

TEST(ClusterReplTest, PrimaryCrashFailsOverWithBoundedBlackout)
{
    Shared shared;
    ClusterUnderTest cluster(
        replCluster(2, 1, /*sync=*/true, "dbcrash@8:shard=0"),
        shared.profiles, shared.registry, 7);
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    ASSERT_NE(cluster.failoverController(), nullptr);
    EXPECT_EQ(cluster.failoverController()->failoverCount(), 1u);
    const ResponseTracker &t = cluster.tracker();
    EXPECT_EQ(t.failoverCount(), 1u);
    const SimTime blackout = t.failoverBlackoutUs(0);
    EXPECT_GT(blackout, 0u);
    EXPECT_LT(blackout, secs(10)); // bounded, not an outage
    EXPECT_LT(t.shardAvailability(0, secs(20)), 1.0);
    EXPECT_DOUBLE_EQ(t.shardAvailability(1, secs(20)), 1.0);

    // The sync guarantee end to end: no acked commit lost.
    const AuditReport audit = cluster.clusterAuditNow();
    EXPECT_GT(audit.acked_total, 0u);
    EXPECT_EQ(audit.lost_acked, 0u);
    EXPECT_EQ(audit.resurrected, 0u);
    EXPECT_EQ(audit.duplicates, 0u);

    // The cluster kept serving after promotion.
    EXPECT_GT(cluster.jops(secs(12), secs(20)), 0.0);
}

TEST(ClusterReplTest, ReplicaCrashDoesNotBlackOutTheShard)
{
    Shared shared;
    ClusterUnderTest cluster(
        replCluster(2, 1, false, "dbcrash@5:shard=0,replica=0,restart=5"),
        shared.profiles, shared.registry, 7);
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    EXPECT_EQ(cluster.tracker().failoverCount(), 0u);
    EXPECT_EQ(cluster.dbCrashCount(), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 0u);
    // The restarted standby resilvered from the stream.
    EXPECT_TRUE(cluster.shard(0).replica(0).alive());
    EXPECT_GT(cluster.shard(0).replica(0).durableLsn(), 0u);
}

TEST(ClusterReplTest, UnreplicatedShardFallsBackToBlockingRecovery)
{
    Shared shared;
    ClusterUnderTest cluster(
        replCluster(2, 0, false, "dbcrash@8:shard=0,restart=1"),
        shared.profiles, shared.registry, 7);
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    EXPECT_EQ(cluster.tracker().failoverCount(), 0u);
    EXPECT_EQ(cluster.dbCrashCount(), 1u);
    EXPECT_EQ(cluster.tracker().dbRecoveryCount(), 1u);
    EXPECT_TRUE(cluster.audited());
    EXPECT_TRUE(cluster.lastAudit().pass());
    EXPECT_GT(cluster.jops(secs(12), secs(20)), 0.0);
}

TEST(ClusterReplTest, ReplicatedRunsAreDeterministic)
{
    Shared shared;
    const auto run = [&](std::uint64_t seed) {
        ClusterUnderTest cluster(
            replCluster(2, 1, true, "dbcrash@8:shard=0"),
            shared.profiles, shared.registry, seed);
        cluster.start(secs(15));
        cluster.advanceTo(secs(18));
        return std::make_tuple(cluster.queue().executed(),
                               cluster.tracker().totalCompleted(),
                               cluster.tracker().failoverBlackoutUs());
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(std::get<0>(run(99)), std::get<0>(run(100)));
}

} // namespace
} // namespace jasim
