#include <gtest/gtest.h>

#include "core/cluster.h"

namespace jasim {
namespace {

struct Shared
{
    std::shared_ptr<const WorkloadProfiles> profiles;
    std::shared_ptr<const MethodRegistry> registry;

    explicit Shared(std::uint64_t seed = 11)
        : profiles(std::make_shared<const WorkloadProfiles>(seed)),
          registry(std::make_shared<const MethodRegistry>(
              profiles->layout(Component::WasJit).count(), seed))
    {
    }
};

ClusterConfig
partitionCluster(std::size_t replicas, bool sync,
                 const std::string &faults)
{
    ClusterConfig config;
    config.nodes = 2;
    config.node.injection_rate = 10.0;
    config.node.driver.ramp_up_s = 1.0;
    config.db_pool.max_connections = 16;
    config.repl.shards = 1;
    config.repl.replicas = replicas;
    config.repl.sync = sync;
    config.db_recovery.checkpoint_interval_s = 5.0;
    if (!faults.empty())
        config.faults = FaultSchedule::parse(faults);
    return config;
}

TEST(ClusterPartitionTest, ScheduleFreeRunsLeaveLeasesUnarmed)
{
    Shared shared;
    ClusterUnderTest cluster(partitionCluster(2, true, ""),
                             shared.profiles, shared.registry, 7);
    EXPECT_FALSE(cluster.leaseEnabled());
    cluster.start(secs(10));
    cluster.advanceTo(secs(12));
    // No lease machinery ran: zero heartbeats, zero partition drops.
    EXPECT_EQ(cluster.shard(0).heartbeatsSent(), 0u);
    EXPECT_EQ(cluster.fabric().partitionDrops(), 0u);
    EXPECT_EQ(cluster.tracker().partitionCount(), 0u);
    EXPECT_GT(cluster.tracker().totalCompleted(), 0u);
}

TEST(ClusterPartitionTest, PartitionPromotesTheQuorumSide)
{
    // Cut the primary away from both replicas and every app node:
    // the replica side holds 2 of the group's 3 members, so the lease
    // monitor must promote there once the primary's lease lapses.
    Shared shared;
    ClusterUnderTest cluster(
        partitionCluster(
            2, /*sync=*/true,
            "partition@6:sides=db0|0,1,db0.0,db0.1,dur=8"),
        shared.profiles, shared.registry, 7);
    ASSERT_TRUE(cluster.leaseEnabled());
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    ASSERT_NE(cluster.failoverController(), nullptr);
    ASSERT_EQ(cluster.failoverController()->failoverCount(), 1u);
    const repl::FailoverOutcome &out =
        cluster.failoverController()->history()[0];
    EXPECT_EQ(out.kind, repl::FailoverKind::Partition);
    EXPECT_EQ(out.fencing_token, 1u);

    const ResponseTracker &t = cluster.tracker();
    EXPECT_EQ(t.partitionCount(), 1u);
    EXPECT_EQ(t.partitionUs(secs(20)), secs(8));
    // Cross-side sends failed fast while the split was open.
    EXPECT_GT(cluster.fabric().partitionDrops(), 0u);
    EXPECT_GT(t.errorCount(ErrorKind::Partitioned), 0u);

    // The promoted side kept serving inside the partition window.
    EXPECT_GT(cluster.jops(secs(10), secs(14)), 0.0);

    // Sync guarantee across partition + heal: zero lost-acked, by
    // construction (quorum acks intersect the promoted majority).
    const AuditReport audit = cluster.clusterAuditNow();
    EXPECT_GT(audit.acked_total, 0u);
    EXPECT_EQ(audit.lost_acked, 0u);
    EXPECT_EQ(audit.resurrected, 0u);
    EXPECT_EQ(audit.duplicates, 0u);

    // Heal: the deposed primary's divergent tail was rewound (and
    // fenced if it had shipped anything), then the slot rejoined.
    EXPECT_EQ(cluster.staleRewinds(), 1u);
    if (cluster.staleRewindBytes() > 0) {
        EXPECT_GE(cluster.shard(0).fencedWindows(), 1u);
    }
    EXPECT_EQ(cluster.shard(0).servingMember(),
              repl::ShardGroup::kPrimaryMember);
    EXPECT_GT(cluster.jops(secs(15), secs(20)), 0.0);
}

TEST(ClusterPartitionTest, EvenSplitWithoutQuorumNeverPromotes)
{
    // R=1: a split leaves one member on each side -- neither holds a
    // majority of the 2-member group, so nobody may promote (CP: the
    // shard goes unavailable rather than split-brain).
    Shared shared;
    ClusterUnderTest cluster(
        partitionCluster(1, /*sync=*/true,
                         "partition@6:sides=db0,0|1,db0.0,dur=6"),
        shared.profiles, shared.registry, 7);
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    EXPECT_EQ(cluster.failoverController()->failoverCount(), 0u);
    EXPECT_EQ(cluster.staleRewinds(), 0u);
    EXPECT_EQ(cluster.tracker().failoverCount(), 0u);
    // The shard erred rather than acking without a lease.
    EXPECT_GT(cluster.tracker().errorCount(), 0u);
    EXPECT_GE(cluster.shard(0).lease().lapses(), 1u);
    // Nothing acked was lost -- the whole point of lapsing.
    const AuditReport audit = cluster.clusterAuditNow();
    EXPECT_EQ(audit.lost_acked, 0u);
    // After the heal the lease renews and service resumes.
    EXPECT_GT(cluster.jops(secs(15), secs(20)), 0.0);
}

TEST(ClusterPartitionTest, PlannedSwitchoverBlackoutUnderOneLease)
{
    Shared shared;
    ClusterUnderTest cluster(
        partitionCluster(2, /*sync=*/true, "switchover@8:shard=0"),
        shared.profiles, shared.registry, 7);
    ASSERT_TRUE(cluster.leaseEnabled());
    cluster.start(secs(20));
    cluster.advanceTo(secs(25));

    ASSERT_EQ(cluster.failoverController()->failoverCount(), 1u);
    const repl::FailoverOutcome &out =
        cluster.failoverController()->history()[0];
    EXPECT_EQ(out.kind, repl::FailoverKind::Switchover);
    EXPECT_EQ(out.fencing_token, 1u);
    EXPECT_EQ(cluster.failoverController()->switchoverAborts(), 0u);

    const ResponseTracker &t = cluster.tracker();
    EXPECT_EQ(t.switchoverCount(), 1u);
    // The acceptance gate: the handoff blackout stays under one
    // lease interval (the crash path pays detect + catch-up instead).
    EXPECT_LE(t.failoverBlackoutUs(0),
              secs(ClusterConfig{}.repl.lease.lease_s));

    const AuditReport audit = cluster.clusterAuditNow();
    EXPECT_GT(audit.acked_total, 0u);
    EXPECT_EQ(audit.lost_acked, 0u);
    EXPECT_EQ(audit.duplicates, 0u);
    EXPECT_GT(cluster.jops(secs(10), secs(20)), 0.0);
}

TEST(ClusterPartitionTest, PartitionRunsAreDeterministic)
{
    Shared shared;
    const auto run = [&](std::uint64_t seed) {
        ClusterUnderTest cluster(
            partitionCluster(
                2, true, "partition@6:sides=db0|0,1,db0.0,db0.1,dur=6"),
            shared.profiles, shared.registry, seed);
        cluster.start(secs(15));
        cluster.advanceTo(secs(18));
        return std::make_tuple(
            cluster.queue().executed(),
            cluster.tracker().totalCompleted(),
            cluster.tracker().errorCount(),
            cluster.fabric().partitionDrops(),
            cluster.staleRewindBytes());
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(std::get<0>(run(99)), std::get<0>(run(100)));
}

} // namespace
} // namespace jasim
