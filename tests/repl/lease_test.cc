#include <gtest/gtest.h>

#include "repl/lease.h"

namespace jasim {
namespace {

TEST(LeaseTest, QuorumMathPerGroupSize)
{
    // R replicas → R+1 members; majority = floor(members/2)+1;
    // quorumAcks = majority minus the primary's own vote.
    const struct
    {
        std::size_t replicas, members, majority, quorum_acks;
    } cases[] = {
        {0, 1, 1, 0}, {1, 2, 2, 1}, {2, 3, 2, 1},
        {3, 4, 3, 2}, {4, 5, 3, 2},
    };
    for (const auto &c : cases) {
        Lease lease(c.replicas);
        EXPECT_EQ(lease.members(), c.members) << c.replicas;
        EXPECT_EQ(lease.majority(), c.majority) << c.replicas;
        EXPECT_EQ(lease.quorumAcks(), c.quorum_acks) << c.replicas;
    }
}

TEST(LeaseTest, GrantExtendsMonotonically)
{
    Lease lease(2);
    EXPECT_FALSE(lease.valid(0));
    lease.grant(secs(2.0));
    EXPECT_TRUE(lease.valid(secs(1.0)));
    EXPECT_EQ(lease.expiry(), secs(2.0));
    EXPECT_EQ(lease.renewals(), 1u);

    // A late ack for an older round can never shorten the lease.
    lease.grant(secs(1.0));
    EXPECT_EQ(lease.expiry(), secs(2.0));
    EXPECT_EQ(lease.renewals(), 1u);

    lease.grant(secs(3.5));
    EXPECT_EQ(lease.expiry(), secs(3.5));
    EXPECT_EQ(lease.renewals(), 2u);
}

TEST(LeaseTest, ValidityIsHalfOpenAtExpiry)
{
    Lease lease(1);
    lease.grant(secs(2.0));
    EXPECT_TRUE(lease.valid(secs(2.0) - 1));
    EXPECT_FALSE(lease.valid(secs(2.0)));
    EXPECT_FALSE(lease.valid(secs(9.0)));
}

TEST(LeaseTest, CountsLapses)
{
    Lease lease(1);
    EXPECT_EQ(lease.lapses(), 0u);
    lease.noteLapse();
    lease.noteLapse();
    EXPECT_EQ(lease.lapses(), 2u);
}

TEST(LeaseTest, FencingTokensStrictlyIncrease)
{
    Lease lease(2);
    EXPECT_EQ(lease.fencingToken(), 0u);
    const std::uint64_t first = lease.issueToken();
    const std::uint64_t second = lease.issueToken();
    EXPECT_EQ(first, 1u);
    EXPECT_GT(second, first);
    EXPECT_EQ(lease.fencingToken(), second);
}

} // namespace
} // namespace jasim
