/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * The figure/ablation benches re-run a full simulation per sweep
 * point (L2 size, heap size, node count, ...). Each point is an
 * independent simulation — its own event queue, RNG streams, and
 * model state, all derived from the point's config and seed — so the
 * points can run on worker threads with no shared mutable state, and
 * the results are merged back in submission order. The output is
 * therefore bit-identical to a serial run: parallelism changes only
 * which wall-clock instant each point computes on, never what it
 * computes. `tests/par/determinism_test.cc` pins this property.
 */

#ifndef JASIM_PAR_SWEEP_H
#define JASIM_PAR_SWEEP_H

#include <cstddef>
#include <functional>
#include <vector>

namespace jasim::par {

/**
 * Fixed-size pool of worker threads for one sweep.
 *
 * Workers pull point indices from a shared cursor, so long and short
 * points load-balance automatically. With `jobs <= 1` everything runs
 * inline on the calling thread — the serial path is the parallel path
 * with zero workers, not separate code with separate behavior.
 */
class WorkerPool
{
  public:
    /** @param jobs worker count; 0 or 1 mean "run inline, serially". */
    explicit WorkerPool(std::size_t jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

    std::size_t jobs() const { return jobs_; }

    /**
     * Run `body(i)` for every i in [0, count), using up to jobs()
     * concurrent workers. Blocks until all points finish. If any body
     * throws, the first exception (in completion order) is rethrown
     * after all workers have stopped.
     *
     * `body` must be safe to invoke concurrently from different
     * threads for different indices.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body) const;

  private:
    std::size_t jobs_;
};

/**
 * Run `fn(i)` for i in [0, count) on up to `jobs` workers and return
 * the results indexed by submission order (results[i] == fn(i), as if
 * run serially). The result type must be default-constructible and
 * move-assignable.
 */
template <typename Fn>
auto
runSweep(std::size_t count, std::size_t jobs, Fn &&fn)
{
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> results(count);
    WorkerPool pool(jobs);
    pool.parallelFor(count,
                     [&](std::size_t i) { results[i] = fn(i); });
    return results;
}

} // namespace jasim::par

#endif // JASIM_PAR_SWEEP_H
