#include "par/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace jasim::par {

void
WorkerPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t)> &body) const
{
    if (count == 0)
        return;

    // Serial path: same order, same thread, no synchronization.
    if (jobs_ <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                // Keep draining indices so siblings are not left
                // waiting on work this worker claimed; remaining
                // points still run (their results are discarded by
                // the rethrow below).
            }
        }
    };

    std::vector<std::thread> workers;
    const std::size_t spawned = jobs_ < count ? jobs_ : count;
    workers.reserve(spawned);
    for (std::size_t w = 0; w < spawned; ++w)
        workers.emplace_back(worker);
    for (std::thread &t : workers)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace jasim::par
