/**
 * @file
 * Front-end load balancer with pluggable routing policies.
 *
 * Routes driver requests across the app-server nodes. Policies:
 * round-robin (exact rotation), least-connections (fewest in-flight,
 * lowest index on ties), and weighted (smooth weighted round-robin,
 * the nginx algorithm, so a {5,1} weighting interleaves rather than
 * bursts). All policies are deterministic: given the same assignment
 * and completion sequence they produce the same routing, which the
 * tests pin.
 */

#ifndef JASIM_NET_LOAD_BALANCER_H
#define JASIM_NET_LOAD_BALANCER_H

#include <cstdint>
#include <vector>

namespace jasim {

/** Routing policy. */
enum class LbPolicy : std::uint8_t
{
    RoundRobin,
    LeastConnections,
    Weighted,
};

const char *lbPolicyName(LbPolicy policy);

/** Balancer configuration. */
struct LbConfig
{
    LbPolicy policy = LbPolicy::LeastConnections;

    /** Per-node weights (Weighted policy; resized/defaulted to 1). */
    std::vector<double> weights;

    /** CPU cost the balancer adds per forwarded request (us). */
    double forward_us = 30.0;
};

/** Routing decisions + in-flight bookkeeping. */
class LoadBalancer
{
  public:
    LoadBalancer(const LbConfig &config, std::size_t nodes);

    /**
     * Pick a backend for the next request and record it in flight.
     * Returns the node index.
     */
    std::size_t route();

    /** Record a request leaving a node (response sent). */
    void complete(std::size_t node);

    std::size_t nodeCount() const { return in_flight_.size(); }
    std::size_t inFlight(std::size_t node) const
    {
        return in_flight_[node];
    }
    std::uint64_t routedTo(std::size_t node) const
    {
        return routed_[node];
    }
    std::uint64_t totalRouted() const { return total_routed_; }
    std::size_t peakInFlight() const { return peak_in_flight_; }
    const LbConfig &config() const { return config_; }

  private:
    LbConfig config_;
    std::vector<std::size_t> in_flight_;
    std::vector<std::uint64_t> routed_;
    std::vector<double> current_weight_; //!< smooth-WRR state
    std::size_t next_ = 0;               //!< round-robin cursor
    std::uint64_t total_routed_ = 0;
    std::size_t peak_in_flight_ = 0;

    std::size_t pick();
};

} // namespace jasim

#endif // JASIM_NET_LOAD_BALANCER_H
