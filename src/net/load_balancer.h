/**
 * @file
 * Front-end load balancer with pluggable routing policies.
 *
 * Routes driver requests across the app-server nodes. Policies:
 * round-robin (exact rotation), least-connections (fewest in-flight,
 * lowest index on ties), and weighted (smooth weighted round-robin,
 * the nginx algorithm, so a {5,1} weighting interleaves rather than
 * bursts). All policies are deterministic: given the same assignment
 * and completion sequence they produce the same routing, which the
 * tests pin.
 *
 * Health: nodes can be marked down (health-check ejection) and up
 * (probe readmission). Every policy routes only among up nodes; when
 * none is up, route() returns kNoNode and the caller fails the
 * request. Weights are validated at construction — negative or
 * non-finite weights throw, an all-zero vector is treated as uniform
 * — instead of being silently coerced.
 */

#ifndef JASIM_NET_LOAD_BALANCER_H
#define JASIM_NET_LOAD_BALANCER_H

#include <cstdint>
#include <vector>

namespace jasim {

/** Routing policy. */
enum class LbPolicy : std::uint8_t
{
    RoundRobin,
    LeastConnections,
    Weighted,
};

const char *lbPolicyName(LbPolicy policy);

/** Balancer configuration. */
struct LbConfig
{
    LbPolicy policy = LbPolicy::LeastConnections;

    /**
     * Per-node weights (Weighted policy; resized/defaulted to 1).
     * Must be finite and non-negative; a node with weight 0 receives
     * no traffic while any positive-weight node is up. An all-zero
     * vector is treated as uniform.
     */
    std::vector<double> weights;

    /** CPU cost the balancer adds per forwarded request (us). */
    double forward_us = 30.0;
};

/** Routing decisions + in-flight and health bookkeeping. */
class LoadBalancer
{
  public:
    /** route() result when no healthy node exists. */
    static constexpr std::size_t kNoNode =
        static_cast<std::size_t>(-1);

    /**
     * @throws std::invalid_argument on negative or non-finite
     *         weights.
     */
    LoadBalancer(const LbConfig &config, std::size_t nodes);

    /**
     * Pick a healthy backend for the next request and record it in
     * flight. Returns the node index, or kNoNode when every node is
     * down (the request must be failed by the caller).
     */
    std::size_t route();

    /** Record a request leaving a node (response sent or errored). */
    void complete(std::size_t node);

    /** Health-check ejection: stop routing new requests to `node`. */
    void setNodeDown(std::size_t node);

    /** Probe readmission: resume routing to `node`. */
    void setNodeUp(std::size_t node);

    bool nodeUp(std::size_t node) const { return up_[node]; }

    /** Number of nodes currently routable. */
    std::size_t upCount() const { return up_count_; }

    std::size_t nodeCount() const { return in_flight_.size(); }
    std::size_t inFlight(std::size_t node) const
    {
        return in_flight_[node];
    }
    std::uint64_t routedTo(std::size_t node) const
    {
        return routed_[node];
    }
    std::uint64_t totalRouted() const { return total_routed_; }
    std::size_t peakInFlight() const { return peak_in_flight_; }

    /** Requests currently in flight across every node. */
    std::size_t totalInFlight() const { return total_in_flight_; }

    /**
     * Arm (or disarm with 0) the balancer-level in-flight cap. The
     * balancer itself stays policy-free: the caller checks
     * saturated() before route() and records the shed here.
     */
    void setInFlightCap(std::size_t cap) { in_flight_cap_ = cap; }
    std::size_t inFlightCap() const { return in_flight_cap_; }

    /** True when the cap is armed and the fleet is at it. */
    bool saturated() const
    {
        return in_flight_cap_ > 0 &&
            total_in_flight_ >= in_flight_cap_;
    }

    /** Account one request shed at the balancer. */
    void noteShed() { ++sheds_; }
    std::uint64_t sheds() const { return sheds_; }

    /** Requests refused because no node was up. */
    std::uint64_t unroutable() const { return unroutable_; }

    /** Ejections / readmissions applied so far. */
    std::uint64_t ejections() const { return ejections_; }
    std::uint64_t readmissions() const { return readmissions_; }

    const LbConfig &config() const { return config_; }

  private:
    LbConfig config_;
    std::vector<std::size_t> in_flight_;
    std::vector<std::uint64_t> routed_;
    std::vector<double> current_weight_; //!< smooth-WRR state
    std::vector<std::uint8_t> up_;       //!< health per node
    std::size_t up_count_ = 0;
    std::size_t next_ = 0;               //!< round-robin cursor
    std::uint64_t total_routed_ = 0;
    std::size_t peak_in_flight_ = 0;
    std::size_t total_in_flight_ = 0;
    std::size_t in_flight_cap_ = 0;      //!< 0 = uncapped
    std::uint64_t sheds_ = 0;
    std::uint64_t unroutable_ = 0;
    std::uint64_t ejections_ = 0;
    std::uint64_t readmissions_ = 0;

    std::size_t pick();
};

} // namespace jasim

#endif // JASIM_NET_LOAD_BALANCER_H
