#include "net/connection_pool.h"

#include <cassert>
#include <cmath>

namespace jasim {

ConnectionPool::ConnectionPool(const ConnectionPoolConfig &config,
                               EventQueue &queue, NetworkLink &link)
    : config_(config), queue_(queue), link_(link)
{
    assert(config_.max_connections > 0);
}

double
ConnectionPool::connectCostUs() const
{
    return config_.handshake_rtts * link_.rttUs() + config_.connect_us;
}

void
ConnectionPool::grant(Acquired on_acquired, SimTime ready)
{
    queue_.scheduleAt(ready, [cb = std::move(on_acquired), ready] {
        cb(ready);
    });
}

void
ConnectionPool::acquire(Acquired on_acquired)
{
    acquire(std::move(on_acquired), nullptr);
}

void
ConnectionPool::acquire(Acquired on_acquired, TimedOut on_timeout)
{
    const SimTime now = queue_.now();
    ++stats_.acquires;

    // Reap expired idle connections (stale keep-alives reconnect).
    if (config_.idle_timeout_s > 0.0) {
        const SimTime ttl = secs(config_.idle_timeout_s);
        while (!idle_.empty() && idle_.front() + ttl < now) {
            idle_.pop_front();
            --open_;
            ++stats_.expirations;
        }
    }

    if (!idle_.empty()) {
        idle_.pop_front();
        ++stats_.reuses;
        grant(std::move(on_acquired), now);
        return;
    }
    if (open_ < config_.max_connections) {
        ++open_;
        ++stats_.fresh_connects;
        const SimTime ready = now +
            static_cast<SimTime>(std::llround(connectCostUs()));
        grant(std::move(on_acquired), ready);
        return;
    }
    ++stats_.waits;
    const std::uint64_t id = next_waiter_id_++;
    const bool bounded =
        config_.acquire_timeout_us > 0.0 && on_timeout != nullptr;
    waiters_.push_back(
        Waiter{std::move(on_acquired), std::move(on_timeout), now, id});
    stats_.peak_waiting = std::max(stats_.peak_waiting, waiters_.size());

    if (bounded) {
        const SimTime deadline = now +
            static_cast<SimTime>(
                std::llround(config_.acquire_timeout_us));
        queue_.scheduleAt(deadline, [this, id, deadline] {
            for (auto it = waiters_.begin(); it != waiters_.end();
                 ++it) {
                if (it->id != id)
                    continue;
                TimedOut on_timeout = std::move(it->on_timeout);
                stats_.total_wait_us += deadline - it->since;
                waiters_.erase(it);
                ++stats_.timeouts;
                on_timeout(deadline);
                return;
            }
            // Not found: the waiter was granted before the deadline.
        });
    }
}

void
ConnectionPool::release()
{
    const SimTime now = queue_.now();
    assert(open_ > 0 && open_ > idle_.size());

    if (!waiters_.empty()) {
        // Hand the hot connection straight to the longest waiter.
        Waiter waiter = std::move(waiters_.front());
        waiters_.pop_front();
        stats_.total_wait_us += now - waiter.since;
        grant(std::move(waiter.on_acquired), now);
        return;
    }
    if (config_.keep_alive) {
        idle_.push_back(now);
        return;
    }
    --open_;
}

std::size_t
ConnectionPool::killIdle()
{
    const std::size_t killed = idle_.size();
    assert(open_ >= killed);
    idle_.clear();
    open_ -= killed;
    stats_.killed += killed;
    return killed;
}

double
ConnectionPool::meanWaitUs() const
{
    if (stats_.waits == 0)
        return 0.0;
    return static_cast<double>(stats_.total_wait_us) /
        static_cast<double>(stats_.waits);
}

} // namespace jasim
