/**
 * @file
 * Bounded per-endpoint connection pool.
 *
 * Models the app server's JDBC-style pool: a fixed maximum number of
 * TCP-ish connections to one endpoint. Fresh connections pay a
 * handshake (a configurable number of link round trips plus CPU);
 * released connections are kept alive and reused for free until an
 * idle timeout. When every connection is checked out, acquirers queue
 * FIFO. By default they wait forever — the classic saturation mode of
 * a real app-server tier and the knee the cluster bench looks for —
 * but an acquire timeout bounds the queueing: a waiter still queued
 * at its deadline is dropped and its timeout callback runs instead,
 * which is what lets a fault-injected cluster shed load rather than
 * build an unbounded backlog behind a dead database.
 */

#ifndef JASIM_NET_CONNECTION_POOL_H
#define JASIM_NET_CONNECTION_POOL_H

#include <cstdint>
#include <deque>
#include <functional>

#include "net/link.h"
#include "sim/event_queue.h"

namespace jasim {

/** Pool sizing and connection-establishment costs. */
struct ConnectionPoolConfig
{
    /** Maximum simultaneously open connections. */
    std::size_t max_connections = 8;

    /** Round trips a fresh connect costs (SYN/SYN-ACK + auth). */
    double handshake_rtts = 1.5;

    /** CPU/stack cost of establishing a connection (us). */
    double connect_us = 120.0;

    /** Keep released connections for reuse. */
    bool keep_alive = true;

    /**
     * Idle connections older than this are re-established on the next
     * acquire (<= 0 disables expiry).
     */
    double idle_timeout_s = 0.0;

    /**
     * Bound on acquire queueing (us). A waiter still queued this long
     * after acquire() is dropped and its timeout callback fires.
     * <= 0 (the default) waits forever — the pre-fault behaviour.
     */
    double acquire_timeout_us = 0.0;
};

/** Counters the pool accumulates. */
struct ConnectionPoolStats
{
    std::uint64_t acquires = 0;
    std::uint64_t fresh_connects = 0; //!< paid the handshake
    std::uint64_t reuses = 0;         //!< free keep-alive reuse
    std::uint64_t waits = 0;          //!< queued on an exhausted pool
    std::uint64_t expirations = 0;    //!< idle connections re-established
    std::uint64_t timeouts = 0;       //!< waiters dropped at the deadline
    std::uint64_t killed = 0;         //!< idle connections killed by faults
    SimTime total_wait_us = 0;
    std::size_t peak_waiting = 0;
};

/**
 * The pool. Acquisition is asynchronous: the callback fires on the
 * event queue at the simulated time the connection is usable.
 */
class ConnectionPool
{
  public:
    /** Receives the absolute time the connection became available. */
    using Acquired = std::function<void(SimTime ready)>;

    /** Receives the absolute time the acquire gave up. */
    using TimedOut = std::function<void(SimTime at)>;

    /**
     * @param link the link to the endpoint (handshake RTT source).
     */
    ConnectionPool(const ConnectionPoolConfig &config, EventQueue &queue,
                   NetworkLink &link);

    /**
     * Request a connection; `on_acquired` runs at the time it is
     * usable (immediately for an idle keep-alive connection, after
     * the handshake for a fresh one, or whenever a connection frees
     * up if the pool is exhausted). Never drops.
     */
    void acquire(Acquired on_acquired);

    /**
     * As above, but when `acquire_timeout_us` is configured and the
     * acquire is still queued at the deadline, the waiter is removed
     * and `on_timeout` fires instead (exactly one of the callbacks
     * runs). A null `on_timeout` waits forever.
     */
    void acquire(Acquired on_acquired, TimedOut on_timeout);

    /** Return a connection to the pool at the current queue time. */
    void release();

    /**
     * Fault injection: drop every idle keep-alive connection (the
     * next acquires pay fresh handshakes). Checked-out connections
     * and queued waiters are untouched. Returns connections killed.
     */
    std::size_t killIdle();

    std::size_t open() const { return open_; }
    std::size_t idle() const { return idle_.size(); }
    std::size_t waiting() const { return waiters_.size(); }
    const ConnectionPoolConfig &config() const { return config_; }
    const ConnectionPoolStats &stats() const { return stats_; }

    /** Mean time an acquire spent queued (us). */
    double meanWaitUs() const;

  private:
    ConnectionPoolConfig config_;
    EventQueue &queue_;
    NetworkLink &link_;
    std::size_t open_ = 0;
    std::deque<SimTime> idle_; //!< release times of idle connections
    struct Waiter
    {
        Acquired on_acquired;
        TimedOut on_timeout;
        SimTime since;
        std::uint64_t id;
    };
    std::deque<Waiter> waiters_;
    std::uint64_t next_waiter_id_ = 0;
    ConnectionPoolStats stats_;

    double connectCostUs() const;
    void grant(Acquired on_acquired, SimTime ready);
};

} // namespace jasim

#endif // JASIM_NET_CONNECTION_POOL_H
