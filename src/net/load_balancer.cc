#include "net/load_balancer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace jasim {

const char *
lbPolicyName(LbPolicy policy)
{
    switch (policy) {
      case LbPolicy::RoundRobin: return "round-robin";
      case LbPolicy::LeastConnections: return "least-connections";
      case LbPolicy::Weighted: return "weighted";
    }
    return "?";
}

LoadBalancer::LoadBalancer(const LbConfig &config, std::size_t nodes)
    : config_(config), in_flight_(nodes, 0), routed_(nodes, 0),
      current_weight_(nodes, 0.0), up_(nodes, 1), up_count_(nodes)
{
    assert(nodes > 0);
    for (const double w : config_.weights) {
        if (!std::isfinite(w) || w < 0.0) {
            throw std::invalid_argument(
                "LbConfig::weights must be finite and >= 0");
        }
    }
    config_.weights.resize(nodes, 1.0);
    bool any_positive = false;
    for (const double w : config_.weights)
        any_positive = any_positive || w > 0.0;
    if (!any_positive) {
        // All-zero means "no preference", i.e. uniform.
        for (double &w : config_.weights)
            w = 1.0;
    }
}

std::size_t
LoadBalancer::pick()
{
    if (up_count_ == 0)
        return kNoNode;
    switch (config_.policy) {
      case LbPolicy::RoundRobin: {
        // Advance the cursor past down nodes; up_count_ > 0 bounds
        // the scan.
        while (!up_[next_])
            next_ = (next_ + 1) % in_flight_.size();
        const std::size_t node = next_;
        next_ = (next_ + 1) % in_flight_.size();
        return node;
      }
      case LbPolicy::LeastConnections: {
        std::size_t best = kNoNode;
        for (std::size_t n = 0; n < in_flight_.size(); ++n) {
            if (!up_[n])
                continue;
            if (best == kNoNode || in_flight_[n] < in_flight_[best])
                best = n;
        }
        return best;
      }
      case LbPolicy::Weighted: {
        // Smooth weighted round-robin among up nodes: raise each by
        // its weight, pick the highest, then drop it by the up total.
        double total = 0.0;
        std::size_t best = kNoNode;
        for (std::size_t n = 0; n < current_weight_.size(); ++n) {
            if (!up_[n])
                continue;
            total += config_.weights[n];
            current_weight_[n] += config_.weights[n];
            if (best == kNoNode ||
                current_weight_[n] > current_weight_[best])
                best = n;
        }
        if (total <= 0.0) {
            // Every up node has weight 0 (the positive-weight nodes
            // are all down): degrade to least index rather than
            // blackholing traffic.
            for (std::size_t n = 0; n < up_.size(); ++n) {
                if (up_[n])
                    return n;
            }
        }
        current_weight_[best] -= total;
        return best;
      }
    }
    return kNoNode;
}

std::size_t
LoadBalancer::route()
{
    const std::size_t node = pick();
    if (node == kNoNode) {
        ++unroutable_;
        return kNoNode;
    }
    ++in_flight_[node];
    ++routed_[node];
    ++total_routed_;
    ++total_in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, total_in_flight_);
    return node;
}

void
LoadBalancer::complete(std::size_t node)
{
    assert(node < in_flight_.size() && in_flight_[node] > 0);
    assert(total_in_flight_ > 0);
    --in_flight_[node];
    --total_in_flight_;
}

void
LoadBalancer::setNodeDown(std::size_t node)
{
    assert(node < up_.size());
    if (!up_[node])
        return;
    up_[node] = 0;
    --up_count_;
    ++ejections_;
}

void
LoadBalancer::setNodeUp(std::size_t node)
{
    assert(node < up_.size());
    if (up_[node])
        return;
    up_[node] = 1;
    ++up_count_;
    ++readmissions_;
    // Re-entering smooth-WRR with stale credit would burst traffic at
    // the readmitted node; start it from neutral.
    current_weight_[node] = 0.0;
}

} // namespace jasim
