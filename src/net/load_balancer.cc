#include "net/load_balancer.h"

#include <cassert>
#include <numeric>

namespace jasim {

const char *
lbPolicyName(LbPolicy policy)
{
    switch (policy) {
      case LbPolicy::RoundRobin: return "round-robin";
      case LbPolicy::LeastConnections: return "least-connections";
      case LbPolicy::Weighted: return "weighted";
    }
    return "?";
}

LoadBalancer::LoadBalancer(const LbConfig &config, std::size_t nodes)
    : config_(config), in_flight_(nodes, 0), routed_(nodes, 0),
      current_weight_(nodes, 0.0)
{
    assert(nodes > 0);
    config_.weights.resize(nodes, 1.0);
    for (double &w : config_.weights) {
        if (w <= 0.0)
            w = 1.0;
    }
}

std::size_t
LoadBalancer::pick()
{
    switch (config_.policy) {
      case LbPolicy::RoundRobin: {
        const std::size_t node = next_;
        next_ = (next_ + 1) % in_flight_.size();
        return node;
      }
      case LbPolicy::LeastConnections: {
        std::size_t best = 0;
        for (std::size_t n = 1; n < in_flight_.size(); ++n) {
            if (in_flight_[n] < in_flight_[best])
                best = n;
        }
        return best;
      }
      case LbPolicy::Weighted: {
        // Smooth weighted round-robin: raise every node by its
        // weight, pick the highest, then drop it by the total.
        const double total = std::accumulate(
            config_.weights.begin(), config_.weights.end(), 0.0);
        std::size_t best = 0;
        for (std::size_t n = 0; n < current_weight_.size(); ++n) {
            current_weight_[n] += config_.weights[n];
            if (current_weight_[n] > current_weight_[best])
                best = n;
        }
        current_weight_[best] -= total;
        return best;
      }
    }
    return 0;
}

std::size_t
LoadBalancer::route()
{
    const std::size_t node = pick();
    ++in_flight_[node];
    ++routed_[node];
    ++total_routed_;
    std::size_t flying = 0;
    for (const std::size_t f : in_flight_)
        flying += f;
    peak_in_flight_ = std::max(peak_in_flight_, flying);
    return node;
}

void
LoadBalancer::complete(std::size_t node)
{
    assert(node < in_flight_.size() && in_flight_[node] > 0);
    --in_flight_[node];
}

} // namespace jasim
