/**
 * @file
 * The cluster's network fabric: every link in one place.
 *
 * Topology is the classic three-tier star: the driver (clients)
 * reaches the load balancer over one front link; the balancer fans
 * out to N app-server nodes; each node has its own link to the shared
 * database tier. Per-link RNG streams are forked from one fabric
 * seed, so a fabric is deterministic as a whole while links jitter
 * independently.
 */

#ifndef JASIM_NET_FABRIC_H
#define JASIM_NET_FABRIC_H

#include <memory>
#include <vector>

#include "net/endpoint.h"
#include "net/link.h"

namespace jasim {

/** Link characteristics per tier. */
struct FabricConfig
{
    LinkConfig client_lb = LinkConfig::lan();
    LinkConfig lb_node = LinkConfig::lan();
    LinkConfig node_db = LinkConfig::lan();

    /** A fabric where every hop is free (single-box equivalence). */
    static FabricConfig zeroCost()
    {
        FabricConfig config;
        config.client_lb = LinkConfig::zeroCost();
        config.lb_node = LinkConfig::zeroCost();
        config.node_db = LinkConfig::zeroCost();
        return config;
    }
};

/** The instantiated star topology. */
class NetworkFabric
{
  public:
    NetworkFabric(const FabricConfig &config, std::size_t nodes,
                  std::uint64_t seed);

    NetworkLink &clientLb() { return client_lb_; }
    NetworkLink &lbNode(std::size_t node) { return *lb_node_[node]; }
    NetworkLink &nodeDb(std::size_t node) { return *node_db_[node]; }

    std::size_t nodeCount() const { return lb_node_.size(); }

    /** Total bytes that crossed any link. */
    std::uint64_t totalBytes() const;

    /**
     * Minimum guaranteed one-way delivery delay over every link in
     * the fabric (us). No message can cross any hop faster than this,
     * so it is a sound conservative lookahead window for
     * jasim::lane. Zero if any link is zero-cost.
     */
    SimTime minLatencyUs() const;

    /**
     * Install a partition: endpoints on different sides cannot reach
     * each other until clearPartition(). An endpoint listed on no
     * side remains reachable from everyone (the LB/driver links are
     * never listed, so front traffic is untouched). Deterministic —
     * no RNG is consulted; callers fail cross-side sends fast.
     */
    void setPartition(std::vector<std::vector<NetEndpoint>> sides);
    void clearPartition() { sides_.clear(); }
    bool partitioned() const { return !sides_.empty(); }

    /** True iff `a` can currently send to `b` (and vice versa). */
    bool reachable(const NetEndpoint &a, const NetEndpoint &b) const;

    /** Count one message refused by the partition map. */
    void notePartitionDrop() { ++partition_drops_; }
    std::uint64_t partitionDrops() const { return partition_drops_; }

  private:
    /** Side index holding `ep`, or -1 when unlisted. */
    int sideOf(const NetEndpoint &ep) const;

    NetworkLink client_lb_;
    std::vector<std::unique_ptr<NetworkLink>> lb_node_;
    std::vector<std::unique_ptr<NetworkLink>> node_db_;
    std::vector<std::vector<NetEndpoint>> sides_;
    std::uint64_t partition_drops_ = 0;
};

} // namespace jasim

#endif // JASIM_NET_FABRIC_H
