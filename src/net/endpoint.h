/**
 * @file
 * Named endpoints of the cluster fabric, as a partition can see them.
 *
 * The fault grammar's `partition` verb splits the fabric into sides;
 * each side lists endpoints by a tiny textual scheme:
 *
 *   `3`       app-server node 3
 *   `db1`     shard 1's primary slot
 *   `db1.2`   shard 1, replica 2
 *
 * The driver, load balancer, and client links are never listed — an
 * endpoint that appears on no side stays reachable from everyone, so
 * front-of-house traffic is unaffected by a DB-tier split.
 */

#ifndef JASIM_NET_ENDPOINT_H
#define JASIM_NET_ENDPOINT_H

#include <cstdint>
#include <string>

namespace jasim {

/** One partitionable endpoint (app node, shard primary, or replica). */
struct NetEndpoint
{
    enum class Kind : std::uint8_t
    {
        Node,      //!< app-server node `index`
        DbPrimary, //!< shard `index`'s primary slot
        DbReplica, //!< shard `index`, replica `replica`
    };

    Kind kind = Kind::Node;
    std::size_t index = 0;   //!< node number or shard number
    std::size_t replica = 0; //!< replica number (DbReplica only)

    friend bool operator==(const NetEndpoint &a, const NetEndpoint &b)
    {
        return a.kind == b.kind && a.index == b.index &&
               (a.kind != Kind::DbReplica || a.replica == b.replica);
    }
    friend bool operator!=(const NetEndpoint &a, const NetEndpoint &b)
    {
        return !(a == b);
    }

    static NetEndpoint node(std::size_t n)
    {
        return {Kind::Node, n, 0};
    }
    static NetEndpoint dbPrimary(std::size_t shard)
    {
        return {Kind::DbPrimary, shard, 0};
    }
    static NetEndpoint dbReplica(std::size_t shard, std::size_t replica)
    {
        return {Kind::DbReplica, shard, replica};
    }
};

/**
 * Parse one endpoint token (`3`, `db1`, `db1.2`). Sets `ok` false and
 * returns a default endpoint on malformed input; the fault parser
 * turns that into its usual `--faults:` diagnostic.
 */
inline NetEndpoint
parseNetEndpoint(const std::string &token, bool &ok)
{
    ok = false;
    NetEndpoint ep;
    if (token.empty())
        return ep;
    std::size_t pos = 0;
    if (token.compare(0, 2, "db") == 0) {
        pos = 2;
        ep.kind = NetEndpoint::Kind::DbPrimary;
    }
    std::size_t digits = 0;
    std::size_t value = 0;
    while (pos < token.size() && token[pos] >= '0' && token[pos] <= '9') {
        value = value * 10 + static_cast<std::size_t>(token[pos] - '0');
        ++pos;
        ++digits;
    }
    if (digits == 0)
        return ep;
    ep.index = value;
    if (pos == token.size()) {
        ok = true;
        return ep;
    }
    // `db<k>.<r>` — a replica slot. Nodes take no suffix.
    if (ep.kind != NetEndpoint::Kind::DbPrimary || token[pos] != '.')
        return ep;
    ++pos;
    digits = 0;
    value = 0;
    while (pos < token.size() && token[pos] >= '0' && token[pos] <= '9') {
        value = value * 10 + static_cast<std::size_t>(token[pos] - '0');
        ++pos;
        ++digits;
    }
    if (digits == 0 || pos != token.size())
        return ep;
    ep.kind = NetEndpoint::Kind::DbReplica;
    ep.replica = value;
    ok = true;
    return ep;
}

/** Printable endpoint name in the grammar's own scheme. */
inline std::string
describeNetEndpoint(const NetEndpoint &ep)
{
    switch (ep.kind) {
      case NetEndpoint::Kind::Node:
        return std::to_string(ep.index);
      case NetEndpoint::Kind::DbPrimary:
        return "db" + std::to_string(ep.index);
      case NetEndpoint::Kind::DbReplica:
        return "db" + std::to_string(ep.index) + "." +
               std::to_string(ep.replica);
    }
    return "?";
}

} // namespace jasim

#endif // JASIM_NET_ENDPOINT_H
