#include "net/fabric.h"

#include <algorithm>

namespace jasim {

NetworkFabric::NetworkFabric(const FabricConfig &config,
                             std::size_t nodes, std::uint64_t seed)
    : client_lb_(config.client_lb, seed ^ 0xfab0ull)
{
    Rng seeder(seed ^ 0xfab1ull);
    lb_node_.reserve(nodes);
    node_db_.reserve(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
        lb_node_.push_back(
            std::make_unique<NetworkLink>(config.lb_node, seeder()));
        node_db_.push_back(
            std::make_unique<NetworkLink>(config.node_db, seeder()));
    }
}

SimTime
NetworkFabric::minLatencyUs() const
{
    SimTime min = client_lb_.minLatencyUs();
    for (const auto &link : lb_node_)
        min = std::min(min, link->minLatencyUs());
    for (const auto &link : node_db_)
        min = std::min(min, link->minLatencyUs());
    return min;
}

void
NetworkFabric::setPartition(std::vector<std::vector<NetEndpoint>> sides)
{
    sides_ = std::move(sides);
}

int
NetworkFabric::sideOf(const NetEndpoint &ep) const
{
    for (std::size_t s = 0; s < sides_.size(); ++s)
        for (const NetEndpoint &member : sides_[s])
            if (member == ep)
                return static_cast<int>(s);
    return -1;
}

bool
NetworkFabric::reachable(const NetEndpoint &a, const NetEndpoint &b) const
{
    if (sides_.empty())
        return true;
    const int sa = sideOf(a);
    const int sb = sideOf(b);
    if (sa < 0 || sb < 0)
        return true;
    return sa == sb;
}

std::uint64_t
NetworkFabric::totalBytes() const
{
    std::uint64_t total = client_lb_.stats().bytes;
    for (const auto &link : lb_node_)
        total += link->stats().bytes;
    for (const auto &link : node_db_)
        total += link->stats().bytes;
    return total;
}

} // namespace jasim
