#include "net/fabric.h"

#include <algorithm>

namespace jasim {

NetworkFabric::NetworkFabric(const FabricConfig &config,
                             std::size_t nodes, std::uint64_t seed)
    : client_lb_(config.client_lb, seed ^ 0xfab0ull)
{
    Rng seeder(seed ^ 0xfab1ull);
    lb_node_.reserve(nodes);
    node_db_.reserve(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
        lb_node_.push_back(
            std::make_unique<NetworkLink>(config.lb_node, seeder()));
        node_db_.push_back(
            std::make_unique<NetworkLink>(config.node_db, seeder()));
    }
}

SimTime
NetworkFabric::minLatencyUs() const
{
    SimTime min = client_lb_.minLatencyUs();
    for (const auto &link : lb_node_)
        min = std::min(min, link->minLatencyUs());
    for (const auto &link : node_db_)
        min = std::min(min, link->minLatencyUs());
    return min;
}

std::uint64_t
NetworkFabric::totalBytes() const
{
    std::uint64_t total = client_lb_.stats().bytes;
    for (const auto &link : lb_node_)
        total += link->stats().bytes;
    for (const auto &link : node_db_)
        total += link->stats().bytes;
    return total;
}

} // namespace jasim
