/**
 * @file
 * Point-to-point network link model.
 *
 * A link is a FIFO serializer plus a propagation delay: a message
 * occupies the transmitter for bytes/bandwidth microseconds (so
 * back-to-back messages queue behind each other) and then propagates
 * for one one-way latency, stretched by a seeded log-normal jitter
 * multiplier so delivery times vary run-to-run only with the seed.
 * A default-constructed LinkConfig with latency_us = 0 and
 * jitter_sigma = 0 is a zero-cost link, which the cluster equivalence
 * tests rely on.
 *
 * The jitter multiplier is clamped below at kJitterFloor, so a link
 * has a guaranteed minimum one-way latency, `minLatencyUs()`. That
 * bound is load-bearing: jasim::lane uses the fabric-wide minimum as
 * its conservative lookahead window, and an unbounded log-normal
 * would let a single early delivery violate the window. Each
 * direction draws jitter from its own forked RNG stream and keeps its
 * own stats, so the two directions of a full-duplex link are
 * independent — which is what lets the forward and reverse paths be
 * owned by different event lanes.
 */

#ifndef JASIM_NET_LINK_H
#define JASIM_NET_LINK_H

#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace jasim {

/** One link's fixed characteristics. */
struct LinkConfig
{
    /** One-way propagation latency (us). */
    double latency_us = 0.0;

    /**
     * Transmit bandwidth in bytes per microsecond (1 Gb/s = 125).
     * Zero or negative means infinite bandwidth (no serialization).
     */
    double bytes_per_us = 125.0;

    /**
     * Sigma of the log-normal latency jitter; the multiplier has mean
     * 1 so the configured latency is also the expected latency. Zero
     * disables jitter (and draws nothing from the RNG).
     */
    double jitter_sigma = 0.0;

    /** A LAN-ish link: 100 us one way, 1 Gb/s, mild jitter. */
    static LinkConfig lan()
    {
        return LinkConfig{100.0, 125.0, 0.15};
    }

    /** Free, instantaneous transfer (loopback / test fabric). */
    static LinkConfig zeroCost() { return LinkConfig{0.0, 0.0, 0.0}; }
};

/** Statistics a link accumulates. */
struct LinkStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    SimTime tx_busy_us = 0;     //!< serialization time accumulated
    SimTime tx_queued_us = 0;   //!< time messages waited for the wire
};

/**
 * A full-duplex link: each direction has its own serializer, so
 * request and response traffic do not contend with each other (as on
 * real twisted-pair Ethernet).
 */
class NetworkLink
{
  public:
    enum class Direction : std::uint8_t { Forward, Reverse };

    /**
     * Lower clamp on the log-normal jitter multiplier. With sigma
     * 0.15 (the lan() default) a draw this low is a ~4.6-sigma event
     * in log space, so the clamp is unobservable in practice — it
     * exists to make minLatencyUs() a hard guarantee rather than a
     * statistical one.
     */
    static constexpr double kJitterFloor = 0.5;

    NetworkLink(const LinkConfig &config, std::uint64_t seed);

    /**
     * Send `bytes` at time `now`; returns the absolute arrival time
     * at the far end. FIFO per direction: a message queues behind the
     * previous message's serialization.
     */
    SimTime deliver(SimTime now, std::uint64_t bytes,
                    Direction direction = Direction::Forward);

    /**
     * Fault injection: stretch propagation by `latency_mult` and
     * lose each message with probability `drop_probability` (as
     * polled by drawDrop()). A multiplier of 1 and probability of 0
     * restore healthy behaviour exactly.
     */
    void setDegradation(double latency_mult, double drop_probability);

    /** Undo setDegradation(). */
    void clearDegradation() { setDegradation(1.0, 0.0); }

    bool degraded() const
    {
        return latency_mult_ != 1.0 || drop_probability_ > 0.0;
    }
    double dropProbability() const { return drop_probability_; }

    /**
     * Draw whether the next message is lost. Consumes RNG state only
     * while a drop probability is set, so healthy runs see the exact
     * jitter stream they always did.
     */
    bool drawDrop();

    /** Expected round-trip time, jitter-free (us). */
    double rttUs() const { return 2.0 * config_.latency_us; }

    /**
     * Guaranteed minimum one-way delivery delay (us): the configured
     * latency scaled by the jitter floor when jitter is enabled.
     * Degradation multipliers only ever raise latency, and
     * serialization only adds, so no message delivered at time `now`
     * can arrive before `now + minLatencyUs()`. jasim::lane takes the
     * fabric-wide minimum of this as its lookahead window.
     */
    SimTime minLatencyUs() const;

    const LinkConfig &config() const { return config_; }

    /** Stats summed over both directions. */
    LinkStats stats() const;

    /** One direction's stats. */
    const LinkStats &stats(Direction direction) const
    {
        return stats_[static_cast<std::size_t>(direction)];
    }

    /** Messages the degraded link has dropped (via drawDrop). */
    std::uint64_t dropped() const { return dropped_; }

  private:
    LinkConfig config_;
    Rng rng_[2];       //!< per-direction jitter streams
    Rng drop_rng_;     //!< fault-mode drop draws (own stream)
    SimTime tx_free_[2] = {0, 0}; //!< per-direction next-free time
    LinkStats stats_[2];
    double latency_mult_ = 1.0;
    double drop_probability_ = 0.0;
    std::uint64_t dropped_ = 0;

    SimTime propagation(Direction direction);
};

} // namespace jasim

#endif // JASIM_NET_LINK_H
