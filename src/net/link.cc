#include "net/link.h"

#include <algorithm>
#include <cmath>

#include "sim/distributions.h"

namespace jasim {

NetworkLink::NetworkLink(const LinkConfig &config, std::uint64_t seed)
    : config_(config), rng_{Rng(seed), Rng(seed ^ 0x9d1full)},
      drop_rng_(seed)
{
    // drop_rng_ deliberately shares the plain link seed: drops used to
    // draw from the (single) jitter stream, and jitter never consumed
    // state on the zero-cost fabrics the fault tests run on, so this
    // keeps every no-jitter fault schedule's drop sequence exactly as
    // it always was.
}

SimTime
NetworkLink::propagation(Direction direction)
{
    if (config_.latency_us <= 0.0)
        return 0;
    double latency = config_.latency_us * latency_mult_;
    if (config_.jitter_sigma > 0.0) {
        const double sigma = config_.jitter_sigma;
        // Mean-1 multiplier: E[lognormal(-s^2/2, s)] = 1. The floor
        // bounds how early a jittered message can arrive, which is
        // what makes minLatencyUs() sound as a lookahead window.
        const double mult = std::max(
            drawLogNormal(rng_[static_cast<std::size_t>(direction)],
                          -sigma * sigma / 2.0, sigma),
            kJitterFloor);
        latency *= mult;
    }
    return static_cast<SimTime>(std::llround(latency));
}

SimTime
NetworkLink::minLatencyUs() const
{
    if (config_.latency_us <= 0.0)
        return 0;
    const double floor_mult =
        config_.jitter_sigma > 0.0 ? kJitterFloor : 1.0;
    // Round down: llround(latency * mult) with mult >= floor_mult can
    // never land below floor(latency * floor_mult).
    return static_cast<SimTime>(
        std::floor(config_.latency_us * floor_mult));
}

void
NetworkLink::setDegradation(double latency_mult,
                            double drop_probability)
{
    latency_mult_ = std::max(latency_mult, 1.0);
    drop_probability_ =
        std::min(std::max(drop_probability, 0.0), 1.0);
}

bool
NetworkLink::drawDrop()
{
    if (drop_probability_ <= 0.0)
        return false;
    if (!drop_rng_.chance(drop_probability_))
        return false;
    ++dropped_;
    return true;
}

LinkStats
NetworkLink::stats() const
{
    LinkStats total = stats_[0];
    total.messages += stats_[1].messages;
    total.bytes += stats_[1].bytes;
    total.tx_busy_us += stats_[1].tx_busy_us;
    total.tx_queued_us += stats_[1].tx_queued_us;
    return total;
}

SimTime
NetworkLink::deliver(SimTime now, std::uint64_t bytes,
                     Direction direction)
{
    const auto dir = static_cast<std::size_t>(direction);
    SimTime &tx_free = tx_free_[dir];
    SimTime tx_us = 0;
    if (config_.bytes_per_us > 0.0) {
        tx_us = static_cast<SimTime>(std::llround(
            static_cast<double>(bytes) / config_.bytes_per_us));
    }
    const SimTime start = std::max(now, tx_free);
    tx_free = start + tx_us;

    LinkStats &stats = stats_[dir];
    stats.messages += 1;
    stats.bytes += bytes;
    stats.tx_busy_us += tx_us;
    stats.tx_queued_us += start - now;

    return tx_free + propagation(direction);
}

} // namespace jasim
