#include "net/link.h"

#include <algorithm>
#include <cmath>

#include "sim/distributions.h"

namespace jasim {

NetworkLink::NetworkLink(const LinkConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed)
{
}

SimTime
NetworkLink::propagation()
{
    if (config_.latency_us <= 0.0)
        return 0;
    double latency = config_.latency_us * latency_mult_;
    if (config_.jitter_sigma > 0.0) {
        const double sigma = config_.jitter_sigma;
        // Mean-1 multiplier: E[lognormal(-s^2/2, s)] = 1.
        latency *= drawLogNormal(rng_, -sigma * sigma / 2.0, sigma);
    }
    return static_cast<SimTime>(std::llround(latency));
}

void
NetworkLink::setDegradation(double latency_mult,
                            double drop_probability)
{
    latency_mult_ = std::max(latency_mult, 1.0);
    drop_probability_ =
        std::min(std::max(drop_probability, 0.0), 1.0);
}

bool
NetworkLink::drawDrop()
{
    if (drop_probability_ <= 0.0)
        return false;
    if (!rng_.chance(drop_probability_))
        return false;
    ++dropped_;
    return true;
}

SimTime
NetworkLink::deliver(SimTime now, std::uint64_t bytes,
                     Direction direction)
{
    SimTime &tx_free = tx_free_[static_cast<std::size_t>(direction)];
    SimTime tx_us = 0;
    if (config_.bytes_per_us > 0.0) {
        tx_us = static_cast<SimTime>(std::llround(
            static_cast<double>(bytes) / config_.bytes_per_us));
    }
    const SimTime start = std::max(now, tx_free);
    tx_free = start + tx_us;

    stats_.messages += 1;
    stats_.bytes += bytes;
    stats_.tx_busy_us += tx_us;
    stats_.tx_queued_us += start - now;

    return tx_free + propagation();
}

} // namespace jasim
