#include "repl/failover.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "repl/replicated_db.h"
#include "sim/types.h"
#include "synth/component_profiles.h"

namespace jasim::repl {

const char *
failoverKindName(FailoverKind kind)
{
    switch (kind) {
      case FailoverKind::Crash: return "crash";
      case FailoverKind::Partition: return "partition";
      case FailoverKind::Switchover: return "switchover";
    }
    return "?";
}

namespace {

/** Settle the durability audit at the promotion watermark. */
void
settleAuditAt(ShardGroup &group, std::uint64_t watermark)
{
    // Commits the promoted side holds durably survive, everything
    // above W is wiped with the deposed primary. Sync mode acked only
    // at or below W, so a lost *acked* commit here is a real bug.
    std::unordered_set<std::uint64_t> surviving;
    for (const WalRecord &rec : group.database().wal().records()) {
        if (rec.type == WalRecordType::Commit && rec.lsn <= watermark)
            surviving.insert(rec.lsn);
    }
    group.auditor().noteCrash(surviving,
                              group.database().wal().truncatedUpTo());
}

} // namespace

void
FailoverController::promote(ShardGroup &group, FailoverOutcome out,
                            SimTime delay_us, Done done)
{
    queue_.scheduleAfter(delay_us, [this, &group, out, done]() mutable {
        // Promotion: rewind the shard to W, then charge the promoted
        // replica's catch-up -- replay its unapplied log gap, flush
        // the promotion checkpoint, burn the redo CPU.
        out.stats = group.database().failoverTo(out.watermark);
        SimTime ready = queue_.now();
        if (out.catchup_bytes > 0)
            ready = std::max(
                ready, group.disk()
                           .readSequential(ready, out.catchup_bytes)
                           .completion);
        const std::uint64_t flush_bytes =
            out.stats.pages_flushed * 4096 + out.stats.checkpoint_bytes;
        if (flush_bytes > 0)
            ready = std::max(
                ready, group.disk().write(ready, flush_bytes).completion);
        const double cpu =
            config_.promote_cpu_floor_us +
            config_.promote_cpu_us_per_kb * (out.catchup_bytes / 1024.0);
        ready = std::max(ready, group.scheduler()
                                    .run(ready, cpu, Component::Db2)
                                    .completion);
        queue_.scheduleAt(ready, [this, &group, out, done]() mutable {
            group.resyncReplicas(out.watermark);
            group.database().confirmWalDurable(
                group.database().wal().issuedLsn());
            if (out.kind == FailoverKind::Partition)
                group.setServingMember(out.promoted_member);
            if (group.leaseArmed())
                group.regrantLease();
            group.endBlackout();
            out.promoted_at = queue_.now();
            ++failovers_;
            history_.push_back(out);
            if (done)
                done(out);
        });
    });
}

bool
FailoverController::primaryCrashed(std::size_t shard, ShardGroup &group,
                                   Done done)
{
    if (group.down() || !group.anyLiveReplica())
        return false;

    FailoverOutcome out;
    out.shard = shard;
    out.kind = FailoverKind::Crash;
    out.crash_at = queue_.now();
    out.blackout_begin = queue_.now();
    out.watermark = group.maxLiveReplicaDurable();
    out.promoted_member = group.mostCaughtUpReplica();
    out.catchup_bytes = group.replica(out.promoted_member).unappliedBytes();
    if (group.leaseArmed()) {
        out.fencing_token = group.lease().issueToken();
        group.fenceReplicas(out.fencing_token);
    }

    group.beginBlackout();
    settleAuditAt(group, out.watermark);
    promote(group, out, secs(config_.detect_s), done);
    return true;
}

bool
FailoverController::partitionPromote(std::size_t shard, ShardGroup &group,
                                     std::size_t candidate,
                                     std::uint64_t watermark, Done done)
{
    if (group.down())
        return false;

    FailoverOutcome out;
    out.shard = shard;
    out.kind = FailoverKind::Partition;
    out.crash_at = queue_.now();
    // The shard stopped acking when its lease lapsed; bill the
    // blackout from there, not from the (later) monitor decision.
    out.blackout_begin = queue_.now();
    if (group.leaseArmed())
        out.blackout_begin =
            std::min(out.blackout_begin, group.lease().expiry());
    out.watermark = watermark;
    out.promoted_member = candidate;
    out.catchup_bytes = group.replica(candidate).unappliedBytes();
    if (group.leaseArmed()) {
        out.fencing_token = group.lease().issueToken();
        group.fenceReplicas(out.fencing_token);
    }

    group.beginBlackout();
    settleAuditAt(group, out.watermark);
    // Detection latency was already paid by the lease monitor's
    // cadence (lapse + detect before it may promote), so the
    // promotion work starts immediately.
    promote(group, out, 0, done);
    return true;
}

bool
FailoverController::plannedSwitchover(std::size_t shard,
                                      ShardGroup &group, Done done)
{
    if (group.down() || group.draining() || !group.anyLiveReplica())
        return false;
    if (group.leaseArmed() && !group.leaseValid())
        return false;

    group.beginDrain();
    auto finished = std::make_shared<bool>(false);

    // A wedged drain (replicas die mid-handoff, ack target never
    // reached) must not fail-fast the shard forever.
    queue_.scheduleAfter(secs(config_.switchover_timeout_s),
                         [this, &group, finished] {
                             if (*finished)
                                 return;
                             *finished = true;
                             group.endDrain();
                             ++switchover_aborts_;
                         });

    group.whenDrained([this, shard, &group, finished, done] {
        if (*finished)
            return;
        // Every client txn has settled; now wait until the handoff
        // target holds the full log durably (quorum-durably when a
        // lease is armed), i.e. the applied watermark of the new
        // timeline equals the old one.
        const std::uint64_t target = group.database().wal().durableLsn();
        group.whenAckDurable(target, [this, shard, &group, target,
                                      finished, done] {
            if (*finished)
                return;
            *finished = true;

            FailoverOutcome out;
            out.shard = shard;
            out.kind = FailoverKind::Switchover;
            out.crash_at = queue_.now();
            out.blackout_begin = queue_.now();
            out.watermark = target;
            out.promoted_member = group.mostCaughtUpReplica();
            out.catchup_bytes =
                group.replica(out.promoted_member).unappliedBytes();
            if (group.leaseArmed()) {
                out.fencing_token = group.lease().issueToken();
                group.fenceReplicas(out.fencing_token);
            }

            group.beginBlackout();
            settleAuditAt(group, out.watermark);
            group.endDrain();
            promote(group, out, 0, done);
        });
    });
    return true;
}

} // namespace jasim::repl
