#include "repl/failover.h"

#include <algorithm>
#include <unordered_set>

#include "repl/replicated_db.h"
#include "sim/types.h"
#include "synth/component_profiles.h"

namespace jasim::repl {

bool
FailoverController::primaryCrashed(std::size_t shard, ShardGroup &group,
                                   Done done)
{
    if (group.down() || !group.anyLiveReplica())
        return false;

    FailoverOutcome out;
    out.shard = shard;
    out.crash_at = queue_.now();
    out.watermark = group.maxLiveReplicaDurable();
    const std::size_t promoted = group.mostCaughtUpReplica();
    out.catchup_bytes = group.replica(promoted).unappliedBytes();

    group.beginBlackout();

    // Settle the audit at the watermark before anything is rewound:
    // commits the promoted replica holds durably survive, everything
    // above W is wiped with the old primary. Sync mode acked only at
    // or below W, so a lost *acked* commit here is a real bug.
    std::unordered_set<std::uint64_t> surviving;
    for (const WalRecord &rec : group.database().wal().records()) {
        if (rec.type == WalRecordType::Commit && rec.lsn <= out.watermark)
            surviving.insert(rec.lsn);
    }
    group.auditor().noteCrash(surviving,
                              group.database().wal().truncatedUpTo());

    queue_.scheduleAfter(
        secs(config_.detect_s), [this, &group, out, done]() mutable {
            // Promotion: rewind the shard to W, then charge the
            // promoted replica's catch-up -- replay its unapplied log
            // gap, flush the promotion checkpoint, burn the redo CPU.
            out.stats = group.database().failoverTo(out.watermark);
            SimTime ready = queue_.now();
            if (out.catchup_bytes > 0)
                ready = std::max(
                    ready, group.disk()
                               .readSequential(ready, out.catchup_bytes)
                               .completion);
            const std::uint64_t flush_bytes =
                out.stats.pages_flushed * 4096 +
                out.stats.checkpoint_bytes;
            if (flush_bytes > 0)
                ready = std::max(
                    ready,
                    group.disk().write(ready, flush_bytes).completion);
            const double cpu =
                config_.promote_cpu_floor_us +
                config_.promote_cpu_us_per_kb *
                    (out.catchup_bytes / 1024.0);
            ready = std::max(ready, group.scheduler()
                                        .run(ready, cpu, Component::Db2)
                                        .completion);
            queue_.scheduleAt(ready,
                              [this, &group, out, done]() mutable {
                group.resyncReplicas(out.watermark);
                group.database().confirmWalDurable(
                    group.database().wal().issuedLsn());
                group.endBlackout();
                out.promoted_at = queue_.now();
                ++failovers_;
                history_.push_back(out);
                if (done)
                    done(out);
            });
        });
    return true;
}

} // namespace jasim::repl
