#include "repl/lease.h"

namespace jasim {

void
Lease::grant(SimTime expiry)
{
    if (expiry <= expiry_)
        return;
    expiry_ = expiry;
    ++renewals_;
}

} // namespace jasim
