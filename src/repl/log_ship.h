/**
 * @file
 * WAL log shipping: one primary-to-replica replication stream.
 *
 * Every commit-time force on a shard primary ships the newly forced
 * window down a dedicated network link (so replication lag is real
 * simulated latency + bandwidth + serialization queueing), then the
 * replica forces the window to its own WAL device before its durable
 * watermark advances -- the standby is only as durable as its disk.
 * The applied watermark trails durable by a redo-apply CPU delay; the
 * durable/applied gap is the catch-up work a promotion must pay for.
 *
 * Faults: a replica crash drops the stream (in-flight windows are
 * discarded via a generation counter) and a restart resilvers from
 * scratch -- watermarks reset and jump forward with the next shipped
 * window, modeling a full resync riding the stream.
 *
 * Fencing: every shipment may carry a fencing token (see
 * repl/lease.h). The replica remembers the newest token it has seen
 * (or been fenced to at a promotion) and refuses any window carrying
 * an older one at arrival, before paying replica-disk I/O -- a
 * deposed primary's post-partition writes bounce instead of moving
 * the watermark. Token 0 (no lease armed) never fences anything.
 */

#ifndef JASIM_REPL_LOG_SHIP_H
#define JASIM_REPL_LOG_SHIP_H

#include <cstdint>
#include <functional>

#include "net/link.h"
#include "os/disk.h"
#include "sim/event_queue.h"

namespace jasim::repl {

/** One replica's stream characteristics. */
struct ReplicaConfig
{
    /** Primary -> replica shipping link. */
    LinkConfig link = LinkConfig::lan();

    /** Replica WAL device (force completes before durable advances). */
    DiskConfig disk;

    /** Redo-apply cost per shipped KB (applied trails durable). */
    double apply_us_per_kb = 3.0;
};

/** A log-shipping stream and its replica-side watermarks. */
class LogShipStream
{
  public:
    LogShipStream(EventQueue &queue, const ReplicaConfig &config,
                  std::uint64_t seed);

    /** Fires (on the primary side) whenever durableLsn() advances. */
    using DurableHook = std::function<void(std::uint64_t lsn)>;
    void setDurableHook(DurableHook hook) { durable_hook_ = std::move(hook); }

    /**
     * Ship the freshly forced window ending at `lsn` (`bytes` of log).
     * Called by the cluster at the primary's force-I/O completion.
     * `token` is the shipper's fencing token (0 = unfenced legacy
     * stream); windows older than the replica's fence are refused.
     */
    void ship(std::uint64_t lsn, std::uint64_t bytes,
              std::uint64_t token = 0);

    /** Highest LSN forced to the replica's WAL device. */
    std::uint64_t durableLsn() const { return durable_lsn_; }

    /** Highest LSN redo-applied to the replica's page image. */
    std::uint64_t appliedLsn() const { return applied_lsn_; }

    /** Log bytes durable on the replica but not yet applied. */
    std::uint64_t unappliedBytes() const { return unapplied_bytes_; }

    std::uint64_t shippedBytes() const { return shipped_bytes_; }
    std::uint64_t shippedWindows() const { return shipped_windows_; }

    // ---- faults / failover ----

    bool alive() const { return alive_; }

    /** Replica crash: stream stops, in-flight windows are lost. */
    void crash();

    /** Replica restart: resilver (watermarks reset, resync on ship). */
    void restart();

    /**
     * Failover resync: clamp watermarks to the promoted timeline's
     * watermark and drop in-flight traffic from the old primary.
     */
    void resyncTo(std::uint64_t lsn);

    // ---- fencing ----

    /** Raise the replica's fence (promotion); never lowers it. */
    void setFenceToken(std::uint64_t token);

    /** Newest fencing token this replica has seen or been set to. */
    std::uint64_t fenceToken() const { return fence_token_; }

    /** Windows refused because they carried a stale token. */
    std::uint64_t fencedWindows() const { return fenced_windows_; }

    NetworkLink &link() { return link_; }
    DiskModel &disk() { return disk_; }

  private:
    EventQueue &queue_;
    ReplicaConfig config_;
    NetworkLink link_;
    DiskModel disk_;
    DurableHook durable_hook_;

    bool alive_ = true;
    std::uint64_t generation_ = 0; //!< bumped to drop in-flight windows
    std::uint64_t durable_lsn_ = 0;
    std::uint64_t applied_lsn_ = 0;
    std::uint64_t unapplied_bytes_ = 0;
    std::uint64_t shipped_bytes_ = 0;
    std::uint64_t shipped_windows_ = 0;
    std::uint64_t fence_token_ = 0;
    std::uint64_t fenced_windows_ = 0;
};

} // namespace jasim::repl

#endif // JASIM_REPL_LOG_SHIP_H
