#include "repl/replicated_db.h"

#include <algorithm>

namespace jasim::repl {

ShardGroup::ShardGroup(EventQueue &queue,
                       const ShardGroupConfig &config, std::uint64_t seed)
    : queue_(queue), config_(config),
      app_(config.db, config.injection_rate, seed),
      scheduler_(config.cpus), disk_(config.disk)
{
    // Shipping needs WAL retention and failover gates on the audit:
    // both are always armed on a shard primary. Audit first, so the
    // empty audit table is part of the stable baseline.
    app_.enableAudit();
    app_.database().enableRecovery();

    Rng seeder(seed ^ 0x4e95ull);
    for (std::size_t r = 0; r < config.replicas; ++r) {
        replicas_.push_back(std::make_unique<LogShipStream>(
            queue_, config.replica, seeder()));
        replicas_.back()->setDurableHook(
            [this](std::uint64_t) { onReplicaDurable(); });
    }
    if (!replicas_.empty())
        app_.database().setTruncationFloor(0);
}

void
ShardGroup::shipForced(std::uint64_t lsn, std::uint64_t bytes)
{
    if (down_)
        return;
    if (!lease_on_) {
        for (const auto &stream : replicas_)
            stream->ship(lsn, bytes);
        return;
    }
    // Leased shipments carry the current fencing token and fail
    // cross-side sends fast at the partition map -- no wire traffic.
    const std::uint64_t token = lease_.fencingToken();
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (reachable_ && !reachable_(r)) {
            ++ship_blocked_;
            continue;
        }
        replicas_[r]->ship(lsn, bytes, token);
    }
}

void
ShardGroup::whenAckDurable(std::uint64_t lsn, AckFn done)
{
    if (replicas_.empty() || lsn <= ackDurableLsn()) {
        done();
        return;
    }
    ++ack_waits_;
    waiters_.push_back(Waiter{lsn, std::move(done)});
}

std::uint64_t
ShardGroup::ackDurableLsn() const
{
    if (!lease_on_)
        return maxLiveReplicaDurable();
    const std::size_t need = lease_.quorumAcks();
    if (need <= 1)
        return maxLiveReplicaDurable();
    std::vector<std::uint64_t> durable;
    durable.reserve(replicas_.size());
    for (const auto &stream : replicas_)
        if (stream->alive())
            durable.push_back(stream->durableLsn());
    if (durable.size() < need)
        return 0;
    std::sort(durable.begin(), durable.end(),
              std::greater<std::uint64_t>());
    return durable[need - 1];
}

void
ShardGroup::onReplicaDurable()
{
    app_.database().setTruncationFloor(minReplicaDurable());
    const std::uint64_t durable = ackDurableLsn();
    // Fire ripe waiters in FIFO order (deterministic ack order).
    std::vector<Waiter> ready;
    std::vector<Waiter> rest;
    for (Waiter &w : waiters_) {
        if (w.lsn <= durable)
            ready.push_back(std::move(w));
        else
            rest.push_back(std::move(w));
    }
    waiters_ = std::move(rest);
    for (Waiter &w : ready)
        w.done();
}

std::uint64_t
ShardGroup::maxLiveReplicaDurable() const
{
    std::uint64_t best = 0;
    for (const auto &stream : replicas_)
        if (stream->alive())
            best = std::max(best, stream->durableLsn());
    return best;
}

std::uint64_t
ShardGroup::minReplicaDurable() const
{
    std::uint64_t floor = ~0ull;
    for (const auto &stream : replicas_)
        floor = std::min(floor, stream->durableLsn());
    return floor == ~0ull ? 0 : floor;
}

bool
ShardGroup::anyLiveReplica() const
{
    for (const auto &stream : replicas_)
        if (stream->alive())
            return true;
    return false;
}

std::size_t
ShardGroup::mostCaughtUpReplica() const
{
    std::size_t best = 0;
    std::uint64_t best_lsn = 0;
    bool found = false;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (!replicas_[r]->alive())
            continue;
        if (!found || replicas_[r]->durableLsn() > best_lsn) {
            best = r;
            best_lsn = replicas_[r]->durableLsn();
            found = true;
        }
    }
    return best;
}

void
ShardGroup::resyncReplicas(std::uint64_t lsn)
{
    for (const auto &stream : replicas_)
        if (stream->alive())
            stream->resyncTo(lsn);
    if (!replicas_.empty())
        app_.database().setTruncationFloor(minReplicaDurable());
}

void
ShardGroup::beginBlackout()
{
    down_ = true;
    ++generation_;
    waiters_.clear();
}

void
ShardGroup::endBlackout()
{
    down_ = false;
}

void
ShardGroup::armLease(const LeaseConfig &config, ReachFn reachable)
{
    lease_on_ = true;
    lease_config_ = config;
    lease_ = Lease(replicas_.size());
    reachable_ = std::move(reachable);
    lease_us_ = secs(config.lease_s);
    // A zero renew interval would spin the queue; floor at 1 ms.
    renew_us_ = std::max<SimTime>(secs(config.renew_s), 1000);
    hb_bytes_ = static_cast<std::uint64_t>(config.heartbeat_bytes);
}

void
ShardGroup::startLease()
{
    if (!lease_on_)
        return;
    // The primary starts holding the lease (it was granted before
    // traffic began); heartbeat rounds keep it alive from here.
    lease_.grant(queue_.now() + lease_us_);
    hb_last_valid_ = true;
    queue_.scheduleAfter(renew_us_, [this] { heartbeatTick(); });
}

void
ShardGroup::heartbeatTick()
{
    if (!lease_on_)
        return;
    const SimTime now = queue_.now();
    if (!down_) {
        const bool valid = lease_.valid(now);
        if (!valid && hb_last_valid_)
            lease_.noteLapse();
        hb_last_valid_ = valid;

        const SimTime sent = now;
        if (lease_.majority() <= 1) {
            // Degenerate single-member group: self-vote renews.
            lease_.grant(sent + lease_us_);
        } else {
            auto votes = std::make_shared<std::size_t>(1); // self
            for (std::size_t r = 0; r < replicas_.size(); ++r) {
                LogShipStream &stream = *replicas_[r];
                if (!stream.alive())
                    continue;
                if (reachable_ && !reachable_(r)) {
                    ++hb_blocked_;
                    continue;
                }
                ++hb_sent_;
                const SimTime arrive =
                    stream.link().deliver(now, hb_bytes_);
                queue_.scheduleAt(arrive, [this, r, votes, sent] {
                    LogShipStream &st = *replicas_[r];
                    if (!st.alive())
                        return;
                    // The ack leaves the replica *now*; a partition
                    // that opened mid-round blocks it here.
                    if (reachable_ && !reachable_(r)) {
                        ++hb_blocked_;
                        return;
                    }
                    const SimTime back =
                        st.link().deliver(queue_.now(), hb_bytes_);
                    queue_.scheduleAt(back, [this, votes, sent] {
                        ++*votes;
                        if (*votes >= lease_.majority() && !down_)
                            lease_.grant(sent + lease_us_);
                    });
                });
            }
        }
    }
    queue_.scheduleAfter(renew_us_, [this] { heartbeatTick(); });
}

void
ShardGroup::fenceReplicas(std::uint64_t token)
{
    for (const auto &stream : replicas_)
        stream->setFenceToken(token);
}

std::uint64_t
ShardGroup::fencedWindows() const
{
    std::uint64_t total = 0;
    for (const auto &stream : replicas_)
        total += stream->fencedWindows();
    return total;
}

void
ShardGroup::inflightEnd()
{
    if (inflight_ > 0)
        --inflight_;
    if (inflight_ != 0 || drain_waiters_.empty())
        return;
    std::vector<std::function<void()>> ready;
    ready.swap(drain_waiters_);
    for (auto &done : ready)
        done();
}

void
ShardGroup::whenDrained(std::function<void()> done)
{
    if (inflight_ == 0) {
        done();
        return;
    }
    drain_waiters_.push_back(std::move(done));
}

} // namespace jasim::repl
