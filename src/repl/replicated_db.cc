#include "repl/replicated_db.h"

#include <algorithm>

namespace jasim::repl {

ShardGroup::ShardGroup(EventQueue &queue,
                       const ShardGroupConfig &config, std::uint64_t seed)
    : queue_(queue), config_(config),
      app_(config.db, config.injection_rate, seed),
      scheduler_(config.cpus), disk_(config.disk)
{
    // Shipping needs WAL retention and failover gates on the audit:
    // both are always armed on a shard primary. Audit first, so the
    // empty audit table is part of the stable baseline.
    app_.enableAudit();
    app_.database().enableRecovery();

    Rng seeder(seed ^ 0x4e95ull);
    for (std::size_t r = 0; r < config.replicas; ++r) {
        replicas_.push_back(std::make_unique<LogShipStream>(
            queue_, config.replica, seeder()));
        replicas_.back()->setDurableHook(
            [this](std::uint64_t) { onReplicaDurable(); });
    }
    if (!replicas_.empty())
        app_.database().setTruncationFloor(0);
}

void
ShardGroup::shipForced(std::uint64_t lsn, std::uint64_t bytes)
{
    if (down_)
        return;
    for (const auto &stream : replicas_)
        stream->ship(lsn, bytes);
}

void
ShardGroup::whenAckDurable(std::uint64_t lsn, AckFn done)
{
    if (replicas_.empty() || lsn <= maxLiveReplicaDurable()) {
        done();
        return;
    }
    ++ack_waits_;
    waiters_.push_back(Waiter{lsn, std::move(done)});
}

void
ShardGroup::onReplicaDurable()
{
    app_.database().setTruncationFloor(minReplicaDurable());
    const std::uint64_t durable = maxLiveReplicaDurable();
    // Fire ripe waiters in FIFO order (deterministic ack order).
    std::vector<Waiter> ready;
    std::vector<Waiter> rest;
    for (Waiter &w : waiters_) {
        if (w.lsn <= durable)
            ready.push_back(std::move(w));
        else
            rest.push_back(std::move(w));
    }
    waiters_ = std::move(rest);
    for (Waiter &w : ready)
        w.done();
}

std::uint64_t
ShardGroup::maxLiveReplicaDurable() const
{
    std::uint64_t best = 0;
    for (const auto &stream : replicas_)
        if (stream->alive())
            best = std::max(best, stream->durableLsn());
    return best;
}

std::uint64_t
ShardGroup::minReplicaDurable() const
{
    std::uint64_t floor = ~0ull;
    for (const auto &stream : replicas_)
        floor = std::min(floor, stream->durableLsn());
    return floor == ~0ull ? 0 : floor;
}

bool
ShardGroup::anyLiveReplica() const
{
    for (const auto &stream : replicas_)
        if (stream->alive())
            return true;
    return false;
}

std::size_t
ShardGroup::mostCaughtUpReplica() const
{
    std::size_t best = 0;
    std::uint64_t best_lsn = 0;
    bool found = false;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (!replicas_[r]->alive())
            continue;
        if (!found || replicas_[r]->durableLsn() > best_lsn) {
            best = r;
            best_lsn = replicas_[r]->durableLsn();
            found = true;
        }
    }
    return best;
}

void
ShardGroup::resyncReplicas(std::uint64_t lsn)
{
    for (const auto &stream : replicas_)
        if (stream->alive())
            stream->resyncTo(lsn);
    if (!replicas_.empty())
        app_.database().setTruncationFloor(minReplicaDurable());
}

void
ShardGroup::beginBlackout()
{
    down_ = true;
    ++generation_;
    waiters_.clear();
}

void
ShardGroup::endBlackout()
{
    down_ = false;
}

} // namespace jasim::repl
