/**
 * @file
 * Range partitioning of the database key space across shard groups.
 *
 * The map is a pure function of the shard count: shard i owns the
 * contiguous key range [begin(i), end(i)), computed with the
 * multiplicative range-mapping trick (key * shards >> 64) so every
 * 64-bit key lands on exactly one shard, ranges are contiguous and
 * near-equal, and no per-key state is kept. The cluster draws one
 * routing key per DB call from a dedicated RNG stream, so adding
 * shards never perturbs any other subsystem's random sequence.
 */

#ifndef JASIM_REPL_SHARD_MAP_H
#define JASIM_REPL_SHARD_MAP_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace jasim::repl {

/** Contiguous range partition of the 64-bit key space. */
class ShardMap
{
  public:
    /** @param shards number of shard groups (clamped to >= 1). */
    explicit ShardMap(std::size_t shards = 1);

    std::size_t shardCount() const { return shards_; }

    /** Which shard owns `key`. Always < shardCount(). */
    std::size_t shardOf(std::uint64_t key) const;

    /** First key owned by `shard` (inclusive). */
    std::uint64_t rangeBegin(std::size_t shard) const;

    /**
     * One past the last key owned by `shard`, i.e.\ rangeBegin(shard
     * + 1); for the last shard the range extends to the top of the
     * key space and this returns 0 (wrap-around sentinel).
     */
    std::uint64_t rangeEnd(std::size_t shard) const;

    /** Human-readable partition table ("shard 0: [0, 7fff...)"). */
    std::string describe() const;

  private:
    std::size_t shards_ = 1;
};

} // namespace jasim::repl

#endif // JASIM_REPL_SHARD_MAP_H
