#include "repl/log_ship.h"

#include <algorithm>
#include <cmath>

namespace jasim::repl {

LogShipStream::LogShipStream(EventQueue &queue,
                             const ReplicaConfig &config,
                             std::uint64_t seed)
    : queue_(queue), config_(config), link_(config.link, seed),
      disk_(config.disk)
{
}

void
LogShipStream::ship(std::uint64_t lsn, std::uint64_t bytes,
                    std::uint64_t token)
{
    if (!alive_ || bytes == 0)
        return;
    shipped_bytes_ += bytes;
    ++shipped_windows_;
    const std::uint64_t gen = generation_;
    const SimTime arrival = link_.deliver(queue_.now(), bytes);
    queue_.scheduleAt(arrival, [this, lsn, bytes, gen, token] {
        if (gen != generation_ || !alive_)
            return;
        // Fencing check happens on receipt, before the replica pays
        // any disk I/O for the window.
        if (token < fence_token_) {
            ++fenced_windows_;
            return;
        }
        fence_token_ = std::max(fence_token_, token);
        const IoResult io = disk_.write(queue_.now(), bytes);
        queue_.scheduleAt(io.completion, [this, lsn, bytes, gen] {
            if (gen != generation_ || !alive_)
                return;
            if (lsn > durable_lsn_) {
                durable_lsn_ = lsn;
                unapplied_bytes_ += bytes;
                if (durable_hook_)
                    durable_hook_(lsn);
            }
            const SimTime apply = static_cast<SimTime>(std::llround(
                config_.apply_us_per_kb * (bytes / 1024.0)));
            queue_.scheduleAfter(apply, [this, lsn, bytes, gen] {
                if (gen != generation_ || !alive_)
                    return;
                applied_lsn_ = std::max(applied_lsn_, lsn);
                unapplied_bytes_ -=
                    std::min(unapplied_bytes_, bytes);
            });
        });
    });
}

void
LogShipStream::crash()
{
    alive_ = false;
    ++generation_;
}

void
LogShipStream::restart()
{
    alive_ = true;
    ++generation_;
    durable_lsn_ = 0;
    applied_lsn_ = 0;
    unapplied_bytes_ = 0;
}

void
LogShipStream::resyncTo(std::uint64_t lsn)
{
    ++generation_;
    durable_lsn_ = std::min(durable_lsn_, lsn);
    applied_lsn_ = std::min(applied_lsn_, durable_lsn_);
    unapplied_bytes_ = 0;
}

void
LogShipStream::setFenceToken(std::uint64_t token)
{
    fence_token_ = std::max(fence_token_, token);
}

} // namespace jasim::repl
