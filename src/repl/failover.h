/**
 * @file
 * Failover: promote the most-caught-up replica of a crashed primary.
 *
 * When a `dbcrash` fault hits a replicated shard primary, the
 * controller freezes the shard (blackout), settles the durability
 * audit at the promotion watermark W = the highest replica durable
 * LSN (sync-mode acks waited for exactly this watermark, so acked
 * commits survive by construction; async acks above W are the
 * reported lost-ack count), then rewinds the shard database to W
 * (Database::failoverTo), charges the promotion work -- replaying the
 * replica's durable-but-unapplied log gap, flushing the promotion
 * checkpoint, and the promotion CPU -- to the shard's disk and CPU
 * models, and reopens the shard. The blackout window [crash,
 * promoted) is what ResponseTracker bills against availability.
 */

#ifndef JASIM_REPL_FAILOVER_H
#define JASIM_REPL_FAILOVER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "db/database.h"
#include "sim/event_queue.h"

namespace jasim::repl {

class ShardGroup;

/** Failover timing/cost knobs. */
struct FailoverConfig
{
    /** Failure-detection delay before promotion starts (s). */
    double detect_s = 0.3;

    /** Fixed promotion overhead: election, reconfig, connection churn. */
    double promote_cpu_floor_us = 20000.0;

    /** Redo CPU per KB of durable-but-unapplied log replayed. */
    double promote_cpu_us_per_kb = 40.0;
};

/** One completed failover. */
struct FailoverOutcome
{
    std::size_t shard = 0;
    SimTime crash_at = 0;
    SimTime promoted_at = 0;
    std::uint64_t watermark = 0;     //!< promoted durable LSN
    std::uint64_t catchup_bytes = 0; //!< unapplied log replayed
    FailoverStats stats;             //!< the database rewind
};

/** Orchestrates dbcrash -> detect -> promote -> reopen per shard. */
class FailoverController
{
  public:
    using Done = std::function<void(const FailoverOutcome &)>;

    FailoverController(EventQueue &queue, const FailoverConfig &config)
        : queue_(queue), config_(config)
    {
    }

    /**
     * The primary of `group` just crashed. Returns false (and does
     * nothing) when no live replica exists to promote -- the caller
     * falls back to blocking crash + ARIES recovery -- or when the
     * shard is already failing over. `done` fires when the shard
     * reopens.
     */
    bool primaryCrashed(std::size_t shard, ShardGroup &group, Done done);

    std::uint64_t failoverCount() const { return failovers_; }
    const std::vector<FailoverOutcome> &history() const
    {
        return history_;
    }

  private:
    EventQueue &queue_;
    FailoverConfig config_;
    std::uint64_t failovers_ = 0;
    std::vector<FailoverOutcome> history_;
};

} // namespace jasim::repl

#endif // JASIM_REPL_FAILOVER_H
