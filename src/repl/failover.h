/**
 * @file
 * Failover: promote the most-caught-up replica of a crashed primary.
 *
 * When a `dbcrash` fault hits a replicated shard primary, the
 * controller freezes the shard (blackout), settles the durability
 * audit at the promotion watermark W = the highest replica durable
 * LSN (sync-mode acks waited for exactly this watermark, so acked
 * commits survive by construction; async acks above W are the
 * reported lost-ack count), then rewinds the shard database to W
 * (Database::failoverTo), charges the promotion work -- replaying the
 * replica's durable-but-unapplied log gap, flushing the promotion
 * checkpoint, and the promotion CPU -- to the shard's disk and CPU
 * models, and reopens the shard. The blackout window [crash,
 * promoted) is what ResponseTracker bills against availability.
 */

#ifndef JASIM_REPL_FAILOVER_H
#define JASIM_REPL_FAILOVER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "db/database.h"
#include "sim/event_queue.h"

namespace jasim::repl {

class ShardGroup;

/** Failover timing/cost knobs. */
struct FailoverConfig
{
    /** Failure-detection delay before promotion starts (s). */
    double detect_s = 0.3;

    /** Fixed promotion overhead: election, reconfig, connection churn. */
    double promote_cpu_floor_us = 20000.0;

    /** Redo CPU per KB of durable-but-unapplied log replayed. */
    double promote_cpu_us_per_kb = 40.0;

    /** Abort a planned switchover whose drain wedges (s). */
    double switchover_timeout_s = 5.0;
};

/** Why a promotion ran. */
enum class FailoverKind : std::uint8_t
{
    Crash,      //!< primary dbcrash/tornwrite
    Partition,  //!< quorum side promoted around a cut-off primary
    Switchover, //!< planned handoff (drain + lease transfer)
};

const char *failoverKindName(FailoverKind kind);

/** One completed failover. */
struct FailoverOutcome
{
    std::size_t shard = 0;
    FailoverKind kind = FailoverKind::Crash;
    SimTime crash_at = 0;            //!< crash / decision time
    SimTime promoted_at = 0;
    SimTime blackout_begin = 0;      //!< when the shard stopped serving
    std::uint64_t watermark = 0;     //!< promoted durable LSN
    std::uint64_t catchup_bytes = 0; //!< unapplied log replayed
    std::uint64_t fencing_token = 0; //!< token issued (0 = unleased)
    std::size_t promoted_member = 0; //!< replica index that took over
    FailoverStats stats;             //!< the database rewind
};

/** Orchestrates dbcrash -> detect -> promote -> reopen per shard. */
class FailoverController
{
  public:
    using Done = std::function<void(const FailoverOutcome &)>;

    FailoverController(EventQueue &queue, const FailoverConfig &config)
        : queue_(queue), config_(config)
    {
    }

    /**
     * The primary of `group` just crashed. Returns false (and does
     * nothing) when no live replica exists to promote -- the caller
     * falls back to blocking crash + ARIES recovery -- or when the
     * shard is already failing over. `done` fires when the shard
     * reopens.
     */
    bool primaryCrashed(std::size_t shard, ShardGroup &group, Done done);

    /**
     * Quorum-gated promotion around a partitioned-away primary. The
     * caller (the cluster's lease monitor) has already established
     * that the serving member lost its quorum, its lease lapsed, and
     * `candidate` leads a majority side with watermark `watermark`
     * (max durable among that side's live replicas). Issues the next
     * fencing token, fences every stream, rewinds the shard to W,
     * and moves serving to `candidate`. Returns false when the shard
     * is already down (promotion in progress or crashed).
     */
    bool partitionPromote(std::size_t shard, ShardGroup &group,
                          std::size_t candidate, std::uint64_t watermark,
                          Done done);

    /**
     * Planned switchover: fail-fast new attempts (drain), wait for
     * in-flight txns to finish and the target replica to hold the
     * full log durably, then hand the lease off at that watermark
     * with a fresh fencing token. The blackout window is only the
     * final promotion bookkeeping -- well under one lease interval.
     * Returns false when the shard is down, draining, has no live
     * replica, or (leased) does not currently hold its lease.
     */
    bool plannedSwitchover(std::size_t shard, ShardGroup &group,
                           Done done);

    std::uint64_t failoverCount() const { return failovers_; }
    std::uint64_t switchoverAborts() const { return switchover_aborts_; }
    const std::vector<FailoverOutcome> &history() const
    {
        return history_;
    }

  private:
    /**
     * Shared tail of every promotion: rewind to W, charge catch-up
     * I/O + promotion CPU, resync streams, reopen, record `out`.
     * Starts at now + `delay_us` (the detection delay; zero for a
     * switchover, which already waited for its drain).
     */
    void promote(ShardGroup &group, FailoverOutcome out, SimTime delay_us,
                 Done done);

    EventQueue &queue_;
    FailoverConfig config_;
    std::uint64_t failovers_ = 0;
    std::uint64_t switchover_aborts_ = 0;
    std::vector<FailoverOutcome> history_;
};

} // namespace jasim::repl

#endif // JASIM_REPL_FAILOVER_H
