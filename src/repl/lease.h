/**
 * @file
 * Primary leases and fencing tokens for the replicated DB tier.
 *
 * A shard's primary may only ack commits while it holds a
 * time-bounded lease. The lease is renewed by heartbeat rounds that
 * ride the same links as WAL shipments: the primary counts itself
 * plus every replica whose heartbeat ack returns, and a round that
 * reaches a majority of the replication group (primary + R replicas)
 * extends the lease to `sent + lease_s`. A partitioned primary stops
 * being able to renew, its lease lapses, and it stops acking — which
 * is what makes a quorum-side promotion safe: by the time the other
 * side promotes (at lapse + detect), no new acks can have happened.
 *
 * Promotion (crash failover, partition promotion, or planned
 * switchover) issues a monotonically increasing *fencing token*.
 * Every WAL shipment is stamped with the shipper's token; a replica
 * rejects any window carrying a token older than the newest it has
 * seen, so a deposed primary's post-partition writes bounce on heal
 * instead of corrupting the promoted timeline.
 *
 * Quorum math: with R replicas the group has R+1 members and a
 * majority needs floor((R+1)/2)+1 votes. When a lease is armed, a
 * sync-mode commit ack additionally requires `quorumAcks()` replicas
 * durable (majority minus the primary itself) so that any majority
 * that later promotes must intersect the ack set — the promoted
 * watermark can never be below an acked commit.
 */

#ifndef JASIM_REPL_LEASE_H
#define JASIM_REPL_LEASE_H

#include <cstdint>

#include "sim/types.h"

namespace jasim {

/** Lease tuning knobs (part of ReplConfig). */
struct LeaseConfig
{
    double lease_s = 2.0;         //!< lease length
    double renew_s = 0.5;         //!< heartbeat round interval
    double heartbeat_bytes = 64;  //!< per-heartbeat wire cost
    /** Arm leases even without partition/switchover verbs. */
    bool force_enabled = false;
};

/**
 * One shard's lease state: expiry, fencing token, quorum math, and
 * renewal/lapse counters. Heartbeat *scheduling* lives in ShardGroup
 * (it needs the event queue and the replica links); this class is the
 * pure bookkeeping, so it unit-tests without a simulation.
 */
class Lease
{
  public:
    explicit Lease(std::size_t replicas) : replicas_(replicas) {}

    /** Group size including the primary. */
    std::size_t members() const { return replicas_ + 1; }

    /** Votes a heartbeat round needs (primary included). */
    std::size_t majority() const { return members() / 2 + 1; }

    /**
     * Replicas (beyond the primary) that must hold a commit durable
     * before a sync ack, so every possible promoted majority
     * intersects the ack set. Zero when there are no replicas.
     */
    std::size_t quorumAcks() const { return majority() - 1; }

    /**
     * Extend the lease to `expiry` (monotone: a late-arriving ack for
     * an old round can never shorten it). Counts a renewal when it
     * actually extends.
     */
    void grant(SimTime expiry);

    /** Lease held at `now`? */
    bool valid(SimTime now) const { return now < expiry_; }
    SimTime expiry() const { return expiry_; }

    /** Count one observed valid→lapsed transition. */
    void noteLapse() { ++lapses_; }

    /** Newest fencing token issued for this shard. */
    std::uint64_t fencingToken() const { return token_; }

    /** Issue the next (strictly larger) fencing token. */
    std::uint64_t issueToken() { return ++token_; }

    std::uint64_t renewals() const { return renewals_; }
    std::uint64_t lapses() const { return lapses_; }

  private:
    std::size_t replicas_;
    SimTime expiry_ = 0;
    std::uint64_t token_ = 0;
    std::uint64_t renewals_ = 0;
    std::uint64_t lapses_ = 0;
};

} // namespace jasim

#endif // JASIM_REPL_LEASE_H
