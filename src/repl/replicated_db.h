/**
 * @file
 * A shard group: one primary database plus R log-shipping replicas.
 *
 * The group bundles everything one shard of the replicated DB tier
 * owns -- the primary's application/database, CPU scheduler, data
 * disk, durability auditor, and the replica streams -- together with
 * the ack rule that distinguishes the two replication modes:
 *
 *   - async: a commit acks when the primary's own WAL force
 *     completes; replication lag is invisible to clients but acked
 *     commits above the promotion watermark are LOST on failover
 *     (reported by the auditor as lost_acked).
 *   - sync:  a commit acks only when at least one replica has the
 *     commit durable (whenAckDurable), so every acked commit is at
 *     or below any future promotion watermark and failover loses
 *     nothing acked -- the auditor gates on exactly this.
 *
 * The group also maintains the primary's WAL truncation floor at the
 * minimum replica durable watermark, so checkpoints never discard log
 * a standby still needs. After a failover the promoted replica is the
 * new primary; by symmetry (identical config) the group keeps serving
 * with the same members, streams resynced to the promotion watermark
 * -- the old primary rejoins as a standby.
 */

#ifndef JASIM_REPL_REPLICATED_DB_H
#define JASIM_REPL_REPLICATED_DB_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "db/durability_audit.h"
#include "os/disk.h"
#include "os/scheduler.h"
#include "repl/failover.h"
#include "repl/log_ship.h"
#include "repl/shard_map.h"
#include "was/application.h"

namespace jasim::repl {

/** Cluster-level replication axis (jasim::repl is off by default). */
struct ReplConfig
{
    std::size_t shards = 1;   //!< shard groups partitioning the keys
    std::size_t replicas = 0; //!< log-shipping standbys per shard
    bool sync = false;        //!< ack only after a replica is durable
    ReplicaConfig replica;    //!< stream link/disk/apply parameters
    FailoverConfig failover;

    /** Anything beyond the single unreplicated box of PR 5? */
    bool enabled() const { return shards > 1 || replicas > 0; }
};

/** Sizing of one shard group. */
struct ShardGroupConfig
{
    DbConfig db;
    double injection_rate = 10.0; //!< population share of this shard
    std::size_t cpus = 4;
    DiskConfig disk;
    std::size_t replicas = 0;
    ReplicaConfig replica;
    bool sync = false;
};

/** One shard: primary + replicas + ack bookkeeping. */
class ShardGroup
{
  public:
    ShardGroup(EventQueue &queue, const ShardGroupConfig &config,
               std::uint64_t seed);

    Jas2004Application &application() { return app_; }
    Database &database() { return app_.database(); }
    const Database &database() const { return app_.database(); }
    CpuScheduler &scheduler() { return scheduler_; }
    const CpuScheduler &scheduler() const { return scheduler_; }
    DiskModel &disk() { return disk_; }
    const DiskModel &disk() const { return disk_; }
    DurabilityAuditor &auditor() { return auditor_; }
    const DurabilityAuditor &auditor() const { return auditor_; }

    bool syncMode() const { return config_.sync; }
    std::size_t replicaCount() const { return replicas_.size(); }
    LogShipStream &replica(std::size_t i) { return *replicas_[i]; }
    const LogShipStream &replica(std::size_t i) const
    {
        return *replicas_[i];
    }

    /** Run the audit-table reconciliation for this shard. */
    AuditReport auditNow() const
    {
        return auditor_.audit(app_.database(), app_.auditTable());
    }

    // ---- shipping & acks ----

    /**
     * The primary's force I/O up to `lsn` completed (`bytes` newly
     * durable): fan the window out to every replica stream.
     */
    void shipForced(std::uint64_t lsn, std::uint64_t bytes);

    /**
     * Run `done` once the commit at `lsn` is durable on at least one
     * live replica (immediately when it already is, or when there are
     * no replicas to wait for). Sync-mode commits ack through here.
     * Waiters are dropped -- never run -- on a blackout; the caller's
     * attempt deadline reclaims the request.
     */
    using AckFn = std::function<void()>;
    void whenAckDurable(std::uint64_t lsn, AckFn done);

    std::uint64_t ackWaits() const { return ack_waits_; }

    // ---- watermarks ----

    /** Promotion watermark: highest durable LSN on a live replica. */
    std::uint64_t maxLiveReplicaDurable() const;

    /** Truncation floor: lowest durable LSN across all replicas. */
    std::uint64_t minReplicaDurable() const;

    bool anyLiveReplica() const;

    /** Index of the most-caught-up live replica (ties: lowest). */
    std::size_t mostCaughtUpReplica() const;

    /** Clamp every live stream to the promoted timeline. */
    void resyncReplicas(std::uint64_t lsn);

    // ---- failover / fault state ----

    bool down() const { return down_; }

    /**
     * Shard blackout: calls fail fast, in-flight completions are
     * dropped (generation bump), pending sync-ack waiters die.
     */
    void beginBlackout();
    void endBlackout();

    /** Stamp for in-flight completions; bumped by beginBlackout(). */
    std::uint64_t generation() const { return generation_; }

  private:
    void onReplicaDurable();

    EventQueue &queue_;
    ShardGroupConfig config_;
    Jas2004Application app_;
    CpuScheduler scheduler_;
    DiskModel disk_;
    DurabilityAuditor auditor_;
    std::vector<std::unique_ptr<LogShipStream>> replicas_;

    bool down_ = false;
    std::uint64_t generation_ = 0;

    struct Waiter
    {
        std::uint64_t lsn;
        AckFn done;
    };
    std::vector<Waiter> waiters_;
    std::uint64_t ack_waits_ = 0;
};

} // namespace jasim::repl

#endif // JASIM_REPL_REPLICATED_DB_H
