/**
 * @file
 * A shard group: one primary database plus R log-shipping replicas.
 *
 * The group bundles everything one shard of the replicated DB tier
 * owns -- the primary's application/database, CPU scheduler, data
 * disk, durability auditor, and the replica streams -- together with
 * the ack rule that distinguishes the two replication modes:
 *
 *   - async: a commit acks when the primary's own WAL force
 *     completes; replication lag is invisible to clients but acked
 *     commits above the promotion watermark are LOST on failover
 *     (reported by the auditor as lost_acked).
 *   - sync:  a commit acks only when at least one replica has the
 *     commit durable (whenAckDurable), so every acked commit is at
 *     or below any future promotion watermark and failover loses
 *     nothing acked -- the auditor gates on exactly this.
 *
 * The group also maintains the primary's WAL truncation floor at the
 * minimum replica durable watermark, so checkpoints never discard log
 * a standby still needs. After a failover the promoted replica is the
 * new primary; by symmetry (identical config) the group keeps serving
 * with the same members, streams resynced to the promotion watermark
 * -- the old primary rejoins as a standby.
 *
 * When a schedule can split the fabric (partition/switchover verbs),
 * the group additionally arms a *lease* (repl/lease.h): heartbeat
 * rounds ride the replica links, a majority of acks extends the
 * lease, and commits stop acking the moment it lapses. Sync acks
 * then also need a durability quorum (Lease::quorumAcks() replicas)
 * instead of any single replica, so a promoted majority always
 * intersects the ack set. All of it is gated on armLease() -- an
 * unleased group is byte-identical to PR 6.
 */

#ifndef JASIM_REPL_REPLICATED_DB_H
#define JASIM_REPL_REPLICATED_DB_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "db/durability_audit.h"
#include "os/disk.h"
#include "os/scheduler.h"
#include "repl/failover.h"
#include "repl/lease.h"
#include "repl/log_ship.h"
#include "repl/shard_map.h"
#include "was/application.h"

namespace jasim::repl {

/** Cluster-level replication axis (jasim::repl is off by default). */
struct ReplConfig
{
    std::size_t shards = 1;   //!< shard groups partitioning the keys
    std::size_t replicas = 0; //!< log-shipping standbys per shard
    bool sync = false;        //!< ack only after a replica is durable
    ReplicaConfig replica;    //!< stream link/disk/apply parameters
    FailoverConfig failover;
    LeaseConfig lease;        //!< armed by partition/switchover verbs

    /** Anything beyond the single unreplicated box of PR 5? */
    bool enabled() const { return shards > 1 || replicas > 0; }
};

/** Sizing of one shard group. */
struct ShardGroupConfig
{
    DbConfig db;
    double injection_rate = 10.0; //!< population share of this shard
    std::size_t cpus = 4;
    DiskConfig disk;
    std::size_t replicas = 0;
    ReplicaConfig replica;
    bool sync = false;
};

/** One shard: primary + replicas + ack bookkeeping. */
class ShardGroup
{
  public:
    ShardGroup(EventQueue &queue, const ShardGroupConfig &config,
               std::uint64_t seed);

    Jas2004Application &application() { return app_; }
    Database &database() { return app_.database(); }
    const Database &database() const { return app_.database(); }
    CpuScheduler &scheduler() { return scheduler_; }
    const CpuScheduler &scheduler() const { return scheduler_; }
    DiskModel &disk() { return disk_; }
    const DiskModel &disk() const { return disk_; }
    DurabilityAuditor &auditor() { return auditor_; }
    const DurabilityAuditor &auditor() const { return auditor_; }

    bool syncMode() const { return config_.sync; }
    std::size_t replicaCount() const { return replicas_.size(); }
    LogShipStream &replica(std::size_t i) { return *replicas_[i]; }
    const LogShipStream &replica(std::size_t i) const
    {
        return *replicas_[i];
    }

    /** Run the audit-table reconciliation for this shard. */
    AuditReport auditNow() const
    {
        return auditor_.audit(app_.database(), app_.auditTable());
    }

    // ---- shipping & acks ----

    /**
     * The primary's force I/O up to `lsn` completed (`bytes` newly
     * durable): fan the window out to every replica stream.
     */
    void shipForced(std::uint64_t lsn, std::uint64_t bytes);

    /**
     * Run `done` once the commit at `lsn` is durable on at least one
     * live replica (immediately when it already is, or when there are
     * no replicas to wait for). Sync-mode commits ack through here.
     * Waiters are dropped -- never run -- on a blackout; the caller's
     * attempt deadline reclaims the request.
     */
    using AckFn = std::function<void()>;
    void whenAckDurable(std::uint64_t lsn, AckFn done);

    std::uint64_t ackWaits() const { return ack_waits_; }

    // ---- lease / fencing (armed only by partition-capable runs) ----

    /**
     * Per-replica reachability, supplied by the cluster (closes over
     * the fabric's partition map and the current serving endpoint).
     */
    using ReachFn = std::function<bool(std::size_t replica)>;

    /** Arm the lease machinery. Without this, PR 6 semantics hold. */
    void armLease(const LeaseConfig &config, ReachFn reachable);
    bool leaseArmed() const { return lease_on_; }

    /** Initial grant + heartbeat loop; call once at cluster start. */
    void startLease();

    /** True when unleased, or the lease is held right now. */
    bool leaseValid() const
    {
        return !lease_on_ || lease_.valid(queue_.now());
    }

    Lease &lease() { return lease_; }
    const Lease &lease() const { return lease_; }

    /** Raise every stream's fence to `token` (promotion). */
    void fenceReplicas(std::uint64_t token);

    /** Fresh full-length grant (a promotion starts with the lease). */
    void regrantLease()
    {
        if (lease_on_)
            lease_.grant(queue_.now() + lease_us_);
    }

    /** Sum of stale windows refused across all streams. */
    std::uint64_t fencedWindows() const;

    /** Shipments/heartbeats refused locally by the partition map. */
    std::uint64_t shipBlocked() const { return ship_blocked_; }
    std::uint64_t heartbeatsBlocked() const { return hb_blocked_; }
    std::uint64_t heartbeatsSent() const { return hb_sent_; }

    /**
     * The member currently serving the shard: kPrimaryMember for the
     * primary slot, else the promoted replica's index. Only consulted
     * by partition-aware callers (endpoint reachability).
     */
    static constexpr std::size_t kPrimaryMember =
        static_cast<std::size_t>(-1);
    std::size_t servingMember() const { return serving_member_; }
    void setServingMember(std::size_t member)
    {
        serving_member_ = member;
    }

    // ---- drain (planned switchover) ----

    /** Track one client txn entering/leaving the shard. */
    void inflightBegin() { ++inflight_; }
    void inflightEnd();
    std::uint64_t inflight() const { return inflight_; }

    /** While draining, new attempts must fail fast (FailoverWait). */
    bool draining() const { return draining_; }
    void beginDrain() { draining_ = true; }
    void endDrain() { draining_ = false; }

    /** Run `done` once no txn is in flight (immediately if so). */
    void whenDrained(std::function<void()> done);

    // ---- watermarks ----

    /** Promotion watermark: highest durable LSN on a live replica. */
    std::uint64_t maxLiveReplicaDurable() const;

    /** Truncation floor: lowest durable LSN across all replicas. */
    std::uint64_t minReplicaDurable() const;

    bool anyLiveReplica() const;

    /** Index of the most-caught-up live replica (ties: lowest). */
    std::size_t mostCaughtUpReplica() const;

    /** Clamp every live stream to the promoted timeline. */
    void resyncReplicas(std::uint64_t lsn);

    // ---- failover / fault state ----

    bool down() const { return down_; }

    /**
     * Shard blackout: calls fail fast, in-flight completions are
     * dropped (generation bump), pending sync-ack waiters die.
     */
    void beginBlackout();
    void endBlackout();

    /** Stamp for in-flight completions; bumped by beginBlackout(). */
    std::uint64_t generation() const { return generation_; }

  private:
    void onReplicaDurable();
    void heartbeatTick();

    /**
     * The LSN up to which commits may ack: any live replica when
     * unleased (PR 6 rule), else the quorumAcks()-th highest durable
     * watermark among live replicas (quorum intersection).
     */
    std::uint64_t ackDurableLsn() const;

    EventQueue &queue_;
    ShardGroupConfig config_;
    Jas2004Application app_;
    CpuScheduler scheduler_;
    DiskModel disk_;
    DurabilityAuditor auditor_;
    std::vector<std::unique_ptr<LogShipStream>> replicas_;

    bool down_ = false;
    std::uint64_t generation_ = 0;

    struct Waiter
    {
        std::uint64_t lsn;
        AckFn done;
    };
    std::vector<Waiter> waiters_;
    std::uint64_t ack_waits_ = 0;

    // Lease machinery (inert until armLease()).
    bool lease_on_ = false;
    Lease lease_{0};
    LeaseConfig lease_config_;
    ReachFn reachable_;
    SimTime lease_us_ = 0;
    SimTime renew_us_ = 0;
    std::uint64_t hb_bytes_ = 0;
    bool hb_last_valid_ = true;
    std::uint64_t hb_sent_ = 0;
    std::uint64_t hb_blocked_ = 0;
    std::uint64_t ship_blocked_ = 0;
    std::size_t serving_member_ = kPrimaryMember;

    // Drain bookkeeping (pure state: no events unless used).
    std::uint64_t inflight_ = 0;
    bool draining_ = false;
    std::vector<std::function<void()>> drain_waiters_;
};

} // namespace jasim::repl

#endif // JASIM_REPL_REPLICATED_DB_H
