#include "repl/shard_map.h"

#include <sstream>

namespace jasim::repl {

namespace {

/** floor(value * 2^64 / shards) without losing the top bits. */
std::uint64_t scaleDown(std::uint64_t value, std::size_t shards)
{
    using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(value) << 64) /
                                      shards);
}

} // namespace

ShardMap::ShardMap(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

std::size_t ShardMap::shardOf(std::uint64_t key) const
{
    using u128 = unsigned __int128;
    return static_cast<std::size_t>(
        (static_cast<u128>(key) * shards_) >> 64);
}

std::uint64_t ShardMap::rangeBegin(std::size_t shard) const
{
    if (shard == 0)
        return 0;
    // Smallest key k with k * shards >> 64 == shard, i.e.
    // ceil(shard * 2^64 / shards).
    const std::uint64_t floor_value = scaleDown(shard, shards_);
    return shardOf(floor_value) == shard ? floor_value : floor_value + 1;
}

std::uint64_t ShardMap::rangeEnd(std::size_t shard) const
{
    return shard + 1 >= shards_ ? 0 : rangeBegin(shard + 1);
}

std::string ShardMap::describe() const
{
    std::ostringstream out;
    out << std::hex;
    for (std::size_t s = 0; s < shards_; ++s) {
        if (s != 0)
            out << "  ";
        out << "shard " << std::dec << s << std::hex << ": ["
            << rangeBegin(s) << ", ";
        if (s + 1 >= shards_)
            out << "2^64";
        else
            out << rangeEnd(s);
        out << ")";
    }
    return out.str();
}

} // namespace jasim::repl
