/**
 * @file
 * Durability audit: exactly-once accounting for acked commits.
 *
 * Every committed business transaction stamps a unique token into an
 * audit table inside the same transaction. The auditor records which
 * tokens were committed (with their Commit-record LSN) and which were
 * acknowledged to the client, learns at each crash which Commit
 * records actually survived, and after recovery scans the audit table
 * to assert:
 *
 *   - no acked commit lost (token acked but absent from the table),
 *   - no unacked-but-durable commit lost (the DB promised durability
 *     the moment the Commit record hit stable storage, ack or not),
 *   - no resurrected effect (token present that must have been wiped),
 *   - no duplicate effect (token present more than once).
 */

#ifndef JASIM_DB_DURABILITY_AUDIT_H
#define JASIM_DB_DURABILITY_AUDIT_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "db/database.h"

namespace jasim {

/** Outcome of one post-recovery audit scan. */
struct AuditReport
{
    std::uint64_t surviving = 0;      //!< tokens found in the table
    std::uint64_t acked_total = 0;    //!< tokens acked to clients
    std::uint64_t lost_acked = 0;     //!< acked but missing: data loss
    std::uint64_t lost_durable = 0;   //!< durable-commit but missing
    std::uint64_t resurrected = 0;    //!< present but must be gone
    std::uint64_t duplicates = 0;     //!< token appears twice

    bool pass() const
    {
        return lost_acked == 0 && lost_durable == 0 &&
            resurrected == 0 && duplicates == 0;
    }
};

/**
 * Tracks commit tokens across crash/recover cycles. Lives beside the
 * Database (it must survive the crash, like the clients do).
 */
class DurabilityAuditor
{
  public:
    /** A transaction carrying `token` committed at `commit_lsn`. */
    void noteCommitted(std::uint64_t token, std::uint64_t commit_lsn);

    /** The client received a success response for `token`. */
    void noteAcked(std::uint64_t token);

    /**
     * A crash happened. `surviving_commit_lsns` holds the LSNs of
     * Commit records still retained in the WAL after the crash;
     * `truncated_up_to` is the WAL truncation watermark (records at
     * or below it were made durable and then discarded by a
     * checkpoint, so their commits survive too). Pending commits
     * partition into expected-after-recovery and must-be-gone.
     */
    void noteCrash(
        const std::unordered_set<std::uint64_t> &surviving_commit_lsns,
        std::uint64_t truncated_up_to);

    /**
     * Scan the audit table post-recovery and reconcile. Callable any
     * number of times; also valid on a healthy (never-crashed) run,
     * where every committed token must simply be present once.
     */
    AuditReport audit(const Database &db,
                      std::uint32_t audit_table) const;

    std::uint64_t committedCount() const { return committed_.size(); }

  private:
    /** token -> commit LSN, for commits since the last crash. */
    std::unordered_map<std::uint64_t, std::uint64_t> pending_;
    /** All tokens that must be present exactly once. */
    std::unordered_set<std::uint64_t> committed_;
    /** Tokens a crash wiped; they must never reappear. */
    std::unordered_set<std::uint64_t> wiped_;
    /** Tokens acked to clients (must be in committed_ to pass). */
    std::unordered_set<std::uint64_t> acked_;
};

} // namespace jasim

#endif // JASIM_DB_DURABILITY_AUDIT_H
