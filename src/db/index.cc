#include "db/index.h"

#include <algorithm>

namespace jasim {

bool
UniqueIndex::insert(std::int64_t key, RowId id)
{
    return map_.emplace(key, id).second;
}

std::optional<RowId>
UniqueIndex::find(std::int64_t key) const
{
    const auto it = map_.find(key);
    if (it == map_.end())
        return std::nullopt;
    return it->second;
}

bool
UniqueIndex::erase(std::int64_t key)
{
    return map_.erase(key) != 0;
}

void
MultiIndex::insert(std::int64_t key, RowId id)
{
    map_[key].push_back(id);
    ++entries_;
}

std::vector<RowId>
MultiIndex::find(std::int64_t key) const
{
    const auto it = map_.find(key);
    return it == map_.end() ? std::vector<RowId>{} : it->second;
}

bool
MultiIndex::erase(std::int64_t key, RowId id)
{
    const auto it = map_.find(key);
    if (it == map_.end())
        return false;
    auto &ids = it->second;
    const auto pos = std::find(ids.begin(), ids.end(), id);
    if (pos == ids.end())
        return false;
    ids.erase(pos);
    --entries_;
    if (ids.empty())
        map_.erase(it);
    return true;
}

} // namespace jasim
