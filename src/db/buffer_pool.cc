#include "db/buffer_pool.h"

#include <cassert>

namespace jasim {

BufferPool::BufferPool(std::size_t capacity_pages)
    : capacity_(capacity_pages)
{
    assert(capacity_pages > 0);
}

PinResult
BufferPool::pin(PageKey key, bool mark_dirty)
{
    PinResult result;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        result.hit = true;
        ++hits_;
        it->second->dirty |= mark_dirty;
        lru_.splice(lru_.begin(), lru_, it->second);
        return result;
    }

    ++misses_;
    if (lru_.size() >= capacity_) {
        const Frame &victim = lru_.back();
        if (victim.dirty) {
            result.writeback = true;
            ++writebacks_;
        }
        index_.erase(victim.key);
        lru_.pop_back();
    }
    lru_.push_front(Frame{key, mark_dirty});
    index_[key] = lru_.begin();
    return result;
}

bool
BufferPool::resident(PageKey key) const
{
    return index_.count(key) != 0;
}

void
BufferPool::clear()
{
    lru_.clear();
    index_.clear();
}

} // namespace jasim
