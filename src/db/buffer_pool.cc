#include "db/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace jasim {

BufferPool::BufferPool(std::size_t capacity_pages)
    : capacity_(capacity_pages)
{
    assert(capacity_pages > 0);
}

PinResult
BufferPool::pin(PageKey key, bool mark_dirty, std::uint64_t recovery_lsn)
{
    PinResult result;
    if (mark_dirty && recovery_lsn != 0) {
        // First dirtier wins: redo must start at the oldest change
        // that might not be on disk yet.
        dpt_.emplace(key, recovery_lsn);
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
        result.hit = true;
        ++hits_;
        it->second->dirty |= mark_dirty;
        lru_.splice(lru_.begin(), lru_, it->second);
        return result;
    }

    ++misses_;
    if (lru_.size() >= capacity_) {
        const Frame &victim = lru_.back();
        result.evicted = true;
        result.victim = victim.key;
        if (victim.dirty) {
            result.writeback = true;
            ++writebacks_;
        }
        dpt_.erase(victim.key);
        index_.erase(victim.key);
        lru_.pop_back();
    }
    lru_.push_front(Frame{key, mark_dirty});
    index_[key] = lru_.begin();
    return result;
}

bool
BufferPool::resident(PageKey key) const
{
    return index_.count(key) != 0;
}

void
BufferPool::markClean(PageKey key)
{
    const auto it = index_.find(key);
    if (it != index_.end())
        it->second->dirty = false;
    dpt_.erase(key);
}

void
BufferPool::markAllClean()
{
    for (Frame &frame : lru_)
        frame.dirty = false;
    dpt_.clear();
}

std::uint64_t
BufferPool::minRecoveryLsn() const
{
    std::uint64_t min_lsn = 0;
    for (const auto &[key, lsn] : dpt_) {
        (void)key;
        if (min_lsn == 0 || lsn < min_lsn)
            min_lsn = lsn;
    }
    return min_lsn;
}

void
BufferPool::clear()
{
    lru_.clear();
    index_.clear();
    dpt_.clear();
}

} // namespace jasim
