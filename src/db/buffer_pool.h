/**
 * @file
 * Page buffer pool with LRU replacement.
 *
 * Every page touch in the query engine goes through the pool; misses
 * are charged as disk reads (RAM disk or spinning disk) by the layer
 * above. The pool's hit rate is what decides whether the SUT can keep
 * I/O wait near zero -- the tuning prerequisite of the whole study.
 *
 * For crash recovery the pool also keeps an ARIES-style dirty-page
 * table: the first log record that dirtied each resident page
 * (its recoveryLSN). The minimum recoveryLSN over the table bounds
 * how far back redo must start, which is what lets fuzzy checkpoints
 * truncate the WAL. Healthy runs pass recovery LSN 0 and the table
 * stays empty -- zero behaviour change.
 */

#ifndef JASIM_DB_BUFFER_POOL_H
#define JASIM_DB_BUFFER_POOL_H

#include <cstdint>
#include <list>
#include <unordered_map>

namespace jasim {

/** Identity of a page: table id + page number. */
struct PageKey
{
    std::uint32_t table = 0;
    std::uint32_t page = 0;

    bool operator==(const PageKey &other) const = default;
};

struct PageKeyHash
{
    std::size_t
    operator()(const PageKey &key) const
    {
        return (static_cast<std::size_t>(key.table) << 32) ^ key.page;
    }
};

/** Result of a pin. */
struct PinResult
{
    bool hit = false;
    /** A dirty page was evicted (costs a write-back). */
    bool writeback = false;
    /** A page was evicted to make room. */
    bool evicted = false;
    /** The evicted page (valid when `evicted`). */
    PageKey victim{};
};

/** LRU page cache (bookkeeping only; no page data is stored). */
class BufferPool
{
  public:
    using DirtyPageTable =
        std::unordered_map<PageKey, std::uint64_t, PageKeyHash>;

    explicit BufferPool(std::size_t capacity_pages);

    /**
     * Touch a page, faulting it in if absent. A non-zero
     * `recovery_lsn` on a dirtying pin enters the page into the
     * dirty-page table (first dirtier wins).
     */
    PinResult pin(PageKey key, bool mark_dirty = false,
                  std::uint64_t recovery_lsn = 0);

    /** Is a page resident (no LRU update)? */
    bool resident(PageKey key) const;

    std::size_t capacity() const { return capacity_; }
    std::size_t residentPages() const { return lru_.size(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0
            ? 0.0
            : static_cast<double>(hits_) / static_cast<double>(total);
    }

    /** Mark one page clean (checkpoint flushed it). */
    void markClean(PageKey key);

    /** Mark every resident page clean (recovery baseline). */
    void markAllClean();

    /** Resident pages dirtied since their last flush, by recoveryLSN. */
    const DirtyPageTable &dirtyPages() const { return dpt_; }

    /** Oldest recoveryLSN over the dirty-page table (0 when empty). */
    std::uint64_t minRecoveryLsn() const;

    /** Drop everything (cold-start experiments, crash). */
    void clear();

  private:
    struct Frame
    {
        PageKey key;
        bool dirty = false;
    };

    std::size_t capacity_;
    std::list<Frame> lru_; //!< front = most recent
    std::unordered_map<PageKey, std::list<Frame>::iterator, PageKeyHash>
        index_;
    DirtyPageTable dpt_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace jasim

#endif // JASIM_DB_BUFFER_POOL_H
