#include "db/durability_audit.h"

namespace jasim {

void
DurabilityAuditor::noteCommitted(std::uint64_t token,
                                 std::uint64_t commit_lsn)
{
    pending_.emplace(token, commit_lsn);
}

void
DurabilityAuditor::noteAcked(std::uint64_t token)
{
    acked_.insert(token);
}

void
DurabilityAuditor::noteCrash(
    const std::unordered_set<std::uint64_t> &surviving_commit_lsns,
    std::uint64_t truncated_up_to)
{
    for (const auto &[token, commit_lsn] : pending_) {
        const bool survives = commit_lsn <= truncated_up_to ||
            surviving_commit_lsns.count(commit_lsn) != 0;
        if (survives)
            committed_.insert(token);
        else
            wiped_.insert(token);
    }
    pending_.clear();
}

AuditReport
DurabilityAuditor::audit(const Database &db,
                         std::uint32_t audit_table) const
{
    AuditReport report;
    report.acked_total = acked_.size();

    // Commits since the last crash (or ever, on a healthy run) are
    // durable promises too: the WAL was forced at commit.
    std::unordered_set<std::uint64_t> expected = committed_;
    for (const auto &[token, commit_lsn] : pending_) {
        (void)commit_lsn;
        expected.insert(token);
    }

    std::unordered_map<std::uint64_t, std::uint64_t> found;
    db.table(audit_table).scan([&](RowId id, const Row &row) {
        (void)id;
        ++found[static_cast<std::uint64_t>(
            std::get<std::int64_t>(row[0]))];
        return true;
    });

    for (const auto &[token, count] : found) {
        ++report.surviving;
        if (count > 1)
            ++report.duplicates;
        if (wiped_.count(token) != 0)
            ++report.resurrected;
    }
    for (const std::uint64_t token : expected) {
        if (found.count(token) != 0)
            continue;
        if (acked_.count(token) != 0)
            ++report.lost_acked;
        else
            ++report.lost_durable;
    }
    // A wiped token may legitimately be gone -- unless the client was
    // told it committed. An ack without durability is data loss even
    // when the crash explains the missing Commit record.
    for (const std::uint64_t token : wiped_) {
        if (acked_.count(token) != 0 && found.count(token) == 0)
            ++report.lost_acked;
    }
    return report;
}

} // namespace jasim
