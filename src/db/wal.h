/**
 * @file
 * Write-ahead log with ARIES-style retention and crash semantics.
 *
 * Commits force the log; the forced bytes are what the disk model
 * (RAM disk vs spinning disks) turns into I/O wait -- the effect that
 * made the paper's 2-disk configuration fail its response-time SLA.
 *
 * Two operating modes:
 *
 *  - Legacy (default): forced records are dropped from memory so a
 *    long run's log footprint stays flat. Good enough when nothing
 *    ever crashes.
 *
 *  - Retention (`setRetention(true)`, armed by Database's recovery
 *    support): records survive force() and carry logical redo/undo
 *    payloads, three durability watermarks track what a crash can
 *    take (`issuedLsn` = force() called, `durableLsn` = the simulated
 *    disk I/O for that force completed, `protectedLsn` = a stable
 *    page flush implies log durability up to its pageLSN), and
 *    `crashDiscard()` models losing the volatile tail -- including a
 *    torn write that keeps only a prefix of the in-flight window.
 *    Checkpoints reclaim the durable prefix via truncate().
 */

#ifndef JASIM_DB_WAL_H
#define JASIM_DB_WAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/table.h"

namespace jasim {

/** Kinds of log records. */
enum class WalRecordType : std::uint8_t { Begin, Insert, Update, Erase,
                                          Commit, Abort,
                                          BeginCheckpoint,
                                          EndCheckpoint };

/**
 * One log record. Payload sizes are always modelled; the logical
 * redo/undo images are only populated in retention mode (appendLogical),
 * where recovery replays them.
 */
struct WalRecord
{
    std::uint64_t lsn = 0;
    std::uint64_t txn = 0;
    WalRecordType type = WalRecordType::Begin;
    std::uint32_t bytes = 0;

    // Logical payload (retention mode only).
    std::uint32_t table = 0;
    RowId rid{};
    std::optional<Row> redo; //!< after-image (Insert/Update)
    std::optional<Row> undo; //!< before-image (Update/Erase)
};

/** What a crash took from the log. */
struct WalCrashLoss
{
    std::uint64_t unforced_records = 0; //!< never force()d: always lost
    std::uint64_t torn_records = 0;     //!< forced but not durable, torn off
};

/** Append-only log with group-force semantics. */
class Wal
{
  public:
    /** Append a record; returns its LSN. */
    std::uint64_t append(std::uint64_t txn, WalRecordType type,
                         std::uint32_t payload_bytes);

    /** Append a record carrying a logical redo/undo payload. */
    std::uint64_t appendLogical(std::uint64_t txn, WalRecordType type,
                                std::uint32_t payload_bytes,
                                std::uint32_t table, RowId rid,
                                std::optional<Row> redo,
                                std::optional<Row> undo);

    /**
     * Force the log up to the latest LSN. In legacy mode forced
     * records are dropped from memory; in retention mode they are
     * kept for recovery and `issuedLsn()` advances.
     * @return bytes newly forced to stable storage (0 if none).
     */
    std::uint64_t force();

    /** Keep records after force() so recovery can replay them. */
    void setRetention(bool on) { retention_ = on; }
    bool retention() const { return retention_; }

    std::uint64_t appendedBytes() const { return appended_bytes_; }
    std::uint64_t forcedBytes() const { return forced_bytes_; }

    /** Records appended over the log's lifetime. */
    std::uint64_t recordCount() const { return next_lsn_ - 1; }

    /** Highest LSN handed out so far (0 when nothing appended). */
    std::uint64_t lastLsn() const { return next_lsn_ - 1; }

    /** Records not yet forced. */
    std::uint64_t pendingRecords() const;
    std::uint64_t forceCount() const { return forces_; }

    const std::vector<WalRecord> &records() const { return records_; }

    /** Bytes currently retained in the log (replay cost of a crash). */
    std::uint64_t retainedBytes() const { return retained_bytes_; }

    // ---- durability watermarks (retention mode) ----

    /** Highest LSN a force() has been called for. */
    std::uint64_t issuedLsn() const { return issued_lsn_; }

    /** Highest LSN whose force I/O has completed on the disk model. */
    std::uint64_t durableLsn() const { return durable_lsn_; }

    /** Highest LSN protected by a stable page flush (WAL protocol). */
    std::uint64_t protectedLsn() const { return protected_lsn_; }

    /** Highest LSN ever removed by truncate() (durable by then). */
    std::uint64_t truncatedUpTo() const { return truncated_up_to_; }

    /** The simulated disk finished the force I/O up to `lsn`. */
    void confirmDurable(std::uint64_t lsn);

    /**
     * A stable page flush carried effects up to `lsn`: those records
     * can no longer be torn away (their effects are on disk).
     */
    void protect(std::uint64_t lsn);

    /**
     * Model a crash: drop every record never force()d, and -- for a
     * torn write -- the second half of the in-flight window
     * (durable/protected, issued]: force I/O that was still in the
     * device when power failed. Everything surviving is durable.
     */
    WalCrashLoss crashDiscard(bool torn);

    /**
     * Drop records up to the given LSN (checkpoint truncation). The
     * bound is clamped to what has actually been forced (retention
     * mode) or appended (legacy), so truncating "past the end" is
     * safe and never disturbs LSN assignment.
     */
    void truncate(std::uint64_t up_to_lsn);

    /**
     * Failover truncation (retention mode): drop every record above
     * `watermark` -- the tail a promoted replica never received --
     * and settle all watermarks at the surviving prefix. LSN
     * assignment is NOT rewound; the promoted history simply has a
     * gap, which ARIES tolerates (LSNs only ever need to be
     * monotone).
     * @return number of records discarded.
     */
    std::uint64_t discardAbove(std::uint64_t watermark);

    /**
     * Retained log bytes strictly above `lsn`: the divergent tail a
     * deposed primary would try to ship on heal (it bounces on the
     * fencing token and is rewound instead).
     */
    std::uint64_t bytesAbove(std::uint64_t lsn) const;

  private:
    std::uint64_t appendRecord(WalRecord record,
                               std::uint32_t payload_bytes);

    std::vector<WalRecord> records_; //!< always sorted by LSN
    std::uint64_t next_lsn_ = 1;
    std::uint64_t appended_bytes_ = 0;
    std::uint64_t forced_bytes_ = 0;
    std::uint64_t pending_bytes_ = 0;
    std::uint64_t retained_bytes_ = 0;
    std::uint64_t forces_ = 0;
    bool retention_ = false;
    std::uint64_t issued_lsn_ = 0;
    std::uint64_t durable_lsn_ = 0;
    std::uint64_t protected_lsn_ = 0;
    std::uint64_t truncated_up_to_ = 0;

    static constexpr std::uint32_t headerBytes = 24;
};

} // namespace jasim

#endif // JASIM_DB_WAL_H
