/**
 * @file
 * Write-ahead log.
 *
 * Commits force the log; the forced bytes are what the disk model
 * (RAM disk vs spinning disks) turns into I/O wait -- the effect that
 * made the paper's 2-disk configuration fail its response-time SLA.
 */

#ifndef JASIM_DB_WAL_H
#define JASIM_DB_WAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace jasim {

/** Kinds of log records. */
enum class WalRecordType : std::uint8_t { Begin, Insert, Update, Erase,
                                          Commit, Abort };

/** One log record (payload sizes modelled, contents summarized). */
struct WalRecord
{
    std::uint64_t lsn = 0;
    std::uint64_t txn = 0;
    WalRecordType type = WalRecordType::Begin;
    std::uint32_t bytes = 0;
};

/** Append-only log with group-force semantics. */
class Wal
{
  public:
    /** Append a record; returns its LSN. */
    std::uint64_t append(std::uint64_t txn, WalRecordType type,
                         std::uint32_t payload_bytes);

    /**
     * Force the log up to the latest LSN. Forced records are dropped
     * from memory (they are durable; recovery is out of scope).
     * @return bytes newly forced to stable storage (0 if none).
     */
    std::uint64_t force();

    std::uint64_t appendedBytes() const { return appended_bytes_; }
    std::uint64_t forcedBytes() const { return forced_bytes_; }

    /** Records appended over the log's lifetime. */
    std::uint64_t recordCount() const { return next_lsn_ - 1; }

    /** Records not yet forced. */
    std::uint64_t pendingRecords() const { return records_.size(); }
    std::uint64_t forceCount() const { return forces_; }

    const std::vector<WalRecord> &records() const { return records_; }

    /** Drop records older than the given LSN (checkpoint truncation). */
    void truncate(std::uint64_t up_to_lsn);

  private:
    std::vector<WalRecord> records_;
    std::uint64_t next_lsn_ = 1;
    std::uint64_t appended_bytes_ = 0;
    std::uint64_t forced_bytes_ = 0;
    std::uint64_t forces_ = 0;

    static constexpr std::uint32_t headerBytes = 24;
};

} // namespace jasim

#endif // JASIM_DB_WAL_H
