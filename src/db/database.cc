#include "db/database.h"

#include <cassert>

namespace jasim {

void
DbCost::add(const DbCost &other)
{
    pages_hit += other.pages_hit;
    pages_read += other.pages_read;
    writebacks += other.writebacks;
    rows += other.rows;
    log_bytes_forced += other.log_bytes_forced;
    cpu_us += other.cpu_us;
}

Database::Database(const DbConfig &config)
    : config_(config), pool_(config.buffer_pool_pages)
{
}

std::uint32_t
Database::createTable(Schema schema)
{
    assert(!schema.columns.empty());
    assert(schema.columns[0].type == ColumnType::Integer &&
           "column 0 must be an integer primary key");
    const std::uint32_t id = static_cast<std::uint32_t>(tables_.size());
    table_names_[schema.table_name] = id;
    TableState ts;
    ts.table = std::make_unique<Table>(std::move(schema),
                                       config_.rows_per_page);
    tables_.push_back(std::move(ts));
    return id;
}

void
Database::createSecondaryIndex(std::uint32_t table_id,
                               const std::string &column)
{
    TableState &ts = state(table_id);
    const auto col = ts.table->schema().columnIndex(column);
    assert(col && "unknown column");
    MultiIndex &index = ts.secondary[column];
    ts.table->scan([&](RowId id, const Row &row) {
        index.insert(std::get<std::int64_t>(row[*col]), id);
        return true;
    });
}

std::optional<std::uint32_t>
Database::tableId(const std::string &name) const
{
    const auto it = table_names_.find(name);
    if (it == table_names_.end())
        return std::nullopt;
    return it->second;
}

const Table &
Database::table(std::uint32_t table_id) const
{
    return *state(table_id).table;
}

Database::TableState &
Database::state(std::uint32_t table_id)
{
    assert(table_id < tables_.size());
    return tables_[table_id];
}

const Database::TableState &
Database::state(std::uint32_t table_id) const
{
    assert(table_id < tables_.size());
    return tables_[table_id];
}

void
Database::touchPage(std::uint32_t table_id, std::uint32_t page,
                    bool dirty, DbCost &cost)
{
    const PinResult pin = pool_.pin(PageKey{table_id, page}, dirty);
    if (pin.hit)
        ++cost.pages_hit;
    else
        ++cost.pages_read;
    if (pin.writeback)
        ++cost.writebacks;
    cost.cpu_us += pin.hit ? 0.3 : 1.2;
}

std::uint32_t
Database::rowBytes(const Row &row)
{
    std::uint32_t bytes = 0;
    for (const auto &value : row) {
        if (std::holds_alternative<std::int64_t>(value))
            bytes += 8;
        else
            bytes += static_cast<std::uint32_t>(
                std::get<std::string>(value).size()) + 4;
    }
    return bytes;
}

std::int64_t
Database::keyOf(const Row &row)
{
    return std::get<std::int64_t>(row[0]);
}

void
Database::indexRemove(TableState &ts, RowId id, const Row &row)
{
    for (auto &[column, index] : ts.secondary) {
        const auto col = ts.table->schema().columnIndex(column);
        index.erase(std::get<std::int64_t>(row[*col]), id);
    }
}

void
Database::indexAdd(TableState &ts, RowId id, const Row &row)
{
    for (auto &[column, index] : ts.secondary) {
        const auto col = ts.table->schema().columnIndex(column);
        index.insert(std::get<std::int64_t>(row[*col]), id);
    }
}

TxnId
Database::begin()
{
    const TxnId txn = next_txn_++;
    active_[txn] = {};
    wal_.append(txn, WalRecordType::Begin, 0);
    return txn;
}

DbCost
Database::commit(TxnId txn)
{
    DbCost cost;
    const auto it = active_.find(txn);
    assert(it != active_.end() && "commit of unknown transaction");
    wal_.append(txn, WalRecordType::Commit, 0);
    cost.log_bytes_forced = wal_.force();
    cost.cpu_us += 4.0;
    active_.erase(it);
    return cost;
}

DbCost
Database::abort(TxnId txn)
{
    DbCost cost;
    const auto it = active_.find(txn);
    assert(it != active_.end() && "abort of unknown transaction");
    // Undo in reverse order.
    for (auto undo = it->second.rbegin(); undo != it->second.rend();
         ++undo) {
        TableState &ts = state(undo->table_id);
        const auto current = ts.table->fetch(undo->row_id);
        if (current) {
            indexRemove(ts, undo->row_id, *current);
        }
        if (undo->before) {
            if (current)
                ts.table->update(undo->row_id, *undo->before);
            else {
                // Row was erased in the txn; resurrecting tombstones
                // is not supported by Table, so re-insert.
                const RowId id = ts.table->insert(*undo->before);
                ts.primary.erase(keyOf(*undo->before));
                ts.primary.insert(keyOf(*undo->before), id);
                indexAdd(ts, id, *undo->before);
                touchPage(undo->table_id, id.page, true, cost);
                continue;
            }
            indexAdd(ts, undo->row_id, *undo->before);
        } else if (current) {
            // Undo an insert.
            ts.primary.erase(keyOf(*current));
            ts.table->erase(undo->row_id);
        }
        touchPage(undo->table_id, undo->row_id.page, true, cost);
        ++cost.rows;
    }
    wal_.append(txn, WalRecordType::Abort, 0);
    cost.log_bytes_forced = wal_.force();
    cost.cpu_us += 6.0;
    active_.erase(it);
    return cost;
}

DbCost
Database::insert(TxnId txn, std::uint32_t table_id, Row row)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const std::int64_t key = keyOf(row);
    const std::uint32_t bytes = rowBytes(row);
    const RowId id = ts.table->insert(std::move(row));
    const bool unique = ts.primary.insert(key, id);
    assert(unique && "duplicate primary key");
    (void)unique;
    const auto inserted = ts.table->fetch(id);
    indexAdd(ts, id, *inserted);

    touchPage(table_id, id.page, true, cost);
    wal_.append(txn, WalRecordType::Insert, bytes);
    active_[txn].push_back(UndoEntry{table_id, id, std::nullopt});
    ++cost.rows;
    cost.cpu_us += 2.0;
    return cost;
}

std::optional<Row>
Database::pointSelect(std::uint32_t table_id, std::int64_t key,
                      DbCost &cost)
{
    TableState &ts = state(table_id);
    cost.cpu_us += 0.8; // index probe
    const auto id = ts.primary.find(key);
    if (!id)
        return std::nullopt;
    touchPage(table_id, id->page, false, cost);
    ++cost.rows;
    return ts.table->fetch(*id);
}

DbCost
Database::updateByKey(TxnId txn, std::uint32_t table_id,
                      std::int64_t key, Row row)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const auto id = ts.primary.find(key);
    if (!id) {
        cost.cpu_us += 0.8;
        return cost;
    }
    const auto before = ts.table->fetch(*id);
    assert(before);
    indexRemove(ts, *id, *before);
    const std::uint32_t bytes = rowBytes(row);
    ts.table->update(*id, std::move(row));
    const auto after = ts.table->fetch(*id);
    indexAdd(ts, *id, *after);

    touchPage(table_id, id->page, true, cost);
    wal_.append(txn, WalRecordType::Update, bytes);
    active_[txn].push_back(UndoEntry{table_id, *id, before});
    ++cost.rows;
    cost.cpu_us += 2.5;
    return cost;
}

DbCost
Database::eraseByKey(TxnId txn, std::uint32_t table_id, std::int64_t key)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const auto id = ts.primary.find(key);
    if (!id) {
        cost.cpu_us += 0.8;
        return cost;
    }
    const auto before = ts.table->fetch(*id);
    assert(before);
    indexRemove(ts, *id, *before);
    ts.primary.erase(key);
    ts.table->erase(*id);

    touchPage(table_id, id->page, true, cost);
    wal_.append(txn, WalRecordType::Erase, rowBytes(*before));
    active_[txn].push_back(UndoEntry{table_id, *id, before});
    ++cost.rows;
    cost.cpu_us += 2.0;
    return cost;
}

std::vector<Row>
Database::selectBySecondary(std::uint32_t table_id,
                            const std::string &column, std::int64_t key,
                            DbCost &cost)
{
    TableState &ts = state(table_id);
    const auto index = ts.secondary.find(column);
    assert(index != ts.secondary.end() && "no such secondary index");
    cost.cpu_us += 1.0;
    std::vector<Row> rows;
    for (const RowId id : index->second.find(key)) {
        touchPage(table_id, id.page, false, cost);
        const auto row = ts.table->fetch(id);
        if (row) {
            rows.push_back(*row);
            ++cost.rows;
        }
    }
    return rows;
}

std::vector<Row>
Database::scanWhere(std::uint32_t table_id, std::size_t column,
                    std::int64_t value, DbCost &cost)
{
    TableState &ts = state(table_id);
    std::vector<Row> rows;
    std::uint32_t last_page = ~0u;
    ts.table->scan([&](RowId id, const Row &row) {
        if (id.page != last_page) {
            touchPage(table_id, id.page, false, cost);
            last_page = id.page;
        }
        cost.cpu_us += 0.05;
        if (std::get<std::int64_t>(row[column]) == value) {
            rows.push_back(row);
            ++cost.rows;
        }
        return true;
    });
    return rows;
}

} // namespace jasim
