#include "db/database.h"

#include <cassert>
#include <unordered_set>

namespace jasim {

void
DbCost::add(const DbCost &other)
{
    pages_hit += other.pages_hit;
    pages_read += other.pages_read;
    writebacks += other.writebacks;
    rows += other.rows;
    log_bytes_forced += other.log_bytes_forced;
    cpu_us += other.cpu_us;
}

Database::Database(const DbConfig &config)
    : config_(config), pool_(config.buffer_pool_pages)
{
}

std::uint32_t
Database::createTable(Schema schema)
{
    assert(!schema.columns.empty());
    assert(schema.columns[0].type == ColumnType::Integer &&
           "column 0 must be an integer primary key");
    const std::uint32_t id = static_cast<std::uint32_t>(tables_.size());
    table_names_[schema.table_name] = id;
    TableState ts;
    ts.table = std::make_unique<Table>(std::move(schema),
                                       config_.rows_per_page);
    tables_.push_back(std::move(ts));
    if (recovery_on_)
        stable_.resize(tables_.size());
    return id;
}

void
Database::createSecondaryIndex(std::uint32_t table_id,
                               const std::string &column)
{
    TableState &ts = state(table_id);
    const auto col = ts.table->schema().columnIndex(column);
    assert(col && "unknown column");
    MultiIndex &index = ts.secondary[column];
    ts.table->scan([&](RowId id, const Row &row) {
        index.insert(std::get<std::int64_t>(row[*col]), id);
        return true;
    });
}

std::optional<std::uint32_t>
Database::tableId(const std::string &name) const
{
    const auto it = table_names_.find(name);
    if (it == table_names_.end())
        return std::nullopt;
    return it->second;
}

const Table &
Database::table(std::uint32_t table_id) const
{
    return *state(table_id).table;
}

Database::TableState &
Database::state(std::uint32_t table_id)
{
    assert(table_id < tables_.size());
    return tables_[table_id];
}

const Database::TableState &
Database::state(std::uint32_t table_id) const
{
    assert(table_id < tables_.size());
    return tables_[table_id];
}

void
Database::touchPage(std::uint32_t table_id, std::uint32_t page,
                    bool dirty, DbCost &cost,
                    std::uint64_t recovery_lsn)
{
    const PinResult pin =
        pool_.pin(PageKey{table_id, page}, dirty, recovery_lsn);
    if (pin.hit)
        ++cost.pages_hit;
    else
        ++cost.pages_read;
    if (pin.writeback)
        ++cost.writebacks;
    cost.cpu_us += pin.hit ? 0.3 : 1.2;
    if (recovery_on_ && pin.evicted && pin.writeback)
        flushPageToStable(pin.victim, &cost);
}

std::uint64_t
Database::logMutation(TxnId txn, WalRecordType type,
                      std::uint32_t payload_bytes,
                      std::uint32_t table_id, RowId rid,
                      std::optional<Row> redo, std::optional<Row> undo)
{
    if (!recovery_on_) {
        wal_.append(txn, type, payload_bytes);
        return 0;
    }
    const std::uint64_t lsn =
        wal_.appendLogical(txn, type, payload_bytes, table_id, rid,
                           std::move(redo), std::move(undo));
    page_lsn_[PageKey{table_id, rid.page}] = lsn;
    return lsn;
}

void
Database::flushPageToStable(PageKey key, DbCost *cost)
{
    const auto it = page_lsn_.find(key);
    const std::uint64_t lsn = it == page_lsn_.end() ? 0 : it->second;
    if (lsn > wal_.issuedLsn()) {
        // WAL protocol: the log describing the page must reach stable
        // storage before the page image does.
        const std::uint64_t forced = wal_.force();
        if (cost)
            cost->log_bytes_forced += forced;
    }
    if (stable_.size() <= key.table)
        stable_.resize(key.table + 1);
    auto &images = stable_[key.table];
    if (images.size() <= key.page)
        images.resize(key.page + 1);
    images[key.page] = tables_[key.table].table->pageImage(key.page);
    if (lsn != 0) {
        stable_page_lsn_[key] = lsn;
        wal_.protect(lsn);
    }
}

std::uint32_t
Database::rowBytes(const Row &row)
{
    std::uint32_t bytes = 0;
    for (const auto &value : row) {
        if (std::holds_alternative<std::int64_t>(value))
            bytes += 8;
        else
            bytes += static_cast<std::uint32_t>(
                std::get<std::string>(value).size()) + 4;
    }
    return bytes;
}

std::int64_t
Database::keyOf(const Row &row)
{
    return std::get<std::int64_t>(row[0]);
}

void
Database::indexRemove(TableState &ts, RowId id, const Row &row)
{
    for (auto &[column, index] : ts.secondary) {
        const auto col = ts.table->schema().columnIndex(column);
        index.erase(std::get<std::int64_t>(row[*col]), id);
    }
}

void
Database::indexAdd(TableState &ts, RowId id, const Row &row)
{
    for (auto &[column, index] : ts.secondary) {
        const auto col = ts.table->schema().columnIndex(column);
        index.insert(std::get<std::int64_t>(row[*col]), id);
    }
}

TxnId
Database::begin()
{
    const TxnId txn = next_txn_++;
    TxnState &st = active_[txn];
    const std::uint64_t lsn = wal_.append(txn, WalRecordType::Begin, 0);
    if (recovery_on_)
        st.first_lsn = lsn;
    return txn;
}

DbCost
Database::commit(TxnId txn)
{
    DbCost cost;
    const auto it = active_.find(txn);
    assert(it != active_.end() && "commit of unknown transaction");
    const std::uint64_t lsn = wal_.append(txn, WalRecordType::Commit, 0);
    if (recovery_on_)
        last_commit_lsn_ = lsn;
    cost.log_bytes_forced = wal_.force();
    cost.cpu_us += 4.0;
    active_.erase(it);
    return cost;
}

DbCost
Database::abort(TxnId txn)
{
    DbCost cost;
    const auto it = active_.find(txn);
    assert(it != active_.end() && "abort of unknown transaction");
    // Undo in reverse order. In recovery mode every undo step logs a
    // compensation record (redo-only), so a crash after the abort
    // replays the rollback instead of resurrecting the transaction.
    for (auto undo = it->second.undo.rbegin();
         undo != it->second.undo.rend(); ++undo) {
        TableState &ts = state(undo->table_id);
        const auto current = ts.table->fetch(undo->row_id);
        if (current) {
            indexRemove(ts, undo->row_id, *current);
        }
        if (undo->before) {
            if (current)
                ts.table->update(undo->row_id, *undo->before);
            else {
                // Row was erased in the txn; resurrecting tombstones
                // is not supported by Table, so re-insert.
                const RowId id = ts.table->insert(*undo->before);
                ts.primary.erase(keyOf(*undo->before));
                ts.primary.insert(keyOf(*undo->before), id);
                indexAdd(ts, id, *undo->before);
                std::uint64_t clr = 0;
                if (recovery_on_) {
                    clr = logMutation(txn, WalRecordType::Insert,
                                      rowBytes(*undo->before),
                                      undo->table_id, id,
                                      *undo->before, std::nullopt);
                }
                touchPage(undo->table_id, id.page, true, cost, clr);
                continue;
            }
            indexAdd(ts, undo->row_id, *undo->before);
        } else if (current) {
            // Undo an insert.
            ts.primary.erase(keyOf(*current));
            ts.table->erase(undo->row_id);
        }
        std::uint64_t clr = 0;
        if (recovery_on_) {
            clr = undo->before
                ? logMutation(txn, WalRecordType::Update,
                              rowBytes(*undo->before), undo->table_id,
                              undo->row_id, *undo->before, std::nullopt)
                : logMutation(txn, WalRecordType::Erase,
                              current ? rowBytes(*current) : 0,
                              undo->table_id, undo->row_id,
                              std::nullopt, std::nullopt);
        }
        touchPage(undo->table_id, undo->row_id.page, true, cost, clr);
        ++cost.rows;
    }
    wal_.append(txn, WalRecordType::Abort, 0);
    cost.log_bytes_forced = wal_.force();
    cost.cpu_us += 6.0;
    active_.erase(it);
    return cost;
}

DbCost
Database::insert(TxnId txn, std::uint32_t table_id, Row row)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const std::int64_t key = keyOf(row);
    const std::uint32_t bytes = rowBytes(row);
    const RowId id = ts.table->insert(std::move(row));
    const bool unique = ts.primary.insert(key, id);
    assert(unique && "duplicate primary key");
    (void)unique;
    const auto inserted = ts.table->fetch(id);
    indexAdd(ts, id, *inserted);

    const std::uint64_t lsn =
        logMutation(txn, WalRecordType::Insert, bytes, table_id, id,
                    recovery_on_ ? inserted : std::nullopt,
                    std::nullopt);
    touchPage(table_id, id.page, true, cost, lsn);
    active_[txn].undo.push_back(UndoEntry{table_id, id, std::nullopt});
    ++cost.rows;
    cost.cpu_us += 2.0;
    return cost;
}

std::optional<Row>
Database::pointSelect(std::uint32_t table_id, std::int64_t key,
                      DbCost &cost)
{
    TableState &ts = state(table_id);
    cost.cpu_us += 0.8; // index probe
    const auto id = ts.primary.find(key);
    if (!id)
        return std::nullopt;
    touchPage(table_id, id->page, false, cost);
    ++cost.rows;
    return ts.table->fetch(*id);
}

DbCost
Database::updateByKey(TxnId txn, std::uint32_t table_id,
                      std::int64_t key, Row row)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const auto id = ts.primary.find(key);
    if (!id) {
        cost.cpu_us += 0.8;
        return cost;
    }
    const auto before = ts.table->fetch(*id);
    assert(before);
    indexRemove(ts, *id, *before);
    const std::uint32_t bytes = rowBytes(row);
    ts.table->update(*id, std::move(row));
    const auto after = ts.table->fetch(*id);
    indexAdd(ts, *id, *after);

    const std::uint64_t lsn =
        logMutation(txn, WalRecordType::Update, bytes, table_id, *id,
                    recovery_on_ ? after : std::nullopt,
                    recovery_on_ ? before : std::nullopt);
    touchPage(table_id, id->page, true, cost, lsn);
    active_[txn].undo.push_back(UndoEntry{table_id, *id, before});
    ++cost.rows;
    cost.cpu_us += 2.5;
    return cost;
}

DbCost
Database::eraseByKey(TxnId txn, std::uint32_t table_id, std::int64_t key)
{
    DbCost cost;
    TableState &ts = state(table_id);
    const auto id = ts.primary.find(key);
    if (!id) {
        cost.cpu_us += 0.8;
        return cost;
    }
    const auto before = ts.table->fetch(*id);
    assert(before);
    indexRemove(ts, *id, *before);
    ts.primary.erase(key);
    ts.table->erase(*id);

    const std::uint64_t lsn =
        logMutation(txn, WalRecordType::Erase, rowBytes(*before),
                    table_id, *id, std::nullopt,
                    recovery_on_ ? before : std::nullopt);
    touchPage(table_id, id->page, true, cost, lsn);
    active_[txn].undo.push_back(UndoEntry{table_id, *id, before});
    ++cost.rows;
    cost.cpu_us += 2.0;
    return cost;
}

std::vector<Row>
Database::selectBySecondary(std::uint32_t table_id,
                            const std::string &column, std::int64_t key,
                            DbCost &cost)
{
    TableState &ts = state(table_id);
    const auto index = ts.secondary.find(column);
    assert(index != ts.secondary.end() && "no such secondary index");
    cost.cpu_us += 1.0;
    std::vector<Row> rows;
    for (const RowId id : index->second.find(key)) {
        touchPage(table_id, id.page, false, cost);
        const auto row = ts.table->fetch(id);
        if (row) {
            rows.push_back(*row);
            ++cost.rows;
        }
    }
    return rows;
}

std::vector<Row>
Database::scanWhere(std::uint32_t table_id, std::size_t column,
                    std::int64_t value, DbCost &cost)
{
    TableState &ts = state(table_id);
    std::vector<Row> rows;
    std::uint32_t last_page = ~0u;
    ts.table->scan([&](RowId id, const Row &row) {
        if (id.page != last_page) {
            touchPage(table_id, id.page, false, cost);
            last_page = id.page;
        }
        cost.cpu_us += 0.05;
        if (std::get<std::int64_t>(row[column]) == value) {
            rows.push_back(row);
            ++cost.rows;
        }
        return true;
    });
    return rows;
}

// ---- crash recovery -------------------------------------------------

void
Database::enableRecovery()
{
    assert(!recovery_on_ && "recovery already enabled");
    assert(active_.empty() && "enableRecovery with a txn in flight");
    // The populated state is the recovery baseline: force what is
    // pending, snapshot every table into the stable store, and start
    // retaining logical records from here.
    wal_.force();
    wal_.setRetention(true);
    wal_.confirmDurable(wal_.lastLsn());

    stable_.clear();
    stable_.resize(tables_.size());
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const Table &tbl = *tables_[t].table;
        stable_[t].reserve(tbl.pageCount());
        for (std::uint32_t p = 0; p < tbl.pageCount(); ++p)
            stable_[t].push_back(tbl.pageImage(p));
    }
    page_lsn_.clear();
    stable_page_lsn_.clear();
    pool_.markAllClean();
    recovery_on_ = true;
}

void
Database::confirmWalDurable(std::uint64_t lsn)
{
    wal_.confirmDurable(lsn);
}

CheckpointStats
Database::checkpoint()
{
    assert(recovery_on_ && !crashed_);
    CheckpointStats s;
    s.begin_lsn = wal_.append(0, WalRecordType::BeginCheckpoint, 8);
    // The end record carries the dirty-page and active-txn tables.
    const BufferPool::DirtyPageTable dirty = pool_.dirtyPages();
    s.end_lsn = wal_.append(
        0, WalRecordType::EndCheckpoint,
        static_cast<std::uint32_t>(8 + 12 * dirty.size() +
                                   12 * active_.size()));
    s.log_bytes_forced = wal_.force();
    for (const auto &[key, rec_lsn] : dirty) {
        (void)rec_lsn;
        flushPageToStable(key, nullptr);
        pool_.markClean(key);
        ++s.pages_flushed;
    }
    // Redo point: with the dirty-page table drained, nothing below
    // the oldest live transaction's first record (capped by this
    // checkpoint) is ever replayed again.
    std::uint64_t redo_point = s.end_lsn;
    for (const auto &[txn, st] : active_) {
        (void)txn;
        if (st.first_lsn != 0 && st.first_lsn < redo_point)
            redo_point = st.first_lsn;
    }
    std::uint64_t bound = redo_point - 1;
    if (floor_on_) {
        // Replication: never truncate what a replica still needs,
        // and keep every record of a transaction spanning the floor
        // (a failover at the floor must be able to undo it from its
        // first record).
        bound = std::min(bound, floor_);
        std::unordered_map<TxnId, std::uint64_t> first_lsn;
        for (const WalRecord &rec : wal_.records()) {
            if (rec.txn == 0)
                continue;
            first_lsn.emplace(rec.txn, rec.lsn);
            if (rec.lsn > floor_)
                bound = std::min(bound, first_lsn[rec.txn] - 1);
        }
    }
    const std::size_t before = wal_.records().size();
    wal_.truncate(bound);
    s.truncated_records = before - wal_.records().size();
    return s;
}

CrashStats
Database::crash(bool torn)
{
    assert(recovery_on_ && !crashed_);
    CrashStats s;
    const WalCrashLoss loss = wal_.crashDiscard(torn);
    s.wal_records_lost = loss.unforced_records;
    s.torn_records = loss.torn_records;
    s.dirty_pages_discarded = pool_.dirtyPages().size();

    if (stable_.size() < tables_.size())
        stable_.resize(tables_.size());
    for (std::size_t t = 0; t < tables_.size(); ++t)
        tables_[t].table->restoreAll(stable_[t]);
    page_lsn_ = stable_page_lsn_;
    pool_.clear();
    active_.clear();
    crashed_ = true;
    return s;
}

RecoveryStats
Database::recover()
{
    assert(crashed_ && "recover without a crash");
    RecoveryStats s;
    s.replay_bytes = wal_.retainedBytes();

    // Analysis: a transaction with a terminal record is a winner
    // (Abort wrote compensation records, so its retained log already
    // describes the rollback). Everything else is a loser.
    std::unordered_set<TxnId> seen;
    std::unordered_set<TxnId> winners;
    for (const WalRecord &rec : wal_.records()) {
        if (rec.txn == 0)
            continue; // checkpoint bookkeeping
        seen.insert(rec.txn);
        if (rec.type == WalRecordType::Commit ||
            rec.type == WalRecordType::Abort)
            winners.insert(rec.txn);
    }
    s.winner_txns = winners.size();
    s.loser_txns = seen.size() - winners.size();

    const auto logical = [](const WalRecord &rec) {
        return rec.type == WalRecordType::Insert ||
            rec.type == WalRecordType::Update ||
            rec.type == WalRecordType::Erase;
    };

    // Redo: repeat history. Every retained record replays unless the
    // stable page image already carries it (pageLSN guard).
    std::unordered_set<PageKey, PageKeyHash> touched;
    for (const WalRecord &rec : wal_.records()) {
        if (!logical(rec))
            continue;
        ++s.redo_records;
        const PageKey key{rec.table, rec.rid.page};
        std::uint64_t &plsn = page_lsn_[key];
        if (rec.lsn <= plsn)
            continue;
        Table &tbl = *tables_[rec.table].table;
        if (rec.type == WalRecordType::Erase)
            tbl.eraseAt(rec.rid);
        else if (rec.redo)
            tbl.setRowAt(rec.rid, *rec.redo);
        plsn = rec.lsn;
        touched.insert(key);
        ++s.redo_applied;
    }

    // Undo losers in reverse LSN order from their before-images.
    const std::vector<WalRecord> &recs = wal_.records();
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
        const WalRecord &rec = *it;
        if (!logical(rec) || rec.txn == 0 ||
            winners.count(rec.txn) != 0)
            continue;
        ++s.undo_records;
        Table &tbl = *tables_[rec.table].table;
        if (rec.type == WalRecordType::Insert)
            tbl.eraseAt(rec.rid);
        else if (rec.undo)
            tbl.setRowAt(rec.rid, *rec.undo);
        touched.insert(PageKey{rec.table, rec.rid.page});
    }

    rebuildIndexes();

    // Recovery checkpoint: flush every page recovery touched, log an
    // empty checkpoint, and truncate -- the next crash replays only
    // what happens after this point.
    for (const PageKey &key : touched)
        flushPageToStable(key, nullptr);
    s.pages_flushed = touched.size();
    wal_.append(0, WalRecordType::BeginCheckpoint, 8);
    const std::uint64_t end_lsn =
        wal_.append(0, WalRecordType::EndCheckpoint, 8);
    s.checkpoint_bytes = wal_.force();
    wal_.truncate(end_lsn);
    crashed_ = false;
    return s;
}

FailoverStats
Database::failoverTo(std::uint64_t watermark)
{
    assert(recovery_on_ && !crashed_);
    FailoverStats s;
    s.watermark = watermark;

    const auto logical = [](const WalRecord &rec) {
        return rec.type == WalRecordType::Insert ||
            rec.type == WalRecordType::Update ||
            rec.type == WalRecordType::Erase;
    };

    // Reverse history above the watermark, newest first: each record
    // is undone from its own images, so afterwards every table holds
    // exactly the state the promoted replica's log describes.
    const std::vector<WalRecord> &recs = wal_.records();
    std::unordered_set<PageKey, PageKeyHash> touched;
    for (auto it = recs.rbegin();
         it != recs.rend() && it->lsn > watermark; ++it) {
        const WalRecord &rec = *it;
        if (!logical(rec))
            continue;
        ++s.reversed_records;
        Table &tbl = *tables_[rec.table].table;
        touched.insert(PageKey{rec.table, rec.rid.page});
        if (rec.undo) {
            tbl.setRowAt(rec.rid, *rec.undo);
            continue;
        }
        if (rec.type == WalRecordType::Insert) {
            tbl.eraseAt(rec.rid);
            continue;
        }
        // Redo-only erase (a compensation record): the row's state
        // before it is whatever the most recent earlier record of the
        // same row left behind; with no earlier record retained the
        // row did not exist.
        bool restored = false;
        for (auto back = it + 1; back != recs.rend(); ++back) {
            if (!logical(*back) || back->table != rec.table ||
                !(back->rid == rec.rid))
                continue;
            if (back->type == WalRecordType::Erase)
                tbl.eraseAt(rec.rid);
            else if (back->redo)
                tbl.setRowAt(rec.rid, *back->redo);
            restored = true;
            break;
        }
        if (!restored)
            tbl.eraseAt(rec.rid);
    }

    // Transactions still open at the watermark are losers on the
    // promoted timeline: undo their retained records in reverse.
    std::unordered_set<TxnId> seen;
    std::unordered_set<TxnId> winners;
    for (const WalRecord &rec : recs) {
        if (rec.lsn > watermark)
            break;
        if (rec.txn == 0)
            continue;
        seen.insert(rec.txn);
        if (rec.type == WalRecordType::Commit ||
            rec.type == WalRecordType::Abort)
            winners.insert(rec.txn);
    }
    s.loser_txns = seen.size() - winners.size();
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
        const WalRecord &rec = *it;
        if (rec.lsn > watermark || !logical(rec) || rec.txn == 0 ||
            winners.count(rec.txn) != 0)
            continue;
        ++s.undo_records;
        Table &tbl = *tables_[rec.table].table;
        if (rec.type == WalRecordType::Insert)
            tbl.eraseAt(rec.rid);
        else if (rec.undo)
            tbl.setRowAt(rec.rid, *rec.undo);
        touched.insert(PageKey{rec.table, rec.rid.page});
    }

    // The unshipped tail never happened on the promoted timeline.
    s.discarded_records = wal_.discardAbove(watermark);
    s.replay_bytes = wal_.retainedBytes();

    rebuildIndexes();

    // Promotion checkpoint: flush every page whose content or stable
    // image differs from the at-W state -- pages the rewind touched,
    // dirty pages (committed effects <= W not yet in their stable
    // images), and stable images that ran ahead of W (a later crash
    // would resurrect unshipped effects from them).
    for (const auto &[key, rec_lsn] : pool_.dirtyPages()) {
        (void)rec_lsn;
        touched.insert(key);
    }
    for (const auto &[key, lsn] : stable_page_lsn_) {
        if (lsn > watermark)
            touched.insert(key);
    }
    for (const PageKey &key : touched) {
        page_lsn_[key] = watermark;
        flushPageToStable(key, nullptr);
    }
    s.pages_flushed = touched.size();
    for (auto &[key, lsn] : page_lsn_) {
        (void)key;
        lsn = std::min(lsn, watermark);
    }
    for (auto &[key, lsn] : stable_page_lsn_) {
        (void)key;
        lsn = std::min(lsn, watermark);
    }

    // In-flight transactions and the buffer cache die with the old
    // primary; the promoted replica starts cold.
    active_.clear();
    pool_.clear();

    wal_.append(0, WalRecordType::BeginCheckpoint, 8);
    const std::uint64_t end_lsn =
        wal_.append(0, WalRecordType::EndCheckpoint, 8);
    s.checkpoint_bytes = wal_.force();
    wal_.truncate(end_lsn);
    last_commit_lsn_ = std::min(last_commit_lsn_, watermark);
    return s;
}

void
Database::rebuildIndexes()
{
    for (TableState &ts : tables_) {
        ts.primary = UniqueIndex{};
        for (auto &[column, index] : ts.secondary) {
            (void)column;
            index = MultiIndex{};
        }
        ts.table->scan([&ts](RowId id, const Row &row) {
            ts.primary.insert(keyOf(row), id);
            for (auto &[column, index] : ts.secondary) {
                const auto col = ts.table->schema().columnIndex(column);
                index.insert(std::get<std::int64_t>(row[*col]), id);
            }
            return true;
        });
    }
}

} // namespace jasim
