/**
 * @file
 * The database facade: tables, indexes, buffer pool, WAL, transactions.
 *
 * A deliberately small but genuine relational engine standing in for
 * DB2: operations return DbCost records (page hits/misses, forced log
 * bytes, CPU estimate) that the system-level simulation converts into
 * service time and disk traffic.
 */

#ifndef JASIM_DB_DATABASE_H
#define JASIM_DB_DATABASE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/buffer_pool.h"
#include "db/index.h"
#include "db/table.h"
#include "db/wal.h"

namespace jasim {

/** Engine sizing. */
struct DbConfig
{
    std::size_t buffer_pool_pages = 32768; //!< 128 MB of 4 KB pages
    std::uint16_t rows_per_page = 32;
};

/** Cost of one or more operations. */
struct DbCost
{
    std::uint64_t pages_hit = 0;
    std::uint64_t pages_read = 0;   //!< buffer pool misses
    std::uint64_t writebacks = 0;
    std::uint64_t rows = 0;
    std::uint64_t log_bytes_forced = 0;
    double cpu_us = 0.0;

    void add(const DbCost &other);
};

/** Transaction handle. */
using TxnId = std::uint64_t;

/**
 * The engine. Not thread-safe: the system simulation serializes
 * access, modelling DB2's latching at a coarser grain.
 */
class Database
{
  public:
    explicit Database(const DbConfig &config);

    /** Create a table; column 0 becomes the unique primary key. */
    std::uint32_t createTable(Schema schema);

    /** Create a non-unique secondary index on an integer column. */
    void createSecondaryIndex(std::uint32_t table_id,
                              const std::string &column);

    std::optional<std::uint32_t> tableId(const std::string &name) const;
    const Table &table(std::uint32_t table_id) const;

    TxnId begin();
    DbCost commit(TxnId txn);
    DbCost abort(TxnId txn);

    /** Insert a row (column 0 must be a unique integer key). */
    DbCost insert(TxnId txn, std::uint32_t table_id, Row row);

    /** Point select by primary key. */
    std::optional<Row> pointSelect(std::uint32_t table_id,
                                   std::int64_t key, DbCost &cost);

    /** Update by primary key; cost reflects read + write + log. */
    DbCost updateByKey(TxnId txn, std::uint32_t table_id,
                       std::int64_t key, Row row);

    /** Delete by primary key. */
    DbCost eraseByKey(TxnId txn, std::uint32_t table_id,
                      std::int64_t key);

    /** Select via a secondary index. */
    std::vector<Row> selectBySecondary(std::uint32_t table_id,
                                       const std::string &column,
                                       std::int64_t key, DbCost &cost);

    /** Predicate full scan (no index). */
    std::vector<Row> scanWhere(std::uint32_t table_id,
                               std::size_t column, std::int64_t value,
                               DbCost &cost);

    const BufferPool &bufferPool() const { return pool_; }
    const Wal &wal() const { return wal_; }

  private:
    struct TableState
    {
        std::unique_ptr<Table> table;
        UniqueIndex primary;
        std::map<std::string, MultiIndex> secondary;
    };

    struct UndoEntry
    {
        std::uint32_t table_id;
        RowId row_id;
        std::optional<Row> before; //!< nullopt for inserts
    };

    DbConfig config_;
    std::vector<TableState> tables_;
    std::unordered_map<std::string, std::uint32_t> table_names_;
    BufferPool pool_;
    Wal wal_;
    TxnId next_txn_ = 1;
    std::unordered_map<TxnId, std::vector<UndoEntry>> active_;

    TableState &state(std::uint32_t table_id);
    const TableState &state(std::uint32_t table_id) const;

    /** Charge a page touch to the pool and the cost record. */
    void touchPage(std::uint32_t table_id, std::uint32_t page,
                   bool dirty, DbCost &cost);

    static std::uint32_t rowBytes(const Row &row);
    static std::int64_t keyOf(const Row &row);

    /** Maintain secondary indexes around a row mutation. */
    void indexRemove(TableState &ts, RowId id, const Row &row);
    void indexAdd(TableState &ts, RowId id, const Row &row);
};

} // namespace jasim

#endif // JASIM_DB_DATABASE_H
