/**
 * @file
 * The database facade: tables, indexes, buffer pool, WAL, transactions.
 *
 * A deliberately small but genuine relational engine standing in for
 * DB2: operations return DbCost records (page hits/misses, forced log
 * bytes, CPU estimate) that the system-level simulation converts into
 * service time and disk traffic.
 *
 * Crash recovery (opt-in via enableRecovery()) follows ARIES:
 * mutations log logical redo/undo records, the buffer pool tracks
 * dirty pages with recovery LSNs, fuzzy checkpoints flush dirty pages
 * and truncate the durable WAL prefix, and crash()/recover() discard
 * the volatile state then repeat history (pageLSN-guarded redo of
 * every retained record) before undoing loser transactions. Aborts
 * write compensation records, so an aborted transaction is a winner
 * whose log fully describes its rollback. Healthy runs that never
 * call enableRecovery() are byte-identical to a build without any of
 * this machinery.
 */

#ifndef JASIM_DB_DATABASE_H
#define JASIM_DB_DATABASE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/buffer_pool.h"
#include "db/index.h"
#include "db/table.h"
#include "db/wal.h"

namespace jasim {

/** Engine sizing. */
struct DbConfig
{
    std::size_t buffer_pool_pages = 32768; //!< 128 MB of 4 KB pages
    std::uint16_t rows_per_page = 32;
};

/** Cost of one or more operations. */
struct DbCost
{
    std::uint64_t pages_hit = 0;
    std::uint64_t pages_read = 0;   //!< buffer pool misses
    std::uint64_t writebacks = 0;
    std::uint64_t rows = 0;
    std::uint64_t log_bytes_forced = 0;
    double cpu_us = 0.0;

    void add(const DbCost &other);
};

/** One fuzzy checkpoint's work. */
struct CheckpointStats
{
    std::uint64_t begin_lsn = 0;
    std::uint64_t end_lsn = 0;
    std::uint64_t pages_flushed = 0;
    std::uint64_t log_bytes_forced = 0;
    std::uint64_t truncated_records = 0;
};

/** What a crash destroyed. */
struct CrashStats
{
    std::uint64_t wal_records_lost = 0;  //!< unforced tail
    std::uint64_t torn_records = 0;      //!< torn off a partial force
    std::uint64_t dirty_pages_discarded = 0;
};

/**
 * One failover promotion: the database rewound to a replica's durable
 * watermark (failoverTo()).
 */
struct FailoverStats
{
    std::uint64_t watermark = 0;         //!< promoted durable LSN
    std::uint64_t reversed_records = 0;  //!< mutations above W rolled back
    std::uint64_t discarded_records = 0; //!< WAL tail records dropped
    std::uint64_t loser_txns = 0;        //!< open txns at W undone
    std::uint64_t undo_records = 0;      //!< loser mutations <= W undone
    std::uint64_t pages_flushed = 0;     //!< promotion checkpoint flush
    std::uint64_t replay_bytes = 0;      //!< retained WAL at W
    std::uint64_t checkpoint_bytes = 0;  //!< promotion checkpoint force
};

/** One recovery pass (redo + undo + recovery checkpoint). */
struct RecoveryStats
{
    std::uint64_t replay_bytes = 0;   //!< retained WAL read back
    std::uint64_t redo_records = 0;   //!< logical records scanned
    std::uint64_t redo_applied = 0;   //!< passed the pageLSN guard
    std::uint64_t undo_records = 0;   //!< loser records rolled back
    std::uint64_t loser_txns = 0;
    std::uint64_t winner_txns = 0;
    std::uint64_t pages_flushed = 0;  //!< recovery checkpoint flush
    std::uint64_t checkpoint_bytes = 0;
};

/** Transaction handle. */
using TxnId = std::uint64_t;

/**
 * The engine. Not thread-safe: the system simulation serializes
 * access, modelling DB2's latching at a coarser grain.
 */
class Database
{
  public:
    explicit Database(const DbConfig &config);

    /** Create a table; column 0 becomes the unique primary key. */
    std::uint32_t createTable(Schema schema);

    /** Create a non-unique secondary index on an integer column. */
    void createSecondaryIndex(std::uint32_t table_id,
                              const std::string &column);

    std::optional<std::uint32_t> tableId(const std::string &name) const;
    const Table &table(std::uint32_t table_id) const;

    TxnId begin();
    DbCost commit(TxnId txn);
    DbCost abort(TxnId txn);

    /** Insert a row (column 0 must be a unique integer key). */
    DbCost insert(TxnId txn, std::uint32_t table_id, Row row);

    /** Point select by primary key. */
    std::optional<Row> pointSelect(std::uint32_t table_id,
                                   std::int64_t key, DbCost &cost);

    /** Update by primary key; cost reflects read + write + log. */
    DbCost updateByKey(TxnId txn, std::uint32_t table_id,
                       std::int64_t key, Row row);

    /** Delete by primary key. */
    DbCost eraseByKey(TxnId txn, std::uint32_t table_id,
                      std::int64_t key);

    /** Select via a secondary index. */
    std::vector<Row> selectBySecondary(std::uint32_t table_id,
                                       const std::string &column,
                                       std::int64_t key, DbCost &cost);

    /** Predicate full scan (no index). */
    std::vector<Row> scanWhere(std::uint32_t table_id,
                               std::size_t column, std::int64_t value,
                               DbCost &cost);

    const BufferPool &bufferPool() const { return pool_; }
    const Wal &wal() const { return wal_; }

    // ---- crash recovery ----

    /**
     * Arm recovery: snapshot every table into the stable store,
     * switch the WAL to retention mode, and start logging logical
     * redo/undo payloads. Call once, after schema + population and
     * with no transaction in flight.
     */
    void enableRecovery();
    bool recoveryEnabled() const { return recovery_on_; }

    /** LSN of the most recent Commit record (recovery mode). */
    std::uint64_t lastCommitLsn() const { return last_commit_lsn_; }

    /** The simulated disk completed the WAL force up to `lsn`. */
    void confirmWalDurable(std::uint64_t lsn);

    /**
     * Fuzzy checkpoint: BeginCheckpoint record, flush every dirty
     * page to the stable store, EndCheckpoint record, force, then
     * truncate the WAL below the redo point (min active-txn firstLSN,
     * capped by the checkpoint itself). The caller charges the
     * returned flush/force bytes to the disk model.
     */
    CheckpointStats checkpoint();

    /**
     * Power off: lose the unforced WAL tail (plus, for a torn write,
     * the second half of the in-flight force window), every buffered
     * page, and all in-flight transactions. Tables revert to their
     * stable images. Queries are invalid until recover().
     */
    CrashStats crash(bool torn);

    /**
     * ARIES restart: redo every retained record whose LSN beats the
     * stable page's LSN, undo loser transactions in reverse, rebuild
     * the hash indexes, and cut a recovery checkpoint. The caller
     * charges replay_bytes (reads) and the checkpoint (writes) to the
     * disk model so recovery takes simulated time.
     */
    RecoveryStats recover();
    bool crashed() const { return crashed_; }

    // ---- replication support (jasim::repl) ----

    /**
     * Replication floor: the lowest LSN any replica still needs
     * (min replica durable watermark). Fuzzy checkpoints never
     * truncate above it -- nor above the first record of any
     * transaction that spans it, since a failover at the floor must
     * still be able to undo that transaction. Maintained by the
     * cluster as replica watermarks advance.
     */
    void setTruncationFloor(std::uint64_t lsn)
    {
        floor_on_ = true;
        floor_ = lsn;
    }
    void clearTruncationFloor() { floor_on_ = false; }

    /**
     * Failover: rewind this (live, not crashed) database to the
     * promoted replica's durable watermark W. Every mutation above W
     * is reversed from its log record, transactions still open at W
     * are undone, the unshipped WAL tail is discarded, and a
     * promotion checkpoint is cut so the promoted history starts from
     * a clean stable image. Afterwards the database serves the shard
     * exactly as the promoted replica would: acked-at-W state only.
     * The caller charges replay_bytes / pages_flushed /
     * checkpoint_bytes to the disk model.
     */
    FailoverStats failoverTo(std::uint64_t watermark);

  private:
    struct TableState
    {
        std::unique_ptr<Table> table;
        UniqueIndex primary;
        std::map<std::string, MultiIndex> secondary;
    };

    struct UndoEntry
    {
        std::uint32_t table_id;
        RowId row_id;
        std::optional<Row> before; //!< nullopt for inserts
    };

    struct TxnState
    {
        std::vector<UndoEntry> undo;
        std::uint64_t first_lsn = 0; //!< Begin record (recovery mode)
    };

    DbConfig config_;
    std::vector<TableState> tables_;
    std::unordered_map<std::string, std::uint32_t> table_names_;
    BufferPool pool_;
    Wal wal_;
    TxnId next_txn_ = 1;
    std::unordered_map<TxnId, TxnState> active_;

    bool recovery_on_ = false;
    bool crashed_ = false;
    std::uint64_t last_commit_lsn_ = 0;
    bool floor_on_ = false;
    std::uint64_t floor_ = 0;
    /** pageLSN of buffered pages / their stable images. */
    std::unordered_map<PageKey, std::uint64_t, PageKeyHash> page_lsn_;
    std::unordered_map<PageKey, std::uint64_t, PageKeyHash>
        stable_page_lsn_;
    /** Per-table stable page images (what survives a crash). */
    std::vector<std::vector<Table::PageImage>> stable_;

    TableState &state(std::uint32_t table_id);
    const TableState &state(std::uint32_t table_id) const;

    /** Charge a page touch to the pool and the cost record. */
    void touchPage(std::uint32_t table_id, std::uint32_t page,
                   bool dirty, DbCost &cost,
                   std::uint64_t recovery_lsn = 0);

    /** Log a logical mutation; returns its LSN (0 when not armed). */
    std::uint64_t logMutation(TxnId txn, WalRecordType type,
                              std::uint32_t payload_bytes,
                              std::uint32_t table_id, RowId rid,
                              std::optional<Row> redo,
                              std::optional<Row> undo);

    /** Flush one page's image to the stable store (WAL first). */
    void flushPageToStable(PageKey key, DbCost *cost);

    static std::uint32_t rowBytes(const Row &row);
    static std::int64_t keyOf(const Row &row);

    /** Maintain secondary indexes around a row mutation. */
    void indexRemove(TableState &ts, RowId id, const Row &row);
    void indexAdd(TableState &ts, RowId id, const Row &row);

    void rebuildIndexes();
};

} // namespace jasim

#endif // JASIM_DB_DATABASE_H
