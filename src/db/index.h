/**
 * @file
 * Hash indexes over integer keys.
 *
 * jas2004's operations are dominated by point lookups on surrogate
 * keys; a unique hash index (primary key) and a non-unique variant
 * (foreign keys) cover the query engine's needs.
 */

#ifndef JASIM_DB_INDEX_H
#define JASIM_DB_INDEX_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "db/table.h"

namespace jasim {

/** Unique integer-key -> RowId index. */
class UniqueIndex
{
  public:
    /** Insert; false when the key already exists. */
    bool insert(std::int64_t key, RowId id);

    std::optional<RowId> find(std::int64_t key) const;

    bool erase(std::int64_t key);

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<std::int64_t, RowId> map_;
};

/** Non-unique integer-key -> RowIds index. */
class MultiIndex
{
  public:
    void insert(std::int64_t key, RowId id);

    /** All rows with the key (empty vector when none). */
    std::vector<RowId> find(std::int64_t key) const;

    /** Remove one (key, id) pairing; false when absent. */
    bool erase(std::int64_t key, RowId id);

    std::size_t size() const { return entries_; }

  private:
    std::unordered_map<std::int64_t, std::vector<RowId>> map_;
    std::size_t entries_ = 0;
};

} // namespace jasim

#endif // JASIM_DB_INDEX_H
