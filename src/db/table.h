/**
 * @file
 * Relational storage: schemas, rows, pages, tables.
 *
 * The DB2 stand-in stores rows in fixed-capacity pages so that access
 * costs are page-granular and flow through the buffer pool, which is
 * what couples the database to the memory/disk behaviour the paper
 * observes.
 */

#ifndef JASIM_DB_TABLE_H
#define JASIM_DB_TABLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace jasim {

/** Column value: integer or string. */
using Value = std::variant<std::int64_t, std::string>;

/** Column types. */
enum class ColumnType : std::uint8_t { Integer, Text };

/** One column definition. */
struct Column
{
    std::string name;
    ColumnType type;
};

/** Table schema: ordered columns; column 0 is the primary key. */
struct Schema
{
    std::string table_name;
    std::vector<Column> columns;

    std::optional<std::size_t> columnIndex(const std::string &name) const;
};

/** A row is one value per column. */
using Row = std::vector<Value>;

/** Location of a row: page number and slot within the page. */
struct RowId
{
    std::uint32_t page = 0;
    std::uint16_t slot = 0;

    bool operator==(const RowId &other) const = default;
};

/**
 * Heap-file table: pages of rows with tombstone deletion.
 *
 * Recovery support: pages can be snapshotted (`pageImage`) into a
 * stable store and put back wholesale (`restoreAll`), and individual
 * slots can be written or tombstoned at an exact RowId
 * (`setRowAt` / `eraseAt`) so WAL redo/undo replays land where the
 * original operations did.
 */
class Table
{
  public:
    /** Full copy of one page (the stable-storage image). */
    struct PageImage
    {
        std::vector<Row> rows;
        std::vector<bool> live;
    };

    Table(Schema schema, std::uint16_t rows_per_page = 32);

    const Schema &schema() const { return schema_; }

    /** Append a row; returns its location. */
    RowId insert(Row row);

    /** Fetch a row (nullopt when the slot is a tombstone). */
    std::optional<Row> fetch(RowId id) const;

    /** Overwrite a row in place; false if the slot is dead/absent. */
    bool update(RowId id, Row row);

    /** Tombstone a row; false if already dead/absent. */
    bool erase(RowId id);

    // ---- recovery (physical replay at exact locations) ----

    /** Copy of one page's rows and liveness (empty when absent). */
    PageImage pageImage(std::uint32_t page) const;

    /**
     * Write a row at an exact location, reviving a tombstone or
     * growing pages/slots (dead placeholders) as needed.
     */
    void setRowAt(RowId id, Row row);

    /** Tombstone a slot; tolerant of dead/absent (returns false). */
    bool eraseAt(RowId id);

    /** Replace the whole heap with stable page images. */
    void restoreAll(const std::vector<PageImage> &images);

    std::uint32_t pageCount() const
    {
        return static_cast<std::uint32_t>(pages_.size());
    }

    std::uint16_t rowsPerPage() const { return rows_per_page_; }

    /** Live rows (excludes tombstones). */
    std::uint64_t rowCount() const { return live_rows_; }

    /**
     * Visit every live row in page order; the visitor receives
     * (RowId, const Row&) and returns false to stop early.
     */
    template <typename Visitor>
    void
    scan(Visitor &&visit) const
    {
        for (std::uint32_t p = 0; p < pages_.size(); ++p) {
            const auto &page = pages_[p];
            for (std::uint16_t s = 0; s < page.rows.size(); ++s) {
                if (!page.live[s])
                    continue;
                if (!visit(RowId{p, s}, page.rows[s]))
                    return;
            }
        }
    }

  private:
    struct Page
    {
        std::vector<Row> rows;
        std::vector<bool> live;
    };

    Schema schema_;
    std::uint16_t rows_per_page_;
    std::vector<Page> pages_;
    std::uint64_t live_rows_ = 0;
};

} // namespace jasim

#endif // JASIM_DB_TABLE_H
