#include "db/table.h"

#include <cassert>

namespace jasim {

std::optional<std::size_t>
Schema::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].name == name)
            return i;
    }
    return std::nullopt;
}

Table::Table(Schema schema, std::uint16_t rows_per_page)
    : schema_(std::move(schema)), rows_per_page_(rows_per_page)
{
    assert(rows_per_page_ > 0);
    assert(!schema_.columns.empty());
}

RowId
Table::insert(Row row)
{
    assert(row.size() == schema_.columns.size());
    if (pages_.empty() || pages_.back().rows.size() >= rows_per_page_)
        pages_.push_back(Page{});
    Page &page = pages_.back();
    page.rows.push_back(std::move(row));
    page.live.push_back(true);
    ++live_rows_;
    return RowId{static_cast<std::uint32_t>(pages_.size() - 1),
                 static_cast<std::uint16_t>(page.rows.size() - 1)};
}

std::optional<Row>
Table::fetch(RowId id) const
{
    if (id.page >= pages_.size())
        return std::nullopt;
    const Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return std::nullopt;
    return page.rows[id.slot];
}

bool
Table::update(RowId id, Row row)
{
    assert(row.size() == schema_.columns.size());
    if (id.page >= pages_.size())
        return false;
    Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return false;
    page.rows[id.slot] = std::move(row);
    return true;
}

bool
Table::erase(RowId id)
{
    if (id.page >= pages_.size())
        return false;
    Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return false;
    page.live[id.slot] = false;
    --live_rows_;
    return true;
}

Table::PageImage
Table::pageImage(std::uint32_t page) const
{
    if (page >= pages_.size())
        return {};
    return PageImage{pages_[page].rows, pages_[page].live};
}

void
Table::setRowAt(RowId id, Row row)
{
    while (pages_.size() <= id.page)
        pages_.push_back(Page{});
    Page &page = pages_[id.page];
    while (page.rows.size() <= id.slot) {
        // Dead placeholder slots: never fetched (not live), and they
        // count toward page fullness exactly like tombstones do.
        page.rows.push_back(Row{});
        page.live.push_back(false);
    }
    if (!page.live[id.slot]) {
        page.live[id.slot] = true;
        ++live_rows_;
    }
    page.rows[id.slot] = std::move(row);
}

bool
Table::eraseAt(RowId id)
{
    return erase(id);
}

void
Table::restoreAll(const std::vector<PageImage> &images)
{
    pages_.clear();
    pages_.reserve(images.size());
    live_rows_ = 0;
    for (const PageImage &image : images) {
        assert(image.rows.size() == image.live.size());
        pages_.push_back(Page{image.rows, image.live});
        for (const bool live : image.live) {
            if (live)
                ++live_rows_;
        }
    }
}

} // namespace jasim
