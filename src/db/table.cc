#include "db/table.h"

#include <cassert>

namespace jasim {

std::optional<std::size_t>
Schema::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].name == name)
            return i;
    }
    return std::nullopt;
}

Table::Table(Schema schema, std::uint16_t rows_per_page)
    : schema_(std::move(schema)), rows_per_page_(rows_per_page)
{
    assert(rows_per_page_ > 0);
    assert(!schema_.columns.empty());
}

RowId
Table::insert(Row row)
{
    assert(row.size() == schema_.columns.size());
    if (pages_.empty() || pages_.back().rows.size() >= rows_per_page_)
        pages_.push_back(Page{});
    Page &page = pages_.back();
    page.rows.push_back(std::move(row));
    page.live.push_back(true);
    ++live_rows_;
    return RowId{static_cast<std::uint32_t>(pages_.size() - 1),
                 static_cast<std::uint16_t>(page.rows.size() - 1)};
}

std::optional<Row>
Table::fetch(RowId id) const
{
    if (id.page >= pages_.size())
        return std::nullopt;
    const Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return std::nullopt;
    return page.rows[id.slot];
}

bool
Table::update(RowId id, Row row)
{
    assert(row.size() == schema_.columns.size());
    if (id.page >= pages_.size())
        return false;
    Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return false;
    page.rows[id.slot] = std::move(row);
    return true;
}

bool
Table::erase(RowId id)
{
    if (id.page >= pages_.size())
        return false;
    Page &page = pages_[id.page];
    if (id.slot >= page.rows.size() || !page.live[id.slot])
        return false;
    page.live[id.slot] = false;
    --live_rows_;
    return true;
}

} // namespace jasim
