#include "db/wal.h"

#include <algorithm>

namespace jasim {

std::uint64_t
Wal::append(std::uint64_t txn, WalRecordType type,
            std::uint32_t payload_bytes)
{
    WalRecord record;
    record.lsn = next_lsn_++;
    record.txn = txn;
    record.type = type;
    record.bytes = payload_bytes + headerBytes;
    appended_bytes_ += record.bytes;
    records_.push_back(record);
    return record.lsn;
}

std::uint64_t
Wal::force()
{
    const std::uint64_t pending = appended_bytes_ - forced_bytes_;
    if (pending > 0) {
        forced_bytes_ = appended_bytes_;
        ++forces_;
        // Forced records are durable; drop them so a long run's log
        // memory stays flat (recovery is outside the model's scope).
        records_.clear();
    }
    return pending;
}

void
Wal::truncate(std::uint64_t up_to_lsn)
{
    records_.erase(
        std::remove_if(records_.begin(), records_.end(),
                       [up_to_lsn](const WalRecord &r) {
                           return r.lsn <= up_to_lsn;
                       }),
        records_.end());
}

} // namespace jasim
