#include "db/wal.h"

#include <algorithm>
#include <cassert>

namespace jasim {

std::uint64_t
Wal::appendRecord(WalRecord record, std::uint32_t payload_bytes)
{
    record.lsn = next_lsn_++;
    record.bytes = payload_bytes + headerBytes;
    appended_bytes_ += record.bytes;
    pending_bytes_ += record.bytes;
    retained_bytes_ += record.bytes;
    records_.push_back(std::move(record));
    return next_lsn_ - 1;
}

std::uint64_t
Wal::append(std::uint64_t txn, WalRecordType type,
            std::uint32_t payload_bytes)
{
    WalRecord record;
    record.txn = txn;
    record.type = type;
    return appendRecord(std::move(record), payload_bytes);
}

std::uint64_t
Wal::appendLogical(std::uint64_t txn, WalRecordType type,
                   std::uint32_t payload_bytes, std::uint32_t table,
                   RowId rid, std::optional<Row> redo,
                   std::optional<Row> undo)
{
    WalRecord record;
    record.txn = txn;
    record.type = type;
    record.table = table;
    record.rid = rid;
    record.redo = std::move(redo);
    record.undo = std::move(undo);
    return appendRecord(std::move(record), payload_bytes);
}

std::uint64_t
Wal::force()
{
    const std::uint64_t pending = pending_bytes_;
    if (pending > 0) {
        forced_bytes_ += pending;
        pending_bytes_ = 0;
        ++forces_;
        issued_lsn_ = lastLsn();
        if (!retention_) {
            // Forced records are durable and never replayed in legacy
            // mode; drop them so a long run's log memory stays flat.
            records_.clear();
            retained_bytes_ = 0;
        }
    }
    return pending;
}

std::uint64_t
Wal::pendingRecords() const
{
    if (!retention_)
        return records_.size();
    // records_ is LSN-sorted; the unforced tail starts past issued_lsn_.
    const auto first_pending = std::partition_point(
        records_.begin(), records_.end(),
        [this](const WalRecord &r) { return r.lsn <= issued_lsn_; });
    return static_cast<std::uint64_t>(records_.end() - first_pending);
}

void
Wal::confirmDurable(std::uint64_t lsn)
{
    durable_lsn_ = std::max(durable_lsn_, std::min(lsn, issued_lsn_));
}

void
Wal::protect(std::uint64_t lsn)
{
    protected_lsn_ =
        std::max(protected_lsn_, std::min(lsn, issued_lsn_));
}

WalCrashLoss
Wal::crashDiscard(bool torn)
{
    WalCrashLoss loss;

    // Records never force()d existed only in log buffers: always lost.
    const auto first_unforced = std::partition_point(
        records_.begin(), records_.end(),
        [this](const WalRecord &r) { return r.lsn <= issued_lsn_; });
    for (auto it = first_unforced; it != records_.end(); ++it)
        retained_bytes_ -= it->bytes;
    loss.unforced_records =
        static_cast<std::uint64_t>(records_.end() - first_unforced);
    records_.erase(first_unforced, records_.end());

    if (torn) {
        // Forces whose disk I/O had not completed (and whose effects
        // no stable page flush carries) were mid-write: the device
        // kept only a prefix of the window.
        const std::uint64_t safe =
            std::max(durable_lsn_, protected_lsn_);
        const auto window_begin = std::partition_point(
            records_.begin(), records_.end(),
            [safe](const WalRecord &r) { return r.lsn <= safe; });
        const auto window =
            static_cast<std::size_t>(records_.end() - window_begin);
        const auto kept = window / 2;
        const auto tear = window_begin + static_cast<std::ptrdiff_t>(kept);
        for (auto it = tear; it != records_.end(); ++it)
            retained_bytes_ -= it->bytes;
        loss.torn_records =
            static_cast<std::uint64_t>(records_.end() - tear);
        records_.erase(tear, records_.end());
    }

    // Whatever survived the crash is on stable storage by definition.
    const std::uint64_t survivor = records_.empty()
        ? std::max(durable_lsn_, protected_lsn_)
        : records_.back().lsn;
    issued_lsn_ = std::max(issued_lsn_, survivor);
    if (torn)
        issued_lsn_ = survivor;
    durable_lsn_ = issued_lsn_;
    // Nothing is pending any more; discarded records cannot be forced.
    pending_bytes_ = 0;
    forced_bytes_ = appended_bytes_;
    return loss;
}

std::uint64_t
Wal::discardAbove(std::uint64_t watermark)
{
    assert(retention_);
    const auto first_dropped = std::partition_point(
        records_.begin(), records_.end(),
        [watermark](const WalRecord &r) { return r.lsn <= watermark; });
    const auto dropped =
        static_cast<std::uint64_t>(records_.end() - first_dropped);
    for (auto it = first_dropped; it != records_.end(); ++it)
        retained_bytes_ -= it->bytes;
    records_.erase(first_dropped, records_.end());

    // The surviving prefix is exactly what the promoted replica holds
    // durably; nothing above it was ever issued on this timeline.
    issued_lsn_ = std::min(issued_lsn_, watermark);
    durable_lsn_ = issued_lsn_;
    protected_lsn_ = std::min(protected_lsn_, issued_lsn_);
    pending_bytes_ = 0;
    forced_bytes_ = appended_bytes_;
    return dropped;
}

std::uint64_t
Wal::bytesAbove(std::uint64_t lsn) const
{
    const auto first_above = std::partition_point(
        records_.begin(), records_.end(),
        [lsn](const WalRecord &r) { return r.lsn <= lsn; });
    std::uint64_t bytes = 0;
    for (auto it = first_above; it != records_.end(); ++it)
        bytes += it->bytes;
    return bytes;
}

void
Wal::truncate(std::uint64_t up_to_lsn)
{
    // Clamp: only forced (retention) / appended (legacy) records can
    // be on stable storage to truncate, and LSN assignment must never
    // move backwards because of an over-eager bound.
    const std::uint64_t bound =
        std::min(up_to_lsn, retention_ ? issued_lsn_ : lastLsn());
    const auto keep_from = std::partition_point(
        records_.begin(), records_.end(),
        [bound](const WalRecord &r) { return r.lsn <= bound; });
    for (auto it = records_.begin(); it != keep_from; ++it) {
        retained_bytes_ -= it->bytes;
        if (!retention_) {
            // Legacy pending records die with the truncation: the
            // next force() must not bill bytes for records that no
            // longer exist.
            pending_bytes_ -= it->bytes;
        }
    }
    if (keep_from != records_.begin())
        truncated_up_to_ = std::max(truncated_up_to_, bound);
    records_.erase(records_.begin(), keep_from);
}

} // namespace jasim
