#include "tprof/profiler.h"

#include <algorithm>
#include <cassert>

namespace jasim {

Profiler::Profiler(std::shared_ptr<const MethodRegistry> registry)
    : registry_(std::move(registry)),
      method_ticks_(registry_->size(), 0)
{
}

void
Profiler::addComponentTime(Component component, SimTime us)
{
    component_us_[static_cast<std::size_t>(component)] += us;
}

void
Profiler::addMethodSamples(const std::vector<std::uint64_t> &samples)
{
    assert(samples.size() == method_ticks_.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
        method_ticks_[i] += samples[i];
}

std::array<double, componentCount>
Profiler::componentShares() const
{
    std::array<double, componentCount> shares{};
    SimTime total = 0;
    for (const SimTime us : component_us_)
        total += us;
    if (total == 0)
        return shares;
    for (std::size_t i = 0; i < componentCount; ++i) {
        shares[i] = static_cast<double>(component_us_[i]) /
            static_cast<double>(total);
    }
    return shares;
}

std::array<double, componentCount>
Profiler::componentSharesOfTotal() const
{
    std::array<double, componentCount> shares{};
    SimTime total = idle_us_;
    for (const SimTime us : component_us_)
        total += us;
    if (total == 0)
        return shares;
    for (std::size_t i = 0; i < componentCount; ++i) {
        shares[i] = static_cast<double>(component_us_[i]) /
            static_cast<double>(total);
    }
    return shares;
}

double
Profiler::idleShare() const
{
    SimTime total = idle_us_;
    for (const SimTime us : component_us_)
        total += us;
    return total == 0 ? 0.0
                      : static_cast<double>(idle_us_) /
            static_cast<double>(total);
}

FlatProfileStats
Profiler::flatProfile() const
{
    FlatProfileStats stats;
    for (const std::uint64_t t : method_ticks_) {
        stats.total_ticks += t;
        if (t > 0)
            ++stats.methods_sampled;
    }
    if (stats.total_ticks == 0)
        return stats;

    std::vector<std::uint64_t> sorted = method_ticks_;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    stats.hottest_share = static_cast<double>(sorted.front()) /
        static_cast<double>(stats.total_ticks);

    std::uint64_t running = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        running += sorted[i];
        if (running * 2 >= stats.total_ticks) {
            stats.methods_for_half = i + 1;
            break;
        }
    }

    for (std::size_t m = 0; m < method_ticks_.size(); ++m) {
        const auto cat = static_cast<std::size_t>(
            registry_->method(m).category);
        stats.category_share[cat] +=
            static_cast<double>(method_ticks_[m]) /
            static_cast<double>(stats.total_ticks);
    }
    return stats;
}

std::vector<MethodTicks>
Profiler::topMethods(std::size_t count) const
{
    std::vector<MethodTicks> all;
    all.reserve(method_ticks_.size());
    for (std::size_t m = 0; m < method_ticks_.size(); ++m) {
        if (method_ticks_[m] > 0)
            all.push_back(MethodTicks{m, method_ticks_[m]});
    }
    std::sort(all.begin(), all.end(),
              [](const MethodTicks &a, const MethodTicks &b) {
                  return a.ticks > b.ticks;
              });
    if (all.size() > count)
        all.resize(count);
    return all;
}

} // namespace jasim
