#include "tprof/report.h"

#include "stats/render.h"

namespace jasim {

void
printComponentBreakdown(std::ostream &os, const Profiler &profiler)
{
    const auto shares = profiler.componentShares();
    TextTable table({"component", "% of busy time"});
    for (const Component c : allComponents) {
        table.addRow({componentName(c),
                      TextTable::pct(
                          shares[static_cast<std::size_t>(c)] * 100.0)});
    }
    table.print(os);

    const double was = shares[static_cast<std::size_t>(
                           Component::WasJit)] +
        shares[static_cast<std::size_t>(Component::WasOther)];
    const double web_db = shares[static_cast<std::size_t>(
                              Component::Web)] +
        shares[static_cast<std::size_t>(Component::Db2)];
    os << "\nWAS total: " << TextTable::pct(was * 100.0)
       << "  (web + DB2: " << TextTable::pct(web_db * 100.0)
       << ", ratio " << TextTable::num(web_db > 0 ? was / web_db : 0.0, 2)
       << "x)\n";
}

void
printFlatProfile(std::ostream &os, const Profiler &profiler,
                 std::size_t top_count)
{
    const FlatProfileStats stats = profiler.flatProfile();
    os << "JITed-code flat profile:\n"
       << "  methods sampled:        " << stats.methods_sampled << "\n"
       << "  hottest method share:   "
       << TextTable::pct(stats.hottest_share * 100.0, 2) << "\n"
       << "  methods covering 50%:   " << stats.methods_for_half << "\n";

    os << "  JITed time by owner:\n";
    for (std::size_t c = 0; c < methodCategoryCount; ++c) {
        os << "    "
           << methodCategoryName(static_cast<MethodCategory>(c)) << ": "
           << TextTable::pct(stats.category_share[c] * 100.0) << "\n";
    }

    os << "  hottest methods:\n";
    for (const auto &mt : profiler.topMethods(top_count)) {
        const auto &info = profiler.registry().method(mt.method);
        os << "    "
           << TextTable::pct(static_cast<double>(mt.ticks) /
                                 static_cast<double>(stats.total_ticks) *
                                 100.0,
                             2)
           << "  " << info.name << "\n";
    }
}

} // namespace jasim
