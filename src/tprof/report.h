/**
 * @file
 * Printable tprof reports (the Figure 4 artifact).
 */

#ifndef JASIM_TPROF_REPORT_H
#define JASIM_TPROF_REPORT_H

#include <ostream>

#include "tprof/profiler.h"

namespace jasim {

/** Print the component breakdown (% of runtime) like Figure 4. */
void printComponentBreakdown(std::ostream &os, const Profiler &profiler);

/** Print the flat-profile statistics and the hottest methods. */
void printFlatProfile(std::ostream &os, const Profiler &profiler,
                      std::size_t top_count = 15);

} // namespace jasim

#endif // JASIM_TPROF_REPORT_H
