/**
 * @file
 * tprof-style sampling profiler.
 *
 * Attributes CPU time to software components (from scheduler busy
 * accounting) and to individual Java methods (from the JIT-code
 * stream generators' per-segment sample counts combined with the
 * method registry). This is the machinery behind Figure 4 and the
 * flat-profile statistics (hottest method < 1%, ~224 methods for 50%
 * of JITed time).
 */

#ifndef JASIM_TPROF_PROFILER_H
#define JASIM_TPROF_PROFILER_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jvm/method_registry.h"
#include "sim/types.h"
#include "synth/component_profiles.h"

namespace jasim {

/** One method's profile line. */
struct MethodTicks
{
    std::size_t method = 0;
    std::uint64_t ticks = 0;
};

/** Flat-profile statistics over the JITed-method ticks. */
struct FlatProfileStats
{
    std::uint64_t total_ticks = 0;
    double hottest_share = 0.0;       //!< share of the hottest method
    std::size_t methods_for_half = 0; //!< methods covering 50% of ticks
    std::size_t methods_sampled = 0;  //!< methods with >= 1 tick
    /** Tick share per method category (JITed code only). */
    std::array<double, methodCategoryCount> category_share{};
};

/** The profiler: accumulates component time and method ticks. */
class Profiler
{
  public:
    explicit Profiler(std::shared_ptr<const MethodRegistry> registry);

    /** Add busy microseconds for a component. */
    void addComponentTime(Component component, SimTime us);

    /** Add idle microseconds (completes the Figure 4 pie). */
    void addIdleTime(SimTime us) { idle_us_ += us; }

    /** Merge per-method sample counts from a JIT-code generator. */
    void addMethodSamples(const std::vector<std::uint64_t> &samples);

    /** Share of non-idle time per component. */
    std::array<double, componentCount> componentShares() const;

    /** Share of total (incl. idle) time per component. */
    std::array<double, componentCount> componentSharesOfTotal() const;

    double idleShare() const;

    /** Flat-profile statistics over the accumulated method ticks. */
    FlatProfileStats flatProfile() const;

    /** The `count` hottest methods by ticks. */
    std::vector<MethodTicks> topMethods(std::size_t count) const;

    const MethodRegistry &registry() const { return *registry_; }

  private:
    std::shared_ptr<const MethodRegistry> registry_;
    std::array<SimTime, componentCount> component_us_{};
    SimTime idle_us_ = 0;
    std::vector<std::uint64_t> method_ticks_;
};

} // namespace jasim

#endif // JASIM_TPROF_PROFILER_H
