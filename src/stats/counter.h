/**
 * @file
 * Event counters and counter snapshots.
 *
 * A Counter is a named monotonically increasing count, the atom of the
 * hardware-performance-monitor model. CounterDelta captures the change
 * across a sample window.
 */

#ifndef JASIM_STATS_COUNTER_H
#define JASIM_STATS_COUNTER_H

#include <cstdint>
#include <map>
#include <string>

namespace jasim {

/** A monotonically increasing named event count. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    std::uint64_t value() const { return value_; }

    void increment(std::uint64_t by = 1) { value_ += by; }

    /** Value change since the given snapshot. */
    std::uint64_t deltaSince(std::uint64_t snapshot) const
    {
        return value_ - snapshot;
    }

    void reset() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * A bag of named counters, supporting snapshot/delta for windowing.
 *
 * Lookup creates counters on first use so instrumentation sites stay
 * terse; iteration order is deterministic (std::map).
 */
class CounterSet
{
  public:
    /** Get-or-create a counter by name. */
    Counter &get(const std::string &name);

    /** Read a counter's value; 0 if it does not exist. */
    std::uint64_t value(const std::string &name) const;

    /** Add a value to a counter (creating it if needed). */
    void add(const std::string &name, std::uint64_t by);

    /** Snapshot all current values. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Per-counter deltas relative to a prior snapshot. */
    std::map<std::string, std::uint64_t>
    deltaSince(const std::map<std::string, std::uint64_t> &snap) const;

    void reset();

    const std::map<std::string, Counter> &all() const { return counters_; }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace jasim

#endif // JASIM_STATS_COUNTER_H
