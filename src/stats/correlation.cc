#include "stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jasim {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    double mean_x = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_x += x[i];
        mean_y += y[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mean_x;
        const double dy = y[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    // Rounding can push |r| infinitesimally past 1; clamp.
    return std::clamp(sxy / std::sqrt(sxx * syy), -1.0, 1.0);
}

double
pearson(const TimeSeries &x, const TimeSeries &y)
{
    return pearson(x.values(), y.values());
}

LinearFit
fitLinear(const std::vector<double> &x, const std::vector<double> &y)
{
    assert(x.size() == y.size());
    LinearFit fit;
    const std::size_t n = x.size();
    if (n < 2)
        return fit;

    double mean_x = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_x += x[i];
        mean_y += y[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);

    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mean_x) * (y[i] - mean_y);
        sxx += (x[i] - mean_x) * (x[i] - mean_x);
    }
    if (sxx != 0.0) {
        fit.slope = sxy / sxx;
        fit.intercept = mean_y - fit.slope * mean_x;
    }
    fit.r = pearson(x, y);
    return fit;
}

} // namespace jasim
