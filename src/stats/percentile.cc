#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jasim {

void
PercentileTracker::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileTracker::percentile(double p) const
{
    assert(p > 0.0 && p <= 100.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const double n = static_cast<double>(samples_.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0)
        rank = 1;
    return samples_[rank - 1];
}

double
PercentileTracker::fractionAtOrBelow(double bound) const
{
    if (samples_.empty())
        return 1.0;
    ensureSorted();
    const auto past = std::upper_bound(samples_.begin(),
                                       samples_.end(), bound);
    return static_cast<double>(past - samples_.begin()) /
        static_cast<double>(samples_.size());
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
PercentileTracker::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double sample)
{
    double idx = (sample - lo_) / width_;
    if (idx < 0.0)
        idx = 0.0;
    std::size_t bin = static_cast<std::size_t>(idx);
    if (bin >= counts_.size())
        bin = counts_.size() - 1;
    ++counts_[bin];
    ++total_;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHigh(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin + 1);
}

} // namespace jasim
