/**
 * @file
 * Pearson correlation over sampled series.
 *
 * This is the statistical core of the paper's Section 4.3: CPI is
 * correlated against per-window hardware event rates with
 *
 *     r = sum((x - xbar)(y - ybar))
 *         / sqrt(sum((x - xbar)^2) * sum((y - ybar)^2))
 */

#ifndef JASIM_STATS_CORRELATION_H
#define JASIM_STATS_CORRELATION_H

#include <vector>

#include "stats/time_series.h"

namespace jasim {

/**
 * Pearson correlation coefficient of two equal-length vectors.
 *
 * Returns 0 when either input is degenerate (fewer than 2 samples or
 * zero variance), which mirrors how a flat counter trace would be
 * reported in practice.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Pearson correlation of two series (values only; sizes must match). */
double pearson(const TimeSeries &x, const TimeSeries &y);

/**
 * Ordinary-least-squares slope/intercept fit, reported alongside r in
 * correlation tables to make the sign of the relationship concrete.
 */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r = 0.0;
};

LinearFit fitLinear(const std::vector<double> &x,
                    const std::vector<double> &y);

} // namespace jasim

#endif // JASIM_STATS_CORRELATION_H
