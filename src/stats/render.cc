#include "stats/render.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace jasim {

namespace {

const char seriesGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

/** Resample a series to `width` buckets by averaging. */
std::vector<double>
resample(const TimeSeries &s, std::size_t width)
{
    std::vector<double> out(width, std::nan(""));
    if (s.empty())
        return out;
    for (std::size_t b = 0; b < width; ++b) {
        const std::size_t lo = b * s.size() / width;
        std::size_t hi = (b + 1) * s.size() / width;
        if (hi <= lo)
            hi = lo + 1;
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t i = lo; i < hi && i < s.size(); ++i) {
            sum += s.value(i);
            ++n;
        }
        if (n > 0)
            out[b] = sum / static_cast<double>(n);
    }
    return out;
}

} // namespace

void
renderChart(std::ostream &os, const std::vector<TimeSeries> &series,
            const ChartOptions &options)
{
    if (series.empty()) {
        os << "(no series)\n";
        return;
    }

    double lo = options.zero_based ? 0.0 :
        std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto &s : series) {
        if (s.empty())
            continue;
        lo = std::min(lo, options.zero_based ? 0.0 : s.min());
        hi = std::max(hi, s.max());
    }
    if (!std::isfinite(lo) || !std::isfinite(hi)) {
        os << "(empty series)\n";
        return;
    }
    if (hi <= lo)
        hi = lo + 1.0;

    std::vector<std::vector<double>> sampled;
    sampled.reserve(series.size());
    for (const auto &s : series)
        sampled.push_back(resample(s, options.width));

    std::vector<std::string> grid(
        options.height, std::string(options.width, ' '));
    for (std::size_t k = 0; k < sampled.size(); ++k) {
        const char glyph = seriesGlyphs[k % sizeof(seriesGlyphs)];
        for (std::size_t col = 0; col < options.width; ++col) {
            const double v = sampled[k][col];
            if (std::isnan(v))
                continue;
            double frac = (v - lo) / (hi - lo);
            frac = std::clamp(frac, 0.0, 1.0);
            const std::size_t row = options.height - 1 -
                static_cast<std::size_t>(
                    frac * static_cast<double>(options.height - 1) + 0.5);
            grid[row][col] = glyph;
        }
    }

    if (!options.y_label.empty())
        os << options.y_label << "\n";
    std::ostringstream top, bottom;
    top << std::setprecision(4) << hi;
    bottom << std::setprecision(4) << lo;
    const std::size_t label_width =
        std::max(top.str().size(), bottom.str().size());

    for (std::size_t row = 0; row < options.height; ++row) {
        std::string label(label_width, ' ');
        if (row == 0)
            label = top.str() + std::string(
                label_width - top.str().size(), ' ');
        else if (row == options.height - 1)
            label = bottom.str() + std::string(
                label_width - bottom.str().size(), ' ');
        os << label << " |" << grid[row] << "\n";
    }
    os << std::string(label_width, ' ') << " +"
       << std::string(options.width, '-') << "\n";

    for (std::size_t k = 0; k < series.size(); ++k) {
        os << "    " << seriesGlyphs[k % sizeof(seriesGlyphs)] << " "
           << series[k].name() << "\n";
    }
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::pct(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value << "%";
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(
                static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
writeCsv(std::ostream &os, const std::vector<TimeSeries> &series)
{
    os << "time_s";
    for (const auto &s : series)
        os << "," << s.name();
    os << "\n";
    std::size_t rows = 0;
    for (const auto &s : series)
        rows = std::max(rows, s.size());
    for (std::size_t i = 0; i < rows; ++i) {
        if (!series.empty() && i < series[0].size())
            os << toSeconds(series[0].time(i));
        for (const auto &s : series) {
            os << ",";
            if (i < s.size())
                os << s.value(i);
        }
        os << "\n";
    }
}

void
renderBarChart(std::ostream &os,
               const std::vector<std::pair<std::string, double>> &bars,
               double lo, double hi, std::size_t width)
{
    std::size_t label_width = 0;
    for (const auto &[name, value] : bars)
        label_width = std::max(label_width, name.size());

    // Column of the zero line.
    const double span = hi - lo;
    const std::size_t zero_col = static_cast<std::size_t>(
        std::clamp((0.0 - lo) / span, 0.0, 1.0) *
        static_cast<double>(width - 1));

    for (const auto &[name, value] : bars) {
        std::string row(width, ' ');
        const std::size_t val_col = static_cast<std::size_t>(
            std::clamp((value - lo) / span, 0.0, 1.0) *
            static_cast<double>(width - 1));
        const auto [from, to] = std::minmax(zero_col, val_col);
        for (std::size_t c = from; c <= to; ++c)
            row[c] = '=';
        row[zero_col] = '|';
        std::ostringstream val;
        val << std::fixed << std::setprecision(2) << std::showpos << value;
        os << "  " << std::left
           << std::setw(static_cast<int>(label_width)) << name << " "
           << row << " " << val.str() << "\n";
    }
}

} // namespace jasim
