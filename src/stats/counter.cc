#include "stats/counter.h"

namespace jasim {

Counter &
CounterSet::get(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, Counter(name)).first;
    return it->second;
}

std::uint64_t
CounterSet::value(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
CounterSet::add(const std::string &name, std::uint64_t by)
{
    get(name).increment(by);
}

std::map<std::string, std::uint64_t>
CounterSet::snapshot() const
{
    std::map<std::string, std::uint64_t> snap;
    for (const auto &[name, counter] : counters_)
        snap[name] = counter.value();
    return snap;
}

std::map<std::string, std::uint64_t>
CounterSet::deltaSince(const std::map<std::string, std::uint64_t> &snap) const
{
    std::map<std::string, std::uint64_t> delta;
    for (const auto &[name, counter] : counters_) {
        const auto it = snap.find(name);
        const std::uint64_t base = it == snap.end() ? 0 : it->second;
        delta[name] = counter.value() - base;
    }
    return delta;
}

void
CounterSet::reset()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
}

} // namespace jasim
