/**
 * @file
 * Time series of sampled values.
 *
 * Every figure in the reproduced paper is a time series of per-window
 * counter-derived rates; TimeSeries is the common carrier between the
 * window simulator, the correlation analysis, and the renderers.
 */

#ifndef JASIM_STATS_TIME_SERIES_H
#define JASIM_STATS_TIME_SERIES_H

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.h"

namespace jasim {

/** One named series of (time, value) samples with uniform windows. */
class TimeSeries
{
  public:
    TimeSeries() = default;
    explicit TimeSeries(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    void append(SimTime t, double value);

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    double value(std::size_t i) const { return values_[i]; }
    SimTime time(std::size_t i) const { return times_[i]; }

    const std::vector<double> &values() const { return values_; }
    const std::vector<SimTime> &times() const { return times_; }

    /** Arithmetic mean; 0 for an empty series. */
    double mean() const;

    /** Sample standard deviation; 0 when fewer than 2 samples. */
    double stddev() const;

    double min() const;
    double max() const;

    /**
     * Restrict to samples with time in [from, to); returns a new series.
     * Used to drop ramp-up / ramp-down and keep steady state only.
     */
    TimeSeries slice(SimTime from, SimTime to) const;

    /** Element-wise ratio this/other (sizes must match; 0/0 -> 0). */
    TimeSeries ratio(const TimeSeries &other, std::string name) const;

  private:
    std::string name_;
    std::vector<SimTime> times_;
    std::vector<double> values_;
};

} // namespace jasim

#endif // JASIM_STATS_TIME_SERIES_H
