/**
 * @file
 * Percentile tracking for response-time SLAs.
 *
 * SPECjAppServer2004 passes a run only if 90% of web requests finish
 * under 2 s and 90% of RMI requests under 5 s; the driver module uses
 * this tracker to adjudicate runs.
 */

#ifndef JASIM_STATS_PERCENTILE_H
#define JASIM_STATS_PERCENTILE_H

#include <cstddef>
#include <vector>

namespace jasim {

/**
 * Exact percentile tracker over accumulated samples.
 *
 * Keeps all samples; fine for the sample counts a benchmark run
 * produces (O(10^5)). Percentile uses the nearest-rank method.
 */
class PercentileTracker
{
  public:
    void
    add(double sample)
    {
        samples_.push_back(sample);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    /**
     * Nearest-rank percentile, p in (0, 100]. Returns 0 when empty.
     * Sorting is deferred and cached until the next add().
     */
    double percentile(double p) const;

    /**
     * Fraction of samples <= bound (SLA attainment for a latency
     * bound). Returns 1.0 when empty.
     */
    double fractionAtOrBelow(double bound) const;

    double mean() const;
    double max() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;

    void ensureSorted() const;
};

/** Histogram with fixed-width bins, used for pause-time summaries. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);

    std::size_t binCount(std::size_t bin) const { return counts_[bin]; }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }

    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;

  private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace jasim

#endif // JASIM_STATS_PERCENTILE_H
