/**
 * @file
 * Series smoothing used when rendering figures.
 *
 * The paper's Figure 7 is explicitly Bezier-smoothed; we provide the
 * same (a global Bezier curve evaluated with De Casteljau over the
 * sample points, as gnuplot's `smooth bezier` does) plus a moving
 * average for general use.
 */

#ifndef JASIM_STATS_SMOOTHING_H
#define JASIM_STATS_SMOOTHING_H

#include <cstddef>
#include <vector>

#include "stats/time_series.h"

namespace jasim {

/** Centered moving average with the given odd window (clamped edges). */
std::vector<double> movingAverage(const std::vector<double> &values,
                                  std::size_t window);

/**
 * Bezier smoothing: treat samples as control points of one Bezier
 * curve and evaluate `output_points` points along it.
 *
 * For large n the Bernstein weights are computed in log space to stay
 * finite. This reproduces the visual character described in the paper:
 * sharp short-lived spikes (GC windows) are flattened into small bumps.
 */
std::vector<double> bezierSmooth(const std::vector<double> &values,
                                 std::size_t output_points);

/** Convenience: smooth a series, preserving approximate timestamps. */
TimeSeries bezierSmooth(const TimeSeries &series, std::size_t output_points);

} // namespace jasim

#endif // JASIM_STATS_SMOOTHING_H
