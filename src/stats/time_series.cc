#include "stats/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace jasim {

void
TimeSeries::append(SimTime t, double value)
{
    assert((times_.empty() || t >= times_.back()) &&
           "samples must be appended in time order");
    times_.push_back(t);
    values_.push_back(value);
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
TimeSeries::stddev() const
{
    if (values_.size() < 2)
        return 0.0;
    const double m = mean();
    double sum_sq = 0.0;
    for (double v : values_)
        sum_sq += (v - m) * (v - m);
    return std::sqrt(sum_sq / static_cast<double>(values_.size() - 1));
}

double
TimeSeries::min() const
{
    if (values_.empty())
        return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double
TimeSeries::max() const
{
    if (values_.empty())
        return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

TimeSeries
TimeSeries::slice(SimTime from, SimTime to) const
{
    TimeSeries out(name_);
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (times_[i] >= from && times_[i] < to)
            out.append(times_[i], values_[i]);
    }
    return out;
}

TimeSeries
TimeSeries::ratio(const TimeSeries &other, std::string name) const
{
    assert(size() == other.size());
    TimeSeries out(std::move(name));
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const double denom = other.values_[i];
        out.append(times_[i], denom == 0.0 ? 0.0 : values_[i] / denom);
    }
    return out;
}

} // namespace jasim
