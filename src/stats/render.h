/**
 * @file
 * Text rendering of figures and tables.
 *
 * Bench binaries print paper-style artifacts: an ASCII line chart for
 * time-series figures and aligned tables for numeric results, so a
 * reader can compare shape against the paper directly in a terminal.
 */

#ifndef JASIM_STATS_RENDER_H
#define JASIM_STATS_RENDER_H

#include <ostream>
#include <string>
#include <vector>

#include "stats/time_series.h"

namespace jasim {

/** Options for chart rendering. */
struct ChartOptions
{
    std::size_t width = 72;   //!< columns for the plot area
    std::size_t height = 16;  //!< rows for the plot area
    bool zero_based = false;  //!< force y axis to start at 0
    std::string y_label;      //!< label printed above the chart
};

/**
 * Render one or more series onto a shared-axis ASCII chart.
 *
 * Each series is drawn with its own glyph ('*', '+', 'o', ...); a
 * legend maps glyphs to series names. Series are resampled onto the
 * chart width by bucket-averaging.
 */
void renderChart(std::ostream &os, const std::vector<TimeSeries> &series,
                 const ChartOptions &options = {});

/** A simple aligned table: header row + data rows of strings. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format a percentage (value already in percent units). */
    static std::string pct(double value, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Write series as CSV (time_s, one column per series) for downstream
 * plotting; series are aligned by index (they share window times).
 */
void writeCsv(std::ostream &os, const std::vector<TimeSeries> &series);

/** Horizontal bar chart for correlation figures (values in [-1, 1]). */
void renderBarChart(std::ostream &os,
                    const std::vector<std::pair<std::string, double>> &bars,
                    double lo = -1.0, double hi = 1.0,
                    std::size_t width = 50);

} // namespace jasim

#endif // JASIM_STATS_RENDER_H
