#include "stats/smoothing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jasim {

std::vector<double>
movingAverage(const std::vector<double> &values, std::size_t window)
{
    assert(window >= 1);
    std::vector<double> out(values.size());
    const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window / 2);
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(values.size());
    for (std::ptrdiff_t i = 0; i < n; ++i) {
        const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
        const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
        double sum = 0.0;
        for (std::ptrdiff_t j = lo; j <= hi; ++j)
            sum += values[static_cast<std::size_t>(j)];
        out[static_cast<std::size_t>(i)] =
            sum / static_cast<double>(hi - lo + 1);
    }
    return out;
}

namespace {

/** log(n choose k) via lgamma; stable for large n. */
double
logChoose(std::size_t n, std::size_t k)
{
    return std::lgamma(static_cast<double>(n + 1)) -
           std::lgamma(static_cast<double>(k + 1)) -
           std::lgamma(static_cast<double>(n - k + 1));
}

} // namespace

std::vector<double>
bezierSmooth(const std::vector<double> &values, std::size_t output_points)
{
    assert(output_points >= 2);
    if (values.size() < 3)
        return values;

    const std::size_t degree = values.size() - 1;
    std::vector<double> out(output_points);
    for (std::size_t p = 0; p < output_points; ++p) {
        const double t =
            static_cast<double>(p) / static_cast<double>(output_points - 1);
        if (t <= 0.0) {
            out[p] = values.front();
            continue;
        }
        if (t >= 1.0) {
            out[p] = values.back();
            continue;
        }
        const double log_t = std::log(t);
        const double log_1mt = std::log1p(-t);
        double acc = 0.0;
        for (std::size_t k = 0; k <= degree; ++k) {
            const double log_w = logChoose(degree, k) +
                static_cast<double>(k) * log_t +
                static_cast<double>(degree - k) * log_1mt;
            acc += values[k] * std::exp(log_w);
        }
        out[p] = acc;
    }
    return out;
}

TimeSeries
bezierSmooth(const TimeSeries &series, std::size_t output_points)
{
    TimeSeries out(series.name() + " (bezier)");
    if (series.empty())
        return out;
    const auto smoothed = bezierSmooth(series.values(), output_points);
    const SimTime t0 = series.time(0);
    const SimTime t1 = series.time(series.size() - 1);
    for (std::size_t p = 0; p < smoothed.size(); ++p) {
        const double frac = smoothed.size() == 1
            ? 0.0
            : static_cast<double>(p) /
              static_cast<double>(smoothed.size() - 1);
        out.append(t0 + static_cast<SimTime>(frac *
                                             static_cast<double>(t1 - t0)),
                   smoothed[p]);
    }
    return out;
}

} // namespace jasim
