/**
 * @file
 * Order-sensitive FNV-1a digest over simulation outcomes.
 *
 * The fast-path equivalence machinery (bench/micro_memwalk, the
 * golden-digest tests) folds every per-access outcome and every final
 * counter value into one 64-bit digest per mode; equal digests mean
 * the runs were outcome-identical without storing either trace.
 */

#ifndef JASIM_STATS_DIGEST_H
#define JASIM_STATS_DIGEST_H

#include <cstdint>
#include <map>
#include <string>

namespace jasim {

/** Streaming 64-bit FNV-1a accumulator. */
class Digest
{
  public:
    /** Fold one 64-bit word, byte by byte. */
    void mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (value >> (8 * i)) & 0xffull;
            hash_ *= prime;
        }
    }

    /** Fold a string (length-delimited, so "ab","c" != "a","bc"). */
    void mix(const std::string &text)
    {
        mix(static_cast<std::uint64_t>(text.size()));
        for (const char c : text) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= prime;
        }
    }

    /** Fold a name -> value snapshot (e.g. CounterSet::snapshot()). */
    void mix(const std::map<std::string, std::uint64_t> &snapshot)
    {
        for (const auto &[name, value] : snapshot) {
            mix(name);
            mix(value);
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    static constexpr std::uint64_t prime = 0x100000001b3ull;
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace jasim

#endif // JASIM_STATS_DIGEST_H
