#include "sim/config.h"

#include <cstdlib>
#include <thread>

namespace jasim {

Config
Config::fromArgs(int argc, char **argv)
{
    Config config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];

        // GNU-style flags normalize to the same keys: `--seed 42`
        // and `--seed=42` both mean `seed=42`; a bare `--flag` with
        // no value is a boolean `flag=1`. A following token that is
        // itself a `key=value` positional stays positional — but keys
        // are plain identifiers, so when punctuation like '@' or ':'
        // precedes the first '=' (a `--faults` spec, say) the token
        // is this flag's value.
        if (arg.rfind("--", 0) == 0) {
            arg = arg.substr(2);
            if (arg.empty())
                continue;
            if (arg.find('=') == std::string::npos) {
                bool next_is_value = false;
                if (i + 1 < argc) {
                    const std::string next = argv[i + 1];
                    const auto next_eq = next.find('=');
                    next_is_value = next.rfind("--", 0) != 0 &&
                        (next_eq == std::string::npos ||
                         next.find_first_of("@:;") < next_eq);
                }
                config.set(arg, next_is_value ? argv[++i] : "1");
                continue;
            }
        }

        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        config.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return config;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

std::size_t
Config::jobs() const
{
    const std::string text = getString("jobs", "1");
    char *end = nullptr;
    const std::int64_t raw = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || raw < 0)
        return 1; // unparsable or negative: serial

    std::size_t jobs = static_cast<std::size_t>(raw);
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? hw : 1;
    }
    return jobs > 256 ? 256 : jobs;
}

bool
Config::fastpath() const
{
    return getBool("fastpath", true);
}

std::size_t
Config::lanes() const
{
    const std::string text = getString("lanes", "0");
    char *end = nullptr;
    const std::int64_t raw = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || raw < 0)
        return 0; // unparsable or negative: serial kernel
    const auto lanes = static_cast<std::size_t>(raw);
    return lanes > 64 ? 64 : lanes;
}

std::size_t
Config::shards() const
{
    const std::string text = getString("shards", "1");
    char *end = nullptr;
    const std::int64_t raw = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || raw <= 0)
        return 1; // unparsable, zero, or negative: single box
    const std::size_t shards = static_cast<std::size_t>(raw);
    return shards > 64 ? 64 : shards;
}

std::size_t
Config::replicas() const
{
    const std::string text = getString("replicas", "0");
    char *end = nullptr;
    const std::int64_t raw = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || raw < 0)
        return 0; // unparsable or negative: unreplicated
    const std::size_t replicas = static_cast<std::size_t>(raw);
    return replicas > 8 ? 8 : replicas;
}

std::string
Config::syncMode() const
{
    return getString("sync-mode", "async") == "sync" ? "sync" : "async";
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace jasim
