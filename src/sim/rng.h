/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic subsystem in jasim draws from its own Rng instance
 * seeded from a run-level master seed, so runs are reproducible and
 * subsystems are statistically independent. The generator is
 * xoshiro256** (Blackman & Vigna), seeded via splitmix64.
 */

#ifndef JASIM_SIM_RNG_H
#define JASIM_SIM_RNG_H

#include <array>
#include <cstdint>

namespace jasim {

/** splitmix64 step; used for seeding and cheap hashing. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can be
 * used with standard distributions if ever needed, though jasim's own
 * distributions (sim/distributions.h) are preferred for cross-platform
 * determinism.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive an independent child generator, e.g.\ per subsystem. */
    Rng fork(std::uint64_t stream_id);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace jasim

#endif // JASIM_SIM_RNG_H
