/**
 * @file
 * Deterministic probability distributions used by the workload and
 * microarchitecture models.
 *
 * Standard-library distributions are implementation-defined; these
 * hand-rolled versions guarantee identical streams across platforms,
 * which the test suite relies on.
 */

#ifndef JASIM_SIM_DISTRIBUTIONS_H
#define JASIM_SIM_DISTRIBUTIONS_H

#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace jasim {

/** Exponential draw with the given rate (events per unit time). */
double drawExponential(Rng &rng, double rate);

/** Poisson draw with the given mean (Knuth for small, PTRS not needed). */
std::uint64_t drawPoisson(Rng &rng, double mean);

/** Normal draw via Box-Muller (single value; no caching). */
double drawNormal(Rng &rng, double mean, double stddev);

/** Log-normal draw parameterized by the underlying normal. */
double drawLogNormal(Rng &rng, double mu, double sigma);

/**
 * Truncated, optionally shifted Zipf sampler over ranks 1..n.
 *
 * P(rank k) is proportional to 1 / (k + shift)^s. A positive shift
 * flattens the head of the distribution, which is how the jas2004
 * method profile achieves "hottest method < 1%" while a couple of
 * hundred methods still cover half the samples. Precomputes the CDF;
 * sampling is a binary search.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of ranks.
     * @param s exponent (>= 0).
     * @param shift head-flattening offset (>= 0).
     */
    ZipfSampler(std::size_t n, double s, double shift = 0.0);

    /** Draw a rank in [0, n). Rank 0 is the most probable. */
    std::size_t operator()(Rng &rng) const;

    /**
     * Deterministic inverse-CDF lookup for u in [0, 1); used to give
     * static program locations stable hotness-distributed choices.
     */
    std::size_t sampleAt(double u) const;

    /** Probability mass of a given rank. */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Discrete sampler over arbitrary non-negative weights.
 *
 * Used for the transaction mix and execution-mix draws.
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(const std::vector<double> &weights);

    std::size_t operator()(Rng &rng) const;

    /** Normalized probability of an index. */
    double probability(std::size_t index) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace jasim

#endif // JASIM_SIM_DISTRIBUTIONS_H
