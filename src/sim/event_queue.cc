#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace jasim {

void
EventQueue::siftUp(std::size_t i)
{
    const Entry moving = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(moving, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = moving;
}

void
EventQueue::siftDownFromRoot(Entry filler)
{
    // Bottom-up ("Wegener") pop: the filler came from the last leaf,
    // so it nearly always belongs back near the bottom. Sink the root
    // hole all the way down along the min-child path without comparing
    // the filler at each level (one compare per level instead of two),
    // drop the filler into the leaf hole, and sift it up the few steps
    // it actually needs (usually zero).
    const std::size_t size = heap_.size();
    std::size_t hole = 0;
    std::size_t child = 2; // right child of the root
    while (child < size) {
        if (earlier(heap_[child - 1], heap_[child]))
            --child;
        heap_[hole] = heap_[child];
        hole = child;
        child = 2 * child + 2;
    }
    if (child == size) { // hole has only a left child
        heap_[hole] = heap_[child - 1];
        hole = child - 1;
    }
    // Re-seat the filler from the leaf hole upward.
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        if (!earlier(filler, heap_[parent]))
            break;
        heap_[hole] = heap_[parent];
        hole = parent;
    }
    heap_[hole] = filler;
}

void
EventQueue::setLaneRouter(LaneRouter *router)
{
    assert((!router || (heap_.empty() && now_ == 0)) &&
           "lane router must be installed on a virgin queue");
    router_ = router;
}

std::uint64_t
EventQueue::scheduleAt(SimTime when, Action &&action)
{
    if (router_)
        return router_->laneSchedule(when, std::move(action));
    assert(when >= now_ && "cannot schedule in the past");
    const std::uint64_t id = next_sequence_++;
    assert(id < (std::uint64_t{1} << (64 - kSlotBits)) &&
           "sequence numbers exhausted");

    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(action));
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(action);
    }
    assert(slot <= kSlotMask && "too many pending events");

    heap_.push_back(Entry{when, (id << kSlotBits) | slot});
    siftUp(heap_.size() - 1);
    return id;
}

std::uint64_t
EventQueue::scheduleAfter(SimTime delay, Action &&action)
{
    // now() (not now_): under a router, "now" is the executing lane's
    // local clock, and relative delays must be relative to that.
    return scheduleAt(now() + delay, std::move(action));
}

EventQueue::Action
EventQueue::popEarliest()
{
    const Entry entry = heap_.front();
    const Entry filler = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDownFromRoot(filler);
    now_ = entry.when;
    // Move the closure out before running it: the action may schedule
    // more events and grow/reuse the pool under its own feet.
    const auto slot = static_cast<std::uint32_t>(entry.key & kSlotMask);
    Action action = std::move(slots_[slot]);
    free_slots_.push_back(slot);
    return action;
}

std::uint64_t
EventQueue::runUntil(SimTime horizon)
{
    if (router_)
        return router_->laneRunUntil(horizon);
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.front().when <= horizon) {
        Action action = popEarliest();
        action();
        ++executed;
    }
    executed_ += executed;
    if (now_ < horizon)
        now_ = horizon;
    return executed;
}

bool
EventQueue::step()
{
    assert(!router_ && "step() is unsupported on a routed queue");
    if (heap_.empty())
        return false;
    Action action = popEarliest();
    action();
    ++executed_;
    return true;
}

void
EventQueue::clear()
{
    assert(!router_ && "clear() is unsupported on a routed queue");
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
}

} // namespace jasim
