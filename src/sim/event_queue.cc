#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace jasim {

std::uint64_t
EventQueue::scheduleAt(SimTime when, Action action)
{
    assert(when >= now_ && "cannot schedule in the past");
    const std::uint64_t id = next_sequence_++;
    queue_.push(Entry{when, id, std::move(action)});
    return id;
}

std::uint64_t
EventQueue::scheduleAfter(SimTime delay, Action action)
{
    return scheduleAt(now_ + delay, std::move(action));
}

std::uint64_t
EventQueue::runUntil(SimTime horizon)
{
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= horizon) {
        // Copy out before pop: the action may schedule more events.
        Entry entry = queue_.top();
        queue_.pop();
        now_ = entry.when;
        entry.action();
        ++executed;
    }
    if (now_ < horizon)
        now_ = horizon;
    return executed;
}

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.action();
    return true;
}

void
EventQueue::clear()
{
    while (!queue_.empty())
        queue_.pop();
}

} // namespace jasim
