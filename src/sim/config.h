/**
 * @file
 * Lightweight key=value configuration with typed accessors.
 *
 * Benches, tests and examples parse command-line arguments of the form
 * `key=value` into a Config and hand it to experiment constructors, so
 * every run parameter (seed, injection rate, heap size, ...) can be
 * overridden without recompiling.
 */

#ifndef JASIM_SIM_CONFIG_H
#define JASIM_SIM_CONFIG_H

#include <cstdint>
#include <map>
#include <string>

namespace jasim {

/** String-keyed configuration map with typed, defaulted lookups. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse argv entries. Accepted forms, all equivalent:
     * `key=value`, `--key=value`, `--key value`; a bare `--key`
     * becomes the boolean `key=1`. Anything else is ignored.
     */
    static Config fromArgs(int argc, char **argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** Typed getters; return the fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Validated sweep worker count from `--jobs N`.
     *
     * Absent, negative, or unparsable values mean 1 (serial); 0 means
     * "one worker per hardware thread"; anything above 256 is clamped
     * to 256 so a typo cannot fork a thread bomb.
     */
    std::size_t jobs() const;

    /**
     * Memory/translation fast path from `--fastpath` (default on).
     *
     * `--fastpath` or `--fastpath=1|true|yes|on` enables it; any other
     * value (`--fastpath=0`, `=off`, ...) disables. The fast path is
     * exact -- identical stdout and counters either way -- so the flag
     * exists for A/B verification and perf measurement only.
     */
    bool fastpath() const;

    /**
     * Validated lane-thread count from `--lanes N` (jasim::lane
     * windowed parallel event execution, cluster benches).
     *
     * Absent, negative, or unparsable values mean 0 — the serial
     * legacy kernel. 1 runs the lane protocol single-threaded (the
     * determinism baseline), N > 1 adds host threads; output is
     * bit-identical for every N >= 1. A bare `--lanes` means 1;
     * anything above 64 is clamped to 64.
     */
    std::size_t lanes() const;

    /**
     * Fault-schedule spec from `--faults <spec>` (see
     * fault/schedule.h for the grammar). Empty — the default — means
     * a healthy run; benches pass it to FaultSchedule::parse.
     */
    std::string faults() const { return getString("faults", ""); }

    /**
     * Arrival-process spec from `--arrival <spec>` (see
     * driver/arrival.h for the grammar). Empty — the default — means
     * fixed-rate Poisson; benches pass it to ArrivalSpec::parse.
     */
    std::string arrival() const { return getString("arrival", ""); }

    /**
     * Admission-control spec from `--admission <spec>` (see
     * adm/admission.h for the grammar). Empty — the default — means
     * no admission control; benches pass it to
     * adm::AdmissionConfig::parse.
     */
    std::string admission() const
    {
        return getString("admission", "");
    }

    /**
     * Validated shard count from `--shards N` (replicated DB tier).
     *
     * Absent, zero, negative, or unparsable values mean 1 (the
     * legacy single box); anything above 64 is clamped to 64.
     */
    std::size_t shards() const;

    /**
     * Validated replicas-per-shard from `--replicas R`.
     *
     * Absent, negative, or unparsable values mean 0 (unreplicated);
     * anything above 8 is clamped to 8.
     */
    std::size_t replicas() const;

    /**
     * Replication ack mode from `--sync-mode {sync,async}`.
     *
     * "sync" acks a commit only once a replica holds it durably;
     * anything else — including the default — is "async".
     */
    std::string syncMode() const;
    bool syncReplication() const { return syncMode() == "sync"; }

    const std::map<std::string, std::string> &entries() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace jasim

#endif // JASIM_SIM_CONFIG_H
