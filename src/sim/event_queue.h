/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal but complete event queue: events are closures scheduled at
 * absolute simulated times; ties are broken FIFO by insertion order so
 * simulations are deterministic. The system-level tier of jasim (driver,
 * app server, database, disks, GC scheduling) runs entirely on this
 * kernel.
 *
 * Hot-path notes: actions are `InlineFunction`s, so the common
 * dispatch closures live in pooled inline storage instead of behind a
 * per-event allocation (std::function heap-allocates anything over
 * its ~16-byte SSO buffer). Closure storage is a recycled slot pool;
 * the priority queue holds only 16-byte POD entries (when, packed
 * sequence+slot) in an implicit binary min-heap with bottom-up
 * ("Wegener") pops, so ordering moves two words rather than whole
 * closures and pays roughly one comparison per level instead of two.
 * `bench/micro_eventqueue` measures the combined effect against the
 * old `std::function` + `std::priority_queue` kernel.
 */

#ifndef JASIM_SIM_EVENT_QUEUE_H
#define JASIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_function.h"
#include "sim/types.h"

namespace jasim {

/**
 * Back end a facade EventQueue can delegate to.
 *
 * jasim::lane installs one of these on the cluster's shared queue:
 * every scheduleAt/runUntil/now call on the facade is forwarded here,
 * and the router fans events out over per-lane real EventQueues (which
 * have no router installed and run the plain serial kernel). Model
 * code keeps calling the one queue it always did; the router decides
 * which lane each event lands on and when it runs.
 */
class LaneRouter
{
  public:
    virtual ~LaneRouter() = default;

    /** Facade scheduleAt(): route the event to its owning lane. */
    virtual std::uint64_t laneSchedule(SimTime when,
                                       InlineFunction &&action) = 0;

    /** Facade now(): the calling context's notion of current time. */
    virtual SimTime laneNow() const = 0;

    /** Facade runUntil(): drive the windowed lane protocol. */
    virtual std::uint64_t laneRunUntil(SimTime horizon) = 0;

    /** Facade pending(): total pending events across lanes. */
    virtual std::size_t lanePending() const = 0;

    /** Facade executed(): total executed events across lanes. */
    virtual std::uint64_t laneExecuted() const = 0;
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread-safe; a simulation is single-threaded by design.
 * Parallelism in jasim lives elsewhere: `jasim::par` runs whole
 * independent simulations concurrently (one queue per worker), and
 * `jasim::lane` runs one simulation over several of these queues —
 * installing a LaneRouter turns this queue into a pure facade over
 * the router's per-lane queues.
 */
class EventQueue
{
  public:
    using Action = InlineFunction;

    /** nextEventTime() when no event is pending. */
    static constexpr SimTime kNoEvent =
        std::numeric_limits<SimTime>::max();

    /** Current simulated time. */
    SimTime now() const
    {
        return router_ ? router_->laneNow() : now_;
    }

    /** Number of pending events. */
    std::size_t pending() const
    {
        return router_ ? router_->lanePending() : heap_.size();
    }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const
    {
        return router_ ? router_->laneExecuted() : executed_;
    }

    /** Timestamp of the earliest pending event, or kNoEvent. */
    SimTime nextEventTime() const
    {
        return heap_.empty() ? kNoEvent : heap_.front().when;
    }

    /**
     * Install (or, with nullptr, remove) a delegation back end.
     * Installation requires a virgin queue (no pending events, time
     * 0) so every event of the run flows through the router; removal
     * is allowed any time (the owner tears the router down before the
     * queue). step() and clear() are unsupported while routed.
     */
    void setLaneRouter(LaneRouter *router);

    /** The installed router, if any. */
    LaneRouter *laneRouter() const { return router_; }

    /**
     * Schedule an action at an absolute time.
     *
     * Takes the action by rvalue reference so a closure converts into
     * exactly one Action that is moved straight into the slot pool
     * (by-value would add a second 48-byte move per event on the
     * hottest path in the simulator).
     *
     * @param when absolute simulated time; must be >= now().
     * @return a monotonically increasing event id (usable for debugging).
     */
    std::uint64_t scheduleAt(SimTime when, Action &&action);

    /** Schedule an action after a relative delay from now(). */
    std::uint64_t scheduleAfter(SimTime delay, Action &&action);

    /**
     * Run events until the queue is empty or the horizon is reached.
     *
     * Events scheduled exactly at the horizon are executed. Returns the
     * number of events executed. Time is left at the horizon (or at the
     * last event if the queue drained earlier).
     */
    std::uint64_t runUntil(SimTime horizon);

    /** Run a single event if one is pending; returns true if one ran. */
    bool step();

    /** Discard all pending events (used between experiment phases). */
    void clear();

  private:
    /**
     * 16-byte heap entry: the sequence number lives in the upper 40
     * bits of `key` and the closure's slot index in the lower 24, so
     * the FIFO tie-break is a single integer compare and sift moves
     * touch two words. 24 bits bounds *pending* events at ~16.7M and
     * 40 bits bounds a run at ~1.1e12 events total; both are asserted
     * in scheduleAt() and far above any jasim experiment.
     */
    struct Entry
    {
        SimTime when;
        std::uint64_t key; //!< (sequence << kSlotBits) | slot
    };

    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

    /** Strict event order: time first, FIFO (sequence) on ties. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    /** Insert the last heap element into its heap position. */
    void siftUp(std::size_t i);

    /** Re-seat `filler` (the old last leaf) into the root hole. */
    void siftDownFromRoot(Entry filler);

    /**
     * Pop the earliest event's action (heap_ must be non-empty),
     * advance now_ to its timestamp, and recycle its slot.
     */
    Action popEarliest();

    /** Implicit binary min-heap ordered by earlier(). */
    std::vector<Entry> heap_;
    std::vector<Action> slots_;            //!< closure pool
    std::vector<std::uint32_t> free_slots_; //!< recycled slot indices
    SimTime now_ = 0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t executed_ = 0;
    LaneRouter *router_ = nullptr; //!< facade mode when non-null
};

} // namespace jasim

#endif // JASIM_SIM_EVENT_QUEUE_H
