/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal but complete event queue: events are closures scheduled at
 * absolute simulated times; ties are broken FIFO by insertion order so
 * simulations are deterministic. The system-level tier of jasim (driver,
 * app server, database, disks, GC scheduling) runs entirely on this
 * kernel.
 */

#ifndef JASIM_SIM_EVENT_QUEUE_H
#define JASIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace jasim {

/**
 * Deterministic discrete-event queue.
 *
 * Not thread-safe; a simulation is single-threaded by design.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Schedule an action at an absolute time.
     *
     * @param when absolute simulated time; must be >= now().
     * @return a monotonically increasing event id (usable for debugging).
     */
    std::uint64_t scheduleAt(SimTime when, Action action);

    /** Schedule an action after a relative delay from now(). */
    std::uint64_t scheduleAfter(SimTime delay, Action action);

    /**
     * Run events until the queue is empty or the horizon is reached.
     *
     * Events scheduled exactly at the horizon are executed. Returns the
     * number of events executed. Time is left at the horizon (or at the
     * last event if the queue drained earlier).
     */
    std::uint64_t runUntil(SimTime horizon);

    /** Run a single event if one is pending; returns true if one ran. */
    bool step();

    /** Discard all pending events (used between experiment phases). */
    void clear();

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t sequence;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    SimTime now_ = 0;
    std::uint64_t next_sequence_ = 0;
};

} // namespace jasim

#endif // JASIM_SIM_EVENT_QUEUE_H
