#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jasim {

double
drawExponential(Rng &rng, double rate)
{
    assert(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

std::uint64_t
drawPoisson(Rng &rng, double mean)
{
    assert(mean >= 0.0);
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        double product = rng.uniform();
        std::uint64_t count = 0;
        while (product > limit) {
            ++count;
            product *= rng.uniform();
        }
        return count;
    }
    // Normal approximation for large means; adequate for workload
    // arrival batching where mean is O(10^2..10^4).
    const double draw = drawNormal(rng, mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double
drawNormal(Rng &rng, double mean, double stddev)
{
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958648 * u2);
    return mean + stddev * z;
}

double
drawLogNormal(Rng &rng, double mu, double sigma)
{
    return std::exp(drawNormal(rng, mu, sigma));
}

ZipfSampler::ZipfSampler(std::size_t n, double s, double shift)
{
    assert(n > 0);
    assert(shift >= 0.0);
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        total +=
            1.0 / std::pow(static_cast<double>(rank + 1) + shift, s);
        cdf_[rank] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::operator()(Rng &rng) const
{
    return sampleAt(rng.uniform());
}

std::size_t
ZipfSampler::sampleAt(double u) const
{
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    if (rank == 0)
        return cdf_[0];
    return cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    assert(!weights.empty());
    cdf_.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        assert(weights[i] >= 0.0);
        total += weights[i];
        cdf_[i] = total;
    }
    assert(total > 0.0);
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
DiscreteSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
DiscreteSampler::probability(std::size_t index) const
{
    assert(index < cdf_.size());
    if (index == 0)
        return cdf_[0];
    return cdf_[index] - cdf_[index - 1];
}

} // namespace jasim
