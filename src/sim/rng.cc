#include "sim/rng.h"

namespace jasim {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    // Mix the stream id into fresh state drawn from this generator so
    // children are decorrelated from the parent and from each other.
    std::uint64_t sm = (*this)() ^ (stream_id * 0xd1342543de82ef95ull);
    return Rng(splitMix64(sm));
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    // Multiply-shift bounded draw (Lemire); bias is negligible for
    // the n used in simulation and the method is branch-free.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace jasim
