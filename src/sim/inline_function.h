/**
 * @file
 * Small-buffer-optimized, move-only `void()` callable.
 *
 * The event kernel schedules millions of closures per run; with
 * `std::function` every capture larger than the library's tiny SSO
 * buffer (16 bytes on libstdc++) costs a heap allocation per event.
 * The simulation's dispatch closures routinely capture `this` plus a
 * handful of values or a continuation, so nearly every event paid
 * that allocation. `InlineFunction` stores captures up to
 * `InlineBytes` directly inside the object and only falls back to
 * the heap beyond that; it is move-only, which also lets events own
 * move-only state (`std::unique_ptr`, pooled buffers) that
 * `std::function` rejects outright.
 */

#ifndef JASIM_SIM_INLINE_FUNCTION_H
#define JASIM_SIM_INLINE_FUNCTION_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace jasim {

/**
 * Move-only `void()` wrapper with `InlineBytes` of inline storage.
 *
 * A callable is stored inline when it fits, is no more aligned than
 * `std::max_align_t`, and is nothrow-move-constructible (so moves of
 * the wrapper stay noexcept); anything else lives on the heap behind
 * a single pointer. Invoking an empty wrapper is undefined (asserted
 * in debug builds).
 */
template <std::size_t InlineBytes>
class BasicInlineFunction
{
  public:
    BasicInlineFunction() noexcept = default;
    BasicInlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename Fn = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, BasicInlineFunction> &&
                  std::is_invocable_r_v<void, Fn &>>>
    BasicInlineFunction(F &&f)
    {
        if constexpr (fitsInline<Fn>()) {
            ::new (storagePtr()) Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            // Trivially-copyable closures (the common case: `this`
            // plus scalars) need no manager: moves are a memcpy of
            // the buffer and destruction is a no-op.
            if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                            std::is_trivially_destructible_v<Fn>)) {
                manage_ = [](Op op, void *self, void *dest) {
                    Fn *fn = static_cast<Fn *>(self);
                    if (op == Op::MoveTo)
                        ::new (dest) Fn(std::move(*fn));
                    fn->~Fn();
                };
            }
        } else {
            ::new (storagePtr()) Fn *(new Fn(std::forward<F>(f)));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            manage_ = [](Op op, void *self, void *dest) {
                Fn **slot = static_cast<Fn **>(self);
                if (op == Op::MoveTo)
                    ::new (dest) Fn *(*slot);
                else
                    delete *slot;
            };
            on_heap_ = true;
        }
    }

    BasicInlineFunction(BasicInlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    BasicInlineFunction &
    operator=(BasicInlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    BasicInlineFunction(const BasicInlineFunction &) = delete;
    BasicInlineFunction &operator=(const BasicInlineFunction &) = delete;

    ~BasicInlineFunction() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /** Invoke the stored callable; must not be empty. */
    void
    operator()()
    {
        assert(invoke_ && "invoking an empty InlineFunction");
        invoke_(storagePtr());
    }

    /** Drop the stored callable (becomes empty). */
    void
    reset() noexcept
    {
        if (manage_)
            manage_(Op::Destroy, storagePtr(), nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
        on_heap_ = false;
    }

    /** True if the callable lives in the inline buffer (not empty). */
    bool isInline() const noexcept { return invoke_ && !on_heap_; }

    /** Compile-time check: would `Fn` be stored inline? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    enum class Op { MoveTo, Destroy };
    using InvokeFn = void (*)(void *);
    using ManageFn = void (*)(Op, void *self, void *dest);

    void *storagePtr() noexcept { return static_cast<void *>(storage_); }

    void
    moveFrom(BasicInlineFunction &other) noexcept
    {
        if (!other.invoke_)
            return;
        if (other.manage_) {
            // MoveTo relocates the callable into our buffer and ends
            // its life in the source; the source then only clears its
            // pointers.
            other.manage_(Op::MoveTo, other.storagePtr(),
                          storagePtr());
        } else {
            // Trivial inline closure: bytes are the whole state.
            std::memcpy(storage_, other.storage_, InlineBytes);
        }
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        on_heap_ = other.on_heap_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        other.on_heap_ = false;
    }

    alignas(std::max_align_t) unsigned char storage_[InlineBytes];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
    bool on_heap_ = false;
};

/**
 * The event kernel's callback type. 48 bytes of inline storage covers
 * the simulation's dispatch closures (`this` + a few scalars + a
 * continuation) without a heap allocation.
 */
using InlineFunction = BasicInlineFunction<48>;

} // namespace jasim

#endif // JASIM_SIM_INLINE_FUNCTION_H
