/**
 * @file
 * Fundamental scalar types shared across jasim.
 *
 * Simulated time is kept in integer microseconds to avoid floating
 * point drift in the event queue; microarchitectural quantities use
 * cycles and instruction counts as unsigned 64-bit integers.
 */

#ifndef JASIM_SIM_TYPES_H
#define JASIM_SIM_TYPES_H

#include <cstdint>

namespace jasim {

/** Simulated wall-clock time in microseconds since run start. */
using SimTime = std::uint64_t;

/** Processor cycles. */
using Cycles = std::uint64_t;

/** Instruction counts. */
using InstCount = std::uint64_t;

/** Byte addresses in a simulated address space. */
using Addr = std::uint64_t;

/** Convert seconds to SimTime. */
constexpr SimTime
secs(double s)
{
    return static_cast<SimTime>(s * 1e6);
}

/** Convert milliseconds to SimTime. */
constexpr SimTime
millis(double ms)
{
    return static_cast<SimTime>(ms * 1e3);
}

/** Convert SimTime to seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace jasim

#endif // JASIM_SIM_TYPES_H
