#include "driver/driver.h"

#include <cassert>

#include "sim/distributions.h"

namespace jasim {

Driver::Driver(const DriverConfig &config, EventQueue &queue,
               std::uint64_t seed, Sink sink)
    : config_(config), queue_(queue), rng_(seed), sink_(std::move(sink))
{
    assert(sink_ != nullptr);
    if (config_.arrival.enabled()) {
        modulator_ = std::make_unique<RateModulator>(
            config_.arrival, seed ^ 0xa771ull);
    }
    const double dealer =
        config_.injection_rate * config_.dealer_per_ir;
    rates_[static_cast<std::size_t>(RequestType::Browse)] =
        dealer * config_.browse_share;
    rates_[static_cast<std::size_t>(RequestType::Purchase)] =
        dealer * config_.purchase_share;
    rates_[static_cast<std::size_t>(RequestType::Manage)] =
        dealer * config_.manage_share;
    rates_[static_cast<std::size_t>(RequestType::CreateWorkOrder)] =
        config_.injection_rate * config_.mfg_per_ir;
}

void
Driver::start(SimTime start, SimTime end)
{
    end_ = end;
    for (std::size_t t = 0; t < requestTypeCount; ++t) {
        if (rates_[t] <= 0.0)
            continue;
        const auto type = static_cast<RequestType>(t);
        double rate = rates_[t];
        if (modulator_)
            rate *= modulator_->maxMultiplier();
        const SimTime first = start + secs(
            drawExponential(rng_, rate));
        if (first < end_) {
            queue_.scheduleAt(first, [this, type] {
                scheduleNext(type);
            });
        }
    }
}

void
Driver::scheduleNext(RequestType type)
{
    // Linear thinning during the driver ramp-up.
    const SimTime ramp = secs(config_.ramp_up_s);
    bool accept = ramp == 0 || queue_.now() >= ramp ||
        rng_.uniform() < static_cast<double>(queue_.now()) /
            static_cast<double>(ramp);
    // Lewis-Shedler thinning against the rate modulator: candidates
    // arrive at rate x maxMultiplier and survive with m(t)/max.
    if (accept && modulator_) {
        accept = rng_.uniform() * modulator_->maxMultiplier() <
            modulator_->multiplier(queue_.now());
    }
    if (accept) {
        Request request;
        request.id = next_id_++;
        request.type = type;
        request.arrival = queue_.now();
        ++injected_;
        sink_(request);
    }

    double rate = rates_[static_cast<std::size_t>(type)];
    if (modulator_)
        rate *= modulator_->maxMultiplier();
    const SimTime next = queue_.now() + secs(drawExponential(rng_, rate));
    if (next < end_) {
        queue_.scheduleAt(next, [this, type] { scheduleNext(type); });
    }
}

} // namespace jasim
