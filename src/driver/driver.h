/**
 * @file
 * The load driver.
 *
 * Simulates the benchmark driver machine: open-loop Poisson arrivals
 * at a configured Injection Rate (IR). Dealer (HTTP) requests arrive
 * at IR per second, split 50/25/25 Browse/Purchase/Manage; the
 * manufacturing (RMI) stream adds 0.6 x IR work orders per second, so
 * a tuned system performs ~1.6 JOPS per unit of IR, as the paper
 * states. The driver does not contend for SUT resources.
 */

#ifndef JASIM_DRIVER_DRIVER_H
#define JASIM_DRIVER_DRIVER_H

#include <array>
#include <functional>
#include <memory>

#include "driver/arrival.h"
#include "driver/request.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace jasim {

/** Driver parameters. */
struct DriverConfig
{
    double injection_rate = 40.0;

    /**
     * Driver-side ramp-up: the arrival rate scales linearly from 0 to
     * the full IR over this many seconds, as the real driver does, so
     * the SUT warms its JIT tiers without building an unbounded
     * backlog.
     */
    double ramp_up_s = 120.0;

    /** Dealer arrival rate multiplier per IR unit. */
    double dealer_per_ir = 1.0;
    /** Manufacturing (RMI) arrival rate multiplier per IR unit. */
    double mfg_per_ir = 0.6;

    double browse_share = 0.50;
    double purchase_share = 0.25;
    double manage_share = 0.25;

    /**
     * Arrival process (see driver/arrival.h). The default fixed mode
     * builds no modulator and leaves the arrival stream byte-identical
     * to a pre-arrival-process build; mmpp/curve modes thin an
     * over-sampled Poisson stream against the shared rate modulator,
     * so bursts hit every traffic class coherently.
     */
    ArrivalSpec arrival;

    /** Nominal JOPS per IR on a tuned system. */
    double
    jopsPerIr() const
    {
        return dealer_per_ir + mfg_per_ir;
    }
};

/**
 * Generates arrivals onto an event queue and hands each request to a
 * sink callback (the SUT).
 */
class Driver
{
  public:
    using Sink = std::function<void(const Request &)>;

    Driver(const DriverConfig &config, EventQueue &queue,
           std::uint64_t seed, Sink sink);

    /** Begin injecting at `start`, stop scheduling beyond `end`. */
    void start(SimTime start, SimTime end);

    std::uint64_t injectedCount() const { return injected_; }

    /** Burst-state entries of the rate modulator (0 in fixed mode). */
    std::uint64_t burstCount() const
    {
        return modulator_ ? modulator_->burstCount() : 0;
    }

    const DriverConfig &config() const { return config_; }

  private:
    DriverConfig config_;
    EventQueue &queue_;
    Rng rng_;
    /** Null in fixed mode; its own forked stream, so enabling a
     *  modulator never perturbs the per-type arrival draws' seed. */
    std::unique_ptr<RateModulator> modulator_;
    Sink sink_;
    SimTime end_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t next_id_ = 1;

    /** Per-type arrival rates (requests per second). */
    std::array<double, requestTypeCount> rates_{};

    void scheduleNext(RequestType type);
};

} // namespace jasim

#endif // JASIM_DRIVER_DRIVER_H
