#include "driver/arrival.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/distributions.h"

namespace jasim {

namespace {

[[noreturn]] void
fail(const std::string &what, const std::string &token)
{
    throw std::invalid_argument("--arrival: " + what + " in \"" +
                                token + "\"");
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

double
parseNumber(const std::string &token)
{
    std::size_t used = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &used);
    } catch (const std::exception &) {
        fail("expected a number", token);
    }
    if (used != token.size() || !std::isfinite(value))
        fail("expected a number", token);
    return value;
}

double
parsePositive(const std::string &token)
{
    const double value = parseNumber(token);
    if (value <= 0.0)
        fail("expected a value > 0", token);
    return value;
}

} // namespace

const char *
arrivalModeName(ArrivalMode mode)
{
    switch (mode) {
      case ArrivalMode::Fixed: return "fixed";
      case ArrivalMode::Mmpp: return "mmpp";
      case ArrivalMode::Curve: return "curve";
    }
    return "?";
}

ArrivalSpec
ArrivalSpec::parse(const std::string &raw)
{
    ArrivalSpec spec;
    const std::string whole = trim(raw);
    if (whole.empty() || whole == "fixed")
        return spec;

    const std::size_t colon = whole.find(':');
    const std::string head = trim(whole.substr(0, colon));
    const std::string params =
        colon == std::string::npos ? "" : whole.substr(colon + 1);

    if (head == "mmpp") {
        spec.mode = ArrivalMode::Mmpp;
        std::stringstream list(params);
        std::string item;
        while (std::getline(list, item, ',')) {
            item = trim(item);
            if (item.empty())
                continue;
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos)
                fail("expected key=value", item);
            const std::string key = trim(item.substr(0, eq));
            const std::string value = trim(item.substr(eq + 1));
            if (key == "base")
                spec.base_multiplier = parsePositive(value);
            else if (key == "burst")
                spec.burst_multiplier = parsePositive(value);
            else if (key == "on")
                spec.burst_mean_s = parsePositive(value);
            else if (key == "off")
                spec.baseline_mean_s = parsePositive(value);
            else
                fail("unknown mmpp key \"" + key + "\"", item);
        }
        if (spec.burst_multiplier < spec.base_multiplier)
            fail("burst multiplier must be >= base", whole);
        return spec;
    }

    if (head == "curve") {
        spec.mode = ArrivalMode::Curve;
        std::stringstream list(params);
        std::string item;
        while (std::getline(list, item, ',')) {
            item = trim(item);
            if (item.empty())
                continue;
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos)
                fail("expected time=multiplier", item);
            CurvePoint point;
            const double at_s =
                parseNumber(trim(item.substr(0, eq)));
            if (at_s < 0.0)
                fail("expected a time >= 0", item);
            point.at = secs(at_s);
            point.multiplier = parseNumber(trim(item.substr(eq + 1)));
            if (point.multiplier < 0.0)
                fail("expected a multiplier >= 0", item);
            if (!spec.points.empty() &&
                point.at <= spec.points.back().at)
                fail("knot times must be strictly increasing", item);
            spec.points.push_back(point);
        }
        if (spec.points.size() < 2)
            fail("curve needs at least two time=multiplier knots",
                 whole);
        if (spec.maxMultiplier() <= 0.0)
            fail("curve needs at least one multiplier > 0", whole);
        return spec;
    }

    fail("unknown arrival mode \"" + head + "\"", whole);
}

double
ArrivalSpec::maxMultiplier() const
{
    switch (mode) {
      case ArrivalMode::Fixed:
        return 1.0;
      case ArrivalMode::Mmpp:
        return std::max(base_multiplier, burst_multiplier);
      case ArrivalMode::Curve: {
        double best = 0.0;
        for (const CurvePoint &point : points)
            best = std::max(best, point.multiplier);
        return best;
      }
    }
    return 1.0;
}

std::string
ArrivalSpec::describe() const
{
    std::ostringstream out;
    out << arrivalModeName(mode);
    if (mode == ArrivalMode::Mmpp) {
        out << " base=" << base_multiplier
            << " burst=" << burst_multiplier
            << " on=" << burst_mean_s << "s off=" << baseline_mean_s
            << "s";
    } else if (mode == ArrivalMode::Curve) {
        out << " knots=" << points.size()
            << " peak=" << maxMultiplier();
    }
    return out.str();
}

RateModulator::RateModulator(const ArrivalSpec &spec,
                             std::uint64_t seed)
    : spec_(spec), rng_(seed), max_multiplier_(spec.maxMultiplier())
{
    assert(spec_.enabled());
    if (spec_.mode == ArrivalMode::Mmpp) {
        // The process starts in the baseline state; the first switch
        // time comes off the modulator's own stream.
        next_switch_ = secs(
            drawExponential(rng_, 1.0 / spec_.baseline_mean_s));
    }
}

double
RateModulator::multiplier(SimTime at)
{
    assert(at >= last_query_ && "modulator queries must be monotone");
    last_query_ = at;
    if (spec_.mode == ArrivalMode::Curve)
        return curveMultiplier(at);

    while (at >= next_switch_) {
        in_burst_ = !in_burst_;
        if (in_burst_)
            ++bursts_;
        const double mean_s = in_burst_ ? spec_.burst_mean_s
                                        : spec_.baseline_mean_s;
        next_switch_ +=
            std::max<SimTime>(1, secs(drawExponential(
                                     rng_, 1.0 / mean_s)));
    }
    return in_burst_ ? spec_.burst_multiplier
                     : spec_.base_multiplier;
}

double
RateModulator::curveMultiplier(SimTime at) const
{
    const std::vector<CurvePoint> &pts = spec_.points;
    if (at <= pts.front().at)
        return pts.front().multiplier;
    if (at >= pts.back().at)
        return pts.back().multiplier;
    // First knot strictly past `at`; interpolate from its predecessor.
    const auto after = std::upper_bound(
        pts.begin(), pts.end(), at,
        [](SimTime t, const CurvePoint &p) { return t < p.at; });
    const CurvePoint &hi = *after;
    const CurvePoint &lo = *(after - 1);
    const double span = static_cast<double>(hi.at - lo.at);
    const double frac = static_cast<double>(at - lo.at) / span;
    return lo.multiplier + (hi.multiplier - lo.multiplier) * frac;
}

} // namespace jasim
