#include "driver/request.h"

namespace jasim {

const char *
requestTypeName(RequestType type)
{
    switch (type) {
      case RequestType::Purchase: return "Purchase";
      case RequestType::Manage: return "Manage";
      case RequestType::Browse: return "Browse";
      case RequestType::CreateWorkOrder: return "CreateWorkOrder";
    }
    return "?";
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::None: return "none";
      case ErrorKind::NodeDown: return "node-down";
      case ErrorKind::NoBackend: return "no-backend";
      case ErrorKind::DbTimeout: return "db-timeout";
      case ErrorKind::DbCircuitOpen: return "db-circuit-open";
      case ErrorKind::PoolTimeout: return "pool-timeout";
      case ErrorKind::DbRetriesExhausted: return "db-retries-exhausted";
      case ErrorKind::RecoveryWait: return "recovery-wait";
      case ErrorKind::FailoverWait: return "failover-wait";
      case ErrorKind::Rejected: return "rejected";
      case ErrorKind::ShedAtLB: return "shed-at-lb";
      case ErrorKind::Partitioned: return "partitioned";
    }
    return "?";
}

} // namespace jasim
