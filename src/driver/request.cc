#include "driver/request.h"

namespace jasim {

const char *
requestTypeName(RequestType type)
{
    switch (type) {
      case RequestType::Purchase: return "Purchase";
      case RequestType::Manage: return "Manage";
      case RequestType::Browse: return "Browse";
      case RequestType::CreateWorkOrder: return "CreateWorkOrder";
    }
    return "?";
}

} // namespace jasim
