/**
 * @file
 * Open-loop arrival processes beyond fixed-rate Poisson.
 *
 * The paper's driver runs closed-loop at a fixed injection rate; real
 * web traffic is bursty and diurnal. This module adds two seeded,
 * fully deterministic rate-modulation modes the driver thins against:
 *
 *  - `mmpp:` a two-state Markov-modulated Poisson process: the rate
 *    multiplier flips between a baseline and a burst level, with
 *    exponentially distributed sojourns in each state drawn from the
 *    modulator's own forked RNG stream.
 *  - `curve:` a piecewise-linear multiplier curve (diurnal or
 *    recorded load shapes), interpolated between (time, multiplier)
 *    knots and clamped to the end values outside them.
 *
 * The driver samples candidate arrivals at rate x maxMultiplier() and
 * accepts each with probability m(t)/maxMultiplier() (Lewis-Shedler
 * thinning), so a single modulator shapes every traffic class
 * coherently — bursts hit Browse and CreateWorkOrder alike. The
 * default `fixed` mode builds no modulator and draws nothing extra,
 * keeping default runs byte-identical.
 */

#ifndef JASIM_DRIVER_ARRIVAL_H
#define JASIM_DRIVER_ARRIVAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace jasim {

/** Arrival-process family. */
enum class ArrivalMode : std::uint8_t
{
    Fixed, //!< legacy fixed-rate Poisson (no modulator)
    Mmpp,  //!< two-state Markov-modulated burst train
    Curve, //!< piecewise-linear rate curve
};

const char *arrivalModeName(ArrivalMode mode);

/** One knot of a `curve:` spec. */
struct CurvePoint
{
    SimTime at = 0;          //!< knot time
    double multiplier = 1.0; //!< rate multiplier at that time
};

/**
 * Parsed `--arrival` spec. Grammar (validated like `--faults`):
 *
 *   ""                                   fixed (the default)
 *   fixed                                fixed
 *   mmpp:burst=4[,base=1][,on=6][,off=18]
 *       base/burst = rate multipliers in the two states
 *       on/off     = mean sojourn seconds in burst / baseline state
 *   curve:0=1,300=4,600=1
 *       time_seconds=multiplier knots, strictly increasing times
 *
 * Malformed specs throw std::invalid_argument naming the offending
 * token.
 */
struct ArrivalSpec
{
    ArrivalMode mode = ArrivalMode::Fixed;

    // mmpp
    double base_multiplier = 1.0;
    double burst_multiplier = 4.0;
    double burst_mean_s = 6.0;    //!< mean sojourn in the burst state
    double baseline_mean_s = 18.0; //!< mean sojourn in the baseline

    // curve
    std::vector<CurvePoint> points;

    static ArrivalSpec parse(const std::string &spec);

    bool enabled() const { return mode != ArrivalMode::Fixed; }

    /** Peak multiplier the thinning driver over-samples at. */
    double maxMultiplier() const;

    /** Human-readable one-liner for banners and logs. */
    std::string describe() const;
};

/**
 * The time-varying rate multiplier m(t) behind a non-fixed spec.
 *
 * MMPP state advances lazily: multiplier(at) extends the seeded
 * switch timeline up to `at`, so queries must be monotone
 * non-decreasing in time — which event-queue callers are by
 * construction. Curve mode is stateless interpolation.
 */
class RateModulator
{
  public:
    RateModulator(const ArrivalSpec &spec, std::uint64_t seed);

    /** m(at); monotone queries only (asserted). */
    double multiplier(SimTime at);

    double maxMultiplier() const { return max_multiplier_; }

    /** Burst-state entries so far (MMPP; 0 for curves). */
    std::uint64_t burstCount() const { return bursts_; }

    const ArrivalSpec &spec() const { return spec_; }

  private:
    ArrivalSpec spec_;
    Rng rng_;
    double max_multiplier_;
    bool in_burst_ = false;
    SimTime next_switch_ = 0;
    SimTime last_query_ = 0;
    std::uint64_t bursts_ = 0;

    double curveMultiplier(SimTime at) const;
};

} // namespace jasim

#endif // JASIM_DRIVER_ARRIVAL_H
