#include "driver/response_tracker.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace jasim {

ResponseTracker::ResponseTracker(double bucket_seconds)
    : bucket_seconds_(bucket_seconds)
{
    assert(bucket_seconds > 0.0);
}

void
ResponseTracker::complete(const Request &request, SimTime finish,
                          std::uint32_t node)
{
    assert(finish >= request.arrival);
    PerType &pt = per_type_[idx(request.type)];
    const double seconds = toSeconds(finish - request.arrival);
    pt.responses.add(seconds);
    pt.completions.push_back(Completion{finish, node, seconds});
}

std::uint64_t
ResponseTracker::completedCount(RequestType type) const
{
    return per_type_[idx(type)].completions.size();
}

std::uint64_t
ResponseTracker::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &pt : per_type_)
        total += pt.completions.size();
    return total;
}

TimeSeries
ResponseTracker::throughputSeries(RequestType type, SimTime end) const
{
    TimeSeries series(std::string(requestTypeName(type)) + " (tx/s)");
    const SimTime bucket = secs(bucket_seconds_);
    if (bucket == 0 || end == 0)
        return series;
    const std::size_t buckets =
        static_cast<std::size_t>((end + bucket - 1) / bucket);
    std::vector<std::uint64_t> counts(buckets, 0);
    for (const Completion &c : per_type_[idx(type)].completions) {
        if (c.finish < end)
            counts[static_cast<std::size_t>(c.finish / bucket)] += 1;
    }
    for (std::size_t b = 0; b < buckets; ++b) {
        series.append(static_cast<SimTime>(b) * bucket + bucket / 2,
                      static_cast<double>(counts[b]) / bucket_seconds_);
    }
    return series;
}

double
ResponseTracker::jops(SimTime from, SimTime to) const
{
    if (to <= from)
        return 0.0;
    std::uint64_t completed = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.finish >= from && c.finish < to)
                completed += 1;
        }
    }
    return static_cast<double>(completed) / toSeconds(to - from);
}

double
ResponseTracker::goodput(SimTime from, SimTime to,
                         double bound_seconds) const
{
    if (to <= from)
        return 0.0;
    std::uint64_t good = 0;
    for (std::size_t t = 0; t < requestTypeCount; ++t) {
        const double bound = bound_seconds > 0.0
            ? bound_seconds
            : slaSeconds(static_cast<RequestType>(t));
        for (const Completion &c : per_type_[t].completions) {
            if (c.finish >= from && c.finish < to &&
                c.seconds <= bound)
                good += 1;
        }
    }
    return static_cast<double>(good) / toSeconds(to - from);
}

double
ResponseTracker::slaAttainment(RequestType type,
                               double bound_seconds) const
{
    const PerType &pt = per_type_[idx(type)];
    if (pt.completions.empty())
        return kNoSamples;
    const double bound =
        bound_seconds > 0.0 ? bound_seconds : slaSeconds(type);
    return pt.responses.fractionAtOrBelow(bound);
}

std::uint64_t
ResponseTracker::completedOnNode(std::uint32_t node) const
{
    std::uint64_t total = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.node == node)
                total += 1;
        }
    }
    return total;
}

double
ResponseTracker::nodeJops(std::uint32_t node, SimTime from,
                          SimTime to) const
{
    if (to <= from)
        return 0.0;
    std::uint64_t completed = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.node == node && c.finish >= from && c.finish < to)
                completed += 1;
        }
    }
    return static_cast<double>(completed) / toSeconds(to - from);
}

std::array<SlaVerdict, requestTypeCount>
ResponseTracker::verdicts() const
{
    std::array<SlaVerdict, requestTypeCount> verdicts;
    for (std::size_t t = 0; t < requestTypeCount; ++t) {
        const auto type = static_cast<RequestType>(t);
        SlaVerdict &v = verdicts[t];
        v.type = type;
        v.bound_seconds = slaSeconds(type);
        v.completed = per_type_[t].completions.size();
        v.p90_seconds = per_type_[t].responses.percentile(90.0);
        v.p99_seconds = per_type_[t].responses.percentile(99.0);
        v.pass = v.completed == 0 || v.p90_seconds <= v.bound_seconds;
    }
    return verdicts;
}

bool
ResponseTracker::allPass() const
{
    for (const auto &v : verdicts()) {
        if (!v.pass)
            return false;
    }
    return true;
}

double
ResponseTracker::meanResponseSeconds(RequestType type) const
{
    const PercentileTracker &responses = per_type_[idx(type)].responses;
    if (responses.count() == 0)
        return kNoSamples;
    return responses.mean();
}

double
ResponseTracker::p99ResponseSeconds(RequestType type) const
{
    const PercentileTracker &responses = per_type_[idx(type)].responses;
    if (responses.count() == 0)
        return kNoSamples;
    return responses.percentile(99.0);
}

void
ResponseTracker::error(const Request &request, SimTime finish,
                       std::uint32_t node, ErrorKind kind)
{
    assert(finish >= request.arrival);
    assert(kind != ErrorKind::None);
    (void)finish;
    ++total_errors_;
    ++errors_by_kind_[static_cast<std::size_t>(kind)];
    ++errors_by_node_[node];
}

void
ResponseTracker::recordRetry(ErrorKind cause)
{
    ++retries_;
    ++retry_causes_[static_cast<std::size_t>(cause)];
}

std::uint64_t
ResponseTracker::errorsOnNode(std::uint32_t node) const
{
    const auto it = errors_by_node_.find(node);
    return it == errors_by_node_.end() ? 0 : it->second;
}

double
ResponseTracker::errorRate() const
{
    const std::uint64_t finished = total_errors_ + totalCompleted();
    if (finished == 0)
        return 0.0;
    return static_cast<double>(total_errors_) /
        static_cast<double>(finished);
}

void
ResponseTracker::noteNodeDown(std::uint32_t node, SimTime at)
{
    std::vector<Interval> &intervals = down_intervals_[node];
    // Ignore a second "down" while already down.
    if (!intervals.empty() && intervals.back().to == 0)
        return;
    intervals.push_back(Interval{at, 0});
}

void
ResponseTracker::noteNodeUp(std::uint32_t node, SimTime at)
{
    const auto it = down_intervals_.find(node);
    if (it == down_intervals_.end() || it->second.empty() ||
        it->second.back().to != 0)
        return;
    it->second.back().to = at;
}

SimTime
ResponseTracker::mergedDownUs(const std::vector<Interval> &intervals,
                              SimTime horizon)
{
    std::vector<std::pair<SimTime, SimTime>> windows;
    windows.reserve(intervals.size());
    for (const Interval &interval : intervals) {
        const SimTime from = std::min(interval.from, horizon);
        const SimTime to = interval.to == 0
                               ? horizon
                               : std::min(interval.to, horizon);
        if (to > from)
            windows.emplace_back(from, to);
    }
    std::sort(windows.begin(), windows.end());
    SimTime total = 0;
    SimTime open_from = 0, open_to = 0;
    bool open = false;
    for (const auto &[from, to] : windows) {
        if (open && from <= open_to) {
            open_to = std::max(open_to, to);
            continue;
        }
        if (open)
            total += open_to - open_from;
        open_from = from;
        open_to = to;
        open = true;
    }
    if (open)
        total += open_to - open_from;
    return total;
}

double
ResponseTracker::availability(std::uint32_t node,
                              SimTime horizon) const
{
    if (horizon == 0)
        return 1.0;
    const auto it = down_intervals_.find(node);
    if (it == down_intervals_.end())
        return 1.0;
    const SimTime down = mergedDownUs(it->second, horizon);
    return 1.0 -
        static_cast<double>(down) / static_cast<double>(horizon);
}

void
ResponseTracker::noteDegraded(SimTime from, SimTime to)
{
    assert(to == 0 || to >= from);
    degraded_.push_back(Interval{from, to});
}

void
ResponseTracker::noteDbRecovery(SimTime from, SimTime to)
{
    assert(to >= from);
    recoveries_.push_back(Interval{from, to});
}

SimTime
ResponseTracker::dbRecoveryUs() const
{
    SimTime total = 0;
    for (const Interval &interval : recoveries_)
        total += interval.to - interval.from;
    return total;
}

void
ResponseTracker::noteFailoverBlackout(std::uint32_t shard, SimTime from,
                                      SimTime to)
{
    assert(to == 0 || to >= from);
    failover_blackouts_[shard].push_back(Interval{from, to});
}

std::size_t
ResponseTracker::failoverCount() const
{
    std::size_t count = 0;
    for (const auto &[shard, intervals] : failover_blackouts_) {
        (void)shard;
        count += intervals.size();
    }
    return count;
}

SimTime
ResponseTracker::failoverBlackoutUs() const
{
    SimTime total = 0;
    for (const auto &[shard, intervals] : failover_blackouts_) {
        (void)shard;
        for (const Interval &interval : intervals)
            total += interval.to == 0 ? 0 : interval.to - interval.from;
    }
    return total;
}

SimTime
ResponseTracker::failoverBlackoutUs(std::uint32_t shard) const
{
    const auto it = failover_blackouts_.find(shard);
    if (it == failover_blackouts_.end())
        return 0;
    SimTime total = 0;
    for (const Interval &interval : it->second)
        total += interval.to == 0 ? 0 : interval.to - interval.from;
    return total;
}

double
ResponseTracker::shardAvailability(std::uint32_t shard,
                                   SimTime horizon) const
{
    if (horizon == 0)
        return 1.0;
    const auto it = failover_blackouts_.find(shard);
    if (it == failover_blackouts_.end())
        return 1.0;
    const SimTime down = mergedDownUs(it->second, horizon);
    return 1.0 -
        static_cast<double>(down) / static_cast<double>(horizon);
}

void
ResponseTracker::notePartitionWindow(SimTime from, SimTime to)
{
    assert(to == 0 || to >= from);
    partitions_.push_back(Interval{from, to});
}

SimTime
ResponseTracker::partitionUs(SimTime horizon) const
{
    return mergedDownUs(partitions_, horizon);
}

void
ResponseTracker::noteSwitchover(std::uint32_t shard, SimTime from,
                                SimTime to)
{
    assert(to == 0 || to >= from);
    ++switchovers_;
    failover_blackouts_[shard].push_back(Interval{from, to});
}

DegradedSummary
ResponseTracker::degradedSummary(SimTime horizon) const
{
    std::vector<Interval> all = degraded_;
    for (const auto &[node, intervals] : down_intervals_) {
        (void)node;
        all.insert(all.end(), intervals.begin(), intervals.end());
    }
    for (const auto &[shard, intervals] : failover_blackouts_) {
        (void)shard;
        all.insert(all.end(), intervals.begin(), intervals.end());
    }
    std::vector<std::pair<SimTime, SimTime>> windows;
    windows.reserve(all.size());
    for (const Interval &interval : all) {
        const SimTime from = std::min(interval.from, horizon);
        const SimTime to = interval.to == 0
                               ? horizon
                               : std::min(interval.to, horizon);
        if (to > from)
            windows.emplace_back(from, to);
    }
    std::sort(windows.begin(), windows.end());

    DegradedSummary summary;
    SimTime open_from = 0, open_to = 0;
    bool open = false;
    for (const auto &[from, to] : windows) {
        if (open && from <= open_to) {
            open_to = std::max(open_to, to);
            continue;
        }
        if (open) {
            ++summary.intervals;
            summary.degraded_us += open_to - open_from;
        }
        open_from = from;
        open_to = to;
        open = true;
    }
    if (open) {
        ++summary.intervals;
        summary.degraded_us += open_to - open_from;
    }
    if (horizon > 0) {
        summary.degraded_fraction =
            static_cast<double>(summary.degraded_us) /
            static_cast<double>(horizon);
    }
    return summary;
}

} // namespace jasim
