#include "driver/response_tracker.h"

#include <cassert>

namespace jasim {

ResponseTracker::ResponseTracker(double bucket_seconds)
    : bucket_seconds_(bucket_seconds)
{
    assert(bucket_seconds > 0.0);
}

void
ResponseTracker::complete(const Request &request, SimTime finish,
                          std::uint32_t node)
{
    assert(finish >= request.arrival);
    PerType &pt = per_type_[idx(request.type)];
    pt.responses.add(toSeconds(finish - request.arrival));
    pt.completions.push_back(Completion{finish, node});
}

std::uint64_t
ResponseTracker::completedCount(RequestType type) const
{
    return per_type_[idx(type)].completions.size();
}

std::uint64_t
ResponseTracker::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &pt : per_type_)
        total += pt.completions.size();
    return total;
}

TimeSeries
ResponseTracker::throughputSeries(RequestType type, SimTime end) const
{
    TimeSeries series(std::string(requestTypeName(type)) + " (tx/s)");
    const SimTime bucket = secs(bucket_seconds_);
    if (bucket == 0 || end == 0)
        return series;
    const std::size_t buckets =
        static_cast<std::size_t>((end + bucket - 1) / bucket);
    std::vector<std::uint64_t> counts(buckets, 0);
    for (const Completion &c : per_type_[idx(type)].completions) {
        if (c.finish < end)
            counts[static_cast<std::size_t>(c.finish / bucket)] += 1;
    }
    for (std::size_t b = 0; b < buckets; ++b) {
        series.append(static_cast<SimTime>(b) * bucket + bucket / 2,
                      static_cast<double>(counts[b]) / bucket_seconds_);
    }
    return series;
}

double
ResponseTracker::jops(SimTime from, SimTime to) const
{
    if (to <= from)
        return 0.0;
    std::uint64_t completed = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.finish >= from && c.finish < to)
                completed += 1;
        }
    }
    return static_cast<double>(completed) / toSeconds(to - from);
}

std::uint64_t
ResponseTracker::completedOnNode(std::uint32_t node) const
{
    std::uint64_t total = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.node == node)
                total += 1;
        }
    }
    return total;
}

double
ResponseTracker::nodeJops(std::uint32_t node, SimTime from,
                          SimTime to) const
{
    if (to <= from)
        return 0.0;
    std::uint64_t completed = 0;
    for (const auto &pt : per_type_) {
        for (const Completion &c : pt.completions) {
            if (c.node == node && c.finish >= from && c.finish < to)
                completed += 1;
        }
    }
    return static_cast<double>(completed) / toSeconds(to - from);
}

std::array<SlaVerdict, requestTypeCount>
ResponseTracker::verdicts() const
{
    std::array<SlaVerdict, requestTypeCount> verdicts;
    for (std::size_t t = 0; t < requestTypeCount; ++t) {
        const auto type = static_cast<RequestType>(t);
        SlaVerdict &v = verdicts[t];
        v.type = type;
        v.bound_seconds = slaSeconds(type);
        v.completed = per_type_[t].completions.size();
        v.p90_seconds = per_type_[t].responses.percentile(90.0);
        v.p99_seconds = per_type_[t].responses.percentile(99.0);
        v.pass = v.completed == 0 || v.p90_seconds <= v.bound_seconds;
    }
    return verdicts;
}

bool
ResponseTracker::allPass() const
{
    for (const auto &v : verdicts()) {
        if (!v.pass)
            return false;
    }
    return true;
}

double
ResponseTracker::meanResponseSeconds(RequestType type) const
{
    return per_type_[idx(type)].responses.mean();
}

double
ResponseTracker::p99ResponseSeconds(RequestType type) const
{
    return per_type_[idx(type)].responses.percentile(99.0);
}

} // namespace jasim
