/**
 * @file
 * Request taxonomy of the jas2004-like workload.
 *
 * The Dealer domain issues HTTP requests (Purchase / Manage / Browse);
 * the Manufacturing domain issues RMI work orders. These are the four
 * transaction series of the paper's Figure 2, and the two SLA classes
 * (90% of web requests < 2 s, 90% of RMI requests < 5 s).
 */

#ifndef JASIM_DRIVER_REQUEST_H
#define JASIM_DRIVER_REQUEST_H

#include <cstdint>

#include "sim/types.h"

namespace jasim {

/** The four benchmark request types. */
enum class RequestType : std::uint8_t
{
    Purchase,
    Manage,
    Browse,
    CreateWorkOrder,
};

inline constexpr std::size_t requestTypeCount = 4;

/** Printable request-type name. */
const char *requestTypeName(RequestType type);

/** True for HTTP (dealer) requests; false for RMI (manufacturing). */
constexpr bool
isWebRequest(RequestType type)
{
    return type != RequestType::CreateWorkOrder;
}

/** SLA bound for the 90th percentile response time, in seconds. */
constexpr double
slaSeconds(RequestType type)
{
    return isWebRequest(type) ? 2.0 : 5.0;
}

/** One injected request. */
struct Request
{
    std::uint64_t id = 0;
    RequestType type = RequestType::Browse;
    SimTime arrival = 0;
};

/**
 * Why a request (or one DB attempt of a request) failed. `None` is
 * the success sentinel so completion callbacks can carry a single
 * status value.
 */
enum class ErrorKind : std::uint8_t
{
    None,                //!< success
    NodeDown,            //!< serving node crashed (in-flight or routed-to-dead)
    NoBackend,           //!< balancer had no healthy node to route to
    DbTimeout,           //!< EJB->DB attempt missed its deadline
    DbCircuitOpen,       //!< DB circuit breaker refused the attempt
    PoolTimeout,         //!< connection-pool acquire timed out
    DbRetriesExhausted,  //!< every DB attempt failed
    RecoveryWait,        //!< DB tier is replaying its WAL after a crash
    FailoverWait,        //!< shard blacked out while a replica promotes
    Rejected,            //!< shed by web-tier admission control
    ShedAtLB,            //!< shed by the balancer's in-flight cap
    Partitioned,         //!< cross-side send blocked by a network partition
};

inline constexpr std::size_t errorKindCount = 12;

/** Printable error-kind name. */
const char *errorKindName(ErrorKind kind);

} // namespace jasim

#endif // JASIM_DRIVER_REQUEST_H
