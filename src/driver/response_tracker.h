/**
 * @file
 * Response-time tracking, throughput series, and SLA adjudication.
 *
 * Produces Figure 2 (per-type transaction rate over time) and the
 * pass/fail verdict (90% of web requests under 2 s, 90% of RMI
 * requests under 5 s), plus the JOPS metric.
 */

#ifndef JASIM_DRIVER_RESPONSE_TRACKER_H
#define JASIM_DRIVER_RESPONSE_TRACKER_H

#include <array>

#include "driver/request.h"
#include "stats/percentile.h"
#include "stats/time_series.h"

namespace jasim {

/** Verdict for one request class. */
struct SlaVerdict
{
    RequestType type = RequestType::Browse;
    double p90_seconds = 0.0;
    double bound_seconds = 0.0;
    bool pass = true;
    std::uint64_t completed = 0;
};

/** Collects completions; emits series and verdicts. */
class ResponseTracker
{
  public:
    /** @param bucket seconds per throughput bucket (Figure 2 grain). */
    explicit ResponseTracker(double bucket_seconds = 30.0);

    /** Record a completed request. */
    void complete(const Request &request, SimTime finish);

    /** Completions of a type so far. */
    std::uint64_t completedCount(RequestType type) const;

    std::uint64_t totalCompleted() const;

    /**
     * Throughput series (transactions/s) for a type over [0, end).
     * Buckets with no completions report zero.
     */
    TimeSeries throughputSeries(RequestType type, SimTime end) const;

    /** Overall operations per second over [from, to). */
    double jops(SimTime from, SimTime to) const;

    /** SLA verdicts per type (only steady-state samples if sliced). */
    std::array<SlaVerdict, requestTypeCount> verdicts() const;

    /** True when every type passes its SLA. */
    bool allPass() const;

    /** Mean response time (seconds) for a type. */
    double meanResponseSeconds(RequestType type) const;

  private:
    double bucket_seconds_;
    struct PerType
    {
        PercentileTracker responses; //!< seconds
        std::vector<std::pair<SimTime, std::uint64_t>> completions;
    };
    std::array<PerType, requestTypeCount> per_type_;

    static std::size_t idx(RequestType t)
    {
        return static_cast<std::size_t>(t);
    }
};

} // namespace jasim

#endif // JASIM_DRIVER_RESPONSE_TRACKER_H
