/**
 * @file
 * Response-time tracking, throughput series, and SLA adjudication.
 *
 * Produces Figure 2 (per-type transaction rate over time) and the
 * pass/fail verdict (90% of web requests under 2 s, 90% of RMI
 * requests under 5 s), plus the JOPS metric.
 *
 * Fault-injection runs additionally record failures (per error kind
 * and per node), DB retries, per-node down intervals (availability),
 * and degraded windows (breaker-open / link-degrade / node-down), so
 * chaos benches can report error rate and availability next to
 * throughput. Errors are kept out of the response-time percentiles:
 * a fast failure must not flatter the latency distribution.
 */

#ifndef JASIM_DRIVER_RESPONSE_TRACKER_H
#define JASIM_DRIVER_RESPONSE_TRACKER_H

#include <array>
#include <map>
#include <vector>

#include "driver/request.h"
#include "stats/percentile.h"
#include "stats/time_series.h"

namespace jasim {

/** Verdict for one request class. */
struct SlaVerdict
{
    RequestType type = RequestType::Browse;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0; //!< tail beyond the SLA's own percentile
    double bound_seconds = 0.0;
    bool pass = true;
    std::uint64_t completed = 0;
};

/** Availability roll-up of a fault run. */
struct DegradedSummary
{
    std::size_t intervals = 0; //!< merged degraded windows
    SimTime degraded_us = 0;   //!< total time inside those windows
    double degraded_fraction = 0.0; //!< degraded_us / horizon
};

/** Collects completions; emits series and verdicts. */
class ResponseTracker
{
  public:
    /** Returned by mean/percentile queries with no samples yet. */
    static constexpr double kNoSamples = -1.0;

    /** Node label for failures not attributable to any node. */
    static constexpr std::uint32_t kNoNode =
        static_cast<std::uint32_t>(-1);

    /** @param bucket seconds per throughput bucket (Figure 2 grain). */
    explicit ResponseTracker(double bucket_seconds = 30.0);

    /**
     * Record a completed request. `node` labels which cluster node
     * served it (0 for a single-box SUT), making cluster roll-ups
     * attributable per node.
     */
    void complete(const Request &request, SimTime finish,
                  std::uint32_t node = 0);

    /** Completions of a type so far. */
    std::uint64_t completedCount(RequestType type) const;

    std::uint64_t totalCompleted() const;

    /** Completions served by a given cluster node (any type). */
    std::uint64_t completedOnNode(std::uint32_t node) const;

    /** Operations per second served by one node over [from, to). */
    double nodeJops(std::uint32_t node, SimTime from, SimTime to) const;

    /**
     * Throughput series (transactions/s) for a type over [0, end).
     * Buckets with no completions report zero.
     */
    TimeSeries throughputSeries(RequestType type, SimTime end) const;

    /** Overall operations per second over [from, to). */
    double jops(SimTime from, SimTime to) const;

    /**
     * Goodput over [from, to): completions per second that met their
     * latency bound. `bound_seconds` overrides the per-type SLA bound
     * when > 0 (overload benches use a uniform bound).
     */
    double goodput(SimTime from, SimTime to,
                   double bound_seconds = 0.0) const;

    /**
     * Fraction of a type's completions at or under the latency bound
     * (the type's SLA bound when `bound_seconds` is 0); kNoSamples
     * before the first completion. Shed/errored requests never enter
     * the numerator or denominator — shedding is visible in
     * shedCount()/errorRate(), not here.
     */
    double slaAttainment(RequestType type,
                         double bound_seconds = 0.0) const;

    /** Requests shed by admission control or the balancer cap. */
    std::uint64_t shedCount() const
    {
        return errorCount(ErrorKind::Rejected) +
            errorCount(ErrorKind::ShedAtLB);
    }

    /** SLA verdicts per type (only steady-state samples if sliced). */
    std::array<SlaVerdict, requestTypeCount> verdicts() const;

    /** True when every type passes its SLA. */
    bool allPass() const;

    /**
     * Mean response time (seconds) for a type; kNoSamples before the
     * first completion of that type.
     */
    double meanResponseSeconds(RequestType type) const;

    /**
     * 99th-percentile response time (seconds) for a type; kNoSamples
     * before the first completion of that type.
     */
    double p99ResponseSeconds(RequestType type) const;

    // ---- failure accounting (fault-injection runs) ----

    /**
     * Record a failed request. `node` is the serving node, or
     * kNoNode for balancer-level failures (no healthy backend).
     */
    void error(const Request &request, SimTime finish,
               std::uint32_t node, ErrorKind kind);

    /** Record one DB retry attempt and its proximate cause. */
    void recordRetry(ErrorKind cause);

    std::uint64_t errorCount() const { return total_errors_; }
    std::uint64_t errorCount(ErrorKind kind) const
    {
        return errors_by_kind_[static_cast<std::size_t>(kind)];
    }
    std::uint64_t errorsOnNode(std::uint32_t node) const;
    std::uint64_t retryCount() const { return retries_; }
    std::uint64_t retryCount(ErrorKind cause) const
    {
        return retry_causes_[static_cast<std::size_t>(cause)];
    }

    /** errors / (errors + completions); 0 when nothing finished. */
    double errorRate() const;

    // ---- availability ----

    /** Mark a node down/up at `at` (crash / restart observations). */
    void noteNodeDown(std::uint32_t node, SimTime at);
    void noteNodeUp(std::uint32_t node, SimTime at);

    /**
     * Fraction of [0, horizon) the node was up. Nodes never marked
     * down report 1.0.
     */
    double availability(std::uint32_t node, SimTime horizon) const;

    /** Mark a degraded window (breaker open, link degrade, ...). */
    void noteDegraded(SimTime from, SimTime to);

    /** Record one DB crash->recovery-complete window. */
    void noteDbRecovery(SimTime from, SimTime to);

    std::size_t dbRecoveryCount() const { return recoveries_.size(); }

    /** Total time spent inside DB recovery windows. */
    SimTime dbRecoveryUs() const;

    /**
     * Merged union of degraded windows, node-down intervals, and
     * failover blackouts over [0, horizon).
     */
    DegradedSummary degradedSummary(SimTime horizon) const;

    // ---- failover accounting (replicated DB tier) ----

    /**
     * Record one shard blackout: a primary crashed at `from` and a
     * promoted replica reopened the shard at `to` (0 = still down).
     * Blackouts join the degraded-window union like any other outage.
     */
    void noteFailoverBlackout(std::uint32_t shard, SimTime from,
                              SimTime to);

    /** Blackout windows recorded (across all shards). */
    std::size_t failoverCount() const;

    /** Total blackout time, all shards / one shard (to == horizon cap). */
    SimTime failoverBlackoutUs() const;
    SimTime failoverBlackoutUs(std::uint32_t shard) const;

    /**
     * Fraction of [0, horizon) the shard was serving (1.0 for shards
     * never blacked out).
     */
    double shardAvailability(std::uint32_t shard, SimTime horizon) const;

    // ---- partition / switchover accounting ----

    /** Record one fabric partition window (to == 0: never healed). */
    void notePartitionWindow(SimTime from, SimTime to);

    std::size_t partitionCount() const { return partitions_.size(); }

    /** Total partitioned time over [0, horizon), windows merged. */
    SimTime partitionUs(SimTime horizon) const;

    /**
     * Record one planned switchover's blackout. The window joins the
     * shard's failover blackouts (availability billing) and the
     * switchover count separately from crash/partition failovers.
     */
    void noteSwitchover(std::uint32_t shard, SimTime from, SimTime to);

    std::size_t switchoverCount() const { return switchovers_; }

  private:
    double bucket_seconds_;
    struct Completion
    {
        SimTime finish;
        std::uint32_t node;
        double seconds; //!< response time, for windowed goodput
    };
    struct PerType
    {
        PercentileTracker responses; //!< seconds
        std::vector<Completion> completions;
    };
    std::array<PerType, requestTypeCount> per_type_;

    /** Half-open [from, to) time window; to == 0 means still open. */
    struct Interval
    {
        SimTime from = 0;
        SimTime to = 0;
    };

    std::uint64_t total_errors_ = 0;
    std::array<std::uint64_t, errorKindCount> errors_by_kind_{};
    std::map<std::uint32_t, std::uint64_t> errors_by_node_;
    std::uint64_t retries_ = 0;
    std::array<std::uint64_t, errorKindCount> retry_causes_{};
    std::map<std::uint32_t, std::vector<Interval>> down_intervals_;
    std::vector<Interval> degraded_;
    std::vector<Interval> recoveries_;
    std::map<std::uint32_t, std::vector<Interval>> failover_blackouts_;
    std::vector<Interval> partitions_;
    std::size_t switchovers_ = 0;

    static std::size_t idx(RequestType t)
    {
        return static_cast<std::size_t>(t);
    }

    /**
     * Total covered time of a set of intervals over [0, horizon),
     * overlaps merged first so no instant is billed twice (a failover
     * blackout overlapping a node-down window counts once).
     */
    static SimTime mergedDownUs(const std::vector<Interval> &intervals,
                                SimTime horizon);
};

} // namespace jasim

#endif // JASIM_DRIVER_RESPONSE_TRACKER_H
