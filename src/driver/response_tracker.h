/**
 * @file
 * Response-time tracking, throughput series, and SLA adjudication.
 *
 * Produces Figure 2 (per-type transaction rate over time) and the
 * pass/fail verdict (90% of web requests under 2 s, 90% of RMI
 * requests under 5 s), plus the JOPS metric.
 */

#ifndef JASIM_DRIVER_RESPONSE_TRACKER_H
#define JASIM_DRIVER_RESPONSE_TRACKER_H

#include <array>

#include "driver/request.h"
#include "stats/percentile.h"
#include "stats/time_series.h"

namespace jasim {

/** Verdict for one request class. */
struct SlaVerdict
{
    RequestType type = RequestType::Browse;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0; //!< tail beyond the SLA's own percentile
    double bound_seconds = 0.0;
    bool pass = true;
    std::uint64_t completed = 0;
};

/** Collects completions; emits series and verdicts. */
class ResponseTracker
{
  public:
    /** @param bucket seconds per throughput bucket (Figure 2 grain). */
    explicit ResponseTracker(double bucket_seconds = 30.0);

    /**
     * Record a completed request. `node` labels which cluster node
     * served it (0 for a single-box SUT), making cluster roll-ups
     * attributable per node.
     */
    void complete(const Request &request, SimTime finish,
                  std::uint32_t node = 0);

    /** Completions of a type so far. */
    std::uint64_t completedCount(RequestType type) const;

    std::uint64_t totalCompleted() const;

    /** Completions served by a given cluster node (any type). */
    std::uint64_t completedOnNode(std::uint32_t node) const;

    /** Operations per second served by one node over [from, to). */
    double nodeJops(std::uint32_t node, SimTime from, SimTime to) const;

    /**
     * Throughput series (transactions/s) for a type over [0, end).
     * Buckets with no completions report zero.
     */
    TimeSeries throughputSeries(RequestType type, SimTime end) const;

    /** Overall operations per second over [from, to). */
    double jops(SimTime from, SimTime to) const;

    /** SLA verdicts per type (only steady-state samples if sliced). */
    std::array<SlaVerdict, requestTypeCount> verdicts() const;

    /** True when every type passes its SLA. */
    bool allPass() const;

    /** Mean response time (seconds) for a type. */
    double meanResponseSeconds(RequestType type) const;

    /** 99th-percentile response time (seconds) for a type. */
    double p99ResponseSeconds(RequestType type) const;

  private:
    double bucket_seconds_;
    struct Completion
    {
        SimTime finish;
        std::uint32_t node;
    };
    struct PerType
    {
        PercentileTracker responses; //!< seconds
        std::vector<Completion> completions;
    };
    std::array<PerType, requestTypeCount> per_type_;

    static std::size_t idx(RequestType t)
    {
        return static_cast<std::size_t>(t);
    }
};

} // namespace jasim

#endif // JASIM_DRIVER_RESPONSE_TRACKER_H
