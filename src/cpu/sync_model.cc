#include "cpu/sync_model.h"

#include <cassert>

namespace jasim {

double
SyncModel::noteStore()
{
    if (outstanding_ < config_.srq_entries) {
        ++outstanding_;
        return 0.0;
    }
    // SRQ full: the store stalls dispatch until one entry drains.
    return config_.drain_per_store;
}

void
SyncModel::drainTick()
{
    // Roughly one store drains every couple of instructions; use a
    // fractional credit so the drain rate is smooth.
    drain_credit_ += 0.5;
    while (drain_credit_ >= 1.0 && outstanding_ > 0) {
        --outstanding_;
        drain_credit_ -= 1.0;
    }
    if (outstanding_ == 0)
        drain_credit_ = 0.0;
}

SyncOutcome
SyncModel::issueSync(InstKind kind)
{
    SyncOutcome outcome;
    const double drain =
        config_.drain_per_store * static_cast<double>(outstanding_);
    switch (kind) {
      case InstKind::Sync:
        outcome.stall_cycles = config_.sync_base_cost + drain;
        outcome.srq_occupancy_cycles = outcome.stall_cycles;
        outstanding_ = 0;
        break;
      case InstKind::Lwsync:
        outcome.stall_cycles = config_.lwsync_base_cost + 0.25 * drain;
        outcome.srq_occupancy_cycles = outcome.stall_cycles;
        break;
      case InstKind::Isync:
        outcome.stall_cycles = config_.isync_base_cost;
        // ISYNC does not place a request in the SRQ.
        break;
      default:
        assert(false && "not a sync kind");
    }
    return outcome;
}

} // namespace jasim
