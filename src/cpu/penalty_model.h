/**
 * @file
 * Converts microarchitectural event latencies into visible CPI.
 *
 * An out-of-order core hides much of an isolated L2-hit latency (the
 * paper: "a single L1 DCache miss is often satisfied out of L2 ... and
 * its impact can be hidden (POWER4 can have about 100 instructions in
 * flight), but a burst of L1 DCache misses would ... slow down a
 * processor pipeline"). The penalty model therefore charges each raw
 * latency a *visibility fraction* that depends on the source and on
 * whether the miss arrived inside a burst.
 */

#ifndef JASIM_CPU_PENALTY_MODEL_H
#define JASIM_CPU_PENALTY_MODEL_H

#include "mem/hierarchy.h"
#include "sim/types.h"

namespace jasim {

/** Visibility fractions and base cost. */
struct PenaltyConfig
{
    /** Cycles per instruction with no stalls (measured idle CPI). */
    double base_cpi = 0.7;

    /** Fraction of load-miss latency visible when the miss is isolated. */
    double load_l2_visible = 0.10;
    double load_remote_visible = 0.45;
    double load_l3_visible = 0.18;
    double load_memory_visible = 0.38;

    /** Extra visibility multiplier for misses inside a burst. */
    double burst_multiplier = 1.6;

    /** Stores drain through the SRQ; almost fully hidden. */
    double store_visible = 0.02;

    /** Front-end stalls are hard to hide. */
    double ifetch_visible = 0.50;

    /** Translation penalties stall the access directly. */
    double xlat_visible = 0.6;
};

/** Stateless latency-to-stall conversion. */
class PenaltyModel
{
  public:
    explicit PenaltyModel(const PenaltyConfig &config) : config_(config) {}

    const PenaltyConfig &config() const { return config_; }

    /** Visible stall cycles of a demand load. */
    double loadStall(const MemAccessOutcome &outcome, bool in_burst) const;

    /** Visible stall cycles of a store. */
    double storeStall(const MemAccessOutcome &outcome) const;

    /** Visible stall cycles of an instruction fetch. */
    double fetchStall(const MemAccessOutcome &outcome) const;

    /** Visible stall cycles of a translation penalty. */
    double xlatStall(Cycles penalty) const
    {
        return config_.xlat_visible * static_cast<double>(penalty);
    }

  private:
    PenaltyConfig config_;

    double loadVisibility(DataSource source) const;
};

} // namespace jasim

#endif // JASIM_CPU_PENALTY_MODEL_H
