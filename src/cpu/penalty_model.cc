#include "cpu/penalty_model.h"

namespace jasim {

double
PenaltyModel::loadVisibility(DataSource source) const
{
    switch (source) {
      case DataSource::L1:
        return 0.0;
      case DataSource::L2:
        return config_.load_l2_visible;
      case DataSource::L2_5:
      case DataSource::L2_75Shared:
      case DataSource::L2_75Modified:
        return config_.load_remote_visible;
      case DataSource::L3:
      case DataSource::L3_5:
        return config_.load_l3_visible;
      case DataSource::Memory:
        return config_.load_memory_visible;
    }
    return 0.0;
}

double
PenaltyModel::loadStall(const MemAccessOutcome &outcome, bool in_burst) const
{
    if (outcome.l1_hit)
        return 0.0;
    double stall = loadVisibility(outcome.source) *
        static_cast<double>(outcome.latency);
    if (in_burst)
        stall *= config_.burst_multiplier;
    return stall;
}

double
PenaltyModel::storeStall(const MemAccessOutcome &outcome) const
{
    if (outcome.l1_hit)
        return 0.0;
    return config_.store_visible * static_cast<double>(outcome.latency);
}

double
PenaltyModel::fetchStall(const MemAccessOutcome &outcome) const
{
    if (outcome.l1_hit)
        return 0.0;
    return config_.ifetch_visible * static_cast<double>(outcome.latency);
}

} // namespace jasim
