/**
 * @file
 * The dynamic instruction record exchanged between the synthetic
 * stream generators and the core model.
 *
 * jasim does not interpret an ISA; the stream generators emit dynamic
 * instructions with resolved addresses and outcomes, and the core
 * model charges them against the simulated microarchitecture. The
 * kinds cover everything the paper's counters distinguish, including
 * the PowerPC synchronization primitives.
 */

#ifndef JASIM_CPU_INSTR_H
#define JASIM_CPU_INSTR_H

#include <cstdint>

#include "sim/types.h"

namespace jasim {

/** Dynamic instruction classes. */
enum class InstKind : std::uint8_t
{
    Alu,            //!< fixed-point / FP / logic, no memory or control
    Load,
    Store,
    BranchCond,     //!< conditional branch, direct target
    BranchDirect,   //!< unconditional direct jump
    BranchIndirect, //!< branch-to-CTR other than a call (e.g. switch)
    Call,           //!< direct call (pushes return stack)
    VirtualCall,    //!< indirect call via dispatch table (count cache)
    Return,         //!< blr
    Larx,           //!< load-and-reserve (lwarx/ldarx)
    Stcx,           //!< store-conditional (stwcx/stdcx)
    Sync,           //!< heavyweight sync
    Lwsync,         //!< lightweight sync
    Isync,          //!< instruction sync
};

/** True for kinds that read memory. */
constexpr bool
isLoadKind(InstKind kind)
{
    return kind == InstKind::Load || kind == InstKind::Larx;
}

/** True for kinds that write memory. */
constexpr bool
isStoreKind(InstKind kind)
{
    return kind == InstKind::Store || kind == InstKind::Stcx;
}

/** True for control-transfer kinds. */
constexpr bool
isBranchKind(InstKind kind)
{
    switch (kind) {
      case InstKind::BranchCond:
      case InstKind::BranchDirect:
      case InstKind::BranchIndirect:
      case InstKind::Call:
      case InstKind::VirtualCall:
      case InstKind::Return:
        return true;
      default:
        return false;
    }
}

/** One dynamic instruction. */
struct Instr
{
    InstKind kind = InstKind::Alu;
    Addr pc = 0;          //!< fetch address
    Addr ea = 0;          //!< effective address (memory kinds)
    Addr target = 0;      //!< resolved target (branch kinds)
    Addr return_addr = 0; //!< pc + 4 for calls
    bool taken = false;   //!< conditional branches
};

} // namespace jasim

#endif // JASIM_CPU_INSTR_H
