/**
 * @file
 * SYNC / LWSYNC / ISYNC cost model via store-reorder-queue occupancy.
 *
 * The paper measures "the fraction of cycles when a SYNC request is in
 * the SRQ" (< 1% for user code, ~7% for privileged code). The model
 * charges each sync a drain time proportional to the number of stores
 * still outstanding, and accounts the cycles the sync occupied the
 * SRQ so that fraction can be reported directly.
 */

#ifndef JASIM_CPU_SYNC_MODEL_H
#define JASIM_CPU_SYNC_MODEL_H

#include <cstdint>

#include "cpu/instr.h"
#include "sim/types.h"

namespace jasim {

/** SRQ/sync parameters. */
struct SyncConfig
{
    /** Cycles to drain one outstanding store at the coherence point. */
    double drain_per_store = 3.0;
    /** Fixed cost of a heavyweight sync. */
    double sync_base_cost = 20.0;
    /** Fixed cost of lwsync (ordering only, cheaper on POWER4). */
    double lwsync_base_cost = 4.0;
    /** Fixed cost of isync (pipeline refetch). */
    double isync_base_cost = 8.0;
    /** Stores the SRQ can hold before stores themselves stall. */
    std::uint32_t srq_entries = 32;
};

/** Outcome of issuing a synchronizing instruction. */
struct SyncOutcome
{
    double stall_cycles = 0.0;
    /** Cycles a sync request occupied the SRQ. */
    double srq_occupancy_cycles = 0.0;
};

/** Per-core SRQ state machine (statistical). */
class SyncModel
{
  public:
    explicit SyncModel(const SyncConfig &config) : config_(config) {}

    /** A store enters the SRQ. Returns stall if the SRQ is full. */
    double noteStore();

    /** Background drain: call once per retired instruction. */
    void drainTick();

    /** Issue a sync of the given kind. */
    SyncOutcome issueSync(InstKind kind);

    std::uint32_t outstandingStores() const { return outstanding_; }

  private:
    SyncConfig config_;
    std::uint32_t outstanding_ = 0;
    double drain_credit_ = 0.0;
};

} // namespace jasim

#endif // JASIM_CPU_SYNC_MODEL_H
