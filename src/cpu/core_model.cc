#include "cpu/core_model.h"

#include "hpm/events.h"

namespace jasim {

void
ExecStats::merge(const ExecStats &other)
{
    cycles += other.cycles;
    dispatched += other.dispatched;
    completed += other.completed;
    completion_cycles += other.completion_cycles;
    loads += other.loads;
    stores += other.stores;
    l1d_load_miss += other.l1d_load_miss;
    l1d_store_miss += other.l1d_store_miss;
    for (std::size_t i = 0; i < loads_from.size(); ++i)
        loads_from[i] += other.loads_from[i];
    l1i_miss += other.l1i_miss;
    for (std::size_t i = 0; i < ifetch_from.size(); ++i)
        ifetch_from[i] += other.ifetch_from[i];
    ierat_miss += other.ierat_miss;
    derat_miss += other.derat_miss;
    itlb_miss += other.itlb_miss;
    dtlb_miss += other.dtlb_miss;
    branches += other.branches;
    cond_branches += other.cond_branches;
    cond_mispredict += other.cond_mispredict;
    indirect_branches += other.indirect_branches;
    returns += other.returns;
    return_mispredict += other.return_mispredict;
    target_mispredict += other.target_mispredict;
    btb_miss += other.btb_miss;
    larx += other.larx;
    stcx += other.stcx;
    stcx_fail += other.stcx_fail;
    syncs += other.syncs;
    srq_sync_cycles += other.srq_sync_cycles;
    kernel_sleeps += other.kernel_sleeps;
    l1d_prefetch += other.l1d_prefetch;
    l2_prefetch += other.l2_prefetch;
    stream_alloc += other.stream_alloc;
}

void
ExecStats::exportTo(CounterSet &set, double scale) const
{
    auto put = [&](const char *name, double value) {
        set.add(name, static_cast<std::uint64_t>(value * scale + 0.5));
    };
    put(event::cycles, cycles);
    put(event::instCompleted, static_cast<double>(completed));
    put(event::instDispatched, dispatched);
    put(event::cyclesWithCompletion, completion_cycles);
    put(event::loads, static_cast<double>(loads));
    put(event::stores, static_cast<double>(stores));
    put(event::l1dLoadMiss, static_cast<double>(l1d_load_miss));
    put(event::l1dStoreMiss, static_cast<double>(l1d_store_miss));

    auto src = [&](DataSource s) {
        return static_cast<double>(
            loads_from[static_cast<std::size_t>(s)]);
    };
    put(event::dataFromL2, src(DataSource::L2));
    put(event::dataFromL2_5, src(DataSource::L2_5));
    put(event::dataFromL2_75Shr, src(DataSource::L2_75Shared));
    put(event::dataFromL2_75Mod, src(DataSource::L2_75Modified));
    put(event::dataFromL3, src(DataSource::L3));
    put(event::dataFromL3_5, src(DataSource::L3_5));
    put(event::dataFromMem, src(DataSource::Memory));

    auto ifs = [&](DataSource s) {
        return static_cast<double>(
            ifetch_from[static_cast<std::size_t>(s)]);
    };
    put(event::instFetchL1, ifs(DataSource::L1));
    put(event::instFetchL2,
        ifs(DataSource::L2) + ifs(DataSource::L2_5) +
            ifs(DataSource::L2_75Shared) + ifs(DataSource::L2_75Modified));
    put(event::instFetchL3, ifs(DataSource::L3) + ifs(DataSource::L3_5));
    put(event::instFetchMem, ifs(DataSource::Memory));
    put(event::l1iMiss, static_cast<double>(l1i_miss));

    put(event::ieratMiss, static_cast<double>(ierat_miss));
    put(event::deratMiss, static_cast<double>(derat_miss));
    put(event::itlbMiss, static_cast<double>(itlb_miss));
    put(event::dtlbMiss, static_cast<double>(dtlb_miss));

    put(event::branches, static_cast<double>(branches));
    put(event::condBranches, static_cast<double>(cond_branches));
    put(event::condMispredict, static_cast<double>(cond_mispredict));
    put(event::indirectBranches, static_cast<double>(indirect_branches));
    put(event::targetMispredict, static_cast<double>(target_mispredict));
    put(event::btbMiss, static_cast<double>(btb_miss));

    put(event::larx, static_cast<double>(larx));
    put(event::stcx, static_cast<double>(stcx));
    put(event::stcxFail, static_cast<double>(stcx_fail));
    put(event::syncs, static_cast<double>(syncs));
    put(event::srqSyncCycles, srq_sync_cycles);
    put(event::kernelSleeps, static_cast<double>(kernel_sleeps));

    put(event::l1dPrefetch, static_cast<double>(l1d_prefetch));
    put(event::l2Prefetch, static_cast<double>(l2_prefetch));
    put(event::streamAlloc, static_cast<double>(stream_alloc));
}

CoreModel::CoreModel(std::size_t core_id, const CoreConfig &config,
                     MemoryHierarchy &hierarchy, const AddressSpace &space,
                     std::uint64_t seed)
    : core_id_(core_id), config_(config), mem_(hierarchy),
      penalty_(config.penalty), xlat_(config.xlat, space),
      branch_(config.branch), sync_(config.sync),
      lock_(config.lock, seed ^ 0x10ccull), rng_(seed)
{
}

void
CoreModel::chargeWrongPath(ExecStats &stats, bool pollute, Addr near_pc)
{
    stats.dispatched += config_.wrongpath_dispatch;
    if (!pollute)
        return;
    // A target misprediction fetches useless lines near (but not at)
    // the right path, evicting useful instructions.
    for (std::uint32_t i = 0; i < config_.pollution_fetches; ++i) {
        const Addr wrong = (near_pc ^ (rng_() & 0xffffu)) & ~Addr{3};
        mem_.fetch(core_id_, wrong);
    }
}

void
CoreModel::execute(const Instr &inst, ExecStats &stats)
{
    double stall = 0.0;
    ++stats.completed;
    stats.dispatched += config_.base_dispatch_factor;
    stats.completion_cycles += 1.0 / config_.completion_group;

    // --- Instruction side -------------------------------------------------
    {
        const XlatOutcome xo = xlat_.translateInst(inst.pc);
        if (!xo.erat_hit) {
            ++stats.ierat_miss;
            if (!xo.tlb_hit)
                ++stats.itlb_miss;
            stall += penalty_.xlatStall(xo.penalty);
        }
        const MemAccessOutcome mo = mem_.fetch(core_id_, inst.pc);
        if (!mo.l1_hit)
            ++stats.l1i_miss;
        ++stats.ifetch_from[static_cast<std::size_t>(mo.source)];
        stall += penalty_.fetchStall(mo);
    }

    // --- Kind-specific behaviour ------------------------------------------
    switch (inst.kind) {
      case InstKind::Alu:
        break;

      case InstKind::Load:
      case InstKind::Larx: {
        const XlatOutcome xo = xlat_.translateData(inst.ea);
        if (!xo.erat_hit) {
            ++stats.derat_miss;
            if (!xo.tlb_hit)
                ++stats.dtlb_miss;
            stall += penalty_.xlatStall(xo.penalty);
            stats.dispatched += xo.redispatches;
        }
        const MemAccessOutcome mo = mem_.load(core_id_, inst.ea);
        ++stats.loads;
        const bool in_burst = insts_since_miss_ <= config_.burst_window;
        if (!mo.l1_hit) {
            ++stats.l1d_load_miss;
            ++stats.loads_from[static_cast<std::size_t>(mo.source)];
            insts_since_miss_ = 0;
        }
        stall += penalty_.loadStall(mo, in_burst);
        stats.l1d_prefetch += mo.l1_prefetches;
        stats.l2_prefetch += mo.l2_prefetches;
        if (mo.stream_allocated)
            ++stats.stream_alloc;
        if (inst.kind == InstKind::Larx) {
            ++stats.larx;
            lock_.noteLarx();
        }
        break;
      }

      case InstKind::Store:
      case InstKind::Stcx: {
        const XlatOutcome xo = xlat_.translateData(inst.ea);
        if (!xo.erat_hit) {
            ++stats.derat_miss;
            if (!xo.tlb_hit)
                ++stats.dtlb_miss;
            stall += penalty_.xlatStall(xo.penalty);
        }
        const MemAccessOutcome mo = mem_.store(core_id_, inst.ea);
        ++stats.stores;
        if (!mo.l1_hit)
            ++stats.l1d_store_miss;
        stall += penalty_.storeStall(mo);
        stall += sync_.noteStore();
        if (inst.kind == InstKind::Stcx) {
            ++stats.stcx;
            const StcxOutcome so = lock_.resolveStcx();
            stats.stcx_fail += so.retries;
            if (so.kernel_sleep)
                ++stats.kernel_sleeps;
            stall += so.stall_cycles;
        }
        break;
      }

      case InstKind::BranchCond: {
        ++stats.branches;
        ++stats.cond_branches;
        const BranchOutcome bo =
            branch_.conditional(inst.pc, inst.taken, inst.target);
        if (!bo.direction_correct) {
            ++stats.cond_mispredict;
            chargeWrongPath(stats, false, inst.pc);
        } else if (!bo.target_correct) {
            ++stats.btb_miss;
        }
        stall += static_cast<double>(bo.penalty);
        break;
      }

      case InstKind::BranchDirect: {
        ++stats.branches;
        const BranchOutcome bo = branch_.direct(inst.pc, inst.target);
        if (!bo.target_correct)
            ++stats.btb_miss;
        stall += static_cast<double>(bo.penalty);
        break;
      }

      case InstKind::Call: {
        ++stats.branches;
        const BranchOutcome bo =
            branch_.call(inst.pc, inst.target, inst.return_addr);
        if (!bo.target_correct)
            ++stats.btb_miss;
        stall += static_cast<double>(bo.penalty);
        break;
      }

      case InstKind::BranchIndirect:
      case InstKind::VirtualCall: {
        ++stats.branches;
        ++stats.indirect_branches;
        const BranchOutcome bo = inst.kind == InstKind::VirtualCall
            ? branch_.virtualCall(inst.pc, inst.target, inst.return_addr)
            : branch_.indirect(inst.pc, inst.target);
        if (!bo.target_correct) {
            ++stats.target_mispredict;
            chargeWrongPath(stats, true, inst.target);
        }
        stall += static_cast<double>(bo.penalty);
        break;
      }

      case InstKind::Return: {
        ++stats.branches;
        ++stats.returns;
        const BranchOutcome bo = branch_.ret(inst.pc, inst.target);
        if (!bo.target_correct) {
            ++stats.return_mispredict;
            chargeWrongPath(stats, false, inst.target);
        }
        stall += static_cast<double>(bo.penalty);
        break;
      }

      case InstKind::Sync:
      case InstKind::Lwsync:
      case InstKind::Isync: {
        const SyncOutcome so = sync_.issueSync(inst.kind);
        ++stats.syncs;
        stats.srq_sync_cycles += so.srq_occupancy_cycles;
        stall += so.stall_cycles;
        break;
      }
    }

    sync_.drainTick();
    if (insts_since_miss_ != ~0ull)
        ++insts_since_miss_;
    stats.cycles += config_.penalty.base_cpi + stall;
}

} // namespace jasim
