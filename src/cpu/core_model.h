/**
 * @file
 * The per-core execution model.
 *
 * Consumes dynamic instructions from the synthetic stream generators
 * and charges them against the simulated structures: L1s and the
 * shared hierarchy, IERAT/DERAT/TLB, the branch unit, the SRQ/sync
 * model and the lock model. Produces the full set of HPM-style
 * counters plus a cycle count, from which CPI and the speculation
 * (dispatched/completed) rate fall out.
 */

#ifndef JASIM_CPU_CORE_MODEL_H
#define JASIM_CPU_CORE_MODEL_H

#include <array>
#include <cstdint>

#include "branch/branch_unit.h"
#include "cpu/instr.h"
#include "cpu/lock_model.h"
#include "cpu/penalty_model.h"
#include "cpu/sync_model.h"
#include "mem/hierarchy.h"
#include "stats/counter.h"
#include "xlat/translation_unit.h"

namespace jasim {

/** Aggregated execution statistics (one window or one component). */
struct ExecStats
{
    double cycles = 0.0;
    double dispatched = 0.0;
    std::uint64_t completed = 0;
    double completion_cycles = 0.0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1d_load_miss = 0;
    std::uint64_t l1d_store_miss = 0;
    /** Load-miss fills by DataSource (index = enum value). */
    std::array<std::uint64_t, 8> loads_from{};

    std::uint64_t l1i_miss = 0;
    std::array<std::uint64_t, 8> ifetch_from{};

    std::uint64_t ierat_miss = 0;
    std::uint64_t derat_miss = 0;
    std::uint64_t itlb_miss = 0;
    std::uint64_t dtlb_miss = 0;

    std::uint64_t branches = 0;
    std::uint64_t cond_branches = 0;
    std::uint64_t cond_mispredict = 0;
    std::uint64_t indirect_branches = 0;
    std::uint64_t returns = 0;
    std::uint64_t return_mispredict = 0;
    std::uint64_t target_mispredict = 0;
    std::uint64_t btb_miss = 0;

    std::uint64_t larx = 0;
    std::uint64_t stcx = 0;
    std::uint64_t stcx_fail = 0;
    std::uint64_t syncs = 0;
    double srq_sync_cycles = 0.0;
    std::uint64_t kernel_sleeps = 0;

    std::uint64_t l1d_prefetch = 0;
    std::uint64_t l2_prefetch = 0;
    std::uint64_t stream_alloc = 0;

    /** CPI over this accumulation; 0 when nothing completed. */
    double cpi() const
    {
        return completed == 0 ? 0.0
                              : cycles / static_cast<double>(completed);
    }

    /** Dispatched per completed instruction (speculation rate). */
    double speculationRate() const
    {
        return completed == 0
            ? 0.0
            : dispatched / static_cast<double>(completed);
    }

    /** Accumulate another stats block into this one. */
    void merge(const ExecStats &other);

    /**
     * Export every counter into a CounterSet under canonical HPM
     * names, scaling integer counts by `scale` (used to blow a sampled
     * stream up to the nominal per-window instruction volume).
     */
    void exportTo(CounterSet &set, double scale = 1.0) const;
};

/** Core execution parameters beyond the sub-model configs. */
struct CoreConfig
{
    PenaltyConfig penalty;
    SyncConfig sync;
    LockConfig lock;
    BranchConfig branch;
    XlatConfig xlat;

    /** Dispatch slots consumed per completed instruction with no
     *  speculation (group formation, cracking, reissues). */
    double base_dispatch_factor = 2.0;
    /** Wrong-path instructions dispatched per mispredicted branch. */
    double wrongpath_dispatch = 24.0;
    /** Wrong-path I-fetches performed after a target mispredict. */
    std::uint32_t pollution_fetches = 2;
    /** Window (instructions) within which L1D misses form a burst. */
    std::uint32_t burst_window = 8;
    /** Average instructions completing per completion cycle. */
    double completion_group = 1.7;
};

/**
 * One simulated core.
 *
 * The MemoryHierarchy and AddressSpace are shared across cores and
 * owned by the caller; translation, branch and lock state are private
 * per core, as in hardware.
 */
class CoreModel
{
  public:
    CoreModel(std::size_t core_id, const CoreConfig &config,
              MemoryHierarchy &hierarchy, const AddressSpace &space,
              std::uint64_t seed);

    /** Execute one dynamic instruction, accumulating into stats. */
    void execute(const Instr &inst, ExecStats &stats);

    std::size_t coreId() const { return core_id_; }
    const CoreConfig &config() const { return config_; }

    /** Flush translation state (used by page-size ablations). */
    void flushTranslation() { xlat_.flush(); }

  private:
    std::size_t core_id_;
    CoreConfig config_;
    MemoryHierarchy &mem_;
    PenaltyModel penalty_;
    TranslationUnit xlat_;
    BranchUnit branch_;
    SyncModel sync_;
    LockModel lock_;
    Rng rng_;

    /** Instructions since the last L1D load miss (burst detection). */
    std::uint64_t insts_since_miss_ = ~0ull;

    void chargeWrongPath(ExecStats &stats, bool pollute, Addr near_pc);
};

} // namespace jasim

#endif // JASIM_CPU_CORE_MODEL_H
