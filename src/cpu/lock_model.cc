#include "cpu/lock_model.h"

namespace jasim {

StcxOutcome
LockModel::resolveStcx()
{
    StcxOutcome outcome;
    while (rng_.chance(config_.stcx_fail_probability)) {
        ++outcome.retries;
        outcome.stall_cycles += config_.spin_cost;
        if (rng_.chance(config_.kernel_sleep_probability /
                        config_.stcx_fail_probability)) {
            outcome.kernel_sleep = true;
            outcome.stall_cycles += config_.kernel_sleep_cost;
            break;
        }
        if (outcome.retries >= 16)
            break; // bounded spin before the OS would intervene
    }
    outcome.success = true; // acquisition eventually succeeds
    return outcome;
}

} // namespace jasim
