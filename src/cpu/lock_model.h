/**
 * @file
 * LARX/STCX reservation and lock-contention model.
 *
 * A LARX creates a reservation; the matching STCX succeeds unless the
 * reservation was lost to another core's store. The paper estimates
 * ~20 extra instructions around each LARX for a lock acquisition and
 * observes ~2% of all cycles in pthread_mutex_lock -- frequent
 * acquisition, little contention. The model reproduces both: a
 * per-acquisition contention probability decides STCX failure and
 * (rarely) a kernel futex-style sleep.
 */

#ifndef JASIM_CPU_LOCK_MODEL_H
#define JASIM_CPU_LOCK_MODEL_H

#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace jasim {

/** Lock behaviour parameters. */
struct LockConfig
{
    /** Probability a reservation is lost (STCX must retry). */
    double stcx_fail_probability = 0.015;
    /** Probability a contended acquisition escalates to the kernel. */
    double kernel_sleep_probability = 0.002;
    /** Spin cost per failed STCX attempt (cycles). */
    double spin_cost = 40.0;
    /** Cost of a kernel sleep/wake round trip (cycles). */
    double kernel_sleep_cost = 4000.0;
};

/** Outcome of resolving one STCX. */
struct StcxOutcome
{
    bool success = true;
    std::uint32_t retries = 0;     //!< failed attempts before success
    double stall_cycles = 0.0;
    bool kernel_sleep = false;
};

/** Statistical reservation/contention model (per core). */
class LockModel
{
  public:
    LockModel(const LockConfig &config, std::uint64_t seed)
        : config_(config), rng_(seed) {}

    /** Note a LARX (creates a reservation; no cost beyond the load). */
    void noteLarx() { ++larx_count_; }

    /** Resolve the STCX paired with the last LARX. */
    StcxOutcome resolveStcx();

    std::uint64_t larxCount() const { return larx_count_; }

    const LockConfig &config() const { return config_; }

  private:
    LockConfig config_;
    Rng rng_;
    std::uint64_t larx_count_ = 0;
};

} // namespace jasim

#endif // JASIM_CPU_LOCK_MODEL_H
