#include "was/thread_pool.h"

#include <cassert>

namespace jasim {

ThreadPool::ThreadPool(EventQueue &queue, std::size_t threads,
                       std::string name)
    : queue_(queue), threads_(threads), name_(std::move(name))
{
    assert(threads > 0);
}

void
ThreadPool::submit(Work work)
{
    if (busy_ < threads_) {
        dispatch(std::move(work));
    } else {
        waiting_.push_back(std::move(work));
        peak_queue_ = std::max(peak_queue_, waiting_.size());
    }
}

void
ThreadPool::dispatch(Work work)
{
    ++busy_;
    ++dispatched_;
    work(queue_.now(), [this] { release(); });
}

void
ThreadPool::release()
{
    assert(busy_ > 0);
    --busy_;
    if (!waiting_.empty()) {
        Work next = std::move(waiting_.front());
        waiting_.pop_front();
        dispatch(std::move(next));
    }
}

} // namespace jasim
