#include "was/application.h"

#include <cassert>
#include <string>

namespace jasim {

namespace {

/** Population scale per IR unit. */
constexpr double customersPerIr = 1000.0;
constexpr double vehiclesPerIr = 2000.0;
constexpr double inventoryPerIr = 1000.0;
constexpr double ordersPerIr = 1500.0;
constexpr double workordersPerIr = 200.0;

/** Key-popularity skew of the application's accesses. */
constexpr double keyZipfS = 0.50;

} // namespace

Jas2004Application::Jas2004Application(const DbConfig &db_config,
                                       double injection_rate,
                                       std::uint64_t seed)
    : db_(db_config), rng_(seed),
      customers_(static_cast<std::uint32_t>(
          customersPerIr * injection_rate)),
      vehicles_(static_cast<std::uint32_t>(
          vehiclesPerIr * injection_rate)),
      inventory_(static_cast<std::uint32_t>(
          inventoryPerIr * injection_rate)),
      orders_(static_cast<std::uint32_t>(ordersPerIr * injection_rate)),
      workorders_(static_cast<std::uint32_t>(
          workordersPerIr * injection_rate)),
      customer_keys_(std::max<std::size_t>(customers_, 1), keyZipfS),
      vehicle_keys_(std::max<std::size_t>(vehicles_, 1), keyZipfS),
      inventory_keys_(std::max<std::size_t>(inventory_, 1), keyZipfS)
{
    assert(injection_rate > 0.0);
    createSchema();
    populate(injection_rate);
    buildProfiles();
}

void
Jas2004Application::createSchema()
{
    db_.createTable(Schema{"customer",
                           {{"id", ColumnType::Integer},
                            {"name", ColumnType::Text},
                            {"region", ColumnType::Integer}}});
    db_.createTable(Schema{"vehicle",
                           {{"id", ColumnType::Integer},
                            {"model", ColumnType::Text},
                            {"price", ColumnType::Integer},
                            {"category", ColumnType::Integer}}});
    db_.createTable(Schema{"inventory",
                           {{"id", ColumnType::Integer},
                            {"vehicle_id", ColumnType::Integer},
                            {"quantity", ColumnType::Integer},
                            {"site", ColumnType::Integer}}});
    db_.createTable(Schema{"orders",
                           {{"id", ColumnType::Integer},
                            {"customer_id", ColumnType::Integer},
                            {"vehicle_id", ColumnType::Integer},
                            {"quantity", ColumnType::Integer},
                            {"status", ColumnType::Integer}}});
    db_.createTable(Schema{"workorder",
                           {{"id", ColumnType::Integer},
                            {"assembly_id", ColumnType::Integer},
                            {"quantity", ColumnType::Integer},
                            {"status", ColumnType::Integer}}});
}

void
Jas2004Application::populate(double injection_rate)
{
    (void)injection_rate;
    const auto customer_t = *db_.tableId("customer");
    const auto vehicle_t = *db_.tableId("vehicle");
    const auto inventory_t = *db_.tableId("inventory");
    const auto orders_t = *db_.tableId("orders");
    const auto workorder_t = *db_.tableId("workorder");

    auto batched = [this](std::uint32_t count, auto &&insert_one) {
        TxnId txn = db_.begin();
        for (std::uint32_t i = 0; i < count; ++i) {
            insert_one(txn, i);
            ++rows_loaded_;
            if ((i + 1) % 1024 == 0) {
                db_.commit(txn);
                txn = db_.begin();
            }
        }
        db_.commit(txn);
    };

    batched(customers_, [&](TxnId txn, std::uint32_t i) {
        db_.insert(txn, customer_t,
                   Row{std::int64_t(i),
                       std::string("customer-") + std::to_string(i),
                       std::int64_t(i % 16)});
    });
    batched(vehicles_, [&](TxnId txn, std::uint32_t i) {
        db_.insert(txn, vehicle_t,
                   Row{std::int64_t(i),
                       std::string("model-") + std::to_string(i % 500),
                       std::int64_t(15000 + (i * 37) % 60000),
                       std::int64_t(i % 12)});
    });
    batched(inventory_, [&](TxnId txn, std::uint32_t i) {
        db_.insert(txn, inventory_t,
                   Row{std::int64_t(i),
                       std::int64_t(i % std::max(vehicles_, 1u)),
                       std::int64_t(100 + i % 900),
                       std::int64_t(i % 8)});
    });
    batched(orders_, [&](TxnId txn, std::uint32_t i) {
        db_.insert(txn, orders_t,
                   Row{std::int64_t(i),
                       std::int64_t(i % std::max(customers_, 1u)),
                       std::int64_t(i % std::max(vehicles_, 1u)),
                       std::int64_t(1 + i % 4), std::int64_t(0)});
    });
    batched(workorders_, [&](TxnId txn, std::uint32_t i) {
        db_.insert(txn, workorder_t,
                   Row{std::int64_t(i),
                       std::int64_t(i % std::max(inventory_, 1u)),
                       std::int64_t(1 + i % 8), std::int64_t(0)});
    });
    next_order_id_ = orders_;
    next_workorder_id_ = workorders_;

    db_.createSecondaryIndex(inventory_t, "vehicle_id");
    db_.createSecondaryIndex(orders_t, "customer_id");
}

void
Jas2004Application::buildProfiles()
{
    auto &browse =
        profiles_[static_cast<std::size_t>(RequestType::Browse)];
    browse.was_jit_us = 9600;
    browse.was_other_us = 8600;
    browse.web_us = 3800;
    browse.db_us = 6000;
    browse.kernel_us = 6200;
    browse.alloc_bytes = 300 * 1024;
    browse.beans = BeanPlan{3, 4};
    browse.response_kb = 8.0;
    browse.method_invocations = 1500;

    auto &purchase =
        profiles_[static_cast<std::size_t>(RequestType::Purchase)];
    purchase.was_jit_us = 16300;
    purchase.was_other_us = 14800;
    purchase.web_us = 5000;
    purchase.db_us = 10400;
    purchase.kernel_us = 10700;
    purchase.alloc_bytes = 550 * 1024;
    purchase.beans = BeanPlan{5, 9};
    purchase.response_kb = 6.0;
    purchase.method_invocations = 2600;

    auto &manage =
        profiles_[static_cast<std::size_t>(RequestType::Manage)];
    manage.was_jit_us = 15300;
    manage.was_other_us = 13600;
    manage.web_us = 4500;
    manage.db_us = 9600;
    manage.kernel_us = 9700;
    manage.alloc_bytes = 500 * 1024;
    manage.beans = BeanPlan{4, 7};
    manage.response_kb = 6.0;
    manage.method_invocations = 2400;

    auto &workorder = profiles_[static_cast<std::size_t>(
        RequestType::CreateWorkOrder)];
    workorder.was_jit_us = 19800;
    workorder.was_other_us = 17900;
    workorder.web_us = 0;
    workorder.db_us = 12100;
    workorder.kernel_us = 14500;
    workorder.alloc_bytes = 700 * 1024;
    workorder.beans = BeanPlan{6, 11};
    workorder.response_kb = 0.0;
    workorder.method_invocations = 3200;
}

void
Jas2004Application::enableAudit()
{
    assert(!audit_on_);
    audit_table_ = db_.createTable(
        Schema{"audit",
               {{"token", ColumnType::Integer},
                {"request_type", ColumnType::Integer}}});
    audit_on_ = true;
}

void
Jas2004Application::stampAudit(TxnId txn, RequestType type,
                               TxnDbOutcome &outcome)
{
    if (!audit_on_)
        return;
    outcome.audit_token = static_cast<std::uint64_t>(++next_audit_token_);
    outcome.cost.add(db_.insert(
        txn, audit_table_,
        Row{next_audit_token_,
            std::int64_t(static_cast<std::uint8_t>(type))}));
}

void
Jas2004Application::finishAudit(TxnDbOutcome &outcome)
{
    if (!audit_on_)
        return;
    outcome.commit_lsn = db_.lastCommitLsn();
    outcome.wal_issued_lsn = db_.wal().issuedLsn();
}

std::int64_t
Jas2004Application::pickCustomer()
{
    return static_cast<std::int64_t>(customer_keys_(rng_));
}

std::int64_t
Jas2004Application::pickVehicle()
{
    return static_cast<std::int64_t>(vehicle_keys_(rng_));
}

std::int64_t
Jas2004Application::pickInventory()
{
    return static_cast<std::int64_t>(inventory_keys_(rng_));
}

TxnDbOutcome
Jas2004Application::runTransaction(RequestType type)
{
    switch (type) {
      case RequestType::Browse: return runBrowse();
      case RequestType::Purchase: return runPurchase();
      case RequestType::Manage: return runManage();
      case RequestType::CreateWorkOrder: return runCreateWorkOrder();
    }
    return {};
}

TxnDbOutcome
Jas2004Application::runBrowse()
{
    TxnDbOutcome outcome;
    const auto vehicle_t = *db_.tableId("vehicle");
    const auto inventory_t = *db_.tableId("inventory");
    const auto customer_t = *db_.tableId("customer");

    for (int i = 0; i < 6; ++i)
        db_.pointSelect(vehicle_t, pickVehicle(), outcome.cost);
    for (int i = 0; i < 2; ++i) {
        db_.selectBySecondary(inventory_t, "vehicle_id", pickVehicle(),
                              outcome.cost);
    }
    db_.pointSelect(customer_t, pickCustomer(), outcome.cost);
    return outcome;
}

TxnDbOutcome
Jas2004Application::runPurchase()
{
    TxnDbOutcome outcome;
    const auto customer_t = *db_.tableId("customer");
    const auto vehicle_t = *db_.tableId("vehicle");
    const auto inventory_t = *db_.tableId("inventory");
    const auto orders_t = *db_.tableId("orders");

    const TxnId txn = db_.begin();
    const std::int64_t customer = pickCustomer();
    db_.pointSelect(customer_t, customer, outcome.cost);
    const std::int64_t vehicle = pickVehicle();
    db_.pointSelect(vehicle_t, vehicle, outcome.cost);
    db_.pointSelect(vehicle_t, pickVehicle(), outcome.cost);
    db_.selectBySecondary(inventory_t, "vehicle_id", vehicle,
                          outcome.cost);

    outcome.cost.add(db_.insert(
        txn, orders_t,
        Row{next_order_id_++, customer, vehicle,
            std::int64_t(1 + static_cast<std::int64_t>(rng_.below(4))),
            std::int64_t(0)}));

    const std::int64_t inv = pickInventory();
    const auto inv_row = db_.pointSelect(inventory_t, inv, outcome.cost);
    if (inv_row) {
        Row updated = *inv_row;
        auto &qty = std::get<std::int64_t>(updated[2]);
        qty = qty > 0 ? qty - 1 : 500;
        outcome.cost.add(
            db_.updateByKey(txn, inventory_t, inv, std::move(updated)));
    }
    stampAudit(txn, RequestType::Purchase, outcome);
    outcome.cost.add(db_.commit(txn));
    finishAudit(outcome);
    return outcome;
}

TxnDbOutcome
Jas2004Application::runManage()
{
    TxnDbOutcome outcome;
    const auto customer_t = *db_.tableId("customer");
    const auto orders_t = *db_.tableId("orders");

    const TxnId txn = db_.begin();
    const std::int64_t customer = pickCustomer();
    db_.pointSelect(customer_t, customer, outcome.cost);
    const auto open_orders = db_.selectBySecondary(
        orders_t, "customer_id", customer, outcome.cost);
    std::size_t updated = 0;
    for (const auto &order : open_orders) {
        if (updated >= 2)
            break;
        Row row = order;
        std::get<std::int64_t>(row[4]) += 1; // advance status
        const std::int64_t order_id = std::get<std::int64_t>(row[0]);
        outcome.cost.add(
            db_.updateByKey(txn, orders_t, order_id, std::move(row)));
        ++updated;
    }
    stampAudit(txn, RequestType::Manage, outcome);
    outcome.cost.add(db_.commit(txn));
    finishAudit(outcome);
    return outcome;
}

TxnDbOutcome
Jas2004Application::runCreateWorkOrder()
{
    TxnDbOutcome outcome;
    const auto inventory_t = *db_.tableId("inventory");
    const auto vehicle_t = *db_.tableId("vehicle");
    const auto workorder_t = *db_.tableId("workorder");

    const TxnId txn = db_.begin();
    outcome.cost.add(db_.insert(
        txn, workorder_t,
        Row{next_workorder_id_++, pickInventory(),
            std::int64_t(1 + static_cast<std::int64_t>(rng_.below(8))),
            std::int64_t(0)}));
    for (int i = 0; i < 3; ++i)
        db_.pointSelect(inventory_t, pickInventory(), outcome.cost);
    db_.pointSelect(vehicle_t, pickVehicle(), outcome.cost);
    for (int i = 0; i < 2; ++i) {
        const std::int64_t inv = pickInventory();
        const auto row = db_.pointSelect(inventory_t, inv, outcome.cost);
        if (row) {
            Row updated = *row;
            std::get<std::int64_t>(updated[2]) += 1;
            outcome.cost.add(db_.updateByKey(txn, inventory_t, inv,
                                             std::move(updated)));
        }
    }
    stampAudit(txn, RequestType::CreateWorkOrder, outcome);
    outcome.cost.add(db_.commit(txn));
    finishAudit(outcome);
    return outcome;
}

} // namespace jasim
