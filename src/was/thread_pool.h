/**
 * @file
 * Application-server thread pool.
 *
 * WebSphere dispatches each request onto a bounded worker pool;
 * saturation shows up as queueing here before it shows up anywhere
 * else. Work items are asynchronous: they receive their start time
 * and a completion callback to invoke (at the simulated time they
 * finish), releasing the thread for the next queued request.
 */

#ifndef JASIM_WAS_THREAD_POOL_H
#define JASIM_WAS_THREAD_POOL_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.h"

namespace jasim {

/** Bounded pool of simulated worker threads. */
class ThreadPool
{
  public:
    /** Invoked by the work when it has finished (releases the thread). */
    using Done = std::function<void()>;

    /**
     * A unit of work: receives its start time and the completion
     * callback. The callback must be invoked exactly once, at the
     * simulated time the work completes.
     */
    using Work = std::function<void(SimTime start, Done done)>;

    ThreadPool(EventQueue &queue, std::size_t threads, std::string name);

    /** Submit work; runs immediately if a thread is free. */
    void submit(Work work);

    std::size_t busy() const { return busy_; }
    std::size_t queued() const { return waiting_.size(); }
    std::size_t peakQueue() const { return peak_queue_; }
    std::uint64_t dispatched() const { return dispatched_; }
    const std::string &name() const { return name_; }

  private:
    EventQueue &queue_;
    std::size_t threads_;
    std::string name_;
    std::size_t busy_ = 0;
    std::deque<Work> waiting_;
    std::size_t peak_queue_ = 0;
    std::uint64_t dispatched_ = 0;

    void dispatch(Work work);
    void release();
};

} // namespace jasim

#endif // JASIM_WAS_THREAD_POOL_H
