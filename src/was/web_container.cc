#include "was/web_container.h"

#include <cassert>

namespace jasim {

double
WebContainer::handle(RequestType type, double response_kb)
{
    assert(isWebRequest(type));
    (void)type;
    const double cost = config_.parse_us + config_.respond_us +
        config_.per_kb_us * response_kb;
    ++handled_;
    total_us_ += cost;
    return cost;
}

} // namespace jasim
