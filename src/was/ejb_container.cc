#include "was/ejb_container.h"

namespace jasim {

double
EjbContainer::invoke(const BeanPlan &plan)
{
    const double cost = config_.txn_demarcation_us +
        config_.session_call_us * plan.session_calls +
        config_.entity_call_us * plan.entity_calls;
    session_calls_ += plan.session_calls;
    entity_calls_ += plan.entity_calls;
    ++transactions_;
    total_us_ += cost;
    return cost;
}

} // namespace jasim
