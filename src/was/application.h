/**
 * @file
 * The jas2004-like J2EE application.
 *
 * Owns the database (schema + IR-scaled population, as in the real
 * benchmark, where busier servers get larger initial databases) and
 * defines each request type's transaction recipe: the DB operations,
 * the bean-call plan, the response payload and the Java allocation
 * volume, plus the per-component CPU service demands.
 */

#ifndef JASIM_WAS_APPLICATION_H
#define JASIM_WAS_APPLICATION_H

#include <array>
#include <cstdint>

#include "db/database.h"
#include "driver/request.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "was/ejb_container.h"

namespace jasim {

/** Per-request-type service demands and behaviour. */
struct TxnProfile
{
    /** CPU microseconds by component (means; noise applied by SUT). */
    double was_jit_us = 0.0;   //!< app + container JITed code
    double was_other_us = 0.0; //!< interpreter/JVM/native libraries
    double web_us = 0.0;       //!< web server process (0 for RMI)
    double db_us = 0.0;        //!< DB2 engine CPU
    double kernel_us = 0.0;    //!< syscalls, network, copies

    std::uint64_t alloc_bytes = 0; //!< Java allocation per txn
    BeanPlan beans;
    double response_kb = 0.0;
    /** Java method invocations executed per transaction (JIT warmup). */
    std::uint32_t method_invocations = 0;
};

/** Outcome of the data tier for one transaction. */
struct TxnDbOutcome
{
    DbCost cost;
    bool ok = true;

    // Durability-audit fields, populated only when the application's
    // audit is enabled and the transaction wrote (0 otherwise).
    std::uint64_t audit_token = 0;   //!< unique per committed write txn
    std::uint64_t commit_lsn = 0;    //!< this txn's Commit record
    std::uint64_t wal_issued_lsn = 0; //!< force issued at commit time
};

/** The application: schema, data, recipes. */
class Jas2004Application
{
  public:
    /**
     * @param db_config engine sizing.
     * @param injection_rate scales the initial population.
     */
    Jas2004Application(const DbConfig &db_config, double injection_rate,
                       std::uint64_t seed);

    /** Run the data-tier work of one transaction. */
    TxnDbOutcome runTransaction(RequestType type);

    /** Service-demand profile of a request type. */
    const TxnProfile &profile(RequestType type) const
    {
        return profiles_[static_cast<std::size_t>(type)];
    }

    Database &database() { return db_; }
    const Database &database() const { return db_; }

    std::uint64_t rowsLoaded() const { return rows_loaded_; }

    /**
     * Create the audit table and start stamping every write
     * transaction with a unique token (one extra audit-row insert per
     * write txn). Call before Database::enableRecovery() so the empty
     * audit table is part of the stable baseline.
     */
    void enableAudit();
    bool auditEnabled() const { return audit_on_; }
    std::uint32_t auditTable() const { return audit_table_; }

  private:
    Database db_;
    Rng rng_;
    std::array<TxnProfile, requestTypeCount> profiles_;

    std::uint32_t customers_ = 0;
    std::uint32_t vehicles_ = 0;
    std::uint32_t inventory_ = 0;
    std::uint32_t orders_ = 0;
    std::uint32_t workorders_ = 0;

    std::int64_t next_order_id_ = 0;
    std::int64_t next_workorder_id_ = 0;
    std::uint64_t rows_loaded_ = 0;

    bool audit_on_ = false;
    std::uint32_t audit_table_ = 0;
    std::int64_t next_audit_token_ = 0;

    ZipfSampler customer_keys_;
    ZipfSampler vehicle_keys_;
    ZipfSampler inventory_keys_;

    void createSchema();
    void populate(double injection_rate);
    void buildProfiles();

    TxnDbOutcome runBrowse();
    TxnDbOutcome runPurchase();
    TxnDbOutcome runManage();
    TxnDbOutcome runCreateWorkOrder();

    std::int64_t pickCustomer();
    std::int64_t pickVehicle();
    std::int64_t pickInventory();

    /** Insert the audit row for a write txn (no-op when audit off). */
    void stampAudit(TxnId txn, RequestType type, TxnDbOutcome &outcome);
    /** Capture commit/force LSNs after commit (no-op when audit off). */
    void finishAudit(TxnDbOutcome &outcome);
};

} // namespace jasim

#endif // JASIM_WAS_APPLICATION_H
