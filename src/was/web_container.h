/**
 * @file
 * Web container (HTTP front end) cost and statistics model.
 */

#ifndef JASIM_WAS_WEB_CONTAINER_H
#define JASIM_WAS_WEB_CONTAINER_H

#include <cstdint>

#include "driver/request.h"

namespace jasim {

/** Web container parameters. */
struct WebContainerConfig
{
    double parse_us = 180.0;      //!< request parsing + routing
    double respond_us = 220.0;    //!< response assembly
    double per_kb_us = 14.0;      //!< marshalling per KB of payload
};

/** Tracks request counts and computes HTTP-side CPU demand. */
class WebContainer
{
  public:
    explicit WebContainer(const WebContainerConfig &config)
        : config_(config) {}

    /**
     * CPU microseconds for handling one HTTP request with the given
     * response payload. RMI requests bypass the web container.
     */
    double handle(RequestType type, double response_kb);

    /**
     * Account one admission-control fast reject: a canned 503 with
     * no body, modelled at zero CPU — the whole point of shedding at
     * the front door is that a reject costs ~nothing.
     */
    void noteRejected() { ++rejected_; }

    std::uint64_t handledCount() const { return handled_; }
    std::uint64_t rejectedCount() const { return rejected_; }
    double totalUs() const { return total_us_; }

    const WebContainerConfig &config() const { return config_; }

  private:
    WebContainerConfig config_;
    std::uint64_t handled_ = 0;
    std::uint64_t rejected_ = 0;
    double total_us_ = 0.0;
};

} // namespace jasim

#endif // JASIM_WAS_WEB_CONTAINER_H
