/**
 * @file
 * EJB container cost and statistics model.
 *
 * jas2004 runs inside the application server's EJB container: every
 * transaction is a workflow of session- and entity-bean invocations
 * with container-managed transaction demarcation. The per-invocation
 * overhead (interception, security, CMP state management) is the
 * reason so much CPU lands in WebSphere code rather than benchmark
 * code -- the effect behind Figure 4.
 */

#ifndef JASIM_WAS_EJB_CONTAINER_H
#define JASIM_WAS_EJB_CONTAINER_H

#include <cstdint>

#include "driver/request.h"

namespace jasim {

/** EJB container parameters. */
struct EjbContainerConfig
{
    double session_call_us = 110.0; //!< per session-bean invocation
    double entity_call_us = 150.0;  //!< per entity-bean invocation (CMP)
    double txn_demarcation_us = 260.0; //!< begin/commit interception
};

/** Bean-call plan of one transaction. */
struct BeanPlan
{
    std::uint32_t session_calls = 0;
    std::uint32_t entity_calls = 0;
};

/** Tracks invocations and computes container CPU demand. */
class EjbContainer
{
  public:
    explicit EjbContainer(const EjbContainerConfig &config)
        : config_(config) {}

    /** CPU microseconds of container overhead for one transaction. */
    double invoke(const BeanPlan &plan);

    std::uint64_t sessionCalls() const { return session_calls_; }
    std::uint64_t entityCalls() const { return entity_calls_; }
    std::uint64_t transactions() const { return transactions_; }
    double totalUs() const { return total_us_; }

    const EjbContainerConfig &config() const { return config_; }

  private:
    EjbContainerConfig config_;
    std::uint64_t session_calls_ = 0;
    std::uint64_t entity_calls_ = 0;
    std::uint64_t transactions_ = 0;
    double total_us_ = 0.0;
};

} // namespace jasim

#endif // JASIM_WAS_EJB_CONTAINER_H
