/**
 * @file
 * The System Under Test: the whole software stack on one server.
 *
 * Wires the driver, web container, EJB container, application,
 * database, JVM (GC + JIT), CPU scheduler, and disk into the
 * system-level discrete-event simulation. Request processing uses
 * "virtual threading": a request's stages are walked at dispatch
 * time through the FCFS scheduler and disk models, each stage's
 * completion time feeding the next, while the WAS thread pool bounds
 * concurrency.
 */

#ifndef JASIM_CORE_SUT_H
#define JASIM_CORE_SUT_H

#include <memory>

#include "adm/admission.h"
#include "db/database.h"
#include "driver/driver.h"
#include "driver/response_tracker.h"
#include "jvm/gc.h"
#include "jvm/jit.h"
#include "jvm/method_registry.h"
#include "os/disk.h"
#include "os/scheduler.h"
#include "os/vmstat.h"
#include "sim/event_queue.h"
#include "synth/component_profiles.h"
#include "was/application.h"
#include "was/thread_pool.h"
#include "was/web_container.h"

namespace jasim {

/** Everything configurable about the SUT. */
struct SutConfig
{
    double injection_rate = 40.0;
    std::size_t cpus = 4;
    std::size_t was_threads = 64;

    DiskConfig disk;       //!< RAM disk by default
    GcConfig gc;           //!< 1 GB heap
    DbConfig db{512, 32};  //!< 2 MB buffer pool per the study DB:pool ratio
    WebContainerConfig web;
    EjbContainerConfig ejb;
    JitConfig jit;
    DriverConfig driver;   //!< injection_rate is overridden from above

    /**
     * Web-tier admission control (jasim::adm). The default `none`
     * builds no controller and leaves request handling byte-identical
     * to a pre-admission build. `max_concurrent == 0` resolves to
     * `was_threads`.
     */
    adm::AdmissionConfig admission;

    /** Log-normal sigma of per-request service-demand noise. */
    double demand_sigma = 0.18;

    /** Multiplier on per-transaction Java allocation (Trade6-style
     *  workloads allocate differently; 1.0 = jas2004 calibration). */
    double alloc_scale = 1.0;

    /** Clamp on the interpreted/warm slowdown during JIT warm-up. */
    double max_jit_slowdown = 1.8;

    /** Methods sampled (and charged JIT warmup) per transaction. */
    std::size_t methods_per_txn = 8;

    /**
     * CPU scheduling quantum (us). Bursts longer than this are split
     * into quanta so concurrent requests share the CPUs round-robin
     * instead of head-of-line blocking each other (AIX timeslicing).
     */
    double cpu_quantum_us = 2000.0;
};

/** The assembled system. */
class SystemUnderTest
{
  public:
    /**
     * Completion signal for an externally run data tier. `error` is
     * ErrorKind::None on success; any other value fails the request
     * (the outcome is ignored and the failure hook fires).
     */
    using DbDone =
        std::function<void(const TxnDbOutcome &, ErrorKind error)>;

    /**
     * An external data tier: performs the whole DB stage for one
     * transaction (connection acquisition, round trips, remote CPU
     * and I/O) and invokes `done` at the simulated completion time.
     * When installed, the local DB stages (5-7) are skipped.
     */
    using RemoteDbTier =
        std::function<void(RequestType type, double noise, DbDone done)>;

    /** Observer invoked when a request finishes on this node. */
    using CompletionHook =
        std::function<void(const Request &request, SimTime finish)>;

    /** Observer invoked when a request errors on this node. */
    using FailureHook = std::function<void(
        const Request &request, SimTime at, ErrorKind kind)>;

    /**
     * @param profiles shared workload profiles (code layouts).
     * @param registry shared method registry (aligned with profiles).
     * @param external_queue when non-null, run on this event queue
     *        instead of an internally owned one, so several nodes and
     *        a network fabric share one simulated clock.
     */
    SystemUnderTest(const SutConfig &config,
                    std::shared_ptr<const WorkloadProfiles> profiles,
                    std::shared_ptr<const MethodRegistry> registry,
                    std::uint64_t seed,
                    EventQueue *external_queue = nullptr);

    /** Begin injecting load over [0, end). */
    void start(SimTime end);

    /**
     * Feed one request directly (cluster mode: the balancer routes
     * requests here instead of this node running its own driver).
     * Requests injected while the node is down fail immediately.
     */
    void inject(const Request &request) { handleRequest(request); }

    /** Install an external data tier (cluster mode). */
    void setRemoteDbTier(RemoteDbTier tier)
    {
        remote_db_ = std::move(tier);
    }

    /** Install a completion observer (cluster roll-up). */
    void setCompletionHook(CompletionHook hook)
    {
        completion_hook_ = std::move(hook);
    }

    /** Install a failure observer (cluster error roll-up). */
    void setFailureHook(FailureHook hook)
    {
        failure_hook_ = std::move(hook);
    }

    // ---- fault injection ----

    /**
     * Crash the node: every in-flight request errors at its next
     * simulation step, and injected requests fail until restart().
     */
    void crash();

    /**
     * Bring a crashed node back. The process state (JIT tiers, pool
     * threads, heap) is modelled as surviving — a fast restart from
     * a warmed standby rather than a cold boot.
     */
    void restart() { down_ = false; }

    bool isDown() const { return down_; }

    /** Times crash() has been called. */
    std::uint64_t crashCount() const { return crash_epoch_; }

    /** Advance the discrete-event simulation to `horizon`. */
    void advanceTo(SimTime horizon) { queue_.runUntil(horizon); }

    EventQueue &queue() { return queue_; }
    CpuScheduler &scheduler() { return scheduler_; }
    const CpuScheduler &scheduler() const { return scheduler_; }
    DiskModel &disk() { return disk_; }
    GarbageCollector &collector() { return gc_; }
    const GarbageCollector &collector() const { return gc_; }
    JitCompiler &jit() { return jit_; }
    ResponseTracker &tracker() { return tracker_; }
    const ResponseTracker &tracker() const { return tracker_; }
    Jas2004Application &application() { return app_; }
    WebContainer &webContainer() { return web_; }
    EjbContainer &ejbContainer() { return ejb_; }
    ThreadPool &threadPool() { return pool_; }
    VmStat &vmstat() { return vmstat_; }
    const SutConfig &config() const { return config_; }

    /** Null unless config.admission arms a web-tier shed policy. */
    const adm::AdmissionController *admission() const
    {
        return admission_.get();
    }

    /** Live bytes as of the last collection (mark-phase footprint). */
    std::uint64_t gcLiveBytes() const { return gc_.lastLiveBytes(); }

    /** Cumulative time requests spent blocked on disk I/O. */
    SimTime diskBlockedUs() const { return disk_blocked_us_; }

    /**
     * Compute and record one vmstat interval over [from, to), given
     * the busy/disk deltas the caller tracked.
     */
    VmStatRow recordVmstatWindow(SimTime from, SimTime to,
                                 const std::array<SimTime,
                                                  componentCount> &busy_delta,
                                 SimTime disk_blocked_delta);

  private:
    SutConfig config_;
    std::shared_ptr<const WorkloadProfiles> profiles_;
    std::shared_ptr<const MethodRegistry> registry_;

    std::unique_ptr<EventQueue> owned_queue_; //!< null in cluster mode
    EventQueue &queue_;
    CpuScheduler scheduler_;
    DiskModel disk_;
    GarbageCollector gc_;
    JitCompiler jit_;
    Jas2004Application app_;
    WebContainer web_;
    EjbContainer ejb_;
    ThreadPool pool_;
    ResponseTracker tracker_;
    VmStat vmstat_;
    Rng rng_;
    std::unique_ptr<adm::AdmissionController> admission_;
    std::unique_ptr<Driver> driver_;
    SimTime disk_blocked_us_ = 0;
    RemoteDbTier remote_db_;
    CompletionHook completion_hook_;
    FailureHook failure_hook_;
    bool down_ = false;
    std::uint64_t crash_epoch_ = 0;

    /** In-flight request state for the stage machine. */
    struct Job
    {
        Request request;
        const TxnProfile *profile = nullptr;
        double noise = 1.0;
        int stage = 0;
        ThreadPool::Done done;
        TxnDbOutcome db;
        double compile_us = 0.0;
        std::uint64_t epoch = 0; //!< crash epoch at admission
        bool failed = false;
    };

    void handleRequest(const Request &request);
    /** Hand an admitted request to the WAS thread pool. */
    void dispatch(const Request &request);
    void advanceJob(const std::shared_ptr<Job> &job);
    void scheduleAdvance(const std::shared_ptr<Job> &job, SimTime when);

    /** True once a crash has invalidated this job. */
    bool jobAborted(const Job &job) const
    {
        return job.failed || down_ || job.epoch != crash_epoch_;
    }

    /** Error the job out (idempotent) and release its WAS thread. */
    void failJob(const std::shared_ptr<Job> &job, ErrorKind kind);

    /** Run a burst in scheduler quanta, then advance the job. */
    void runBurst(const std::shared_ptr<Job> &job, double burst_us,
                  Component component);
    SimTime runGc(SimTime now);
    double demandNoise();
    double jitWarmupFactor(SimTime now,
                           const TxnProfile &profile,
                           double &compile_us);
};

} // namespace jasim

#endif // JASIM_CORE_SUT_H
