/**
 * @file
 * CPI statistical correlation (the paper's Section 4.3 / Figure 10).
 *
 * Defines the canonical event list of Figure 10 and computes the
 * correlation bars from an HpmStat capture, honouring the hardware
 * restriction that only same-group events can be cross-correlated.
 */

#ifndef JASIM_CORE_CORRELATION_ANALYSIS_H
#define JASIM_CORE_CORRELATION_ANALYSIS_H

#include <string>
#include <vector>

#include "hpm/hpmstat.h"

namespace jasim {

/** One Figure 10 entry. */
struct CorrelationEntry
{
    std::string label;
    std::string event;
    HpmStat::Basis basis = HpmStat::Basis::PerInst;
};

/** The Figure 10 event list, in the paper's presentation order. */
std::vector<CorrelationEntry> figure10Events();

/** One computed bar. */
struct CorrelationBar
{
    std::string label;
    double r = 0.0;
};

/** Compute all Figure 10 bars. */
std::vector<CorrelationBar>
computeCpiCorrelations(const HpmStat &hpm,
                       const std::vector<CorrelationEntry> &entries);

/** The auxiliary cross-correlations the paper quotes in prose. */
struct AuxCorrelations
{
    /** branches vs target mispredictions (paper: ~ -0.07). */
    double branches_vs_target_mispredict = 0.0;
    /** conditional misses vs branches (paper: ~ 0.43). */
    double cond_mispredict_vs_branches = 0.0;
    /** speculation rate vs L1D load misses (paper: ~ 0.1). */
    double spec_rate_vs_l1d_miss = 0.0;
};

AuxCorrelations computeAuxCorrelations(const HpmStat &hpm);

} // namespace jasim

#endif // JASIM_CORE_CORRELATION_ANALYSIS_H
