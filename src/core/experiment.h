/**
 * @file
 * The experiment runner: couples the two simulation levels and
 * assembles everything a figure or table needs.
 *
 * Mirrors the paper's methodology: a ramp-up period is discarded,
 * steady-state windows are sampled with one HPM counter group active
 * at a time, tprof-style profiles accumulate over the steady state,
 * and the verbosegc log spans the whole run.
 */

#ifndef JASIM_CORE_EXPERIMENT_H
#define JASIM_CORE_EXPERIMENT_H

#include <memory>
#include <vector>

#include "core/mix_model.h"
#include "core/sut.h"
#include "core/window_simulator.h"
#include "hpm/hpmstat.h"
#include "stats/counter.h"
#include "tprof/profiler.h"

namespace jasim {

/** Full experiment parameters. */
struct ExperimentConfig
{
    SutConfig sut;
    WindowSimConfig window;

    bool micro_enabled = true;   //!< run the window simulator
    double ramp_up_s = 120.0;    //!< discarded warm-up
    double steady_s = 600.0;     //!< measured steady state
    double ramp_down_s = 30.0;
    double window_s = 1.0;       //!< HPM sample window length
    std::size_t windows_per_group = 12;
    std::uint64_t seed = 42;

    /**
     * Cluster width requested on the command line (`--nodes N`).
     * Single-box benches ignore it; cluster-aware benches use it as
     * their node count (or sweep ceiling).
     */
    std::size_t nodes = 1;

    /**
     * Sweep worker count requested on the command line (`--jobs N`,
     * default 1 = serial). A single run ignores it; sweep-style
     * benches hand it to `jasim::par::runSweep` to run their points
     * concurrently.
     */
    std::size_t jobs = 1;

    SimTime totalTime() const
    {
        return secs(ramp_up_s + steady_s + ramp_down_s);
    }
};

/** One recorded steady-state window. */
struct WindowRecord
{
    SimTime end = 0;
    WindowMix mix;
    ExecStats stats; //!< raw (unscaled) micro statistics
    VmStatRow vm;
};

/** Everything a bench or example consumes after a run. */
struct ExperimentResult
{
    std::vector<WindowRecord> windows;

    GcSummary gc;
    std::vector<GcEvent> gc_events;

    VmStatRow vm_mean;           //!< steady-state mean
    double cpu_utilization = 0.0;
    double jops = 0.0;
    double jops_per_ir = 0.0;
    std::array<SlaVerdict, requestTypeCount> verdicts{};
    bool sla_pass = false;
    std::array<TimeSeries, requestTypeCount> throughput;

    ExecStats total;             //!< merged micro stats (steady state)

    /** Kernel events executed by the run (perf accounting). */
    std::uint64_t events_executed = 0;

    /**
     * Memory-path flat counters (PM_MEM_LD_SRC_* / PM_MEM_IF_SRC_*),
     * folded from the hierarchy's hot-loop arrays once at the end of
     * the run. Identical with `--fastpath` on or off, so equivalence
     * digests include them.
     */
    CounterSet mem_hot;

    /** Fast-path telemetry; differs across modes by design. */
    std::uint64_t mru_data_hits = 0;
    std::uint64_t mru_inst_hits = 0;
    std::uint64_t snoop_filter_skips = 0;

    std::shared_ptr<HpmStat> hpm;
    std::shared_ptr<Profiler> profiler;

    SimTime steady_from = 0;
    SimTime steady_to = 0;
};

/** Runs one configured experiment. */
class Experiment
{
  public:
    explicit Experiment(const ExperimentConfig &config);

    /** Execute the full run and assemble the result. */
    ExperimentResult run();

    SystemUnderTest &sut() { return *sut_; }
    WindowSimulator &windowSimulator() { return *window_sim_; }
    const ExperimentConfig &config() const { return config_; }

  private:
    ExperimentConfig config_;
    std::shared_ptr<const WorkloadProfiles> profiles_;
    std::shared_ptr<const MethodRegistry> registry_;
    std::unique_ptr<SystemUnderTest> sut_;
    std::unique_ptr<WindowSimulator> window_sim_;
};

} // namespace jasim

#endif // JASIM_CORE_EXPERIMENT_H
