#include "core/mix_model.h"

#include <algorithm>

namespace jasim {

WindowMix
computeMix(const std::array<SimTime, componentCount> &previous,
           const std::array<SimTime, componentCount> &current,
           SimTime window_us, std::size_t cpus)
{
    WindowMix mix;
    std::array<double, componentCount> delta{};
    double busy = 0.0;
    for (std::size_t c = 0; c < componentCount; ++c) {
        delta[c] = static_cast<double>(current[c] - previous[c]);
        busy += delta[c];
    }
    mix.busy_us = busy;
    if (busy > 0.0) {
        for (std::size_t c = 0; c < componentCount; ++c)
            mix.fraction[c] = delta[c] / busy;
    }
    const double capacity = static_cast<double>(window_us * cpus);
    mix.idle_fraction = capacity > 0.0
        ? std::clamp(1.0 - busy / capacity, 0.0, 1.0)
        : 1.0;
    mix.gc_active =
        delta[static_cast<std::size_t>(Component::GcMark)] > 0.0 ||
        delta[static_cast<std::size_t>(Component::GcSweep)] > 0.0;
    return mix;
}

} // namespace jasim
