#include "core/experiment.h"

#include <cassert>

#include "hpm/counter_group.h"

namespace jasim {

Experiment::Experiment(const ExperimentConfig &config) : config_(config)
{
    profiles_ =
        std::make_shared<const WorkloadProfiles>(config.seed ^ 0x9a0full);
    registry_ = std::make_shared<const MethodRegistry>(
        profiles_->layout(Component::WasJit).count(),
        config.seed ^ 0x3e9ull);
    sut_ = std::make_unique<SystemUnderTest>(config.sut, profiles_,
                                             registry_, config.seed);
    window_sim_ = std::make_unique<WindowSimulator>(
        config.window, profiles_, config.seed ^ 0x51ull);
}

ExperimentResult
Experiment::run()
{
    ExperimentResult result;
    result.hpm = std::make_shared<HpmStat>(
        HpmFacility(power4Groups()), config_.windows_per_group);
    result.profiler = std::make_shared<Profiler>(registry_);

    const SimTime window = secs(config_.window_s);
    const SimTime steady_from = secs(config_.ramp_up_s);
    const SimTime steady_to =
        secs(config_.ramp_up_s + config_.steady_s);
    const SimTime total = config_.totalTime();
    result.steady_from = steady_from;
    result.steady_to = steady_to;

    sut_->start(total);

    auto prev_busy = sut_->scheduler().busySnapshot();
    SimTime prev_disk_blocked = sut_->diskBlockedUs();

    for (SimTime t = 0; t < total; t += window) {
        const SimTime window_end = std::min(t + window, total);
        sut_->advanceTo(window_end);

        const auto busy = sut_->scheduler().busySnapshot();
        std::array<SimTime, componentCount> busy_delta{};
        for (std::size_t c = 0; c < componentCount; ++c)
            busy_delta[c] = busy[c] - prev_busy[c];
        const SimTime disk_blocked = sut_->diskBlockedUs();
        const SimTime disk_delta = disk_blocked - prev_disk_blocked;

        const VmStatRow vm =
            sut_->recordVmstatWindow(t, window_end, busy_delta,
                                     disk_delta);

        const WindowMix mix = computeMix(prev_busy, busy,
                                         window_end - t,
                                         sut_->config().cpus);
        prev_busy = busy;
        prev_disk_blocked = disk_blocked;

        const bool in_steady =
            window_end > steady_from && window_end <= steady_to;
        if (in_steady) {
            for (std::size_t c = 0; c < componentCount; ++c) {
                result.profiler->addComponentTime(
                    static_cast<Component>(c), busy_delta[c]);
            }
            const SimTime capacity =
                (window_end - t) * sut_->config().cpus;
            SimTime busy_total = 0;
            for (const SimTime b : busy_delta)
                busy_total += b;
            if (capacity > busy_total)
                result.profiler->addIdleTime(capacity - busy_total);
        }

        if (config_.micro_enabled && in_steady && mix.busy_us > 0.0) {
            WindowRecord record;
            record.end = window_end;
            record.mix = mix;
            record.vm = vm;
            record.stats = window_sim_->simulateWindow(
                mix, sut_->gcLiveBytes());
            result.total.merge(record.stats);

            const double scale =
                window_sim_->scaleFor(record.stats, mix.busy_us);
            CounterSet counters;
            record.stats.exportTo(counters, scale);
            result.hpm->recordWindow(window_end, counters.snapshot());
            result.windows.push_back(std::move(record));
        }
    }

    // --- summaries ---------------------------------------------------
    if (config_.micro_enabled) {
        result.profiler->addMethodSamples(
            window_sim_->jitMethodSamples());
        const MemoryHierarchy &mem = window_sim_->hierarchy();
        mem.hotCounters().foldInto(result.mem_hot);
        result.mru_data_hits = mem.hotCounters().mruDataHits();
        result.mru_inst_hits = mem.hotCounters().mruInstHits();
        result.snoop_filter_skips = mem.snoopFilterSkips();
    }

    result.gc_events = sut_->collector().log().events();
    result.gc = sut_->collector().log().summarize(total);
    result.vm_mean = sut_->vmstat().mean(steady_from, steady_to);
    result.cpu_utilization =
        (result.vm_mean.user_pct + result.vm_mean.system_pct) / 100.0;
    result.jops = sut_->tracker().jops(steady_from, steady_to);
    result.jops_per_ir = result.jops / sut_->config().injection_rate;
    result.verdicts = sut_->tracker().verdicts();
    result.sla_pass = sut_->tracker().allPass();
    result.events_executed = sut_->queue().executed();
    for (std::size_t r = 0; r < requestTypeCount; ++r) {
        result.throughput[r] = sut_->tracker().throughputSeries(
            static_cast<RequestType>(r), total);
    }
    return result;
}

} // namespace jasim
