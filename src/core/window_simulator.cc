#include "core/window_simulator.h"

#include <cassert>
#include <cmath>

namespace jasim {

WindowSimulator::WindowSimulator(
    const WindowSimConfig &config,
    std::shared_ptr<const WorkloadProfiles> profiles, std::uint64_t seed)
    : config_(config), profiles_(std::move(profiles)),
      space_(profiles_->makeAddressSpace(config.heap_large_pages,
                                         config.code_large_pages))
{
    Rng seeder(seed);
    config_.hierarchy.fastpath = config_.fastpath;
    config_.core.xlat.fastpath = config_.fastpath;
    hierarchy_ = std::make_unique<MemoryHierarchy>(config_.hierarchy,
                                                   seeder());
    const std::size_t cores = config_.hierarchy.cores;
    generators_.resize(cores);
    for (std::size_t core = 0; core < cores; ++core) {
        cores_.push_back(std::make_unique<CoreModel>(
            core, config_.core, *hierarchy_, space_, seeder()));
        for (const Component c : allComponents) {
            auto generator = profiles_->makeGenerator(c, core, seeder());
            if (config_.devirtualized_fraction > 0.0) {
                generator->setDevirtualizedFraction(
                    config_.devirtualized_fraction);
            }
            generators_[core][static_cast<std::size_t>(c)] =
                std::move(generator);
        }
    }
}

ExecStats
WindowSimulator::simulateWindow(const WindowMix &mix,
                                std::uint64_t gc_live_bytes)
{
    ExecStats stats;
    if (mix.busy_us <= 0.0)
        return stats;

    const std::size_t cores = cores_.size();

    // Per-(core, component) instruction budgets.
    std::vector<std::array<std::size_t, componentCount>> budget(cores);
    for (std::size_t core = 0; core < cores; ++core) {
        for (std::size_t c = 0; c < componentCount; ++c) {
            budget[core][c] = static_cast<std::size_t>(
                mix.fraction[c] *
                static_cast<double>(config_.sample_insts) /
                static_cast<double>(cores));
        }
    }

    // Keep the mark-phase generators aware of the live-set size.
    if (mix.gc_active && gc_live_bytes > 0) {
        for (std::size_t core = 0; core < cores; ++core) {
            setGcLiveBytes(*generators_[core][static_cast<std::size_t>(
                               Component::GcMark)],
                           gc_live_bytes);
        }
    }

    // Interleave across cores in chunks (as SMP hardware does), but
    // within a core run each component's whole budget contiguously:
    // an OS timeslice is millions of instructions, so per-window
    // component switches on one core are rare, not per-chunk.
    bool work_left = true;
    std::array<std::size_t, 64> comp_cursor{};
    assert(cores <= comp_cursor.size());
    while (work_left) {
        work_left = false;
        for (std::size_t core = 0; core < cores; ++core) {
            // Stay on the current component until its budget drains.
            std::size_t c = comp_cursor[core];
            std::size_t probes = 0;
            while (probes < componentCount && budget[core][c] == 0) {
                c = (c + 1) % componentCount;
                ++probes;
            }
            if (probes == componentCount)
                continue;
            comp_cursor[core] = c;
            const std::size_t run =
                std::min(config_.chunk, budget[core][c]);
            StreamGenerator &gen = *generators_[core][c];
            CoreModel &cpu = *cores_[core];
            for (std::size_t i = 0; i < run; ++i)
                cpu.execute(gen.next(), stats);
            budget[core][c] -= run;
            work_left = true;
        }
    }
    return stats;
}

double
WindowSimulator::scaleFor(const ExecStats &stats, double busy_us) const
{
    if (stats.cycles <= 0.0)
        return 1.0;
    const double nominal_cycles = busy_us * config_.freq_ghz * 1e3;
    return nominal_cycles / stats.cycles;
}

std::vector<std::uint64_t>
WindowSimulator::jitMethodSamples() const
{
    const std::size_t methods =
        profiles_->layout(Component::WasJit).count();
    std::vector<std::uint64_t> samples(methods, 0);
    for (const auto &per_core : generators_) {
        const auto &gen =
            per_core[static_cast<std::size_t>(Component::WasJit)];
        const auto &s = gen->segmentSamples();
        for (std::size_t m = 0; m < methods; ++m)
            samples[m] += s[m];
    }
    return samples;
}

void
WindowSimulator::flushTranslation()
{
    for (auto &core : cores_)
        core->flushTranslation();
}

} // namespace jasim
