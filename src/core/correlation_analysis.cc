#include "core/correlation_analysis.h"

#include "hpm/events.h"

namespace jasim {

std::vector<CorrelationEntry>
figure10Events()
{
    using namespace event;
    using Basis = HpmStat::Basis;
    return {
        {"L1D Load Miss", l1dLoadMiss, Basis::PerInst},
        {"L1D Store Miss", l1dStoreMiss, Basis::PerInst},
        {"L1D Prefetches", l1dPrefetch, Basis::PerInst},
        {"L2 Prefetches", l2Prefetch, Basis::PerInst},
        {"D$ Prefetch Stream Alloc.", streamAlloc, Basis::PerInst},
        {"Speculation Rate", instDispatched, Basis::PerInst},
        {"Cyc w/ Instr. Comp.", cyclesWithCompletion, Basis::PerWindow},
        {"Instr. Fetched from L1I", instFetchL1, Basis::PerWindow},
        {"Instr. Fetched from L2", instFetchL2, Basis::PerInst},
        {"Instr. Fetched from L3/Mem", instFetchL3, Basis::PerInst},
        {"SYNC in SRQ", srqSyncCycles, Basis::PerInst},
        {"IERAT Miss", ieratMiss, Basis::PerInst},
        {"DERAT Miss", deratMiss, Basis::PerInst},
        {"TLB Miss (I+D)", dtlbMiss, Basis::PerInst},
        {"Cond. Branch Mispred.", condMispredict, Basis::PerInst},
        {"Target Addr. Mispred.", targetMispredict, Basis::PerInst},
    };
}

std::vector<CorrelationBar>
computeCpiCorrelations(const HpmStat &hpm,
                       const std::vector<CorrelationEntry> &entries)
{
    std::vector<CorrelationBar> bars;
    bars.reserve(entries.size());
    for (const auto &entry : entries) {
        bars.push_back(CorrelationBar{
            entry.label, hpm.cpiCorrelation(entry.event, entry.basis)});
    }
    return bars;
}

AuxCorrelations
computeAuxCorrelations(const HpmStat &hpm)
{
    AuxCorrelations aux;
    aux.branches_vs_target_mispredict =
        hpm.crossCorrelation(event::branches, event::targetMispredict)
            .value_or(0.0);
    aux.cond_mispredict_vs_branches =
        hpm.crossCorrelation(event::condMispredict, event::branches)
            .value_or(0.0);
    aux.spec_rate_vs_l1d_miss =
        hpm.crossCorrelation(event::instDispatched, event::l1dLoadMiss)
            .value_or(0.0);
    return aux;
}

} // namespace jasim
