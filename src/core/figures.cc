#include "core/figures.h"

#include "stats/render.h"

namespace jasim {

namespace {

double
metricOf(const WindowRecord &w, WindowMetric metric)
{
    const ExecStats &s = w.stats;
    const double insts = static_cast<double>(s.completed);
    auto ratio = [](double num, double den) {
        return den == 0.0 ? 0.0 : num / den;
    };
    switch (metric) {
      case WindowMetric::Cpi:
        return s.cpi();
      case WindowMetric::SpeculationRate:
        return s.speculationRate();
      case WindowMetric::L1MissesPerCycle:
        return ratio(static_cast<double>(s.l1d_load_miss +
                                         s.l1d_store_miss),
                     s.cycles);
      case WindowMetric::L1LoadMissRate:
        return ratio(static_cast<double>(s.l1d_load_miss),
                     static_cast<double>(s.loads));
      case WindowMetric::L1StoreMissRate:
        return ratio(static_cast<double>(s.l1d_store_miss),
                     static_cast<double>(s.stores));
      case WindowMetric::CondMispredictRate:
        return ratio(static_cast<double>(s.cond_mispredict),
                     static_cast<double>(s.cond_branches));
      case WindowMetric::TargetMispredictRate:
        // Target mispredictions of indirect branches / virtual calls
        // (returns are tracked separately; the RAS predicts them).
        return ratio(static_cast<double>(s.target_mispredict),
                     static_cast<double>(s.indirect_branches));
      case WindowMetric::BranchesPerInst:
        return ratio(static_cast<double>(s.branches), insts);
      case WindowMetric::DeratMissPerInst:
        return ratio(static_cast<double>(s.derat_miss), insts);
      case WindowMetric::IeratMissPerInst:
        return ratio(static_cast<double>(s.ierat_miss), insts);
      case WindowMetric::DtlbMissPerInst:
        return ratio(static_cast<double>(s.dtlb_miss), insts);
      case WindowMetric::ItlbMissPerInst:
        return ratio(static_cast<double>(s.itlb_miss), insts);
      case WindowMetric::SrqSyncFraction:
        return ratio(s.srq_sync_cycles, s.cycles);
      case WindowMetric::LoadsPerInst:
        return ratio(static_cast<double>(s.loads), insts);
      case WindowMetric::StoresPerInst:
        return ratio(static_cast<double>(s.stores), insts);
      case WindowMetric::GcFraction:
        return w.mix.fraction[static_cast<std::size_t>(
                   Component::GcMark)] +
            w.mix.fraction[static_cast<std::size_t>(
                Component::GcSweep)];
    }
    return 0.0;
}

} // namespace

TimeSeries
windowSeries(const std::vector<WindowRecord> &windows,
             WindowMetric metric, const std::string &name)
{
    TimeSeries series(name);
    for (const auto &w : windows)
        series.append(w.end, metricOf(w, metric));
    return series;
}

double
windowMean(const std::vector<WindowRecord> &windows, WindowMetric metric)
{
    if (windows.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &w : windows)
        sum += metricOf(w, metric);
    return sum / static_cast<double>(windows.size());
}

double
windowMeanIf(const std::vector<WindowRecord> &windows,
             WindowMetric metric, bool gc_windows)
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto &w : windows) {
        if (w.mix.gc_active != gc_windows)
            continue;
        sum += metricOf(w, metric);
        ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::array<double, 8>
loadSourceShares(const ExecStats &total)
{
    std::array<double, 8> shares{};
    double misses = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i)
        misses += static_cast<double>(total.loads_from[i]);
    // Exclude the L1 slot: loads_from counts only L1 misses.
    misses -= static_cast<double>(
        total.loads_from[static_cast<std::size_t>(DataSource::L1)]);
    if (misses <= 0.0)
        return shares;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        if (i == static_cast<std::size_t>(DataSource::L1))
            continue;
        shares[i] = static_cast<double>(total.loads_from[i]) / misses;
    }
    return shares;
}

void
printRunSummary(std::ostream &os, const ExperimentConfig &config,
                const ExperimentResult &result)
{
    os << "run: IR=" << config.sut.injection_rate
       << " seed=" << config.seed
       << " ramp=" << config.ramp_up_s << "s"
       << " steady=" << config.steady_s << "s"
       << " disk="
       << (config.sut.disk.kind == DiskConfig::Kind::RamDisk
               ? "ramdisk"
               : "spinning")
       << "\n";
    os << "cpu utilization: "
       << TextTable::pct(result.cpu_utilization * 100.0)
       << "  (user " << TextTable::pct(result.vm_mean.user_pct)
       << ", system " << TextTable::pct(result.vm_mean.system_pct)
       << ", iowait " << TextTable::pct(result.vm_mean.iowait_pct)
       << ")\n";
    os << "throughput: " << TextTable::num(result.jops, 1) << " JOPS ("
       << TextTable::num(result.jops_per_ir, 2) << " JOPS/IR)\n";
    os << "SLA: " << (result.sla_pass ? "PASS" : "FAIL");
    for (const auto &v : result.verdicts) {
        os << "  [" << requestTypeName(v.type) << " p90 "
           << TextTable::num(v.p90_seconds, 2) << "s/"
           << TextTable::num(v.bound_seconds, 0) << "s]";
    }
    os << "\n";
}

} // namespace jasim
