#include "core/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jasim {

ClusterUnderTest::ClusterUnderTest(
    const ClusterConfig &config,
    std::shared_ptr<const WorkloadProfiles> profiles,
    std::shared_ptr<const MethodRegistry> registry, std::uint64_t seed)
    : config_(config), profiles_(std::move(profiles)),
      registry_(std::move(registry)),
      fabric_(config.fabric, config.nodes, seed ^ 0x4e7ull),
      lb_(config.lb, config.nodes), db_scheduler_(config.db_cpus),
      db_disk_(config.db_disk), seed_(seed)
{
    assert(profiles_ && registry_ && config_.nodes > 0);

    // The shared DB node is populated for the aggregate IR, as the
    // real benchmark scales its initial database with load.
    db_app_ = std::make_unique<Jas2004Application>(
        config_.node.db, config_.totalInjectionRate(), seed ^ 0xdb0ull);

    Rng seeder(seed ^ 0x5eedull);
    pools_.reserve(config_.nodes);
    nodes_.reserve(config_.nodes);
    for (std::size_t n = 0; n < config_.nodes; ++n) {
        pools_.push_back(std::make_unique<ConnectionPool>(
            config_.db_pool, queue_, fabric_.nodeDb(n)));
        nodes_.push_back(std::make_unique<SystemUnderTest>(
            config_.node, profiles_, registry_, seeder(), &queue_));
        SystemUnderTest &sut = *nodes_[n];
        sut.setRemoteDbTier(
            [this, n](RequestType type, double noise,
                      SystemUnderTest::DbDone done) {
                remoteDb(n, type, noise, std::move(done));
            });
        sut.setCompletionHook(
            [this, n](const Request &request, SimTime finish) {
                onNodeComplete(n, request, finish);
            });
    }
}

void
ClusterUnderTest::start(SimTime end)
{
    DriverConfig driver_config = config_.node.driver;
    driver_config.injection_rate = config_.totalInjectionRate();
    // Same driver-seed derivation as SystemUnderTest::start, so a
    // 1-node cluster sees the identical arrival stream as a
    // single-box SUT run with the same master seed — which the
    // cluster equivalence test exploits.
    driver_ = std::make_unique<Driver>(
        driver_config, queue_, Rng(seed_)() ^ 0xd21eull,
        [this](const Request &request) { handleRequest(request); });
    driver_->start(0, end);
}

void
ClusterUnderTest::handleRequest(const Request &request)
{
    const SimTime at_lb = fabric_.clientLb().deliver(
        queue_.now(),
        static_cast<std::uint64_t>(config_.request_bytes));
    queue_.scheduleAt(at_lb,
                      [this, request] { routeToNode(request); });
}

void
ClusterUnderTest::routeToNode(const Request &request)
{
    // The balancer is a single server: forwarding work serializes, so
    // an undersized balancer is itself a possible cluster bottleneck.
    const SimTime now = queue_.now();
    const SimTime start = std::max(now, lb_free_);
    lb_free_ = start + static_cast<SimTime>(
        std::llround(config_.lb.forward_us));

    const std::size_t node = lb_.route();
    const SimTime at_node = fabric_.lbNode(node).deliver(
        lb_free_, static_cast<std::uint64_t>(config_.request_bytes));
    queue_.scheduleAt(at_node, [this, request, node] {
        nodes_[node]->inject(request);
    });
}

std::uint64_t
ClusterUnderTest::responseBytes(std::size_t node,
                                RequestType type) const
{
    const double kb =
        nodes_[node]->application().profile(type).response_kb;
    return std::max<std::uint64_t>(
        256, static_cast<std::uint64_t>(kb * 1024.0));
}

void
ClusterUnderTest::onNodeComplete(std::size_t node,
                                 const Request &request,
                                 SimTime finish)
{
    lb_.complete(node);
    const std::uint64_t bytes = responseBytes(node, request.type);
    const SimTime at_lb = fabric_.lbNode(node).deliver(
        finish, bytes, NetworkLink::Direction::Reverse);
    queue_.scheduleAt(at_lb, [this, request, node, bytes] {
        const SimTime at_client = fabric_.clientLb().deliver(
            queue_.now(), bytes, NetworkLink::Direction::Reverse);
        queue_.scheduleAt(at_client, [this, request, node] {
            tracker_.complete(request, queue_.now(),
                              static_cast<std::uint32_t>(node));
        });
    });
}

void
ClusterUnderTest::dbBurst(double burst_us, std::function<void()> then)
{
    const double quantum = config_.db_quantum_us;
    const SimTime now = queue_.now();
    if (burst_us <= quantum) {
        queue_.scheduleAt(
            db_scheduler_.run(now, burst_us, Component::Db2).completion,
            std::move(then));
        return;
    }
    const SimTime slice_end =
        db_scheduler_.run(now, quantum, Component::Db2).completion;
    const double remaining = burst_us - quantum;
    queue_.scheduleAt(slice_end,
                      [this, remaining, then = std::move(then)]() mutable {
                          dbBurst(remaining, std::move(then));
                      });
}

void
ClusterUnderTest::remoteDb(std::size_t node, RequestType type,
                           double noise,
                           SystemUnderTest::DbDone done)
{
    // JDBC-style: hold a pooled connection for the whole round trip.
    pools_[node]->acquire([this, node, type, noise,
                           done = std::move(done)](SimTime ready) {
        const SimTime at_db = fabric_.nodeDb(node).deliver(
            ready, static_cast<std::uint64_t>(config_.query_bytes));
        queue_.scheduleAt(at_db, [this, node, type, noise,
                                  done = std::move(done)]() mutable {
            auto outcome = std::make_shared<TxnDbOutcome>(
                db_app_->runTransaction(type));
            const TxnProfile &profile =
                nodes_[node]->application().profile(type);
            const double burst =
                profile.db_us * noise + outcome->cost.cpu_us;
            dbBurst(burst, [this, node, outcome,
                            done = std::move(done)]() mutable {
                finishDbTransaction(node, std::move(outcome),
                                    std::move(done));
            });
        });
    });
}

void
ClusterUnderTest::finishDbTransaction(
    std::size_t node, std::shared_ptr<TxnDbOutcome> outcome,
    SystemUnderTest::DbDone done)
{
    const SimTime now = queue_.now();
    SimTime io_done = now;

    if (outcome->cost.pages_read > 0) {
        const IoResult io = db_disk_.read(
            now,
            static_cast<std::uint32_t>(outcome->cost.pages_read));
        db_disk_blocked_us_ += io.completion - now;
        io_done = io.completion;
    }
    if (outcome->cost.writebacks > 0) {
        // Asynchronous page cleaning: charge the disk, not the txn.
        db_disk_.write(now, outcome->cost.writebacks * 4096);
    }
    if (outcome->cost.log_bytes_forced > 0) {
        const IoResult io =
            db_disk_.write(io_done, outcome->cost.log_bytes_forced);
        db_disk_blocked_us_ += io.completion - io_done;
        io_done = io.completion;
    }

    // Response crosses back to the node; the connection frees once
    // the response has arrived and the EJB tier resumes.
    const SimTime at_node = fabric_.nodeDb(node).deliver(
        io_done,
        static_cast<std::uint64_t>(config_.db_response_bytes),
        NetworkLink::Direction::Reverse);
    queue_.scheduleAt(at_node, [this, node, outcome,
                                done = std::move(done)] {
        pools_[node]->release();
        done(*outcome);
    });
}

} // namespace jasim
