#include "core/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace jasim {

ClusterUnderTest::ClusterUnderTest(
    const ClusterConfig &config,
    std::shared_ptr<const WorkloadProfiles> profiles,
    std::shared_ptr<const MethodRegistry> registry, std::uint64_t seed)
    : config_(config), profiles_(std::move(profiles)),
      registry_(std::move(registry)),
      fabric_(config.fabric, config.nodes, seed ^ 0x4e7ull),
      lb_(config.lb, config.nodes), db_scheduler_(config.db_cpus),
      db_disk_(config.db_disk), seed_(seed),
      retry_(config.resilience.retry), retry_rng_(seed ^ 0x7e7a1ull),
      route_rng_(seed ^ 0x5a4dull)
{
    assert(profiles_ && registry_ && config_.nodes > 0);

    repl_on_ = config_.repl.enabled();
    if (repl_on_) {
        // Sharded/replicated tier: the key space splits across shard
        // groups, each populated for its share of the aggregate IR.
        // The legacy single shared box (db_app_) is never built.
        shard_map_ =
            std::make_unique<repl::ShardMap>(config_.repl.shards);
        failover_ = std::make_unique<repl::FailoverController>(
            queue_, config_.repl.failover);
        shard_outages_.resize(shard_map_->shardCount());
        Rng shard_seeder(seed ^ 0xdb0ull);
        for (std::size_t s = 0; s < shard_map_->shardCount(); ++s) {
            repl::ShardGroupConfig sc;
            sc.db = config_.node.db;
            sc.injection_rate = config_.totalInjectionRate() /
                static_cast<double>(shard_map_->shardCount());
            sc.cpus = config_.db_cpus;
            sc.disk = config_.db_disk;
            sc.replicas = config_.repl.replicas;
            sc.replica = config_.repl.replica;
            sc.sync = config_.repl.sync;
            shards_.push_back(std::make_unique<repl::ShardGroup>(
                queue_, sc, shard_seeder()));
        }
        // Lease/fencing machinery arms only when the schedule can
        // split the fabric or hand a primary off; an unleased group
        // is byte-identical to a build without partition support.
        lease_on_ = config_.faults.hasPartition() ||
            config_.faults.hasSwitchover() ||
            config_.repl.lease.force_enabled;
        if (lease_on_) {
            stale_remnants_.resize(shards_.size());
            for (std::size_t s = 0; s < shards_.size(); ++s) {
                shards_[s]->armLease(
                    config_.repl.lease, [this, s](std::size_t r) {
                        return fabric_.reachable(
                            servingEndpoint(s),
                            NetEndpoint::dbReplica(s, r));
                    });
            }
        }
    } else {
        // The shared DB node is populated for the aggregate IR, as the
        // real benchmark scales its initial database with load.
        db_app_ = std::make_unique<Jas2004Application>(
            config_.node.db, config_.totalInjectionRate(),
            seed ^ 0xdb0ull);
    }

    // In repl mode the per-shard machinery (group auditors, failover,
    // per-shard ARIES fallback) replaces the legacy single-box one.
    db_recovery_on_ = !repl_on_ &&
        (config_.faults.hasDbFault() ||
         config_.db_recovery.force_enabled);
    // A DB fault needs the resilient EJB->DB path (fail-fast checks,
    // per-attempt deadlines) to survive the outage.
    resilience_on_ = !config_.faults.empty() ||
        config_.resilience.force_enabled || db_recovery_on_;
    if (db_recovery_on_) {
        if (config_.db_recovery.audit)
            db_app_->enableAudit();
        db_app_->database().enableRecovery();
    }
    // Admission control arms the whole backpressure ladder: the
    // balancer's in-flight cap, the per-node accept queue (built by
    // each SystemUnderTest), and a bounded EJB->DB pool acquire on
    // the plain path below. Default (none) leaves all of it off.
    adm_on_ = config_.node.admission.enabled();
    if (adm_on_)
        lb_.setInFlightCap(config_.node.admission.lb_inflight_cap);

    ConnectionPoolConfig pool_config = config_.db_pool;
    if (adm_on_ && !resilience_on_ && !repl_on_ &&
        pool_config.acquire_timeout_us <= 0.0 &&
        config_.resilience.pool_acquire_timeout_s > 0.0) {
        // Saturation at the DB tier must propagate upstream as an
        // error, not as an unbounded connection queue.
        pool_config.acquire_timeout_us =
            config_.resilience.pool_acquire_timeout_s * 1e6;
    }
    if (resilience_on_ || repl_on_) {
        // The sharded path always runs with attempt deadlines and a
        // bounded pool wait: a failover blackout must shed load, not
        // wedge connections.
        double timeout_s = config_.resilience.db_timeout_s;
        if (timeout_s <= 0.0)
            timeout_s = 2.0;
        db_timeout_us_ = secs(timeout_s);
        if (pool_config.acquire_timeout_us <= 0.0 &&
            config_.resilience.pool_acquire_timeout_s > 0.0) {
            pool_config.acquire_timeout_us =
                config_.resilience.pool_acquire_timeout_s * 1e6;
        }
    }
    if (resilience_on_) {
        health_ = std::make_unique<HealthChecker>(
            config_.resilience.health, config_.nodes);
        breaker_ = std::make_unique<CircuitBreaker>(
            config_.resilience.breaker);
    }
    if (!config_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(
            config_.faults, queue_,
            [this](const FaultEvent &event) { applyFault(event); });
    }

    // Parallel lane mode. v1 partitions the healthy legacy-DB path
    // only: faults/resilience/recovery/replication all touch state
    // across components synchronously (probe ejection, breaker state,
    // shard generations), and a zero-latency fabric has no lookahead
    // window — any of those falls back to the serial kernel, leaving
    // the facade queue untouched. Installed before any scheduling so
    // every event of the run flows through the router.
    if (config_.lanes > 0 && !resilience_on_ && !repl_on_ &&
        fabric_.minLatencyUs() >= 1) {
        lane_sched_ = std::make_unique<lane::LaneScheduler>(
            queue_, config_.nodes + 1, fabric_.minLatencyUs(),
            config_.lanes);
    }

    Rng seeder(seed ^ 0x5eedull);
    pools_.reserve(config_.nodes);
    nodes_.reserve(config_.nodes);
    for (std::size_t n = 0; n < config_.nodes; ++n) {
        // Anything the node stack schedules at construction belongs
        // on the node's lane (no-op tag in serial runs).
        const lane::ToLane to_node(nodeLane(n));
        pools_.push_back(std::make_unique<ConnectionPool>(
            pool_config, queue_, fabric_.nodeDb(n)));
        nodes_.push_back(std::make_unique<SystemUnderTest>(
            config_.node, profiles_, registry_, seeder(), &queue_));
        SystemUnderTest &sut = *nodes_[n];
        sut.setRemoteDbTier(
            [this, n](RequestType type, double noise,
                      SystemUnderTest::DbDone done) {
                remoteDb(n, type, noise, std::move(done));
            });
        sut.setCompletionHook(
            [this, n](const Request &request, SimTime finish) {
                onNodeComplete(n, request, finish);
            });
        sut.setFailureHook(
            [this, n](const Request &request, SimTime at,
                      ErrorKind kind) {
                onNodeFailure(n, request, at, kind);
            });
    }
}

void
ClusterUnderTest::start(SimTime end)
{
    DriverConfig driver_config = config_.node.driver;
    driver_config.injection_rate = config_.totalInjectionRate();
    // Same driver-seed derivation as SystemUnderTest::start, so a
    // 1-node cluster sees the identical arrival stream as a
    // single-box SUT run with the same master seed — which the
    // cluster equivalence test exploits.
    driver_ = std::make_unique<Driver>(
        driver_config, queue_, Rng(seed_)() ^ 0xd21eull,
        [this](const Request &request) { handleRequest(request); });
    driver_->start(0, end);

    if (injector_)
        injector_->arm();
    if (resilience_on_) {
        // Health probes ride the LB->node links, so detection latency
        // is part of the simulation. None of this exists on a healthy
        // run: the first probe is the first extra event.
        const SimTime interval =
            secs(config_.resilience.health.interval_s);
        for (std::size_t n = 0; n < nodes_.size(); ++n)
            queue_.scheduleAfter(interval, [this, n] { probeNode(n); });
    }
    if (db_recovery_on_ &&
        config_.db_recovery.checkpoint_interval_s > 0.0) {
        queue_.scheduleAfter(
            secs(config_.db_recovery.checkpoint_interval_s),
            [this] { checkpointTick(); });
    }
    if (repl_on_ && config_.db_recovery.checkpoint_interval_s > 0.0) {
        // Shards always checkpoint: retention-mode WALs need the
        // truncation pressure, and the floor keeps standbys safe.
        queue_.scheduleAfter(
            secs(config_.db_recovery.checkpoint_interval_s),
            [this] { replCheckpointTick(); });
    }
    if (lease_on_) {
        // Heartbeat rounds start now; the lease monitor shares their
        // cadence (it can only promote after lapse + detect_s, so
        // detection latency is the monitor grain plus that grace).
        for (auto &group : shards_)
            group->startLease();
        queue_.scheduleAfter(
            std::max<SimTime>(secs(config_.repl.lease.renew_s), 1000),
            [this] { leaseMonitorTick(); });
    }
}

void
ClusterUnderTest::handleRequest(const Request &request)
{
    const SimTime at_lb = fabric_.clientLb().deliver(
        queue_.now(),
        static_cast<std::uint64_t>(config_.request_bytes));
    queue_.scheduleAt(at_lb,
                      [this, request] { routeToNode(request); });
}

void
ClusterUnderTest::routeToNode(const Request &request)
{
    // The balancer is a single server: forwarding work serializes, so
    // an undersized balancer is itself a possible cluster bottleneck.
    const SimTime now = queue_.now();
    if (lb_.saturated()) {
        // Cap shed happens before any forwarding work: the reject is
        // a front-door reset, not a served request.
        lb_.noteShed();
        tracker_.error(request, now, ResponseTracker::kNoNode,
                       ErrorKind::ShedAtLB);
        return;
    }
    const SimTime start = std::max(now, lb_free_);
    lb_free_ = start + static_cast<SimTime>(
        std::llround(config_.lb.forward_us));

    const std::size_t node = lb_.route();
    if (node == LoadBalancer::kNoNode) {
        // Every backend is ejected: the balancer fails the request.
        tracker_.error(request, now, ResponseTracker::kNoNode,
                       ErrorKind::NoBackend);
        return;
    }
    const SimTime at_node = fabric_.lbNode(node).deliver(
        lb_free_, static_cast<std::uint64_t>(config_.request_bytes));
    // Cross-lane handoff: the request leaves the balancer's lane and
    // lands on the node's. The link latency is what makes the target
    // time fall past the lookahead window.
    const lane::ToLane to_node(nodeLane(node));
    queue_.scheduleAt(at_node, [this, request, node] {
        nodes_[node]->inject(request);
    });
}

std::uint64_t
ClusterUnderTest::responseBytes(std::size_t node,
                                RequestType type) const
{
    const double kb =
        nodes_[node]->application().profile(type).response_kb;
    return std::max<std::uint64_t>(
        256, static_cast<std::uint64_t>(kb * 1024.0));
}

void
ClusterUnderTest::onNodeComplete(std::size_t node,
                                 const Request &request,
                                 SimTime finish)
{
    // Runs on the node's lane (synchronous SUT completion hook). The
    // balancer learns of the completion when the response reaches it
    // — lb_.complete lives in the at_lb closure, not here: the LB
    // cannot observe a node-local event before a message crosses the
    // wire (and in lane mode the LB's books are lane-0 state).
    const std::uint64_t bytes = responseBytes(node, request.type);
    const SimTime at_lb = fabric_.lbNode(node).deliver(
        finish, bytes, NetworkLink::Direction::Reverse);
    const lane::ToLane to_front(0);
    queue_.scheduleAt(at_lb, [this, request, node, bytes] {
        lb_.complete(node);
        const SimTime at_client = fabric_.clientLb().deliver(
            queue_.now(), bytes, NetworkLink::Direction::Reverse);
        queue_.scheduleAt(at_client, [this, request, node] {
            tracker_.complete(request, queue_.now(),
                              static_cast<std::uint32_t>(node));
        });
    });
}

void
ClusterUnderTest::dbBurst(double burst_us, std::function<void()> then)
{
    const double quantum = config_.db_quantum_us;
    const SimTime now = queue_.now();
    if (burst_us <= quantum) {
        queue_.scheduleAt(
            db_scheduler_.run(now, burst_us, Component::Db2).completion,
            std::move(then));
        return;
    }
    const SimTime slice_end =
        db_scheduler_.run(now, quantum, Component::Db2).completion;
    const double remaining = burst_us - quantum;
    queue_.scheduleAt(slice_end,
                      [this, remaining, then = std::move(then)]() mutable {
                          dbBurst(remaining, std::move(then));
                      });
}

void
ClusterUnderTest::onNodeFailure(std::size_t node,
                                const Request &request, SimTime at,
                                ErrorKind kind)
{
    // Failures are fail-fast: the client sees a reset, not a
    // response, so no reverse traffic crosses the fabric.
    lb_.complete(node);
    tracker_.error(request, at, static_cast<std::uint32_t>(node),
                   kind);
}

void
ClusterUnderTest::remoteDb(std::size_t node, RequestType type,
                           double noise,
                           SystemUnderTest::DbDone done)
{
    if (repl_on_) {
        startShardCall(node, type, noise, std::move(done));
        return;
    }
    if (resilience_on_) {
        auto call = std::make_shared<DbCall>();
        call->node = node;
        call->type = type;
        call->noise = noise;
        call->done = std::move(done);
        startDbAttempt(call);
        return;
    }
    if (adm_on_) {
        // Backpressure: the pool acquire is bounded, so DB-tier
        // saturation surfaces as a PoolTimeout error upstream
        // instead of an unbounded connection queue. The shared done
        // fires exactly once — the pool guarantees one callback.
        auto shared_done = std::make_shared<SystemUnderTest::DbDone>(
            std::move(done));
        pools_[node]->acquire(
            [this, node, type, noise, shared_done](SimTime ready) {
                plainDbQuery(node, type, noise,
                             std::move(*shared_done), ready);
            },
            [shared_done](SimTime) {
                (*shared_done)(TxnDbOutcome{},
                               ErrorKind::PoolTimeout);
            });
        return;
    }
    // JDBC-style: hold a pooled connection for the whole round trip.
    pools_[node]->acquire([this, node, type, noise,
                           done = std::move(done)](SimTime ready) {
        plainDbQuery(node, type, noise, std::move(done), ready);
    });
}

void
ClusterUnderTest::plainDbQuery(std::size_t node, RequestType type,
                               double noise,
                               SystemUnderTest::DbDone done,
                               SimTime ready)
{
    const SimTime at_db = fabric_.nodeDb(node).deliver(
        ready, static_cast<std::uint64_t>(config_.query_bytes));
    // The query leaves the node's lane for the DB tier (lane 0).
    const lane::ToLane to_db(0);
    queue_.scheduleAt(at_db, [this, node, type, noise,
                              done = std::move(done)]() mutable {
        auto outcome = std::make_shared<TxnDbOutcome>(
            db_app_->runTransaction(type));
        const TxnProfile &profile =
            nodes_[node]->application().profile(type);
        const double burst =
            profile.db_us * noise + outcome->cost.cpu_us;
        dbBurst(burst, [this, node, outcome,
                        done = std::move(done)]() mutable {
            finishDbTransaction(node, std::move(outcome),
                                std::move(done));
        });
    });
}

SimTime
ClusterUnderTest::dbDiskIo(const TxnDbOutcome &outcome, SimTime now)
{
    SimTime io_done = now;
    if (outcome.cost.pages_read > 0) {
        const IoResult io = db_disk_.read(
            now, static_cast<std::uint32_t>(outcome.cost.pages_read));
        db_disk_blocked_us_ += io.completion - now;
        io_done = io.completion;
    }
    if (outcome.cost.writebacks > 0) {
        // Asynchronous page cleaning: charge the disk, not the txn.
        db_disk_.write(now, outcome.cost.writebacks * 4096);
    }
    if (outcome.cost.log_bytes_forced > 0) {
        const IoResult io =
            db_disk_.write(io_done, outcome.cost.log_bytes_forced);
        db_disk_blocked_us_ += io.completion - io_done;
        io_done = io.completion;
    }
    if (db_recovery_on_ && outcome.wal_issued_lsn > 0) {
        // The force becomes durable when its write completes; a crash
        // before then loses the tail. The epoch guard drops confirms
        // that were in flight when the DB died.
        const std::uint64_t issued = outcome.wal_issued_lsn;
        const std::uint64_t epoch = db_epoch_;
        queue_.scheduleAt(io_done, [this, issued, epoch] {
            if (epoch == db_epoch_ && !db_down_)
                db_app_->database().confirmWalDurable(issued);
        });
    }
    return io_done;
}

void
ClusterUnderTest::finishDbTransaction(
    std::size_t node, std::shared_ptr<TxnDbOutcome> outcome,
    SystemUnderTest::DbDone done)
{
    const SimTime io_done = dbDiskIo(*outcome, queue_.now());

    // Response crosses back to the node; the connection frees once
    // the response has arrived and the EJB tier resumes.
    const SimTime at_node = fabric_.nodeDb(node).deliver(
        io_done,
        static_cast<std::uint64_t>(config_.db_response_bytes),
        NetworkLink::Direction::Reverse);
    // The response returns to the node's lane, where the connection
    // frees and the EJB tier resumes.
    const lane::ToLane to_node(nodeLane(node));
    queue_.scheduleAt(at_node, [this, node, outcome,
                                done = std::move(done)] {
        pools_[node]->release();
        done(*outcome, ErrorKind::None);
    });
}

// ---- resilient EJB->DB path ----------------------------------------
//
// Only reached when resilience_on_: attempts pass the circuit
// breaker, bound their pool wait, arm a per-attempt deadline from the
// moment the connection is granted (which also reclaims connections
// whose query or response was lost on a degraded link), and retry
// with deterministic exponential backoff until the budget runs out.

void
ClusterUnderTest::startDbAttempt(const std::shared_ptr<DbCall> &call)
{
    if (db_down_ || db_recovering_) {
        // Fail fast: the cluster knows the DB tier is off. Not a
        // breaker failure -- this is a known outage, not a timeout.
        settleDbFailure(call,
                        db_recovering_ ? ErrorKind::RecoveryWait
                                       : ErrorKind::NodeDown,
                        /*breaker_failure=*/false);
        return;
    }
    if (fabric_.partitioned() &&
        !fabric_.reachable(NetEndpoint::node(call->node),
                           NetEndpoint::dbPrimary(0))) {
        // Legacy single-box tier: `db0` names the shared DB node. A
        // node cut off from it fails fast, and not as a breaker
        // failure -- the partition is a known condition, not a
        // timeout worth tripping on.
        fabric_.notePartitionDrop();
        settleDbFailure(call, ErrorKind::Partitioned,
                        /*breaker_failure=*/false);
        return;
    }
    if (!breaker_->allowRequest(queue_.now())) {
        settleDbFailure(call, ErrorKind::DbCircuitOpen,
                        /*breaker_failure=*/false);
        return;
    }
    // Every allowed attempt settles the breaker exactly once: a pool
    // timeout counts as a failure (an exhausted pool usually means
    // the DB tier is the thing that is slow).
    pools_[call->node]->acquire(
        [this, call](SimTime ready) { runDbAttempt(call, ready); },
        [this, call](SimTime) {
            settleDbFailure(call, ErrorKind::PoolTimeout,
                            /*breaker_failure=*/true);
        });
}

void
ClusterUnderTest::runDbAttempt(const std::shared_ptr<DbCall> &call,
                               SimTime ready)
{
    const std::size_t node = call->node;
    auto settled = std::make_shared<bool>(false);

    // Per-attempt deadline, measured from connection grant. Firing
    // first means the query or its response is lost or late: tear
    // the connection down (freeing the slot) and fail the attempt.
    queue_.scheduleAt(ready + db_timeout_us_, [this, call, settled] {
        if (*settled)
            return;
        *settled = true;
        pools_[call->node]->release();
        settleDbFailure(call, ErrorKind::DbTimeout,
                        /*breaker_failure=*/true);
    });

    NetworkLink &link = fabric_.nodeDb(node);
    const bool lost = link.drawDrop();
    const SimTime at_db = link.deliver(
        ready, static_cast<std::uint64_t>(config_.query_bytes));
    if (lost)
        return; // query vanished on the wire; the deadline cleans up
    queue_.scheduleAt(at_db, [this, call, settled] {
        if (*settled)
            return;
        if (db_down_ || db_recovering_) {
            // The DB died while the query was on the wire.
            *settled = true;
            pools_[call->node]->release();
            settleDbFailure(call,
                            db_recovering_ ? ErrorKind::RecoveryWait
                                           : ErrorKind::NodeDown,
                            /*breaker_failure=*/false);
            return;
        }
        if (fabric_.partitioned() &&
            !fabric_.reachable(NetEndpoint::node(call->node),
                               NetEndpoint::dbPrimary(0))) {
            // The fabric split while the query was on the wire.
            *settled = true;
            pools_[call->node]->release();
            fabric_.notePartitionDrop();
            settleDbFailure(call, ErrorKind::Partitioned,
                            /*breaker_failure=*/false);
            return;
        }
        call->epoch = db_epoch_;
        auto outcome = std::make_shared<TxnDbOutcome>(
            db_app_->runTransaction(call->type));
        if (db_recovery_on_ && outcome->audit_token != 0)
            auditor_.noteCommitted(outcome->audit_token,
                                   outcome->commit_lsn);
        const TxnProfile &profile =
            nodes_[call->node]->application().profile(call->type);
        const double burst =
            profile.db_us * call->noise + outcome->cost.cpu_us;
        dbBurst(burst, [this, call, settled, outcome] {
            finishDbAttempt(call, settled, outcome);
        });
    });
}

void
ClusterUnderTest::finishDbAttempt(
    const std::shared_ptr<DbCall> &call,
    const std::shared_ptr<bool> &settled,
    const std::shared_ptr<TxnDbOutcome> &outcome)
{
    const SimTime io_done = dbDiskIo(*outcome, queue_.now());

    NetworkLink &link = fabric_.nodeDb(call->node);
    const bool lost = link.drawDrop();
    const SimTime at_node = link.deliver(
        io_done,
        static_cast<std::uint64_t>(config_.db_response_bytes),
        NetworkLink::Direction::Reverse);
    if (lost)
        return; // response vanished; the deadline cleans up
    queue_.scheduleAt(at_node, [this, call, settled, outcome] {
        if (*settled)
            return; // deadline already reclaimed the connection
        if (db_recovery_on_ && call->epoch != db_epoch_)
            return; // DB crashed under this txn; never ack it --
                    // the per-attempt deadline reclaims the slot
        *settled = true;
        pools_[call->node]->release();
        breaker_->recordSuccess(queue_.now());
        if (db_recovery_on_ && outcome->audit_token != 0)
            auditor_.noteAcked(outcome->audit_token);
        call->done(*outcome, ErrorKind::None);
    });
}

void
ClusterUnderTest::settleDbFailure(const std::shared_ptr<DbCall> &call,
                                  ErrorKind kind, bool breaker_failure)
{
    if (breaker_failure)
        breaker_->recordFailure(queue_.now());
    if (retry_.allowRetry(call->attempt, queue_.now())) {
        tracker_.recordRetry(kind);
        const SimTime backoff =
            retry_.backoffUs(call->attempt, retry_rng_);
        ++call->attempt;
        queue_.scheduleAfter(backoff,
                             [this, call] { startDbAttempt(call); });
        return;
    }
    // RecoveryWait and Partitioned stay visible through retries: the
    // error table should attribute the failure to recovery / the
    // split, not to the retry budget.
    const bool attributable = kind == ErrorKind::RecoveryWait ||
        kind == ErrorKind::Partitioned;
    call->done(TxnDbOutcome{},
               call->attempt > 1 && !attributable
                   ? ErrorKind::DbRetriesExhausted
                   : kind);
}

// ---- fault application ---------------------------------------------

void
ClusterUnderTest::degradeLinks(const FaultEvent &event, bool restore)
{
    const auto apply = [&](std::size_t n) {
        if (restore)
            fabric_.nodeDb(n).clearDegradation();
        else
            fabric_.nodeDb(n).setDegradation(event.latency_mult,
                                             event.drop_probability);
    };
    if (event.node == FaultEvent::kAllNodes) {
        for (std::size_t n = 0; n < nodes_.size(); ++n)
            apply(n);
    } else {
        apply(event.node);
    }
}

void
ClusterUnderTest::applyFault(const FaultEvent &event)
{
    if (event.node != FaultEvent::kAllNodes &&
        event.node >= nodes_.size() && event.kind != FaultKind::DbSlow)
        return; // targets a node this cluster doesn't have

    const SimTime now = queue_.now();
    switch (event.kind) {
      case FaultKind::NodeCrash: {
        const std::size_t node = event.node;
        nodes_[node]->crash();
        tracker_.noteNodeDown(static_cast<std::uint32_t>(node), now);
        if (event.restart_after > 0) {
            queue_.scheduleAfter(event.restart_after, [this, node] {
                nodes_[node]->restart();
                tracker_.noteNodeUp(static_cast<std::uint32_t>(node),
                                    queue_.now());
            });
        }
        return;
      }
      case FaultKind::LinkDegrade: {
        degradeLinks(event, /*restore=*/false);
        tracker_.noteDegraded(
            now, event.duration > 0 ? now + event.duration : 0);
        if (event.duration > 0) {
            queue_.scheduleAfter(event.duration, [this, event] {
                degradeLinks(event, /*restore=*/true);
            });
        }
        return;
      }
      case FaultKind::DbSlow: {
        if (repl_on_) {
            for (auto &group : shards_)
                group->disk().setServiceMultiplier(event.disk_mult);
        } else {
            db_disk_.setServiceMultiplier(event.disk_mult);
        }
        tracker_.noteDegraded(
            now, event.duration > 0 ? now + event.duration : 0);
        if (event.duration > 0) {
            queue_.scheduleAfter(event.duration, [this] {
                if (repl_on_) {
                    for (auto &group : shards_)
                        group->disk().setServiceMultiplier(1.0);
                } else {
                    db_disk_.setServiceMultiplier(1.0);
                }
            });
        }
        return;
      }
      case FaultKind::PoolKill: {
        pools_[event.node]->killIdle();
        return;
      }
      case FaultKind::DbCrash:
      case FaultKind::DbTornWrite: {
        if (repl_on_) {
            applyShardFault(event);
            return;
        }
        crashDbTier(event);
        return;
      }
      case FaultKind::Partition: {
        applyPartition(event);
        return;
      }
      case FaultKind::Switchover: {
        if (repl_on_)
            applySwitchover(event);
        return;
      }
    }
}

// ---- partition tolerance ---------------------------------------------

NetEndpoint
ClusterUnderTest::servingEndpoint(std::size_t shard) const
{
    const std::size_t member = shards_[shard]->servingMember();
    return member == repl::ShardGroup::kPrimaryMember
        ? NetEndpoint::dbPrimary(shard)
        : NetEndpoint::dbReplica(shard, member);
}

bool
ClusterUnderTest::nodeReachesShard(std::size_t node,
                                   std::size_t shard) const
{
    return fabric_.reachable(NetEndpoint::node(node),
                             servingEndpoint(shard));
}

void
ClusterUnderTest::applyPartition(const FaultEvent &event)
{
    const SimTime now = queue_.now();
    fabric_.setPartition(event.sides);
    tracker_.notePartitionWindow(
        now, event.duration > 0 ? now + event.duration : 0);
    if (event.duration > 0) {
        queue_.scheduleAfter(event.duration,
                             [this] { healPartition(); });
    }
}

void
ClusterUnderTest::healPartition()
{
    fabric_.clearPartition();
    if (!lease_on_)
        return;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        StaleRemnant &rem = stale_remnants_[s];
        if (!rem.valid)
            continue;
        rem.valid = false;
        repl::ShardGroup &group = *shards_[s];
        // The deposed primary re-ships its divergent tail carrying
        // its pre-promotion token: every stream's fence (raised at
        // promotion) refuses it before any replica disk I/O.
        for (std::size_t r = 0; r < group.replicaCount(); ++r) {
            if (group.replica(r).alive())
                group.replica(r).ship(rem.issued_lsn, rem.bytes,
                                      rem.token);
        }
        // Rejoining means rewinding the stale timeline: scan the
        // divergent tail (one sequential read) and discard it, then
        // hand the serving VIP back to the primary slot -- the
        // promoted state lives in the shared shard database, so the
        // slot resumes on the winning timeline as a plain standby
        // catch-up would.
        ++stale_rewinds_;
        stale_rewind_bytes_ += rem.bytes;
        SimTime rejoin = queue_.now();
        if (rem.bytes > 0) {
            rejoin = group.disk()
                         .readSequential(rejoin, rem.bytes)
                         .completion;
        }
        queue_.scheduleAt(rejoin, [this, s] {
            shards_[s]->setServingMember(
                repl::ShardGroup::kPrimaryMember);
        });
    }
}

void
ClusterUnderTest::applySwitchover(const FaultEvent &event)
{
    const std::size_t shard =
        event.shard == FaultEvent::kNoTarget ? 0 : event.shard;
    if (shard >= shards_.size())
        return; // targets a shard this cluster doesn't have
    failover_->plannedSwitchover(
        shard, *shards_[shard],
        [this, shard](const repl::FailoverOutcome &o) {
            tracker_.noteSwitchover(static_cast<std::uint32_t>(shard),
                                    o.blackout_begin, o.promoted_at);
        });
}

void
ClusterUnderTest::leaseMonitorTick()
{
    const SimTime now = queue_.now();
    const SimTime grace = secs(config_.repl.failover.detect_s);
    for (std::size_t s = 0; fabric_.partitioned() && s < shards_.size();
         ++s) {
        repl::ShardGroup &group = *shards_[s];
        if (group.down() || group.lease().valid(now))
            continue;
        if (now < group.lease().expiry() + grace)
            continue; // lapse not yet past the detection grace

        // Promotion is quorum-gated: the serving member must have
        // lost its majority, and some other side must hold one. With
        // neither (e.g. R=1 split down the middle) the shard stays
        // unavailable -- CP, not split-brain.
        const std::size_t members = group.replicaCount() + 1;
        const std::size_t majority = members / 2 + 1;
        const NetEndpoint serving = servingEndpoint(s);
        const std::size_t serving_member = group.servingMember();

        std::size_t with_serving = 1; // the serving member itself
        for (std::size_t r = 0; r < group.replicaCount(); ++r) {
            if (r == serving_member || !group.replica(r).alive())
                continue;
            if (fabric_.reachable(serving,
                                  NetEndpoint::dbReplica(s, r)))
                ++with_serving;
        }
        if (serving_member != repl::ShardGroup::kPrimaryMember &&
            fabric_.reachable(serving, NetEndpoint::dbPrimary(s)))
            ++with_serving;
        if (with_serving >= majority)
            continue; // serving side still holds a quorum

        // Candidate: the most-caught-up live replica cut off from the
        // serving member whose own side musters a majority.
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        std::size_t candidate = kNone;
        std::uint64_t candidate_lsn = 0;
        std::uint64_t watermark = 0;
        for (std::size_t r = 0; r < group.replicaCount(); ++r) {
            if (r == serving_member || !group.replica(r).alive())
                continue;
            const NetEndpoint ep = NetEndpoint::dbReplica(s, r);
            if (fabric_.reachable(serving, ep))
                continue; // same side as the deposed member
            std::size_t side = 1;
            std::uint64_t side_max = group.replica(r).durableLsn();
            for (std::size_t q = 0; q < group.replicaCount(); ++q) {
                if (q == r || q == serving_member ||
                    !group.replica(q).alive())
                    continue;
                if (!fabric_.reachable(
                        ep, NetEndpoint::dbReplica(s, q)))
                    continue;
                ++side;
                side_max = std::max(side_max,
                                    group.replica(q).durableLsn());
            }
            if (side < majority)
                continue;
            if (candidate == kNone ||
                group.replica(r).durableLsn() > candidate_lsn) {
                candidate = r;
                candidate_lsn = group.replica(r).durableLsn();
                watermark = side_max;
            }
        }
        if (candidate == kNone)
            continue;

        // Capture what the deposed timeline holds above W before the
        // promotion rewinds the shared database: this is the tail the
        // stale primary will try to ship on heal.
        StaleRemnant rem;
        rem.token = group.lease().fencingToken();
        rem.issued_lsn = group.database().wal().issuedLsn();
        rem.bytes = group.database().wal().bytesAbove(watermark);
        for (const WalRecord &rec : group.database().wal().records()) {
            if (rec.lsn > watermark)
                ++rem.records;
        }
        rem.valid = true;
        stale_remnants_[s] = rem;

        failover_->partitionPromote(
            s, group, candidate, watermark,
            [this, s](const repl::FailoverOutcome &o) {
                tracker_.noteFailoverBlackout(
                    static_cast<std::uint32_t>(s), o.blackout_begin,
                    o.promoted_at);
            });
    }
    queue_.scheduleAfter(
        std::max<SimTime>(secs(config_.repl.lease.renew_s), 1000),
        [this] { leaseMonitorTick(); });
}

// ---- DB crash consistency -------------------------------------------

void
ClusterUnderTest::checkpointTick()
{
    if (db_recovery_on_ && !db_down_ && !db_recovering_) {
        const CheckpointStats stats = db_app_->database().checkpoint();
        ++checkpoints_;
        checkpoint_pages_ += stats.pages_flushed;
        const std::uint64_t bytes =
            stats.pages_flushed * 4096 + stats.log_bytes_forced;
        if (bytes > 0) {
            // The checkpoint's force becomes durable when its write
            // lands (epoch-guarded like every confirm).
            const std::uint64_t issued =
                db_app_->database().wal().issuedLsn();
            const std::uint64_t epoch = db_epoch_;
            const IoResult io = db_disk_.write(queue_.now(), bytes);
            queue_.scheduleAt(io.completion, [this, issued, epoch] {
                if (epoch == db_epoch_ && !db_down_)
                    db_app_->database().confirmWalDurable(issued);
            });
        }
    }
    queue_.scheduleAfter(
        secs(config_.db_recovery.checkpoint_interval_s),
        [this] { checkpointTick(); });
}

void
ClusterUnderTest::crashDbTier(const FaultEvent &event)
{
    if (!db_recovery_on_ || db_down_ || db_recovering_)
        return; // already down; a second crash is a no-op
    ++db_epoch_;
    ++db_crashes_;
    db_down_ = true;
    db_crash_at_ = queue_.now();
    db_app_->database().crash(event.kind == FaultKind::DbTornWrite);

    // Tell the auditor which Commit records the crash preserved:
    // those still retained plus everything a checkpoint already
    // truncated as durable.
    std::unordered_set<std::uint64_t> surviving;
    for (const WalRecord &rec : db_app_->database().wal().records()) {
        if (rec.type == WalRecordType::Commit)
            surviving.insert(rec.lsn);
    }
    auditor_.noteCrash(surviving,
                       db_app_->database().wal().truncatedUpTo());

    if (event.restart_after > 0) {
        queue_.scheduleAfter(event.restart_after,
                             [this] { beginDbRecovery(); });
    }
}

void
ClusterUnderTest::beginDbRecovery()
{
    assert(db_down_ && !db_recovering_);
    db_down_ = false;
    db_recovering_ = true;
    last_recovery_ = db_app_->database().recover();

    // Recovery takes simulated time: scan the retained WAL (one
    // sequential read), fetch every touched stable page (random
    // reads -- a seek each on a spinning device), write the recovery
    // checkpoint, then burn DB CPU replaying. The tier stays out of
    // rotation (RecoveryWait) until all of it ends.
    const SimTime now = queue_.now();
    db_restart_at_ = now;
    SimTime io_done = now;
    if (last_recovery_.replay_bytes > 0) {
        io_done =
            db_disk_.readSequential(now, last_recovery_.replay_bytes)
                .completion;
    }
    if (last_recovery_.pages_flushed > 0) {
        io_done = db_disk_
                      .read(io_done, static_cast<std::uint32_t>(
                                         last_recovery_.pages_flushed))
                      .completion;
    }
    const std::uint64_t ckpt_bytes =
        last_recovery_.pages_flushed * 4096 +
        last_recovery_.checkpoint_bytes;
    if (ckpt_bytes > 0)
        io_done = db_disk_.write(io_done, ckpt_bytes).completion;

    const double replay_cpu = 1.0 +
        static_cast<double>(last_recovery_.redo_records) * 1.2 +
        static_cast<double>(last_recovery_.undo_records) * 2.0;
    queue_.scheduleAt(io_done, [this, replay_cpu] {
        dbBurst(replay_cpu, [this] { finishDbRecovery(); });
    });
}

void
ClusterUnderTest::finishDbRecovery()
{
    assert(db_recovering_);
    db_recovering_ = false;
    const SimTime now = queue_.now();
    db_replay_us_ += now - db_restart_at_;
    tracker_.noteDegraded(db_crash_at_, now);
    tracker_.noteDbRecovery(db_crash_at_, now);
    // The recovery checkpoint's write is covered by the I/O recovery
    // just charged, so its force is durable by construction here.
    db_app_->database().confirmWalDurable(
        db_app_->database().wal().issuedLsn());
    if (db_app_->auditEnabled()) {
        last_audit_ =
            auditor_.audit(db_app_->database(), db_app_->auditTable());
        audited_ = true;
    }
}

// ---- sharded / replicated DB tier (jasim::repl) ---------------------
//
// Only reached when repl_on_: every EJB->DB call draws a routing key,
// lands on the owning shard group, and runs with the resilient-path
// discipline (bounded pool wait, per-attempt deadline, deterministic
// retry backoff). A blacked-out shard fails fast with FailoverWait;
// in-flight completions are dropped by the generation guard, exactly
// like the legacy path's epoch guard.

void
ClusterUnderTest::startShardCall(std::size_t node, RequestType type,
                                 double noise,
                                 SystemUnderTest::DbDone done)
{
    auto call = std::make_shared<DbCall>();
    call->node = node;
    call->type = type;
    call->noise = noise;
    call->shard = shard_map_->shardOf(route_rng_());
    if (lease_on_ && !shards_[call->shard]->draining()) {
        // Drain accounting brackets the whole call (across retries):
        // inflightEnd fires exactly when the call settles, whether
        // with an ack or a final failure. Calls arriving mid-drain
        // are not bracketed -- they fail fast with FailoverWait and
        // never touch the shard, so counting them would let a steady
        // arrival stream wedge the drain forever.
        const std::size_t shard = call->shard;
        shards_[shard]->inflightBegin();
        call->done = [this, shard, done = std::move(done)](
                         const TxnDbOutcome &outcome, ErrorKind kind) {
            shards_[shard]->inflightEnd();
            done(outcome, kind);
        };
    } else {
        call->done = std::move(done);
    }
    startShardAttempt(call);
}

void
ClusterUnderTest::startShardAttempt(
    const std::shared_ptr<DbCall> &call)
{
    if (shards_[call->shard]->down() ||
        shards_[call->shard]->draining()) {
        // Fail fast: the shard is blacked out (failing over, or down
        // replaying its WAL on the unreplicated fallback) or draining
        // for a planned switchover.
        settleShardFailure(call, ErrorKind::FailoverWait);
        return;
    }
    if (lease_on_ && fabric_.partitioned() &&
        !nodeReachesShard(call->node, call->shard)) {
        // The partition map cuts this node off from the member
        // serving the shard: the send fails fast, no wire traffic.
        fabric_.notePartitionDrop();
        settleShardFailure(call, ErrorKind::Partitioned);
        return;
    }
    pools_[call->node]->acquire(
        [this, call](SimTime ready) { runShardAttempt(call, ready); },
        [this, call](SimTime) {
            settleShardFailure(call, ErrorKind::PoolTimeout);
        });
}

void
ClusterUnderTest::runShardAttempt(const std::shared_ptr<DbCall> &call,
                                  SimTime ready)
{
    auto settled = std::make_shared<bool>(false);

    // Per-attempt deadline from connection grant; it also reclaims
    // connections orphaned by a mid-flight blackout or a lost packet.
    queue_.scheduleAt(ready + db_timeout_us_, [this, call, settled] {
        if (*settled)
            return;
        *settled = true;
        pools_[call->node]->release();
        settleShardFailure(call, ErrorKind::DbTimeout);
    });

    NetworkLink &link = fabric_.nodeDb(call->node);
    const bool lost = link.drawDrop();
    const SimTime at_db = link.deliver(
        ready, static_cast<std::uint64_t>(config_.query_bytes));
    if (lost)
        return; // query vanished on the wire; the deadline cleans up
    queue_.scheduleAt(at_db, [this, call, settled] {
        if (*settled)
            return;
        repl::ShardGroup &group = *shards_[call->shard];
        if (group.down()) {
            // The primary died while the query was on the wire.
            *settled = true;
            pools_[call->node]->release();
            settleShardFailure(call, ErrorKind::FailoverWait);
            return;
        }
        if (lease_on_ && fabric_.partitioned() &&
            !nodeReachesShard(call->node, call->shard)) {
            // The fabric split while the query was on the wire.
            *settled = true;
            pools_[call->node]->release();
            fabric_.notePartitionDrop();
            settleShardFailure(call, ErrorKind::Partitioned);
            return;
        }
        call->generation = group.generation();
        auto outcome = std::make_shared<TxnDbOutcome>(
            group.application().runTransaction(call->type));
        if (outcome->audit_token != 0)
            group.auditor().noteCommitted(outcome->audit_token,
                                          outcome->commit_lsn);
        const TxnProfile &profile =
            nodes_[call->node]->application().profile(call->type);
        const double burst =
            profile.db_us * call->noise + outcome->cost.cpu_us;
        shardBurst(call->shard, burst, [this, call, settled, outcome] {
            finishShardAttempt(call, settled, outcome);
        });
    });
}

void
ClusterUnderTest::shardBurst(std::size_t shard, double burst_us,
                             std::function<void()> then)
{
    const double quantum = config_.db_quantum_us;
    const SimTime now = queue_.now();
    CpuScheduler &sched = shards_[shard]->scheduler();
    if (burst_us <= quantum) {
        queue_.scheduleAt(
            sched.run(now, burst_us, Component::Db2).completion,
            std::move(then));
        return;
    }
    const SimTime slice_end =
        sched.run(now, quantum, Component::Db2).completion;
    const double remaining = burst_us - quantum;
    queue_.scheduleAt(
        slice_end,
        [this, shard, remaining, then = std::move(then)]() mutable {
            shardBurst(shard, remaining, std::move(then));
        });
}

void
ClusterUnderTest::finishShardAttempt(
    const std::shared_ptr<DbCall> &call,
    const std::shared_ptr<bool> &settled,
    const std::shared_ptr<TxnDbOutcome> &outcome)
{
    repl::ShardGroup &group = *shards_[call->shard];
    if (call->generation != group.generation())
        return; // shard blacked out under this txn; never ack it --
                // the per-attempt deadline reclaims the slot

    // Charge the shard's own disk: reads, async page cleaning, and
    // the commit's log force.
    const SimTime now = queue_.now();
    SimTime io_done = now;
    if (outcome->cost.pages_read > 0) {
        const IoResult io = group.disk().read(
            now, static_cast<std::uint32_t>(outcome->cost.pages_read));
        db_disk_blocked_us_ += io.completion - now;
        io_done = io.completion;
    }
    if (outcome->cost.writebacks > 0)
        group.disk().write(now, outcome->cost.writebacks * 4096);
    if (outcome->cost.log_bytes_forced > 0) {
        const IoResult io =
            group.disk().write(io_done, outcome->cost.log_bytes_forced);
        db_disk_blocked_us_ += io.completion - io_done;
        io_done = io.completion;
    }

    if (outcome->wal_issued_lsn > 0) {
        // The force is durable when its write lands; that same moment
        // the window ships to every replica stream.
        const std::uint64_t issued = outcome->wal_issued_lsn;
        const std::uint64_t bytes = outcome->cost.log_bytes_forced;
        const std::uint64_t gen = call->generation;
        const std::size_t shard = call->shard;
        queue_.scheduleAt(io_done, [this, shard, issued, bytes, gen] {
            repl::ShardGroup &g = *shards_[shard];
            if (gen != g.generation() || g.down())
                return;
            g.database().confirmWalDurable(issued);
            g.shipForced(issued, bytes);
        });
    }

    if (group.syncMode() && group.replicaCount() > 0 &&
        outcome->wal_issued_lsn > 0) {
        // Sync replication: the response leaves only once a replica
        // holds the commit durably. Registered after the ship event
        // above (FIFO at io_done), so the waiter sees the pre-ship
        // watermark and fires on the replica's force completion.
        queue_.scheduleAt(io_done, [this, call, settled, outcome] {
            repl::ShardGroup &g = *shards_[call->shard];
            if (*settled || call->generation != g.generation())
                return;
            g.whenAckDurable(outcome->wal_issued_lsn,
                             [this, call, settled, outcome] {
                                 sendShardResponse(call, settled,
                                                   outcome);
                             });
        });
        return;
    }
    queue_.scheduleAt(io_done, [this, call, settled, outcome] {
        sendShardResponse(call, settled, outcome);
    });
}

void
ClusterUnderTest::sendShardResponse(
    const std::shared_ptr<DbCall> &call,
    const std::shared_ptr<bool> &settled,
    const std::shared_ptr<TxnDbOutcome> &outcome)
{
    if (*settled)
        return;
    if (call->generation != shards_[call->shard]->generation())
        return;
    if (lease_on_) {
        // A member that cannot prove its lease must not ack: the
        // response is withheld and the attempt deadline reclaims the
        // slot. Same if the partition cut the response path.
        if (!shards_[call->shard]->leaseValid())
            return;
        if (fabric_.partitioned() &&
            !nodeReachesShard(call->node, call->shard)) {
            fabric_.notePartitionDrop();
            return;
        }
    }
    NetworkLink &link = fabric_.nodeDb(call->node);
    const bool lost = link.drawDrop();
    const SimTime at_node = link.deliver(
        queue_.now(),
        static_cast<std::uint64_t>(config_.db_response_bytes),
        NetworkLink::Direction::Reverse);
    if (lost)
        return; // response vanished; the deadline cleans up
    queue_.scheduleAt(at_node, [this, call, settled, outcome] {
        if (*settled)
            return;
        repl::ShardGroup &group = *shards_[call->shard];
        if (call->generation != group.generation())
            return;
        *settled = true;
        pools_[call->node]->release();
        if (outcome->audit_token != 0)
            group.auditor().noteAcked(outcome->audit_token);
        call->done(*outcome, ErrorKind::None);
    });
}

void
ClusterUnderTest::settleShardFailure(
    const std::shared_ptr<DbCall> &call, ErrorKind kind)
{
    if (retry_.allowRetry(call->attempt, queue_.now())) {
        tracker_.recordRetry(kind);
        const SimTime backoff =
            retry_.backoffUs(call->attempt, retry_rng_);
        ++call->attempt;
        queue_.scheduleAfter(
            backoff, [this, call] { startShardAttempt(call); });
        return;
    }
    // FailoverWait and Partitioned stay visible through retries, like
    // RecoveryWait on the legacy path: attribute the failure to the
    // blackout / the split, not to the retry budget.
    const bool attributable = kind == ErrorKind::FailoverWait ||
        kind == ErrorKind::Partitioned;
    call->done(TxnDbOutcome{},
               call->attempt > 1 && !attributable
                   ? ErrorKind::DbRetriesExhausted
                   : kind);
}

// ---- repl-mode faults & checkpoints ---------------------------------

void
ClusterUnderTest::applyShardFault(const FaultEvent &event)
{
    const std::size_t shard =
        event.shard == FaultEvent::kNoTarget ? 0 : event.shard;
    if (shard >= shards_.size())
        return; // targets a shard this cluster doesn't have
    repl::ShardGroup &group = *shards_[shard];

    if (event.replica != FaultEvent::kNoTarget) {
        // Replica-scoped dbcrash: the standby's stream dies (its
        // watermarks reset -- a restart resilvers from the next
        // shipped window). The primary keeps serving.
        if (event.replica >= group.replicaCount())
            return;
        group.replica(event.replica).crash();
        if (event.restart_after > 0) {
            const std::size_t replica = event.replica;
            queue_.scheduleAfter(
                event.restart_after, [this, shard, replica] {
                    shards_[shard]->replica(replica).restart();
                });
        }
        return;
    }

    // Primary fault. With a live replica the shard fails over -- for
    // a torn write too: the tear hits the primary's WAL device, and
    // everything above the promotion watermark is discarded anyway.
    if (failover_->primaryCrashed(
            shard, group, [this, shard](const repl::FailoverOutcome &o) {
                tracker_.noteFailoverBlackout(
                    static_cast<std::uint32_t>(shard), o.crash_at,
                    o.promoted_at);
            }))
        return;
    // No replica to promote: blocking crash + ARIES recovery, scoped
    // to this shard. The other shards keep serving.
    crashShardTier(shard, event.kind == FaultKind::DbTornWrite,
                   event.restart_after);
}

void
ClusterUnderTest::crashShardTier(std::size_t shard, bool torn,
                                 SimTime restart_after)
{
    repl::ShardGroup &group = *shards_[shard];
    if (group.down())
        return; // already down; a second crash is a no-op
    ++db_crashes_;
    group.beginBlackout();
    shard_outages_[shard].crash_at = queue_.now();
    group.database().crash(torn);

    std::unordered_set<std::uint64_t> surviving;
    for (const WalRecord &rec : group.database().wal().records()) {
        if (rec.type == WalRecordType::Commit)
            surviving.insert(rec.lsn);
    }
    group.auditor().noteCrash(surviving,
                              group.database().wal().truncatedUpTo());

    if (restart_after > 0) {
        queue_.scheduleAfter(restart_after, [this, shard] {
            beginShardRecovery(shard);
        });
    }
}

void
ClusterUnderTest::beginShardRecovery(std::size_t shard)
{
    repl::ShardGroup &group = *shards_[shard];
    ShardOutage &outage = shard_outages_[shard];
    outage.last = group.database().recover();
    last_recovery_ = outage.last;

    // Same recovery cost model as the legacy path, on the shard's own
    // disk and CPUs: scan the retained WAL, fetch touched stable
    // pages, write the recovery checkpoint, replay on CPU.
    const SimTime now = queue_.now();
    outage.restart_at = now;
    SimTime io_done = now;
    if (outage.last.replay_bytes > 0) {
        io_done = group.disk()
                      .readSequential(now, outage.last.replay_bytes)
                      .completion;
    }
    if (outage.last.pages_flushed > 0) {
        io_done = group.disk()
                      .read(io_done, static_cast<std::uint32_t>(
                                         outage.last.pages_flushed))
                      .completion;
    }
    const std::uint64_t ckpt_bytes =
        outage.last.pages_flushed * 4096 + outage.last.checkpoint_bytes;
    if (ckpt_bytes > 0)
        io_done = group.disk().write(io_done, ckpt_bytes).completion;

    const double replay_cpu = 1.0 +
        static_cast<double>(outage.last.redo_records) * 1.2 +
        static_cast<double>(outage.last.undo_records) * 2.0;
    queue_.scheduleAt(io_done, [this, shard, replay_cpu] {
        shardBurst(shard, replay_cpu,
                   [this, shard] { finishShardRecovery(shard); });
    });
}

void
ClusterUnderTest::finishShardRecovery(std::size_t shard)
{
    repl::ShardGroup &group = *shards_[shard];
    ShardOutage &outage = shard_outages_[shard];
    const SimTime now = queue_.now();
    db_replay_us_ += now - outage.restart_at;
    tracker_.noteDegraded(outage.crash_at, now);
    tracker_.noteDbRecovery(outage.crash_at, now);
    // The recovery checkpoint's write is covered by the I/O just
    // charged, so its force is durable by construction here. Standby
    // streams (if any) resilver from the next shipped window.
    group.database().confirmWalDurable(
        group.database().wal().issuedLsn());
    last_audit_ = group.auditNow();
    audited_ = true;
    group.endBlackout();
}

void
ClusterUnderTest::replCheckpointTick()
{
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        repl::ShardGroup &group = *shards_[s];
        if (group.down())
            continue;
        const CheckpointStats stats = group.database().checkpoint();
        ++checkpoints_;
        checkpoint_pages_ += stats.pages_flushed;
        const std::uint64_t bytes =
            stats.pages_flushed * 4096 + stats.log_bytes_forced;
        if (bytes == 0)
            continue;
        // The checkpoint's force becomes durable when its write lands
        // and ships like any other forced window, so idle standbys
        // still advance their watermarks.
        const std::uint64_t issued = group.database().wal().issuedLsn();
        const std::uint64_t forced = stats.log_bytes_forced;
        const std::uint64_t gen = group.generation();
        const IoResult io = group.disk().write(queue_.now(), bytes);
        queue_.scheduleAt(io.completion, [this, s, issued, forced,
                                          gen] {
            repl::ShardGroup &g = *shards_[s];
            if (gen != g.generation() || g.down())
                return;
            g.database().confirmWalDurable(issued);
            g.shipForced(issued, forced);
        });
    }
    queue_.scheduleAfter(
        secs(config_.db_recovery.checkpoint_interval_s),
        [this] { replCheckpointTick(); });
}

AuditReport
ClusterUnderTest::clusterAuditNow() const
{
    AuditReport total;
    for (const auto &group : shards_) {
        const AuditReport r = group->auditNow();
        total.surviving += r.surviving;
        total.acked_total += r.acked_total;
        total.lost_acked += r.lost_acked;
        total.lost_durable += r.lost_durable;
        total.resurrected += r.resurrected;
        total.duplicates += r.duplicates;
    }
    return total;
}

// ---- health probes --------------------------------------------------

void
ClusterUnderTest::probeNode(std::size_t node)
{
    const HealthConfig &health = config_.resilience.health;
    // The probe rides the LB->node link both ways; a crashed node's
    // "response" is the connection refusal the balancer observes.
    const SimTime at_node =
        fabric_.lbNode(node).deliver(queue_.now(), health.probe_bytes);
    queue_.scheduleAt(at_node, [this, node] {
        const bool healthy = !nodes_[node]->isDown();
        const SimTime back = fabric_.lbNode(node).deliver(
            queue_.now(), config_.resilience.health.probe_bytes,
            NetworkLink::Direction::Reverse);
        queue_.scheduleAt(back, [this, node, healthy] {
            applyProbeResult(node, healthy);
        });
    });
    queue_.scheduleAfter(secs(health.interval_s),
                         [this, node] { probeNode(node); });
}

void
ClusterUnderTest::applyProbeResult(std::size_t node, bool healthy)
{
    switch (health_->onProbeResult(node, healthy, queue_.now())) {
      case HealthChecker::Transition::Eject:
        lb_.setNodeDown(node);
        break;
      case HealthChecker::Transition::Readmit:
        lb_.setNodeUp(node);
        break;
      case HealthChecker::Transition::None:
        break;
    }
}

} // namespace jasim
