#include "core/sut.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/distributions.h"

namespace jasim {

SystemUnderTest::SystemUnderTest(
    const SutConfig &config,
    std::shared_ptr<const WorkloadProfiles> profiles,
    std::shared_ptr<const MethodRegistry> registry, std::uint64_t seed,
    EventQueue *external_queue)
    : config_(config), profiles_(std::move(profiles)),
      registry_(std::move(registry)),
      owned_queue_(external_queue ? nullptr
                                  : std::make_unique<EventQueue>()),
      queue_(external_queue ? *external_queue : *owned_queue_),
      scheduler_(config.cpus),
      disk_(config.disk), gc_(config.gc, seed ^ 0x6cull),
      jit_(config.jit, *registry_),
      app_(config.db, config.injection_rate, seed ^ 0xdbull),
      web_(config.web), ejb_(config.ejb),
      pool_(queue_, config.was_threads, "WebContainer"),
      rng_(seed)
{
    assert(profiles_ && registry_);
    if (config_.admission.webEnabled()) {
        adm::AdmissionConfig admission = config_.admission;
        if (admission.max_concurrent == 0)
            admission.max_concurrent = config_.was_threads;
        admission.min_concurrent = std::min(
            admission.min_concurrent, admission.max_concurrent);
        admission_ = std::make_unique<adm::AdmissionController>(
            admission, queue_);
    }
}

void
SystemUnderTest::start(SimTime end)
{
    DriverConfig driver_config = config_.driver;
    driver_config.injection_rate = config_.injection_rate;
    driver_ = std::make_unique<Driver>(
        driver_config, queue_, rng_() ^ 0xd21eull,
        [this](const Request &request) { handleRequest(request); });
    driver_->start(0, end);
}

void
SystemUnderTest::crash()
{
    down_ = true;
    ++crash_epoch_;
}

void
SystemUnderTest::failJob(const std::shared_ptr<Job> &job,
                         ErrorKind kind)
{
    if (job->failed)
        return;
    job->failed = true;
    const SimTime now = queue_.now();
    if (failure_hook_)
        failure_hook_(job->request, now, kind);
    else
        tracker_.error(job->request, now, 0, kind);
    job->done();
}

void
SystemUnderTest::handleRequest(const Request &request)
{
    if (down_) {
        // Connection refused: fail fast, no WAS thread consumed.
        const SimTime now = queue_.now();
        if (failure_hook_)
            failure_hook_(request, now, ErrorKind::NodeDown);
        else
            tracker_.error(request, now, 0, ErrorKind::NodeDown);
        return;
    }
    if (admission_) {
        admission_->offer(
            [this, request](SimTime) { dispatch(request); },
            [this, request](SimTime at, adm::ShedReason) {
                // Fast reject: a tiny canned response, no WAS
                // thread, no service time charged.
                web_.noteRejected();
                if (failure_hook_)
                    failure_hook_(request, at, ErrorKind::Rejected);
                else
                    tracker_.error(request, at, 0,
                                   ErrorKind::Rejected);
            });
        return;
    }
    dispatch(request);
}

void
SystemUnderTest::dispatch(const Request &request)
{
    pool_.submit([this, request](SimTime, ThreadPool::Done done) {
        auto job = std::make_shared<Job>();
        job->request = request;
        job->profile = &app_.profile(request.type);
        job->noise = demandNoise();
        if (admission_) {
            // The admission slot frees with the WAS thread, whatever
            // the request's outcome.
            job->done = [this, done = std::move(done)] {
                done();
                admission_->release();
            };
        } else {
            job->done = std::move(done);
        }
        job->epoch = crash_epoch_;
        advanceJob(job);
    });
}

void
SystemUnderTest::scheduleAdvance(const std::shared_ptr<Job> &job,
                                 SimTime when)
{
    queue_.scheduleAt(when, [this, job] { advanceJob(job); });
}

void
SystemUnderTest::runBurst(const std::shared_ptr<Job> &job,
                          double burst_us, Component component)
{
    if (jobAborted(*job)) {
        failJob(job, ErrorKind::NodeDown);
        return;
    }
    const double quantum = config_.cpu_quantum_us;
    const SimTime now = queue_.now();
    if (burst_us <= quantum) {
        scheduleAdvance(job,
                        scheduler_.run(now, burst_us, component)
                            .completion);
        return;
    }
    const SimTime slice_end =
        scheduler_.run(now, quantum, component).completion;
    const double remaining = burst_us - quantum;
    queue_.scheduleAt(slice_end, [this, job, remaining, component] {
        runBurst(job, remaining, component);
    });
}

double
SystemUnderTest::demandNoise()
{
    const double sigma = config_.demand_sigma;
    return drawLogNormal(rng_, -sigma * sigma / 2.0, sigma);
}

double
SystemUnderTest::jitWarmupFactor(SimTime now, const TxnProfile &profile,
                                 double &compile_us)
{
    // Sample the methods this transaction exercises, record their
    // invocations (driving tier promotion), and compute the slowdown
    // relative to steady-state (hot) code.
    const CodeLayout &layout = profiles_->layout(Component::WasJit);
    const std::uint64_t per_method = std::max<std::uint64_t>(
        1, profile.method_invocations / config_.methods_per_txn);
    double speedup_sum = 0.0;
    for (std::size_t k = 0; k < config_.methods_per_txn; ++k) {
        const std::size_t method = layout.sampleHot(rng_);
        compile_us += jit_.recordInvocations(method, per_method, now);
        speedup_sum += jit_.speedup(method);
    }
    const double avg_speedup =
        speedup_sum / static_cast<double>(config_.methods_per_txn);
    const double factor = config_.jit.reference_speedup / avg_speedup;
    return std::clamp(factor, 0.85, config_.max_jit_slowdown);
}

SimTime
SystemUnderTest::runGc(SimTime now)
{
    const GcEvent event = gc_.collect(now);
    const SimTime mark_end = now + millis(event.mark_ms);
    const SimTime sweep_end = mark_end + millis(event.sweep_ms) +
        millis(event.compact_ms);
    scheduler_.blockAll(now, mark_end, Component::GcMark);
    scheduler_.blockAll(mark_end, sweep_end, Component::GcSweep);
    return sweep_end;
}

void
SystemUnderTest::advanceJob(const std::shared_ptr<Job> &job)
{
    if (jobAborted(*job)) {
        failJob(job, ErrorKind::NodeDown);
        return;
    }
    const SimTime now = queue_.now();
    const TxnProfile &profile = *job->profile;
    const double noise = job->noise;
    const RequestType type = job->request.type;

    switch (job->stage++) {
      case 0: { // web front end, inbound (HTTP only)
        if (!isWebRequest(type)) {
            advanceJob(job);
            return;
        }
        const double container_us =
            web_.handle(type, profile.response_kb);
        const double burst = 0.6 * (profile.web_us * noise +
                                    container_us);
        runBurst(job, burst, Component::Web);
        return;
      }

      case 1: { // kernel, inbound (network / syscalls)
        const double burst = 0.4 * profile.kernel_us * noise;
        runBurst(job, burst, Component::Kernel);
        return;
      }

      case 2: { // JITed application-server code + container
        double compile_us = 0.0;
        const double jit_factor =
            jitWarmupFactor(now, profile, compile_us);
        const double container_us = ejb_.invoke(profile.beans);
        const double burst =
            profile.was_jit_us * noise * jit_factor + container_us;
        job->compile_us = compile_us;
        runBurst(job, burst, Component::WasJit);
        return;
      }

      case 3: { // interpreter / JVM native / JIT compiler itself
        const double burst =
            profile.was_other_us * noise + job->compile_us;
        runBurst(job, burst, Component::WasOther);
        return;
      }

      case 4: { // Java allocation; may trigger a stop-the-world GC
        const auto alloc_bytes = static_cast<std::uint64_t>(
            profile.alloc_bytes * config_.alloc_scale);
        if (!gc_.allocate(alloc_bytes, now)) {
            const SimTime gc_end = runGc(now);
            const bool ok = gc_.allocate(alloc_bytes, gc_end);
            assert(ok && "allocation must succeed right after GC");
            (void)ok;
            scheduleAdvance(job, gc_end);
            return;
        }
        advanceJob(job);
        return;
      }

      case 5: { // data tier CPU
        if (remote_db_) {
            // Remote data tier: the fabric/pool/DB-node machinery
            // owns stages 5-7; resume at the outbound kernel stage
            // when the response returns.
            job->stage = 8;
            remote_db_(type, noise,
                       [this, job](const TxnDbOutcome &outcome,
                                   ErrorKind error) {
                           if (error != ErrorKind::None) {
                               failJob(job, error);
                               return;
                           }
                           job->db = outcome;
                           advanceJob(job);
                       });
            return;
        }
        job->db = app_.runTransaction(type);
        const double burst =
            profile.db_us * noise + job->db.cost.cpu_us;
        runBurst(job, burst, Component::Db2);
        return;
      }

      case 6: { // data-tier read I/O
        if (job->db.cost.pages_read == 0) {
            advanceJob(job);
            return;
        }
        const IoResult io = disk_.read(
            now, static_cast<std::uint32_t>(job->db.cost.pages_read));
        disk_blocked_us_ += io.completion - now;
        scheduleAdvance(job, io.completion);
        return;
      }

      case 7: { // log force + async page cleaning
        if (job->db.cost.writebacks > 0) {
            // Asynchronous cleaning: charge the disk, not the request.
            disk_.write(now, job->db.cost.writebacks * 4096);
        }
        if (job->db.cost.log_bytes_forced == 0) {
            advanceJob(job);
            return;
        }
        const IoResult io =
            disk_.write(now, job->db.cost.log_bytes_forced);
        disk_blocked_us_ += io.completion - now;
        scheduleAdvance(job, io.completion);
        return;
      }

      case 8: { // kernel, outbound
        const double burst = 0.6 * profile.kernel_us * noise;
        runBurst(job, burst, Component::Kernel);
        return;
      }

      case 9: { // web response marshalling (HTTP only)
        if (!isWebRequest(type)) {
            advanceJob(job);
            return;
        }
        const double burst = 0.4 * profile.web_us * noise;
        runBurst(job, burst, Component::Web);
        return;
      }

      default: { // complete
        tracker_.complete(job->request, now);
        if (completion_hook_)
            completion_hook_(job->request, now);
        job->done();
        return;
      }
    }
}

VmStatRow
SystemUnderTest::recordVmstatWindow(
    SimTime from, SimTime to,
    const std::array<SimTime, componentCount> &busy_delta,
    SimTime disk_blocked_delta)
{
    VmStatRow row;
    row.time = to;
    const double capacity =
        static_cast<double>((to - from) * config_.cpus);
    if (capacity <= 0.0)
        return row;

    double user = 0.0, system = 0.0;
    for (std::size_t c = 0; c < componentCount; ++c) {
        const auto component = static_cast<Component>(c);
        if (isSystemComponent(component))
            system += static_cast<double>(busy_delta[c]);
        else
            user += static_cast<double>(busy_delta[c]);
    }
    user = std::min(user, capacity);
    system = std::min(system, capacity - user);
    double idle = capacity - user - system;
    double iowait =
        std::min(idle, static_cast<double>(disk_blocked_delta));
    idle -= iowait;

    row.user_pct = user / capacity * 100.0;
    row.system_pct = system / capacity * 100.0;
    row.idle_pct = idle / capacity * 100.0;
    row.iowait_pct = iowait / capacity * 100.0;
    vmstat_.record(row);
    return row;
}

} // namespace jasim
