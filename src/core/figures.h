/**
 * @file
 * Figure-building helpers shared by the bench binaries.
 *
 * Extracts named metric series from recorded windows and formats the
 * summary tables, so each bench stays a thin "run + print" program.
 */

#ifndef JASIM_CORE_FIGURES_H
#define JASIM_CORE_FIGURES_H

#include <ostream>

#include "core/experiment.h"
#include "stats/time_series.h"

namespace jasim {

/** Per-window derived metrics. */
enum class WindowMetric
{
    Cpi,
    SpeculationRate,
    L1MissesPerCycle,
    L1LoadMissRate,       //!< load misses / loads
    L1StoreMissRate,      //!< store misses / stores
    CondMispredictRate,   //!< cond mispredicts / cond branches
    TargetMispredictRate, //!< target mispredicts / indirect branches
    BranchesPerInst,
    DeratMissPerInst,
    IeratMissPerInst,
    DtlbMissPerInst,
    ItlbMissPerInst,
    SrqSyncFraction,      //!< sync-occupied SRQ cycles / cycles
    LoadsPerInst,
    StoresPerInst,
    GcFraction,           //!< GC share of window busy time
};

/** Extract one metric as a time series over the recorded windows. */
TimeSeries windowSeries(const std::vector<WindowRecord> &windows,
                        WindowMetric metric, const std::string &name);

/** Mean of a metric over all windows (0 when empty). */
double windowMean(const std::vector<WindowRecord> &windows,
                  WindowMetric metric);

/** Mean of a metric over GC / non-GC windows only. */
double windowMeanIf(const std::vector<WindowRecord> &windows,
                    WindowMetric metric, bool gc_windows);

/** Shares of L1D load-miss fills by data source (sums to 1). */
std::array<double, 8> loadSourceShares(const ExecStats &total);

/** Print the standard run header (config + throughput + SLA). */
void printRunSummary(std::ostream &os, const ExperimentConfig &config,
                     const ExperimentResult &result);

} // namespace jasim

#endif // JASIM_CORE_FIGURES_H
