/**
 * @file
 * The microarchitectural window simulator.
 *
 * For each HPM sample window, runs a representative number of
 * synthetic instructions through the full simulated hardware (shared
 * cache hierarchy, per-core translation/branch/lock state), with the
 * instruction budget split across components according to the
 * window's execution mix and interleaved across the four cores in
 * small chunks so coherence traffic is realistic. Generator and
 * hardware state persist across windows, as on real hardware.
 */

#ifndef JASIM_CORE_WINDOW_SIMULATOR_H
#define JASIM_CORE_WINDOW_SIMULATOR_H

#include <array>
#include <memory>
#include <vector>

#include "core/mix_model.h"
#include "cpu/core_model.h"
#include "synth/component_profiles.h"

namespace jasim {

/** Window-simulation parameters. */
struct WindowSimConfig
{
    HierarchyConfig hierarchy;
    CoreConfig core;

    /** Sample instructions simulated per window. */
    std::size_t sample_insts = 150000;
    /** Interleave chunk (instructions per core before rotating). */
    std::size_t chunk = 512;
    /** Nominal processor frequency for counter scaling. */
    double freq_ghz = 1.5;

    bool heap_large_pages = true;
    bool code_large_pages = false;

    /** Fraction of virtual-call sites the JIT devirtualizes. */
    double devirtualized_fraction = 0.0;

    /**
     * One switch for the exact memory + translation fast paths
     * (`--fastpath`, default on); propagated into hierarchy.fastpath
     * and core.xlat.fastpath by the constructor.
     */
    bool fastpath = true;
};

/** The simulator. */
class WindowSimulator
{
  public:
    WindowSimulator(const WindowSimConfig &config,
                    std::shared_ptr<const WorkloadProfiles> profiles,
                    std::uint64_t seed);

    /**
     * Simulate one window.
     *
     * @param mix the window's execution mix.
     * @param gc_live_bytes current live-heap size (for the mark phase).
     * @return raw (unscaled) execution statistics for the window.
     */
    ExecStats simulateWindow(const WindowMix &mix,
                             std::uint64_t gc_live_bytes);

    /**
     * Counter scale factor that blows the sampled window up to the
     * nominal hardware volume: nominal busy cycles / simulated cycles.
     */
    double scaleFor(const ExecStats &stats, double busy_us) const;

    /** Per-method fetch samples from the JIT-code generators. */
    std::vector<std::uint64_t> jitMethodSamples() const;

    MemoryHierarchy &hierarchy() { return *hierarchy_; }
    const WindowSimConfig &config() const { return config_; }

    /** Flush translation structures (page-size ablations). */
    void flushTranslation();

  private:
    WindowSimConfig config_;
    std::shared_ptr<const WorkloadProfiles> profiles_;
    AddressSpace space_;
    std::unique_ptr<MemoryHierarchy> hierarchy_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    /** generators_[core][component] */
    std::vector<std::array<std::unique_ptr<StreamGenerator>,
                           componentCount>> generators_;
};

} // namespace jasim

#endif // JASIM_CORE_WINDOW_SIMULATOR_H
