/**
 * @file
 * The cluster under test: N app-server nodes behind a load balancer,
 * sharing one remote database tier over a simulated network fabric.
 *
 * Horizontal-scaling extension of the paper's single-box SUT (its §7
 * leaves scaling as future work): every node is a full
 * SystemUnderTest stack (scheduler, JVM heap/GC, JIT, thread pool,
 * vmstat) driven through a front-end balancer, and every EJB->DB call
 * leaves the node — it acquires a connection from the node's bounded
 * pool, crosses the node-DB link, runs its CPU and I/O on the shared
 * DB node, and returns. All of it shares one event queue, so cluster
 * runs are exactly as deterministic as single-box runs. The shared DB
 * tier (or an undersized balancer) is the emergent scaling bottleneck
 * the abl_cluster_scaling bench sweeps for.
 */

#ifndef JASIM_CORE_CLUSTER_H
#define JASIM_CORE_CLUSTER_H

#include <memory>
#include <vector>

#include "core/sut.h"
#include "db/durability_audit.h"
#include "fault/injector.h"
#include "fault/resilience.h"
#include "lane/lane_scheduler.h"
#include "net/connection_pool.h"
#include "net/fabric.h"
#include "net/load_balancer.h"
#include "repl/replicated_db.h"
#include "repl/shard_map.h"

namespace jasim {

/** Crash-consistency knobs for the shared DB tier. */
struct DbRecoveryConfig
{
    /** Fuzzy-checkpoint cadence (0 disables checkpointing). */
    double checkpoint_interval_s = 30.0;

    /** Stamp write txns with audit tokens and reconcile post-crash. */
    bool audit = true;

    /**
     * Arm recovery even with no dbcrash/tornwrite in the schedule
     * (for armed-baseline overhead measurements). A schedule
     * containing a DB fault arms it implicitly.
     */
    bool force_enabled = false;
};

/** Everything configurable about the cluster. */
struct ClusterConfig
{
    /** App-server node count. */
    std::size_t nodes = 2;

    /**
     * Per-node stack configuration; `node.injection_rate` is the
     * per-node IR (the cluster driver injects nodes x that).
     */
    SutConfig node;

    LbConfig lb;
    FabricConfig fabric;

    /** Each node's connection pool to the DB tier. */
    ConnectionPoolConfig db_pool;

    /** The shared database node. */
    std::size_t db_cpus = 4;
    DiskConfig db_disk;          //!< RAM disk by default
    double db_quantum_us = 2000.0;

    /** Message sizes (bytes) on the wire. */
    double request_bytes = 512.0;     //!< client -> LB -> node
    double query_bytes = 384.0;       //!< node -> DB, per transaction
    double db_response_bytes = 2048.0;

    /**
     * Scripted chaos (empty = healthy run). A non-empty schedule also
     * arms the resilience machinery below; an empty one leaves the
     * cluster byte-identical to a build without fault support.
     */
    FaultSchedule faults;

    /** Health checks, retries, breaker, timeouts. */
    ResilienceConfig resilience;

    /** DB-tier crash consistency (armed by dbcrash/tornwrite verbs). */
    DbRecoveryConfig db_recovery;

    /**
     * Sharded/replicated DB tier (jasim::repl). The default --
     * shards=1, replicas=0 -- leaves the legacy single shared DB box
     * byte-identical to a build without replication support.
     */
    repl::ReplConfig repl;

    /**
     * Host threads for parallel event execution (jasim::lane). 0 (the
     * default) runs the untouched serial kernel; any value >= 1 runs
     * the windowed lane scheduler, whose output is bit-identical for
     * every thread count — `lanes 16` replays exactly the schedule
     * `lanes 1` does. Lane mode silently falls back to serial when
     * the run cannot be lane-partitioned: faults/resilience/recovery
     * armed, replication on, or a zero-latency fabric (no lookahead).
     */
    std::size_t lanes = 0;

    /** Aggregate injection rate the driver runs at. */
    double totalInjectionRate() const
    {
        return node.injection_rate * static_cast<double>(nodes);
    }
};

/** The assembled cluster. */
class ClusterUnderTest
{
  public:
    ClusterUnderTest(const ClusterConfig &config,
                     std::shared_ptr<const WorkloadProfiles> profiles,
                     std::shared_ptr<const MethodRegistry> registry,
                     std::uint64_t seed);

    /** Begin injecting load over [0, end). */
    void start(SimTime end);

    /** Advance the shared discrete-event simulation to `horizon`. */
    void advanceTo(SimTime horizon) { queue_.runUntil(horizon); }

    EventQueue &queue() { return queue_; }
    const ClusterConfig &config() const { return config_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    SystemUnderTest &node(std::size_t i) { return *nodes_[i]; }
    const SystemUnderTest &node(std::size_t i) const
    {
        return *nodes_[i];
    }
    LoadBalancer &loadBalancer() { return lb_; }
    NetworkFabric &fabric() { return fabric_; }
    ConnectionPool &dbPool(std::size_t node) { return *pools_[node]; }
    CpuScheduler &dbScheduler() { return db_scheduler_; }
    DiskModel &dbDisk() { return db_disk_; }
    Jas2004Application &dbApplication() { return *db_app_; }

    /**
     * Aggregate tracker: completions are recorded when the response
     * reaches the client, labelled with the serving node.
     */
    ResponseTracker &tracker() { return tracker_; }
    const ResponseTracker &tracker() const { return tracker_; }

    /** The cluster driver; null until start(). */
    const Driver *driver() const { return driver_.get(); }

    /** True when `--admission` armed any part of the shed ladder. */
    bool admissionEnabled() const { return adm_on_; }

    /** Retry policy state (token-bucket budget counters). */
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Aggregate operations per second over [from, to). */
    double jops(SimTime from, SimTime to) const
    {
        return tracker_.jops(from, to);
    }

    /** DB-node CPU utilization over [0, now); shard mean in repl mode. */
    double dbUtilization() const
    {
        if (!repl_on_)
            return db_scheduler_.utilization(queue_.now());
        double sum = 0.0;
        for (const auto &group : shards_)
            sum += group->scheduler().utilization(queue_.now());
        return sum / static_cast<double>(shards_.size());
    }

    /** Cumulative time transactions waited on DB-node disk I/O. */
    SimTime dbDiskBlockedUs() const { return db_disk_blocked_us_; }

    // ---- fault injection & resilience ----

    /** True when the schedule (or force_enabled) armed the machinery. */
    bool resilienceEnabled() const { return resilience_on_; }

    /** Null on healthy runs. */
    const FaultInjector *injector() const { return injector_.get(); }
    CircuitBreaker *breaker() { return breaker_.get(); }
    const CircuitBreaker *breaker() const { return breaker_.get(); }
    HealthChecker *healthChecker() { return health_.get(); }
    const HealthChecker *healthChecker() const { return health_.get(); }

    // ---- DB crash consistency ----

    /** True when a DB fault verb (or force_enabled) armed recovery. */
    bool dbRecoveryEnabled() const { return db_recovery_on_; }

    /** True from a DB crash until its recovery completes. */
    bool dbDown() const { return db_down_ || db_recovering_; }

    std::uint64_t dbCrashCount() const { return db_crashes_; }
    std::uint64_t checkpointCount() const { return checkpoints_; }
    std::uint64_t checkpointPagesFlushed() const
    {
        return checkpoint_pages_;
    }

    /** Stats of the most recent completed recovery. */
    const RecoveryStats &lastRecovery() const { return last_recovery_; }

    /** Time spent replaying (restart -> back in rotation), summed. */
    SimTime dbReplayUs() const { return db_replay_us_; }

    /** Audit result published at the end of each recovery. */
    const AuditReport &lastAudit() const { return last_audit_; }
    bool audited() const { return audited_; }

    /** Reconcile the audit table right now (e.g. at end of run). */
    AuditReport auditNow() const
    {
        if (repl_on_)
            return clusterAuditNow();
        return auditor_.audit(db_app_->database(),
                              db_app_->auditTable());
    }

    // ---- sharded / replicated DB tier (jasim::repl) ----

    /** True when config.repl asked for >1 shard or >=1 replica. */
    bool replicationEnabled() const { return repl_on_; }

    std::size_t shardCount() const { return shards_.size(); }
    repl::ShardGroup &shard(std::size_t s) { return *shards_[s]; }
    const repl::ShardGroup &shard(std::size_t s) const
    {
        return *shards_[s];
    }
    const repl::ShardMap &shardMap() const { return *shard_map_; }

    /** Null outside repl mode. */
    const repl::FailoverController *failoverController() const
    {
        return failover_.get();
    }

    /** Field-wise sum of every shard's audit (repl mode only). */
    AuditReport clusterAuditNow() const;

    // ---- partition tolerance (lease/fencing, armed by schedule) ----

    /**
     * True when a partition/switchover verb (or lease.force_enabled)
     * armed the per-shard lease machinery. Without it the replicated
     * tier runs with the PR 6 semantics, byte-identically.
     */
    bool leaseEnabled() const { return lease_on_; }

    /**
     * Endpoint of the member currently serving a shard (the primary
     * slot, or the promoted replica during a partition).
     */
    NetEndpoint servingEndpoint(std::size_t shard) const;

    /** Deposed-primary divergent tails fenced and rewound at heal. */
    std::uint64_t staleRewinds() const { return stale_rewinds_; }
    std::uint64_t staleRewindBytes() const
    {
        return stale_rewind_bytes_;
    }

    // ---- parallel lane mode (jasim::lane) ----

    /** True when the windowed lane scheduler drives this run. */
    bool laneModeActive() const { return lane_sched_ != nullptr; }

    /** Null when lane mode is off or fell back to serial. */
    const lane::LaneScheduler *laneScheduler() const
    {
        return lane_sched_.get();
    }

    /** Lane owning node `n`'s events (lane 0 is driver/LB/DB). */
    static constexpr std::size_t nodeLane(std::size_t n)
    {
        return n + 1;
    }

  private:
    ClusterConfig config_;
    std::shared_ptr<const WorkloadProfiles> profiles_;
    std::shared_ptr<const MethodRegistry> registry_;

    EventQueue queue_;
    NetworkFabric fabric_;
    LoadBalancer lb_;
    CpuScheduler db_scheduler_;
    DiskModel db_disk_;
    std::unique_ptr<Jas2004Application> db_app_;
    std::vector<std::unique_ptr<ConnectionPool>> pools_;
    std::vector<std::unique_ptr<SystemUnderTest>> nodes_;
    ResponseTracker tracker_;
    std::uint64_t seed_;
    std::unique_ptr<Driver> driver_;
    SimTime lb_free_ = 0; //!< balancer single-server serializer
    SimTime db_disk_blocked_us_ = 0;

    bool resilience_on_ = false;
    bool adm_on_ = false; //!< admission/backpressure ladder armed
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<HealthChecker> health_;
    std::unique_ptr<CircuitBreaker> breaker_;
    RetryPolicy retry_;
    Rng retry_rng_;           //!< backoff jitter (own forked stream)
    SimTime db_timeout_us_ = 0;

    bool db_recovery_on_ = false;
    bool db_down_ = false;       //!< crashed, restart not yet begun
    bool db_recovering_ = false; //!< restarted, replaying the WAL
    std::uint64_t db_epoch_ = 0; //!< bumped at each DB crash
    SimTime db_crash_at_ = 0;
    SimTime db_restart_at_ = 0;
    SimTime db_replay_us_ = 0;
    std::uint64_t db_crashes_ = 0;
    std::uint64_t checkpoints_ = 0;
    std::uint64_t checkpoint_pages_ = 0;
    RecoveryStats last_recovery_;
    DurabilityAuditor auditor_;
    AuditReport last_audit_;
    bool audited_ = false;

    // ---- replicated DB tier state (only used when repl_on_) ----
    bool repl_on_ = false;
    std::unique_ptr<repl::ShardMap> shard_map_;
    std::vector<std::unique_ptr<repl::ShardGroup>> shards_;
    std::unique_ptr<repl::FailoverController> failover_;
    Rng route_rng_; //!< shard-routing key draws (own forked stream)

    // ---- partition tolerance state (only used when lease_on_) ----
    bool lease_on_ = false;

    /**
     * What a deposed primary still holds above the promotion
     * watermark, captured at promotion time. On heal the tail ships
     * with the old fencing token, bounces on every stream's fence,
     * and the deposed timeline is rewound (sequential read of the
     * divergent tail) before the member rejoins as a standby.
     */
    struct StaleRemnant
    {
        bool valid = false;
        std::uint64_t token = 0;      //!< fencing token pre-promotion
        std::uint64_t issued_lsn = 0; //!< stale timeline's WAL head
        std::uint64_t bytes = 0;      //!< log bytes above the watermark
        std::uint64_t records = 0;    //!< records above the watermark
    };
    std::vector<StaleRemnant> stale_remnants_;
    std::uint64_t stale_rewinds_ = 0;
    std::uint64_t stale_rewind_bytes_ = 0;

    /** Per-shard outage bookkeeping for the replicas==0 fallback. */
    struct ShardOutage
    {
        SimTime crash_at = 0;
        SimTime restart_at = 0;
        RecoveryStats last;
    };
    std::vector<ShardOutage> shard_outages_;

    /** One EJB->DB call, across its (possibly retried) attempts. */
    struct DbCall
    {
        std::size_t node = 0;
        RequestType type = RequestType::Browse;
        double noise = 1.0;
        std::size_t attempt = 1;
        std::uint64_t epoch = 0; //!< DB epoch when the txn executed
        std::size_t shard = 0;   //!< owning shard (repl mode)
        std::uint64_t generation = 0; //!< shard generation at execute
        SystemUnderTest::DbDone done;
    };

    void handleRequest(const Request &request);
    void routeToNode(const Request &request);
    void onNodeComplete(std::size_t node, const Request &request,
                        SimTime finish);
    void onNodeFailure(std::size_t node, const Request &request,
                       SimTime at, ErrorKind kind);
    void remoteDb(std::size_t node, RequestType type, double noise,
                  SystemUnderTest::DbDone done);
    /** Plain (non-resilient) DB round trip, connection in hand. */
    void plainDbQuery(std::size_t node, RequestType type,
                      double noise, SystemUnderTest::DbDone done,
                      SimTime ready);
    void finishDbTransaction(std::size_t node,
                             std::shared_ptr<TxnDbOutcome> outcome,
                             SystemUnderTest::DbDone done);

    /** Run a DB-node CPU burst in scheduler quanta, then `then`. */
    void dbBurst(double burst_us, std::function<void()> then);

    /** Charge the DB node's disk for one txn; returns I/O-done time. */
    SimTime dbDiskIo(const TxnDbOutcome &outcome, SimTime now);

    // resilient EJB->DB path (only reached when resilience_on_)
    void startDbAttempt(const std::shared_ptr<DbCall> &call);
    void runDbAttempt(const std::shared_ptr<DbCall> &call,
                      SimTime ready);
    void finishDbAttempt(const std::shared_ptr<DbCall> &call,
                         const std::shared_ptr<bool> &settled,
                         const std::shared_ptr<TxnDbOutcome> &outcome);
    void settleDbFailure(const std::shared_ptr<DbCall> &call,
                         ErrorKind kind, bool breaker_failure);

    void applyFault(const FaultEvent &event);
    void degradeLinks(const FaultEvent &event, bool restore);
    void probeNode(std::size_t node);
    void applyProbeResult(std::size_t node, bool healthy);

    // DB crash consistency (only reached when db_recovery_on_)
    void checkpointTick();
    void crashDbTier(const FaultEvent &event);
    void beginDbRecovery();
    void finishDbRecovery();

    // sharded EJB->DB path (only reached when repl_on_)
    void startShardCall(std::size_t node, RequestType type,
                        double noise, SystemUnderTest::DbDone done);
    void startShardAttempt(const std::shared_ptr<DbCall> &call);
    void runShardAttempt(const std::shared_ptr<DbCall> &call,
                         SimTime ready);
    void finishShardAttempt(
        const std::shared_ptr<DbCall> &call,
        const std::shared_ptr<bool> &settled,
        const std::shared_ptr<TxnDbOutcome> &outcome);
    void sendShardResponse(
        const std::shared_ptr<DbCall> &call,
        const std::shared_ptr<bool> &settled,
        const std::shared_ptr<TxnDbOutcome> &outcome);
    void settleShardFailure(const std::shared_ptr<DbCall> &call,
                            ErrorKind kind);
    void shardBurst(std::size_t shard, double burst_us,
                    std::function<void()> then);

    // repl-mode fault handling: replica-scoped crash/restart, primary
    // failover, and the unreplicated per-shard crash+recover fallback
    void applyShardFault(const FaultEvent &event);
    void crashShardTier(std::size_t shard, bool torn,
                        SimTime restart_after);
    void beginShardRecovery(std::size_t shard);
    void finishShardRecovery(std::size_t shard);
    void replCheckpointTick();

    // partition tolerance (only reached when the schedule can split
    // the fabric or hand a primary off)
    void applyPartition(const FaultEvent &event);
    void healPartition();
    void applySwitchover(const FaultEvent &event);
    void leaseMonitorTick();
    /** Node n can currently reach the member serving `shard`. */
    bool nodeReachesShard(std::size_t node, std::size_t shard) const;

    std::uint64_t responseBytes(std::size_t node,
                                RequestType type) const;

    /**
     * Windowed parallel scheduler (lane mode); null in serial runs.
     * Declared last so it is destroyed first — it must detach from
     * queue_ while the queue (and every lane's closures) still live.
     */
    std::unique_ptr<lane::LaneScheduler> lane_sched_;
};

} // namespace jasim

#endif // JASIM_CORE_CLUSTER_H
