/**
 * @file
 * Execution-mix extraction.
 *
 * The coupling point between the two simulation levels: scheduler
 * busy-time deltas over one HPM window become the per-component
 * instruction budget of the microarchitectural window simulation.
 */

#ifndef JASIM_CORE_MIX_MODEL_H
#define JASIM_CORE_MIX_MODEL_H

#include <array>

#include "sim/types.h"
#include "synth/component_profiles.h"

namespace jasim {

/** One window's execution mix. */
struct WindowMix
{
    /** Fraction of busy time per component (sums to 1 when busy). */
    std::array<double, componentCount> fraction{};
    /** Total busy core-microseconds in the window. */
    double busy_us = 0.0;
    /** Idle fraction of total capacity. */
    double idle_fraction = 1.0;
    /** True when any GC phase ran in the window. */
    bool gc_active = false;
};

/**
 * Compute the mix from two scheduler busy snapshots.
 *
 * @param previous snapshot at window start.
 * @param current snapshot at window end.
 * @param window_us window length.
 * @param cpus CPU count (for the idle fraction).
 */
WindowMix computeMix(
    const std::array<SimTime, componentCount> &previous,
    const std::array<SimTime, componentCount> &current,
    SimTime window_us, std::size_t cpus);

} // namespace jasim

#endif // JASIM_CORE_MIX_MODEL_H
