#include "jvm/method_registry.h"

#include <algorithm>
#include <array>

#include "sim/distributions.h"

namespace jasim {

const char *
methodCategoryName(MethodCategory category)
{
    switch (category) {
      case MethodCategory::WebSphere: return "WebSphere";
      case MethodCategory::EnterpriseJavaServices:
        return "Enterprise Java Services";
      case MethodCategory::JavaLibrary: return "Java Library";
      case MethodCategory::Benchmark: return "jas2004";
      case MethodCategory::OtherLibrary: return "Other libraries";
    }
    return "?";
}

namespace {

const char *const packageFor[] = {
    "com.ibm.ws", "com.ibm.ejs", "java.util", "org.spec.jappserver",
    "com.vendor.lib",
};

const char *const classStems[] = {
    "Request",  "Session", "Transaction", "Connection", "Container",
    "Order",    "Vehicle", "Inventory",   "Dispatcher", "Cache",
    "Registry", "Buffer",  "Channel",     "Codec",      "Queue",
};

const char *const methodStems[] = {
    "process",  "handle",  "invoke",  "dispatch", "lookup",
    "convert",  "encode",  "decode",  "validate", "persist",
    "resolve",  "acquire", "release", "copy",     "format",
};

/** Rank-bucketed category weights (hot -> tail). */
struct BucketWeights
{
    std::size_t upto; //!< rank bound (exclusive)
    std::array<double, methodCategoryCount> weights;
};

constexpr BucketWeights bucketTable[] = {
    // WebSphere, EJS, JavaLib, Benchmark, Other
    {250, {0.50, 0.26, 0.18, 0.02, 0.04}},
    {2000, {0.45, 0.21, 0.12, 0.05, 0.17}},
    {~std::size_t{0}, {0.40, 0.16, 0.10, 0.10, 0.24}},
};

} // namespace

MethodRegistry::MethodRegistry(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    methods_.reserve(count);
    for (std::size_t rank = 0; rank < count; ++rank) {
        const BucketWeights *bucket = &bucketTable[0];
        for (const auto &b : bucketTable) {
            bucket = &b;
            if (rank < b.upto)
                break;
        }
        DiscreteSampler sampler(
            {bucket->weights.begin(), bucket->weights.end()});
        const auto category = static_cast<MethodCategory>(sampler(rng));

        const char *pkg =
            packageFor[static_cast<std::size_t>(category)];
        const char *cls = classStems[rng.below(std::size(classStems))];
        const char *stem =
            methodStems[rng.below(std::size(methodStems))];

        MethodInfo info;
        info.name = std::string(pkg) + "." + cls + "Impl." + stem +
            std::to_string(rank % 97);
        info.category = category;
        info.bytecode_bytes = static_cast<std::uint32_t>(
            std::clamp(drawLogNormal(rng, 5.0, 0.9), 16.0, 8192.0));
        methods_.push_back(std::move(info));
    }
}

std::size_t
MethodRegistry::categoryCount(MethodCategory category) const
{
    std::size_t count = 0;
    for (const auto &m : methods_) {
        if (m.category == category)
            ++count;
    }
    return count;
}

} // namespace jasim
