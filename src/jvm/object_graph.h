/**
 * @file
 * Live-object graph for reachability-based collection.
 *
 * Allocation units ("cells") stand in for clusters of Java objects at
 * a configurable byte granularity. Each cell can be referenced by a
 * root slot (with an expiry time modelling request/session lifetime)
 * and by inter-object edges; the GC's mark phase does a real traversal
 * from the live roots, so liveness is genuinely reachability, not a
 * scripted number.
 */

#ifndef JASIM_JVM_OBJECT_GRAPH_H
#define JASIM_JVM_OBJECT_GRAPH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace jasim {

/** Identifier of an allocated cell. */
using CellId = std::uint64_t;

/** One allocation unit. */
struct Cell
{
    std::uint64_t heap_offset = 0;
    std::uint32_t bytes = 0;
    /** Root expiry; 0 means not rooted. */
    SimTime root_expiry = 0;
    /** Outgoing references. */
    std::vector<CellId> edges;
    bool marked = false;
};

/** Result of a mark traversal. */
struct MarkResult
{
    std::uint64_t live_cells = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t visited_edges = 0;
};

/**
 * The object graph and its root set.
 */
class ObjectGraph
{
  public:
    explicit ObjectGraph(std::uint64_t seed) : rng_(seed) {}

    /**
     * Register a new cell rooted until `expiry`.
     * With `edge_probability` an edge is added from a random recent
     * cell to the new one (so some cells outlive their root).
     */
    CellId addCell(std::uint64_t heap_offset, std::uint32_t bytes,
                   SimTime expiry, double edge_probability = 0.2);

    /** Remove roots that expired before `now`. */
    void expireRoots(SimTime now);

    /** Mark all cells reachable from live roots. */
    MarkResult mark();

    /**
     * Sweep: invoke `reclaim(offset, bytes)` on every unmarked cell
     * and remove it from the graph. Returns the number reclaimed.
     * Clears marks on survivors.
     */
    template <typename Reclaim>
    std::uint64_t
    sweep(Reclaim &&reclaim)
    {
        std::uint64_t reclaimed = 0;
        for (auto it = cells_.begin(); it != cells_.end();) {
            if (!it->second.marked) {
                reclaim(it->second.heap_offset, it->second.bytes);
                it = cells_.erase(it);
                ++reclaimed;
            } else {
                it->second.marked = false;
                ++it;
            }
        }
        rebuildRecent();
        return reclaimed;
    }

    /** Visit every cell mutably (compaction relocates offsets). */
    template <typename Fn>
    void
    forEachCell(Fn &&fn)
    {
        for (auto &[id, cell] : cells_)
            fn(cell);
    }

    std::size_t cellCount() const { return cells_.size(); }

    /** Sum of bytes across all cells (for invariants). */
    std::uint64_t totalBytes() const;

    const Cell *find(CellId id) const;

  private:
    Rng rng_;
    std::unordered_map<CellId, Cell> cells_;
    std::vector<CellId> recent_; //!< ring of recently allocated ids
    std::size_t recent_head_ = 0;
    CellId next_id_ = 1;

    static constexpr std::size_t recentCapacity = 512;

    void rebuildRecent();
};

} // namespace jasim

#endif // JASIM_JVM_OBJECT_GRAPH_H
