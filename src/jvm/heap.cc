#include "jvm/heap.h"

#include <cassert>

namespace jasim {

Heap::Heap(const HeapConfig &config) : config_(config)
{
    assert(config.size_bytes > 0);
    free_ = config.size_bytes;
    insertChunk(0, config.size_bytes);
}

void
Heap::insertChunk(std::uint64_t offset, std::uint64_t bytes)
{
    chunks_[offset] = bytes;
    if (bytes >= config_.dark_threshold) {
        by_size_.emplace(bytes, offset);
        usable_ += bytes;
    }
}

void
Heap::eraseChunk(std::map<std::uint64_t, std::uint64_t>::iterator it)
{
    const auto [offset, bytes] = *it;
    if (bytes >= config_.dark_threshold) {
        auto range = by_size_.equal_range(bytes);
        for (auto s = range.first; s != range.second; ++s) {
            if (s->second == offset) {
                by_size_.erase(s);
                break;
            }
        }
        usable_ -= bytes;
    }
    chunks_.erase(it);
}

std::optional<std::uint64_t>
Heap::allocate(std::uint64_t bytes)
{
    assert(bytes > 0);
    const auto fit = by_size_.lower_bound(bytes);
    if (fit == by_size_.end())
        return std::nullopt;
    const std::uint64_t offset = fit->second;
    const auto chunk = chunks_.find(offset);
    assert(chunk != chunks_.end());
    const std::uint64_t size = chunk->second;
    eraseChunk(chunk);
    if (size > bytes)
        insertChunk(offset + bytes, size - bytes);
    used_ += bytes;
    free_ -= bytes;
    return offset;
}

void
Heap::free(std::uint64_t offset, std::uint64_t bytes)
{
    assert(bytes > 0);
    used_ -= bytes;
    free_ += bytes;

    auto next = chunks_.lower_bound(offset);
    if (next != chunks_.begin()) {
        auto prev = std::prev(next);
        assert(prev->first + prev->second <= offset && "double free");
        if (prev->first + prev->second == offset) {
            offset = prev->first;
            bytes += prev->second;
            eraseChunk(prev);
        }
    }
    next = chunks_.lower_bound(offset);
    if (next != chunks_.end() && offset + bytes == next->first) {
        bytes += next->second;
        eraseChunk(next);
    }
    insertChunk(offset, bytes);
}

std::uint64_t
Heap::largestFreeChunk() const
{
    return by_size_.empty() ? 0 : by_size_.rbegin()->first;
}

std::uint64_t
Heap::compact(std::uint64_t live_bytes)
{
    assert(live_bytes <= config_.size_bytes);
    const std::uint64_t dark_before = darkBytes();
    chunks_.clear();
    by_size_.clear();
    usable_ = 0;
    used_ = live_bytes;
    free_ = config_.size_bytes - live_bytes;
    if (free_ > 0)
        insertChunk(live_bytes, free_);
    return dark_before;
}

bool
Heap::accountingConsistent() const
{
    std::uint64_t listed = 0;
    std::uint64_t listed_usable = 0;
    std::uint64_t prev_end = 0;
    bool ordered = true;
    for (const auto &[offset, size] : chunks_) {
        listed += size;
        if (size >= config_.dark_threshold)
            listed_usable += size;
        if (offset < prev_end)
            ordered = false;
        prev_end = offset + size;
    }
    std::uint64_t sized = 0;
    for (const auto &[size, offset] : by_size_) {
        const auto it = chunks_.find(offset);
        if (it == chunks_.end() || it->second != size)
            return false;
        sized += size;
    }
    return ordered && listed == free_ && listed_usable == usable_ &&
        sized == usable_ && used_ + free_ == config_.size_bytes;
}

} // namespace jasim
