/**
 * @file
 * Registry of the Java methods behind the flat jas2004 profile.
 *
 * 8500 JITed methods (paper Section 4.1.2) with synthesized names and
 * ownership categories. Indices align with the JIT code layout's
 * segments and with the hotness ranks of its Zipf sampler: method i is
 * the i-th hottest. Category assignment is rank-dependent so the
 * benchmark's own code lands mostly in the lukewarm tail -- that is
 * how "only 2% of CPU cycles in jas2004 code" coexists with the
 * benchmark driving all the load.
 */

#ifndef JASIM_JVM_METHOD_REGISTRY_H
#define JASIM_JVM_METHOD_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace jasim {

/** Who owns a method. */
enum class MethodCategory : std::uint8_t
{
    WebSphere,
    EnterpriseJavaServices,
    JavaLibrary,
    Benchmark, //!< jas2004's own application code
    OtherLibrary, //!< JDBC driver, MQ client, XML parsers, ...
};

inline constexpr std::size_t methodCategoryCount = 5;

/** Printable category name. */
const char *methodCategoryName(MethodCategory category);

/** Static facts about one method. */
struct MethodInfo
{
    std::string name;
    MethodCategory category;
    std::uint32_t bytecode_bytes;
};

/** The method table. */
class MethodRegistry
{
  public:
    /** @param count number of methods (8500 in the study). */
    MethodRegistry(std::size_t count, std::uint64_t seed);

    std::size_t size() const { return methods_.size(); }

    const MethodInfo &method(std::size_t index) const
    {
        return methods_[index];
    }

    /** Number of methods in a category. */
    std::size_t categoryCount(MethodCategory category) const;

  private:
    std::vector<MethodInfo> methods_;
};

} // namespace jasim

#endif // JASIM_JVM_METHOD_REGISTRY_H
