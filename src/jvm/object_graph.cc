#include "jvm/object_graph.h"

#include <deque>

namespace jasim {

CellId
ObjectGraph::addCell(std::uint64_t heap_offset, std::uint32_t bytes,
                     SimTime expiry, double edge_probability)
{
    const CellId id = next_id_++;
    Cell cell;
    cell.heap_offset = heap_offset;
    cell.bytes = bytes;
    cell.root_expiry = expiry;
    cells_.emplace(id, std::move(cell));

    // Occasionally a recent object takes a reference to the new one,
    // letting it survive its own root (session state, caches).
    if (!recent_.empty() && rng_.chance(edge_probability)) {
        const CellId from =
            recent_[rng_.below(recent_.size())];
        auto it = cells_.find(from);
        if (it != cells_.end() && it->second.edges.size() < 4)
            it->second.edges.push_back(id);
    }

    if (recent_.size() < recentCapacity) {
        recent_.push_back(id);
    } else {
        recent_[recent_head_] = id;
        recent_head_ = (recent_head_ + 1) % recentCapacity;
    }
    return id;
}

void
ObjectGraph::expireRoots(SimTime now)
{
    for (auto &[id, cell] : cells_) {
        if (cell.root_expiry != 0 && cell.root_expiry < now)
            cell.root_expiry = 0;
    }
}

MarkResult
ObjectGraph::mark()
{
    MarkResult result;
    std::deque<CellId> work;
    for (auto &[id, cell] : cells_) {
        if (cell.root_expiry != 0 && !cell.marked) {
            cell.marked = true;
            work.push_back(id);
        }
    }
    while (!work.empty()) {
        const CellId id = work.front();
        work.pop_front();
        auto it = cells_.find(id);
        if (it == cells_.end())
            continue;
        ++result.live_cells;
        result.live_bytes += it->second.bytes;
        for (const CellId ref : it->second.edges) {
            ++result.visited_edges;
            auto ref_it = cells_.find(ref);
            if (ref_it != cells_.end() && !ref_it->second.marked) {
                ref_it->second.marked = true;
                work.push_back(ref);
            }
        }
    }
    return result;
}

std::uint64_t
ObjectGraph::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[id, cell] : cells_)
        total += cell.bytes;
    return total;
}

const Cell *
ObjectGraph::find(CellId id) const
{
    const auto it = cells_.find(id);
    return it == cells_.end() ? nullptr : &it->second;
}

void
ObjectGraph::rebuildRecent()
{
    // Drop ids of swept cells from the recent ring.
    std::vector<CellId> survivors;
    survivors.reserve(recent_.size());
    for (const CellId id : recent_) {
        if (cells_.count(id))
            survivors.push_back(id);
    }
    recent_ = std::move(survivors);
    recent_head_ = 0;
}

} // namespace jasim
