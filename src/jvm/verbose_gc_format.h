/**
 * @file
 * verbosegc-style textual output.
 *
 * The studied JVM's -verbosegc flag emitted per-collection records;
 * this formatter renders GcEvents in that spirit so runs can be
 * eyeballed (and diffed) the way the authors worked.
 */

#ifndef JASIM_JVM_VERBOSE_GC_FORMAT_H
#define JASIM_JVM_VERBOSE_GC_FORMAT_H

#include <ostream>

#include "jvm/verbose_gc.h"

namespace jasim {

/** Render one collection as a verbosegc-style record. */
void printVerboseGcEvent(std::ostream &os, const GcEvent &event,
                         std::size_t id,
                         std::uint64_t heap_size_bytes);

/** Render a whole log plus its summary block. */
void printVerboseGcLog(std::ostream &os, const VerboseGcLog &log,
                       std::uint64_t heap_size_bytes, SimTime elapsed);

} // namespace jasim

#endif // JASIM_JVM_VERBOSE_GC_FORMAT_H
