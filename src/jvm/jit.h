/**
 * @file
 * The JIT compilation framework model.
 *
 * Tiered, invocation-counter-driven compilation: methods start
 * interpreted, are compiled at rising optimization levels as they
 * prove hot, and the compiler itself consumes CPU time charged to the
 * "WAS non-JITed" share of the profile. The paper's 60-minute runs
 * exist precisely so the important methods reach the high tiers with
 * aggressive inlining -- the model reproduces that warm-up dynamic.
 */

#ifndef JASIM_JVM_JIT_H
#define JASIM_JVM_JIT_H

#include <cstdint>
#include <vector>

#include "jvm/method_registry.h"
#include "sim/types.h"

namespace jasim {

/** Optimization tiers. */
enum class CompileTier : std::uint8_t
{
    Interpreted,
    Warm,       //!< quick compile, light opts
    Hot,        //!< full opts
    Scorching,  //!< aggressive inlining + profile-directed opts
};

const char *compileTierName(CompileTier tier);

/** Thresholds and compile-cost parameters. */
struct JitConfig
{
    std::uint64_t warm_threshold = 1000;
    std::uint64_t hot_threshold = 50000;
    std::uint64_t scorching_threshold = 1000000;

    /** Compile cost in microseconds per bytecode byte, by tier. */
    double warm_us_per_byte = 0.6;
    double hot_us_per_byte = 3.0;
    double scorching_us_per_byte = 9.0;

    /** Machine-code expansion factor over bytecode, by tier. */
    double warm_expansion = 4.0;
    double hot_expansion = 6.0;
    double scorching_expansion = 8.0; //!< inlining duplicates callees

    /** Relative execution speed vs interpreted (1x). */
    double warm_speedup = 5.0;
    double hot_speedup = 9.0;
    double scorching_speedup = 11.0;

    /**
     * Expected average speedup of the steady-state tier mixture;
     * service-demand profiles are calibrated against this, so the
     * warm-up factor is (reference / current average), settling to
     * ~1.0 once the important methods are compiled.
     */
    double reference_speedup = 6.3;
};

/** One compilation performed by the JIT. */
struct CompileRecord
{
    std::size_t method = 0;
    CompileTier tier = CompileTier::Warm;
    double compile_us = 0.0;
    SimTime when = 0;
};

/** The JIT compiler state across a run. */
class JitCompiler
{
  public:
    JitCompiler(const JitConfig &config, const MethodRegistry &registry);

    /**
     * Record `count` invocations of `method` at time `now`; performs
     * any threshold-crossing compilations.
     * @return CPU microseconds spent compiling as a result.
     */
    double recordInvocations(std::size_t method, std::uint64_t count,
                             SimTime now);

    CompileTier tier(std::size_t method) const
    {
        return state_[method].tier;
    }

    std::uint64_t invocations(std::size_t method) const
    {
        return state_[method].invocations;
    }

    /** Relative execution speed of the method at its current tier. */
    double speedup(std::size_t method) const;

    /** Total CPU microseconds spent in the compiler so far. */
    double totalCompileUs() const { return total_compile_us_; }

    /** Machine code bytes emitted so far (code cache footprint). */
    std::uint64_t codeCacheBytes() const { return code_cache_bytes_; }

    /** Methods currently at or above the given tier. */
    std::size_t methodsAtOrAbove(CompileTier tier) const;

    const std::vector<CompileRecord> &compileLog() const { return log_; }

    const JitConfig &config() const { return config_; }

  private:
    struct MethodState
    {
        std::uint64_t invocations = 0;
        CompileTier tier = CompileTier::Interpreted;
    };

    JitConfig config_;
    const MethodRegistry &registry_;
    std::vector<MethodState> state_;
    std::vector<CompileRecord> log_;
    double total_compile_us_ = 0.0;
    std::uint64_t code_cache_bytes_ = 0;

    double compile(std::size_t method, CompileTier tier, SimTime now);
};

} // namespace jasim

#endif // JASIM_JVM_JIT_H
