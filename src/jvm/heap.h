/**
 * @file
 * The Java heap: byte accounting and a coalescing free list.
 *
 * Models the flat (non-generational) mark-sweep-compact heap of the
 * studied JVM. Allocation takes the best-fit usable chunk; freeing
 * returns chunks and coalesces neighbours. Chunks smaller than the
 * dark-matter threshold are unusable for allocation -- this "dark
 * matter" is exactly the fragmentation the paper blames for the
 * slowly growing live-looking heap (~1 MB/min). Dark chunks are
 * resurrected when a neighbouring free makes them big enough, or
 * reclaimed wholesale by a compaction.
 */

#ifndef JASIM_JVM_HEAP_H
#define JASIM_JVM_HEAP_H

#include <cstdint>
#include <map>
#include <optional>

#include "sim/types.h"

namespace jasim {

/** Heap sizing and fragmentation parameters. */
struct HeapConfig
{
    std::uint64_t size_bytes = 1024ull * 1024 * 1024;
    /** Free chunks below this size are dark matter. */
    std::uint32_t dark_threshold = 1024;
};

/**
 * Byte-granular heap with a coalescing, size-indexed free list.
 *
 * Offsets are heap-relative. All operations are O(log chunks).
 */
class Heap
{
  public:
    explicit Heap(const HeapConfig &config);

    const HeapConfig &config() const { return config_; }

    /**
     * Allocate `bytes` (best fit among usable chunks). Returns the
     * offset, or nullopt when no usable chunk is large enough (the
     * GC trigger).
     */
    std::optional<std::uint64_t> allocate(std::uint64_t bytes);

    /** Return a block to the free list, coalescing neighbours. */
    void free(std::uint64_t offset, std::uint64_t bytes);

    /** Bytes currently allocated to live + dead-but-unswept objects. */
    std::uint64_t usedBytes() const { return used_; }

    /** Total free bytes including dark matter. */
    std::uint64_t freeBytes() const { return free_; }

    /** Free bytes in chunks large enough to allocate from. */
    std::uint64_t usableBytes() const { return usable_; }

    /** Bytes trapped in chunks below the dark threshold. */
    std::uint64_t darkBytes() const { return free_ - usable_; }

    /** Largest usable free chunk (0 when none). */
    std::uint64_t largestFreeChunk() const;

    /** Number of free chunks (fragmentation measure). */
    std::size_t freeChunkCount() const { return chunks_.size(); }

    /**
     * Compact: slide live data to offset 0, leaving one free block.
     * The caller supplies total live bytes. Returns recovered dark
     * bytes.
     */
    std::uint64_t compact(std::uint64_t live_bytes);

    /** Invariant check for tests: maps consistent, sums match. */
    bool accountingConsistent() const;

  private:
    HeapConfig config_;
    std::map<std::uint64_t, std::uint64_t> chunks_; //!< offset -> size
    std::multimap<std::uint64_t, std::uint64_t> by_size_; //!< usable only
    std::uint64_t used_ = 0;
    std::uint64_t free_ = 0;
    std::uint64_t usable_ = 0;

    void insertChunk(std::uint64_t offset, std::uint64_t bytes);
    void eraseChunk(std::map<std::uint64_t, std::uint64_t>::iterator it);
};

} // namespace jasim

#endif // JASIM_JVM_HEAP_H
