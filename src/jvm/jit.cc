#include "jvm/jit.h"

#include <cassert>

namespace jasim {

const char *
compileTierName(CompileTier tier)
{
    switch (tier) {
      case CompileTier::Interpreted: return "interpreted";
      case CompileTier::Warm: return "warm";
      case CompileTier::Hot: return "hot";
      case CompileTier::Scorching: return "scorching";
    }
    return "?";
}

JitCompiler::JitCompiler(const JitConfig &config,
                         const MethodRegistry &registry)
    : config_(config), registry_(registry), state_(registry.size())
{
}

double
JitCompiler::compile(std::size_t method, CompileTier tier, SimTime now)
{
    const auto &info = registry_.method(method);
    double us_per_byte = 0.0;
    double expansion = 0.0;
    switch (tier) {
      case CompileTier::Warm:
        us_per_byte = config_.warm_us_per_byte;
        expansion = config_.warm_expansion;
        break;
      case CompileTier::Hot:
        us_per_byte = config_.hot_us_per_byte;
        expansion = config_.hot_expansion;
        break;
      case CompileTier::Scorching:
        us_per_byte = config_.scorching_us_per_byte;
        expansion = config_.scorching_expansion;
        break;
      case CompileTier::Interpreted:
        assert(false && "cannot compile to interpreted");
        return 0.0;
    }
    const double cost =
        us_per_byte * static_cast<double>(info.bytecode_bytes);
    state_[method].tier = tier;
    code_cache_bytes_ += static_cast<std::uint64_t>(
        expansion * static_cast<double>(info.bytecode_bytes));
    total_compile_us_ += cost;
    log_.push_back(CompileRecord{method, tier, cost, now});
    return cost;
}

double
JitCompiler::recordInvocations(std::size_t method, std::uint64_t count,
                               SimTime now)
{
    assert(method < state_.size());
    MethodState &state = state_[method];
    state.invocations += count;

    double compile_us = 0.0;
    if (state.tier == CompileTier::Interpreted &&
        state.invocations >= config_.warm_threshold) {
        compile_us += compile(method, CompileTier::Warm, now);
    }
    if (state.tier == CompileTier::Warm &&
        state.invocations >= config_.hot_threshold) {
        compile_us += compile(method, CompileTier::Hot, now);
    }
    if (state.tier == CompileTier::Hot &&
        state.invocations >= config_.scorching_threshold) {
        compile_us += compile(method, CompileTier::Scorching, now);
    }
    return compile_us;
}

double
JitCompiler::speedup(std::size_t method) const
{
    switch (state_[method].tier) {
      case CompileTier::Interpreted: return 1.0;
      case CompileTier::Warm: return config_.warm_speedup;
      case CompileTier::Hot: return config_.hot_speedup;
      case CompileTier::Scorching: return config_.scorching_speedup;
    }
    return 1.0;
}

std::size_t
JitCompiler::methodsAtOrAbove(CompileTier tier) const
{
    std::size_t count = 0;
    for (const auto &state : state_) {
        if (state.tier >= tier)
            ++count;
    }
    return count;
}

} // namespace jasim
