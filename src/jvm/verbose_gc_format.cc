#include "jvm/verbose_gc_format.h"

#include <iomanip>

namespace jasim {

namespace {

double
mb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace

void
printVerboseGcEvent(std::ostream &os, const GcEvent &event,
                    std::size_t id, std::uint64_t heap_size_bytes)
{
    const auto flags = os.flags();
    os << std::fixed;
    os << "<gc type=\"global\" id=\"" << id << "\" time=\""
       << std::setprecision(3) << toSeconds(event.start) << "s\""
       << (event.cause == GcCause::Explicit ? " cause=\"explicit\""
                                            : "")
       << ">\n";
    os << "  <mark ms=\"" << std::setprecision(1) << event.mark_ms
       << "\"/> <sweep ms=\"" << event.sweep_ms << "\"/>";
    if (event.compacted)
        os << " <compact ms=\"" << event.compact_ms << "\"/>";
    os << "\n";
    os << "  <heap used=\"" << std::setprecision(1)
       << mb(event.used_after) << "MB\" free=\""
       << mb(heap_size_bytes - event.used_after) << "MB\" live=\""
       << mb(event.live_bytes) << "MB\" dark=\""
       << std::setprecision(2) << mb(event.dark_bytes) << "MB\"/>\n";
    os << "  <reclaimed cells=\"" << event.reclaimed_cells
       << "\" bytes=\"" << std::setprecision(1)
       << mb(event.freed_bytes) << "MB\"/>\n";
    os << "</gc>\n";
    os.flags(flags);
}

void
printVerboseGcLog(std::ostream &os, const VerboseGcLog &log,
                  std::uint64_t heap_size_bytes, SimTime elapsed)
{
    std::size_t id = 0;
    for (const auto &event : log.events())
        printVerboseGcEvent(os, event, id++, heap_size_bytes);

    const GcSummary summary = log.summarize(elapsed);
    const auto flags = os.flags();
    os << std::fixed << std::setprecision(2);
    os << "<summary collections=\"" << summary.collections
       << "\" interval=\"" << summary.mean_interval_s
       << "s\" pause=\"" << std::setprecision(0)
       << summary.mean_pause_ms << "ms\" gc=\""
       << std::setprecision(2) << summary.gc_time_fraction * 100.0
       << "%\" mark=\"" << summary.mark_fraction * 100.0
       << "%\" growth=\""
       << summary.live_growth_bytes_per_min / (1024.0 * 1024.0)
       << "MB/min\"/>\n";
    os.flags(flags);
}

} // namespace jasim
