#include "jvm/verbose_gc.h"

#include <algorithm>

namespace jasim {

GcSummary
VerboseGcLog::summarize(SimTime elapsed) const
{
    GcSummary summary;
    summary.collections = events_.size();
    if (events_.empty())
        return summary;

    double total_pause = 0.0;
    double total_mark = 0.0;
    double total_sweep = 0.0;
    summary.min_pause_ms = events_.front().pauseMs();
    for (const auto &e : events_) {
        if (e.compacted)
            ++summary.compactions;
        const double pause = e.pauseMs();
        total_pause += pause;
        total_mark += e.mark_ms;
        total_sweep += e.sweep_ms;
        summary.min_pause_ms = std::min(summary.min_pause_ms, pause);
        summary.max_pause_ms = std::max(summary.max_pause_ms, pause);
    }
    summary.mean_pause_ms =
        total_pause / static_cast<double>(events_.size());
    if (total_pause > 0.0) {
        summary.mark_fraction = total_mark / total_pause;
        summary.sweep_fraction = total_sweep / total_pause;
    }

    if (events_.size() >= 2) {
        double total_gap = 0.0;
        double min_gap = 1e300, max_gap = 0.0;
        for (std::size_t i = 1; i < events_.size(); ++i) {
            const double gap =
                toSeconds(events_[i].start - events_[i - 1].start);
            total_gap += gap;
            min_gap = std::min(min_gap, gap);
            max_gap = std::max(max_gap, gap);
        }
        summary.mean_interval_s =
            total_gap / static_cast<double>(events_.size() - 1);
        summary.min_interval_s = min_gap;
        summary.max_interval_s = max_gap;

        // "Live"-heap growth: least-squares slope of used-after-GC
        // (live + dark matter) over time -- the quantity the paper
        // observes creeping up ~1 MB/min.
        const std::size_t n = events_.size();
        double mean_t = 0.0, mean_l = 0.0;
        for (const auto &e : events_) {
            mean_t += toSeconds(e.start);
            mean_l += static_cast<double>(e.used_after);
        }
        mean_t /= static_cast<double>(n);
        mean_l /= static_cast<double>(n);
        double sxy = 0.0, sxx = 0.0;
        for (const auto &e : events_) {
            const double dt = toSeconds(e.start) - mean_t;
            sxy += dt * (static_cast<double>(e.used_after) - mean_l);
            sxx += dt * dt;
        }
        if (sxx > 0.0)
            summary.live_growth_bytes_per_min = sxy / sxx * 60.0;
    }

    const double elapsed_s = toSeconds(elapsed);
    if (elapsed_s > 0.0)
        summary.gc_time_fraction = total_pause / 1000.0 / elapsed_s;
    return summary;
}

} // namespace jasim
