#include "jvm/gc.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/distributions.h"

namespace jasim {

GarbageCollector::GarbageCollector(const GcConfig &config,
                                   std::uint64_t seed)
    : config_(config), heap_(config.heap), graph_(seed ^ 0x9c0full),
      rng_(seed), last_live_bytes_(config.baseline_bytes)
{
    // Long-lived baseline: application server structures, caches,
    // class metadata. Rooted effectively forever.
    std::uint64_t allocated = 0;
    while (allocated < config_.baseline_bytes) {
        const std::uint32_t bytes = drawObjectBytes();
        const auto offset = heap_.allocate(bytes);
        assert(offset && "baseline must fit the heap");
        graph_.addCell(*offset, bytes,
                       secs(config_.permanent_lifetime_s) + 1,
                       config_.edge_probability);
        allocated += bytes;
    }
}

SimTime
GarbageCollector::drawLifetime()
{
    const double u = rng_.uniform();
    double seconds;
    if (u < config_.transient_fraction) {
        seconds = drawExponential(rng_, 1.0 / config_.transient_mean_s);
    } else if (u < config_.transient_fraction + config_.session_fraction) {
        seconds = drawExponential(rng_, 1.0 / config_.session_mean_s);
    } else {
        seconds = config_.permanent_lifetime_s;
    }
    return secs(std::max(seconds, 1e-3));
}

std::uint32_t
GarbageCollector::drawObjectBytes()
{
    const double sigma = config_.object_sigma;
    const double mu = std::log(config_.object_mean_bytes) -
        sigma * sigma / 2.0;
    const double draw = drawLogNormal(rng_, mu, sigma);
    return static_cast<std::uint32_t>(std::clamp(draw, 64.0, 65536.0));
}

bool
GarbageCollector::allocate(std::uint64_t bytes, SimTime now)
{
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
        const std::uint32_t cell = std::min<std::uint64_t>(
            drawObjectBytes(), std::max<std::uint64_t>(remaining, 64));
        const auto offset = heap_.allocate(cell);
        if (!offset)
            return false;
        graph_.addCell(*offset, cell, now + drawLifetime(),
                       config_.edge_probability);
        remaining -= std::min<std::uint64_t>(cell, remaining);
    }
    return true;
}

GcEvent
GarbageCollector::collect(SimTime now, GcCause cause)
{
    GcEvent event;
    event.start = now;
    event.cause = cause;
    event.used_before = heap_.usedBytes();

    graph_.expireRoots(now);
    const MarkResult mark = graph_.mark();
    event.live_bytes = mark.live_bytes;
    event.live_cells = mark.live_cells;
    event.mark_ms = static_cast<double>(mark.live_bytes) *
        config_.mark_ns_per_byte / 1e6;
    last_live_bytes_ = mark.live_bytes;

    event.reclaimed_cells = graph_.sweep(
        [this](std::uint64_t offset, std::uint64_t bytes) {
            heap_.free(offset, bytes);
        });
    event.sweep_ms = static_cast<double>(config_.heap.size_bytes) *
        config_.sweep_ns_per_byte / 1e6;
    event.freed_bytes = event.used_before - heap_.usedBytes();

    const std::uint64_t dark = heap_.darkBytes();
    const bool need_compact = static_cast<double>(dark) >
        config_.compact_dark_fraction *
            static_cast<double>(config_.heap.size_bytes);
    if (need_compact) {
        // Slide every surviving cell to the bottom of the heap; after
        // sweep() all remaining cells are live, so a linear reassign
        // of offsets is a faithful sliding compaction.
        std::uint64_t cursor = 0;
        graph_.forEachCell([&cursor](Cell &cell) {
            cell.heap_offset = cursor;
            cursor += cell.bytes;
        });
        heap_.compact(cursor);
        event.compacted = true;
        event.compact_ms = static_cast<double>(mark.live_bytes) *
            config_.compact_ns_per_byte / 1e6;
    }

    event.used_after = heap_.usedBytes();
    event.dark_bytes = heap_.darkBytes();
    log_.record(event);
    return event;
}

} // namespace jasim
