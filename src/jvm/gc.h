/**
 * @file
 * The non-generational mark-sweep-compact collector.
 *
 * Reproduces the GC behaviour of the studied JVM:
 *
 *  - allocation proceeds until the heap cannot satisfy a request,
 *    then a stop-the-world collection runs;
 *  - the mark phase is a real traversal of the object graph (~80% of
 *    pause time); the sweep phase frees unmarked cells (~20%);
 *  - compaction only runs when fragmentation (dark matter) crosses a
 *    threshold -- never within the 60-minute runs the paper studies;
 *  - dark matter accumulates from split remainders and isolated small
 *    frees, growing the "live-looking" heap by about 1 MB/min.
 */

#ifndef JASIM_JVM_GC_H
#define JASIM_JVM_GC_H

#include <cstdint>

#include "jvm/heap.h"
#include "jvm/object_graph.h"
#include "jvm/verbose_gc.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace jasim {

/** Collector and allocation-behaviour parameters. */
struct GcConfig
{
    HeapConfig heap;

    /** Mark cost per live byte (ns). */
    double mark_ns_per_byte = 1.60;
    /** Sweep cost per heap byte (ns). */
    double sweep_ns_per_byte = 0.060;
    /** Compaction cost per live byte (ns). */
    double compact_ns_per_byte = 3.0;
    /** Compact when dark bytes exceed this fraction of the heap. */
    double compact_dark_fraction = 0.08;

    /** Object-size distribution (log-normal, bytes). */
    double object_mean_bytes = 3072.0;
    double object_sigma = 0.7;

    /** Lifetime mixture (remainder of the two is permanent; keep it
     *  zero -- permanents come from the startup baseline, otherwise
     *  the live set grows without bound). */
    double transient_fraction = 0.945;  //!< die within ~a second
    double transient_mean_s = 0.6;
    double session_fraction = 0.055;    //!< session / cache state
    double session_mean_s = 30.0;
    double permanent_lifetime_s = 4.0 * 3600.0;

    /** Bytes of long-lived data allocated at startup. */
    std::uint64_t baseline_bytes = 120ull * 1024 * 1024;

    /** Chance a new cell is referenced by an older one. */
    double edge_probability = 0.18;
};

/**
 * The collector: owns the heap and the object graph.
 *
 * The mutator calls allocate(); when it returns false the caller runs
 * collect() and retries (the JVM does this internally; the split keeps
 * the simulation event loop in control of time).
 */
class GarbageCollector
{
  public:
    GarbageCollector(const GcConfig &config, std::uint64_t seed);

    /**
     * Allocate `bytes` of objects at simulated time `now`, splitting
     * into cells with drawn sizes/lifetimes.
     * @return false when the heap is exhausted (GC needed).
     */
    bool allocate(std::uint64_t bytes, SimTime now);

    /** Run a stop-the-world collection; records into the log. */
    GcEvent collect(SimTime now, GcCause cause = GcCause::AllocationFailure);

    const Heap &heap() const { return heap_; }
    const ObjectGraph &graph() const { return graph_; }
    const VerboseGcLog &log() const { return log_; }

    /** Live bytes found by the most recent mark (baseline before). */
    std::uint64_t lastLiveBytes() const { return last_live_bytes_; }

    const GcConfig &config() const { return config_; }

  private:
    GcConfig config_;
    Heap heap_;
    ObjectGraph graph_;
    Rng rng_;
    VerboseGcLog log_;
    std::uint64_t last_live_bytes_;

    SimTime drawLifetime();
    std::uint32_t drawObjectBytes();
};

} // namespace jasim

#endif // JASIM_JVM_GC_H
